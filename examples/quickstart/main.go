// Quickstart: build a simulated far-memory machine, run one graph workload
// under the traditional stack (Fastswap-style shared hierarchical swap) and
// under xDM (bypass path, isolated channel, tuned parameters), and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	// The workload: breadth-first search on Ligra (Table V), scaled down 4x
	// so the example finishes instantly.
	spec := workload.ByName("lg-bfs")
	spec.FootprintPages /= 4
	spec.MainAccesses /= 4

	fmt.Printf("workload %s: %d pages, %d accesses, %d threads\n",
		spec.Name, spec.FootprintPages, spec.MainAccesses, spec.Threads)
	fmt.Println("running with half the footprint in far memory (local ratio 0.5)")
	fmt.Println()

	run := func(label string, xdm bool) task.Stats {
		// A fresh machine per run: two 10-core CPUs, PCIe 3.0 x16, one SSD
		// and one RDMA NIC (the paper's testbed shape).
		eng := sim.NewEngine()
		m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
		m.AttachDevice(device.SpecTestbedSSD("ssd"))
		m.AttachDevice(device.SpecConnectX5("rdma"))
		env := baseline.Env{Machine: m, FileBackend: "ssd"}

		var cfg task.Config
		if xdm {
			setup := baseline.PrepareXDM(env, m.Backend("rdma"), spec, 0.5, 1.4, 42)
			fmt.Printf("  xDM console decision: granularity=%d pages, width=%d, NUMA=%v\n",
				setup.Decision.GranularityPages, setup.Decision.Width, setup.Decision.NUMA)
			cfg = setup.Config
		} else {
			cfg = baseline.Prepare(baseline.Fastswap, env, m.Backend("rdma"), spec, 0.5, 42)
		}

		var stats task.Stats
		task.New(cfg).Start(func(s task.Stats) { stats = s })
		eng.Run()

		fmt.Printf("%-10s runtime=%-10v sys=%-10v major-faults=%-6d swapped=%s\n",
			label, stats.Runtime, stats.SysTime, stats.MajorFaults,
			fmt.Sprintf("%.1f MiB", stats.BytesSwapped()/(1<<20)))
		return stats
	}

	base := run("fastswap", false)
	xdm := run("xdm", true)

	fmt.Println()
	fmt.Printf("swap performance speedup (sys time): %.2fx\n",
		float64(base.SysTime)/float64(xdm.SysTime))
	fmt.Printf("end-to-end speedup:                  %.2fx\n",
		float64(base.Runtime)/float64(xdm.Runtime))
}
