// Dynamic switching demo: the paper's headline capability. A long-running
// application changes phase (sequential ingest → random serving →
// re-ingest); xDM's switchable swapper notices from the live page trace and
// performs warm backend switches mid-run, without stopping the task.
//
//	go run ./examples/dynamicswitch
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	const footprint = 4096

	ingest := workload.Spec{
		Name: "ingest", Class: workload.Compute,
		FootprintPages: footprint, AnonFraction: 0.5, Coverage: 1.0,
		SegmentLen: footprint, SeqShare: 0.92, RunLen: 256,
		HotShare: 1, HotProb: 0, WriteFraction: 0.3,
		ComputePerAccess: 2 * sim.Microsecond,
		MainAccesses:     footprint * 120, Threads: 4,
	}
	serve := ingest
	serve.Name = "serve"
	serve.SeqShare, serve.RunLen = 0.1, 4
	serve.HotShare, serve.HotProb = 0.15, 0.6
	serve.SegmentLen = 64
	serve.MainAccesses = footprint * 360
	phases := []workload.Spec{ingest, serve, ingest}

	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
	m.AttachDevice(device.SpecTestbedSSD("ssd"))
	m.AttachDevice(device.SpecConnectX5("rdma"))
	m.AttachDevice(device.SpecRemoteDRAM("dram"))
	env := baseline.Env{Machine: m, FileBackend: "ssd"}

	v := m.CreateVM("app-vm", 4, footprint*2, []string{"ssd", "rdma", "dram"}, nil)
	eng.Run()
	fmt.Printf("VM booted with warm backends %v; active: %s\n",
		[]string{"ssd", "rdma", "dram"}, v.ActiveBackend())

	run := baseline.PrepareXDMDynamic(env, v, phases, 0.5, 11)
	fmt.Printf("phases: %s -> %s -> %s (one process, behaviour changes at runtime)\n\n",
		phases[0].Name, phases[1].Name, phases[2].Name)

	tk := task.New(run.Config)
	tl := metrics.NewTimeline(eng, 50*sim.Millisecond, func() float64 {
		return float64(tk.Stats().MajorFaults)
	})
	var stats task.Stats
	tk.Start(func(s task.Stats) { stats = s; tl.Stop() })
	taskStart := eng.Now()
	eng.Run()

	fmt.Printf("runtime: %v   faults: %d   swapped: %.1f MiB\n",
		stats.Runtime, stats.MajorFaults, stats.BytesSwapped()/(1<<20))
	for _, sw := range run.Switches {
		fmt.Printf("warm switch %s -> %s at +%v (task kept running)\n",
			sw.From, sw.To, sw.At.Sub(taskStart))
	}
	fmt.Printf("\nfault rate over the run:  %s\n", metrics.Sparkline(metrics.Delta(tl.Samples()), 64))
	fmt.Println("(the rate jumps when the serve phase starts; the switch follows within seconds)")
}
