// AI inference under SLO constraints: the paper's motivating scenario for
// memory-pressure reduction (Fig 15). For each model-serving workload, the
// xDM console sizes the minimum local memory meeting the SLO via offline
// calibration, then the example verifies the measured slowdown.
//
//	go run ./examples/aiinference
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func env(eng *sim.Engine) baseline.Env {
	m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
	m.AttachDevice(device.SpecTestbedSSD("ssd"))
	m.AttachDevice(device.SpecConnectX5("rdma"))
	return baseline.Env{Machine: m, FileBackend: "ssd"}
}

func main() {
	models := []string{"tf-infer", "bert", "clip", "chat-int"}
	slos := []float64{1.2, 1.5, 1.8}

	fmt.Println("xDM AI-inference demo: SLO-constrained memory offloading")
	fmt.Println()
	fmt.Printf("%-9s", "model")
	for _, slo := range slos {
		fmt.Printf("  SLO %.1f: offload (measured)", slo)
	}
	fmt.Println()

	for _, name := range models {
		spec := workload.ByName(name)
		spec.FootprintPages /= 4
		spec.MainAccesses /= 4
		if spec.SegmentLen > spec.FootprintPages {
			spec.SegmentLen = spec.FootprintPages
		}

		// Reference runtime with everything resident.
		engRef := sim.NewEngine()
		eRef := env(engRef)
		refSetup := baseline.PrepareXDM(eRef, eRef.Machine.Backend("rdma"), spec, 1.0, 1.2, 3)
		var ref task.Stats
		task.New(refSetup.Config).Start(func(s task.Stats) { ref = s })
		engRef.Run()

		fmt.Printf("%-9s", name)
		for _, slo := range slos {
			eng := sim.NewEngine()
			e := env(eng)
			// localRatio < 0: the console calibrates the minimum local
			// share for this SLO from an offline staging run.
			setup := baseline.PrepareXDM(e, e.Machine.Backend("rdma"), spec, -1, slo, 3)
			var stats task.Stats
			task.New(setup.Config).Start(func(s task.Stats) { stats = s })
			eng.Run()
			slowdown := float64(stats.Runtime) / float64(ref.Runtime)
			fmt.Printf("  %16.0f%% (%.2fx)   ", 100*(1-setup.Config.LocalRatio), slowdown)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("looser SLOs buy deeper offloading — local memory freed for co-located tenants")
}
