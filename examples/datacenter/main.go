// Data-center orchestration: Algorithm 1 end to end. A stream of mixed
// applications arrives at a multi-backend server; the dispatcher extracts
// page features, selects backends by MEI, places each app on a warm VM
// (switching or creating VMs as needed), and runs it. Afterwards the
// example reports placement statistics, task throughput versus the
// no-far-memory baseline, and the cluster-level MBE balancing headroom.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/clustertrace"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func newEnv(eng *sim.Engine) baseline.Env {
	m := vm.NewMachine(eng, pcie.Gen4, 16, 40, 128*workload.PagesPerGiB)
	m.AttachDevice(device.SpecTestbedSSD("ssd0"))
	m.AttachDevice(device.SpecTestbedSSD("ssd1"))
	m.AttachDevice(device.SpecConnectX5("rdma0"))
	m.AttachDevice(device.SpecConnectX5("rdma1"))
	m.AttachDevice(device.SpecRemoteDRAM("dram0"))
	return baseline.Env{Machine: m, FileBackend: "ssd0"}
}

func scaled(name string, div int) workload.Spec {
	s := workload.ByName(name)
	s.FootprintPages /= div
	s.MainAccesses /= div
	if s.SegmentLen > s.FootprintPages {
		s.SegmentLen = s.FootprintPages
	}
	return s
}

func main() {
	fmt.Println("xDM data-center demo: Algorithm 1 dispatch over a VM fleet")
	fmt.Println()

	// --- Part 1: Algorithm 1 placement over a warm pool ---
	eng := sim.NewEngine()
	env := newEnv(eng)
	for _, b := range []string{"ssd0", "rdma0", "dram0"} {
		env.Machine.CreateVM("warm-"+b, 4, 8*workload.PagesPerGiB, []string{b}, nil)
	}
	eng.Run()

	d := cluster.NewDispatcher(env)
	apps := []string{"lg-bfs", "gg-bfs", "bert", "chat-int", "kmeans", "tf-infer"}
	fmt.Printf("%-9s  %-8s  %-11s  %-9s  %s\n", "app", "backend", "placement", "local", "runtime")
	completed := 0
	for i, name := range apps {
		spec := scaled(name, 16)
		app := cluster.App{Spec: spec, SLO: 1.5, Seed: int64(i), Cores: 1}
		p := d.Dispatch(app, nil)
		if p.Via == cluster.ViaNone {
			fmt.Printf("%-9s  rejected (no capacity)\n", name)
			continue
		}
		setup := baseline.PrepareXDM(env, env.Machine.Backend(p.Decision.Backend), spec,
			p.Decision.LocalRatio, app.SLO, app.Seed)
		pl := p
		nm := name
		task.New(setup.Config).Start(func(s task.Stats) {
			completed++
			d.Release(pl)
			fmt.Printf("%-9s  %-8s  %-11s  %8.0f%%  %v\n",
				nm, pl.Decision.Backend, pl.Via, 100*pl.Decision.LocalRatio, s.Runtime)
		})
	}
	eng.Run()
	fmt.Printf("\ncompleted %d/%d apps; placements: %v, rejected %d\n\n",
		completed, len(apps), d.Placed, d.Rejected)

	// --- Part 2: task throughput vs the no-far-memory baseline (Fig 16) ---
	// An inference-service archetype: hot-concentrated with compute between
	// accesses, so deep offloading stays within the SLO.
	svc := workload.Spec{
		Name: "svc", Class: workload.AI, MaxMemGiB: 2,
		FootprintPages: 2048, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 512, SeqShare: 0.5, RunLen: 32,
		HotShare: 0.15, HotProb: 0.92, WriteFraction: 0.2,
		ComputePerAccess: 400 * sim.Nanosecond, MainAccesses: 10240,
		Threads: 4, SwapFeature: 'F',
	}
	jobs := make([]cluster.App, 12)
	for i := range jobs {
		jobs[i] = cluster.App{Spec: svc, SLO: 1.6, Seed: int64(i), Cores: 1}
	}
	serverPages := int(2.5 * float64(svc.FootprintPages))

	engB := sim.NewEngine()
	base := cluster.RunThroughput(newEnv(engB), jobs, cluster.FullMemory, serverPages, 16)
	engX := sim.NewEngine()
	far := cluster.RunThroughput(newEnv(engX), jobs, cluster.FarMemorySLO, serverPages, 16)
	fmt.Printf("task throughput: no-far-memory %.0f jobs/h (parallel %d) vs xDM %.0f jobs/h (parallel %d) -> %.2fx\n\n",
		base.Throughput, base.PeakParallel, far.Throughput, far.PeakParallel,
		far.Throughput/base.Throughput)

	// --- Part 3: cluster-scale memory balancing headroom (Fig 19) ---
	for _, profile := range []clustertrace.Profile{clustertrace.Alibaba2017(), clustertrace.Alibaba2018()} {
		utils := clustertrace.Snapshot(profile, 2000, 9)
		bestA, bestV := 0.0, 0.0
		for a := 0.2; a <= 0.9; a += 0.05 {
			if v := cluster.MBEImprovement(utils, a, a); v > bestV {
				bestV, bestA = v, a
			}
		}
		fmt.Printf("%s: mean util %.1f%%, best MBE improvement %.1f%% at threshold %.2f\n",
			profile.Name, 100*clustertrace.Mean(utils), 100*bestV, bestA)
	}
}
