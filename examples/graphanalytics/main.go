// Graph analytics on a memory-pressured node: run the paper's graph suite
// (Ligra and GridGraph workloads, Table V) with xDM's offline profiling,
// MEI-driven backend selection, and per-workload parameter tuning — and
// show what the configuration console saw and decided for each job.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	graphSuite := []string{"gg-pre", "gg-bfs", "lg-bfs", "lg-bc", "lg-comp", "lg-mis"}

	fmt.Println("xDM graph-analytics demo: MEI backend selection + parameter tuning")
	fmt.Println("node: SSD + RDMA + host-DRAM far memory, local ratio 0.5")
	fmt.Println()
	fmt.Printf("%-8s  %-5s  %-5s  %-5s  %-7s  %-5s  %-5s  %-10s  %s\n",
		"job", "anon", "seq", "hot", "backend", "gran", "width", "runtime", "sys")

	for _, name := range graphSuite {
		spec := workload.ByName(name)
		spec.FootprintPages /= 8
		spec.MainAccesses /= 8
		if spec.SegmentLen > spec.FootprintPages {
			spec.SegmentLen = spec.FootprintPages
		}

		eng := sim.NewEngine()
		m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
		m.AttachDevice(device.SpecTestbedSSD("ssd"))
		m.AttachDevice(device.SpecConnectX5("rdma"))
		m.AttachDevice(device.SpecRemoteDRAM("dram"))
		env := baseline.Env{Machine: m, FileBackend: "ssd"}

		// Offline profiling: fuse the page-trace features (Fig 9a).
		f := baseline.Profile(spec, 7)

		// Implicit switching: MEI-ordered backend preference (Sec IV-A2).
		opts := []core.BackendOption{
			baseline.OptionFor(m.Backend("ssd")),
			baseline.OptionFor(m.Backend("rdma")),
			baseline.OptionFor(m.Backend("dram")),
		}
		priority, _ := core.SelectBackend(opts, f, spec.ComputePerAccess, 0.5)

		// Run on the chosen backend with the full console configuration.
		setup := baseline.PrepareXDM(env, m.Backend(priority[0]), spec, 0.5, 1.4, 7)
		var stats task.Stats
		task.New(setup.Config).Start(func(s task.Stats) { stats = s })
		eng.Run()

		fmt.Printf("%-8s  %.2f  %.2f  %.2f  %-7s  %-5d  %-5d  %-10v  %v\n",
			name, f.AnonRatio, f.SeqRatio, f.HotRatio, priority[0],
			setup.Decision.GranularityPages, setup.Decision.Width,
			stats.Runtime, stats.SysTime)
	}

	fmt.Println()
	fmt.Println("anonymous-heavy traversals land on rdma/dram; file-heavy grid scans stay on ssd")
}
