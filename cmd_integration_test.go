package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyze"
)

// buildCmd compiles one of the repository's executables into dir.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestXdmsimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCmd(t, t.TempDir(), "xdmsim")

	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, id := range []string{"tab6", "fig19", "ablation", "cxl"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s", id)
		}
	}

	out, err = exec.Command(bin, "-exp", "fig3").Output()
	if err != nil {
		t.Fatalf("-exp fig3: %v", err)
	}
	if !strings.Contains(string(out), "PCIe 4.0") {
		t.Error("fig3 output incomplete")
	}

	out, err = exec.Command(bin, "-exp", "fig8", "-scale", "16", "-seed", "2").Output()
	if err != nil {
		t.Fatalf("-exp fig8: %v", err)
	}
	if !strings.Contains(string(out), "MEI pick") {
		t.Error("fig8 output incomplete")
	}

	if err := exec.Command(bin, "-exp", "bogus").Run(); err == nil {
		t.Error("unknown experiment should exit nonzero")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("missing -exp should exit nonzero")
	}
}

func TestTracegenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCmd(t, t.TempDir(), "tracegen")

	out, err := exec.Command(bin, "-kind", "pages", "-workload", "bert", "-n", "100").Output()
	if err != nil {
		t.Fatalf("pages: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[0] != "index,page,write" || len(lines) != 101 {
		t.Fatalf("pages CSV malformed: header=%q lines=%d", lines[0], len(lines))
	}

	out, err = exec.Command(bin, "-kind", "features").Output()
	if err != nil {
		t.Fatalf("features: %v", err)
	}
	if c := strings.Count(string(out), "\n"); c != 18 { // header + 17 workloads
		t.Fatalf("features CSV has %d lines, want 18", c)
	}

	out, err = exec.Command(bin, "-kind", "cluster", "-trace", "2018", "-n", "50").Output()
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if c := strings.Count(string(out), "\n"); c != 51 {
		t.Fatalf("cluster CSV has %d lines, want 51", c)
	}

	if err := exec.Command(bin, "-kind", "bogus").Run(); err == nil {
		t.Error("unknown kind should exit nonzero")
	}
}

func TestXdmbenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs the evaluation")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmbench")
	outFile := filepath.Join(dir, "results.txt")
	traceStem := filepath.Join(dir, "trace.json")
	metricsStem := filepath.Join(dir, "metrics.csv")
	out, err := exec.Command(bin, "-o", outFile, "-scale", "16",
		"-trace", traceStem, "-metrics", metricsStem).CombinedOutput()
	if err != nil {
		t.Fatalf("xdmbench: %v\n%s", err, out)
	}
	data := string(out)
	for _, id := range []string{"tab6", "tab7", "fig14", "fig19-sim"} {
		if !strings.Contains(data, id) {
			t.Errorf("results missing %s", id)
		}
	}
	// -trace/-metrics stems expand to one file per experiment:
	// trace.json → trace.tab6.json, trace.fig14.json, ...
	for _, id := range []string{"tab6", "fig14"} {
		tracePath := filepath.Join(dir, "trace."+id+".json")
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("per-experiment trace missing: %v", err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("%s is not valid JSON: %v", tracePath, err)
		}
		if _, err := os.Stat(filepath.Join(dir, "metrics."+id+".csv")); err != nil {
			t.Errorf("per-experiment metrics missing: %v", err)
		}
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the example binaries")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "swap performance speedup"},
		{"graphanalytics", "MEI backend selection"},
		{"aiinference", "offload"},
		{"datacenter", "task throughput"},
		{"dynamicswitch", "warm switch"},
	}
	for _, c := range cases {
		out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
		if err != nil {
			t.Fatalf("example %s: %v\n%s", c.dir, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Errorf("example %s output missing %q:\n%s", c.dir, c.want, out)
		}
	}
}

func TestXdmsimCustomSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmsim")
	specFile := filepath.Join(dir, "specs.json")
	spec := `[{"Name":"custom-app","Class":"compute","FootprintPages":1024,
		"AnonFraction":0.9,"SegmentLen":64,"SeqShare":0.4,"RunLen":8,
		"HotShare":0.2,"HotProb":0.7,"WriteFraction":0.3,
		"ComputePerAccess":200,"MainAccesses":6000,"Threads":2}]`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-custom", specFile, "-scale", "2").Output()
	if err != nil {
		t.Fatalf("-custom: %v", err)
	}
	if !strings.Contains(string(out), "custom-app") || !strings.Contains(string(out), "speedup") {
		t.Fatalf("custom output incomplete:\n%s", out)
	}
	// Invalid spec file exits nonzero.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("nope"), 0o644)
	if err := exec.Command(bin, "-custom", bad).Run(); err == nil {
		t.Error("invalid spec file accepted")
	}
}

func TestXdmsimFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCmd(t, t.TempDir(), "xdmsim")
	cases := []struct {
		name string
		args []string
	}{
		{"zero scale", []string{"-exp", "fig3", "-scale", "0"}},
		{"negative scale", []string{"-exp", "fig3", "-scale", "-4"}},
		{"negative seed", []string{"-exp", "fig3", "-seed", "-1"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("%v exited %v, want exit code 2", c.args, err)
			}
			if !strings.Contains(stderr.String(), "usage:") {
				t.Errorf("stderr missing usage line:\n%s", stderr.String())
			}
		})
	}
}

// TestPolicyFlagCLI pins the -policy surface on both CLIs: a valid spec
// runs and changes placement-sensitive output, and every malformed spec the
// grammar rejects is a usage failure (exit 2) naming the offense — never a
// crash deep inside a simulation.
func TestPolicyFlagCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sim := buildCmd(t, dir, "xdmsim")
	bench := buildCmd(t, dir, "xdmbench")

	out, err := exec.Command(sim, "-exp", "alg1", "-scale", "16", "-policy", "best-fit").Output()
	if err != nil {
		t.Fatalf("-policy best-fit: %v", err)
	}
	if !strings.Contains(string(out), "Algorithm 1") {
		t.Errorf("alg1 output incomplete under -policy:\n%s", out)
	}

	bad := []struct {
		name string
		spec string
	}{
		{"unknown base", "first-fit"},
		{"oversub below range", "oversub:0.5"},
		{"oversub not a number", "oversub:lots"},
		{"empty mix", "mix:"},
		{"mix unknown prioritizer", "mix:bogus=1"},
		{"mix duplicate", "mix:load=1,load=2"},
		{"unknown extender", "best-fit+sometimes"},
		{"duplicate extender", "one-shot+one-shot"},
	}
	for _, c := range bad {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, bin := range []string{sim, bench} {
				args := []string{"-exp", "alg1", "-scale", "16", "-policy", c.spec}
				if bin == bench {
					args = []string{"-o", "-", "-only", "alg1", "-scale", "16", "-policy", c.spec}
				}
				cmd := exec.Command(bin, args...)
				var stderr strings.Builder
				cmd.Stderr = &stderr
				err := cmd.Run()
				ee, ok := err.(*exec.ExitError)
				if !ok || ee.ExitCode() != 2 {
					t.Fatalf("%s -policy %q exited %v, want exit code 2", filepath.Base(bin), c.spec, err)
				}
				if !strings.Contains(stderr.String(), "usage:") {
					t.Errorf("%s stderr missing usage line:\n%s", filepath.Base(bin), stderr.String())
				}
			}
		})
	}
}

// TestFabricFlagCLI pins the -fabric surface on both CLIs: a valid topology
// spec runs the pooled-memory experiment and changes its header, and every
// malformed spec the grammar rejects is a usage failure (exit 2) carrying
// the hosts=N[,...] grammar — never a panic inside a cell.
func TestFabricFlagCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sim := buildCmd(t, dir, "xdmsim")
	bench := buildCmd(t, dir, "xdmbench")

	out, err := exec.Command(sim, "-exp", "cxlpool", "-scale", "16", "-fabric", "hosts=2,pool=1,hops=2").Output()
	if err != nil {
		t.Fatalf("-fabric hosts=2,pool=1,hops=2: %v", err)
	}
	if !strings.Contains(string(out), "2 hosts") || !strings.Contains(string(out), "2 switch hops") {
		t.Errorf("cxlpool header does not reflect -fabric topology:\n%s", out)
	}

	bad := []struct {
		name string
		spec string
	}{
		{"missing hosts", "pool=1"},
		{"not key=value", "hosts"},
		{"hosts out of range", "hosts=0"},
		{"duplicate field", "hosts=4,hosts=8"},
		{"negative pool", "hosts=4,pool=-1"},
		{"slab out of range", "hosts=4,slab=8"},
		{"hops out of range", "hosts=4,hops=9"},
		{"unknown placer", "hosts=4,placer=switch"},
		{"unknown field", "hosts=4,rack=2"},
	}
	for _, c := range bad {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, bin := range []string{sim, bench} {
				args := []string{"-exp", "cxlpool", "-scale", "16", "-fabric", c.spec}
				if bin == bench {
					args = []string{"-o", "-", "-only", "cxlpool", "-scale", "16", "-fabric", c.spec}
				}
				cmd := exec.Command(bin, args...)
				var stderr strings.Builder
				cmd.Stderr = &stderr
				err := cmd.Run()
				ee, ok := err.(*exec.ExitError)
				if !ok || ee.ExitCode() != 2 {
					t.Fatalf("%s -fabric %q exited %v, want exit code 2", filepath.Base(bin), c.spec, err)
				}
				if !strings.Contains(stderr.String(), "usage:") || !strings.Contains(stderr.String(), "hosts=N") {
					t.Errorf("%s stderr missing usage grammar:\n%s", filepath.Base(bin), stderr.String())
				}
			}
		})
	}
}

func TestXdmsimFaultsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs the fault scenarios")
	}
	bin := buildCmd(t, t.TempDir(), "xdmsim")
	run := func() string {
		out, err := exec.Command(bin, "-exp", "faults", "-scale", "8", "-seed", "1").Output()
		if err != nil {
			t.Fatalf("-exp faults: %v", err)
		}
		return string(out)
	}
	first := run()
	for _, want := range []string{"xdm-failover", "static", "MTTR", "avail", "flap", "crash"} {
		if !strings.Contains(first, want) {
			t.Errorf("faults output missing %q:\n%s", want, first)
		}
	}
	// Reproducibility is a CLI-level contract: same seed, same bytes.
	if second := run(); second != first {
		t.Fatalf("same seed produced different faults output:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// traceEvent is the subset of a Chrome trace event the CLI tests inspect.
type traceEvent struct {
	Ph  string  `json:"ph"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	Ts  float64 `json:"ts"`
}

func TestXdmsimObservabilityOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs an experiment")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmsim")
	tracePath := filepath.Join(dir, "out.json")
	metricsPath := filepath.Join(dir, "out.csv")

	run := func(workers string) (trace, metrics []byte) {
		out, err := exec.Command(bin, "-exp", "fig2b", "-scale", "8",
			"-workers", workers, "-trace", tracePath, "-metrics", metricsPath).CombinedOutput()
		if err != nil {
			t.Fatalf("xdmsim -trace/-metrics: %v\n%s", err, out)
		}
		trace, err = os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		metrics, err = os.ReadFile(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		return trace, metrics
	}

	trace1, metrics1 := run("1")

	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	// Within each (pid, tid) track, timestamps must be monotonically
	// non-decreasing — the contract Perfetto relies on for rendering.
	last := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		key := [2]int{ev.Pid, ev.Tid}
		if prev, ok := last[key]; ok && ev.Ts < prev {
			t.Fatalf("track pid=%d tid=%d: ts %g after %g", ev.Pid, ev.Tid, ev.Ts, prev)
		}
		last[key] = ev.Ts
	}
	if !strings.HasPrefix(string(metrics1), "# schema: xdm-metrics/2\nrun,type,name,key,value\n") {
		t.Errorf("metrics CSV header malformed: %q", strings.SplitN(string(metrics1), "\n", 2)[0])
	}

	// Byte-identical across reruns and across worker counts.
	trace2, metrics2 := run("1")
	if !bytes.Equal(trace1, trace2) || !bytes.Equal(metrics1, metrics2) {
		t.Error("outputs differ between identical reruns")
	}
	trace8, metrics8 := run("8")
	if !bytes.Equal(trace1, trace8) {
		t.Error("trace differs between -workers=1 and -workers=8")
	}
	if !bytes.Equal(metrics1, metrics8) {
		t.Error("metrics differ between -workers=1 and -workers=8")
	}
}

func TestXdmsimObservabilityFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmsim")
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"trace with -exp all", []string{"-exp", "all", "-trace", filepath.Join(dir, "t.json")},
			"cannot be combined with -exp all"},
		{"metrics with -exp all", []string{"-exp", "all", "-metrics", filepath.Join(dir, "m.csv")},
			"cannot be combined with -exp all"},
		{"unwritable trace path", []string{"-exp", "fig3", "-trace", filepath.Join(dir, "no-such-dir", "t.json")},
			"no-such-dir"},
		{"unwritable metrics path", []string{"-exp", "fig3", "-metrics", filepath.Join(dir, "no-such-dir", "m.csv")},
			"no-such-dir"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("%v exited %v, want exit code 2", c.args, err)
			}
			if !strings.Contains(stderr.String(), c.wantMsg) {
				t.Errorf("stderr missing %q:\n%s", c.wantMsg, stderr.String())
			}
		})
	}
}

func TestXdmbenchFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmbench")
	for _, format := range []string{"md", "csv"} {
		outFile := filepath.Join(dir, "results."+format)
		if out, err := exec.Command(bin, "-o", outFile, "-scale", "32", "-format", format).CombinedOutput(); err != nil {
			t.Fatalf("format %s: %v\n%s", format, err, out)
		}
		data, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		switch format {
		case "md":
			if !strings.Contains(string(data), "| --- |") {
				t.Error("markdown output malformed")
			}
		case "csv":
			if !strings.Contains(string(data), "#tab6,") {
				t.Error("csv output malformed")
			}
		}
	}
}

// TestXdmbenchLatencySummaries covers -only experiment filtering and the
// -latency stem, then drives xdmtrace over the emitted artifacts: an
// identical rerun must diff clean (exit 0) and an injected p99 regression
// must gate (exit 1).
func TestXdmbenchLatencySummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs an experiment")
	}
	dir := t.TempDir()
	bench := buildCmd(t, dir, "xdmbench")
	xdmtrace := buildCmd(t, dir, "xdmtrace")

	latStem := filepath.Join(dir, "lat.json")
	metricsStem := filepath.Join(dir, "m.json")
	traceStem := filepath.Join(dir, "t.json")
	out, err := exec.Command(bench, "-o", "-", "-scale", "16", "-only", "fig2b",
		"-latency", latStem, "-metrics", metricsStem, "-trace", traceStem).CombinedOutput()
	if err != nil {
		t.Fatalf("xdmbench -only fig2b: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "#tab6") {
		t.Error("-only fig2b still ran tab6")
	}
	latPath := filepath.Join(dir, "lat.fig2b.json")
	raw, err := os.ReadFile(latPath)
	if err != nil {
		t.Fatalf("per-experiment latency summary missing: %v", err)
	}
	sum, err := analyze.ParseSummary(raw)
	if err != nil {
		t.Fatalf("latency summary does not parse: %v", err)
	}
	if sum.Label != "fig2b" || sum.Stages == nil || sum.Stages.Ops == 0 {
		t.Fatalf("latency summary incomplete: label=%q stages=%+v", sum.Label, sum.Stages)
	}

	// Offline summarize of the written metrics+trace must agree with the
	// in-process summary xdmbench emitted.
	sumPath := filepath.Join(dir, "offline.json")
	out, err = exec.Command(xdmtrace, "summarize", filepath.Join(dir, "m.fig2b.json"),
		"-trace", filepath.Join(dir, "t.fig2b.json"), "-label", "fig2b",
		"-format", "json", "-o", sumPath).CombinedOutput()
	if err != nil {
		t.Fatalf("xdmtrace summarize: %v\n%s", err, out)
	}
	out, err = exec.Command(xdmtrace, "diff", latPath, sumPath).CombinedOutput()
	if err != nil {
		t.Fatalf("identical diff should exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no regressions") {
		t.Errorf("clean diff output missing confirmation:\n%s", out)
	}

	// The text rendering includes the stage attribution table.
	out, err = exec.Command(xdmtrace, "summarize", filepath.Join(dir, "m.fig2b.json"),
		"-trace", filepath.Join(dir, "t.fig2b.json")).CombinedOutput()
	if err != nil {
		t.Fatalf("xdmtrace summarize text: %v\n%s", err, out)
	}
	for _, want := range []string{"stage attribution", "transfer", "arbitrate", "e2e"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("text summary missing %q:\n%s", want, out)
		}
	}

	// Inject a 2x p99 regression into one histogram; diff must exit 1.
	bad := *sum
	bad.Hists = append([]analyze.HistStats(nil), sum.Hists...)
	injected := false
	for i := range bad.Hists {
		if bad.Hists[i].P99 > 0 {
			bad.Hists[i].P99 *= 2
			injected = true
			break
		}
	}
	if !injected {
		t.Fatal("no nonzero p99 to regress")
	}
	badPath := filepath.Join(dir, "regressed.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(xdmtrace, "diff", latPath, badPath)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("regressed diff exited %v, want exit code 1\n%s%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED") || !strings.Contains(stderr.String(), "regressed") {
		t.Errorf("regression not reported:\nstdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
	}
	// A loose enough threshold tolerates the same delta.
	if out, err := exec.Command(xdmtrace, "diff", latPath, badPath, "-rel", "1.5").CombinedOutput(); err != nil {
		t.Errorf("diff -rel 1.5 should tolerate a 2x delta: %v\n%s", err, out)
	}
}

// TestXdmtraceValidation pins the exit-2 contract: missing or unparseable
// artifacts, schema mismatches between diff inputs, and usage errors.
func TestXdmtraceValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmtrace")

	garbage := filepath.Join(dir, "garbage.csv")
	os.WriteFile(garbage, []byte("this is not an artifact\n"), 0o644)
	v1 := filepath.Join(dir, "v1.json")
	os.WriteFile(v1, []byte(`{"schema":"xdm-latency-summary/1","source_schema":"xdm-metrics/1","hists":[],"utils":[]}`+"\n"), 0o644)
	v2 := filepath.Join(dir, "v2.json")
	os.WriteFile(v2, []byte(`{"schema":"xdm-latency-summary/1","source_schema":"xdm-metrics/2","hists":[],"utils":[]}`+"\n"), 0o644)
	badSchema := filepath.Join(dir, "future.json")
	os.WriteFile(badSchema, []byte(`{"schema":"xdm-latency-summary/99","hists":[]}`+"\n"), 0o644)

	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"no subcommand", nil, "usage:"},
		{"unknown subcommand", []string{"frobnicate"}, "unknown subcommand"},
		{"summarize no args", []string{"summarize"}, "usage:"},
		{"summarize missing file", []string{"summarize", filepath.Join(dir, "nope.csv")}, "no such file"},
		{"summarize garbage", []string{"summarize", garbage}, "metrics CSV"},
		{"summarize bad format", []string{"summarize", garbage, "-format", "xml"}, "-format"},
		{"diff one arg", []string{"diff", v2}, "usage:"},
		{"diff missing file", []string{"diff", v2, filepath.Join(dir, "nope.json")}, "no such file"},
		{"diff garbage", []string{"diff", v2, garbage}, "unrecognized artifact"},
		{"diff source schema mismatch", []string{"diff", v1, v2}, "schema mismatch"},
		{"diff unsupported summary version", []string{"diff", v2, badSchema}, "xdm-latency-summary/99"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("%v exited %v, want exit code 2\n%s", c.args, err, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.wantMsg) {
				t.Errorf("stderr missing %q:\n%s", c.wantMsg, stderr.String())
			}
		})
	}
}

// TestXdmsimServe drives the open-loop serving mode: a summary table on
// stdout, byte-identical across reruns, with exit-2 validation on every bad
// flag the ISSUE names (bad arrival spec, negative RPS, SLO <= 0).
func TestXdmsimServe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs a serving window")
	}
	bin := buildCmd(t, t.TempDir(), "xdmsim")

	run := func() string {
		out, err := exec.Command(bin, "-serve", "flash:100:4:1:1",
			"-slo", "100ms", "-duration", "3s", "-scale", "8", "-seed", "3").Output()
		if err != nil {
			t.Fatalf("-serve: %v", err)
		}
		return string(out)
	}
	first := run()
	for _, want := range []string{"open-loop serving", "offered", "admitted",
		"goodput", "placement delay p50/p95/p99", "breaker opens/closes"} {
		if !strings.Contains(first, want) {
			t.Errorf("serve output missing %q:\n%s", want, first)
		}
	}
	if second := run(); second != first {
		t.Fatalf("same seed produced different serve output:\n--- first\n%s\n--- second\n%s", first, second)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"bad arrival kind", []string{"-serve", "bogus:100"}},
		{"negative rps", []string{"-serve", "poisson:-5"}},
		{"malformed rps", []string{"-serve", "poisson:fast"}},
		{"zero slo", []string{"-serve", "poisson:100", "-slo", "0s"}},
		{"negative slo", []string{"-serve", "poisson:100", "-slo", "-10ms"}},
		{"zero duration", []string{"-serve", "poisson:100", "-duration", "0s"}},
		{"serve with exp", []string{"-serve", "poisson:100", "-exp", "fig3"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("%v exited %v, want exit code 2", c.args, err)
			}
			if !strings.Contains(stderr.String(), "usage:") {
				t.Errorf("stderr missing usage line:\n%s", stderr.String())
			}
		})
	}
}

// TestXdmbenchCapacity runs the automated capacity sweep end to end: the
// ramp must find the knee (OVERLOAD verdict plus a finite max) for both
// configurations, xdm must sustain more than static, and the report must be
// byte-identical at -workers 1 and 8.
func TestXdmbenchCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs the capacity ramps")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "xdmbench")

	run := func(workers string) string {
		outFile := filepath.Join(dir, "cap."+workers+".txt")
		if out, err := exec.Command(bin, "-capacity", "-scale", "8",
			"-workers", workers, "-o", outFile).CombinedOutput(); err != nil {
			t.Fatalf("-capacity -workers %s: %v\n%s", workers, err, out)
		}
		data, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	report := run("1")
	for _, want := range []string{"## capacity: static-ssd", "## capacity: xdm",
		"OVERLOAD", "max sustainable:"} {
		if !strings.Contains(report, want) {
			t.Errorf("capacity report missing %q:\n%s", want, report)
		}
	}
	// Both knees are finite and xdm's is strictly higher: parse the
	// "max sustainable: N req/s" line under each section.
	knee := func(section string) float64 {
		i := strings.Index(report, "## capacity: "+section)
		if i < 0 {
			t.Fatalf("no section %q", section)
		}
		rest := report[i:]
		j := strings.Index(rest, "max sustainable: ")
		if j < 0 {
			t.Fatalf("section %q has no max sustainable line", section)
		}
		var v float64
		if _, err := fmt.Sscanf(rest[j:], "max sustainable: %f req/s", &v); err != nil {
			t.Fatalf("section %q: unparseable knee: %v", section, err)
		}
		return v
	}
	s, x := knee("static-ssd"), knee("xdm")
	if s <= 0 || x <= 0 || x <= s {
		t.Errorf("knees static=%.1f xdm=%.1f; want both finite nonzero and xdm strictly higher", s, x)
	}
	if parallel := run("8"); parallel != report {
		t.Fatal("capacity report differs between -workers 1 and -workers 8")
	}

	// -capacity conflicts with the evaluation-grid output flags.
	cmd := exec.Command(bin, "-capacity", "-only", "tab6")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("-capacity -only exited %v, want exit code 2", err)
	}
	if !strings.Contains(stderr.String(), "cannot be combined") {
		t.Errorf("stderr missing diagnostic:\n%s", stderr.String())
	}
}

func TestXdmbenchOnlyValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCmd(t, t.TempDir(), "xdmbench")
	cmd := exec.Command(bin, "-o", "-", "-only", "bogus")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("-only bogus exited %v, want exit code 2", err)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnostic:\n%s", stderr.String())
	}
}
