// Command xdmtrace analyzes the observability artifacts the simulators emit
// (-metrics / -trace on xdmsim and xdmbench) and gates latency regressions.
//
// Usage:
//
//	xdmtrace summarize <metrics-artifact> [-trace t.json] [-label s] [-format text|json] [-o out]
//	xdmtrace diff <baseline> <candidate> [-rel 0.05] [-all]
//
// summarize reduces a metrics artifact (CSV or JSON) to a latency summary:
// per-histogram count/min/max/mean/p50/p95/p99, utilization timeline
// aggregates (mean, peak, idle fraction, integral), and — when -trace is
// given — the exact per-op stage attribution totals correlated from "op=N"
// spans. -format json emits the xdm-latency-summary/1 artifact that diff
// consumes and CI commits as a baseline.
//
// diff compares two summaries (either may also be a raw metrics artifact,
// which is summarized on the fly). A statistic regresses when
// new > old*(1+rel). Exit status: 0 clean, 1 regression found, 2 usage or
// artifact error (missing file, unparseable input, schema mismatch).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyze"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xdmtrace summarize <metrics-artifact> [-trace t.json] [-label s] [-format text|json] [-o out]
  xdmtrace diff <baseline> <candidate> [-rel 0.05] [-all]`)
	os.Exit(2)
}

// fail reports an artifact/usage error and exits 2 — distinct from exit 1,
// which diff reserves for a genuine latency regression.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "xdmtrace:", err)
	os.Exit(2)
}

// parseInterleaved parses fs while allowing positional arguments before,
// between, or after flags (package flag alone stops at the first positional,
// which would reject the documented `summarize <artifact> -trace t.json`).
func parseInterleaved(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for {
		fs.Parse(args)
		args = fs.Args()
		if len(args) == 0 {
			return pos
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summarize":
		runSummarize(os.Args[2:])
	case "diff":
		runDiff(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "xdmtrace: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

func runSummarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	traceIn := fs.String("trace", "", "correlate this trace's op=N spans into stage attribution")
	label := fs.String("label", "", "label recorded in the summary")
	format := fs.String("format", "text", "output format: text | json")
	out := fs.String("o", "", "output file (default stdout)")
	pos := parseInterleaved(fs, args)
	if len(pos) != 1 {
		usage()
	}
	if *format != "text" && *format != "json" {
		fail(fmt.Errorf("unknown -format %q (want text or json)", *format))
	}

	m, err := analyze.ParseMetricsFile(pos[0])
	if err != nil {
		fail(err)
	}
	s := analyze.Summarize(m, *label)
	if *traceIn != "" {
		tr, err := analyze.ParseTraceFile(*traceIn)
		if err != nil {
			fail(err)
		}
		s.AttachStages(analyze.Correlate(tr))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if *format == "json" {
		data, err := s.Render()
		if err != nil {
			fail(err)
		}
		w.Write(data)
		return
	}
	renderText(w, s)
}

func renderText(w *os.File, s *analyze.Summary) {
	if s.Label != "" {
		fmt.Fprintf(w, "summary %s (source %s)\n\n", s.Label, s.Source)
	}
	fmt.Fprintf(w, "%-36s %8s %12s %12s %12s %12s %12s\n",
		"histogram", "count", "min", "p50", "p95", "p99", "max")
	for _, h := range s.Hists {
		fmt.Fprintf(w, "%-36s %8d %12.0f %12.0f %12.0f %12.0f %12.0f\n",
			h.Name, h.Count, h.Min, h.P50, h.P95, h.P99, h.Max)
	}
	if len(s.Utils) > 0 {
		fmt.Fprintf(w, "\n%-36s %10s %10s %8s %14s\n", "timeline", "mean", "peak", "idle", "integral")
		for _, u := range s.Utils {
			fmt.Fprintf(w, "%-36s %10.4f %10.4f %7.1f%% %14.4f\n",
				u.Name, u.Mean, u.Peak, u.Idle*100, u.Integral)
		}
	}
	if t := s.Stages; t != nil && t.Ops > 0 {
		fmt.Fprintf(w, "\nstage attribution over %d ops (%% of e2e)\n", t.Ops)
		total := float64(t.E2ENs)
		row := func(name string, ns int64) {
			pct := 0.0
			if total > 0 {
				pct = float64(ns) / total * 100
			}
			fmt.Fprintf(w, "  %-14s %14d ns %6.1f%%\n", name, ns, pct)
		}
		row("queue", t.QueueNs)
		row("arbitrate", t.ArbitrateNs)
		row("transfer", t.TransferNs)
		row("host-copy", t.HostCopyNs)
		row("unattributed", t.UnattributedNs)
		fmt.Fprintf(w, "  %-14s %14d ns\n", "e2e", t.E2ENs)
	}
}

// loadSummary reads path as either a latency summary or a raw metrics
// artifact (summarized on the fly), dispatching on the embedded schema.
func loadSummary(path string) *analyze.Summary {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	schema := analyze.SchemaOf(data)
	switch {
	case schema == analyze.SummarySchema:
		s, err := analyze.ParseSummary(data)
		if err != nil {
			fail(err)
		}
		return s
	case strings.HasPrefix(schema, "xdm-metrics/"):
		m, err := analyze.ParseMetrics(data)
		if err != nil {
			fail(err)
		}
		s := analyze.Summarize(m, "")
		if s.Source == "" {
			// Pre-versioning CSV artifacts carry no schema line; SchemaOf
			// still identifies them, so v1-vs-v2 diffs are refused rather
			// than silently compared.
			s.Source = schema
		}
		return s
	case schema == "":
		fail(fmt.Errorf("%s: unrecognized artifact (no schema)", path))
	default:
		fail(fmt.Errorf("%s: unsupported artifact schema %q", path, schema))
	}
	panic("unreachable")
}

func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rel := fs.Float64("rel", 0.05, "relative degradation tolerated before flagging")
	all := fs.Bool("all", false, "print unchanged metrics too")
	pos := parseInterleaved(fs, args)
	if len(pos) != 2 {
		usage()
	}
	old := loadSummary(pos[0])
	new_ := loadSummary(pos[1])
	res, err := analyze.Diff(old, new_, analyze.DiffOptions{Rel: *rel})
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Render(!*all))
	if regs := res.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "xdmtrace: %d metric(s) regressed beyond %.0f%%\n", len(regs), *rel*100)
		os.Exit(1)
	}
	fmt.Printf("no regressions (%d metrics compared, rel %.0f%%)\n", len(res.Deltas), *rel*100)
}
