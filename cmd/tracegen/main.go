// Command tracegen emits the synthetic inputs the simulation runs on, as
// CSV, for inspection or external analysis:
//
//	tracegen -kind pages -workload lg-bfs -n 10000   page-access trace
//	tracegen -kind features                           per-workload trace features
//	tracegen -kind cluster -trace 2018 -n 1000        cluster utilization snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/clustertrace"
	"repro/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "pages", "pages | features | cluster")
		wl    = flag.String("workload", "lg-bfs", "workload name for -kind pages")
		n     = flag.Int("n", 10000, "rows to emit")
		seed  = flag.Int64("seed", 1, "generator seed")
		trace = flag.String("trace", "2017", "cluster trace profile: 2017 | 2018")
	)
	flag.Parse()

	switch *kind {
	case "pages":
		spec, ok := workload.Find(*wl)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown -workload %q\n", *wl)
			os.Exit(2)
		}
		s := workload.NewStream(spec, *seed)
		fmt.Println("index,page,write")
		for i := 0; i < *n; i++ {
			a, ok := s.Next()
			if !ok {
				break
			}
			w := 0
			if a.Write {
				w = 1
			}
			fmt.Printf("%d,%d,%d\n", i, a.Page, w)
		}
	case "features":
		fmt.Println("workload,class,footprint_pages,anon_ratio,seq_ratio,max_seq_run,fragment_ratio,hot_ratio,load_ratio")
		for _, spec := range workload.Specs() {
			f := baseline.Profile(spec, *seed)
			fmt.Printf("%s,%s,%d,%.4f,%.4f,%d,%.4f,%.4f,%.4f\n",
				spec.Name, spec.Class, spec.FootprintPages, f.AnonRatio, f.SeqRatio,
				f.MaxSeqRunPages, f.FragmentRatio, f.HotRatio, f.LoadRatio)
		}
	case "cluster":
		p := clustertrace.Alibaba2017()
		if *trace == "2018" {
			p = clustertrace.Alibaba2018()
		}
		fmt.Println("machine,mem_utilization")
		for i, u := range clustertrace.Snapshot(p, *n, *seed) {
			fmt.Printf("%d,%.4f\n", i, u)
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
}
