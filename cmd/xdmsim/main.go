// Command xdmsim runs a single experiment from the paper's evaluation and
// prints its table(s).
//
// Usage:
//
//	xdmsim -list
//	xdmsim -exp tab6 [-scale 1] [-seed 1]
//	xdmsim -exp all
//	xdmsim -custom myspecs.json
//	xdmsim -serve poisson:400 [-slo 100ms] [-duration 5s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/workload"
)

// reportInvariants prints the per-check evaluation counts on stderr after a
// checked run, and exits non-zero if any law was violated.
func reportInvariants(cmd string) {
	invariant.WriteReport(os.Stderr)
	if invariant.Violations() > 0 {
		fmt.Fprintf(os.Stderr, "%s: simulation violated invariants\n", cmd)
		os.Exit(1)
	}
}

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (fig1b..fig19, tab6, tab7, ablation) or 'all'")
		custom = flag.String("custom", "", "JSON file of workload specs to run through the pipeline")
		scale  = flag.Int("scale", 1, "fidelity divisor: 1 = full workload sizes, larger = faster")
		seed   = flag.Int64("seed", 1, "simulation seed")
		list   = flag.Bool("list", false, "list experiment ids and exit")

		serveSpec = flag.String("serve", "",
			"open-loop serving mode: arrival spec (poisson:RPS | diurnal:RPS:AMP:PERIOD_S | flash:RPS:MULT:AT_S:FOR_S | trace:2017|2018:PEAK_RPS)")
		serveSLO = flag.Duration("slo", 100*time.Millisecond,
			"placement-delay SLO for -serve (must be > 0)")
		serveFor = flag.Duration("duration", 5*time.Second,
			"virtual arrival window for -serve (must be > 0; a drain of one quarter follows)")

		workers = flag.Int("workers", experiments.DefaultWorkers(),
			"worker goroutines per experiment grid (output is identical for any count)")
		shards = flag.Int("shards", 1,
			"shard workers inside each datacenter-arena simulation (output is identical for any count)")
		policy = flag.String("policy", "",
			"placement policy spec (alg1 | best-fit | worst-fit | one-shot | oversub[:F] | mix:name=w,... with +one-shot/+warm-pool extenders; empty keeps each experiment's default)")
		fabricFlag = flag.String("fabric", "",
			"CXL fabric topology spec ("+fabric.Usage()+"; empty keeps the fabric experiments' default)")
		invariants = flag.Bool("invariants", false,
			"enable runtime invariant checks; per-check counts are reported on stderr")
		traceOut = flag.String("trace", "",
			"write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		metricsOut = flag.String("metrics", "",
			"write counters/gauges/timelines (CSV, or JSON when the path ends in .json)")
	)
	flag.Parse()

	if *invariants {
		invariant.SetHandler(invariant.PrintingHandler(os.Stderr, 20))
		invariant.Enable()
		defer reportInvariants("xdmsim")
	}

	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "xdmsim: -scale must be a positive integer (got %d)\n", *scale)
		fmt.Fprintln(os.Stderr, "usage: xdmsim -exp <id>|all | -custom specs.json [-scale N] [-seed N]; -list shows ids")
		os.Exit(2)
	}
	if *seed < 0 {
		fmt.Fprintf(os.Stderr, "xdmsim: -seed must be non-negative (got %d)\n", *seed)
		fmt.Fprintln(os.Stderr, "usage: xdmsim -exp <id>|all | -custom specs.json [-scale N] [-seed N]; -list shows ids")
		os.Exit(2)
	}
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "xdmsim: -workers must be a positive integer (got %d)\n", *workers)
		fmt.Fprintln(os.Stderr, "usage: xdmsim -exp <id>|all | -custom specs.json [-scale N] [-seed N] [-workers N]; -list shows ids")
		os.Exit(2)
	}
	if *shards <= 0 {
		fmt.Fprintf(os.Stderr, "xdmsim: -shards must be a positive integer (got %d)\n", *shards)
		fmt.Fprintln(os.Stderr, "usage: xdmsim -exp <id>|all | -custom specs.json [-scale N] [-seed N] [-shards N]; -list shows ids")
		os.Exit(2)
	}
	if *policy != "" {
		if _, err := place.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, "xdmsim:", err)
			fmt.Fprintln(os.Stderr, "usage: xdmsim -policy <spec> with spec = alg1|best-fit|worst-fit|one-shot|oversub[:F]|mix:name=w,... (+one-shot/+warm-pool)")
			os.Exit(2)
		}
	}
	if *fabricFlag != "" {
		if _, err := fabric.ParseSpec(*fabricFlag); err != nil {
			fmt.Fprintln(os.Stderr, "xdmsim:", err)
			fmt.Fprintln(os.Stderr, "usage: xdmsim -fabric <spec> with spec = "+fabric.Usage())
			os.Exit(2)
		}
	}

	const serveUsage = "usage: xdmsim -serve <arrival-spec> [-slo 100ms] [-duration 5s] [-scale N] [-seed N]"
	var serveArr workload.ArrivalProcess
	if *serveSpec != "" {
		if *exp != "" || *custom != "" {
			fmt.Fprintln(os.Stderr, "xdmsim: -serve cannot be combined with -exp or -custom")
			fmt.Fprintln(os.Stderr, serveUsage)
			os.Exit(2)
		}
		if *serveSLO <= 0 {
			fmt.Fprintf(os.Stderr, "xdmsim: -slo must be a positive duration (got %v)\n", *serveSLO)
			fmt.Fprintln(os.Stderr, serveUsage)
			os.Exit(2)
		}
		if *serveFor <= 0 {
			fmt.Fprintf(os.Stderr, "xdmsim: -duration must be a positive duration (got %v)\n", *serveFor)
			fmt.Fprintln(os.Stderr, serveUsage)
			os.Exit(2)
		}
		arr, err := workload.ParseArrival(*serveSpec, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xdmsim:", err)
			fmt.Fprintln(os.Stderr, serveUsage)
			os.Exit(2)
		}
		serveArr = arr
	}

	observing := *traceOut != "" || *metricsOut != ""
	if observing {
		if *exp == "all" {
			fmt.Fprintln(os.Stderr, "xdmsim: -trace/-metrics cannot be combined with -exp all (one output file per experiment; use xdmbench for the full sweep)")
			fmt.Fprintln(os.Stderr, "usage: xdmsim -exp <id> [-trace t.json] [-metrics m.csv]; -list shows ids")
			os.Exit(2)
		}
		// Probe writability upfront so a bad path fails before minutes of
		// simulation, with a usage-style exit code. No O_TRUNC: an existing
		// artifact at the path must survive if the run is interrupted.
		for _, p := range []string{*traceOut, *metricsOut} {
			if p == "" {
				continue
			}
			f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o666)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xdmsim:", err)
				os.Exit(2)
			}
			f.Close()
		}
		obs.Capture()
	}
	writeObs := func() {
		if !observing {
			return
		}
		if *traceOut != "" {
			if err := obs.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "xdmsim:", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			if err := obs.WriteMetricsFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "xdmsim:", err)
				os.Exit(1)
			}
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed, Workers: *workers, ShardWorkers: *shards, Policy: *policy, Fabric: *fabricFlag}
	if serveArr != nil {
		for _, tb := range experiments.ServingOnce(opts, serveArr, sim.Duration(*serveSLO), sim.Duration(*serveFor)) {
			tb.Render(os.Stdout)
		}
		writeObs()
		return
	}
	if *custom != "" {
		f, err := os.Open(*custom)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xdmsim:", err)
			os.Exit(1)
		}
		specs, err := workload.LoadSpecs(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xdmsim:", err)
			os.Exit(1)
		}
		for _, tb := range experiments.Custom(specs, opts) {
			tb.Render(os.Stdout)
		}
		writeObs()
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: xdmsim -exp <id>|all | -custom specs.json | -serve <arrival-spec> [-scale N] [-seed N]; -list shows ids")
		os.Exit(2)
	}
	if *exp == "all" {
		for _, tb := range experiments.RunAll(opts) {
			tb.Render(os.Stdout)
		}
		return
	}
	tables, ok := experiments.Run(*exp, opts)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows ids\n", *exp)
		os.Exit(2)
	}
	for _, tb := range tables {
		tb.Render(os.Stdout)
	}
	writeObs()
}
