// Command xdmbench regenerates the paper's entire evaluation — every table
// and figure plus the ablation study — and writes the results to a file
// (default results.txt) as well as stdout. This is the one-shot
// reproduction entry point behind EXPERIMENTS.md.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/serve"
	"repro/internal/sim"
)

// perExpFile derives the per-experiment output file from a stem path:
// "out/trace.json" + "fig2b" → "out/trace.fig2b.json".
func perExpFile(stem, id string) string {
	ext := filepath.Ext(stem)
	return strings.TrimSuffix(stem, ext) + "." + id + ext
}

// writeLatencySummary reduces the experiment's captured recorders to an
// xdm-latency-summary/1 artifact: it round-trips the in-memory metrics and
// trace through their export forms so the summary matches exactly what an
// offline `xdmtrace summarize -trace ...` of the written artifacts produces.
func writeLatencySummary(path, label string) error {
	var mbuf, tbuf bytes.Buffer
	if err := obs.WriteMetricsJSON(&mbuf); err != nil {
		return err
	}
	if err := obs.WriteTrace(&tbuf); err != nil {
		return err
	}
	m, err := analyze.ParseMetrics(mbuf.Bytes())
	if err != nil {
		return err
	}
	tr, err := analyze.ParseTrace(tbuf.Bytes())
	if err != nil {
		return err
	}
	s := analyze.Summarize(m, label)
	s.AttachStages(analyze.Correlate(tr))
	return s.WriteFile(path)
}

func main() {
	var (
		out     = flag.String("o", "results.txt", "output file ('-' for stdout only)")
		scale   = flag.Int("scale", 1, "fidelity divisor: 1 = full workload sizes")
		seed    = flag.Int64("seed", 1, "simulation seed")
		format  = flag.String("format", "text", "output format: text | md | csv")
		workers = flag.Int("workers", experiments.DefaultWorkers(),
			"worker goroutines per experiment grid (output is identical for any count)")
		shards = flag.Int("shards", 1,
			"shard workers inside each datacenter-arena simulation (output is identical for any count)")
		policy = flag.String("policy", "",
			"placement policy spec (alg1 | best-fit | worst-fit | one-shot | oversub[:F] | mix:name=w,... with +one-shot/+warm-pool extenders; empty keeps each experiment's default)")
		fabricFlag = flag.String("fabric", "",
			"CXL fabric topology spec ("+fabric.Usage()+"; empty keeps the fabric experiments' default)")
		invariants = flag.Bool("invariants", false,
			"enable runtime invariant checks; per-check counts are reported on stderr")
		traceOut = flag.String("trace", "",
			"per-experiment Chrome trace-event JSON stem: t.json writes t.fig2b.json, t.tab6.json, ...")
		metricsOut = flag.String("metrics", "",
			"per-experiment metrics stem (CSV, or JSON when the path ends in .json)")
		latencyOut = flag.String("latency", "",
			"per-experiment latency-summary JSON stem (xdm-latency-summary/1, diffable with xdmtrace)")
		only = flag.String("only", "",
			"comma-separated experiment ids to run (default: all)")
		capacity = flag.Bool("capacity", false,
			"run the open-loop capacity sweep (static vs xdm) instead of the evaluation grid")
	)
	flag.Parse()

	if *invariants {
		invariant.SetHandler(invariant.PrintingHandler(os.Stderr, 20))
		invariant.Enable()
		defer func() {
			invariant.WriteReport(os.Stderr)
			if invariant.Violations() > 0 {
				fmt.Fprintln(os.Stderr, "xdmbench: simulation violated invariants")
				os.Exit(1)
			}
		}()
	}

	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "xdmbench: -workers must be a positive integer (got %d)\n", *workers)
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "xdmbench: -scale must be a positive integer (got %d)\n", *scale)
		os.Exit(2)
	}
	if *shards <= 0 {
		fmt.Fprintf(os.Stderr, "xdmbench: -shards must be a positive integer (got %d)\n", *shards)
		os.Exit(2)
	}
	if *seed < 0 {
		fmt.Fprintf(os.Stderr, "xdmbench: -seed must be non-negative (got %d)\n", *seed)
		os.Exit(2)
	}
	if *policy != "" {
		if _, err := place.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, "xdmbench:", err)
			fmt.Fprintln(os.Stderr, "usage: xdmbench -policy <spec> with spec = alg1|best-fit|worst-fit|one-shot|oversub[:F]|mix:name=w,... (+one-shot/+warm-pool)")
			os.Exit(2)
		}
	}
	if *fabricFlag != "" {
		if _, err := fabric.ParseSpec(*fabricFlag); err != nil {
			fmt.Fprintln(os.Stderr, "xdmbench:", err)
			fmt.Fprintln(os.Stderr, "usage: xdmbench -fabric <spec> with spec = "+fabric.Usage())
			os.Exit(2)
		}
	}
	if *capacity && (*only != "" || *traceOut != "" || *metricsOut != "" || *latencyOut != "") {
		fmt.Fprintln(os.Stderr, "xdmbench: -capacity cannot be combined with -only/-trace/-metrics/-latency")
		fmt.Fprintln(os.Stderr, "usage: xdmbench -capacity [-o file] [-scale N] [-seed N] [-workers N]")
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xdmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *capacity {
		opts := experiments.Options{Scale: *scale, Seed: *seed, Workers: *workers, ShardWorkers: *shards, Policy: *policy, Fabric: *fabricFlag}
		start := time.Now()
		fmt.Fprintf(w, "xDM open-loop capacity sweep (scale=%d seed=%d)\n\n", *scale, *seed)
		sweeps := append(experiments.ServingSweeps(opts), experiments.ArenaSweeps(opts)...)
		sweeps = append(sweeps, experiments.PolicyArenaSweeps(opts)...)
		sim.ResetShardRunTotals()
		fmt.Fprint(w, serve.RenderCapacity(serve.SweepGrid(sweeps, *workers)))
		fmt.Fprintf(os.Stderr, "[capacity sweep done in %v with %d workers]\n",
			time.Since(start).Round(time.Millisecond), *workers)
		reportShardTotals()
		if f != nil {
			fmt.Fprintf(os.Stderr, "results written to %s\n", *out)
		}
		return
	}

	ids := experiments.IDs()
	if *only != "" {
		known := map[string]bool{}
		for _, id := range ids {
			known[id] = true
		}
		ids = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "xdmbench: unknown experiment %q in -only\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "xdmbench: -only selected no experiments")
			os.Exit(2)
		}
	}

	observing := *traceOut != "" || *metricsOut != "" || *latencyOut != ""
	if observing {
		obs.Capture()
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Workers: *workers, ShardWorkers: *shards, Policy: *policy, Fabric: *fabricFlag}
	fmt.Fprintf(w, "xDM reproduction — full evaluation (scale=%d seed=%d)\n\n", *scale, *seed)
	experiments.ResetGridCellTime()
	sim.ResetShardRunTotals()
	wallStart := time.Now()
	for _, id := range ids {
		start := time.Now()
		if observing {
			obs.Reset() // each experiment gets its own files
		}
		tables, _ := experiments.Run(id, opts)
		for _, tb := range tables {
			switch *format {
			case "md":
				tb.RenderMarkdown(w)
			case "csv":
				tb.RenderCSV(w)
			default:
				tb.Render(w)
			}
		}
		if *traceOut != "" {
			if err := obs.WriteTraceFile(perExpFile(*traceOut, id)); err != nil {
				fmt.Fprintln(os.Stderr, "xdmbench:", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			if err := obs.WriteMetricsFile(perExpFile(*metricsOut, id)); err != nil {
				fmt.Fprintln(os.Stderr, "xdmbench:", err)
				os.Exit(1)
			}
		}
		if *latencyOut != "" {
			if err := writeLatencySummary(perExpFile(*latencyOut, id), id); err != nil {
				fmt.Fprintln(os.Stderr, "xdmbench:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	wall := time.Since(wallStart)
	// Aggregate time spent inside grid cells: what a fully serial run would
	// cost. cell/wall is the average number of cells in flight.
	cell := experiments.GridCellTime()
	fmt.Fprintf(os.Stderr, "total wall-clock %v with %d workers (aggregate cell time %v",
		wall.Round(time.Millisecond), *workers, cell.Round(time.Millisecond))
	if wall > 0 && cell > 0 {
		fmt.Fprintf(os.Stderr, ", %.2fx effective parallelism", cell.Seconds()/wall.Seconds())
	}
	fmt.Fprintln(os.Stderr, ")")
	reportShardTotals()
	if f != nil {
		fmt.Fprintf(os.Stderr, "results written to %s\n", *out)
	}
}

// reportShardTotals summarizes sharded-kernel execution on stderr: aggregate
// events per wall-clock second and the effective shard parallelism (busy
// time across shard workers over group wall time). Silent when no sharded
// simulation ran.
func reportShardTotals() {
	st := sim.ShardRunTotals()
	if st.Events == 0 || st.Wall <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "sharded kernel: %d events in %v (%.0f events/sec, %.2fx effective shard parallelism)\n",
		st.Events, st.Wall.Round(time.Millisecond),
		float64(st.Events)/st.Wall.Seconds(), st.Busy.Seconds()/st.Wall.Seconds())
}
