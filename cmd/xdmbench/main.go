// Command xdmbench regenerates the paper's entire evaluation — every table
// and figure plus the ablation study — and writes the results to a file
// (default results.txt) as well as stdout. This is the one-shot
// reproduction entry point behind EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		out    = flag.String("o", "results.txt", "output file ('-' for stdout only)")
		scale  = flag.Int("scale", 1, "fidelity divisor: 1 = full workload sizes")
		seed   = flag.Int64("seed", 1, "simulation seed")
		format = flag.String("format", "text", "output format: text | md | csv")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xdmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	fmt.Fprintf(w, "xDM reproduction — full evaluation (scale=%d seed=%d)\n\n", *scale, *seed)
	for _, id := range experiments.IDs() {
		start := time.Now()
		tables, _ := experiments.Run(id, opts)
		for _, tb := range tables {
			switch *format {
			case "md":
				tb.RenderMarkdown(w)
			case "csv":
				tb.RenderCSV(w)
			default:
				tb.Render(w)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if f != nil {
		fmt.Fprintf(os.Stderr, "results written to %s\n", *out)
	}
}
