package repro

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus the design-choice ablations from DESIGN.md §4
// and microbenchmarks of the simulation substrate itself.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Benchmarks report reproduced headline metrics via b.ReportMetric (e.g.
// speedup ratios), so the paper-facing numbers appear directly in the
// benchmark output. benchScale (default 4) trades fidelity for time; the
// standalone cmd/xdmbench binary runs everything at full scale.

import (
	"io"
	"testing"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// benchScale is the fidelity divisor for benchmark runs.
const benchScale = 4

func benchOptions() experiments.Options {
	return experiments.Options{Scale: benchScale, Seed: 1}
}

// runExperiment executes the experiment once per iteration, discarding the
// rendered output (the numbers of record live in EXPERIMENTS.md, generated
// by cmd/xdmbench at full scale).
func runExperiment(b *testing.B, id string) []experiments.Table {
	b.Helper()
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		var ok bool
		tables, ok = experiments.Run(id, benchOptions())
		if !ok {
			b.Fatalf("experiment %s missing", id)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
	return tables
}

// --- one benchmark per paper artifact ---

func BenchmarkFig1b(b *testing.B) { runExperiment(b, "fig1b") }
func BenchmarkFig2b(b *testing.B) { runExperiment(b, "fig2b") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }
func BenchmarkFig8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkTable6(b *testing.B) {
	var cells []experiments.Table6Cell
	for i := 0; i < b.N; i++ {
		cells = experiments.Table6Data(benchOptions())
	}
	var sum, max float64
	for _, c := range cells {
		sp := c.Speedup()
		sum += sp
		if sp > max {
			max = sp
		}
	}
	b.ReportMetric(sum/float64(len(cells)), "speedup-mean")
	b.ReportMetric(max, "speedup-max")
}

func BenchmarkTable7(b *testing.B) { runExperiment(b, "tab7") }

func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

func BenchmarkFig16(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		norm, _ := experiments.Fig16Data(benchOptions(), 12)
		best = 0
		for _, row := range norm {
			for _, v := range row {
				if v > best {
					best = v
				}
			}
		}
	}
	b.ReportMetric(best, "throughput-gain-max")
}

func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkCXL(b *testing.B)   { runExperiment(b, "cxl") }
func BenchmarkAlg1(b *testing.B)  { runExperiment(b, "alg1") }

func BenchmarkInterNode(b *testing.B) { runExperiment(b, "internode") }

func BenchmarkDynamic(b *testing.B) { runExperiment(b, "dynamic") }
func BenchmarkFig18(b *testing.B)   { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)   { runExperiment(b, "fig19") }

func BenchmarkFaultRecovery(b *testing.B) {
	var rows []experiments.FaultRecoveryRow
	for i := 0; i < b.N; i++ {
		rows = experiments.FaultRecoveryData(benchOptions())
	}
	// Headline: how much faster failure-aware switching restores 90% of
	// pre-fault throughput after a transient outage than a static backend.
	var staticMTTR, xdmMTTR sim.Duration
	for _, r := range rows {
		if r.Scenario.String() != "flap" {
			continue
		}
		switch r.System {
		case "static":
			staticMTTR = r.MTTR
		case "xdm-failover":
			xdmMTTR = r.MTTR
		}
	}
	if staticMTTR > 0 && xdmMTTR > 0 {
		b.ReportMetric(staticMTTR.Seconds()/xdmMTTR.Seconds(), "recovery-x")
		b.ReportMetric(xdmMTTR.Seconds(), "mttr-s")
	}
}

// --- design-choice ablations (DESIGN.md §4) ---

func BenchmarkAblationBypass(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		r = experiments.AblationBypass(benchOptions())
	}
	b.ReportMetric(r, "hier/bypass-systime")
}

func BenchmarkAblationIsolation(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		r = experiments.AblationIsolation(benchOptions())
	}
	b.ReportMetric(r, "shared/isolated-latency")
}

func BenchmarkAblationMEI(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		r = experiments.AblationMEI(benchOptions())
	}
	b.ReportMetric(r, "worst/best-backend-runtime")
}

func BenchmarkAblationKnobs(b *testing.B) {
	var g, w, a float64
	for i := 0; i < b.N; i++ {
		g = experiments.AblationKnob(benchOptions(), "granularity")
		w = experiments.AblationKnob(benchOptions(), "width")
		a = experiments.AblationKnob(benchOptions(), "adaptive")
	}
	b.ReportMetric(g, "no-gran-tuning")
	b.ReportMetric(w, "no-width-tuning")
	b.ReportMetric(a, "no-adaptive-window")
}

func BenchmarkAblationWarmStart(b *testing.B) {
	var warm, cold sim.Duration
	for i := 0; i < b.N; i++ {
		warm, cold = experiments.AblationWarmStart(benchOptions())
	}
	b.ReportMetric(warm.Seconds(), "warm-placement-s")
	b.ReportMetric(cold.Seconds(), "cold-placement-s")
}

// --- substrate microbenchmarks ---

func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Duration(i%1000), func() {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkFabricTransfers(b *testing.B) {
	eng := sim.NewEngine()
	fb := pcie.NewFabric(eng)
	link := fb.NewLink("l", units.GBps(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Transfer(4096, []*pcie.Link{link}, nil)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkDevicePageOp(b *testing.B) {
	eng := sim.NewEngine()
	h := device.NewHost(eng, pcie.Gen4, 16)
	d := h.Attach(device.SpecConnectX5("rdma"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(device.Op{Size: units.PageSize, Sequential: true}, nil)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkLRUTouch(b *testing.B) {
	ps := mem.NewPageSet(4096)
	for i := int32(0); i < 4096; i++ {
		ps.MakeResident(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Touch(int32(i%4096), sim.Time(i), i%3 == 0)
	}
}

func BenchmarkTraceRecord(b *testing.B) {
	tbl := trace.NewTable(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Record(int32(i%16384), i%4 == 0)
	}
}

func BenchmarkWorkloadStream(b *testing.B) {
	s := workload.NewStream(workload.ByName("lg-bc"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			s = workload.NewStream(workload.ByName("lg-bc"), int64(i))
		}
	}
}

func BenchmarkSwapPathOp(b *testing.B) {
	eng := sim.NewEngine()
	h := device.NewHost(eng, pcie.Gen4, 16)
	be := swap.NewDeviceBackend(eng, h.Attach(device.SpecConnectX5("rdma")))
	p := swap.NewPath(eng, be, swap.NewChannel(eng, "ch", 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SwapIn(swap.Extent{Pages: 1, Sequential: true}, nil)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkEndToEndTask(b *testing.B) {
	spec := workload.ByName("lg-bfs")
	spec.FootprintPages /= benchScale
	spec.MainAccesses /= benchScale
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
		m.AttachDevice(device.SpecTestbedSSD("ssd"))
		m.AttachDevice(device.SpecConnectX5("rdma"))
		env := baseline.Env{Machine: m, FileBackend: "ssd"}
		setup := baseline.PrepareXDM(env, m.Backend("rdma"), spec, 0.5, 1.4, 1)
		done := false
		task.New(setup.Config).Start(func(task.Stats) { done = true })
		eng.Run()
		if !done {
			b.Fatal("task did not finish")
		}
	}
}
