// Package obs is the simulation's observability layer: virtual-time spans
// and instant events (exportable as Chrome trace-event JSON for Perfetto /
// chrome://tracing), bucketed utilization and queue-depth timelines, and a
// named counter/gauge registry with CSV and JSON export.
//
// Like internal/invariant, the layer is built so that a fully instrumented
// simulation costs nearly nothing when observation is off. Every recording
// call site is guarded by a handle that instrumented components resolve once
// at construction time:
//
//	var rec *obs.Recorder
//	if obs.On {
//		rec = obs.Rec(eng)
//	}
//	...
//	if d.rec != nil { // hot path: a nil check, nothing else
//		d.rec.Span("dev/ssd0", "read", start, "")
//	}
//
// With On false (the default) the handle is nil and the hot path pays one
// predictable branch — the same contract the invariant layer proved keeps
// the event kernel within benchmark noise.
//
// Recorders are keyed by engine: each simulation run owns one engine, runs
// single-threaded, and therefore appends to its recorder without locks. The
// export layer merges all recorders into one deterministic artifact — see
// export.go for how ordering stays byte-identical at any worker count.
package obs

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// On gates every recording call site. Like invariant.On it is a plain bool:
// flip it at setup time (Enable/Capture), before simulations start, never
// mid-run from another goroutine.
var On bool

// Enable turns recording on. Components constructed afterwards on attached
// engines will record; already-constructed components keep their nil handles.
func Enable() { On = true }

// Disable turns recording off for components constructed afterwards.
func Disable() { On = false }

// DefaultTimelineWidth is the initial bucket width for auto-created
// timelines. Buckets self-coarsen, so the width only sets the finest
// resolution for short runs.
const DefaultTimelineWidth = sim.Millisecond

// MaxEventsPerRecorder caps the span/instant buffer of one recorder so a
// heavy run cannot grow a trace without bound. Events past the cap are
// counted in Dropped and reported in the metrics export.
const MaxEventsPerRecorder = 65536

var (
	regMu     sync.Mutex
	recorders = map[*sim.Engine]*Recorder{}
	order     []*Recorder // insertion order; nondeterministic under -workers
)

// Capture enables recording and attaches a Recorder to every engine created
// from now on (via the sim new-engine hook). The returned restore func
// detaches the hook and disables recording; collected data stays available
// for export until Reset.
func Capture() (restore func()) {
	Enable()
	undo := sim.SetNewEngineHook(func(e *sim.Engine) { Attach(e) })
	return func() {
		undo()
		Disable()
	}
}

// Attach creates (or returns) the Recorder for eng and registers the
// engine's step hook so event dispatch shows up as a rate timeline.
func Attach(eng *sim.Engine) *Recorder {
	regMu.Lock()
	defer regMu.Unlock()
	if r, ok := recorders[eng]; ok {
		return r
	}
	r := &Recorder{
		eng:       eng,
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		timelines: map[string]*timelineEntry{},
		hists:     map[string]*metrics.Histogram{},
		spanHists: map[spanKey]*metrics.Histogram{},
	}
	recorders[eng] = r
	order = append(order, r)
	events := r.Timeline("sim/events", DefaultTimelineWidth, ModeSum)
	eng.SetStepHook(func(at sim.Time) { events.Add(at, 1) })
	return r
}

// Rec returns the Recorder attached to eng, or nil if the engine is not
// observed. Components call it once at construction time, guarded by On,
// and cache the result.
func Rec(eng *sim.Engine) *Recorder {
	regMu.Lock()
	defer regMu.Unlock()
	return recorders[eng]
}

// Reset discards every recorder. Call between independent capture sessions
// (e.g. between experiments when each gets its own trace file).
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	recorders = map[*sim.Engine]*Recorder{}
	order = nil
}

// snapshot returns the registered recorders in insertion order. The caller
// must not rely on that order for output — see orderedRecorders.
func snapshot() []*Recorder {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Recorder, len(order))
	copy(out, order)
	return out
}

// Kind distinguishes trace event flavours; values match the Chrome
// trace-event "ph" phase letters they export as.
type Kind byte

const (
	// KindSpan is a complete duration slice ("X"): a swap-in, a device op.
	KindSpan Kind = 'X'
	// KindInstant is a point event ("i"): a fault injection, a retry.
	KindInstant Kind = 'i'
)

// Event is one recorded span or instant on a named track.
type Event struct {
	Track  string
	Name   string
	Kind   Kind
	Ts     sim.Time
	Dur    sim.Duration
	Detail string // free-form, shown in the trace viewer's args pane
}

// TimelineMode selects how a timeline bucket exports: the mean of its
// samples (level-style series such as queue depth or utilization) or their
// sum (rate-style series such as events or pages per bucket).
type TimelineMode int

const (
	ModeMean TimelineMode = iota
	ModeSum
)

type timelineEntry struct {
	name string
	mode TimelineMode
	tl   *metrics.BucketTimeline
}

// spanKey identifies a (track, name) span family. Using a struct key keeps
// the per-span histogram lookup allocation-free — no string concatenation on
// the recording hot path.
type spanKey struct {
	track, name string
}

// Counter is a named cumulative value owned by one recorder. Not atomic:
// recorders belong to single-threaded engines.
type Counter struct {
	Name  string
	Value float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Value++ }

// Add accumulates v.
func (c *Counter) Add(v float64) { c.Value += v }

// Gauge is a named point-in-time value, typically set once at Seal.
type Gauge struct {
	Name  string
	Value float64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.Value = v }

// Recorder collects observability data for one engine. All methods except
// those documented otherwise must be called from the engine's goroutine.
type Recorder struct {
	eng       *sim.Engine
	label     string
	events    []Event
	dropped   uint64
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	timelines map[string]*timelineEntry
	hists     map[string]*metrics.Histogram
	spanHists map[spanKey]*metrics.Histogram
	opID      uint64
	sealFns   []func()
	sealed    bool
}

// Engine returns the engine this recorder observes.
func (r *Recorder) Engine() *sim.Engine { return r.eng }

// SetLabel names the run in exports (the trace process name). Unlabelled
// runs export as "run<N>" in canonical order.
func (r *Recorder) SetLabel(label string) { r.label = label }

// Now is the recorder's virtual clock — shorthand for span start stamps.
func (r *Recorder) Now() sim.Time { return r.eng.Now() }

// Span records a completed slice on track from start to the current virtual
// time. Call it when the operation finishes; a start after now panics
// because it means the caller's clock arithmetic is wrong.
func (r *Recorder) Span(track, name string, start sim.Time, detail string) {
	now := r.eng.Now()
	if start > now {
		panic(fmt.Sprintf("obs: span %s/%s starts at %v after now %v", track, name, start, now))
	}
	dur := now.Sub(start)
	// Every span family also feeds a duration histogram, keyed by (track,
	// name) so the hot path never concatenates strings. Histograms live
	// outside the event cap: they are fixed-memory, so even when the trace
	// buffer saturates the latency distribution stays complete.
	h, ok := r.spanHists[spanKey{track, name}]
	if !ok {
		h = &metrics.Histogram{}
		r.spanHists[spanKey{track, name}] = h
	}
	h.Add(float64(dur))
	r.record(Event{Track: track, Name: name, Kind: KindSpan, Ts: start, Dur: dur, Detail: detail})
}

// Instant records a point event on track at the current virtual time.
func (r *Recorder) Instant(track, name, detail string) {
	r.record(Event{Track: track, Name: name, Kind: KindInstant, Ts: r.eng.Now(), Detail: detail})
}

func (r *Recorder) record(ev Event) {
	if len(r.events) >= MaxEventsPerRecorder {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Dropped reports how many events the per-recorder cap discarded.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Events returns the recorded spans and instants in recording order.
func (r *Recorder) Events() []Event { return r.events }

// Counter returns (creating on first use) the named counter.
func (r *Recorder) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{Name: name}
	r.gauges[name] = g
	return g
}

// Timeline returns (creating on first use) the named bucketed timeline.
// The width and mode of an existing timeline are left unchanged.
func (r *Recorder) Timeline(name string, width sim.Duration, mode TimelineMode) *metrics.BucketTimeline {
	if e, ok := r.timelines[name]; ok {
		return e.tl
	}
	e := &timelineEntry{name: name, mode: mode, tl: metrics.NewBucketTimeline(width)}
	r.timelines[name] = e
	return e.tl
}

// Hist returns (creating on first use) the named histogram, for explicit
// latency-style observations that are not spans (e.g. PCIe allocation wait).
func (r *Recorder) Hist(name string) *metrics.Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &metrics.Histogram{}
	r.hists[name] = h
	return h
}

// Observe records one sample into the named histogram — shorthand for
// Hist(name).Add(v) at call sites that do not cache the handle.
func (r *Recorder) Observe(name string, v float64) { r.Hist(name).Add(v) }

// NextOpID returns the next value of the recorder's monotonically increasing
// operation-id sequence, starting at 1. Layers thread the id through span
// Detail fields ("op=N") so the analysis tier can correlate a swap operation
// with the device and fabric spans it caused. Zero is reserved for "no id".
func (r *Recorder) NextOpID() uint64 {
	r.opID++
	return r.opID
}

// DetailOp renders the canonical op-correlation Detail string: "op=N", or
// "op=N s=I" when stripe >= 0. Every layer that threads an op id through its
// spans uses this one formatter so the analysis tier parses a single shape.
// Call sites must guard with a nil-recorder check — the string allocates.
func DetailOp(id uint64, stripe int) string {
	if stripe < 0 {
		return "op=" + strconv.FormatUint(id, 10)
	}
	return "op=" + strconv.FormatUint(id, 10) + " s=" + strconv.Itoa(stripe)
}

// exportHists merges the recorder's histogram namespaces for export: explicit
// Observe/Hist histograms plus the per-span-family duration histograms, the
// latter named "<track>/<name>". A name collision between the two merges into
// a fresh copy, leaving the originals untouched.
func (r *Recorder) exportHists() map[string]*metrics.Histogram {
	out := make(map[string]*metrics.Histogram, len(r.hists)+len(r.spanHists))
	for name, h := range r.hists {
		out[name] = h
	}
	for k, h := range r.spanHists {
		name := k.track + "/" + k.name
		if prev, ok := out[name]; ok {
			merged := &metrics.Histogram{}
			merged.Merge(prev)
			merged.Merge(h)
			out[name] = merged
		} else {
			out[name] = h
		}
	}
	return out
}

// OnSeal registers fn to run once when the recorder seals — the place to
// capture end-of-run gauges (utilizations, final stats) that are cheap to
// read once but too hot to track continuously.
func (r *Recorder) OnSeal(fn func()) { r.sealFns = append(r.sealFns, fn) }

// Seal runs the registered seal hooks once. Export seals every recorder
// automatically; sealing twice is a no-op.
func (r *Recorder) Seal() {
	if r.sealed {
		return
	}
	r.sealed = true
	for _, fn := range r.sealFns {
		fn()
	}
}
