package obs_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
)

// update rewrites the golden observability corpus instead of comparing:
//
//	go test ./internal/obs -run Golden -update
var update = flag.Bool("update", false, "rewrite golden observability corpus")

// goldenScenario runs a small fixed scenario exercising every recorder
// surface — device spans, swap-path retries, channel queueing, a PCIe link,
// and a fault flap — and returns the sealed exports. The scenario is fully
// deterministic (no RNG), so the files under testdata must be byte-stable.
func goldenScenario(t *testing.T) (trace, csv, jsonOut []byte) {
	t.Helper()
	obs.Reset()
	restore := obs.Capture()
	defer func() {
		restore()
		obs.Reset()
	}()

	eng := sim.NewEngine()
	rec := obs.Rec(eng)
	rec.SetLabel("golden")

	fabric := pcie.NewFabric(eng)
	dev := device.New(eng, fabric, device.SpecTestbedSSD("ssd0"))
	backend := swap.NewDeviceBackend(eng, dev)
	ch := swap.NewChannel(eng, "vmA", 4)
	path := swap.NewPath(eng, backend, ch)
	path.Retry = swap.DefaultRetryPolicy(device.SSD)

	inj := faults.NewInjector(eng)
	inj.Register(dev)
	inj.Apply(faults.Schedule{Events: []faults.Event{{
		At: 2 * sim.Millisecond, Target: "ssd0", Kind: faults.Flap,
		Duration: 5 * sim.Millisecond,
	}}})

	// 32 chained swap-ins with interleaved swap-outs: issue the next op when
	// the previous completes, so some land inside the flap window.
	var issue func(i int)
	issue = func(i int) {
		if i >= 32 {
			return
		}
		ex := swap.Extent{Pages: 4, Sequential: true}
		if i%5 == 4 {
			ex.Write = true
			path.SwapOut(ex, func(sim.Duration) { issue(i + 1) })
			return
		}
		path.SwapIn(ex, func(sim.Duration) { issue(i + 1) })
	}
	eng.After(0, func() { issue(0) })
	eng.Run()

	var tb, cb, jb bytes.Buffer
	if err := obs.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), cb.Bytes(), jb.Bytes()
}

// diffLines renders the first divergences so a golden failure points at the
// drifted line (same convention as internal/experiments).
func diffLines(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  golden: %s\n  got:    %s\n", i+1, w, g)
		shown++
		if shown >= 8 {
			fmt.Fprintf(&b, "... (further differences suppressed)\n")
			break
		}
	}
	return b.String()
}

// TestGoldenObservability locks the trace and metrics exports of the fixed
// scenario to checked-in files. Drift in event ordering, timestamp
// formatting, track naming, or export layout fails here with a line diff;
// after an intentional change regenerate with -update and review the diff.
func TestGoldenObservability(t *testing.T) {
	trace, csv, jsonOut := goldenScenario(t)
	files := []struct {
		name string
		got  []byte
	}{
		{"scenario.trace.json", trace},
		{"scenario.metrics.csv", csv},
		{"scenario.metrics.json", jsonOut},
	}
	for _, f := range files {
		path := filepath.Join("testdata", f.name)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, f.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("no golden file %s (run: go test ./internal/obs -run Golden -update): %v", path, err)
		}
		if !bytes.Equal(want, f.got) {
			t.Errorf("%s drifted from golden:\n%s", path, diffLines(want, f.got))
		}
	}
}

// TestGoldenObservabilityStable reruns the scenario and demands bytes
// identical to the first run — the in-process determinism half of the
// byte-identical-across-reruns acceptance gate (the CLI half lives in
// cmd_integration_test.go).
func TestGoldenObservabilityStable(t *testing.T) {
	t1, c1, j1 := goldenScenario(t)
	t2, c2, j2 := goldenScenario(t)
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace differs between identical runs:\n%s", diffLines(t1, t2))
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("metrics CSV differs between identical runs:\n%s", diffLines(c1, c2))
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("metrics JSON differs between identical runs:\n%s", diffLines(j1, j2))
	}
}
