package obs_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The zero-cost-when-off contract: with obs disabled, the instrumented hot
// paths must not allocate. CI's bench-smoke additionally runs the sim
// package's BenchmarkEngineSchedule / BenchmarkStationSubmit (which now
// carry the hook fields) against the BENCH_sim.json numbers of record.

func TestDisabledEngineScheduleZeroAlloc(t *testing.T) {
	obs.Reset()
	eng := sim.NewEngine()
	fn := func() {}
	// Warm the heap, slot table, and free lists to steady state first.
	for i := 0; i < 4096; i++ {
		eng.After(sim.Duration(i%100), fn)
	}
	eng.Run()
	n := testing.AllocsPerRun(1000, func() {
		eng.After(10, fn)
		eng.Run()
	})
	if n != 0 {
		t.Errorf("disabled-path schedule+run allocates %.1f/op, want 0", n)
	}
}

func TestDisabledStationSubmitZeroAlloc(t *testing.T) {
	obs.Reset()
	eng := sim.NewEngine()
	st := sim.NewStation(eng, 4)
	done := func(sim.Duration) {}
	for i := 0; i < 4096; i++ {
		st.Submit(sim.Duration(10+i%90), done)
	}
	eng.Run()
	n := testing.AllocsPerRun(1000, func() {
		st.Submit(10, done)
		eng.Run()
	})
	if n != 0 {
		t.Errorf("disabled-path station submit allocates %.1f/op, want 0", n)
	}
}

// BenchmarkEngineScheduleDisabled mirrors sim.BenchmarkEngineSchedule from
// outside the package with observability compiled in but off — the apples-
// to-apples disabled-path number for BENCH_sim.json comparisons.
func BenchmarkEngineScheduleDisabled(b *testing.B) {
	obs.Reset()
	eng := sim.NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Duration(i%100), fn)
		if i%512 == 511 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkStationSubmitDisabled mirrors sim.BenchmarkStationSubmit with the
// observer field present but nil.
func BenchmarkStationSubmitDisabled(b *testing.B) {
	obs.Reset()
	eng := sim.NewEngine()
	st := sim.NewStation(eng, 4)
	done := func(sim.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(sim.Duration(10+i%90), done)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkEngineScheduleObserved is the enabled-path cost: every Step also
// bumps the sim/events timeline. Not a regression gate — it quantifies what
// turning tracing on costs.
func BenchmarkEngineScheduleObserved(b *testing.B) {
	obs.Reset()
	restore := obs.Capture()
	defer func() {
		restore()
		obs.Reset()
	}()
	eng := sim.NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Duration(i%100), fn)
		if i%512 == 511 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkRecorderSpan measures recording one completed span (the per-op
// cost a device pays while tracing is on).
func BenchmarkRecorderSpan(b *testing.B) {
	obs.Reset()
	restore := obs.Capture()
	defer func() {
		restore()
		obs.Reset()
	}()
	r := obs.Rec(sim.NewEngine())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Span("dev/bench", "op", 0, "")
	}
}
