package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Deterministic export ordering. Recorders register from experiment worker
// goroutines, so insertion order varies run to run and with -workers. Each
// recorder's own content, however, is fully deterministic: its engine runs
// single-threaded and the grid always executes the same cells. So we order
// runs by a canonical signature — the recorder's own serialized bytes,
// rendered with a placeholder run id of 0 — and then assign final run ids
// (trace pids) by sorted position. Two recorders can only tie if their
// contents are byte-identical, in which case either order yields the same
// file. The result: exports are byte-identical across reruns at any worker
// count.

// orderedRecorders seals every recorder and returns them in canonical order.
func orderedRecorders() []*Recorder {
	recs := snapshot()
	type keyed struct {
		r   *Recorder
		sig string
	}
	ks := make([]keyed, len(recs))
	for i, r := range recs {
		r.Seal()
		var tb, mb bytes.Buffer
		r.writeTraceChunk(&tb, 0)
		r.writeMetricsCSVChunk(&mb, 0)
		ks[i] = keyed{r: r, sig: tb.String() + "\x00" + mb.String()}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].sig < ks[b].sig })
	for i, k := range ks {
		recs[i] = k.r
	}
	return recs
}

func sortedCounterNames(r *Recorder) []string {
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sortedGaugeNames(r *Recorder) []string {
	out := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MetricsSchema versions the metrics artifact layout. The CSV export carries
// it as a leading "# schema:" comment line and the JSON export as a top-level
// "schema" key; consumers (internal/analyze, cmd/xdmtrace) refuse to diff
// artifacts whose schemas disagree. Bump it when rows/keys change shape.
const MetricsSchema = "xdm-metrics/2"

func sortedHistNames(hists map[string]*metrics.Histogram) []string {
	out := make([]string, 0, len(hists))
	for name := range hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sortedTimelineNames(r *Recorder) []string {
	out := make([]string, 0, len(r.timelines))
	for name := range r.timelines {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// fmtFloat renders v in the shortest round-trip form ('g', like %v).
// Non-finite values render as 0: NaN/±Inf are not valid JSON tokens, and a
// clamped sample beats an artifact no parser will load.
func fmtFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvField strips CSV/record structure characters from free-form text
// (labels); registered metric names are expected to avoid them by
// construction.
func csvField(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ',', '\n', '\r', '"':
			return ';'
		}
		return r
	}, s)
}

// WriteMetricsCSV writes every captured recorder's counters, gauges, and
// timelines as CSV with columns run,type,name,key,value. Timeline rows carry
// the bucket index in key (plus one width_ns row); scalar rows leave key
// empty. Ordering is canonical (see orderedRecorders).
func WriteMetricsCSV(w io.Writer) error {
	recs := orderedRecorders()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# schema: %s\n", MetricsSchema)
	buf.WriteString("run,type,name,key,value\n")
	for run, r := range recs {
		r.writeMetricsCSVChunk(&buf, run)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeMetricsCSVChunk renders one recorder's rows. Like writeTraceChunk it
// is a pure function of content and run id, so it doubles as the metrics
// half of the canonical ordering signature.
func (r *Recorder) writeMetricsCSVChunk(buf *bytes.Buffer, run int) {
	if r.label != "" {
		fmt.Fprintf(buf, "%d,label,%s,,\n", run, csvField(r.label))
	}
	fmt.Fprintf(buf, "%d,recorder,events,,%d\n", run, len(r.events))
	fmt.Fprintf(buf, "%d,recorder,dropped,,%d\n", run, r.dropped)
	for _, name := range sortedCounterNames(r) {
		fmt.Fprintf(buf, "%d,counter,%s,,%s\n", run, name, fmtFloat(r.counters[name].Value))
	}
	for _, name := range sortedGaugeNames(r) {
		fmt.Fprintf(buf, "%d,gauge,%s,,%s\n", run, name, fmtFloat(r.gauges[name].Value))
	}
	hists := r.exportHists()
	for _, name := range sortedHistNames(hists) {
		h := hists[name]
		fmt.Fprintf(buf, "%d,hist,%s,count,%d\n", run, name, h.Count())
		fmt.Fprintf(buf, "%d,hist,%s,sum,%s\n", run, name, fmtFloat(h.Sum()))
		fmt.Fprintf(buf, "%d,hist,%s,min,%s\n", run, name, fmtFloat(h.Min()))
		fmt.Fprintf(buf, "%d,hist,%s,max,%s\n", run, name, fmtFloat(h.Max()))
		fmt.Fprintf(buf, "%d,hist,%s,p50,%s\n", run, name, fmtFloat(h.Quantile(0.50)))
		fmt.Fprintf(buf, "%d,hist,%s,p95,%s\n", run, name, fmtFloat(h.Quantile(0.95)))
		fmt.Fprintf(buf, "%d,hist,%s,p99,%s\n", run, name, fmtFloat(h.Quantile(0.99)))
		idx, counts := h.Buckets()
		for i, bi := range idx {
			fmt.Fprintf(buf, "%d,hist,%s,b%d,%d\n", run, name, bi, counts[i])
		}
	}
	for _, name := range sortedTimelineNames(r) {
		e := r.timelines[name]
		fmt.Fprintf(buf, "%d,timeline,%s,width_ns,%d\n", run, name, int64(e.tl.Width()))
		for i := 0; i < e.tl.Len(); i++ {
			if e.tl.Count(i) == 0 {
				continue
			}
			v := e.tl.BucketMean(i)
			if e.mode == ModeSum {
				v = e.tl.Sum(i)
			}
			fmt.Fprintf(buf, "%d,timeline,%s,%d,%s\n", run, name, i, fmtFloat(v))
		}
	}
}

// WriteMetricsJSON writes the same data as WriteMetricsCSV as one JSON
// object, hand-rendered so key order (and therefore the bytes) is fixed.
func WriteMetricsJSON(w io.Writer) error {
	recs := orderedRecorders()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"schema":%q,"runs":[`, MetricsSchema)
	for run, r := range recs {
		if run > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"run":%d,"label":%s,"events":%d,"dropped":%d`,
			run, jsonString(r.label), len(r.events), r.dropped)
		buf.WriteString(`,"counters":{`)
		for i, name := range sortedCounterNames(r) {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, `%s:%s`, jsonString(name), fmtFloat(r.counters[name].Value))
		}
		buf.WriteString(`},"gauges":{`)
		for i, name := range sortedGaugeNames(r) {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, `%s:%s`, jsonString(name), fmtFloat(r.gauges[name].Value))
		}
		buf.WriteString(`},"hists":[`)
		hists := r.exportHists()
		for i, name := range sortedHistNames(hists) {
			if i > 0 {
				buf.WriteByte(',')
			}
			h := hists[name]
			fmt.Fprintf(&buf, `{"name":%s,"count":%d,"sum":%s,"min":%s,"max":%s,"p50":%s,"p95":%s,"p99":%s,"buckets":[`,
				jsonString(name), h.Count(), fmtFloat(h.Sum()), fmtFloat(h.Min()), fmtFloat(h.Max()),
				fmtFloat(h.Quantile(0.50)), fmtFloat(h.Quantile(0.95)), fmtFloat(h.Quantile(0.99)))
			idx, counts := h.Buckets()
			for j, bi := range idx {
				if j > 0 {
					buf.WriteByte(',')
				}
				fmt.Fprintf(&buf, `{"i":%d,"c":%d}`, bi, counts[j])
			}
			buf.WriteString(`]}`)
		}
		buf.WriteString(`],"timelines":[`)
		for i, name := range sortedTimelineNames(r) {
			if i > 0 {
				buf.WriteByte(',')
			}
			e := r.timelines[name]
			mode := "mean"
			if e.mode == ModeSum {
				mode = "sum"
			}
			fmt.Fprintf(&buf, `{"name":%s,"mode":%q,"width_ns":%d,"buckets":[`,
				jsonString(name), mode, int64(e.tl.Width()))
			wrote := false
			for b := 0; b < e.tl.Len(); b++ {
				if e.tl.Count(b) == 0 {
					continue
				}
				if wrote {
					buf.WriteByte(',')
				}
				wrote = true
				v := e.tl.BucketMean(b)
				if e.mode == ModeSum {
					v = e.tl.Sum(b)
				}
				fmt.Fprintf(&buf, `{"i":%d,"v":%s}`, b, fmtFloat(v))
			}
			buf.WriteString(`]}`)
		}
		buf.WriteString(`]}`)
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteMetricsFile writes metrics to path: JSON when the path ends in
// .json, CSV otherwise.
func WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := WriteMetricsCSV
	if strings.HasSuffix(path, ".json") {
		write = WriteMetricsJSON
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
