package obs

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// stationObs adapts a sim.Station's telemetry callbacks onto a recorder's
// timelines and counters.
type stationObs struct {
	depth  *metrics.BucketTimeline // queue length seen by each arrival
	wait   *metrics.BucketTimeline // time spent waiting (sojourn - service)
	waitH  *metrics.Histogram      // full wait distribution (quantiles)
	served *Counter
}

func (o *stationObs) StationSubmit(at sim.Time, queued int) {
	o.depth.Add(at, float64(queued))
}

func (o *stationObs) StationDone(at sim.Time, service, sojourn sim.Duration) {
	o.served.Inc()
	o.wait.Add(at, float64(sojourn-service))
	o.waitH.Add(float64(sojourn - service))
}

// ObserveStation instruments a queueing station under the given track name:
// a <track>/queue timeline of queue depth at arrival, a <track>/wait
// timeline of mean queueing delay (ns) plus a <track>/wait histogram for
// quantiles, a <track>/served counter, and a <track>/utilization gauge
// captured at seal. Callers guard with On and a nil recorder check, like
// every other hook.
func ObserveStation(r *Recorder, st *sim.Station, track string) {
	if r == nil || st == nil {
		return
	}
	o := &stationObs{
		depth:  r.Timeline(track+"/queue", DefaultTimelineWidth, ModeMean),
		wait:   r.Timeline(track+"/wait", DefaultTimelineWidth, ModeMean),
		waitH:  r.Hist(track + "/wait"),
		served: r.Counter(track + "/served"),
	}
	st.SetObserver(o)
	r.OnSeal(func() {
		r.Gauge(track + "/utilization").Set(st.Utilization())
	})
}
