package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// withCapture runs fn with recording enabled and a clean registry, restoring
// global state afterwards. obs tests run sequentially (package-level state).
func withCapture(t *testing.T, fn func()) {
	t.Helper()
	obs.Reset()
	restore := obs.Capture()
	defer func() {
		restore()
		obs.Reset()
	}()
	fn()
}

func TestCaptureAttachesNewEngines(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		if obs.Rec(eng) == nil {
			t.Fatalf("engine created under Capture has no recorder")
		}
		un := sim.NewUnobservedEngine()
		if obs.Rec(un) != nil {
			t.Fatalf("NewUnobservedEngine must bypass the capture hook")
		}
	})
	eng := sim.NewEngine()
	if obs.Rec(eng) != nil {
		t.Fatalf("engine created after restore still observed")
	}
}

func TestRecorderSpanAndInstant(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		r := obs.Rec(eng)
		eng.After(5*sim.Millisecond, func() {
			start := r.Now()
			eng.After(2*sim.Millisecond, func() {
				r.Span("dev/x", "read", start, "4KiB")
				r.Instant("faults", "flap", "dev/x")
			})
		})
		eng.Run()

		evs := r.Events()
		if len(evs) != 2 {
			t.Fatalf("got %d events, want 2", len(evs))
		}
		sp := evs[0]
		if sp.Kind != obs.KindSpan || sp.Track != "dev/x" || sp.Name != "read" {
			t.Errorf("span = %+v", sp)
		}
		if sp.Ts != sim.Time(5*sim.Millisecond) || sp.Dur != 2*sim.Millisecond {
			t.Errorf("span timing ts=%v dur=%v", sp.Ts, sp.Dur)
		}
		if in := evs[1]; in.Kind != obs.KindInstant || in.Ts != sim.Time(7*sim.Millisecond) {
			t.Errorf("instant = %+v", in)
		}
	})
}

func TestRecorderEventCap(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		r := obs.Rec(eng)
		for i := 0; i < obs.MaxEventsPerRecorder+10; i++ {
			r.Instant("t", "e", "")
		}
		if len(r.Events()) != obs.MaxEventsPerRecorder {
			t.Errorf("events %d, want cap %d", len(r.Events()), obs.MaxEventsPerRecorder)
		}
		if r.Dropped() != 10 {
			t.Errorf("dropped %d, want 10", r.Dropped())
		}
	})
}

func TestCounterRegistry(t *testing.T) {
	tests := []struct {
		name string
		ops  func(r *obs.Recorder)
		want float64
	}{
		{"inc", func(r *obs.Recorder) {
			c := r.Counter("c")
			c.Inc()
			c.Inc()
		}, 2},
		{"add", func(r *obs.Recorder) { r.Counter("c").Add(3.5) }, 3.5},
		{"same name same counter", func(r *obs.Recorder) {
			r.Counter("c").Inc()
			r.Counter("c").Add(4)
		}, 5},
		{"distinct names distinct counters", func(r *obs.Recorder) {
			r.Counter("other").Add(100)
			r.Counter("c").Inc()
		}, 1},
		{"untouched counter reads zero", func(r *obs.Recorder) { r.Counter("c") }, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			withCapture(t, func() {
				r := obs.Rec(sim.NewEngine())
				tc.ops(r)
				if got := r.Counter("c").Value; got != tc.want {
					t.Errorf("counter value = %g, want %g", got, tc.want)
				}
			})
		})
	}
}

func TestGaugeAndTimelineRegistry(t *testing.T) {
	withCapture(t, func() {
		r := obs.Rec(sim.NewEngine())
		r.Gauge("g").Set(1)
		r.Gauge("g").Set(7) // same gauge, last write wins
		if got := r.Gauge("g").Value; got != 7 {
			t.Errorf("gauge = %g, want 7", got)
		}
		tl := r.Timeline("tl", sim.Millisecond, obs.ModeSum)
		if r.Timeline("tl", sim.Second, obs.ModeMean) != tl {
			t.Errorf("same name must return the same timeline")
		}
	})
}

func TestSealRunsOnce(t *testing.T) {
	withCapture(t, func() {
		r := obs.Rec(sim.NewEngine())
		n := 0
		r.OnSeal(func() { n++ })
		r.Seal()
		r.Seal()
		if n != 1 {
			t.Errorf("seal hook ran %d times, want 1", n)
		}
	})
}

func TestTraceExportShape(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		r := obs.Rec(eng)
		r.SetLabel("shape")
		eng.After(sim.Millisecond, func() {
			r.Span("trackA", "op", 0, "")
			r.Instant("trackB", "tick", "x")
		})
		eng.Run()
		r.Timeline("tl", sim.Millisecond, obs.ModeSum).Add(0, 2)

		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			DisplayTimeUnit string `json:"displayTimeUnit"`
			TraceEvents     []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Pid  int            `json:"pid"`
				Tid  int            `json:"tid"`
				Ts   float64        `json:"ts"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		phases := map[string]int{}
		var procName string
		for _, ev := range doc.TraceEvents {
			phases[ev.Ph]++
			if ev.Ph == "M" && ev.Name == "process_name" {
				procName, _ = ev.Args["name"].(string)
			}
		}
		if procName != "shape" {
			t.Errorf("process_name = %q, want label", procName)
		}
		// 1 process_name + track metadata, 1 span, 1 instant, counter points.
		if phases["X"] != 1 || phases["i"] != 1 || phases["C"] == 0 || phases["M"] < 2 {
			t.Errorf("phase census = %v", phases)
		}
	})
}

func TestMetricsCSVShape(t *testing.T) {
	withCapture(t, func() {
		r := obs.Rec(sim.NewEngine())
		r.Counter("z").Add(1)
		r.Counter("a").Add(2)
		r.Gauge("g").Set(0.5)
		r.Timeline("tl", sim.Millisecond, obs.ModeMean).Add(0, 4)

		var buf bytes.Buffer
		if err := obs.WriteMetricsCSV(&buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if lines[0] != "# schema: "+obs.MetricsSchema {
			t.Fatalf("schema line = %q", lines[0])
		}
		if lines[1] != "run,type,name,key,value" {
			t.Fatalf("header = %q", lines[1])
		}
		joined := buf.String()
		for _, want := range []string{
			"0,counter,a,,2", "0,counter,z,,1", "0,gauge,g,,0.5",
			"0,timeline,tl,width_ns,1000000", "0,timeline,tl,0,4",
			"0,recorder,events,,0", "0,recorder,dropped,,0",
		} {
			if !strings.Contains(joined, want+"\n") {
				t.Errorf("missing row %q in:\n%s", want, joined)
			}
		}
		// Counters are name-sorted: a before z.
		if strings.Index(joined, "counter,a") > strings.Index(joined, "counter,z") {
			t.Errorf("counters not sorted:\n%s", joined)
		}
	})
}

func TestMetricsJSONShape(t *testing.T) {
	withCapture(t, func() {
		r := obs.Rec(sim.NewEngine())
		r.SetLabel("j")
		r.Counter("c").Add(2)
		r.Timeline("tl", sim.Millisecond, obs.ModeSum).Add(0, 3)

		var buf bytes.Buffer
		if err := obs.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Runs []struct {
				Run       int                `json:"run"`
				Label     string             `json:"label"`
				Counters  map[string]float64 `json:"counters"`
				Timelines []struct {
					Name    string `json:"name"`
					Mode    string `json:"mode"`
					WidthNs int64  `json:"width_ns"`
					Buckets []struct {
						I int     `json:"i"`
						V float64 `json:"v"`
					} `json:"buckets"`
				} `json:"timelines"`
			} `json:"runs"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("metrics JSON invalid: %v", err)
		}
		if len(doc.Runs) != 1 || doc.Runs[0].Label != "j" || doc.Runs[0].Counters["c"] != 2 {
			t.Fatalf("runs = %+v", doc.Runs)
		}
		found := false
		for _, tl := range doc.Runs[0].Timelines {
			if tl.Name != "tl" {
				continue // the capture hook auto-attaches sim/events
			}
			found = true
			if tl.Mode != "sum" || tl.WidthNs != 1e6 || len(tl.Buckets) == 0 || tl.Buckets[0].V != 3 {
				t.Errorf("timeline = %+v", tl)
			}
		}
		if !found {
			t.Errorf("timeline tl missing from %+v", doc.Runs[0].Timelines)
		}
	})
}

func TestCanonicalOrderIgnoresRegistrationOrder(t *testing.T) {
	// Build the same set of recorders under several registration orders; the
	// exports must come out byte-identical. Four recorders, not two: sorting
	// with a detached key slice happens to work at n=2 (the one size where
	// "swap both" and "swap neither" cover every permutation), so only n>=3
	// exercises the ordering for real.
	labels := []string{"alpha", "beta", "gamma", "delta"}
	build := func(order []int) (trace, csv string) {
		obs.Reset()
		restore := obs.Capture()
		defer func() {
			restore()
			obs.Reset()
		}()
		for _, i := range order {
			r := obs.Rec(sim.NewEngine())
			r.SetLabel(labels[i])
			r.Counter("v").Add(float64(i + 1))
			r.Instant("t", labels[i], "")
		}
		var tb, cb bytes.Buffer
		if err := obs.WriteTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), cb.String()
	}
	t1, c1 := build([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}} {
		t2, c2 := build(order)
		if t1 != t2 {
			t.Errorf("trace depends on registration order %v:\n%s\nvs\n%s", order, t1, t2)
		}
		if c1 != c2 {
			t.Errorf("metrics CSV depends on registration order %v:\n%s\nvs\n%s", order, c1, c2)
		}
	}
}

func TestNonFiniteValuesExportAsValidJSON(t *testing.T) {
	withCapture(t, func() {
		r := obs.Rec(sim.NewEngine())
		r.Gauge("nan").Set(math.NaN())
		r.Gauge("posinf").Set(math.Inf(1))
		r.Counter("neginf").Add(math.Inf(-1))
		var mb bytes.Buffer
		if err := obs.WriteMetricsJSON(&mb); err != nil {
			t.Fatal(err)
		}
		var parsed any
		if err := json.Unmarshal(mb.Bytes(), &parsed); err != nil {
			t.Fatalf("metrics JSON with non-finite values does not parse: %v\n%s", err, mb.String())
		}
		var cb bytes.Buffer
		if err := obs.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		for _, tok := range []string{"NaN", "Inf"} {
			if strings.Contains(cb.String(), tok) {
				t.Errorf("metrics CSV leaks %q token:\n%s", tok, cb.String())
			}
		}
	})
}

func TestObserveStation(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		r := obs.Rec(eng)
		st := sim.NewStation(eng, 1)
		obs.ObserveStation(r, st, "stage")
		for i := 0; i < 3; i++ {
			st.Submit(sim.Millisecond, nil)
		}
		eng.Run()
		r.Seal()
		if got := r.Counter("stage/served").Value; got != 3 {
			t.Errorf("served = %g, want 3", got)
		}
		if r.Gauge("stage/utilization").Value <= 0 {
			t.Errorf("utilization gauge not set")
		}
		// Three arrivals at t=0 with one server: the first goes straight into
		// service, so observed waiting depths are 0, 0, 1 — mean 1/3.
		q := r.Timeline("stage/queue", obs.DefaultTimelineWidth, obs.ModeMean)
		if got := q.BucketMean(0); got != 1.0/3.0 {
			t.Errorf("queue depth mean = %g, want 1/3", got)
		}
	})
}

func TestRecorderHistogramsAndOpIDs(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		r := obs.Rec(eng)

		// Op ids are monotone from 1; 0 stays reserved for "no id".
		if a, b := r.NextOpID(), r.NextOpID(); a != 1 || b != 2 {
			t.Fatalf("NextOpID sequence = %d,%d, want 1,2", a, b)
		}

		// Explicit histograms: Observe is shorthand for Hist().Add().
		r.Observe("pcie/alloc-wait", 100)
		r.Observe("pcie/alloc-wait", 300)
		r.Hist("pcie/alloc-wait").Add(300)
		if got := r.Hist("pcie/alloc-wait").Count(); got != 3 {
			t.Fatalf("hist count = %d, want 3", got)
		}

		// Every span family feeds a duration histogram automatically.
		eng.After(10*sim.Microsecond, func() { r.Span("dev/x", "read", 0, "") })
		eng.After(20*sim.Microsecond, func() { r.Span("dev/x", "read", 0, "") })
		eng.Run()

		var cb bytes.Buffer
		if err := obs.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"0,hist,pcie/alloc-wait,count,3",
			"0,hist,pcie/alloc-wait,min,100",
			"0,hist,pcie/alloc-wait,max,300",
			"0,hist,pcie/alloc-wait,sum,700",
			"0,hist,dev/x/read,count,2",
			"0,hist,dev/x/read,min,10000",
			"0,hist,dev/x/read,max,20000",
		} {
			if !strings.Contains(cb.String(), want+"\n") {
				t.Errorf("missing CSV row %q in:\n%s", want, cb.String())
			}
		}

		var mb bytes.Buffer
		if err := obs.WriteMetricsJSON(&mb); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Schema string `json:"schema"`
			Runs   []struct {
				Hists []struct {
					Name    string  `json:"name"`
					Count   int     `json:"count"`
					Sum     float64 `json:"sum"`
					Min     float64 `json:"min"`
					Max     float64 `json:"max"`
					P50     float64 `json:"p50"`
					P99     float64 `json:"p99"`
					Buckets []struct {
						I int    `json:"i"`
						C uint64 `json:"c"`
					} `json:"buckets"`
				} `json:"hists"`
			} `json:"runs"`
		}
		if err := json.Unmarshal(mb.Bytes(), &doc); err != nil {
			t.Fatalf("metrics JSON does not parse: %v\n%s", err, mb.String())
		}
		if doc.Schema != obs.MetricsSchema {
			t.Errorf("schema = %q, want %q", doc.Schema, obs.MetricsSchema)
		}
		if len(doc.Runs) != 1 || len(doc.Runs[0].Hists) != 2 {
			t.Fatalf("runs/hists shape = %+v", doc.Runs)
		}
		devx := doc.Runs[0].Hists[0]
		if devx.Name != "dev/x/read" || devx.Count != 2 || devx.Min != 10000 || devx.Max != 20000 {
			t.Errorf("dev/x/read hist = %+v", devx)
		}
		if devx.Sum != 30000 {
			t.Errorf("dev/x/read sum = %g, want 30000", devx.Sum)
		}
		if len(devx.Buckets) == 0 {
			t.Errorf("dev/x/read exported no buckets")
		}
		// Quantiles carry the log-bucket relative error bound.
		if devx.P99 < 20000*(1-1.0/32) || devx.P99 > 20000 {
			t.Errorf("p99 = %g, want ≈20000", devx.P99)
		}
	})
}

func TestStationWaitHistogram(t *testing.T) {
	withCapture(t, func() {
		eng := sim.NewEngine()
		r := obs.Rec(eng)
		st := sim.NewStation(eng, 1)
		obs.ObserveStation(r, st, "stage")
		for i := 0; i < 3; i++ {
			st.Submit(sim.Millisecond, nil)
		}
		eng.Run()
		h := r.Hist("stage/wait")
		if h.Count() != 3 {
			t.Fatalf("wait hist count = %d, want 3", h.Count())
		}
		// Waits with one server and three simultaneous 1ms jobs: 0, 1ms, 2ms.
		if h.Min() != 0 || h.Max() != float64(2*sim.Millisecond) {
			t.Errorf("wait hist min/max = %g/%g, want 0/2e6", h.Min(), h.Max())
		}
	})
}
