package obs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Chrome trace-event JSON export. The format is the one chrome://tracing and
// Perfetto load directly: a {"traceEvents":[...]} object whose events carry
// a phase letter ("X" complete span, "i" instant, "C" counter, "M"
// metadata), microsecond timestamps, and pid/tid coordinates. We map one
// simulation run (engine/recorder) to a pid and one track to a tid, name
// both with "M" metadata events, and export timelines as "C" counter series.

// WriteTrace writes every captured recorder as one Chrome trace-event JSON
// document. Output is deterministic: recorders are ordered canonically (see
// orderedRecorders), tracks lexicographically, and events by timestamp.
func WriteTrace(w io.Writer) error {
	recs := orderedRecorders()
	var buf bytes.Buffer
	buf.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for pid, r := range recs {
		if pid > 0 {
			buf.WriteByte(',')
		}
		r.writeTraceChunk(&buf, pid)
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteTraceFile writes the trace to path, creating or truncating it.
func WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tracks returns the union of event tracks and timeline names, sorted, so
// tid assignment is deterministic.
func (r *Recorder) tracks() []string {
	set := map[string]bool{}
	for i := range r.events {
		set[r.events[i].Track] = true
	}
	for name := range r.timelines {
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// writeTraceChunk renders one recorder's events as a comma-separated run of
// JSON objects (no surrounding brackets). Rendering is a pure function of
// the recorder's content and pid, which is what makes chunk bytes usable as
// a canonical ordering signature (rendered at pid 0).
func (r *Recorder) writeTraceChunk(buf *bytes.Buffer, pid int) {
	name := r.label
	if name == "" {
		name = fmt.Sprintf("run%d", pid)
	}
	fmt.Fprintf(buf, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
		pid, jsonString(name))

	tracks := r.tracks()
	tid := map[string]int{}
	for i, t := range tracks {
		tid[t] = i + 1
		fmt.Fprintf(buf, `,{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pid, i+1, jsonString(t))
	}

	// Spans and instants, grouped per track in tid order, timestamp-sorted
	// within the track (stable, so simultaneous events keep recording order).
	byTrack := map[string][]int{}
	for i := range r.events {
		byTrack[r.events[i].Track] = append(byTrack[r.events[i].Track], i)
	}
	for _, t := range tracks {
		idx := byTrack[t]
		sort.SliceStable(idx, func(a, b int) bool {
			return r.events[idx[a]].Ts < r.events[idx[b]].Ts
		})
		for _, i := range idx {
			ev := &r.events[i]
			switch ev.Kind {
			case KindSpan:
				fmt.Fprintf(buf, `,{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s`,
					jsonString(ev.Name), pid, tid[t], usec(sim.Duration(ev.Ts)), usec(ev.Dur))
			default:
				fmt.Fprintf(buf, `,{"name":%s,"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t"`,
					jsonString(ev.Name), pid, tid[t], usec(sim.Duration(ev.Ts)))
			}
			if ev.Detail != "" {
				fmt.Fprintf(buf, `,"args":{"detail":%s}`, jsonString(ev.Detail))
			}
			buf.WriteByte('}')
		}
	}

	// Timelines as counter series: one "C" event per populated bucket,
	// stamped at the bucket's start time, ascending.
	for _, name := range sortedTimelineNames(r) {
		e := r.timelines[name]
		for i := 0; i < e.tl.Len(); i++ {
			if e.tl.Count(i) == 0 {
				continue
			}
			v := e.tl.BucketMean(i)
			if e.mode == ModeSum {
				v = e.tl.Sum(i)
			}
			at := sim.Duration(i) * e.tl.Width()
			fmt.Fprintf(buf, `,{"name":%s,"ph":"C","pid":%d,"tid":%d,"ts":%s,"args":{"value":%s}}`,
				jsonString(name), pid, tid[name], usec(at), fmtFloat(v))
		}
	}
}

// usec renders a virtual duration as trace-event microseconds with
// nanosecond precision.
func usec(d sim.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/1e3)
}

// jsonString renders s as a quoted JSON string (ASCII-safe escaping).
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
