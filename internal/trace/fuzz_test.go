package trace

import "testing"

// FuzzTableRecord: arbitrary access streams keep all fused features within
// their definitional bounds.
func FuzzTableRecord(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 256
		tbl := NewTable(n)
		for i, b := range data {
			tbl.Record(int32(b), i%2 == 0)
		}
		ft := tbl.Features(n / 2)
		unit := func(name string, v float64) {
			if v < 0 || v > 1 {
				t.Fatalf("%s = %v outside [0,1]", name, v)
			}
		}
		unit("seq", ft.SeqRatio)
		unit("load", ft.LoadRatio)
		unit("hot", ft.HotRatio)
		unit("frag", ft.FragmentRatio)
		if ft.TouchedPages > n || ft.MaxSeqRunPages >= n {
			t.Fatalf("counts out of range: %+v", ft)
		}
		if uint64(len(data)) != tbl.Accesses() {
			t.Fatal("access count wrong")
		}
	})
}
