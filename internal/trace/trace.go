// Package trace implements the page trace table and the characteristic
// fusion the paper's configuration console feeds on (Fig 9a): data fragment
// ratio, page load/store ratio, hot-data segment ratio, sequential-access
// share, and the anonymous/file-backed page ratio.
//
// A Table observes a stream of page accesses (transparently to the
// application, as in the paper) and Features() fuses the synthesized
// statistics that drive backend selection and parameter adjustment.
package trace

import "sort"

// Table accumulates page-access statistics for one task. Page IDs are dense
// indices into the task's page set.
type Table struct {
	footprint int
	counts    []uint32
	loads     uint64
	stores    uint64

	lastPage int32
	haveLast bool
	seqHits  uint64
	run      int
	maxRun   int
	totalAcc uint64
	touched  int
}

// NewTable creates a trace table for a footprint of n pages.
func NewTable(n int) *Table {
	return &Table{footprint: n, counts: make([]uint32, n), lastPage: -1}
}

// Record observes one access.
func (t *Table) Record(page int32, write bool) {
	if t.counts[page] == 0 {
		t.touched++
	}
	t.counts[page]++
	t.totalAcc++
	if write {
		t.stores++
	} else {
		t.loads++
	}
	if t.haveLast && page == t.lastPage+1 {
		t.seqHits++
		t.run++
		if t.run > t.maxRun {
			t.maxRun = t.run
		}
	} else {
		t.run = 0
	}
	t.lastPage = page
	t.haveLast = true
}

// Accesses reports the total number of recorded accesses.
func (t *Table) Accesses() uint64 { return t.totalAcc }

// Touched reports how many distinct pages were accessed.
func (t *Table) Touched() int { return t.touched }

// Features is the fused multi-dimensional characteristic vector (Fig 9a).
type Features struct {
	// FootprintPages is the task's address-space size in pages.
	FootprintPages int
	// TouchedPages is the number of distinct pages accessed.
	TouchedPages int
	// AnonRatio is anonymous pages / all pages (supplied by the caller from
	// the page table; the trace itself is type-blind).
	AnonRatio float64
	// FileTrafficRatio is the measured share of *accesses* landing on
	// file-backed pages (the first footprint−anon pages of the address
	// space). Unlike AnonRatio, this tracks where the traffic actually
	// goes — a page-type ratio of 0.5 can carry anywhere between 0 and
	// 100% file traffic depending on the phase.
	FileTrafficRatio float64
	// LoadRatio is loads / (loads+stores).
	LoadRatio float64
	// SeqRatio is the fraction of accesses continuing an ascending run.
	SeqRatio float64
	// MaxSeqRunPages is the longest ascending run observed, the signal the
	// paper uses for I/O-width benefit (Fig 11).
	MaxSeqRunPages int
	// FragmentRatio is segments/touched-pages over the touched-address-space
	// segment structure: 1.0 means every touched page is isolated, →0 means
	// one contiguous extent (Fig 10).
	FragmentRatio float64
	// HotRatio is the smallest fraction of the footprint that absorbs 80% of
	// accesses — the minimum hot-data size driving local-memory sizing.
	HotRatio float64
}

// hotCoverage is the access share the hot set must cover.
const hotCoverage = 0.8

// Features fuses the table's statistics. anonPages is the count of anonymous
// pages in the task's page set (the table does not see page types).
func (t *Table) Features(anonPages int) Features {
	f := Features{
		FootprintPages: t.footprint,
		TouchedPages:   t.touched,
		AnonRatio:      float64(anonPages) / float64(t.footprint),
	}
	if t.loads+t.stores > 0 {
		f.LoadRatio = float64(t.loads) / float64(t.loads+t.stores)
	}
	if t.totalAcc > 0 {
		fileBoundary := t.footprint - anonPages
		if fileBoundary > 0 && fileBoundary <= len(t.counts) {
			var fileAcc uint64
			for _, c := range t.counts[:fileBoundary] {
				fileAcc += uint64(c)
			}
			f.FileTrafficRatio = float64(fileAcc) / float64(t.totalAcc)
		}
	}
	if t.totalAcc > 1 {
		f.SeqRatio = float64(t.seqHits) / float64(t.totalAcc-1)
	}
	f.MaxSeqRunPages = t.maxRun

	// Fragment ratio: count maximal runs of touched pages.
	segments := 0
	inSeg := false
	for _, c := range t.counts {
		if c > 0 && !inSeg {
			segments++
			inSeg = true
		} else if c == 0 {
			inSeg = false
		}
	}
	if t.touched > 0 {
		f.FragmentRatio = float64(segments) / float64(t.touched)
	}

	// Hot ratio: smallest page count covering hotCoverage of accesses.
	if t.totalAcc > 0 {
		sorted := make([]uint32, 0, t.touched)
		for _, c := range t.counts {
			if c > 0 {
				sorted = append(sorted, c)
			}
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		need := uint64(float64(t.totalAcc) * hotCoverage)
		var acc uint64
		pages := 0
		for _, c := range sorted {
			if acc >= need {
				break
			}
			acc += uint64(c)
			pages++
		}
		f.HotRatio = float64(pages) / float64(t.footprint)
	}
	return f
}

// Reset clears all recorded state, keeping the footprint.
func (t *Table) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
	t.loads, t.stores, t.seqHits, t.totalAcc = 0, 0, 0, 0
	t.run, t.maxRun, t.touched = 0, 0, 0
	t.lastPage, t.haveLast = -1, false
}
