package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSequentialStream(t *testing.T) {
	tbl := NewTable(100)
	for i := int32(0); i < 100; i++ {
		tbl.Record(i, false)
	}
	f := tbl.Features(100)
	if f.SeqRatio != 1.0 {
		t.Fatalf("seq ratio=%v, want 1.0", f.SeqRatio)
	}
	if f.MaxSeqRunPages != 99 {
		t.Fatalf("max run=%d, want 99", f.MaxSeqRunPages)
	}
	if f.FragmentRatio != 1.0/100 {
		t.Fatalf("fragment ratio=%v, want 0.01 (one segment over 100 pages)", f.FragmentRatio)
	}
	if f.LoadRatio != 1.0 {
		t.Fatalf("load ratio=%v", f.LoadRatio)
	}
	if f.TouchedPages != 100 {
		t.Fatalf("touched=%d", f.TouchedPages)
	}
}

func TestStridedStreamFullyFragmented(t *testing.T) {
	tbl := NewTable(100)
	for i := int32(0); i < 100; i += 2 {
		tbl.Record(i, false)
	}
	f := tbl.Features(100)
	if f.SeqRatio != 0 {
		t.Fatalf("stride-2 seq ratio=%v, want 0", f.SeqRatio)
	}
	if f.FragmentRatio != 1.0 {
		t.Fatalf("fragment ratio=%v, want 1.0 (all isolated)", f.FragmentRatio)
	}
}

func TestLoadStoreRatio(t *testing.T) {
	tbl := NewTable(10)
	tbl.Record(0, false)
	tbl.Record(1, false)
	tbl.Record(2, false)
	tbl.Record(3, true)
	f := tbl.Features(10)
	if f.LoadRatio != 0.75 {
		t.Fatalf("load ratio=%v, want 0.75", f.LoadRatio)
	}
}

func TestHotRatioSkewedStream(t *testing.T) {
	tbl := NewTable(100)
	// Page 0 gets 80 accesses, pages 1..20 get one each: hot set = 1 page.
	for i := 0; i < 80; i++ {
		tbl.Record(0, false)
	}
	for i := int32(1); i <= 20; i++ {
		tbl.Record(i, false)
	}
	f := tbl.Features(100)
	if f.HotRatio != 0.01 {
		t.Fatalf("hot ratio=%v, want 0.01", f.HotRatio)
	}
}

func TestHotRatioUniformStream(t *testing.T) {
	tbl := NewTable(100)
	for rep := 0; rep < 5; rep++ {
		for i := int32(0); i < 100; i++ {
			tbl.Record(i, false)
		}
	}
	f := tbl.Features(100)
	if f.HotRatio < 0.79 || f.HotRatio > 0.81 {
		t.Fatalf("uniform hot ratio=%v, want ~0.8", f.HotRatio)
	}
}

func TestAnonRatio(t *testing.T) {
	tbl := NewTable(50)
	tbl.Record(0, false)
	f := tbl.Features(30)
	if f.AnonRatio != 0.6 {
		t.Fatalf("anon ratio=%v, want 0.6", f.AnonRatio)
	}
}

func TestReset(t *testing.T) {
	tbl := NewTable(10)
	tbl.Record(0, true)
	tbl.Record(1, false)
	tbl.Reset()
	if tbl.Accesses() != 0 || tbl.Touched() != 0 {
		t.Fatal("reset incomplete")
	}
	f := tbl.Features(10)
	if f.SeqRatio != 0 || f.HotRatio != 0 || f.FragmentRatio != 0 {
		t.Fatalf("features after reset: %+v", f)
	}
}

func TestMaxRunResetsOnJump(t *testing.T) {
	tbl := NewTable(100)
	for i := int32(0); i < 10; i++ { // run of 9
		tbl.Record(i, false)
	}
	tbl.Record(50, false)
	for i := int32(51); i < 55; i++ { // run of 4
		tbl.Record(i, false)
	}
	f := tbl.Features(100)
	if f.MaxSeqRunPages != 9 {
		t.Fatalf("max run=%d, want 9", f.MaxSeqRunPages)
	}
}

// Property: all feature values stay within their definitional bounds for any
// access stream.
func TestFeatureBoundsProperty(t *testing.T) {
	f := func(pages []uint16, writes []bool) bool {
		const n = 64
		tbl := NewTable(n)
		for i, p := range pages {
			w := i < len(writes) && writes[i]
			tbl.Record(int32(p%n), w)
		}
		ft := tbl.Features(n / 2)
		inUnit := func(x float64) bool { return x >= 0 && x <= 1 }
		if !inUnit(ft.SeqRatio) || !inUnit(ft.LoadRatio) || !inUnit(ft.HotRatio) ||
			!inUnit(ft.FragmentRatio) || !inUnit(ft.AnonRatio) {
			return false
		}
		if ft.TouchedPages > ft.FootprintPages {
			return false
		}
		if ft.MaxSeqRunPages < 0 || ft.MaxSeqRunPages >= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

// Property: recording the same stream twice doubles access counts but leaves
// ratio features (which are scale-free) unchanged.
func TestFeatureScaleInvarianceProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		if len(pages) < 2 {
			return true
		}
		const n = 64
		once := NewTable(n)
		twice := NewTable(n)
		for _, p := range pages {
			once.Record(int32(p%n), false)
			twice.Record(int32(p%n), false)
		}
		for _, p := range pages {
			twice.Record(int32(p%n), false)
		}
		a, b := once.Features(n), twice.Features(n)
		// Fragment ratio and touched pages depend only on the touched set.
		return a.FragmentRatio == b.FragmentRatio && a.TouchedPages == b.TouchedPages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}
