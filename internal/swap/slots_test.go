package swap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlotAssignRelease(t *testing.T) {
	a := NewSlotAllocator(16)
	s0 := a.Assign(3)
	if s0 != 0 || a.SlotOf(3) != 0 || a.Live() != 1 {
		t.Fatalf("first assign: slot=%d live=%d", s0, a.Live())
	}
	s1 := a.Assign(5)
	if s1 != 1 {
		t.Fatalf("second assign slot=%d", s1)
	}
	a.Release(3)
	if a.SlotOf(3) != -1 || a.Live() != 1 {
		t.Fatal("release did not clear")
	}
	// Recycled slot reused.
	s2 := a.Assign(7)
	if s2 != 0 || a.Recycled() != 1 {
		t.Fatalf("recycle: slot=%d recycled=%d", s2, a.Recycled())
	}
	// Double release is a no-op.
	a.Release(3)
	if a.Live() != 2 {
		t.Fatal("double release corrupted state")
	}
}

func TestSlotReassignInvalidatesOld(t *testing.T) {
	a := NewSlotAllocator(8)
	a.Assign(1)
	a.Assign(2)
	a.Assign(1) // page 1 re-swapped: new slot, old slot stale
	cluster := a.Cluster(2, 4, func(int32) bool { return true })
	for _, p := range cluster[1:] {
		if p == 1 && a.SlotOf(1) < 2 {
			t.Fatal("stale slot entry surfaced in a cluster")
		}
	}
	if a.Live() != 2 {
		t.Fatalf("live=%d, want 2", a.Live())
	}
}

func TestSlotClusterSequentialEvictor(t *testing.T) {
	// One sequential evictor: slot clusters == address clusters.
	a := NewSlotAllocator(64)
	for p := int32(0); p < 32; p++ {
		a.Assign(p)
	}
	got := a.Cluster(8, 8, func(int32) bool { return true })
	if len(got) != 8 {
		t.Fatalf("cluster size %d, want 8", len(got))
	}
	seen := map[int32]bool{}
	for _, p := range got {
		seen[p] = true
	}
	for p := int32(8); p < 16; p++ {
		if !seen[p] {
			t.Fatalf("sequential cluster missing page %d: %v", p, got)
		}
	}
}

func TestSlotClusterInterleavedEvictors(t *testing.T) {
	// Two interleaved evictors: each cluster mixes both streams.
	a := NewSlotAllocator(64)
	for i := int32(0); i < 16; i++ {
		a.Assign(i)      // stream A: pages 0..15
		a.Assign(32 + i) // stream B: pages 32..47
	}
	got := a.Cluster(4, 8, func(int32) bool { return true })
	var fromA, fromB int
	for _, p := range got {
		if p < 32 {
			fromA++
		} else {
			fromB++
		}
	}
	if fromA == 0 || fromB == 0 {
		t.Fatalf("interleaved cluster should mix streams: %v", got)
	}
}

func TestSlotClusterNoSlot(t *testing.T) {
	a := NewSlotAllocator(8)
	got := a.Cluster(3, 8, func(int32) bool { return true })
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("slotless cluster = %v", got)
	}
}

// Property: any assign/release sequence keeps the mapping bijective on live
// entries and conserves counts.
func TestSlotAllocatorProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 64
		a := NewSlotAllocator(n)
		for _, op := range ops {
			page := int32(op % n)
			if op&0x8000 != 0 {
				a.Release(page)
			} else {
				a.Assign(page)
			}
			// Invariants: slotOf and seq agree; live matches.
			live := 0
			for p := int32(0); p < n; p++ {
				if s := a.SlotOf(p); s >= 0 {
					live++
					if s >= int32(a.SlotSpan()) || a.seq[s] != p {
						return false
					}
				}
			}
			if live != a.Live() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(111))}); err != nil {
		t.Fatal(err)
	}
}
