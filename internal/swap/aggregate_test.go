package swap

import (
	"testing"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

func newAggregate(eng *sim.Engine, n int) (*AggregateBackend, *device.Host) {
	h := device.NewHost(eng, pcie.Gen4, 16)
	members := make([]*DeviceBackend, n)
	for i := range members {
		members[i] = NewDeviceBackend(eng, h.Attach(device.SpecNVMeSSD("nvme")))
	}
	return NewAggregateBackend(eng, "xdm-ssd", members...), h
}

func TestAggregateBandwidthSums(t *testing.T) {
	eng := sim.NewEngine()
	agg, _ := newAggregate(eng, 4)
	if got := agg.Bandwidth().GB(); got < 31 || got > 33 {
		t.Fatalf("aggregate bandwidth %.1f GB/s, want ~31.6 (4x7.9, Table IV)", got)
	}
	if agg.Width() != 4*8 {
		t.Fatalf("aggregate width %d", agg.Width())
	}
}

func TestAggregateStripesLargeExtents(t *testing.T) {
	eng := sim.NewEngine()
	agg, _ := newAggregate(eng, 4)
	agg.Submit(Extent{Pages: 64, Sequential: true}, nil)
	eng.Run()
	for i, m := range agg.Members() {
		if m.Device().TotalBytes() != float64(16*units.PageSize) {
			t.Fatalf("member %d moved %v bytes, want even stripe", i, m.Device().TotalBytes())
		}
	}
}

func TestAggregateRoutesSmallExtentsToOneMember(t *testing.T) {
	eng := sim.NewEngine()
	agg, _ := newAggregate(eng, 4)
	agg.Submit(Extent{Pages: 1}, nil)
	eng.Run()
	nonZero := 0
	for _, m := range agg.Members() {
		if m.Device().TotalBytes() > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("single-page extent touched %d members, want 1", nonZero)
	}
}

func TestAggregateBalancesLoad(t *testing.T) {
	eng := sim.NewEngine()
	agg, _ := newAggregate(eng, 2)
	for i := 0; i < 16; i++ {
		agg.Submit(Extent{Pages: 1}, nil)
	}
	eng.Run()
	a := agg.Members()[0].Device().Ops.Value
	b := agg.Members()[1].Device().Ops.Value
	if a == 0 || b == 0 {
		t.Fatalf("load not balanced: %d vs %d ops", a, b)
	}
}

// The paper's core throughput claim at backend level: an aggregate of four
// devices moves bulk data ~4x faster than one device.
func TestAggregateThroughputScales(t *testing.T) {
	measure := func(n int) sim.Duration {
		eng := sim.NewEngine()
		agg, _ := newAggregate(eng, n)
		var last sim.Duration
		const extents = 64
		doneCount := 0
		for i := 0; i < extents; i++ {
			agg.Submit(Extent{Pages: 256, Sequential: true}, func(l sim.Duration) {
				doneCount++
			})
		}
		eng.Run()
		if doneCount != extents {
			t.Fatalf("only %d extents completed", doneCount)
		}
		last = sim.Duration(eng.Now())
		return last
	}
	one, four := measure(1), measure(4)
	speedup := float64(one) / float64(four)
	if speedup < 3.0 || speedup > 4.5 {
		t.Fatalf("4-device aggregate speedup %.2f, want ~4", speedup)
	}
}

func TestAggregateHeteroKindAndCost(t *testing.T) {
	eng := sim.NewEngine()
	h := device.NewHost(eng, pcie.Gen4, 16)
	ssd := NewDeviceBackend(eng, h.Attach(device.SpecNVMeSSD("nvme")))
	rdma := NewDeviceBackend(eng, h.Attach(device.SpecConnectX5("cx5")))
	agg := NewAggregateBackend(eng, "xdm-hetero", ssd, rdma)
	if agg.Kind() != device.RDMA {
		t.Fatalf("hetero kind %v, want rdma (fastest member)", agg.Kind())
	}
	cost := agg.CostPerGB()
	if cost <= ssd.CostPerGB() || cost >= rdma.CostPerGB() {
		t.Fatalf("hetero cost %.3f not between members", cost)
	}
	if agg.Name() != "xdm-hetero" {
		t.Fatal("name wrong")
	}
}

func TestAggregateSetWidthDistributes(t *testing.T) {
	eng := sim.NewEngine()
	agg, _ := newAggregate(eng, 4)
	agg.SetWidth(8)
	for _, m := range agg.Members() {
		if m.Width() != 2 {
			t.Fatalf("member width %d, want 2", m.Width())
		}
	}
	agg.SetWidth(1) // clamped to 1 per member
	for _, m := range agg.Members() {
		if m.Width() != 1 {
			t.Fatalf("member width %d, want 1", m.Width())
		}
	}
}

func TestAggregateRequiresMembers(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("empty aggregate did not panic")
		}
	}()
	NewAggregateBackend(eng, "empty")
}
