package swap

import (
	"fmt"

	"repro/internal/invariant"
)

// Registered invariants for the slot allocator: a slot recycled from the
// free pool must be stale (no double-alloc handing one slot to two pages), a
// released slot must map back to the page releasing it (no double-free, no
// freeing another page's slot), and the live count can never go negative or
// exceed the slot span. Audit() proves the full bijection.
var (
	ckSlotAlloc = invariant.Register("swap.slots.no-double-alloc")
	ckSlotFree  = invariant.Register("swap.slots.no-double-free")
	ckSlotLive  = invariant.Register("swap.slots.live-in-range")
)

// SlotAllocator manages a swap device's slot space the way the kernel's
// swap_map does: slots are handed out in scan order (so write-back order
// determines slot adjacency), freed slots are recycled lazily, and the
// allocator can answer "which pages live in the slot cluster around slot
// s?" — the exact question swap readahead asks.
//
// Slot adjacency equals eviction-time adjacency. For a single sequential
// evictor, slot clusters coincide with address clusters; with many threads
// interleaving evictions, clusters become a shuffle of all their streams.
// That difference is why kernel swap readahead degrades under concurrency
// while an address-space reader does not.
type SlotAllocator struct {
	// seq is the slot array: seq[slot] = page id, or -1 when stale/free.
	seq []int32
	// slotOf maps page id → its current slot (-1 = none).
	slotOf []int32
	// live counts non-stale slots, for occupancy reporting.
	live int
	// recycled counts slots reused from the free pool.
	recycled int
	// free holds recycled slot indices awaiting reuse.
	free []int32
}

// NewSlotAllocator creates an allocator for an address space of n pages.
func NewSlotAllocator(n int) *SlotAllocator {
	a := &SlotAllocator{slotOf: make([]int32, n)}
	for i := range a.slotOf {
		a.slotOf[i] = -1
	}
	return a
}

// Assign gives page its next slot (recycling a freed slot when available),
// invalidating any previous slot the page held. It returns the slot index.
func (a *SlotAllocator) Assign(page int32) int32 {
	if old := a.slotOf[page]; old >= 0 {
		a.seq[old] = -1
		a.live--
	}
	var slot int32
	if len(a.free) > 0 {
		slot = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		if invariant.On {
			ckSlotAlloc.Assert(a.seq[slot] < 0,
				"recycling slot %d still held by page %d", slot, a.seq[slot])
		}
		a.seq[slot] = page
		a.recycled++
	} else {
		slot = int32(len(a.seq))
		a.seq = append(a.seq, page)
	}
	a.slotOf[page] = slot
	a.live++
	if invariant.On {
		ckSlotLive.Assert(a.live >= 0 && a.live <= len(a.seq),
			"live %d outside [0, %d]", a.live, len(a.seq))
	}
	return slot
}

// Release frees page's slot (after a swap-in invalidates it, or at exit).
// Releasing a page without a slot is a no-op.
func (a *SlotAllocator) Release(page int32) {
	slot := a.slotOf[page]
	if slot < 0 {
		return
	}
	if invariant.On {
		ckSlotFree.Assert(a.seq[slot] == page,
			"releasing slot %d mapped to page %d, not releaser %d", slot, a.seq[slot], page)
	}
	a.seq[slot] = -1
	a.slotOf[page] = -1
	a.free = append(a.free, slot)
	a.live--
	if invariant.On {
		ckSlotLive.Assert(a.live >= 0, "live %d after release", a.live)
	}
}

// DropAll reclaims every occupied slot exactly once — the backend-loss
// path: when the device holding the swap space dies, all far copies are
// gone and their slots return to the free pool. Already-free slots are
// untouched (no double-free), and every page's slot mapping is cleared.
// It returns the number of slots reclaimed.
func (a *SlotAllocator) DropAll() int {
	n := 0
	for slot, page := range a.seq {
		if page < 0 {
			continue
		}
		a.seq[slot] = -1
		a.slotOf[page] = -1
		a.free = append(a.free, int32(slot))
		a.live--
		n++
	}
	if invariant.On {
		ckSlotLive.Assert(a.live == 0, "live %d after DropAll", a.live)
	}
	return n
}

// Audit verifies the allocator's full structural state: seq and slotOf are a
// mutual bijection over occupied slots, the live count matches a recount,
// and the free pool holds each stale slot at most once with no occupied
// slots in it. O(slots + pages); for tests and the metamorphic suite.
func (a *SlotAllocator) Audit() error {
	occupied := 0
	for slot, page := range a.seq {
		if page < 0 {
			continue
		}
		occupied++
		if int(page) >= len(a.slotOf) {
			return fmt.Errorf("swap audit: slot %d holds out-of-range page %d", slot, page)
		}
		if a.slotOf[page] != int32(slot) {
			return fmt.Errorf("swap audit: slot %d holds page %d, but slotOf[%d] = %d",
				slot, page, page, a.slotOf[page])
		}
	}
	for page, slot := range a.slotOf {
		if slot < 0 {
			continue
		}
		if int(slot) >= len(a.seq) {
			return fmt.Errorf("swap audit: page %d maps to out-of-range slot %d", page, slot)
		}
		if a.seq[slot] != int32(page) {
			return fmt.Errorf("swap audit: page %d maps to slot %d, but seq[%d] = %d",
				page, slot, slot, a.seq[slot])
		}
	}
	if occupied != a.live {
		return fmt.Errorf("swap audit: live counter %d, recount %d", a.live, occupied)
	}
	inFree := make(map[int32]bool, len(a.free))
	for _, slot := range a.free {
		if slot < 0 || int(slot) >= len(a.seq) {
			return fmt.Errorf("swap audit: free pool holds out-of-range slot %d", slot)
		}
		if inFree[slot] {
			return fmt.Errorf("swap audit: slot %d freed twice", slot)
		}
		inFree[slot] = true
		if a.seq[slot] >= 0 {
			return fmt.Errorf("swap audit: occupied slot %d (page %d) in free pool", slot, a.seq[slot])
		}
	}
	return nil
}

// SlotOf reports page's current slot, or -1.
func (a *SlotAllocator) SlotOf(page int32) int32 { return a.slotOf[page] }

// Live reports the number of occupied slots.
func (a *SlotAllocator) Live() int { return a.live }

// Recycled reports how many allocations reused a freed slot.
func (a *SlotAllocator) Recycled() int { return a.recycled }

// SlotSpan reports the total slot-space extent (high-water mark), from
// which fragmentation = 1 - Live/SlotSpan.
func (a *SlotAllocator) SlotSpan() int { return len(a.seq) }

// Cluster returns up to max pages from the aligned slot cluster around
// page's slot — kernel swap-readahead semantics. The faulting page is
// always first. Pages failing the want filter (already resident, not
// swapped) are skipped. If the page has no slot, only the page itself is
// returned.
func (a *SlotAllocator) Cluster(page int32, max int, want func(int32) bool) []int32 {
	fetch := []int32{page}
	si := a.slotOf[page]
	if si < 0 || max <= 1 {
		return fetch
	}
	base := si - si%int32(max)
	end := base + int32(max)
	if end > int32(len(a.seq)) {
		end = int32(len(a.seq))
	}
	for s := base; s < end && len(fetch) < max; s++ {
		id := a.seq[s]
		if id >= 0 && id != page && want(id) {
			fetch = append(fetch, id)
		}
	}
	return fetch
}
