package swap

// SlotAllocator manages a swap device's slot space the way the kernel's
// swap_map does: slots are handed out in scan order (so write-back order
// determines slot adjacency), freed slots are recycled lazily, and the
// allocator can answer "which pages live in the slot cluster around slot
// s?" — the exact question swap readahead asks.
//
// Slot adjacency equals eviction-time adjacency. For a single sequential
// evictor, slot clusters coincide with address clusters; with many threads
// interleaving evictions, clusters become a shuffle of all their streams.
// That difference is why kernel swap readahead degrades under concurrency
// while an address-space reader does not.
type SlotAllocator struct {
	// seq is the slot array: seq[slot] = page id, or -1 when stale/free.
	seq []int32
	// slotOf maps page id → its current slot (-1 = none).
	slotOf []int32
	// live counts non-stale slots, for occupancy reporting.
	live int
	// recycled counts slots reused from the free pool.
	recycled int
	// free holds recycled slot indices awaiting reuse.
	free []int32
}

// NewSlotAllocator creates an allocator for an address space of n pages.
func NewSlotAllocator(n int) *SlotAllocator {
	a := &SlotAllocator{slotOf: make([]int32, n)}
	for i := range a.slotOf {
		a.slotOf[i] = -1
	}
	return a
}

// Assign gives page its next slot (recycling a freed slot when available),
// invalidating any previous slot the page held. It returns the slot index.
func (a *SlotAllocator) Assign(page int32) int32 {
	if old := a.slotOf[page]; old >= 0 {
		a.seq[old] = -1
		a.live--
	}
	var slot int32
	if len(a.free) > 0 {
		slot = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		a.seq[slot] = page
		a.recycled++
	} else {
		slot = int32(len(a.seq))
		a.seq = append(a.seq, page)
	}
	a.slotOf[page] = slot
	a.live++
	return slot
}

// Release frees page's slot (after a swap-in invalidates it, or at exit).
// Releasing a page without a slot is a no-op.
func (a *SlotAllocator) Release(page int32) {
	slot := a.slotOf[page]
	if slot < 0 {
		return
	}
	a.seq[slot] = -1
	a.slotOf[page] = -1
	a.free = append(a.free, slot)
	a.live--
}

// DropAll reclaims every occupied slot exactly once — the backend-loss
// path: when the device holding the swap space dies, all far copies are
// gone and their slots return to the free pool. Already-free slots are
// untouched (no double-free), and every page's slot mapping is cleared.
// It returns the number of slots reclaimed.
func (a *SlotAllocator) DropAll() int {
	n := 0
	for slot, page := range a.seq {
		if page < 0 {
			continue
		}
		a.seq[slot] = -1
		a.slotOf[page] = -1
		a.free = append(a.free, int32(slot))
		a.live--
		n++
	}
	return n
}

// SlotOf reports page's current slot, or -1.
func (a *SlotAllocator) SlotOf(page int32) int32 { return a.slotOf[page] }

// Live reports the number of occupied slots.
func (a *SlotAllocator) Live() int { return a.live }

// Recycled reports how many allocations reused a freed slot.
func (a *SlotAllocator) Recycled() int { return a.recycled }

// SlotSpan reports the total slot-space extent (high-water mark), from
// which fragmentation = 1 - Live/SlotSpan.
func (a *SlotAllocator) SlotSpan() int { return len(a.seq) }

// Cluster returns up to max pages from the aligned slot cluster around
// page's slot — kernel swap-readahead semantics. The faulting page is
// always first. Pages failing the want filter (already resident, not
// swapped) are skipped. If the page has no slot, only the page itself is
// returned.
func (a *SlotAllocator) Cluster(page int32, max int, want func(int32) bool) []int32 {
	fetch := []int32{page}
	si := a.slotOf[page]
	if si < 0 || max <= 1 {
		return fetch
	}
	base := si - si%int32(max)
	end := base + int32(max)
	if end > int32(len(a.seq)) {
		end = int32(len(a.seq))
	}
	for s := base; s < end && len(fetch) < max; s++ {
		id := a.seq[s]
		if id >= 0 && id != page && want(id) {
			fetch = append(fetch, id)
		}
	}
	return fetch
}
