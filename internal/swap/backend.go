// Package swap implements the data-swap machinery: far-memory swap backends
// wrapping device models, swap channels (shared, isolated, or VM-isolated),
// and swap paths that compose a backend with a channel and an optional
// hierarchical host hop.
//
// The paper's two structural insights live here:
//
//   - Path shape: traditional VM-hosted far memory swaps hierarchically
//     (guest swap → host swap → device), paying a second copy and a shared
//     host-side stage per operation. xDM's frontswap-style frontend redirects
//     guest page-outs straight to the backend (host bypass).
//
//   - Channel shape: traditional swap uses one shared channel per host, so
//     co-located tasks contend; xDM gives each VM an isolated channel.
package swap

import (
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Extent describes one swap I/O: a run of contiguous pages moving between
// local memory and a backend.
type Extent struct {
	Pages      int
	Write      bool
	Sequential bool

	// OpID is the observability correlation id assigned by the path at
	// submit time (0 when tracing is off). Backends thread it into device
	// ops so a swap operation's spans can be stitched across layers.
	OpID uint64
}

// Bytes reports the extent's payload size.
func (e Extent) Bytes() int64 { return int64(e.Pages) * units.PageSize }

// Backend is a far-memory swap target.
type Backend interface {
	// Name identifies the backend instance.
	Name() string
	// Kind reports the underlying medium.
	Kind() device.Kind
	// CostPerGB is the relative hardware cost, the MEI denominator.
	CostPerGB() float64
	// Bandwidth is the device's peak bandwidth.
	Bandwidth() units.BytesPerSec
	// Width reports the current I/O width (parallel channels).
	Width() int
	// SetWidth adjusts the I/O width.
	SetWidth(w int)
	// Submit performs the extent transfer; done fires with its latency.
	// Under faults, done only fires when the transfer succeeds.
	Submit(ex Extent, done func(lat sim.Duration))
}

// ResultBackend is implemented by backends that can report op failure.
// done always fires exactly once with err != nil when any part of the
// extent failed — unless the underlying device is stalled (transient
// outage), in which case the op is silently lost and only the initiator's
// timeout (RetryPolicy) notices.
type ResultBackend interface {
	Backend
	SubmitResult(ex Extent, done func(lat sim.Duration, err error))
}

// channelOverhead is the per-operation management cost of each extra I/O
// channel (request splitting, queue-pair doorbells, interrupt spreading).
// This is what makes wide I/O counterproductive for random-dominated tasks
// (Fig 5b / Fig 11): the overhead is paid per op, while the striping benefit
// only materializes for large sequential extents.
func channelOverhead(k device.Kind) sim.Duration {
	switch k {
	case device.SSD, device.HDD:
		return 2500 * sim.Nanosecond
	case device.RDMA, device.DPU:
		return 180 * sim.Nanosecond
	default: // DRAM-class media have almost free queue management
		return 60 * sim.Nanosecond
	}
}

// minStripePages reports the smallest worthwhile stripe for a device:
// pages such that transfer time at the per-channel rate is at least twice
// the read latency, clamped to [4, 64].
func minStripePages(spec device.Spec) int {
	bw := float64(spec.ChannelBandwidth)
	if bw <= 0 {
		bw = float64(spec.Bandwidth)
	}
	bytes := 2 * spec.ReadLatency.Seconds() * bw
	pages := int(bytes / float64(units.PageSize))
	if pages < 4 {
		pages = 4
	}
	if pages > 64 {
		pages = 64
	}
	return pages
}

// DeviceBackend adapts a simulated device into a swap backend, adding
// extent striping across the device's I/O channels.
type DeviceBackend struct {
	eng *sim.Engine
	dev *device.Device

	// pending counts extents submitted but not yet completed, for
	// least-loaded routing in AggregateBackend.
	pending int

	// Observability handle, resolved once at construction (nil when off).
	rec   *obs.Recorder
	track string
}

// Pending reports extents in flight on this backend.
func (b *DeviceBackend) Pending() int { return b.pending }

// NewDeviceBackend wraps dev as a swap backend.
func NewDeviceBackend(eng *sim.Engine, dev *device.Device) *DeviceBackend {
	b := &DeviceBackend{eng: eng, dev: dev}
	if obs.On {
		if r := obs.Rec(eng); r != nil {
			b.rec = r
			b.track = "dev/" + dev.Name()
		}
	}
	return b
}

// Device exposes the wrapped device for stats inspection.
func (b *DeviceBackend) Device() *device.Device { return b.dev }

// Name implements Backend.
func (b *DeviceBackend) Name() string { return b.dev.Name() }

// Kind implements Backend.
func (b *DeviceBackend) Kind() device.Kind { return b.dev.Kind() }

// CostPerGB implements Backend.
func (b *DeviceBackend) CostPerGB() float64 { return b.dev.Spec().CostPerGB }

// Bandwidth implements Backend.
func (b *DeviceBackend) Bandwidth() units.BytesPerSec { return b.dev.Spec().Bandwidth }

// Width implements Backend.
func (b *DeviceBackend) Width() int { return b.dev.Channels() }

// SetWidth implements Backend.
func (b *DeviceBackend) SetWidth(w int) {
	if w < 1 {
		w = 1
	}
	b.dev.SetChannels(w)
}

// Submit implements Backend. Extents larger than one page are striped across
// up to Width() parallel sub-operations; every operation pays the per-channel
// management overhead for the configured width. done only fires when the
// whole extent succeeds; use SubmitResult for failure notification.
func (b *DeviceBackend) Submit(ex Extent, done func(lat sim.Duration)) {
	b.SubmitResult(ex, func(lat sim.Duration, err error) {
		if err == nil && done != nil {
			done(lat)
		}
	})
}

// SubmitResult implements ResultBackend: like Submit, but done reports the
// first error among the extent's stripes (a dead device rejects each stripe
// with device.ErrDown after device.FailFastLatency). A stalled device drops
// stripes silently, so done never fires and the extent counts as pending
// until the initiator times out.
func (b *DeviceBackend) SubmitResult(ex Extent, done func(lat sim.Duration, err error)) {
	if ex.Pages <= 0 {
		panic("swap: extent with no pages")
	}
	start := b.eng.Now()
	width := b.dev.Channels()
	mgmt := sim.Duration(width-1) * channelOverhead(b.dev.Kind())

	// Stripe across channels, but keep each sub-op large enough that its
	// transfer time is at least ~2x the device's base latency — smaller
	// stripes would spend the stripe mostly on per-op latency. The
	// threshold is therefore device-dependent: a 3µs RDMA NIC stripes
	// 32 KiB chunks profitably; a 75µs SSD wants >= 128 KiB.
	minStripe := minStripePages(b.dev.Spec())
	stripes := width
	if byLatency := ex.Pages / minStripe; stripes > byLatency {
		stripes = byLatency
	}
	if stripes < 1 {
		stripes = 1
	}
	if ex.Pages < stripes {
		stripes = ex.Pages
	}
	base := ex.Pages / stripes
	extra := ex.Pages % stripes

	b.pending++
	remaining := stripes
	var firstErr error
	finish := func(_ sim.Duration, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			b.pending--
			if done != nil {
				done(b.eng.Now().Sub(start), firstErr)
			}
		}
	}
	b.eng.After(mgmt, func() {
		// The issue span covers the per-width management overhead paid
		// before any stripe reaches the device.
		if b.rec != nil && ex.OpID != 0 {
			b.rec.Span(b.track, "issue", start, obs.DetailOp(ex.OpID, -1))
		}
		for i := 0; i < stripes; i++ {
			pages := base
			if i < extra {
				pages++
			}
			op := device.Op{
				Write: ex.Write,
				Size:  int64(pages) * units.PageSize,
				// Striped sub-ops of a sequential extent remain sequential
				// within their channel; random extents stay random.
				Sequential: ex.Sequential,
				ID:         ex.OpID,
				Stripe:     i,
			}
			b.dev.SubmitResult(op, finish)
		}
	})
}
