package swap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkSlotInvariants verifies the allocator's internal consistency from the
// outside: slot mappings resolve both ways, occupancy matches Live, and the
// free pool never holds a slot twice (a double-free would eventually hand
// the same slot to two pages).
func checkSlotInvariants(t *testing.T, a *SlotAllocator, pages int32) {
	t.Helper()
	occupied := 0
	for p := int32(0); p < pages; p++ {
		if s := a.SlotOf(p); s >= 0 {
			occupied++
			if s >= int32(a.SlotSpan()) {
				t.Fatalf("page %d maps to slot %d beyond span %d", p, s, a.SlotSpan())
			}
		}
	}
	if occupied != a.Live() {
		t.Fatalf("pages with slots %d != Live %d", occupied, a.Live())
	}
	// Two pages must never share a slot.
	seen := make(map[int32]int32)
	for p := int32(0); p < pages; p++ {
		if s := a.SlotOf(p); s >= 0 {
			if prev, dup := seen[s]; dup {
				t.Fatalf("slot %d held by pages %d and %d", s, prev, p)
			}
			seen[s] = p
		}
	}
}

// Property (backend loss): whatever assign/release history precedes it,
// DropAll reclaims every occupied slot exactly once, never double-frees, and
// leaves the allocator fully consistent and reusable.
func TestSlotAllocatorDropAllProperty(t *testing.T) {
	const pages = 64
	f := func(ops []uint16, dropAt uint8) bool {
		a := NewSlotAllocator(pages)
		// Replay a random workload: assign on even codes, release on odd.
		// Reassigning a mapped page leaves its old slot stale (fragmentation,
		// not reusable) rather than free — track those separately.
		stale := 0
		for _, op := range ops {
			page := int32(op) % pages
			if op%2 == 0 {
				if a.SlotOf(page) >= 0 {
					stale++
				}
				a.Assign(page)
			} else {
				a.Release(page)
			}
		}
		checkSlotInvariants(t, a, pages)

		liveBefore := a.Live()
		spanBefore := a.SlotSpan()
		if n := a.DropAll(); n != liveBefore {
			t.Fatalf("DropAll reclaimed %d slots, %d were live", n, liveBefore)
		}
		if a.Live() != 0 {
			t.Fatalf("Live=%d after DropAll", a.Live())
		}
		for p := int32(0); p < pages; p++ {
			if a.SlotOf(p) >= 0 {
				t.Fatalf("page %d still mapped after DropAll", p)
			}
		}
		// Dropping again must find nothing — the exactly-once guarantee.
		if n := a.DropAll(); n != 0 {
			t.Fatalf("second DropAll reclaimed %d slots, want 0", n)
		}
		checkSlotInvariants(t, a, pages)

		// Survivor consistency: the allocator keeps working after the loss,
		// recycling the freed (non-stale) slots instead of growing the slot
		// space.
		recycledBefore := a.Recycled()
		freeAvail := spanBefore - stale
		refill := int(dropAt)%pages + 1
		for p := 0; p < refill; p++ {
			a.Assign(int32(p))
		}
		checkSlotInvariants(t, a, pages)
		if a.Live() != refill {
			t.Fatalf("Live=%d after refill of %d", a.Live(), refill)
		}
		if refill <= freeAvail && a.SlotSpan() != spanBefore {
			t.Fatalf("slot span grew %d -> %d despite %d free slots",
				spanBefore, a.SlotSpan(), freeAvail)
		}
		if freeAvail > 0 && a.Recycled() == recycledBefore {
			t.Fatal("refill did not recycle any dropped slot")
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
