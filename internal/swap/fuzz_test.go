package swap

import (
	"testing"
)

// FuzzSlotAllocator: an arbitrary operation stream (assign / release /
// drop-all / cluster, driven by fuzzed bytes) keeps the allocator's
// structural state sound — seq↔slotOf stay a bijection, the live count
// matches a recount, the free pool never double-holds a slot, and Cluster
// only returns pages that pass its filter. Mirrors the op-stream style of
// internal/trace's fuzz target.
func FuzzSlotAllocator(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x40, 1, 0x80, 0xC1, 2})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		const pages = 64
		a := NewSlotAllocator(pages)
		for _, b := range data {
			page := int32(b & 0x3F) // low bits pick the page
			switch b >> 6 {         // high bits pick the operation
			case 0, 1:
				slot := a.Assign(page)
				if a.SlotOf(page) != slot || slot < 0 {
					t.Fatalf("Assign(%d) = %d but SlotOf = %d", page, slot, a.SlotOf(page))
				}
			case 2:
				a.Release(page)
				if a.SlotOf(page) != -1 {
					t.Fatalf("Release(%d) left slot %d", page, a.SlotOf(page))
				}
			case 3:
				if b&0x20 != 0 {
					if n := a.DropAll(); n != 0 || a.Live() != 0 {
						if a.Live() != 0 {
							t.Fatalf("DropAll left %d live slots", a.Live())
						}
					}
				} else {
					got := a.Cluster(page, 8, func(id int32) bool { return a.SlotOf(id) >= 0 })
					if len(got) == 0 || got[0] != page {
						t.Fatalf("Cluster(%d) = %v; faulting page must lead", page, got)
					}
					for _, id := range got[1:] {
						if a.SlotOf(id) < 0 {
							t.Fatalf("Cluster(%d) returned filtered-out page %d", page, id)
						}
					}
				}
			}
			if a.Live() < 0 || a.Live() > a.SlotSpan() {
				t.Fatalf("live %d outside [0, %d]", a.Live(), a.SlotSpan())
			}
		}
		if err := a.Audit(); err != nil {
			t.Fatalf("final state corrupt after %d ops: %v", len(data), err)
		}
	})
}
