package swap

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Swap-path cost constants, calibrated to kernel-level measurements the
// paper's environment implies.
const (
	// FrontendOverhead is the guest kernel's page-fault + swap-entry cost
	// per operation (do_swap_page, frontswap hook).
	FrontendOverhead = 1500 * sim.Nanosecond

	// HostHopOverhead is the fixed extra cost of the hierarchical path: a
	// second fault in the host, host swap-cache management, and scheduling
	// the host's swap worker.
	HostHopOverhead = 3500 * sim.Nanosecond

	// HostCopyPerPage is the guest-to-host buffer copy cost per 4 KiB page
	// on the hierarchical path.
	HostCopyPerPage = 350 * sim.Nanosecond

	// DefaultHostWorkers is the host-side swap worker parallelism
	// (kswapd-like threads) shared by all VMs on the hierarchical path.
	DefaultHostWorkers = 4

	// DefaultRetryBackoff is the base of the exponential backoff between
	// retry attempts (attempt k waits base << (k-1)). 5 ms sits well above
	// any healthy op latency, so retries never amplify transient queueing
	// into congestion collapse, yet three attempts still resolve within
	// tens of milliseconds.
	DefaultRetryBackoff = 5 * sim.Millisecond
)

// RetryPolicy bounds how long the swap path waits on a backend before
// declaring an op lost and retrying. The zero value disables timeouts —
// ops wait forever, the pre-fault behaviour — so existing paths are
// unaffected unless a policy is set.
type RetryPolicy struct {
	// Timeout is the per-attempt deadline. <= 0 disables the machinery.
	Timeout sim.Duration
	// MaxRetries is how many times a timed-out or errored op is retried
	// before failing through (0 = single attempt).
	MaxRetries int
	// Backoff is the base of the exponential backoff between attempts;
	// attempt k waits Backoff << (k-1). Zero uses DefaultRetryBackoff.
	Backoff sim.Duration
}

// DefaultRetryPolicy returns the per-kind timeout/retry policy used by
// failure-aware paths. Timeouts are ~100x a healthy op's worst-case
// latency for the medium, so false positives need sustained congestion,
// while a stalled device is detected within tens of milliseconds.
func DefaultRetryPolicy(k device.Kind) RetryPolicy {
	p := RetryPolicy{MaxRetries: 2, Backoff: DefaultRetryBackoff}
	switch k {
	case device.SSD, device.HDD:
		p.Timeout = 50 * sim.Millisecond
	case device.RDMA, device.DPU:
		p.Timeout = 10 * sim.Millisecond
	default: // DRAM-class media
		p.Timeout = 5 * sim.Millisecond
	}
	return p
}

// HealthSink observes per-op outcomes for failure detection.
// faults.Monitor implements it.
type HealthSink interface {
	Record(succeeded bool)
}

// HostSwapStage is the host operating system's swap layer, shared by every
// VM on the machine when the hierarchical path is used.
type HostSwapStage struct {
	station *sim.Station
}

// NewHostSwapStage creates the host stage with the given worker parallelism.
func NewHostSwapStage(eng *sim.Engine, workers int) *HostSwapStage {
	h := &HostSwapStage{station: sim.NewStation(eng, workers)}
	if obs.On {
		obs.ObserveStation(obs.Rec(eng), h.station, "swap/host-stage")
	}
	return h
}

// Path is a fully composed far-memory access path: frontend overhead, an
// admission channel, optionally the hierarchical host hop, and the backend.
type Path struct {
	eng     *sim.Engine
	backend Backend
	channel *Channel

	// hierarchical routes every op through the shared host swap stage,
	// paying HostHopOverhead plus a per-page copy. Nil hostStage with
	// hierarchical=true panics at Submit.
	hierarchical bool
	hostStage    *HostSwapStage

	// Retry configures per-op timeout and bounded retry with exponential
	// backoff. The zero value preserves the legacy wait-forever behaviour.
	Retry RetryPolicy

	// Health, when non-nil, observes every attempt outcome (success,
	// timeout, backend error) for failure detection.
	Health HealthSink

	// Stats.
	SwapIns   metrics.Counter
	SwapOuts  metrics.Counter
	PagesIn   uint64
	PagesOut  uint64
	InLatency metrics.Summary // per swap-in op latency, µs
	Timeouts  metrics.Counter // attempts abandoned at Retry.Timeout
	Errors    metrics.Counter // attempts completed with a backend error
	Retries   metrics.Counter // re-submissions after timeout/error
	FailedOps metrics.Counter // ops that exhausted all retries

	// Observability handle, resolved once at construction (nil when off).
	rec   *obs.Recorder
	track string
}

// observe resolves the path's observability handle and registers its seal
// counters. The track embeds both the channel and the backend so that paths
// sharing a channel stay distinguishable.
func (p *Path) observe() {
	if !obs.On {
		return
	}
	r := obs.Rec(p.eng)
	if r == nil {
		return
	}
	p.rec = r
	p.track = "swap/" + p.channel.Name() + "/" + p.backend.Name()
	r.OnSeal(func() {
		r.Counter(p.track + "/swapins").Add(float64(p.SwapIns.Value))
		r.Counter(p.track + "/swapouts").Add(float64(p.SwapOuts.Value))
		r.Counter(p.track + "/pages-in").Add(float64(p.PagesIn))
		r.Counter(p.track + "/pages-out").Add(float64(p.PagesOut))
		r.Counter(p.track + "/timeouts").Add(float64(p.Timeouts.Value))
		r.Counter(p.track + "/errors").Add(float64(p.Errors.Value))
		r.Counter(p.track + "/retries").Add(float64(p.Retries.Value))
		r.Counter(p.track + "/failed-ops").Add(float64(p.FailedOps.Value))
	})
}

// NewPath builds a host-bypass path (xDM's shape): frontend → channel →
// backend.
func NewPath(eng *sim.Engine, backend Backend, channel *Channel) *Path {
	p := &Path{eng: eng, backend: backend, channel: channel}
	p.observe()
	return p
}

// NewHierarchicalPath builds the traditional VM path: frontend → channel →
// host swap stage → backend.
func NewHierarchicalPath(eng *sim.Engine, backend Backend, channel *Channel, host *HostSwapStage) *Path {
	if host == nil {
		panic("swap: hierarchical path requires a host stage")
	}
	p := &Path{eng: eng, backend: backend, channel: channel, hierarchical: true, hostStage: host}
	p.observe()
	return p
}

// Backend reports the path's backend.
func (p *Path) Backend() Backend { return p.backend }

// Channel reports the path's admission channel.
func (p *Path) Channel() *Channel { return p.channel }

// Hierarchical reports whether the path routes through the host.
func (p *Path) Hierarchical() bool { return p.hierarchical }

// SwapIn fetches an extent from far memory; done fires with the operation's
// end-to-end latency (admission wait included).
func (p *Path) SwapIn(ex Extent, done func(lat sim.Duration)) {
	ex.Write = false
	p.submit(ex, done)
}

// SwapOut writes an extent to far memory; done fires with its latency.
// Callers model asynchronous writeback by simply not blocking on done.
func (p *Path) SwapOut(ex Extent, done func(lat sim.Duration)) {
	ex.Write = true
	p.submit(ex, done)
}

func (p *Path) submit(ex Extent, done func(lat sim.Duration)) {
	start := p.eng.Now()
	if p.rec != nil {
		// Correlation id for this swap op: threaded through the backend into
		// device spans ("op=N" Detail) so the analysis tier can reassemble
		// the exact stage breakdown of each operation.
		ex.OpID = p.rec.NextOpID()
	}
	finish := func() {
		lat := p.eng.Now().Sub(start)
		if ex.Write {
			p.SwapOuts.Inc()
			p.PagesOut += uint64(ex.Pages)
		} else {
			p.SwapIns.Inc()
			p.PagesIn += uint64(ex.Pages)
			p.InLatency.Add(lat.Microseconds())
		}
		if p.rec != nil {
			name := "swapin"
			if ex.Write {
				name = "swapout"
			}
			p.rec.Span(p.track, name, start, obs.DetailOp(ex.OpID, -1))
		}
		if done != nil {
			done(lat)
		}
	}
	// Write-back is asynchronous in the kernel (kswapd / dedicated eviction
	// workers): it does not occupy a fault-path admission slot. Reads (page
	// faults) are admitted through the channel; both directions still
	// contend at the device and, on hierarchical paths, at the host stage.
	if ex.Write {
		p.eng.After(FrontendOverhead, func() {
			if p.rec != nil {
				p.rec.Span(p.track, "stage/frontend", start, obs.DetailOp(ex.OpID, -1))
			}
			p.dispatch(ex, finish)
		})
		return
	}
	p.channel.Enter(func() {
		admitted := p.eng.Now()
		if p.rec != nil {
			p.rec.Span(p.track, "stage/queue", start, obs.DetailOp(ex.OpID, -1))
		}
		p.eng.After(FrontendOverhead, func() {
			if p.rec != nil {
				p.rec.Span(p.track, "stage/frontend", admitted, obs.DetailOp(ex.OpID, -1))
			}
			p.dispatch(ex, func() {
				p.channel.Leave()
				finish()
			})
		})
	})
}

// dispatch routes the extent to the backend, via the host stage when
// hierarchical.
func (p *Path) dispatch(ex Extent, done func()) {
	if !p.hierarchical {
		p.send(ex, done)
		return
	}
	// Hierarchical: host hop (shared stage) + per-page copy, then the host
	// performs the device operation.
	hostWork := HostHopOverhead + sim.Duration(ex.Pages)*HostCopyPerPage
	hostStart := p.eng.Now()
	p.hostStage.station.Submit(hostWork, func(sim.Duration) {
		// The host-copy stage span covers the full host sojourn: queueing
		// for a host swap worker plus the hop and per-page copy work.
		if p.rec != nil {
			p.rec.Span(p.track, "stage/host-copy", hostStart, obs.DetailOp(ex.OpID, -1))
		}
		p.send(ex, done)
	})
}

// send submits the extent to the backend under the path's retry policy.
// Without a policy (and with no health sink) it is a direct submit that
// waits forever — exactly the pre-fault behaviour. With one, each attempt
// races the backend against Retry.Timeout; timeouts and backend errors are
// retried with exponential backoff, and an op that exhausts its retries
// fails through: done still fires (the task must not hang), the loss is
// charged upstream via re-fetch accounting and counted in FailedOps.
func (p *Path) send(ex Extent, done func()) {
	if p.Retry.Timeout <= 0 && p.Health == nil {
		p.backend.Submit(ex, func(sim.Duration) { done() })
		return
	}
	attempt := 0
	var try func()
	try = func() {
		settled := false
		var timer sim.Handle
		hasTimer := false
		outcome := func(err error) {
			if settled {
				return // late completion of an attempt the timer abandoned
			}
			settled = true
			if hasTimer {
				timer.Cancel(p.eng)
			}
			if err == nil {
				if p.Health != nil {
					p.Health.Record(true)
				}
				done()
				return
			}
			p.Errors.Inc()
			if p.rec != nil {
				p.rec.Instant(p.track, "error", err.Error())
			}
			if p.Health != nil {
				p.Health.Record(false)
			}
			p.failOrRetry(&attempt, try, done)
		}
		p.submitOnce(ex, outcome)
		if p.Retry.Timeout > 0 {
			timer = p.eng.After(p.Retry.Timeout, func() {
				if settled {
					return
				}
				settled = true
				p.Timeouts.Inc()
				if p.rec != nil {
					p.rec.Instant(p.track, "timeout", "")
				}
				if p.Health != nil {
					p.Health.Record(false)
				}
				p.failOrRetry(&attempt, try, done)
			})
			hasTimer = true
		}
	}
	try()
}

// submitOnce performs one backend attempt, surfacing errors when the
// backend can report them.
func (p *Path) submitOnce(ex Extent, outcome func(err error)) {
	if rb, ok := p.backend.(ResultBackend); ok {
		rb.SubmitResult(ex, func(_ sim.Duration, err error) { outcome(err) })
		return
	}
	p.backend.Submit(ex, func(sim.Duration) { outcome(nil) })
}

func (p *Path) failOrRetry(attempt *int, try func(), done func()) {
	if *attempt < p.Retry.MaxRetries {
		*attempt++
		p.Retries.Inc()
		backoff := p.Retry.Backoff
		if backoff <= 0 {
			backoff = DefaultRetryBackoff
		}
		if p.rec != nil {
			p.rec.Instant(p.track, "retry", fmt.Sprintf("attempt=%d backoff=%v", *attempt, backoff<<(*attempt-1)))
		}
		p.eng.After(backoff<<(*attempt-1), try)
		return
	}
	p.FailedOps.Inc()
	if p.rec != nil {
		p.rec.Instant(p.track, "failed", "retries exhausted")
	}
	done()
}
