package swap

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Swap-path cost constants, calibrated to kernel-level measurements the
// paper's environment implies.
const (
	// FrontendOverhead is the guest kernel's page-fault + swap-entry cost
	// per operation (do_swap_page, frontswap hook).
	FrontendOverhead = 1500 * sim.Nanosecond

	// HostHopOverhead is the fixed extra cost of the hierarchical path: a
	// second fault in the host, host swap-cache management, and scheduling
	// the host's swap worker.
	HostHopOverhead = 3500 * sim.Nanosecond

	// HostCopyPerPage is the guest-to-host buffer copy cost per 4 KiB page
	// on the hierarchical path.
	HostCopyPerPage = 350 * sim.Nanosecond

	// DefaultHostWorkers is the host-side swap worker parallelism
	// (kswapd-like threads) shared by all VMs on the hierarchical path.
	DefaultHostWorkers = 4
)

// HostSwapStage is the host operating system's swap layer, shared by every
// VM on the machine when the hierarchical path is used.
type HostSwapStage struct {
	station *sim.Station
}

// NewHostSwapStage creates the host stage with the given worker parallelism.
func NewHostSwapStage(eng *sim.Engine, workers int) *HostSwapStage {
	return &HostSwapStage{station: sim.NewStation(eng, workers)}
}

// Path is a fully composed far-memory access path: frontend overhead, an
// admission channel, optionally the hierarchical host hop, and the backend.
type Path struct {
	eng     *sim.Engine
	backend Backend
	channel *Channel

	// hierarchical routes every op through the shared host swap stage,
	// paying HostHopOverhead plus a per-page copy. Nil hostStage with
	// hierarchical=true panics at Submit.
	hierarchical bool
	hostStage    *HostSwapStage

	// Stats.
	SwapIns   metrics.Counter
	SwapOuts  metrics.Counter
	PagesIn   uint64
	PagesOut  uint64
	InLatency metrics.Summary // per swap-in op latency, µs
}

// NewPath builds a host-bypass path (xDM's shape): frontend → channel →
// backend.
func NewPath(eng *sim.Engine, backend Backend, channel *Channel) *Path {
	return &Path{eng: eng, backend: backend, channel: channel}
}

// NewHierarchicalPath builds the traditional VM path: frontend → channel →
// host swap stage → backend.
func NewHierarchicalPath(eng *sim.Engine, backend Backend, channel *Channel, host *HostSwapStage) *Path {
	if host == nil {
		panic("swap: hierarchical path requires a host stage")
	}
	return &Path{eng: eng, backend: backend, channel: channel, hierarchical: true, hostStage: host}
}

// Backend reports the path's backend.
func (p *Path) Backend() Backend { return p.backend }

// Channel reports the path's admission channel.
func (p *Path) Channel() *Channel { return p.channel }

// Hierarchical reports whether the path routes through the host.
func (p *Path) Hierarchical() bool { return p.hierarchical }

// SwapIn fetches an extent from far memory; done fires with the operation's
// end-to-end latency (admission wait included).
func (p *Path) SwapIn(ex Extent, done func(lat sim.Duration)) {
	ex.Write = false
	p.submit(ex, done)
}

// SwapOut writes an extent to far memory; done fires with its latency.
// Callers model asynchronous writeback by simply not blocking on done.
func (p *Path) SwapOut(ex Extent, done func(lat sim.Duration)) {
	ex.Write = true
	p.submit(ex, done)
}

func (p *Path) submit(ex Extent, done func(lat sim.Duration)) {
	start := p.eng.Now()
	finish := func() {
		lat := p.eng.Now().Sub(start)
		if ex.Write {
			p.SwapOuts.Inc()
			p.PagesOut += uint64(ex.Pages)
		} else {
			p.SwapIns.Inc()
			p.PagesIn += uint64(ex.Pages)
			p.InLatency.Add(lat.Microseconds())
		}
		if done != nil {
			done(lat)
		}
	}
	// Write-back is asynchronous in the kernel (kswapd / dedicated eviction
	// workers): it does not occupy a fault-path admission slot. Reads (page
	// faults) are admitted through the channel; both directions still
	// contend at the device and, on hierarchical paths, at the host stage.
	if ex.Write {
		p.eng.After(FrontendOverhead, func() {
			p.dispatch(ex, finish)
		})
		return
	}
	p.channel.Enter(func() {
		p.eng.After(FrontendOverhead, func() {
			p.dispatch(ex, func() {
				p.channel.Leave()
				finish()
			})
		})
	})
}

// dispatch routes the extent to the backend, via the host stage when
// hierarchical.
func (p *Path) dispatch(ex Extent, done func()) {
	if !p.hierarchical {
		p.backend.Submit(ex, func(sim.Duration) { done() })
		return
	}
	// Hierarchical: host hop (shared stage) + per-page copy, then the host
	// performs the device operation.
	hostWork := HostHopOverhead + sim.Duration(ex.Pages)*HostCopyPerPage
	p.hostStage.station.Submit(hostWork, func(sim.Duration) {
		p.backend.Submit(ex, func(sim.Duration) { done() })
	})
}
