package swap

import (
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/units"
)

// AggregateBackend is xDM's scale-out far-memory path: one logical swap
// backend spread over several physical devices. Large extents are split
// across all members (device-level striping); small extents are routed to
// the least-loaded member. This is what lets a single server push past the
// single-device bandwidth wall toward the full PCIe fabric budget
// (Table VII).
type AggregateBackend struct {
	name    string
	members []*DeviceBackend
	eng     *sim.Engine
}

// NewAggregateBackend combines members into one logical backend. Members
// may be homogeneous (xDM-SSD, xDM-RDMA) or mixed (xDM-Hetero).
func NewAggregateBackend(eng *sim.Engine, name string, members ...*DeviceBackend) *AggregateBackend {
	if len(members) == 0 {
		panic("swap: aggregate backend needs at least one member")
	}
	return &AggregateBackend{name: name, members: members, eng: eng}
}

// Members exposes the member backends.
func (a *AggregateBackend) Members() []*DeviceBackend { return a.members }

// Name implements Backend.
func (a *AggregateBackend) Name() string { return a.name }

// Kind implements Backend: the kind of the fastest member (used only for
// labeling; per-member behaviour is preserved internally).
func (a *AggregateBackend) Kind() device.Kind {
	best := a.members[0]
	for _, m := range a.members[1:] {
		if m.Device().Spec().ReadLatency < best.Device().Spec().ReadLatency {
			best = m
		}
	}
	return best.Kind()
}

// CostPerGB implements Backend: capacity-weighted mean member cost.
func (a *AggregateBackend) CostPerGB() float64 {
	var cost, cap float64
	for _, m := range a.members {
		c := float64(m.Device().Spec().Capacity)
		cost += m.CostPerGB() * c
		cap += c
	}
	return cost / cap
}

// Bandwidth implements Backend: the sum of member bandwidths.
func (a *AggregateBackend) Bandwidth() units.BytesPerSec {
	var sum units.BytesPerSec
	for _, m := range a.members {
		sum += m.Bandwidth()
	}
	return sum
}

// Width implements Backend: the total member channels.
func (a *AggregateBackend) Width() int {
	w := 0
	for _, m := range a.members {
		w += m.Width()
	}
	return w
}

// SetWidth implements Backend: the width is divided evenly across members.
func (a *AggregateBackend) SetWidth(w int) {
	per := w / len(a.members)
	if per < 1 {
		per = 1
	}
	for _, m := range a.members {
		m.SetWidth(per)
	}
}

// Submit implements Backend. On a heterogeneous aggregate, reads go to the
// low-latency member class and writes to the rest (latency-critical fetches
// on RDMA, asynchronous write-back absorbing SSD bandwidth) — the paper's
// observation that heterogeneous device mixes can beat homogeneous ones.
// Within the chosen class, extents of at least two pages per member are
// striped in parallel; smaller extents go to the least-loaded member.
func (a *AggregateBackend) Submit(ex Extent, done func(lat sim.Duration)) {
	if ex.Pages <= 0 {
		panic("swap: extent with no pages")
	}
	members := a.classFor(ex.Write)
	n := len(members)
	if n == 1 || ex.Pages < 2*n {
		a.leastLoadedOf(members).Submit(ex, done)
		return
	}
	start := a.eng.Now()
	base := ex.Pages / n
	extra := ex.Pages % n
	remaining := n
	finish := func(sim.Duration) {
		remaining--
		if remaining == 0 && done != nil {
			done(a.eng.Now().Sub(start))
		}
	}
	for i, m := range members {
		pages := base
		if i < extra {
			pages++
		}
		m.Submit(Extent{Pages: pages, Write: ex.Write, Sequential: ex.Sequential, OpID: ex.OpID}, finish)
	}
}

// classFor partitions a heterogeneous aggregate: reads use the members with
// the lowest read latency kind; writes use the others. Homogeneous
// aggregates (or all-read/all-write classes) use every member.
func (a *AggregateBackend) classFor(write bool) []*DeviceBackend {
	var fast, slow []*DeviceBackend
	minLat := a.members[0].Device().Spec().ReadLatency
	for _, m := range a.members[1:] {
		if l := m.Device().Spec().ReadLatency; l < minLat {
			minLat = l
		}
	}
	for _, m := range a.members {
		// Same latency class as the fastest (within 4x) counts as fast.
		if m.Device().Spec().ReadLatency <= 4*minLat {
			fast = append(fast, m)
		} else {
			slow = append(slow, m)
		}
	}
	if len(fast) == 0 || len(slow) == 0 {
		return a.members
	}
	if write {
		return slow
	}
	return fast
}

func (a *AggregateBackend) leastLoadedOf(members []*DeviceBackend) *DeviceBackend {
	best := members[0]
	for _, m := range members[1:] {
		if m.Pending() < best.Pending() {
			best = m
		}
	}
	return best
}
