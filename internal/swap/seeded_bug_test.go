package swap

import (
	"strings"
	"testing"

	"repro/internal/invariant"
)

// These tests seed deliberate allocator bugs and require the invariant layer
// (or the structural audit) to catch each one — the acceptance proof that
// the checks detect real corruption, not just that they stay quiet on
// healthy runs.

// A double-free — the same slot pushed into the free pool twice — must be
// caught: first by the audit, then by the no-double-alloc check the moment
// both copies get recycled to different pages.
func TestSeededBugDoubleFreeCaught(t *testing.T) {
	a := NewSlotAllocator(8)
	for p := int32(0); p < 4; p++ {
		a.Assign(p)
	}
	a.Release(2)
	// The seeded bug: a second free of slot 2's entry.
	a.free = append(a.free, a.free[len(a.free)-1])
	if err := a.Audit(); err == nil {
		t.Fatal("audit missed a double-freed slot")
	} else if !strings.Contains(err.Error(), "freed twice") {
		t.Fatalf("audit reported the wrong defect: %v", err)
	}

	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()
	// Recycling both copies hands one slot to two pages; the second Assign
	// must trip swap.slots.no-double-alloc.
	a.Assign(5)
	a.Assign(6)
	if len(violations) == 0 {
		t.Fatal("no-double-alloc check missed one slot recycled to two pages")
	}
	if violations[0].Check != "swap.slots.no-double-alloc" {
		t.Fatalf("wrong check fired: %+v", violations[0])
	}
}

// Skipping a slot free — clearing the page mapping without returning the
// slot — leaves the bijection broken and the live counter wrong.
func TestSeededBugSkippedFreeCaught(t *testing.T) {
	a := NewSlotAllocator(8)
	for p := int32(0); p < 4; p++ {
		a.Assign(p)
	}
	// The seeded bug: a "release" that forgets seq and the free pool.
	a.slotOf[1] = -1
	if err := a.Audit(); err == nil {
		t.Fatal("audit missed a skipped slot free")
	}
}

// Releasing a slot out from under a different page (cross-page free) must
// trip the no-double-free check inline.
func TestSeededBugForeignFreeCaught(t *testing.T) {
	a := NewSlotAllocator(8)
	a.Assign(0)
	a.Assign(1)
	// The seeded bug: page 1's bookkeeping points at page 0's slot.
	a.slotOf[1] = a.slotOf[0]
	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()
	a.Release(1)
	found := false
	for _, v := range violations {
		if v.Check == "swap.slots.no-double-free" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no-double-free check missed a foreign free; violations: %+v", violations)
	}
}
