package swap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

func newRDMABackend(eng *sim.Engine) *DeviceBackend {
	h := device.NewHost(eng, pcie.Gen4, 16)
	return NewDeviceBackend(eng, h.Attach(device.SpecConnectX5("rdma0")))
}

func newSSDBackend(eng *sim.Engine) *DeviceBackend {
	h := device.NewHost(eng, pcie.Gen3, 16)
	return NewDeviceBackend(eng, h.Attach(device.SpecTestbedSSD("ssd0")))
}

func TestBackendSinglePage(t *testing.T) {
	eng := sim.NewEngine()
	b := newRDMABackend(eng)
	b.SetWidth(1)
	var lat sim.Duration
	b.Submit(Extent{Pages: 1, Sequential: true}, func(l sim.Duration) { lat = l })
	eng.Run()
	// 3µs + 4KiB at the 5 GB/s channel cap ≈ 3.82µs, no width overhead at
	// width 1.
	if got := lat.Microseconds(); math.Abs(got-3.82) > 0.1 {
		t.Fatalf("latency %.3fµs, want ~3.82µs", got)
	}
}

func TestBackendStripingSpeedsUpLargeExtents(t *testing.T) {
	measure := func(width int) sim.Duration {
		eng := sim.NewEngine()
		b := newRDMABackend(eng)
		b.SetWidth(width)
		var lat sim.Duration
		b.Submit(Extent{Pages: 64, Sequential: true}, func(l sim.Duration) { lat = l })
		eng.Run()
		return lat
	}
	w1, w4 := measure(1), measure(4)
	if w4 >= w1 {
		t.Fatalf("width 4 (%v) not faster than width 1 (%v) for 64-page extent", w4, w1)
	}
}

func TestWidthOverheadHurtsSinglePageOps(t *testing.T) {
	measure := func(width int) sim.Duration {
		eng := sim.NewEngine()
		b := newSSDBackend(eng)
		b.SetWidth(width)
		var lat sim.Duration
		b.Submit(Extent{Pages: 1, Sequential: false}, func(l sim.Duration) { lat = l })
		eng.Run()
		return lat
	}
	w1, w8 := measure(1), measure(8)
	if w8 <= w1 {
		t.Fatalf("width 8 single-page op (%v) should be slower than width 1 (%v)", w8, w1)
	}
}

func TestBackendWidthClamp(t *testing.T) {
	eng := sim.NewEngine()
	b := newSSDBackend(eng)
	b.SetWidth(0)
	if b.Width() != 1 {
		t.Fatalf("width clamped to %d, want 1", b.Width())
	}
}

func TestBackendMetadata(t *testing.T) {
	eng := sim.NewEngine()
	b := newSSDBackend(eng)
	if b.Kind() != device.SSD || b.Name() != "ssd0" {
		t.Fatal("metadata wrong")
	}
	if b.CostPerGB() <= 0 || b.Bandwidth() <= 0 {
		t.Fatal("cost/bandwidth missing")
	}
	if b.Device() == nil {
		t.Fatal("device accessor nil")
	}
}

func TestChannelContention(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, "shared", 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		ch.Enter(func() {
			order = append(order, i)
			eng.After(100, ch.Leave)
		})
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("order=%v", order)
	}
	if ch.Ops != 3 {
		t.Fatalf("ops=%d", ch.Ops)
	}
	// Ops 2 and 3 waited 100 and 200: mean (0+100+200)/3 = 100.
	if ch.MeanQueueWait() != 100 {
		t.Fatalf("mean wait=%v, want 100", ch.MeanQueueWait())
	}
}

func TestPathBypassVsHierarchical(t *testing.T) {
	measure := func(hierarchical bool) sim.Duration {
		eng := sim.NewEngine()
		b := newRDMABackend(eng)
		b.SetWidth(1)
		ch := NewChannel(eng, "ch", 4)
		var p *Path
		if hierarchical {
			p = NewHierarchicalPath(eng, b, ch, NewHostSwapStage(eng, DefaultHostWorkers))
		} else {
			p = NewPath(eng, b, ch)
		}
		var lat sim.Duration
		p.SwapIn(Extent{Pages: 1, Sequential: true}, func(l sim.Duration) { lat = l })
		eng.Run()
		return lat
	}
	bypass, hier := measure(false), measure(true)
	diff := hier - bypass
	want := HostHopOverhead + HostCopyPerPage
	if math.Abs(float64(diff-want)) > float64(100*sim.Nanosecond) {
		t.Fatalf("hierarchical penalty %v, want ~%v (bypass=%v hier=%v)", diff, want, bypass, hier)
	}
}

func TestHierarchicalHostStageIsSharedBottleneck(t *testing.T) {
	// Two VMs on one host stage with one worker: their ops serialize at the
	// host even though each has its own channel and backend capacity.
	eng := sim.NewEngine()
	b := newRDMABackend(eng)
	host := NewHostSwapStage(eng, 1)
	p1 := NewHierarchicalPath(eng, b, NewChannel(eng, "vm1", 4), host)
	p2 := NewHierarchicalPath(eng, b, NewChannel(eng, "vm2", 4), host)
	var l1, l2 sim.Duration
	p1.SwapIn(Extent{Pages: 1}, func(l sim.Duration) { l1 = l })
	p2.SwapIn(Extent{Pages: 1}, func(l sim.Duration) { l2 = l })
	eng.Run()
	slow, fast := l1, l2
	if slow < fast {
		slow, fast = fast, slow
	}
	hop := HostHopOverhead + HostCopyPerPage
	if slow-fast < hop/2 {
		t.Fatalf("host stage did not serialize: lat %v vs %v", l1, l2)
	}
}

func TestPathStats(t *testing.T) {
	eng := sim.NewEngine()
	b := newSSDBackend(eng)
	p := NewPath(eng, b, NewChannel(eng, "ch", 4))
	p.SwapIn(Extent{Pages: 4, Sequential: true}, nil)
	p.SwapOut(Extent{Pages: 2, Sequential: true}, nil)
	eng.Run()
	if p.SwapIns.Value != 1 || p.SwapOuts.Value != 1 {
		t.Fatalf("ops: in=%d out=%d", p.SwapIns.Value, p.SwapOuts.Value)
	}
	if p.PagesIn != 4 || p.PagesOut != 2 {
		t.Fatalf("pages: in=%d out=%d", p.PagesIn, p.PagesOut)
	}
	if p.InLatency.Count() != 1 {
		t.Fatalf("latency samples=%d", p.InLatency.Count())
	}
}

func TestHierarchicalPathRequiresHostStage(t *testing.T) {
	eng := sim.NewEngine()
	b := newSSDBackend(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("nil host stage did not panic")
		}
	}()
	NewHierarchicalPath(eng, b, NewChannel(eng, "ch", 1), nil)
}

func TestExtentBytes(t *testing.T) {
	if (Extent{Pages: 3}).Bytes() != 3*units.PageSize {
		t.Fatal("extent bytes wrong")
	}
}

func TestZeroPageExtentPanics(t *testing.T) {
	eng := sim.NewEngine()
	b := newSSDBackend(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page extent did not panic")
		}
	}()
	b.Submit(Extent{Pages: 0}, nil)
}

// Shared vs isolated channels under co-location: the shared channel's mean
// queue wait must exceed the isolated channels' (Fig 17's mechanism).
func TestSharedChannelWaitsExceedIsolated(t *testing.T) {
	run := func(isolated bool) sim.Duration {
		eng := sim.NewEngine()
		b := newSSDBackend(eng)
		shared := NewChannel(eng, "shared", 2)
		mk := func(name string) *Path {
			if isolated {
				return NewPath(eng, b, NewChannel(eng, name, 2))
			}
			return NewPath(eng, b, shared)
		}
		p1, p2 := mk("t1"), mk("t2")
		for i := 0; i < 16; i++ {
			p1.SwapIn(Extent{Pages: 1}, nil)
			p2.SwapIn(Extent{Pages: 1}, nil)
		}
		eng.Run()
		if isolated {
			return (p1.Channel().MeanQueueWait() + p2.Channel().MeanQueueWait()) / 2
		}
		return shared.MeanQueueWait()
	}
	sharedWait, isoWait := run(false), run(true)
	if sharedWait <= isoWait {
		t.Fatalf("shared wait %v not worse than isolated %v", sharedWait, isoWait)
	}
}

// Property: striping conserves pages — the device moves exactly the bytes
// submitted, for any extent size and width.
func TestStripingConservationProperty(t *testing.T) {
	f := func(pagesSeed, widthSeed uint8) bool {
		pages := int(pagesSeed%200) + 1
		width := int(widthSeed%8) + 1
		eng := sim.NewEngine()
		b := newRDMABackend(eng)
		b.SetWidth(width)
		doneCount := 0
		b.Submit(Extent{Pages: pages, Sequential: true}, func(sim.Duration) { doneCount++ })
		eng.Run()
		if doneCount != 1 {
			return false
		}
		return b.Device().TotalBytes() == float64(int64(pages)*units.PageSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(51))}); err != nil {
		t.Fatal(err)
	}
}
