package swap

import (
	"testing"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func retryTestPath(t *testing.T, channels int) (*sim.Engine, *device.Device, *Path) {
	t.Helper()
	eng := sim.NewEngine()
	h := device.NewHost(eng, pcie.Gen4, 16)
	spec := device.SpecConnectX5("rdma0")
	spec.Channels = channels
	d := h.Attach(spec)
	be := NewDeviceBackend(eng, d)
	ch := NewChannel(eng, "test", 8)
	return eng, d, NewPath(eng, be, ch)
}

// recorder captures per-attempt health outcomes.
type recorder struct{ outcomes []bool }

func (r *recorder) Record(ok bool) { r.outcomes = append(r.outcomes, ok) }

func TestRetryZeroValueIsLegacy(t *testing.T) {
	eng, _, p := retryTestPath(t, 4)
	fired := false
	p.SwapIn(Extent{Pages: 1}, func(sim.Duration) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("swap-in did not complete")
	}
	if p.Timeouts.Value != 0 || p.Retries.Value != 0 || p.FailedOps.Value != 0 {
		t.Fatal("legacy path touched retry counters")
	}
}

func TestRetryHealthySuccessRecorded(t *testing.T) {
	eng, dev, p := retryTestPath(t, 4)
	rec := &recorder{}
	p.Retry = DefaultRetryPolicy(dev.Kind())
	p.Health = rec
	done := 0
	p.SwapIn(Extent{Pages: 1}, func(sim.Duration) { done++ })
	p.SwapOut(Extent{Pages: 2}, func(sim.Duration) { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("completed %d ops, want 2", done)
	}
	if len(rec.outcomes) != 2 || !rec.outcomes[0] || !rec.outcomes[1] {
		t.Fatalf("health outcomes %v, want two successes", rec.outcomes)
	}
}

func TestRetryStalledDeviceTimesOutAndFailsThrough(t *testing.T) {
	eng, dev, p := retryTestPath(t, 4)
	rec := &recorder{}
	p.Retry = RetryPolicy{Timeout: 10 * sim.Millisecond, MaxRetries: 2, Backoff: 5 * sim.Millisecond}
	p.Health = rec
	dev.Stall()

	fired := false
	var lat sim.Duration
	start := eng.Now()
	p.SwapIn(Extent{Pages: 1}, func(l sim.Duration) { fired, lat = true, l })
	eng.Run()
	_ = start

	if !fired {
		t.Fatal("op must fail through, not hang, when the device stalls")
	}
	if p.Timeouts.Value != 3 || p.Retries.Value != 2 || p.FailedOps.Value != 1 {
		t.Fatalf("timeouts=%d retries=%d failed=%d, want 3/2/1",
			p.Timeouts.Value, p.Retries.Value, p.FailedOps.Value)
	}
	// 3 attempts x 10ms timeout + backoffs 5ms and 10ms = ~45ms (+ frontend).
	want := 45 * sim.Millisecond
	if lat < want || lat > want+sim.Millisecond {
		t.Fatalf("fail-through latency %v, want ~%v", lat, want)
	}
	for i, ok := range rec.outcomes {
		if ok {
			t.Fatalf("outcome %d recorded success on a stalled device", i)
		}
	}
	if len(rec.outcomes) != 3 {
		t.Fatalf("recorded %d outcomes, want 3 attempts", len(rec.outcomes))
	}
}

func TestRetryDeadDeviceSurfacesErrors(t *testing.T) {
	eng, dev, p := retryTestPath(t, 4)
	p.Retry = DefaultRetryPolicy(dev.Kind())
	dev.Fail()
	fired := false
	p.SwapIn(Extent{Pages: 1}, func(sim.Duration) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("op against dead device did not fail through")
	}
	// Dead devices fail fast with an error; no attempt should hit the
	// timeout path.
	if p.Errors.Value != 3 || p.Timeouts.Value != 0 || p.FailedOps.Value != 1 {
		t.Fatalf("errors=%d timeouts=%d failed=%d, want 3/0/1",
			p.Errors.Value, p.Timeouts.Value, p.FailedOps.Value)
	}
}

func TestRetryRecoversMidwayThrough(t *testing.T) {
	// Device stalls, the first attempt times out, the device recovers
	// during the backoff: the retry succeeds and the op completes normally.
	eng, dev, p := retryTestPath(t, 4)
	rec := &recorder{}
	p.Retry = RetryPolicy{Timeout: 10 * sim.Millisecond, MaxRetries: 2, Backoff: 5 * sim.Millisecond}
	p.Health = rec
	dev.Stall()
	eng.After(12*sim.Millisecond, dev.Recover)

	fired := false
	p.SwapIn(Extent{Pages: 1}, func(sim.Duration) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("op did not complete after recovery")
	}
	if p.FailedOps.Value != 0 {
		t.Fatal("op counted as failed despite eventual success")
	}
	if p.Retries.Value != 1 || p.Timeouts.Value != 1 {
		t.Fatalf("retries=%d timeouts=%d, want 1/1", p.Retries.Value, p.Timeouts.Value)
	}
	last := rec.outcomes[len(rec.outcomes)-1]
	if !last {
		t.Fatal("final outcome not recorded as success")
	}
}

func TestLateCompletionAfterTimeoutIgnored(t *testing.T) {
	// A op that is merely slow (not lost) completes after its attempt timer
	// fired: the late completion must not double-complete the op.
	eng, dev, p := retryTestPath(t, 1)
	p.Retry = RetryPolicy{Timeout: sim.Millisecond, MaxRetries: 1, Backoff: sim.Millisecond}
	// Saturate the single channel so the probe op queues past its timeout.
	for i := 0; i < 8; i++ {
		p.SwapOut(Extent{Pages: 1024}, nil)
	}
	done := 0
	p.SwapIn(Extent{Pages: 1}, func(sim.Duration) { done++ })
	eng.Run()
	if done != 1 {
		t.Fatalf("op completed %d times, want exactly 1", done)
	}
	_ = dev
}
