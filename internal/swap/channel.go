package swap

import "repro/internal/sim"

// Channel is a swap channel: the bounded set of in-flight swap operations a
// swap frontend allows. Isolation policy is expressed by who shares a
// Channel instance:
//
//   - shared swap (Linux swap, Fastswap): one Channel per host, all tasks
//     contend on it (Fig 17's worst case);
//   - isolated swap (Canvas): one Channel per application;
//   - vm-isolated swap (xDM): one Channel per VM.
type Channel struct {
	name string
	res  *sim.Resource

	// Ops and QueueWait measure per-op contention for Fig 17.
	Ops       uint64
	QueueWait sim.Duration
	eng       *sim.Engine
}

// NewChannel creates a swap channel admitting depth concurrent operations.
func NewChannel(eng *sim.Engine, name string, depth int) *Channel {
	return &Channel{name: name, res: sim.NewResource(eng, depth), eng: eng}
}

// Name reports the channel's name.
func (c *Channel) Name() string { return c.name }

// Depth reports the concurrency limit.
func (c *Channel) Depth() int { return c.res.Capacity() }

// SetDepth adjusts the concurrency limit.
func (c *Channel) SetDepth(d int) { c.res.Resize(d) }

// Enter admits one operation, calling fn when a slot frees up. The caller
// must call Leave exactly once when the operation completes.
func (c *Channel) Enter(fn func()) {
	start := c.eng.Now()
	c.res.Acquire(1, func() {
		c.Ops++
		c.QueueWait += c.eng.Now().Sub(start)
		fn()
	})
}

// Leave releases the operation's slot.
func (c *Channel) Leave() { c.res.Release(1) }

// MeanQueueWait reports the average time ops spent waiting for admission.
func (c *Channel) MeanQueueWait() sim.Duration {
	if c.Ops == 0 {
		return 0
	}
	return c.QueueWait / sim.Duration(c.Ops)
}
