package swap

import (
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Channel is a swap channel: the bounded set of in-flight swap operations a
// swap frontend allows. Isolation policy is expressed by who shares a
// Channel instance:
//
//   - shared swap (Linux swap, Fastswap): one Channel per host, all tasks
//     contend on it (Fig 17's worst case);
//   - isolated swap (Canvas): one Channel per application;
//   - vm-isolated swap (xDM): one Channel per VM.
type Channel struct {
	name string
	res  *sim.Resource

	// Ops and QueueWait measure per-op contention for Fig 17.
	Ops       uint64
	QueueWait sim.Duration
	eng       *sim.Engine

	// Observability handle, resolved once at construction (nil when off).
	obsQueue *metrics.BucketTimeline
}

// NewChannel creates a swap channel admitting depth concurrent operations.
func NewChannel(eng *sim.Engine, name string, depth int) *Channel {
	c := &Channel{name: name, res: sim.NewResource(eng, depth), eng: eng}
	if obs.On {
		if r := obs.Rec(eng); r != nil {
			track := "swapch/" + name
			c.obsQueue = r.Timeline(track+"/queue", obs.DefaultTimelineWidth, obs.ModeMean)
			r.OnSeal(func() {
				r.Counter(track + "/ops").Add(float64(c.Ops))
				r.Gauge(track + "/mean-queue-wait-ns").Set(float64(c.MeanQueueWait()))
			})
		}
	}
	return c
}

// Name reports the channel's name.
func (c *Channel) Name() string { return c.name }

// Depth reports the concurrency limit.
func (c *Channel) Depth() int { return c.res.Capacity() }

// SetDepth adjusts the concurrency limit.
func (c *Channel) SetDepth(d int) { c.res.Resize(d) }

// Enter admits one operation, calling fn when a slot frees up. The caller
// must call Leave exactly once when the operation completes.
func (c *Channel) Enter(fn func()) {
	start := c.eng.Now()
	if c.obsQueue != nil {
		c.obsQueue.Add(start, float64(c.res.Waiting()))
	}
	c.res.Acquire(1, func() {
		c.Ops++
		c.QueueWait += c.eng.Now().Sub(start)
		fn()
	})
}

// Leave releases the operation's slot.
func (c *Channel) Leave() { c.res.Release(1) }

// MeanQueueWait reports the average time ops spent waiting for admission.
func (c *Channel) MeanQueueWait() sim.Duration {
	if c.Ops == 0 {
		return 0
	}
	return c.QueueWait / sim.Duration(c.Ops)
}
