package place

import "testing"

// FuzzPolicySpec throws arbitrary spec strings at the parser. For every spec
// the parser accepts: the canonical form must re-parse to itself (fixpoint),
// and the compiled policy must place a fixed candidate set without panicking,
// returning a feasible candidate or -1. Rejected specs must fail with an
// error, never a panic.
func FuzzPolicySpec(f *testing.F) {
	for _, s := range []string{
		"alg1", "best-fit", "worst-fit", "one-shot",
		"oversub", "oversub:1.5", "oversub:4",
		"best-fit+warm-pool", "worst-fit+one-shot+warm-pool",
		"mix:worst-fit=1,load=2", "mix:tier=3,warm=0.5+one-shot",
		"", "nope", "oversub:0.5", "mix:load=1,load=2", "best-fit+nope",
	} {
		f.Add(s)
	}
	cands := []Candidate{
		{ID: 0, FreeCores: 4, FreePages: 64, TotalCores: 4, TotalPages: 64, Tier: 1, Healthy: true, Accepts: true},
		{ID: 1, FreeCores: 1, FreePages: 8, TotalCores: 4, TotalPages: 64, Load: 3, Tier: 2, Healthy: true, Accepts: true},
		{ID: 2, FreeCores: 0, FreePages: 0, TotalCores: 4, TotalPages: 64, Load: 4, Tier: 3, Healthy: true, Accepts: true},
		{ID: 3, FreeCores: 4, FreePages: 64, TotalCores: 4, TotalPages: 64, Tier: 0, Healthy: false, Accepts: false},
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePolicy(spec)
		if err != nil {
			return
		}
		canon := p.String()
		q, err := ParsePolicy(canon)
		if err != nil {
			t.Fatalf("accepted spec %q canonicalizes to %q, which does not re-parse: %v", spec, canon, err)
		}
		if q.String() != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", spec, canon, q.String())
		}
		for _, r := range []Request{{Cores: 1, Pages: 8}, {Cores: 2, Pages: 80}, {Cores: 0, Pages: 0}} {
			got := p.Place(r, cands)
			if got == -1 {
				continue
			}
			placed := false
			for _, c := range cands {
				if c.ID == got {
					placed = true
					if !p.Feasible(r, c) {
						t.Fatalf("policy %q placed %+v on infeasible candidate %d", canon, r, got)
					}
				}
			}
			if !placed {
				t.Fatalf("policy %q returned unknown candidate %d", canon, got)
			}
		}
	})
}
