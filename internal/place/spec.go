package place

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The -policy spec grammar. A spec is a base policy plus optional extender
// suffixes:
//
//	POLICY := BASE ( "+" EXT )*
//	BASE   := "alg1" | "best-fit" | "worst-fit" | "one-shot"
//	        | "oversub" [ ":" FACTOR ]              factor in [1, 4]
//	        | "mix:" PRIO "=" W ( "," PRIO "=" W )* weights in (0, 1e6]
//	EXT    := "one-shot" | "warm-pool"
//	PRIO   := "best-fit" | "worst-fit" | "tier" | "load"
//	        | "least-stranding" | "pool-headroom" | "warm"
//
// Examples: "alg1", "oversub:1.5", "best-fit+warm-pool",
// "mix:worst-fit=1,load=2+one-shot".
//
// ParsePolicy validates strictly (unknown names, malformed or out-of-range
// numbers, duplicate prioritizers or extenders are errors) and the CLIs turn
// any error into a usage failure (exit 2). String renders the canonical
// form, which re-parses to an identical policy (FuzzPolicySpec locks this).

// mixEntry is one weighted prioritizer of a mix: spec.
type mixEntry struct {
	name   string
	weight float64
}

// ParsePolicy compiles a policy spec. The returned policy's Name is the
// canonical spec string.
func ParsePolicy(spec string) (*Policy, error) {
	if spec == "" {
		return nil, fmt.Errorf("placement policy spec is empty")
	}
	parts := strings.Split(spec, "+")
	base := parts[0]
	exts := parts[1:]

	p := &Policy{Overcommit: 1}
	var canonBase string
	switch {
	case base == "alg1":
		p.Prioritizers = []Prioritizer{prioritizer("tier", 1)}
		canonBase = "alg1"
	case base == "best-fit":
		p.Prioritizers = []Prioritizer{prioritizer("best-fit", 1)}
		canonBase = "best-fit"
	case base == "worst-fit":
		p.Prioritizers = []Prioritizer{prioritizer("worst-fit", 1)}
		canonBase = "worst-fit"
	case base == "one-shot":
		// Alias: worst-fit spreading with the no-retry extender.
		p.Prioritizers = []Prioritizer{prioritizer("worst-fit", 1)}
		p.Extenders = append(p.Extenders, extOneShot())
		canonBase = "one-shot"
	case base == "oversub" || strings.HasPrefix(base, "oversub:"):
		factor := DefaultOversubFactor
		if rest, ok := strings.CutPrefix(base, "oversub:"); ok {
			f, err := strconv.ParseFloat(rest, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("policy spec %q: oversub factor %q is not a number", spec, rest)
			}
			if f < 1 || f > 4 {
				return nil, fmt.Errorf("policy spec %q: oversub factor must be in [1, 4] (got %g)", spec, f)
			}
			factor = f
		}
		p.Overcommit = factor
		p.Prioritizers = []Prioritizer{prioritizer("best-fit", 1)}
		canonBase = fmt.Sprintf("oversub:%g", factor)
	case strings.HasPrefix(base, "mix:"):
		entries, err := parseMix(spec, strings.TrimPrefix(base, "mix:"))
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			p.Prioritizers = append(p.Prioritizers, prioritizer(e.name, e.weight))
			names = append(names, fmt.Sprintf("%s=%g", e.name, e.weight))
		}
		canonBase = "mix:" + strings.Join(names, ",")
	default:
		return nil, fmt.Errorf("policy spec %q: unknown policy %q (want alg1|best-fit|worst-fit|one-shot|oversub[:F]|mix:...)", spec, base)
	}

	seen := map[string]bool{"one-shot": p.OneShot()}
	var suffixes []string
	for _, e := range exts {
		switch e {
		case "one-shot":
			if seen["one-shot"] {
				return nil, fmt.Errorf("policy spec %q: duplicate extender %q", spec, e)
			}
			seen["one-shot"] = true
			p.Extenders = append(p.Extenders, extOneShot())
			suffixes = append(suffixes, e)
		case "warm-pool":
			if seen["warm-pool"] {
				return nil, fmt.Errorf("policy spec %q: duplicate extender %q", spec, e)
			}
			seen["warm-pool"] = true
			p.Extenders = append(p.Extenders, extWarmPool(p))
			suffixes = append(suffixes, e)
		default:
			return nil, fmt.Errorf("policy spec %q: unknown extender %q (want one-shot|warm-pool)", spec, e)
		}
	}

	p.Predicates = standardPredicates(p.Overcommit)
	sort.Strings(suffixes)
	p.Name = canonBase
	for _, s := range suffixes {
		p.Name += "+" + s
	}
	return p, nil
}

// parseMix reads the "name=weight,name=weight" body of a mix: spec,
// preserving declaration order (it is part of the canonical form).
func parseMix(spec, body string) ([]mixEntry, error) {
	if body == "" {
		return nil, fmt.Errorf("policy spec %q: mix needs at least one prioritizer=weight pair", spec)
	}
	var out []mixEntry
	seen := map[string]bool{}
	for _, pair := range strings.Split(body, ",") {
		name, w, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("policy spec %q: mix entry %q is not prioritizer=weight", spec, pair)
		}
		if _, known := prioritizerFuncs[name]; !known {
			return nil, fmt.Errorf("policy spec %q: unknown prioritizer %q (want %s)",
				spec, name, strings.Join(PrioritizerNames(), "|"))
		}
		if seen[name] {
			return nil, fmt.Errorf("policy spec %q: duplicate prioritizer %q", spec, name)
		}
		seen[name] = true
		weight, err := strconv.ParseFloat(w, 64)
		if err != nil || math.IsNaN(weight) || math.IsInf(weight, 0) {
			return nil, fmt.Errorf("policy spec %q: weight %q is not a number", spec, w)
		}
		if weight <= 0 || weight > 1e6 {
			return nil, fmt.Errorf("policy spec %q: weight must be in (0, 1e6] (got %g)", spec, weight)
		}
		out = append(out, mixEntry{name: name, weight: weight})
	}
	return out, nil
}

// String returns the canonical spec, which ParsePolicy accepts and compiles
// back to an identical policy.
func (p *Policy) String() string { return p.Name }
