package place

import (
	"math/rand"
	"testing"
)

// cand builds a healthy, accepting candidate with the given resources.
func cand(id, cores, pages int) Candidate {
	return Candidate{
		ID: id, FreeCores: cores, FreePages: pages,
		TotalCores: cores, TotalPages: pages,
		Tier: 1, Healthy: true, Accepts: true,
	}
}

func TestPredicatesExcludeCandidates(t *testing.T) {
	p := Builtin("worst-fit")
	r := Request{Cores: 1, Pages: 10}
	base := cand(0, 4, 100)
	if got := p.Place(r, []Candidate{base}); got != 0 {
		t.Fatalf("baseline candidate rejected: got %d", got)
	}
	mutations := []struct {
		name string
		mut  func(c *Candidate)
	}{
		{"unhealthy", func(c *Candidate) { c.Healthy = false }},
		{"not accepting", func(c *Candidate) { c.Accepts = false }},
		{"incompatible tier", func(c *Candidate) { c.Tier = 0 }},
		{"no cores", func(c *Candidate) { c.FreeCores = 0 }},
		{"no pages", func(c *Candidate) { c.FreePages = 9 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if got := p.Place(r, []Candidate{c}); got != -1 {
			t.Errorf("%s candidate was placed (got %d, want -1)", m.name, got)
		}
	}
}

func TestBestFitPacksWorstFitSpreads(t *testing.T) {
	// Node 1 is fuller (less free) than node 0.
	cands := []Candidate{cand(0, 4, 100), cand(1, 2, 40)}
	r := Request{Cores: 1, Pages: 10}
	if got := Builtin("best-fit").Place(r, cands); got != 1 {
		t.Errorf("best-fit chose %d, want the fuller node 1", got)
	}
	if got := Builtin("worst-fit").Place(r, cands); got != 0 {
		t.Errorf("worst-fit chose %d, want the emptier node 0", got)
	}
}

// TestWorstFitMatchesLegacyArenaPlace pins the equivalence the arena's
// default rests on: worst-fit's lexicographic (free cores, free pages,
// lowest ID) choice is exactly the pre-refactor ArenaView.Place scan.
func TestWorstFitMatchesLegacyArenaPlace(t *testing.T) {
	legacy := func(r Request, cands []Candidate) int {
		best := -1
		for i, c := range cands {
			if c.FreeCores < r.Cores || c.FreePages < r.Pages {
				continue
			}
			if best < 0 || c.FreeCores > cands[best].FreeCores ||
				(c.FreeCores == cands[best].FreeCores && c.FreePages > cands[best].FreePages) {
				best = i
			}
		}
		return best
	}
	p := Builtin("worst-fit")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = cand(i, rng.Intn(5), rng.Intn(64))
		}
		r := Request{Cores: 1 + rng.Intn(3), Pages: 1 + rng.Intn(48)}
		if got, want := p.Place(r, cands), legacy(r, cands); got != want {
			t.Fatalf("trial %d: worst-fit chose %d, legacy scan chose %d (req %+v, cands %+v)",
				trial, got, want, r, cands)
		}
	}
}

// TestAlg1TierOrdering pins Algorithm 1's preference classes: the highest
// tier wins regardless of resource levels, and within a tier the lowest ID
// (first match in VM order) wins.
func TestAlg1TierOrdering(t *testing.T) {
	p := Builtin("alg1")
	r := Request{Cores: 1, Pages: 1}
	tiered := func(id, tier int) Candidate {
		c := cand(id, 4, 100)
		c.Tier = tier
		return c
	}
	if got := p.Place(r, []Candidate{tiered(0, 1), tiered(1, 3), tiered(2, 2)}); got != 1 {
		t.Errorf("highest tier lost: got %d, want 1", got)
	}
	if got := p.Place(r, []Candidate{tiered(5, 2), tiered(3, 2), tiered(4, 2)}); got != 3 {
		t.Errorf("within-tier first match lost: got %d, want 3", got)
	}
}

func TestOversubRelaxesMemoryOnly(t *testing.T) {
	p := Builtin("oversub:1.25")
	c := cand(0, 4, 0) // full memory, free cores
	c.TotalPages = 100
	r := Request{Cores: 1, Pages: 25}
	if got := p.Place(r, []Candidate{c}); got != 0 {
		t.Errorf("oversub:1.25 refused a request inside its slack (got %d)", got)
	}
	if got := p.Place(Request{Cores: 1, Pages: 26}, []Candidate{c}); got != -1 {
		t.Errorf("oversub:1.25 admitted a request beyond its slack (got %d)", got)
	}
	if got := Builtin("best-fit").Place(r, []Candidate{c}); got != -1 {
		t.Errorf("best-fit admitted beyond physical memory (got %d)", got)
	}
}

func TestOvercommitSlack(t *testing.T) {
	cases := []struct {
		factor float64
		total  int
		want   int
	}{
		{1, 100, 0},
		{0.5, 100, 0}, // sub-1 factors grant nothing
		{1.25, 100, 25},
		{1.25, 10, 2}, // floors, never rounds up
		{2, 64, 64},
	}
	for _, c := range cases {
		if got := OvercommitSlack(c.factor, c.total); got != c.want {
			t.Errorf("OvercommitSlack(%g, %d) = %d, want %d", c.factor, c.total, got, c.want)
		}
	}
}

func TestOneShotMarker(t *testing.T) {
	if !Builtin("one-shot").OneShot() {
		t.Error("one-shot policy does not report OneShot")
	}
	if !Builtin("best-fit+one-shot").OneShot() {
		t.Error("+one-shot extender does not report OneShot")
	}
	if Builtin("best-fit").OneShot() {
		t.Error("best-fit reports OneShot")
	}
}

func TestWarmPoolPrefersLoadedTargets(t *testing.T) {
	p := Builtin("worst-fit+warm-pool")
	idle := cand(0, 4, 100)
	warm := cand(1, 2, 50)
	warm.Load = 1
	r := Request{Cores: 1, Pages: 10}
	// Worst-fit alone would pick the idle node 0; warm-pool overrides.
	if got := p.Place(r, []Candidate{idle, warm}); got != 1 {
		t.Errorf("warm-pool chose %d, want the warm node 1", got)
	}
	// With no warm candidate the scored choice stands.
	if got := p.Place(r, []Candidate{idle, cand(1, 2, 50)}); got != 0 {
		t.Errorf("warm-pool with all-cold fleet chose %d, want 0", got)
	}
}

func TestPlacePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, spec := range []string{"alg1", "best-fit", "worst-fit", "oversub:1.25", "one-shot", "mix:load=2,warm=1"} {
		p := Builtin(spec)
		for trial := 0; trial < 100; trial++ {
			n := 2 + rng.Intn(10)
			cands := make([]Candidate, n)
			for i := range cands {
				c := cand(i, rng.Intn(5), rng.Intn(64))
				c.Load = rng.Intn(3)
				c.Tier = 1 + rng.Intn(3)
				cands[i] = c
			}
			r := Request{Cores: 1 + rng.Intn(2), Pages: rng.Intn(48)}
			want := p.Place(r, cands)
			shuffled := append([]Candidate(nil), cands...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := p.Place(r, shuffled); got != want {
				t.Fatalf("%s: permuting candidates changed the choice: %d vs %d", spec, got, want)
			}
		}
	}
}

func TestBuiltinPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Builtin(\"nope\") did not panic")
		}
	}()
	Builtin("nope")
}
