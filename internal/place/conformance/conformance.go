// Package conformance is the shared contract-test harness every placement
// policy must pass — built-in or user-composed. A policy plugged into the
// dispatcher or the arena is trusted with two things: it never places work
// outside the feasibility envelope the predicates define, and it is a pure,
// permutation-invariant function of (request, candidates) so simulations stay
// byte-identical across shard layouts and worker counts. Run exercises both,
// plus the resource-ledger round trip the frontends drive (reserve on place,
// release on completion, conservation at the end).
//
// Use it for new policies the way place's own tests do:
//
//	func TestMyPolicy(t *testing.T) {
//		conformance.Run(t, place.Builtin("mix:load=2,warm=1"))
//	}
package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/place"
)

// Fleet shape for the ledger round trip; small enough to stress collisions,
// large enough for policies to differentiate targets.
const (
	nodes        = 8
	coresPerNode = 4
	pagesPerNode = 256
)

// Run asserts the placement-policy contract on p. It is safe to call in
// parallel subtests: p is never mutated (Place is read-only by contract, and
// a violation fails the test).
func Run(t *testing.T, p *place.Policy) {
	t.Helper()
	t.Run("feasible-only", func(t *testing.T) { checkFeasibleOnly(t, p) })
	t.Run("permutation-invariant", func(t *testing.T) { checkPermutationInvariant(t, p) })
	t.Run("rejects-unhealthy", func(t *testing.T) { checkRejectsUnhealthy(t, p) })
	t.Run("deterministic", func(t *testing.T) { checkDeterministic(t, p) })
	t.Run("ledger-conservation", func(t *testing.T) { checkLedgerConservation(t, p) })
}

// randomCandidates draws a fleet snapshot with all the status bits in play:
// some unhealthy, some non-accepting, some incompatible, resources scattered.
func randomCandidates(rng *rand.Rand, n int) []place.Candidate {
	cands := make([]place.Candidate, n)
	for i := range cands {
		cands[i] = place.Candidate{
			ID:         i,
			FreeCores:  rng.Intn(coresPerNode + 1),
			FreePages:  rng.Intn(pagesPerNode + 1),
			TotalCores: coresPerNode,
			TotalPages: pagesPerNode,
			Load:       rng.Intn(4),
			Tier:       rng.Intn(4), // 0 = incompatible
			Healthy:    rng.Intn(8) != 0,
			Accepts:    rng.Intn(8) != 0,
		}
	}
	return cands
}

func randomRequest(rng *rand.Rand) place.Request {
	return place.Request{Cores: 1 + rng.Intn(coresPerNode), Pages: 1 + rng.Intn(pagesPerNode)}
}

// checkFeasibleOnly: whatever the scoring stage or an extender prefers, the
// returned candidate must pass every predicate — a predicate-rejected target
// is never placed on.
func checkFeasibleOnly(t *testing.T, p *place.Policy) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		cands := randomCandidates(rng, 1+rng.Intn(12))
		r := randomRequest(rng)
		got := p.Place(r, cands)
		if got == -1 {
			// A refusal is only honest if nothing was feasible OR the policy
			// is allowed to refuse (extenders may veto, but the built-ins
			// never do); verify refusals against the predicate chain.
			continue
		}
		found := false
		for _, c := range cands {
			if c.ID != got {
				continue
			}
			found = true
			if !p.Feasible(r, c) {
				t.Fatalf("trial %d: placed request %+v on predicate-rejected candidate %+v", trial, r, c)
			}
		}
		if !found {
			t.Fatalf("trial %d: Place returned %d, not a candidate ID", trial, got)
		}
	}
}

// checkPermutationInvariant: the choice is keyed by model identity (ID), so
// reordering the candidate slice must never change it.
func checkPermutationInvariant(t *testing.T, p *place.Policy) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		cands := randomCandidates(rng, 2+rng.Intn(10))
		r := randomRequest(rng)
		want := p.Place(r, cands)
		for perm := 0; perm < 4; perm++ {
			shuffled := append([]place.Candidate(nil), cands...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := p.Place(r, shuffled); got != want {
				t.Fatalf("trial %d: permutation changed the choice: %d vs %d", trial, got, want)
			}
		}
	}
}

// checkRejectsUnhealthy: dead or stalled targets are never placement targets,
// even when they are the only capacity in the fleet.
func checkRejectsUnhealthy(t *testing.T, p *place.Policy) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		cands := randomCandidates(rng, 1+rng.Intn(8))
		for i := range cands {
			// Ample resources, but dead.
			cands[i].FreeCores = coresPerNode
			cands[i].FreePages = pagesPerNode
			cands[i].Healthy = false
		}
		if got := p.Place(randomRequest(rng), cands); got != -1 {
			t.Fatalf("trial %d: placed on an all-unhealthy fleet (chose %d)", trial, got)
		}
	}
}

// checkDeterministic: identical inputs give identical outputs, every time —
// no hidden state, no randomness.
func checkDeterministic(t *testing.T, p *place.Policy) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		cands := randomCandidates(rng, 1+rng.Intn(10))
		r := randomRequest(rng)
		want := p.Place(r, cands)
		for rep := 0; rep < 3; rep++ {
			if got := p.Place(r, cands); got != want {
				t.Fatalf("trial %d: repeated Place diverged: %d vs %d", trial, got, want)
			}
		}
	}
}

// checkLedgerConservation drives the frontends' reserve/release round trip
// against a real cluster.ArenaView: every policy-approved placement must be
// reservable without overdraw (the policy and the ledger share one
// overcommit rule), and after all work releases the view must be back at
// its initial state — redispatch cycles leak nothing.
func checkLedgerConservation(t *testing.T, p *place.Policy) {
	view := cluster.NewArenaView(nodes, coresPerNode, pagesPerNode)
	view.SetOvercommit(p.Overcommit)
	cands := make([]place.Candidate, nodes)
	sync := func(i int) {
		tier := 1
		if view.Running(i) > 0 {
			tier = 2
		}
		cands[i] = place.Candidate{
			ID:         i,
			FreeCores:  view.FreeCores(i),
			FreePages:  view.FreePages(i),
			TotalCores: coresPerNode,
			TotalPages: pagesPerNode,
			Load:       view.Running(i),
			Tier:       tier,
			Healthy:    true,
			Accepts:    true,
		}
	}
	for i := range cands {
		sync(i)
	}

	type lease struct {
		node, cores, pages int
	}
	var held []lease
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 3000; step++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			// Complete a random running task (models completions and the
			// release half of a redispatch).
			i := rng.Intn(len(held))
			l := held[i]
			held = append(held[:i], held[i+1:]...)
			view.Release(l.node, l.cores, l.pages)
			sync(l.node)
			continue
		}
		r := place.Request{Cores: 1 + rng.Intn(2), Pages: 1 + rng.Intn(pagesPerNode/2)}
		node := p.Place(r, cands)
		if node == -1 {
			continue
		}
		// Reserve panics on overdraw; a policy-approved placement must fit.
		view.Reserve(node, r.Cores, r.Pages)
		sync(node)
		held = append(held, lease{node, r.Cores, r.Pages})
	}
	for _, l := range held {
		view.Release(l.node, l.cores, l.pages)
	}
	for i := 0; i < nodes; i++ {
		if view.FreeCores(i) != coresPerNode || view.FreePages(i) != pagesPerNode || view.Running(i) != 0 {
			t.Fatalf("node %d not conserved after full release: %d cores, %d pages, %d running (want %d, %d, 0)",
				i, view.FreeCores(i), view.FreePages(i), view.Running(i), coresPerNode, pagesPerNode)
		}
	}
}
