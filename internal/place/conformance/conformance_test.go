package conformance

import (
	"testing"

	"repro/internal/place"
)

// TestBuiltinsConform runs the contract harness over every built-in policy
// plus a composed mix spec with both extenders — the exact set the
// policyarena experiment races, so a contract break fails here before it
// corrupts a fleet simulation.
func TestBuiltinsConform(t *testing.T) {
	specs := []string{
		"alg1",
		"best-fit",
		"worst-fit",
		"oversub:1.25",
		"one-shot",
		"mix:load=2,warm=1,least-stranding=0.5+one-shot+warm-pool",
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			Run(t, place.Builtin(spec))
		})
	}
}
