// Package place is the pluggable placement-policy framework behind the
// cluster dispatcher and the datacenter arena. The paper's Algorithm 1 was
// originally hard-coded into cluster.Dispatcher.Dispatch; this package
// factors the placement half of that algorithm into first-class,
// data-comparable policy objects so fleets can be scheduled by best-fit,
// worst-fit, oversubscribing, pressure-aware or Algorithm-1 placement and
// compared head-to-head on MBE, stranding and tail latency.
//
// A Policy is a filter chain of predicates (health, capacity, acceptance,
// backend compatibility), a weighted-sum stage of prioritizers (best-fit,
// worst-fit, warm-tier, load pressure, least-stranding) and an optional list
// of extenders (one-shot no-retry, warm-pool preference) — the plugin
// architecture of production schedulers, specialized to the simulator's
// deterministic contract:
//
//   - Place is a pure function of (request, candidates). It never draws
//     randomness and never reads global state.
//   - Ties break on the lowest candidate ID, so the choice is keyed by model
//     identity only — permuting the candidate slice cannot change it, and
//     neither can shard layout or worker count.
//
// Frontends project their placement targets into Candidate snapshots: the
// rack-level dispatcher projects VMs (Tier encodes Algorithm 1's
// online-VM / free-VM / switchable-VM preference classes), the arena
// dispatcher projects nodes (Tier encodes warm/cold). The alg1 policy
// reconstructs Algorithm 1's placement loops exactly — see DESIGN.md
// "Placement policies" for the equivalence argument.
package place

import (
	"fmt"
	"math"
)

// Candidate is one placement target as a policy sees it: a resource
// snapshot plus status bits, projected by the frontend (VMs for the rack
// dispatcher, nodes for the arena). ID is the target's stable model
// identity and the deterministic tie-breaker.
type Candidate struct {
	ID int

	FreeCores  int
	FreePages  int
	TotalCores int
	TotalPages int

	// FarFree is the target's free private far-memory capacity in pages;
	// PoolFree is the free capacity of a shared fabric pool the target can
	// draw on (internal/fabric). Frontends without far-memory ledgers leave
	// both zero, which keeps the far-capacity predicate vacuously true.
	FarFree  int
	PoolFree int

	// Load counts tasks currently running on the target (pressure input).
	Load int
	// Tier is the frontend-assigned preference class; 0 marks a target that
	// is incompatible with the request (wrong backend, wrong state). The
	// rack dispatcher assigns 3/2/1 for online-on-backend, free-on-backend
	// and switchable VMs; the arena assigns 2/1 for warm/cold nodes.
	Tier int
	// Healthy is false for dead or stalled targets; no policy places there.
	Healthy bool
	// Accepts is the frontend's target-specific acceptance check (VM
	// capacity, concurrency bound, admission gate).
	Accepts bool
}

// Request is the unit of work to place.
type Request struct {
	Cores int
	Pages int
	// FarPages is the far-memory residency the work needs on top of its
	// resident pages (0 for frontends without far-memory ledgers).
	FarPages int
}

// Predicate is a hard feasibility filter: a candidate failing any predicate
// is never a placement target, whatever its score.
type Predicate struct {
	Name string
	Fit  func(Request, Candidate) bool
}

// Prioritizer scores feasible candidates; the policy combines prioritizers
// as a weighted sum and the highest total wins.
type Prioritizer struct {
	Name   string
	Weight float64
	Score  func(Request, Candidate) float64
}

// Extender post-processes the scored choice: it may override the winner
// (warm-pool preference) or mark the policy one-shot (no-retry).
type Extender struct {
	Name string
	// Extend receives the feasible candidates and the scored winner's ID
	// (-1 when none) and returns the final choice, which must be feasible
	// or -1. Nil for marker extenders.
	Extend func(r Request, feasible []Candidate, chosen int) int
	// OneShot marks the no-retry extender: frontends refuse a request that
	// fails to place instead of queueing it for retry.
	OneShot bool
}

// Policy is a named placement policy: predicates filter, prioritizers
// score, extenders adjust.
type Policy struct {
	Name         string
	Predicates   []Predicate
	Prioritizers []Prioritizer
	Extenders    []Extender

	// Overcommit is the memory oversubscription factor the capacity
	// predicate allows (1 = none). Frontends that track a resource ledger
	// must grant the same slack (see cluster.ArenaView.SetOvercommit).
	Overcommit float64
}

// coreWeight makes (FreeCores, FreePages) lexicographic inside one
// prioritizer score: free pages never exceed 2^30, so a one-core difference
// always dominates any page difference. Scores stay exact in float64 (the
// sum is an integer well under 2^53).
const coreWeight = 1 << 30

// packScore encodes a candidate's free resources lexicographically.
func packScore(c Candidate) float64 {
	return float64(c.FreeCores)*coreWeight + float64(c.FreePages)
}

// Feasible reports whether c passes every predicate for r.
func (p *Policy) Feasible(r Request, c Candidate) bool {
	for _, pred := range p.Predicates {
		if !pred.Fit(r, c) {
			return false
		}
	}
	return true
}

// score is the weighted prioritizer sum.
func (p *Policy) score(r Request, c Candidate) float64 {
	s := 0.0
	for _, pr := range p.Prioritizers {
		s += pr.Weight * pr.Score(r, c)
	}
	return s
}

// OneShot reports whether the policy carries the no-retry extender.
func (p *Policy) OneShot() bool {
	for _, e := range p.Extenders {
		if e.OneShot {
			return true
		}
	}
	return false
}

// Place chooses a candidate ID for r, or -1 when nothing is feasible.
// Deterministic by construction: candidates are filtered by the predicate
// chain, scored by the weighted prioritizer sum, and ties break on the
// lowest ID — so the result is independent of candidate order.
func (p *Policy) Place(r Request, cands []Candidate) int {
	chosen := -1
	var best float64
	feasible := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if !p.Feasible(r, c) {
			continue
		}
		feasible = append(feasible, c)
		s := p.score(r, c)
		if chosen < 0 || s > best || (s == best && c.ID < chosen) {
			chosen, best = c.ID, s
		}
	}
	for _, e := range p.Extenders {
		if e.Extend != nil {
			chosen = e.Extend(r, feasible, chosen)
		}
	}
	return chosen
}

// --- built-in predicates ---

func predHealthy() Predicate {
	return Predicate{Name: "healthy", Fit: func(_ Request, c Candidate) bool { return c.Healthy }}
}

func predAccepts() Predicate {
	return Predicate{Name: "accepts", Fit: func(_ Request, c Candidate) bool { return c.Accepts }}
}

func predCompatible() Predicate {
	return Predicate{Name: "compatible", Fit: func(_ Request, c Candidate) bool { return c.Tier > 0 }}
}

func predCores() Predicate {
	return Predicate{Name: "cores", Fit: func(r Request, c Candidate) bool { return r.Cores <= c.FreeCores }}
}

// predMemory admits a request whose pages fit in free memory plus the
// oversubscription slack (factor-1 of total pages; factor 1 = no slack).
func predMemory(factor float64) Predicate {
	name := "memory"
	if factor > 1 {
		name = fmt.Sprintf("memory(x%g)", factor)
	}
	return Predicate{Name: name, Fit: func(r Request, c Candidate) bool {
		slack := OvercommitSlack(factor, c.TotalPages)
		return r.Pages <= c.FreePages+slack
	}}
}

// OvercommitSlack is the extra page allowance an oversubscription factor
// grants over a total capacity — the single rounding rule shared by the
// memory predicate and resource ledgers, so the two can never disagree.
func OvercommitSlack(factor float64, totalPages int) int {
	if factor <= 1 {
		return 0
	}
	return int(math.Floor((factor - 1) * float64(totalPages)))
}

// FarCapacityPredicate admits a request whose far-memory residency fits in
// the candidate's private far capacity or the shared pool it can reach.
// It is not part of the standard chain — frontends without far-memory
// ledgers (FarPages always 0) would evaluate it vacuously on every hot
// placement decision — so far-aware frontends (internal/fabric) append it
// to their policy's Predicates themselves.
func FarCapacityPredicate() Predicate {
	return Predicate{Name: "far-capacity", Fit: func(r Request, c Candidate) bool {
		if r.FarPages <= 0 {
			return true
		}
		return r.FarPages <= c.FarFree || r.FarPages <= c.PoolFree
	}}
}

// standardPredicates is the filter chain every built-in policy runs:
// health, frontend acceptance, backend/state compatibility, cores, memory.
func standardPredicates(overcommit float64) []Predicate {
	return []Predicate{predHealthy(), predAccepts(), predCompatible(), predCores(), predMemory(overcommit)}
}

// --- built-in prioritizers ---

// prioritizerFuncs registers the scoring functions the mix: spec grammar can
// combine. All are pure functions of (request, candidate).
var prioritizerFuncs = map[string]func(Request, Candidate) float64{
	// best-fit packs: the least free capacity after placement wins.
	"best-fit": func(_ Request, c Candidate) float64 { return -packScore(c) },
	// worst-fit spreads: the most free capacity wins — the arena's
	// level-memory-pressure default (free cores first, pages break ties).
	"worst-fit": func(_ Request, c Candidate) float64 { return packScore(c) },
	// tier prefers the frontend's preference class — Algorithm 1's
	// online-VM > free-VM > switchable-VM ordering, warm > cold nodes.
	"tier": func(_ Request, c Candidate) float64 { return float64(c.Tier) },
	// load is xdm-pressure-aware spreading: fewer running tasks wins.
	"load": func(_ Request, c Candidate) float64 { return -float64(c.Load) },
	// least-stranding penalizes a placement that would exhaust a target's
	// cores while leaving memory behind — the pages it would strand.
	"least-stranding": func(r Request, c Candidate) float64 {
		if c.FreeCores-r.Cores > 0 {
			return 0
		}
		return -float64(c.FreePages - r.Pages)
	},
	// pool-headroom penalizes a placement by the pooled-fabric pages it
	// would have to borrow: requests land where private far capacity covers
	// them, keeping the shared pool free for hosts that really need it.
	"pool-headroom": func(r Request, c Candidate) float64 {
		spill := r.FarPages - c.FarFree
		if spill < 0 {
			spill = 0
		}
		return -float64(spill)
	},
	// warm prefers targets already running work (cache/module warmth).
	"warm": func(_ Request, c Candidate) float64 {
		if c.Load > 0 {
			return 1
		}
		return 0
	},
}

// PrioritizerNames lists the registered prioritizer names in sorted order.
func PrioritizerNames() []string {
	return []string{"best-fit", "least-stranding", "load", "pool-headroom", "tier", "warm", "worst-fit"}
}

func prioritizer(name string, weight float64) Prioritizer {
	fn, ok := prioritizerFuncs[name]
	if !ok {
		panic("place: unknown prioritizer " + name)
	}
	return Prioritizer{Name: name, Weight: weight, Score: fn}
}

// --- built-in extenders ---

// extOneShot is the no-retry marker: a request that fails to place is
// refused, never queued.
func extOneShot() Extender { return Extender{Name: "one-shot", OneShot: true} }

// extWarmPool prefers warm targets: if any feasible candidate is already
// running work, the best-scored warm one wins; otherwise the scored choice
// stands. Ties break on the lowest ID, like the main scoring stage.
func extWarmPool(p *Policy) Extender {
	return Extender{Name: "warm-pool", Extend: func(r Request, feasible []Candidate, chosen int) int {
		warm := -1
		var best float64
		for _, c := range feasible {
			if c.Load <= 0 {
				continue
			}
			s := p.score(r, c)
			if warm < 0 || s > best || (s == best && c.ID < warm) {
				warm, best = c.ID, s
			}
		}
		if warm >= 0 {
			return warm
		}
		return chosen
	}}
}

// DefaultOversubFactor is the memory oversubscription the bare "oversub"
// spec grants.
const DefaultOversubFactor = 1.25

// Builtin returns a fresh instance of a named built-in policy. It panics on
// unknown names; use ParsePolicy for spec strings from user input.
//
//	alg1       Algorithm 1's placement: tier preference, first fit within a
//	           tier — byte-for-byte the dispatcher's pre-refactor behavior.
//	best-fit   pack tightly (least free capacity wins)
//	worst-fit  spread (most free capacity wins) — the arena's default
//	oversub    best-fit packing with 1.25x memory oversubscription
//	one-shot   worst-fit spreading, but failed placements are refused
func Builtin(name string) *Policy {
	p, err := ParsePolicy(name)
	if err != nil {
		panic("place: " + err.Error())
	}
	return p
}
