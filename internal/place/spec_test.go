package place

import (
	"strings"
	"testing"
)

func TestParsePolicyCanonicalNames(t *testing.T) {
	cases := []struct {
		spec, canon string
	}{
		{"alg1", "alg1"},
		{"best-fit", "best-fit"},
		{"worst-fit", "worst-fit"},
		{"one-shot", "one-shot"},
		{"oversub", "oversub:1.25"},
		{"oversub:1.5", "oversub:1.5"},
		{"oversub:1", "oversub:1"},
		{"best-fit+warm-pool", "best-fit+warm-pool"},
		{"best-fit+warm-pool+one-shot", "best-fit+one-shot+warm-pool"}, // suffixes sort
		{"mix:worst-fit=1,load=2", "mix:worst-fit=1,load=2"},           // entry order preserved
		{"mix:load=0.5,tier=3+one-shot", "mix:load=0.5,tier=3+one-shot"},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.spec)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.spec, err)
			continue
		}
		if p.String() != c.canon {
			t.Errorf("ParsePolicy(%q).String() = %q, want %q", c.spec, p.String(), c.canon)
		}
		// The canonical form must be a fixpoint.
		q, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("canonical %q does not re-parse: %v", p.String(), err)
			continue
		}
		if q.String() != p.String() {
			t.Errorf("canonical form is not a fixpoint: %q -> %q", p.String(), q.String())
		}
	}
}

func TestParsePolicyRejectsMalformed(t *testing.T) {
	specs := []string{
		"",
		"nope",
		"first-fit",
		"oversub:0.5", // below 1
		"oversub:5",   // above 4
		"oversub:NaN",
		"oversub:",
		"mix:",
		"mix:load",          // no weight
		"mix:load=0",        // zero weight
		"mix:load=-1",       // negative weight
		"mix:load=1e7",      // above cap
		"mix:load=x",        // not a number
		"mix:nope=1",        // unknown prioritizer
		"mix:load=1,load=2", // duplicate prioritizer
		"best-fit+nope",
		"best-fit+one-shot+one-shot", // duplicate extender
		"one-shot+one-shot",          // alias already carries it
		"best-fit+",
		"+one-shot",
	}
	for _, s := range specs {
		if p, err := ParsePolicy(s); err == nil {
			t.Errorf("ParsePolicy(%q) accepted a malformed spec as %q", s, p.String())
		}
	}
}

func TestParsePolicyErrorsNameTheSpec(t *testing.T) {
	_, err := ParsePolicy("mix:bogus=1")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the offending prioritizer: %v", err)
	}
	if !strings.Contains(err.Error(), strings.Join(PrioritizerNames(), "|")) {
		t.Errorf("error does not list the valid prioritizers: %v", err)
	}
}

func TestParsedPoliciesCarryStandardPredicates(t *testing.T) {
	for _, spec := range []string{"alg1", "best-fit", "oversub:2", "mix:warm=1"} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		if len(p.Predicates) != 5 {
			t.Errorf("%s: %d predicates, want the standard 5", spec, len(p.Predicates))
		}
		if len(p.Prioritizers) == 0 {
			t.Errorf("%s: no prioritizers", spec)
		}
	}
}

func TestOversubFactorReachesOvercommit(t *testing.T) {
	p, err := ParsePolicy("oversub:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Overcommit != 1.5 {
		t.Fatalf("Overcommit = %g, want 1.5", p.Overcommit)
	}
	q, err := ParsePolicy("best-fit")
	if err != nil {
		t.Fatal(err)
	}
	if q.Overcommit != 1 {
		t.Fatalf("best-fit Overcommit = %g, want 1", q.Overcommit)
	}
}
