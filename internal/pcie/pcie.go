// Package pcie models the host's PCI Express interconnect: link capacities
// per generation, and a fluid-flow fabric that shares bandwidth between
// concurrent transfers with max-min fairness.
//
// The paper's core observation — a single far-memory device (7.9–46 GB/s)
// cannot saturate the fabric (64 GB/s on PCIe 4.0 ×16, 128 GB/s on 5.0), so
// multi-backend access is required for full data throughput — is entirely a
// property of this layer.
package pcie

import "repro/internal/units"

// Generation identifies a PCIe protocol generation.
type Generation int

// PCIe generations covered by Fig 3's bandwidth-trend plot.
const (
	Gen1 Generation = 1 + iota
	Gen2
	Gen3
	Gen4
	Gen5
	Gen6
)

// Year reports the specification year used for the Fig 3 trend line.
func (g Generation) Year() int {
	switch g {
	case Gen1:
		return 2003
	case Gen2:
		return 2007
	case Gen3:
		return 2010
	case Gen4:
		return 2017
	case Gen5:
		return 2019
	case Gen6:
		return 2022
	default:
		return 0
	}
}

// GTps reports the per-lane transfer rate in gigatransfers/second.
func (g Generation) GTps() float64 {
	switch g {
	case Gen1:
		return 2.5
	case Gen2:
		return 5
	case Gen3:
		return 8
	case Gen4:
		return 16
	case Gen5:
		return 32
	case Gen6:
		return 64
	default:
		return 0
	}
}

func (g Generation) String() string {
	names := map[Generation]string{Gen1: "PCIe 1.0", Gen2: "PCIe 2.0", Gen3: "PCIe 3.0",
		Gen4: "PCIe 4.0", Gen5: "PCIe 5.0", Gen6: "PCIe 6.0"}
	if s, ok := names[g]; ok {
		return s
	}
	return "PCIe ?"
}

// encodingEfficiency reports the line-coding efficiency: 8b/10b for Gen1-2,
// 128b/130b for Gen3-5, PAM4+FLIT (~1.0 payload efficiency) for Gen6.
func (g Generation) encodingEfficiency() float64 {
	switch g {
	case Gen1, Gen2:
		return 0.8
	case Gen6:
		return 1.0
	default:
		return 128.0 / 130.0
	}
}

// LaneBandwidth reports the usable unidirectional bandwidth of one lane.
func (g Generation) LaneBandwidth() units.BytesPerSec {
	// GT/s × efficiency / 8 bits = GB/s per lane.
	return units.GBps(g.GTps() * g.encodingEfficiency() / 8)
}

// SlotBandwidth reports the usable unidirectional bandwidth of a slot with
// the given lane count (e.g. 16 for an Add-in-Card x16 slot).
func (g Generation) SlotBandwidth(lanes int) units.BytesPerSec {
	return units.BytesPerSec(float64(g.LaneBandwidth()) * float64(lanes))
}

// DuplexBandwidth reports the bidirectional (read+write) bandwidth of a slot,
// which is how the paper quotes fabric capacity ("64 GB/s on PCIe 4.0 ×16").
func (g Generation) DuplexBandwidth(lanes int) units.BytesPerSec {
	return units.BytesPerSec(2 * float64(g.SlotBandwidth(lanes)))
}
