package pcie

import (
	"fmt"
	"math"

	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Registered invariants for the fluid-flow arbiter. Progressive filling must
// never oversubscribe a link (allocated rate ≤ capacity) or push a capped
// flow past its cap, and a link can never have carried more payload than its
// high-water bandwidth × elapsed virtual time — the conservation law behind
// every throughput figure.
var (
	ckLinkAlloc      = invariant.Register("pcie.link.no-oversubscription")
	ckFlowCap        = invariant.Register("pcie.flow.rate-within-cap")
	ckLinkThroughput = invariant.Register("pcie.link.throughput-bound")
)

// rateEpsilon absorbs float rounding in rate allocation checks.
const rateEpsilon = 1e-6

// Link is a capacity-constrained segment of the I/O path: a PCIe slot, the
// host's root-complex budget, a device's internal bandwidth, or a network
// hop. Flows traversing a link share its capacity max-min fairly.
type Link struct {
	Name     string
	capacity float64 // bytes/sec
	// maxCapacity is the high-water capacity ever configured, the bound for
	// the throughput invariant (capacity may be degraded mid-run).
	maxCapacity float64

	// bytesMoved accumulates payload carried, for utilization reporting.
	bytesMoved float64

	// Scratch fields used during rate recomputation.
	alloc    float64
	unfrozen int

	// obsUtil, when non-nil, receives the link's instantaneous allocation
	// fraction at every fabric rebalance.
	obsUtil *metrics.BucketTimeline
}

// Capacity reports the link's bandwidth.
func (l *Link) Capacity() units.BytesPerSec { return units.BytesPerSec(l.capacity) }

// SetCapacity changes the link bandwidth. Rates of in-flight flows are
// re-shared on the next fabric event; callers that need the change to take
// effect immediately should call Fabric.Rebalance.
func (l *Link) SetCapacity(c units.BytesPerSec) {
	l.capacity = float64(c)
	if l.capacity > l.maxCapacity {
		l.maxCapacity = l.capacity
	}
}

// BytesMoved reports the payload bytes carried so far.
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// Utilization reports mean utilization over [0, now].
func (l *Link) Utilization(now sim.Time) float64 {
	secs := now.Seconds()
	if secs <= 0 || l.capacity <= 0 {
		return 0
	}
	return l.bytesMoved / (l.capacity * secs)
}

// Flow is an in-progress transfer across a path of links. Its instantaneous
// rate is the max-min fair share across every link it traverses, further
// bounded by an optional per-flow cap (e.g. one RDMA queue pair's limit).
type Flow struct {
	path      []*Link
	remaining float64
	size      float64
	rate      float64
	cap       float64 // 0 = uncapped
	done      func(at sim.Time)
	frozen    bool // scratch during recompute
	finished  bool

	// Observability (populated only when the fabric is recorded): start
	// stamp and the ideal uncontended duration — size over the narrowest
	// capacity on the path (and the flow cap). The difference between actual
	// and ideal duration is the time lost to bandwidth arbitration, exported
	// as the pcie/alloc-wait histogram.
	start sim.Time
	ideal sim.Duration
}

// Rate reports the flow's current fair-share rate in bytes/sec.
func (f *Flow) Rate() units.BytesPerSec { return units.BytesPerSec(f.rate) }

// Remaining reports the bytes not yet transferred.
func (f *Flow) Remaining() float64 { return f.remaining }

// Fabric is the fluid-flow bandwidth simulator. Transfers are modeled as
// fluid flows whose rates are recomputed (progressive-filling max-min
// fairness, honoring per-flow caps) whenever a flow starts or completes.
type Fabric struct {
	eng        *sim.Engine
	links      []*Link
	flows      []*Flow
	lastUpdate sim.Time
	next       sim.Handle
	hasNext    bool

	// Observability handle, resolved once at construction (nil when off).
	rec *obs.Recorder
}

// NewFabric creates an empty fabric on the engine.
func NewFabric(eng *sim.Engine) *Fabric {
	fb := &Fabric{eng: eng, lastUpdate: eng.Now()}
	if obs.On {
		fb.rec = obs.Rec(eng)
	}
	return fb
}

// NewLink adds a link with the given capacity to the fabric.
func (fb *Fabric) NewLink(name string, capacity units.BytesPerSec) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("pcie: link %q with non-positive capacity", name))
	}
	l := &Link{Name: name, capacity: float64(capacity), maxCapacity: float64(capacity)}
	fb.links = append(fb.links, l)
	if fb.rec != nil {
		r := fb.rec
		track := "pcie/" + name
		l.obsUtil = r.Timeline(track+"/alloc", obs.DefaultTimelineWidth, obs.ModeMean)
		r.OnSeal(func() {
			r.Gauge(track + "/utilization").Set(l.Utilization(fb.eng.Now()))
			r.Counter(track + "/bytes").Add(l.bytesMoved)
		})
	}
	return l
}

// ActiveFlows reports the number of in-flight transfers.
func (fb *Fabric) ActiveFlows() int { return len(fb.flows) }

// Transfer starts moving size bytes across path and calls done (if non-nil)
// when the last byte lands. A zero/negative size completes immediately. An
// empty path panics — latency-only waits belong on the engine directly.
func (fb *Fabric) Transfer(size int64, path []*Link, done func(at sim.Time)) *Flow {
	return fb.TransferCapped(size, 0, path, done)
}

// TransferCapped is Transfer with a per-flow rate cap (0 = uncapped).
func (fb *Fabric) TransferCapped(size int64, rateCap units.BytesPerSec, path []*Link, done func(at sim.Time)) *Flow {
	if len(path) == 0 {
		panic("pcie: transfer with empty path")
	}
	f := &Flow{path: path, remaining: float64(size), size: float64(size), cap: float64(rateCap), done: done}
	if fb.rec != nil {
		f.start = fb.eng.Now()
		minCap := math.Inf(1)
		for _, l := range path {
			if l.capacity > 0 && l.capacity < minCap {
				minCap = l.capacity
			}
		}
		if f.cap > 0 && f.cap < minCap {
			minCap = f.cap
		}
		if f.size > 0 && !math.IsInf(minCap, 1) {
			f.ideal = sim.Duration(f.size / minCap * float64(sim.Second))
		}
	}
	if f.remaining <= 0 {
		f.finished = true
		if done != nil {
			fb.eng.Immediately(func() { done(fb.eng.Now()) })
		}
		return f
	}
	fb.advance()
	fb.flows = append(fb.flows, f)
	fb.rebalance()
	return f
}

// Rebalance advances accounting to the current instant and recomputes all
// flow rates. It is called automatically on flow arrival and completion;
// call it manually after changing link capacities mid-flight.
func (fb *Fabric) Rebalance() {
	fb.advance()
	fb.rebalance()
}

// advance integrates flow progress from lastUpdate to now.
func (fb *Fabric) advance() {
	now := fb.eng.Now()
	dt := now.Sub(fb.lastUpdate).Seconds()
	fb.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range fb.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, l := range f.path {
			l.bytesMoved += moved
		}
	}
	if invariant.On {
		secs := now.Seconds()
		for _, l := range fb.links {
			bound := l.maxCapacity*secs*(1+rateEpsilon) + completionEpsilon
			ckLinkThroughput.Assert(l.bytesMoved <= bound,
				"link %q moved %.0f bytes in %.6fs at max capacity %.0f B/s",
				l.Name, l.bytesMoved, secs, l.maxCapacity)
		}
	}
}

// rebalance recomputes max-min fair rates and schedules the next completion.
func (fb *Fabric) rebalance() {
	// Progressive filling. Reset scratch state.
	for _, l := range fb.links {
		l.alloc = 0
		l.unfrozen = 0
	}
	unfrozen := 0
	for _, f := range fb.flows {
		f.frozen = false
		f.rate = 0
		unfrozen++
		for _, l := range f.path {
			l.unfrozen++
		}
	}
	for unfrozen > 0 {
		// Find the bottleneck share: the smallest per-flow headroom across
		// links that still carry unfrozen flows.
		share := math.Inf(1)
		var bottleneck *Link
		for _, l := range fb.links {
			if l.unfrozen == 0 {
				continue
			}
			head := (l.capacity - l.alloc) / float64(l.unfrozen)
			if head < share {
				share = head
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break // no unfrozen flow touches any link; cannot happen with non-empty paths
		}
		if share < 0 {
			share = 0
		}
		// A capped flow below the bottleneck share freezes at its cap first.
		var minCapFlow *Flow
		for _, f := range fb.flows {
			if f.frozen || f.cap <= 0 || f.cap >= share {
				continue
			}
			if minCapFlow == nil || f.cap < minCapFlow.cap {
				minCapFlow = f
			}
		}
		if minCapFlow != nil {
			fb.freeze(minCapFlow, minCapFlow.cap)
			unfrozen--
			continue
		}
		// Otherwise freeze every unfrozen flow crossing the bottleneck link.
		for _, f := range fb.flows {
			if f.frozen {
				continue
			}
			crosses := false
			for _, l := range f.path {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if crosses {
				fb.freeze(f, share)
				unfrozen--
			}
		}
	}
	if fb.rec != nil {
		now := fb.eng.Now()
		for _, l := range fb.links {
			if l.obsUtil != nil && l.capacity > 0 {
				l.obsUtil.Add(now, l.alloc/l.capacity)
			}
		}
	}
	if invariant.On {
		for _, l := range fb.links {
			ckLinkAlloc.Assert(l.alloc <= l.capacity*(1+rateEpsilon)+rateEpsilon,
				"link %q allocated %.0f B/s over capacity %.0f B/s", l.Name, l.alloc, l.capacity)
		}
		for _, f := range fb.flows {
			ckFlowCap.Assert(f.rate >= 0 &&
				(f.cap <= 0 || f.rate <= f.cap*(1+rateEpsilon)),
				"flow rate %.0f B/s outside [0, cap %.0f B/s]", f.rate, f.cap)
		}
	}
	fb.scheduleNext()
}

func (fb *Fabric) freeze(f *Flow, rate float64) {
	f.frozen = true
	f.rate = rate
	for _, l := range f.path {
		l.alloc += rate
		l.unfrozen--
	}
}

func (fb *Fabric) scheduleNext() {
	if fb.hasNext {
		fb.next.Cancel(fb.eng)
		fb.hasNext = false
	}
	soonest := math.Inf(1)
	for _, f := range fb.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	// Ceil to the next nanosecond so that by the time the event fires every
	// flow scheduled to finish has remaining <= 0 modulo float error.
	delay := sim.Duration(math.Ceil(soonest * float64(sim.Second)))
	if delay < 1 {
		delay = 1
	}
	fb.next = fb.eng.After(delay, fb.onCompletion)
	fb.hasNext = true
}

// completionEpsilon absorbs float rounding in remaining-byte accounting.
const completionEpsilon = 1e-3

func (fb *Fabric) onCompletion() {
	fb.hasNext = false
	fb.advance()
	var still []*Flow
	var completed []*Flow
	for _, f := range fb.flows {
		if f.remaining <= completionEpsilon {
			f.remaining = 0
			f.finished = true
			completed = append(completed, f)
		} else {
			still = append(still, f)
		}
	}
	fb.flows = still
	fb.rebalance()
	now := fb.eng.Now()
	for _, f := range completed {
		if fb.rec != nil && f.ideal > 0 {
			// Allocation wait: how much longer the transfer took than it
			// would have alone on its narrowest link. Completion rounds up
			// to whole nanoseconds, so clamp tiny negatives to zero.
			wait := now.Sub(f.start) - f.ideal
			if wait < 0 {
				wait = 0
			}
			fb.rec.Observe("pcie/alloc-wait", float64(wait))
		}
		if f.done != nil {
			f.done(now)
		}
	}
}
