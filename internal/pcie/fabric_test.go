package pcie

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestSingleFlowFullRate(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(10))
	var finished sim.Time
	fb.Transfer(10e9, []*Link{link}, func(at sim.Time) { finished = at })
	eng.Run()
	// 10 GB at 10 GB/s = 1 s.
	if got := finished.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("finish at %vs, want 1s", got)
	}
	if u := link.Utilization(eng.Now()); math.Abs(u-1.0) > 1e-6 {
		t.Fatalf("utilization %v, want 1.0", u)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(10))
	var f1, f2 sim.Time
	fb.Transfer(5e9, []*Link{link}, func(at sim.Time) { f1 = at })
	fb.Transfer(5e9, []*Link{link}, func(at sim.Time) { f2 = at })
	eng.Run()
	// Each gets 5 GB/s: both finish at t=1s.
	if math.Abs(f1.Seconds()-1.0) > 1e-6 || math.Abs(f2.Seconds()-1.0) > 1e-6 {
		t.Fatalf("finish times %v %v, want both 1s", f1, f2)
	}
}

func TestShortFlowDepartsAndLongFlowSpeedsUp(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(10))
	var short, long sim.Time
	fb.Transfer(2.5e9, []*Link{link}, func(at sim.Time) { short = at })
	fb.Transfer(7.5e9, []*Link{link}, func(at sim.Time) { long = at })
	eng.Run()
	// Shared 5+5 until short finishes at t=0.5 (2.5GB at 5GB/s). Long then has
	// 5GB left at 10GB/s: finishes at t=1.0.
	if math.Abs(short.Seconds()-0.5) > 1e-6 {
		t.Fatalf("short finish %v, want 0.5s", short.Seconds())
	}
	if math.Abs(long.Seconds()-1.0) > 1e-6 {
		t.Fatalf("long finish %v, want 1.0s", long.Seconds())
	}
}

func TestMultiLinkBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	device := fb.NewLink("ssd", units.GBps(4))
	fabric := fb.NewLink("pcie", units.GBps(32))
	var finish sim.Time
	fb.Transfer(4e9, []*Link{device, fabric}, func(at sim.Time) { finish = at })
	eng.Run()
	// Bottleneck is the 4 GB/s device: 1 s.
	if math.Abs(finish.Seconds()-1.0) > 1e-6 {
		t.Fatalf("finish %v, want 1s", finish.Seconds())
	}
}

// The paper's multi-backend headline: two devices of 4 GB/s each on a 32 GB/s
// fabric together deliver 8 GB/s, while a single device is stuck at 4.
func TestMultiBackendAggregation(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	fabric := fb.NewLink("pcie", units.GBps(32))
	ssd1 := fb.NewLink("ssd1", units.GBps(4))
	ssd2 := fb.NewLink("ssd2", units.GBps(4))
	var t1, t2 sim.Time
	fb.Transfer(4e9, []*Link{ssd1, fabric}, func(at sim.Time) { t1 = at })
	fb.Transfer(4e9, []*Link{ssd2, fabric}, func(at sim.Time) { t2 = at })
	eng.Run()
	if math.Abs(t1.Seconds()-1.0) > 1e-6 || math.Abs(t2.Seconds()-1.0) > 1e-6 {
		t.Fatalf("parallel transfers took %v and %v, want 1s each (8GB in 1s total)", t1, t2)
	}
}

func TestFabricSaturationCapsAggregate(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	fabric := fb.NewLink("pcie", units.GBps(8))
	var finishes []float64
	for i := 0; i < 4; i++ {
		dev := fb.NewLink("dev", units.GBps(4))
		fb.Transfer(2e9, []*Link{dev, fabric}, func(at sim.Time) {
			finishes = append(finishes, at.Seconds())
		})
	}
	eng.Run()
	// 4 devices × 4 GB/s demand = 16 GB/s > 8 GB/s fabric. Each flow gets
	// 2 GB/s, so 2 GB takes 1 s.
	for _, f := range finishes {
		if math.Abs(f-1.0) > 1e-6 {
			t.Fatalf("finishes = %v, want all 1.0", finishes)
		}
	}
}

func TestPerFlowRateCap(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(10))
	var capped, open sim.Time
	fb.TransferCapped(1e9, units.GBps(1), []*Link{link}, func(at sim.Time) { capped = at })
	fb.Transfer(9e9, []*Link{link}, func(at sim.Time) { open = at })
	eng.Run()
	// Capped flow: 1 GB at 1 GB/s = 1 s. Open flow gets the remaining 9 GB/s:
	// 9 GB / 9 GB/s = 1 s.
	if math.Abs(capped.Seconds()-1.0) > 1e-6 {
		t.Fatalf("capped finish %v, want 1s", capped.Seconds())
	}
	if math.Abs(open.Seconds()-1.0) > 1e-6 {
		t.Fatalf("open finish %v, want 1s", open.Seconds())
	}
}

func TestZeroSizeTransferCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(1))
	doneAt := sim.Time(-1)
	fb.Transfer(0, []*Link{link}, func(at sim.Time) { doneAt = at })
	eng.Run()
	if doneAt != 0 {
		t.Fatalf("zero-size transfer completed at %v, want 0", doneAt)
	}
}

func TestEmptyPathPanics(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("empty path did not panic")
		}
	}()
	fb.Transfer(1, nil, nil)
}

func TestSetCapacityRebalance(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(1))
	var finish sim.Time
	fb.Transfer(2e9, []*Link{link}, func(at sim.Time) { finish = at })
	eng.At(sim.Time(sim.Second), func() {
		// After 1s, 1 GB remains. Double the capacity: remaining takes 0.5s.
		link.SetCapacity(units.GBps(2))
		fb.Rebalance()
	})
	eng.Run()
	if math.Abs(finish.Seconds()-1.5) > 1e-6 {
		t.Fatalf("finish %v, want 1.5s", finish.Seconds())
	}
}

// Property: with arbitrary flow sizes on one link, total bytes moved equals
// the sum of sizes, and the link never carries more than capacity (verified
// via completion time >= sum/capacity).
func TestFabricConservationProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		eng := sim.NewEngine()
		fb := NewFabric(eng)
		link := fb.NewLink("l", units.MBps(100))
		total := 0.0
		completions := 0
		for _, s := range sizes {
			size := int64(s%10_000_000) + 1
			total += float64(size)
			fb.Transfer(size, []*Link{link}, func(sim.Time) { completions++ })
		}
		eng.Run()
		if completions != len(sizes) {
			return false
		}
		if math.Abs(link.BytesMoved()-total) > 1+1e-6*total {
			return false
		}
		// Completion cannot beat the capacity bound.
		minTime := total / 100e6
		return eng.Now().Seconds() >= minTime-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min fairness — equal-size flows arriving together on one
// link finish together.
func TestFairnessProperty(t *testing.T) {
	f := func(nSeed uint8, sizeSeed uint32) bool {
		n := int(nSeed%8) + 2
		size := int64(sizeSeed%1_000_000) + 1000
		eng := sim.NewEngine()
		fb := NewFabric(eng)
		link := fb.NewLink("l", units.MBps(10))
		var finishes []sim.Time
		for i := 0; i < n; i++ {
			fb.Transfer(size, []*Link{link}, func(at sim.Time) { finishes = append(finishes, at) })
		}
		eng.Run()
		if len(finishes) != n {
			return false
		}
		for _, fi := range finishes {
			if fi != finishes[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// Property: in a random two-tier topology (per-device links feeding a
// shared trunk), all transfers complete, bytes are conserved on the trunk,
// and the completion time respects both the trunk bound and each device
// bound.
func TestRandomTopologyProperty(t *testing.T) {
	f := func(devSeeds []uint8, trunkSeed uint8) bool {
		if len(devSeeds) == 0 || len(devSeeds) > 12 {
			return true
		}
		eng := sim.NewEngine()
		fb := NewFabric(eng)
		trunkCap := float64(trunkSeed%40+10) * 1e8 // 1-5 GB/s
		trunk := fb.NewLink("trunk", units.BytesPerSec(trunkCap))
		done := 0
		total := 0.0
		maxDevTime := 0.0
		for _, ds := range devSeeds {
			devCap := float64(ds%20+5) * 1e8
			dev := fb.NewLink("dev", units.BytesPerSec(devCap))
			size := int64(ds)*1e6 + 1e6
			total += float64(size)
			if devTime := float64(size) / devCap; devTime > maxDevTime {
				maxDevTime = devTime
			}
			fb.Transfer(size, []*Link{dev, trunk}, func(sim.Time) { done++ })
		}
		eng.Run()
		if done != len(devSeeds) {
			return false
		}
		if math.Abs(trunk.BytesMoved()-total) > 1+1e-6*total {
			return false
		}
		elapsed := eng.Now().Seconds()
		// Lower bounds: the trunk must carry everything; the slowest device
		// flow cannot finish before its own capacity allows.
		if elapsed < total/trunkCap-1e-6 || elapsed < maxDevTime-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
