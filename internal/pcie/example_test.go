package pcie_test

import (
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

// Two transfers share a 10 GB/s link max-min fairly: each gets 5 GB/s until
// the short one departs, then the long one speeds up.
func ExampleFabric() {
	eng := sim.NewEngine()
	fb := pcie.NewFabric(eng)
	link := fb.NewLink("pcie", units.GBps(10))

	fb.Transfer(2_500_000_000, []*pcie.Link{link}, func(at sim.Time) {
		fmt.Println("short transfer done at", at)
	})
	fb.Transfer(7_500_000_000, []*pcie.Link{link}, func(at sim.Time) {
		fmt.Println("long transfer done at", at)
	})
	eng.Run()
	// Output:
	// short transfer done at 500.00ms
	// long transfer done at 1.000s
}

// The Fig 3 trend: usable x16 bandwidth doubles per generation.
func ExampleGeneration() {
	for _, g := range []pcie.Generation{pcie.Gen3, pcie.Gen4, pcie.Gen5} {
		fmt.Printf("%s: %s\n", g, g.SlotBandwidth(16))
	}
	// Output:
	// PCIe 3.0: 15.75 GB/s
	// PCIe 4.0: 31.51 GB/s
	// PCIe 5.0: 63.02 GB/s
}
