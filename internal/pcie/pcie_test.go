package pcie

import "testing"

func TestGenerationTable(t *testing.T) {
	// The trend the paper highlights: bandwidth doubles every generation,
	// roughly every three years (Fig 3).
	gens := []Generation{Gen1, Gen2, Gen3, Gen4, Gen5, Gen6}
	prev := 0.0
	for _, g := range gens {
		bw := float64(g.SlotBandwidth(16))
		if bw <= prev {
			t.Fatalf("%v bandwidth %v not greater than previous %v", g, bw, prev)
		}
		if prev > 0 {
			ratio := bw / prev
			if ratio < 1.5 || ratio > 2.6 {
				t.Fatalf("%v generation-over-generation ratio %.2f outside doubling trend", g, ratio)
			}
		}
		prev = bw
		if g.Year() == 0 {
			t.Fatalf("%v missing year", g)
		}
	}
}

func TestGen4DuplexMatchesPaper(t *testing.T) {
	// Paper: "64 GB/s on PCIe 4.0 ×16" (duplex).
	got := Gen4.DuplexBandwidth(16).GB()
	if got < 60 || got > 66 {
		t.Fatalf("PCIe 4.0 x16 duplex = %.1f GB/s, want ~64", got)
	}
	// Paper: "PCIe 5.0 protocols can offer a bandwidth of 128 GB/s".
	got5 := Gen5.DuplexBandwidth(16).GB()
	if got5 < 120 || got5 > 132 {
		t.Fatalf("PCIe 5.0 x16 duplex = %.1f GB/s, want ~128", got5)
	}
}

func TestGenerationStrings(t *testing.T) {
	if Gen4.String() != "PCIe 4.0" {
		t.Fatalf("Gen4.String() = %q", Gen4.String())
	}
	if Generation(99).String() != "PCIe ?" {
		t.Fatalf("unknown generation string = %q", Generation(99).String())
	}
	if Generation(99).GTps() != 0 || Generation(99).Year() != 0 {
		t.Fatal("unknown generation should report zeros")
	}
}
