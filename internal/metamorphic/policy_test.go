package metamorphic

import (
	"math/rand"
	"testing"

	"repro/internal/place"
)

// Placement-policy metamorphic laws: relations between runs that must
// survive any refactor of internal/place. Like the device laws in this
// package, each is checked over seeded deterministic trials — a failure
// reproduces exactly.

const (
	polCores = 4
	polPages = 256
)

func polCandidate(id, cores, pages int) place.Candidate {
	return place.Candidate{
		ID: id, FreeCores: cores, FreePages: pages,
		TotalCores: polCores, TotalPages: polPages,
		Tier: 1, Healthy: true, Accepts: true,
	}
}

func randPolCandidates(r *rand.Rand, n int) []place.Candidate {
	cands := make([]place.Candidate, n)
	for i := range cands {
		cands[i] = polCandidate(i, r.Intn(polCores+1), r.Intn(polPages+1))
	}
	return cands
}

// polLease is one running request in the steady-state harness.
type polLease struct{ node, cores, pages, expire int }

// steadyStranding drives a steady-state place/release loop: one request per
// step with a fixed lifetime, failed requests dropped (open-loop). It
// reports the peak stranded-memory *fraction* over the failure instants:
// free pages on nodes whose cores cannot host the failed request, over the
// fleet's page capacity. The fraction — not absolute pages — is the
// fleet-size-comparable quantity (a bigger fleet has more pages to strand).
func steadyStranding(p *place.Policy, n int, reqs []place.Request, life int) float64 {
	cands := make([]place.Candidate, n)
	for i := range cands {
		cands[i] = polCandidate(i, polCores, polPages)
	}
	var held []polLease
	peak := 0.0
	for step, r := range reqs {
		kept := held[:0]
		for _, l := range held {
			if l.expire <= step {
				cands[l.node].FreeCores += l.cores
				cands[l.node].FreePages += l.pages
			} else {
				kept = append(kept, l)
			}
		}
		held = kept
		got := p.Place(r, cands)
		if got == -1 {
			stranded := 0
			for _, c := range cands {
				if c.FreeCores < r.Cores && c.FreePages > 0 {
					stranded += c.FreePages
				}
			}
			if f := float64(stranded) / float64(n*polPages); f > peak {
				peak = f
			}
			continue
		}
		cands[got].FreeCores -= r.Cores
		cands[got].FreePages -= r.Pages
		held = append(held, polLease{got, r.Cores, r.Pages, step + life})
	}
	return peak
}

// TestAddingMachineNeverIncreasesStrandingBestFit: growing a best-fit fleet
// by one empty node never increases the peak stranded-memory fraction of the
// same steady-state request stream. Under a fixed offered load the extra
// node absorbs contention: failures get rarer and happen with fewer
// core-exhausted nodes, so stranding can only shrink. (The law needs the
// steady state — in a pure fill with no releases, extra capacity lets the
// fleet pack deeper before failing and stranding grows with utilization; the
// lifetime of 8 steps against 4n+4 cores keeps the load in the regime where
// monotonicity holds, verified over thousands of seeds.)
func TestAddingMachineNeverIncreasesStrandingBestFit(t *testing.T) {
	p := place.Builtin("best-fit")
	const life = 8
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		reqs := make([]place.Request, 40*n)
		for i := range reqs {
			reqs[i] = place.Request{Cores: 1 + r.Intn(2), Pages: 1 + r.Intn(polPages/2)}
		}
		small := steadyStranding(p, n, reqs, life)
		big := steadyStranding(p, n+1, reqs, life)
		if big > small+1e-12 {
			t.Errorf("seed %d: adding a machine increased best-fit stranding: %.4f -> %.4f (n=%d)",
				seed, small, big, n)
		}
	}
}

// TestRelaxingPredicateNeverShrinksFeasibleSet: a higher oversubscription
// factor admits a superset of candidates, and flipping a candidate's
// acceptance bit on never removes others from feasibility — predicates are
// per-candidate filters with no cross-candidate coupling.
func TestRelaxingPredicateNeverShrinksFeasibleSet(t *testing.T) {
	tight := place.Builtin("oversub:1")
	loose := place.Builtin("oversub:1.5")
	loosest := place.Builtin("oversub:4")
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		cands := randPolCandidates(r, 1+r.Intn(10))
		req := place.Request{Cores: 1 + r.Intn(polCores), Pages: 1 + r.Intn(polPages)}
		for _, c := range cands {
			a, b, d := tight.Feasible(req, c), loose.Feasible(req, c), loosest.Feasible(req, c)
			if a && !b {
				t.Fatalf("trial %d: oversub:1.5 rejects a candidate oversub:1 admits: %+v", trial, c)
			}
			if b && !d {
				t.Fatalf("trial %d: oversub:4 rejects a candidate oversub:1.5 admits: %+v", trial, c)
			}
		}
		// Flipping one candidate's gate on cannot shrink the feasible set.
		before := 0
		for _, c := range cands {
			if tight.Feasible(req, c) {
				before++
			}
		}
		relaxed := append([]place.Candidate(nil), cands...)
		relaxed[r.Intn(len(relaxed))].Accepts = true
		after := 0
		for _, c := range relaxed {
			if tight.Feasible(req, c) {
				after++
			}
		}
		if after < before {
			t.Fatalf("trial %d: granting acceptance shrank the feasible set: %d -> %d", trial, before, after)
		}
	}
}

// TestOversubOneEquivalentToBestFit: a 1.0 oversubscription factor grants
// zero slack, so oversub:1 and best-fit must make identical choices on any
// fleet — the law that pins oversub's prioritizers to best-fit packing.
func TestOversubOneEquivalentToBestFit(t *testing.T) {
	oversub := place.Builtin("oversub:1")
	bestfit := place.Builtin("best-fit")
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		cands := randPolCandidates(r, 1+r.Intn(12))
		for i := range cands {
			cands[i].Load = r.Intn(3)
			cands[i].Tier = r.Intn(4)
			cands[i].Healthy = r.Intn(8) != 0
			cands[i].Accepts = r.Intn(8) != 0
		}
		req := place.Request{Cores: 1 + r.Intn(polCores), Pages: 1 + r.Intn(polPages)}
		a, b := oversub.Place(req, cands), bestfit.Place(req, cands)
		if a != b {
			t.Fatalf("trial %d: oversub:1 chose %d, best-fit chose %d (req %+v)", trial, a, b, req)
		}
	}
}
