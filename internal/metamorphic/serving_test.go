package metamorphic

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// servingGoodput runs one open-loop serving simulation at the given
// offered rate on a fixed overcommitted single-backend fleet (the
// configuration with the lowest, best-characterized knee) and returns its
// weighted goodput.
func servingGoodput(rps float64, seed int64) serve.Result {
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen4, 40, 16, 1<<20)
	m.AttachDevice(device.SpecTestbedSSD("ssd0"))
	env := baseline.Env{Machine: m, FileBackend: "ssd0"}
	serve.PrewarmFleet(env, 4, 2, 1024)
	return serve.Run(env, serve.Config{
		Templates: serve.RequestTemplates(),
		Arrivals:  workload.Poisson{RPS: rps},
		Duration:  3 * sim.Second,
		Drain:     sim.Second,
		SLO:       100 * sim.Millisecond,
		Shedding:  true,
		Seed:      seed,
	})
}

// TestServingGoodputMonotoneUnderOverload is the serving metamorphic law:
// past saturation, offering MORE load must never yield meaningfully MORE
// goodput — a server whose goodput scales with overload is one whose
// shedder is being gamed (the regression this law exists for, degraded
// responses counted at full weight, showed goodput 2.3x higher at double
// the load). The offered rates here are all well past the fleet's knee
// (~12 req/s for this overcommitted SSD-backed fleet), so every rung is
// compared against the first saturated rung: a bounded tolerance absorbs
// the benign work-conservation effect where denser arrivals keep slots
// marginally busier through the shedder's AIMD oscillation, while load-
// proportional growth still fails.
func TestServingGoodputMonotoneUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("serving sweep is slow")
	}
	withInvariants(t, func() {
		rates := []float64{50, 100, 200, 400}
		const tolerance = 1.15
		base := -1.0
		for _, rps := range rates {
			res := servingGoodput(rps, 17)
			t.Logf("offered %.0f: goodput %.1f (shed %.2f, viol %.3f)",
				rps, res.GoodputRPS, res.ShedRate, res.SLOViolationFrac)
			if res.Offered == 0 || res.Completed == 0 {
				t.Fatalf("degenerate run at %.0f rps: %+v", rps, res)
			}
			if base < 0 {
				base = res.GoodputRPS
				continue
			}
			if res.GoodputRPS > base*tolerance {
				t.Fatalf("goodput rose under deeper overload: %.1f at %.0f rps vs %.1f at %.0f rps",
					res.GoodputRPS, rps, base, rates[0])
			}
		}
	})
}
