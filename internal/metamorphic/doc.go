// Package metamorphic holds the simulator's metamorphic property suite:
// seeded randomized full-stack runs (workload → task → swap → device →
// pcie) executed with the runtime invariant layer enabled, asserting the
// paper-level monotonicity laws that must survive any refactor — adding a
// backend never reduces aggregate bandwidth, lowering device latency never
// increases completion time, and raising the cgroup limit never increases
// swap traffic. The package has no non-test code; this file exists so the
// package builds as part of ./...
package metamorphic
