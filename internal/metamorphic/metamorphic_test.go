package metamorphic

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/invariant"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

// randSpec draws a valid randomized workload spec. Threads is drawn from
// [1, maxThreads]; the monotonicity laws use maxThreads=1 so the access and
// reclaim trajectory is independent of device timing (with one worker, every
// residency decision depends only on the access sequence, so changing device
// speed can only move the same events in time).
func randSpec(r *rand.Rand, maxThreads int) workload.Spec {
	s := workload.Spec{
		Name:           "meta",
		Class:          workload.Compute,
		FootprintPages: 256 + r.Intn(1792),
		AnonFraction:   0.4 + r.Float64()*0.6,
		Coverage:       0.4 + r.Float64()*0.6,
		SegmentLen:     1 + r.Intn(64),
		SeqShare:       r.Float64(),
		RunLen:         1 + r.Intn(16),
		HotShare:       0.05 + r.Float64()*0.35,
		HotProb:        0.3 + r.Float64()*0.6,
		WriteFraction:  r.Float64() * 0.6,
		MainAccesses:   4000 + r.Intn(8000),
		Threads:        1 + r.Intn(maxThreads),
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// runStack executes one full-stack simulation — seeded workload stream →
// task fault/reclaim → swap path → device queueing → PCIe fluid-flow — and
// returns the finished task and its stats.
func runStack(t *testing.T, spec workload.Spec, devSpec device.Spec, ratio float64, seed int64) (*task.Task, task.Stats) {
	t.Helper()
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
	m.AttachDevice(devSpec)
	path := swap.NewPath(eng, m.Backend(devSpec.Name), swap.NewChannel(eng, "meta-ch", 4))
	cfg := task.Config{
		Eng:              eng,
		Name:             "meta",
		Spec:             spec,
		Seed:             seed,
		LocalRatio:       ratio,
		SwapPath:         path,
		GranularityPages: 1,
	}
	tk := task.New(cfg)
	var stats task.Stats
	finished := false
	tk.Start(func(s task.Stats) { stats = s; finished = true })
	eng.Run()
	if !finished {
		t.Fatalf("task did not finish (spec %+v)", spec)
	}
	return tk, stats
}

// withInvariants enables the checking layer for the duration of fn,
// collecting violations instead of panicking, and fails the test on any.
func withInvariants(t *testing.T, fn func()) {
	t.Helper()
	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) {
		violations = append(violations, v)
	})
	defer restore()
	invariant.Reset()
	invariant.Enable()
	defer invariant.Disable()
	fn()
	if len(violations) > 0 {
		t.Fatalf("%d invariant violations, first: %v", len(violations), violations[0])
	}
	if invariant.Checks() == 0 {
		t.Fatal("zero invariant checks evaluated; gate is not wired")
	}
}

// TestFullStackRandomizedInvariants drives randomized seeded simulations
// through the whole stack with every invariant enabled, then runs the O(n)
// structural audits (LRU walk, slot bijection, far-copy conservation) over
// the final state. Multi-threaded specs are included deliberately: worker
// interleaving is where accounting bugs hide.
func TestFullStackRandomizedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	devs := []device.Spec{
		device.SpecTestbedSSD("ssd"),
		device.SpecConnectX5("rdma"),
		device.SpecRemoteDRAM("dram"),
	}
	withInvariants(t, func() {
		for i := 0; i < 8; i++ {
			spec := randSpec(r, 3)
			devSpec := devs[i%len(devs)]
			ratio := 0.2 + r.Float64()*0.7
			seed := r.Int63n(1 << 30)
			tk, stats := runStack(t, spec, devSpec, ratio, seed)
			if err := tk.AuditConservation(); err != nil {
				t.Errorf("run %d (%s ratio %.2f seed %d): %v", i, devSpec.Name, ratio, seed, err)
			}
			if stats.Accesses == 0 || stats.Runtime <= 0 {
				t.Errorf("run %d: degenerate stats %+v", i, stats)
			}
		}
	})
	t.Logf("evaluated %d checks", invariant.Checks())
}

// aggregateMakespan drives a fixed extent load through an aggregate of n
// identical NVMe members (closed loop, 8 outstanding) and reports the
// virtual completion time.
func aggregateMakespan(t *testing.T, n int) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	host := device.NewHost(eng, pcie.Gen3, 16)
	members := make([]*swap.DeviceBackend, n)
	for i := 0; i < n; i++ {
		spec := device.SpecNVMeSSD("nvme" + string(rune('a'+i)))
		members[i] = swap.NewDeviceBackend(eng, host.Attach(spec))
	}
	agg := swap.NewAggregateBackend(eng, "agg", members...)

	const extents = 200
	const window = 8
	submitted, done := 0, 0
	var next func()
	next = func() {
		if submitted >= extents {
			return
		}
		i := submitted
		submitted++
		agg.Submit(swap.Extent{Pages: 64, Write: i%3 == 0, Sequential: i%2 == 0}, func(sim.Duration) {
			done++
			next()
		})
	}
	for i := 0; i < window; i++ {
		next()
	}
	eng.Run()
	if done != extents {
		t.Fatalf("aggregate of %d completed %d/%d extents", n, done, extents)
	}
	return eng.Now()
}

// TestAddingBackendNeverReducesBandwidth: growing an aggregate by one member
// must not shrink its advertised bandwidth, and the same extent load must
// not finish later. 1% slack absorbs striping discreteness (extent splits
// change op counts, each op paying fixed channel overhead).
func TestAddingBackendNeverReducesBandwidth(t *testing.T) {
	withInvariants(t, func() {
		prevBW := 0.0
		var prevTime sim.Time
		for n := 1; n <= 4; n++ {
			eng := sim.NewEngine()
			host := device.NewHost(eng, pcie.Gen3, 16)
			members := make([]*swap.DeviceBackend, n)
			for i := 0; i < n; i++ {
				members[i] = swap.NewDeviceBackend(eng, host.Attach(device.SpecNVMeSSD("nvme"+string(rune('a'+i)))))
			}
			bw := float64(swap.NewAggregateBackend(eng, "agg", members...).Bandwidth())
			if bw < prevBW {
				t.Errorf("aggregate bandwidth shrank adding member %d: %.0f -> %.0f B/s", n, prevBW, bw)
			}
			prevBW = bw

			elapsed := aggregateMakespan(t, n)
			if prevTime > 0 && float64(elapsed) > float64(prevTime)*1.01 {
				t.Errorf("adding member %d slowed the same load: %v -> %v", n, prevTime, elapsed)
			}
			prevTime = elapsed
		}
	})
}

// TestLowerLatencyNeverSlower: scaling a device's per-op latencies down must
// never increase a single-threaded workload's completion time — the access
// trajectory is timing-independent, so every fault can only complete sooner.
func TestLowerLatencyNeverSlower(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	withInvariants(t, func() {
		for trial := 0; trial < 3; trial++ {
			spec := randSpec(r, 1)
			seed := r.Int63n(1 << 30)
			var prev sim.Duration
			for _, f := range []int64{4, 2, 1} {
				devSpec := device.SpecTestbedSSD("ssd")
				devSpec.ReadLatency *= sim.Duration(f)
				devSpec.WriteLatency *= sim.Duration(f)
				devSpec.RandomPenalty *= sim.Duration(f)
				_, stats := runStack(t, spec, devSpec, 0.4, seed)
				if prev > 0 && stats.Runtime > prev {
					t.Errorf("trial %d: latency factor %d finished in %v, slower than factor above (%v)",
						trial, f, stats.Runtime, prev)
				}
				prev = stats.Runtime
			}
		}
	})
}

// TestHigherLimitNeverMoreSwapTraffic: raising the cgroup limit (more local
// memory) must never increase pages swapped in or out for a single-threaded
// run at 1-page granularity — more residency can only avoid faults and
// evictions, never create them.
func TestHigherLimitNeverMoreSwapTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(424))
	withInvariants(t, func() {
		for trial := 0; trial < 3; trial++ {
			spec := randSpec(r, 1)
			seed := r.Int63n(1 << 30)
			var prevIn, prevOut uint64
			first := true
			for _, ratio := range []float64{0.25, 0.5, 0.85} {
				_, stats := runStack(t, spec, device.SpecTestbedSSD("ssd"), ratio, seed)
				if !first && (stats.PagesIn > prevIn || stats.PagesOut > prevOut) {
					t.Errorf("trial %d: ratio %.2f swapped in=%d out=%d, more than the smaller limit (in=%d out=%d)",
						trial, ratio, stats.PagesIn, stats.PagesOut, prevIn, prevOut)
				}
				prevIn, prevOut = stats.PagesIn, stats.PagesOut
				first = false
			}
		}
	})
}
