package metamorphic

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Metamorphic laws for the CXL pooled-memory fabric. Each law relates two
// cell runs whose configurations differ in one controlled way; the model's
// physics fixes the direction of the change, whatever the sampled workload.

// fabricCellSpec draws a small randomized probe mix for a fabric cell: a
// thin template that fits private far capacity and a fat one that needs the
// pool.
func fabricCellApps(r *rand.Rand) []cluster.App {
	probe := func(name string, pages int) cluster.App {
		return cluster.App{Spec: workload.Spec{
			Name:             name,
			Class:            workload.Compute,
			FootprintPages:   pages,
			AnonFraction:     1,
			Coverage:         1,
			SegmentLen:       32 + r.Intn(64),
			SeqShare:         r.Float64(),
			RunLen:           1 + r.Intn(8),
			HotShare:         1,
			HotProb:          0,
			WriteFraction:    r.Float64() * 0.5,
			ComputePerAccess: sim.Duration(1+r.Intn(4)) * sim.Microsecond,
			MainAccesses:     1024 + r.Intn(2048),
			Threads:          1,
			SwapFeature:      'F',
		}, Cores: 1}
	}
	base := 128 + 64*r.Intn(3)
	return []cluster.App{probe("thin", base), probe("fat", 4*base)}
}

// fabricCell runs one cell with the given pool ratio, hop count, and mode,
// returning its result.
func fabricCell(ratio float64, hops int, pooled bool, apps []cluster.App, seed int64) fabric.Result {
	spec := fabric.DefaultSpec()
	spec.Hosts = 2
	spec.Slab = 64
	spec.Pool = ratio
	spec.Hops = hops
	maxFoot := 0
	for _, a := range apps {
		if a.Spec.FootprintPages > maxFoot {
			maxFoot = a.Spec.FootprintPages
		}
	}
	cfg := fabric.Config{
		Eng:              sim.NewEngine(),
		Name:             "meta",
		Spec:             spec,
		CoresPerHost:     2,
		DRAMPagesPerHost: 2 * maxFoot,
		FarPagesPerHost:  maxFoot / 4,
		Pooled:           pooled,
		Templates:        apps,
		Tasks:            6,
		LocalRatio:       0.5,
		Seed:             seed,
	}
	return fabric.NewCell(cfg).Run()
}

// Law: growing the pool ratio never increases the stranded fraction or the
// refusal count. More grantable capacity can only widen where far demand
// can land; a ledger or extender bug that fragments grants would break the
// monotonicity.
func TestPoolGrowthNeverIncreasesStranding(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		apps := fabricCellApps(r)
		seed := int64(100 + trial)
		prev := fabricCell(0, 1, true, apps, seed)
		for _, ratio := range []float64{0.5, 1, 2, 4} {
			cur := fabricCell(ratio, 1, true, apps, seed)
			if cur.StrandedFrac > prev.StrandedFrac+1e-12 {
				t.Fatalf("trial %d: pool ratio %g stranded %.3f > smaller pool's %.3f",
					trial, ratio, cur.StrandedFrac, prev.StrandedFrac)
			}
			if cur.Refused > prev.Refused {
				t.Fatalf("trial %d: pool ratio %g refused %d > smaller pool's %d",
					trial, ratio, cur.Refused, prev.Refused)
			}
			prev = cur
		}
	}
}

// Law: adding a switch hop never decreases end-to-end completion time. Each
// hop adds per-hop latency to every pooled transfer (and another shared
// crossbar segment), so the makespan of an identical cell is monotone in
// the hop count.
func TestExtraHopNeverSpeedsUpCell(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5; trial++ {
		apps := fabricCellApps(r)
		seed := int64(200 + trial)
		prev := fabricCell(1, 0, true, apps, seed)
		for hops := 1; hops <= 3; hops++ {
			cur := fabricCell(1, hops, true, apps, seed)
			if cur.Completed != prev.Completed {
				t.Fatalf("trial %d: hop count changed completions (%d vs %d)", trial, cur.Completed, prev.Completed)
			}
			if cur.Makespan < prev.Makespan {
				t.Fatalf("trial %d: %d hops finished in %v, faster than %d hops' %v",
					trial, hops, cur.Makespan, hops-1, prev.Makespan)
			}
			prev = cur
		}
	}
}

// Law: at pool ratio 0 a pooled cell and a static cell are the same system
// — a zero-slab ledger grants nothing, the in-fabric extender never
// overrides a private fit, and record-only health monitors don't perturb
// the event stream — so every measured field must match exactly.
func TestPoolRatioZeroEquivalentToStatic(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		apps := fabricCellApps(r)
		seed := int64(300 + trial)
		pooled := fabricCell(0, 1, true, apps, seed)
		static := fabricCell(0, 1, false, apps, seed)
		if pooled != static {
			t.Fatalf("trial %d: ratio-0 pooled and static cells diverge:\npooled %+v\nstatic %+v",
				trial, pooled, static)
		}
	}
}

// Law: the pooled port's hop-0 latency envelope degenerates to the
// single-host CXL device — the fabric's "off" anchor at the device level.
func TestPooledSpecHopZeroMatchesCXLLatency(t *testing.T) {
	pooled := device.SpecPooledCXL("p", 0)
	cxl := device.SpecCXL("c")
	if pooled.ReadLatency != cxl.ReadLatency || pooled.WriteLatency != cxl.WriteLatency {
		t.Fatalf("hop-0 pooled latency (%v/%v) != single-host CXL (%v/%v)",
			pooled.ReadLatency, pooled.WriteLatency, cxl.ReadLatency, cxl.WriteLatency)
	}
}
