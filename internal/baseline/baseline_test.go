package baseline

import (
	"testing"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func testEnv(eng *sim.Engine) Env {
	m := vm.NewMachine(eng, pcie.Gen4, 16, 20, 1<<22)
	m.AttachDevice(device.SpecTestbedSSD("ssd0"))
	m.AttachDevice(device.SpecConnectX5("rdma0"))
	m.AttachDevice(device.SpecRemoteDRAM("dram0"))
	return Env{Machine: m, FileBackend: "ssd0"}
}

func tinySpec() workload.Spec {
	return workload.Spec{
		Name: "tiny", Class: workload.Compute, MaxMemGiB: 0.5,
		FootprintPages: 512, AnonFraction: 0.9, Coverage: 1.0,
		SegmentLen: 256, SeqShare: 0.8, RunLen: 48,
		HotShare: 0.3, HotProb: 0.4, WriteFraction: 0.3,
		ComputePerAccess: 100 * sim.Nanosecond, MainAccesses: 4096, SwapFeature: 'F',
	}
}

func TestPrepareBaselineShapes(t *testing.T) {
	eng := sim.NewEngine()
	env := testEnv(eng)
	for _, sys := range []System{LinuxSwap, Fastswap, TMO, XMemPod} {
		cfg := Prepare(sys, env, env.Machine.Backend("ssd0"), tinySpec(), 0.5, 1)
		if !cfg.SwapPath.Hierarchical() {
			t.Errorf("%s: path not hierarchical", sys)
		}
		if cfg.SwapPath.Channel() != env.Machine.SharedChannel() {
			t.Errorf("%s: not on the shared channel", sys)
		}
		if cfg.GranularityPages != 8 {
			t.Errorf("%s: granularity %d, want 8 (kernel readahead)", sys, cfg.GranularityPages)
		}
		if !cfg.AlignedReadahead || cfg.AdaptiveWindow {
			t.Errorf("%s: kernel readahead must be aligned and non-adaptive", sys)
		}
	}
	cfg := Prepare(Canvas, env, env.Machine.Backend("rdma0"), tinySpec(), 0.5, 1)
	if cfg.SwapPath.Hierarchical() {
		t.Error("canvas: path should bypass the host")
	}
	if cfg.GranularityPages != 8 {
		t.Errorf("canvas: granularity %d, want 8", cfg.GranularityPages)
	}
	if cfg.SwapPath.Channel() == env.Machine.SharedChannel() {
		t.Error("canvas: channel should be isolated")
	}
}

func TestPrepareRejectsXDM(t *testing.T) {
	eng := sim.NewEngine()
	env := testEnv(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("Prepare(XDM) did not panic")
		}
	}()
	Prepare(XDM, env, env.Machine.Backend("ssd0"), tinySpec(), 0.5, 1)
}

func TestProfileFeatures(t *testing.T) {
	f := Profile(tinySpec(), 1)
	if f.SeqRatio < 0.6 || f.SeqRatio > 0.95 {
		t.Fatalf("profiled seq ratio %.2f out of band", f.SeqRatio)
	}
	if f.AnonRatio < 0.88 || f.AnonRatio > 0.9 {
		t.Fatalf("anon ratio %.4f, want ~0.9", f.AnonRatio)
	}
	if f.TouchedPages == 0 {
		t.Fatal("profile saw no pages")
	}
}

func TestPrepareXDMShape(t *testing.T) {
	eng := sim.NewEngine()
	env := testEnv(eng)
	setup := PrepareXDM(env, env.Machine.Backend("rdma0"), tinySpec(), 0.5, 1.3, 1)
	cfg := setup.Config
	if cfg.SwapPath.Hierarchical() {
		t.Fatal("xDM path must bypass the host")
	}
	if cfg.SwapPath.Channel() == env.Machine.SharedChannel() {
		t.Fatal("xDM channel must be isolated")
	}
	if cfg.GranularityPages < 2 {
		t.Fatalf("sequential workload should tune granularity > 1, got %d", cfg.GranularityPages)
	}
	if setup.Decision.Width < 1 || setup.Decision.Backend != "rdma0" {
		t.Fatalf("decision incomplete: %+v", setup.Decision)
	}
	if cfg.Trace == nil || cfg.OnEpoch == nil {
		t.Fatal("xDM run must observe its trace and retune online")
	}
}

func TestPrepareXDMConsoleSizesLocalRatio(t *testing.T) {
	eng := sim.NewEngine()
	env := testEnv(eng)
	setup := PrepareXDM(env, env.Machine.Backend("rdma0"), tinySpec(), -1, 1.5, 1)
	if setup.Config.LocalRatio <= 0 || setup.Config.LocalRatio > 1 {
		t.Fatalf("console local ratio %v out of range", setup.Config.LocalRatio)
	}
}

// End-to-end sanity: on the same RDMA backend, xDM's sys time beats
// Fastswap's for a swap-friendly workload (the Table VI mechanism).
func TestXDMBeatsFastswapOnSameBackend(t *testing.T) {
	run := func(xdm bool) task.Stats {
		eng := sim.NewEngine()
		env := testEnv(eng)
		var cfg task.Config
		if xdm {
			cfg = PrepareXDM(env, env.Machine.Backend("rdma0"), tinySpec(), 0.4, 1.3, 1).Config
		} else {
			cfg = Prepare(Fastswap, env, env.Machine.Backend("rdma0"), tinySpec(), 0.4, 1)
		}
		var out task.Stats
		task.New(cfg).Start(func(s task.Stats) { out = s })
		eng.Run()
		return out
	}
	fs, xdm := run(false), run(true)
	if fs.SysTime == 0 || xdm.SysTime == 0 {
		t.Fatal("runs produced no sys time")
	}
	speedup := float64(fs.SysTime) / float64(xdm.SysTime)
	if speedup <= 1.2 {
		t.Fatalf("xDM speedup %.2fx over Fastswap, want > 1.2x (fs=%v xdm=%v)",
			speedup, fs.SysTime, xdm.SysTime)
	}
}

func TestOptionForAggregate(t *testing.T) {
	eng := sim.NewEngine()
	env := testEnv(eng)
	agg := swap.NewAggregateBackend(eng, "xdm-hetero",
		env.Machine.Backend("ssd0"), env.Machine.Backend("rdma0"))
	opt := OptionFor(agg)
	if opt.Name != "xdm-hetero" {
		t.Fatalf("option name %q", opt.Name)
	}
	if opt.Bandwidth != agg.Bandwidth() {
		t.Fatal("aggregate bandwidth not propagated")
	}
	if opt.OpLatency != device.SpecConnectX5("x").ReadLatency {
		t.Fatal("fastest member latency not used")
	}
}

func TestSystemsForBackend(t *testing.T) {
	if SystemsForBackend("ssd") != LinuxSwap || SystemsForBackend("hdd") != LinuxSwap {
		t.Fatal("storage backends should baseline against Linux swap")
	}
	if SystemsForBackend("rdma") != Fastswap || SystemsForBackend("dram") != Fastswap {
		t.Fatal("memory backends should baseline against Fastswap")
	}
}

func TestCalibratedLocalRatio(t *testing.T) {
	spec := tinySpec()
	spec.HotShare, spec.HotProb = 0.15, 0.9
	spec.ComputePerAccess = 500 * sim.Nanosecond
	tight := CalibratedLocalRatio(device.SpecConnectX5("rdma"), spec, 1.1, 1)
	loose := CalibratedLocalRatio(device.SpecConnectX5("rdma"), spec, 2.0, 1)
	if loose > tight {
		t.Fatalf("looser SLO demands more memory: tight=%v loose=%v", tight, loose)
	}
	if tight < 0.05 || tight > 1 || loose < 0.05 || loose > 1 {
		t.Fatalf("ratios out of range: %v %v", tight, loose)
	}
	// Memoized: second call returns the identical cached value.
	if again := CalibratedLocalRatio(device.SpecConnectX5("rdma"), spec, 2.0, 1); again != loose {
		t.Fatal("calibration cache miss on identical key")
	}
}

func TestCalibratedBaselineRatioIsMoreConservative(t *testing.T) {
	spec := tinySpec()
	spec.HotShare, spec.HotProb = 0.15, 0.9
	spec.ComputePerAccess = 500 * sim.Nanosecond
	xdm := CalibratedLocalRatio(device.SpecConnectX5("rdma"), spec, 1.8, 1)
	base := CalibratedBaselineRatio(Fastswap, device.SpecConnectX5("rdma"), spec, 1.8, 1)
	// The untuned stack degrades at least as fast: it cannot sustain more
	// offload than xDM at the same SLO.
	if base < xdm {
		t.Fatalf("baseline sustains more offload (%v) than xDM (%v)", base, xdm)
	}
}

func TestWidthForThreads(t *testing.T) {
	if widthForThreads(2, 8) != 8 {
		t.Fatal("threads should raise width")
	}
	if widthForThreads(4, 1) != 4 {
		t.Fatal("width should not drop")
	}
	if widthForThreads(20, 32) != 16 {
		t.Fatal("width should cap at 16")
	}
}

func TestRandomWindow(t *testing.T) {
	if randomWindow(device.SSD) != 4 || randomWindow(device.HDD) != 4 {
		t.Fatal("storage media should keep a small cluster")
	}
	if randomWindow(device.RDMA) != 1 || randomWindow(device.RemoteDRAM) != 1 {
		t.Fatal("low-latency media should fetch on demand")
	}
}
