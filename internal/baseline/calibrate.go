package baseline

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Offline calibration: the paper's workflow step ii ("offline preparation:
// we track the page behaviors of applications and prepare the offline fused
// information ... and the parameter adjustment shells"). Beyond fusing trace
// features, the preparation stage *runs* the application at candidate
// far-memory ratios on a staging configuration and records the smallest
// local share that honors the SLO. Results are memoized: production
// dispatches reuse the prepared shells.

// The cache key includes every input that can change the measurement —
// including the seed. Keys must be exact: experiment grids run cells on a
// worker pool (see internal/experiments), and an under-keyed entry would make
// the memoized value depend on which cell filled it first.
var calibMu sync.Mutex
var calibCache = map[string]float64{}

// calibSafety keeps SLO headroom for effects the staging run does not see
// (co-location, fabric contention, seed-to-seed variance).
const calibSafety = 0.88

// CalibratedLocalRatio measures the smallest local-memory ratio keeping
// spec's runtime within slo on a staging replica of the backend device.
// The measurement uses the offline profiling seed, not the production seed.
func CalibratedLocalRatio(backendSpec device.Spec, spec workload.Spec, slo float64, seed int64) float64 {
	key := fmt.Sprintf("%s/%d/%d/%s/%.2f/%d", spec.Name, spec.FootprintPages, spec.MainAccesses,
		backendSpec.Name, slo, seed)
	calibMu.Lock()
	if v, ok := calibCache[key]; ok {
		calibMu.Unlock()
		return v
	}
	calibMu.Unlock()

	best := calibScan(slo, func(ratio float64) int64 {
		return calibRun(backendSpec, spec, ratio, seed)
	})
	calibMu.Lock()
	calibCache[key] = best
	calibMu.Unlock()
	return best
}

// calibScan finds the smallest local ratio whose measured slowdown stays
// within slo×calibSafety, scanning from light to heavy offload.
func calibScan(slo float64, run func(ratio float64) int64) float64 {
	target := slo * calibSafety
	ref := run(1.0)
	best := 1.0
	for ratio := 0.9; ratio >= 0.095; ratio -= 0.1 {
		rt := run(ratio)
		if float64(rt)/float64(ref) > target {
			break
		}
		best = ratio
	}
	return best
}

// ReferenceRuntime measures (and caches) spec's unconstrained staging
// runtime on backendSpec — the denominator for SLO-compliance accounting.
func ReferenceRuntime(backendSpec device.Spec, spec workload.Spec, seed int64) int64 {
	key := fmt.Sprintf("ref/%s/%d/%d/%s/%d", spec.Name, spec.FootprintPages, spec.MainAccesses,
		backendSpec.Name, seed)
	calibMu.Lock()
	if v, ok := calibCache[key]; ok {
		calibMu.Unlock()
		return int64(v)
	}
	calibMu.Unlock()
	rt := calibRun(backendSpec, spec, 1.0, seed)
	calibMu.Lock()
	calibCache[key] = float64(rt)
	calibMu.Unlock()
	return rt
}

// CalibratedBaselineRatio performs the same staging measurement for a
// traditional system (Linux swap / Fastswap / TMO): same SLO target, but
// the untuned hierarchical stack degrades faster, so it sustains less
// offloading — the Fig 15 gap.
func CalibratedBaselineRatio(sys System, backendSpec device.Spec, spec workload.Spec, slo float64, seed int64) float64 {
	key := fmt.Sprintf("base/%s/%s/%d/%d/%s/%.2f/%d", sys, spec.Name, spec.FootprintPages,
		spec.MainAccesses, backendSpec.Name, slo, seed)
	calibMu.Lock()
	if v, ok := calibCache[key]; ok {
		calibMu.Unlock()
		return v
	}
	calibMu.Unlock()
	best := calibScan(slo, func(ratio float64) int64 {
		eng := sim.NewUnobservedEngine()
		m := vm.NewMachine(eng, pcie.Gen4, 16, 32, 64*workload.PagesPerGiB)
		bs := backendSpec
		bs.Name = "calib-backend"
		m.AttachDevice(bs)
		m.AttachDevice(device.SpecTestbedSSD("calib-file"))
		env := Env{Machine: m, FileBackend: "calib-file"}
		cfg := Prepare(sys, env, m.Backend("calib-backend"), spec, ratio, seed+ProfileSeedOffset)
		var out task.Stats
		task.New(cfg).Start(func(s task.Stats) { out = s })
		eng.Run()
		return int64(out.Runtime)
	})
	calibMu.Lock()
	calibCache[key] = best
	calibMu.Unlock()
	return best
}

// calibRun executes one staging run and returns the runtime. Staging runs
// are offline preparation, not part of the simulated scenario, so they use
// unobserved engines: with memoization their number varies with cache
// warmth and worker interleaving, which would otherwise leak into traces.
func calibRun(backendSpec device.Spec, spec workload.Spec, ratio float64, seed int64) (runtime int64) {
	eng := sim.NewUnobservedEngine()
	m := vm.NewMachine(eng, pcie.Gen4, 16, 32, 64*workload.PagesPerGiB)
	bs := backendSpec
	bs.Name = "calib-backend"
	m.AttachDevice(bs)
	m.AttachDevice(device.SpecTestbedSSD("calib-file"))
	env := Env{Machine: m, FileBackend: "calib-file"}
	var backend swap.Backend = m.Backend("calib-backend")

	setup := prepareXDMWithRatio(env, backend, spec, ratio, seed+ProfileSeedOffset)
	var out task.Stats
	task.New(setup.Config).Start(func(s task.Stats) { out = s })
	eng.Run()
	return int64(out.Runtime)
}

// prepareXDMWithRatio is PrepareXDM with an explicit ratio (no recursion
// into calibration).
func prepareXDMWithRatio(env Env, backend swap.Backend, spec workload.Spec, ratio float64, seed int64) XDMSetup {
	return PrepareXDM(env, backend, spec, ratio, 1.0, seed)
}

// CalibratedBackendPriority realizes the paper's offline FM-path preference
// generation: run the application on a staging replica of each candidate
// backend, compute MEI = (runtime improvement over the worst candidate) /
// normalized device cost, and return the names ordered by MEI. Results are
// memoized like the other offline shells.
func CalibratedBackendPriority(backends map[string]device.Spec, spec workload.Spec, seed int64) ([]string, map[string]float64) {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)

	worst := 0.0
	runtimes := make(map[string]float64, len(names))
	for _, n := range names {
		key := fmt.Sprintf("pref/%s/%d/%d/%s/%d", spec.Name, spec.FootprintPages, spec.MainAccesses, n, seed)
		calibMu.Lock()
		v, ok := calibCache[key]
		calibMu.Unlock()
		if !ok {
			v = float64(calibRun(backends[n], spec, 0.5, seed))
			calibMu.Lock()
			calibCache[key] = v
			calibMu.Unlock()
		}
		runtimes[n] = v
		if v > worst {
			worst = v
		}
	}
	mei := make(map[string]float64, len(names))
	for _, n := range names {
		mei[n] = (worst / runtimes[n]) / core.NormalizedCost(backends[n].CostPerGB)
	}
	sort.Slice(names, func(a, b int) bool {
		if mei[names[a]] != mei[names[b]] {
			return mei[names[a]] > mei[names[b]]
		}
		return names[a] < names[b]
	})
	return names, mei
}
