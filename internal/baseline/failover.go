package baseline

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

// DefaultRefetchPenalty is the per-page cost of re-materializing a page
// whose far copy died with its backend: a read from the replicated object
// store / checkpoint the production deployment keeps behind far memory.
// 150 µs sits between an SSD read (~75 µs) and a cross-rack fetch — far
// memory is a cache tier, losing it costs a backing-store round trip,
// not the data.
const DefaultRefetchPenalty = 150 * sim.Microsecond

// Demotion logs one health-driven backend demotion (the detection instant,
// before the switch completes).
type Demotion struct {
	At      sim.Time
	Backend string
}

// FailoverRun extends MEI-based selection into failure-aware switching
// (the recovery half of the paper's <5 s warm-switch capability): every
// swap op runs under a per-kind timeout/retry policy feeding a
// faults.Monitor; when the active backend's error rate trips the monitor,
// the backend is demoted, the VM live-switches to the next-best healthy
// warm backend, far copies on the lost backend are dropped (re-faulted at
// Config.RefetchPenalty each), and the transfer parameters are retuned for
// the new medium.
type FailoverRun struct {
	Config  task.Config
	VM      *vm.VM
	Initial string // backend chosen at prep time

	Switches  []SwitchRecord
	Demotions []Demotion

	env       Env
	priority  []string
	unhealthy map[string]bool
	switching bool
	threads   int
	task      *task.Task
}

// PrepareXDMFailover builds a failure-aware xDM run for spec on VM v. The
// VM must be booted with its warm backends ready; the initial backend is
// the MEI winner among them. Bind must be called with the constructed task
// before the engine runs, so the controller can retarget it on failover.
func PrepareXDMFailover(env Env, v *vm.VM, spec workload.Spec, localRatio float64, seed int64) *FailoverRun {
	f := Profile(spec, seed)
	opts := catalogOptions(env)
	priority, _ := core.SelectBackend(opts, f, spec.ComputePerAccess, 0.5)

	initial := v.ActiveBackend()
	for _, name := range priority {
		if v.HasWarmBackend(name) {
			initial = name
			break
		}
	}

	// Make the chosen backend the VM's active one now, while the guest is
	// still being provisioned — free, unlike a runtime SwitchBackend. A
	// later failover away from it then pays the real warm-switch cost.
	if err := v.Activate(initial); err != nil {
		initial = v.ActiveBackend()
	}

	threads := spec.Threads
	if threads < 1 {
		threads = 1
	}
	run := &FailoverRun{
		VM:        v,
		Initial:   initial,
		env:       env,
		priority:  priority,
		unhealthy: make(map[string]bool),
		threads:   threads,
	}

	opt := optionByName(opts, initial)
	budget := int(localRatio * float64(spec.FootprintPages))
	g, w := core.TuneTransferBudget(opt, f, budget)

	filePath := env.filePath()
	// File refaults must not hang either if node storage fails; no monitor —
	// file storage is not a switchable far-memory backend.
	filePath.Retry = swap.DefaultRetryPolicy(filePath.Backend().Kind())

	run.Config = task.Config{
		Eng:               env.Machine.Eng,
		Name:              "xdm-failover/" + spec.Name,
		Spec:              spec,
		Seed:              seed,
		LocalRatio:        localRatio,
		SwapPath:          v.PathFor(initial),
		FilePath:          filePath,
		GranularityPages:  g,
		AdaptiveWindow:    true,
		RandomWindowPages: randomWindow(opt.Kind),
		RefetchPenalty:    DefaultRefetchPenalty,
	}
	env.Machine.Backend(initial).SetWidth(widthForThreads(w, threads))
	run.arm(v.PathFor(initial), initial)
	return run
}

// Bind attaches the running task so failover can retarget it. Call it
// right after task.New(run.Config).
func (r *FailoverRun) Bind(t *task.Task) { r.task = t }

// Unhealthy lists backends demoted so far.
func (r *FailoverRun) Unhealthy() []string {
	var out []string
	for _, name := range r.priority {
		if r.unhealthy[name] {
			out = append(out, name)
		}
	}
	return out
}

// arm puts path under the timeout/retry policy for its medium and wires a
// fresh health monitor that demotes the backend when tripped.
func (r *FailoverRun) arm(path *swap.Path, backend string) {
	path.Retry = swap.DefaultRetryPolicy(path.Backend().Kind())
	m := faults.NewMonitor(backend)
	m.OnUnhealthy = func() { r.demote(backend) }
	path.Health = m
}

// demote marks the backend unhealthy and live-switches the VM to the
// next-best healthy warm backend. If none exists, the run keeps limping on
// the demoted backend — every op failing through at the retry bound —
// which is still forward progress.
func (r *FailoverRun) demote(backend string) {
	if r.unhealthy[backend] || r.switching {
		return
	}
	eng := r.env.Machine.Eng
	r.unhealthy[backend] = true
	r.Demotions = append(r.Demotions, Demotion{At: eng.Now(), Backend: backend})

	target, ok := core.FailoverTarget(r.priority, backend, func(name string) bool {
		return !r.unhealthy[name] && r.VM.HasWarmBackend(name)
	})
	if !ok {
		return
	}
	r.switching = true
	err := r.VM.SwitchBackend(target, func() {
		r.switching = false
		r.Switches = append(r.Switches, SwitchRecord{At: eng.Now(), From: backend, To: target})
		if r.task == nil {
			return
		}
		// Far copies lived on the demoted backend; a transient outage
		// cannot be distinguished from death at switch time, so the
		// controller conservatively drops them and repays via the
		// re-fetch penalty.
		r.task.DropFarCopies()
		newPath := r.VM.PathFor(target)
		r.arm(newPath, target)
		r.task.SetSwapPath(newPath)
		// Retune transfer parameters for the new medium using the same
		// offline features the initial decision used.
		f := Profile(r.Config.Spec, r.Config.Seed)
		opt := optionByName(catalogOptions(r.env), target)
		g, w := core.TuneTransferBudget(opt, f, r.task.Cgroup().LimitPages)
		r.task.SetGranularity(g)
		r.env.Machine.Backend(target).SetWidth(widthForThreads(w, r.threads))
	})
	if err != nil {
		r.switching = false
	}
}
