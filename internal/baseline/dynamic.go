package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// SwitchRecord logs one dynamic backend switch.
type SwitchRecord struct {
	At   sim.Time
	From string
	To   string
}

// DynamicRun is an xDM run with the full *dynamic and implicit* switching
// loop active: every epoch the console re-fuses the live page trace,
// re-ranks the machine's backends by MEI, and — when the preference changes
// persistently — performs a warm backend switch on the hosting VM while the
// task keeps running. This is the paper's headline capability ("previous
// works never implement a static multi-path FM system, not to mention a
// dynamic one").
type DynamicRun struct {
	Config   task.Config
	VM       *vm.VM
	Switches []SwitchRecord
}

// switchHysteresis is how many consecutive epochs a new backend must win
// before a switch is committed (switches cost seconds; flapping would be
// worse than either static choice).
const switchHysteresis = 2

// switchGainThreshold is the minimum MEI advantage of the alternative over
// the current backend to justify paying the switch.
const switchGainThreshold = 1.3

// switchCooldownEpochs freezes further switching after a committed switch:
// the windows spanning the transition mix both phases' behaviour and both
// backends' pacing, and reacting to them would flap.
const switchCooldownEpochs = 12

// PrepareXDMDynamic wires a phased workload onto VM v with online
// MEI-driven backend switching. All phases must share footprint, anon
// fraction, thread count, and compute intensity (they are phases of one
// process). The VM must be booted with its warm backends ready.
func PrepareXDMDynamic(env Env, v *vm.VM, phases []workload.Spec, localRatio float64, seed int64) *DynamicRun {
	if len(phases) == 0 {
		panic("baseline: dynamic run needs at least one phase")
	}
	base := phases[0]
	for i, p := range phases[1:] {
		if p.Threads != base.Threads || p.ComputePerAccess != base.ComputePerAccess {
			panic(fmt.Sprintf("baseline: phase %d differs in threads/compute from phase 0", i+1))
		}
	}
	eng := env.Machine.Eng

	// Initial decision from the first phase's offline profile.
	f := Profile(base, seed)
	opts := catalogOptions(env)
	priority, _ := core.SelectBackend(opts, f, base.ComputePerAccess, 0.5)
	initial := v.ActiveBackend()
	if len(priority) > 0 && v.HasWarmBackend(priority[0]) {
		initial = priority[0]
	}

	threads := base.Threads
	if threads < 1 {
		threads = 1
	}
	var sources []workload.AccessSource
	for ti := 0; ti < threads; ti++ {
		per := make([]workload.Spec, len(phases))
		for pi, p := range phases {
			p.MainAccesses /= threads
			if p.MainAccesses < 1 {
				p.MainAccesses = 1
			}
			per[pi] = p
		}
		ps := workload.NewPhasedStream(per, seed+int64(ti)*7919)
		if ti > 0 {
			ps.SkipInit()
		}
		sources = append(sources, ps)
	}

	run := &DynamicRun{VM: v}
	budget := int(localRatio * float64(base.FootprintPages))
	opt := optionByName(opts, initial)
	g, w := core.TuneTransferBudget(opt, f, budget)

	cfg := task.Config{
		Eng:               eng,
		Name:              "xdm-dynamic/" + base.Name,
		Spec:              base,
		Seed:              seed,
		Sources:           sources,
		LocalRatio:        localRatio,
		SwapPath:          v.PathFor(initial),
		FilePath:          env.filePath(),
		GranularityPages:  g,
		AdaptiveWindow:    true,
		RandomWindowPages: randomWindow(opt.Kind),
		Trace:             trace.NewTable(base.FootprintPages),
	}
	env.Machine.Backend(initial).SetWidth(widthForThreads(w, threads))

	// The dynamic loop: windowed feature fusion + MEI re-ranking + warm
	// switch with hysteresis.
	current := initial
	pendingTarget := ""
	pendingEpochs := 0
	switching := false
	cooldown := 0
	epoch := 0
	cfg.EpochAccesses = base.FootprintPages
	cfg.OnEpoch = func(t *task.Task) {
		epoch++
		defer cfg.Trace.Reset()
		if epoch == 1 { // allocation sweep: observe only
			return
		}
		live := cfg.Trace.Features(int(base.AnonFraction * float64(base.FootprintPages)))
		pri, mei := core.SelectBackend(availableOptions(env, opts), live, base.ComputePerAccess, 0.5)
		if len(pri) == 0 {
			return
		}
		// Retune the current path's parameters every epoch regardless.
		curOpt := optionByName(opts, current)
		ng, nw := core.TuneTransferBudget(curOpt, live, t.Cgroup().LimitPages)
		t.SetGranularity(ng)
		env.Machine.Backend(current).SetWidth(widthForThreads(nw, threads))

		if cooldown > 0 {
			cooldown--
			pendingTarget, pendingEpochs = "", 0
			return
		}
		want := pri[0]
		// A switch costs seconds: only commit when the alternative clearly
		// dominates the current backend's score.
		if want == current || switching || !v.HasWarmBackend(want) ||
			mei[want] < switchGainThreshold*mei[current] {
			pendingTarget, pendingEpochs = "", 0
			return
		}
		if want != pendingTarget {
			pendingTarget, pendingEpochs = want, 1
			return
		}
		pendingEpochs++
		if pendingEpochs < switchHysteresis {
			return
		}
		// Commit the switch: the task keeps running on the old path until
		// the warm switch completes, then flips over.
		from := current
		switching = true
		pendingTarget, pendingEpochs = "", 0
		v.SwitchBackend(want, func() {
			current = want
			switching = false
			cooldown = switchCooldownEpochs
			t.SetSwapPath(v.PathFor(want))
			newOpt := optionByName(opts, want)
			ng, nw := core.TuneTransferBudget(newOpt, live, t.Cgroup().LimitPages)
			t.SetGranularity(ng)
			env.Machine.Backend(want).SetWidth(widthForThreads(nw, threads))
			run.Switches = append(run.Switches, SwitchRecord{At: eng.Now(), From: from, To: want})
		})
	}

	run.Config = cfg
	return run
}

// catalogOptions builds console options for every backend on the machine.
func catalogOptions(env Env) []core.BackendOption {
	var opts []core.BackendOption
	for _, name := range env.Machine.BackendNames() {
		opts = append(opts, OptionFor(env.Machine.Backend(name)))
	}
	return opts
}

// availableOptions marks saturated devices unavailable (system pressure).
func availableOptions(env Env, opts []core.BackendOption) []core.BackendOption {
	out := make([]core.BackendOption, len(opts))
	copy(out, opts)
	for i := range out {
		dev := env.Machine.Device(out[i].Name)
		if dev != nil && dev.QueueDepth() > 4*dev.Channels() {
			out[i].Available = false
		}
	}
	return out
}

func optionByName(opts []core.BackendOption, name string) core.BackendOption {
	for _, o := range opts {
		if o.Name == name {
			return o
		}
	}
	return opts[0]
}
