package baseline

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/workload"
)

// failoverSpec swaps heavily enough that a dead backend is detected fast.
func failoverSpec() workload.Spec {
	return workload.Spec{
		Name: "failover-probe", Class: workload.Compute,
		FootprintPages: 1024, AnonFraction: 1, Coverage: 1,
		SegmentLen: 256, SeqShare: 0.2, RunLen: 4,
		HotShare: 1, HotProb: 0, WriteFraction: 0.3,
		ComputePerAccess: 50 * sim.Microsecond, MainAccesses: 1 << 16,
		Threads: 2, SwapFeature: 'F',
	}
}

func TestFailoverSwitchesOffDeadBackend(t *testing.T) {
	eng := sim.NewEngine()
	env := testEnv(eng)
	spec := failoverSpec()
	v := env.Machine.CreateVM("fo", spec.Threads, 2*spec.FootprintPages,
		[]string{"rdma0", "ssd0", "dram0"}, nil)
	if v == nil {
		t.Fatal("VM creation failed")
	}
	eng.Run()

	run := PrepareXDMFailover(env, v, spec, 0.5, 1)
	if run.Initial == "" || !v.HasWarmBackend(run.Initial) {
		t.Fatalf("initial backend %q not warm", run.Initial)
	}
	if v.ActiveBackend() != run.Initial {
		t.Fatalf("VM active %q, controller chose %q", v.ActiveBackend(), run.Initial)
	}

	tk := task.New(run.Config)
	run.Bind(tk)

	inj := faults.NewInjector(eng)
	inj.Register(env.Machine.Device(run.Initial))
	inj.Apply(faults.Schedule{Events: []faults.Event{
		{At: 200 * sim.Millisecond, Target: run.Initial, Kind: faults.Crash},
	}})

	finished := false
	var out task.Stats
	tk.Start(func(s task.Stats) { out = s; finished = true })
	eng.Run()

	if !finished {
		t.Fatal("task never finished after backend death")
	}
	if len(run.Demotions) != 1 || run.Demotions[0].Backend != run.Initial {
		t.Fatalf("demotions %+v, want exactly the initial backend", run.Demotions)
	}
	if len(run.Switches) != 1 {
		t.Fatalf("switches %+v, want exactly one", run.Switches)
	}
	sw := run.Switches[0]
	if sw.From != run.Initial || sw.To == run.Initial {
		t.Fatalf("switch %+v does not leave the dead backend", sw)
	}
	if v.ActiveBackend() != sw.To {
		t.Fatalf("VM active %q, switched to %q", v.ActiveBackend(), sw.To)
	}
	if got := run.Unhealthy(); len(got) != 1 || got[0] != run.Initial {
		t.Fatalf("Unhealthy=%v", got)
	}
	if out.LostPages == 0 {
		t.Fatal("failover dropped no far copies")
	}
	if out.LostRefaults == 0 {
		t.Fatal("no lost page was repaid via RefetchPenalty")
	}
}

func TestFailoverWithNoAlternativeLimpsOn(t *testing.T) {
	// Single warm backend: demotion has nowhere to go; the run must still
	// finish (every op failing through at the retry bound).
	eng := sim.NewEngine()
	env := testEnv(eng)
	spec := failoverSpec()
	spec.MainAccesses = 1 << 12 // keep the crippled tail short
	v := env.Machine.CreateVM("fo", spec.Threads, 2*spec.FootprintPages,
		[]string{"rdma0"}, nil)
	eng.Run()

	run := PrepareXDMFailover(env, v, spec, 0.5, 1)
	tk := task.New(run.Config)
	run.Bind(tk)
	inj := faults.NewInjector(eng)
	inj.Register(env.Machine.Device(run.Initial))
	inj.Apply(faults.Schedule{Events: []faults.Event{
		{At: 50 * sim.Millisecond, Target: run.Initial, Kind: faults.Crash},
	}})

	finished := false
	tk.Start(func(task.Stats) { finished = true })
	eng.Run()
	if !finished {
		t.Fatal("task hung with no failover target")
	}
	if len(run.Switches) != 0 {
		t.Fatalf("switched with no alternative: %+v", run.Switches)
	}
	if len(run.Demotions) != 1 {
		t.Fatalf("demotions %+v, want 1", run.Demotions)
	}
}
