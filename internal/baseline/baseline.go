// Package baseline wires complete run configurations for the systems the
// paper compares against (Table I/II/IV) and for xDM itself:
//
//	Linux swap — hierarchical path, shared swap channel, 4K granularity,
//	            disk or SSD backend.
//	Fastswap  — same path shape on RDMA/DRAM backends (kernel far-memory
//	            swap, shared LRU channel).
//	TMO       — same path shape on SSD/NVMe; its contribution is the
//	            offloading policy, modeled in the experiments layer.
//	XMemPod   — hierarchical hybrid: host DRAM tier overflowing to RDMA.
//	Canvas    — host-native isolated swap: bypass path with a per-task
//	            channel, untuned transfer parameters.
//	xDM       — VM bypass path, per-VM isolated channel, offline page-trace
//	            profiling, MEI backend selection, tuned granularity/width/
//	            local-ratio/NUMA (the full console).
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// System identifies a far-memory management system.
type System string

// The compared systems.
const (
	LinuxSwap System = "linux-swap"
	Fastswap  System = "fastswap"
	TMO       System = "tmo"
	XMemPod   System = "xmempod"
	Canvas    System = "canvas"
	XDM       System = "xdm"
)

// Env is the physical context runs execute in.
type Env struct {
	Machine *vm.Machine
	// FileBackend names the device serving file-backed pages (node storage).
	FileBackend string
}

// filePath builds the page-cache I/O path: bypass (file I/O does not cross
// the swap layer), with its own channel.
func (e Env) filePath() *swap.Path {
	b := e.Machine.Backend(e.FileBackend)
	if b == nil {
		panic(fmt.Sprintf("baseline: unknown file backend %q", e.FileBackend))
	}
	ch := swap.NewChannel(e.Machine.Eng, "filecache", 8)
	return swap.NewPath(e.Machine.Eng, b, ch)
}

// Prepare builds the task configuration for running spec under sys with the
// given swap backend and local-memory ratio. For XDM use PrepareXDM, which
// also returns the console's decision.
func Prepare(sys System, env Env, backend swap.Backend, spec workload.Spec, localRatio float64, seed int64) task.Config {
	eng := env.Machine.Eng
	cfg := task.Config{
		Eng:        eng,
		Name:       fmt.Sprintf("%s/%s", sys, spec.Name),
		Spec:       spec,
		Seed:       seed,
		LocalRatio: localRatio,
		FilePath:   env.filePath(),
		// Kernel swap readahead is slot-cluster aligned, not forward.
		AlignedReadahead: true,
	}
	// All traditional stacks use the kernel's fixed swap readahead window
	// (vm.page_cluster=3 → 8 pages), regardless of access pattern — exactly
	// the non-adaptivity xDM's granularity tuning removes.
	const kernelReadahead = 8
	switch sys {
	case LinuxSwap, Fastswap, TMO:
		// Traditional stack: hierarchical path through the host's swap
		// layer, shared channel, fixed readahead. Exception: a host-DRAM
		// backend is not behind a second device — the guest-to-host copy
		// *is* the swap-out — so its path has no extra hop.
		if backend.Kind() == device.RemoteDRAM {
			cfg.SwapPath = swap.NewPath(eng, backend, env.Machine.SharedChannel())
		} else {
			cfg.SwapPath = swap.NewHierarchicalPath(eng, backend, env.Machine.SharedChannel(), env.Machine.HostStage())
		}
		cfg.GranularityPages = kernelReadahead
	case XMemPod:
		// Hierarchical hybrid path; callers pass an AggregateBackend of
		// DRAM + RDMA to model its tiering.
		cfg.SwapPath = swap.NewHierarchicalPath(eng, backend, env.Machine.SharedChannel(), env.Machine.HostStage())
		cfg.GranularityPages = kernelReadahead
	case Canvas:
		// Isolated swap: per-application channel, host-native (bypass),
		// untuned transfer parameters.
		ch := swap.NewChannel(eng, "canvas-"+spec.Name, 4)
		cfg.SwapPath = swap.NewPath(eng, backend, ch)
		cfg.GranularityPages = kernelReadahead
	default:
		panic(fmt.Sprintf("baseline: Prepare called for %q", sys))
	}
	return cfg
}

// widthForThreads raises a tuned width to at least the application's
// thread count (capped at 16 channels).
func widthForThreads(w, threads int) int {
	if threads > w {
		w = threads
	}
	if w > 16 {
		w = 16
	}
	return w
}

// randomWindow sizes the adaptive reader's cluster for isolated faults:
// high-latency media amortize their operation cost over a small cluster;
// low-latency media fetch on demand.
func randomWindow(k device.Kind) int {
	switch k {
	case device.SSD, device.HDD:
		return 4
	default:
		return 1
	}
}

// ProfileSeedOffset separates the offline profiling stream from the
// measured run: xDM's offline preparation observes a *different* execution
// of the same application.
const ProfileSeedOffset = 10007

// Profile performs xDM's offline preparation: replay one execution of spec
// into a page trace table and fuse its features. The allocation sweep is
// skipped — first-touch faults are zero-fill and never reach the swap path,
// so including them would bias every decision toward sequential streaming.
func Profile(spec workload.Spec, seed int64) trace.Features {
	tbl := trace.NewTable(spec.FootprintPages)
	s := workload.NewStream(spec, seed+ProfileSeedOffset)
	for skip := s.MappedPages(); skip > 0; skip-- {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		tbl.Record(a.Page, a.Write)
	}
	anon := int(spec.AnonFraction * float64(spec.FootprintPages))
	return tbl.Features(anon)
}

// OptionFor derives a console BackendOption from a live swap backend.
func OptionFor(b swap.Backend) core.BackendOption {
	switch be := b.(type) {
	case *swap.DeviceBackend:
		opt := core.OptionFromSpec(be.Device().Spec())
		return opt
	case *swap.AggregateBackend:
		members := be.Members()
		fastest := members[0].Device().Spec()
		for _, m := range members[1:] {
			if s := m.Device().Spec(); s.ReadLatency < fastest.ReadLatency {
				fastest = s
			}
		}
		opt := core.OptionFromSpec(fastest)
		opt.Name = be.Name()
		opt.Kind = be.Kind()
		opt.Bandwidth = be.Bandwidth()
		opt.CostPerGB = be.CostPerGB()
		opt.MaxWidth = 16 * len(members)
		return opt
	default:
		// Generic backend (e.g. inter-node remote memory): build the option
		// from the interface, with kind-derived defaults for what the
		// interface cannot express.
		opt := core.BackendOption{
			Name:             b.Name(),
			Kind:             b.Kind(),
			Bandwidth:        b.Bandwidth(),
			ChannelBandwidth: b.Bandwidth() / 2,
			OpLatency:        3 * sim.Microsecond,
			CostPerGB:        b.CostPerGB(),
			MaxWidth:         16,
			Available:        true,
		}
		if lr, ok := b.(interface{ OpLatency() sim.Duration }); ok {
			opt.OpLatency = lr.OpLatency()
		}
		return opt
	}
}

// XDMSetup is a fully-prepared xDM run.
type XDMSetup struct {
	Config   task.Config
	Decision core.Decision
	Features trace.Features
}

// PrepareXDM builds an xDM run on a *fixed* backend (as Table VI does,
// comparing systems on the same device): offline profiling, transfer tuning
// for that backend, a bypass path with an isolated channel, and online
// epoch-based retuning. localRatio < 0 asks the console to size local
// memory for the given SLO instead.
func PrepareXDM(env Env, backend swap.Backend, spec workload.Spec, localRatio float64, slo float64, seed int64) XDMSetup {
	eng := env.Machine.Eng
	f := Profile(spec, seed)
	opt := OptionFor(backend)

	if localRatio < 0 {
		// Offline-prepared sizing: use the calibrated staging measurement
		// when a concrete device backs the path, the analytic model
		// otherwise.
		if db, ok := backend.(*swap.DeviceBackend); ok {
			localRatio = CalibratedLocalRatio(db.Device().Spec(), spec, slo, seed)
		} else if agg, ok := backend.(*swap.AggregateBackend); ok {
			localRatio = CalibratedLocalRatio(agg.Members()[0].Device().Spec(), spec, slo, seed)
		} else {
			localRatio = core.MinLocalRatio(opt, f, spec.ComputePerAccess, slo)
		}
	}
	budget := int(localRatio * float64(spec.FootprintPages))
	g, w := core.TuneTransferBudget(opt, f, budget)
	// The width knob must cover the application's parallelism: concurrent
	// faulting threads each need a channel (the paper's multi-threaded I/O
	// channel allocation).
	w = widthForThreads(w, spec.Threads)
	backend.SetWidth(w)

	depth := 4
	if spec.Threads > depth {
		depth = spec.Threads
	}
	ch := swap.NewChannel(eng, "xdm-"+spec.Name, depth)
	cfg := task.Config{
		Eng:               eng,
		Name:              fmt.Sprintf("xdm/%s", spec.Name),
		Spec:              spec,
		Seed:              seed,
		LocalRatio:        localRatio,
		SwapPath:          swap.NewPath(eng, backend, ch),
		FilePath:          env.filePath(),
		GranularityPages:  g,
		AdaptiveWindow:    true,
		RandomWindowPages: randomWindow(backend.Kind()),
		NUMAPolicy:        core.ChooseNUMA(f, spec.ComputePerAccess),
		Trace:             trace.NewTable(spec.FootprintPages),
	}

	// Online retuning: every epoch, fuse the *window's* trace (the table is
	// reset each epoch so stale phases don't linger) and adjust the
	// granularity and width. The first epoch is the allocation sweep —
	// fully sequential and unrepresentative — so it only clears the window.
	cfg.EpochAccesses = spec.FootprintPages
	epoch := 0
	cfg.OnEpoch = func(t *task.Task) {
		epoch++
		if epoch > 1 {
			live := cfg.Trace.Features(int(spec.AnonFraction * float64(spec.FootprintPages)))
			ng, nw := core.TuneTransferBudget(opt, live, t.Cgroup().LimitPages)
			t.SetGranularity(ng)
			backend.SetWidth(widthForThreads(nw, spec.Threads))
		}
		cfg.Trace.Reset()
	}

	d := core.Decision{
		Backend:          opt.Name,
		GranularityPages: g,
		Width:            w,
		LocalRatio:       localRatio,
		NUMA:             cfg.NUMAPolicy,
		UseTHP:           g >= 64,
	}
	return XDMSetup{Config: cfg, Decision: d, Features: f}
}

// SystemsForBackend reports which baseline system the paper runs on each
// backend kind in Table VI (Linux swap on SSD, Fastswap on RDMA and DRAM).
func SystemsForBackend(kindName string) System {
	switch kindName {
	case "ssd", "hdd":
		return LinuxSwap
	default:
		return Fastswap
	}
}
