package faults

// Monitor is a per-backend health detector fed by the swap path: every op
// outcome (success, timeout, error) is Recorded, and when the failure share
// over a sliding window crosses Threshold — or TripConsecutive failures
// arrive back to back — the monitor latches unhealthy and fires OnUnhealthy
// exactly once. The failure-aware switching controller uses that signal to
// demote the backend and live-switch the VM (DESIGN.md "Failure model").
//
// The window decays by halving counts when full, so a long healthy history
// cannot mask a sudden failure burst, and a recovered backend does not stay
// condemned by ancient errors if the monitor is Reset and reused.
//
// Concurrency contract: a Monitor is single-goroutine, like everything else
// that runs inside one sim.Engine — Record, Reset, and the accessors must
// all be called from engine context (event callbacks of the engine that owns
// the swap path feeding it). The counters are plain ints on purpose; there
// is no interior locking. Control loops that sample health (the serving
// loop's circuit breakers) must read through Snapshot, which captures every
// counter in one engine-context call, rather than making a sequence of
// accessor calls interleaved with Records.
type Monitor struct {
	// Backend labels the monitored backend in logs and tables.
	Backend string
	// Window is the op count per evaluation window (default 64).
	Window int
	// Threshold is the failure share that trips unhealthy (default 0.5).
	Threshold float64
	// MinSamples gates the threshold test (default 8): a single early
	// failure must not condemn a backend.
	MinSamples int
	// TripConsecutive failures in a row trip immediately regardless of
	// the window share (default 6): fast detection of hard outages.
	TripConsecutive int
	// OnUnhealthy fires exactly once, at the Record that trips the
	// monitor. It runs inline in engine context, so it may schedule
	// events (e.g. start a backend switch).
	OnUnhealthy func()

	ok, fail   int // current window
	consecFail int
	unhealthy  bool
	successes  uint64
	failures   uint64
}

// NewMonitor returns a monitor with default thresholds for backend.
func NewMonitor(backend string) *Monitor {
	return &Monitor{
		Backend:         backend,
		Window:          64,
		Threshold:       0.5,
		MinSamples:      8,
		TripConsecutive: 6,
	}
}

// Record feeds one op outcome.
func (m *Monitor) Record(succeeded bool) {
	if succeeded {
		m.successes++
		m.ok++
		m.consecFail = 0
	} else {
		m.failures++
		m.fail++
		m.consecFail++
	}
	if m.ok+m.fail >= m.window() {
		// Decay: keep the trend, forget the bulk.
		m.ok /= 2
		m.fail /= 2
	}
	if m.unhealthy {
		return
	}
	tripped := m.consecFail >= m.tripConsecutive()
	if n := m.ok + m.fail; !tripped && n >= m.minSamples() {
		tripped = float64(m.fail)/float64(n) >= m.threshold()
	}
	if tripped {
		m.unhealthy = true
		if m.OnUnhealthy != nil {
			m.OnUnhealthy()
		}
	}
}

// Unhealthy reports whether the monitor has latched.
func (m *Monitor) Unhealthy() bool { return m.unhealthy }

// ErrorRate reports the failure share of the current window (0 with no
// samples).
func (m *Monitor) ErrorRate() float64 {
	if n := m.ok + m.fail; n > 0 {
		return float64(m.fail) / float64(n)
	}
	return 0
}

// Successes reports total ops recorded as succeeded.
func (m *Monitor) Successes() uint64 { return m.successes }

// Failures reports total ops recorded as failed.
func (m *Monitor) Failures() uint64 { return m.failures }

// Snapshot is a consistent copy of a Monitor's counters, taken in one
// engine-context call (see the concurrency contract on Monitor).
type Snapshot struct {
	Backend string
	// WindowOK / WindowFail are the decaying current-window counts.
	WindowOK, WindowFail int
	// ConsecFail is the current run of back-to-back failures.
	ConsecFail int
	// Unhealthy reports whether the monitor has latched.
	Unhealthy bool
	// Successes / Failures are the lifetime totals (not cleared by Reset).
	Successes, Failures uint64
	// ErrorRate is the failure share of the current window (0 with no
	// samples).
	ErrorRate float64
}

// Snapshot captures every counter at once. Control loops (circuit breakers,
// shedders) should sample health through this rather than a sequence of
// accessor calls, so a Record landing between reads can never produce a
// torn view (e.g. a window share computed from mismatched ok/fail).
func (m *Monitor) Snapshot() Snapshot {
	return Snapshot{
		Backend:    m.Backend,
		WindowOK:   m.ok,
		WindowFail: m.fail,
		ConsecFail: m.consecFail,
		Unhealthy:  m.unhealthy,
		Successes:  m.successes,
		Failures:   m.failures,
		ErrorRate:  m.ErrorRate(),
	}
}

// Reset clears window state, the consecutive-failure run, and the unhealthy
// latch so the monitor can be re-armed (e.g. after the faulted backend was
// repaired and re-admitted, or when a circuit breaker transitions to
// half-open and wants a fresh verdict from the probe ops). The lifetime
// Successes/Failures totals survive Reset deliberately — they are audit
// counters, not detection state.
func (m *Monitor) Reset() {
	m.ok, m.fail, m.consecFail = 0, 0, 0
	m.unhealthy = false
}

func (m *Monitor) window() int {
	if m.Window <= 0 {
		return 64
	}
	return m.Window
}

func (m *Monitor) threshold() float64 {
	if m.Threshold <= 0 {
		return 0.5
	}
	return m.Threshold
}

func (m *Monitor) minSamples() int {
	if m.MinSamples <= 0 {
		return 8
	}
	return m.MinSamples
}

func (m *Monitor) tripConsecutive() int {
	if m.TripConsecutive <= 0 {
		return 6
	}
	return m.TripConsecutive
}
