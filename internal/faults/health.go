package faults

// Monitor is a per-backend health detector fed by the swap path: every op
// outcome (success, timeout, error) is Recorded, and when the failure share
// over a sliding window crosses Threshold — or TripConsecutive failures
// arrive back to back — the monitor latches unhealthy and fires OnUnhealthy
// exactly once. The failure-aware switching controller uses that signal to
// demote the backend and live-switch the VM (DESIGN.md "Failure model").
//
// The window decays by halving counts when full, so a long healthy history
// cannot mask a sudden failure burst, and a recovered backend does not stay
// condemned by ancient errors if the monitor is Reset and reused.
type Monitor struct {
	// Backend labels the monitored backend in logs and tables.
	Backend string
	// Window is the op count per evaluation window (default 64).
	Window int
	// Threshold is the failure share that trips unhealthy (default 0.5).
	Threshold float64
	// MinSamples gates the threshold test (default 8): a single early
	// failure must not condemn a backend.
	MinSamples int
	// TripConsecutive failures in a row trip immediately regardless of
	// the window share (default 6): fast detection of hard outages.
	TripConsecutive int
	// OnUnhealthy fires exactly once, at the Record that trips the
	// monitor. It runs inline in engine context, so it may schedule
	// events (e.g. start a backend switch).
	OnUnhealthy func()

	ok, fail   int // current window
	consecFail int
	unhealthy  bool
	successes  uint64
	failures   uint64
}

// NewMonitor returns a monitor with default thresholds for backend.
func NewMonitor(backend string) *Monitor {
	return &Monitor{
		Backend:         backend,
		Window:          64,
		Threshold:       0.5,
		MinSamples:      8,
		TripConsecutive: 6,
	}
}

// Record feeds one op outcome.
func (m *Monitor) Record(succeeded bool) {
	if succeeded {
		m.successes++
		m.ok++
		m.consecFail = 0
	} else {
		m.failures++
		m.fail++
		m.consecFail++
	}
	if m.ok+m.fail >= m.window() {
		// Decay: keep the trend, forget the bulk.
		m.ok /= 2
		m.fail /= 2
	}
	if m.unhealthy {
		return
	}
	tripped := m.consecFail >= m.tripConsecutive()
	if n := m.ok + m.fail; !tripped && n >= m.minSamples() {
		tripped = float64(m.fail)/float64(n) >= m.threshold()
	}
	if tripped {
		m.unhealthy = true
		if m.OnUnhealthy != nil {
			m.OnUnhealthy()
		}
	}
}

// Unhealthy reports whether the monitor has latched.
func (m *Monitor) Unhealthy() bool { return m.unhealthy }

// ErrorRate reports the failure share of the current window (0 with no
// samples).
func (m *Monitor) ErrorRate() float64 {
	if n := m.ok + m.fail; n > 0 {
		return float64(m.fail) / float64(n)
	}
	return 0
}

// Successes reports total ops recorded as succeeded.
func (m *Monitor) Successes() uint64 { return m.successes }

// Failures reports total ops recorded as failed.
func (m *Monitor) Failures() uint64 { return m.failures }

// Reset clears window state and the unhealthy latch so the monitor can be
// re-armed (e.g. after the faulted backend was repaired and re-admitted).
func (m *Monitor) Reset() {
	m.ok, m.fail, m.consecFail = 0, 0, 0
	m.unhealthy = false
}

func (m *Monitor) window() int {
	if m.Window <= 0 {
		return 64
	}
	return m.Window
}

func (m *Monitor) threshold() float64 {
	if m.Threshold <= 0 {
		return 0.5
	}
	return m.Threshold
}

func (m *Monitor) minSamples() int {
	if m.MinSamples <= 0 {
		return 8
	}
	return m.MinSamples
}

func (m *Monitor) tripConsecutive() int {
	if m.TripConsecutive <= 0 {
		return 6
	}
	return m.TripConsecutive
}
