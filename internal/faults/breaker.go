package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The classic three-state breaker machine.
const (
	// BreakerClosed: traffic flows; the monitor watches for failure bursts.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend is condemned; all traffic is refused until
	// the backoff deadline passes.
	BreakerOpen
	// BreakerHalfOpen: past the deadline, a bounded number of probe ops are
	// let through; their verdict closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", int(s))
	}
}

// Breaker is a per-backend circuit breaker for a serving loop: it stops
// dispatching onto a backend whose swap ops are failing, waits out a
// jittered exponential backoff, then re-admits a trickle of probe work to
// decide whether the backend has recovered (half-open probing).
//
// Failure detection is delegated to an embedded Monitor, so the trip
// conditions (window share, consecutive run) are exactly the ones the
// failure-aware switching controller uses. The breaker itself adds the
// state machine and the backoff clock.
//
// Like Monitor, a Breaker is single-goroutine: Allow and Record must be
// called from the owning engine's event context. Backoff jitter comes from
// a private seeded rand.Rand, so runs are deterministic and two breakers
// with the same seed that trip at the same instant still draw the same
// deadlines (determinism, not entropy, is the point of the jitter: it
// exists so the *model* includes de-synchronized retry storms, not so runs
// differ).
type Breaker struct {
	// Backend labels the guarded backend.
	Backend string

	// OpenBase is the first open interval; each consecutive re-open doubles
	// it up to OpenMax. Defaults: 500ms base, 8s max.
	OpenBase sim.Duration
	OpenMax  sim.Duration
	// HalfOpenProbes is how many probe ops half-open admits (default 4);
	// all of them must succeed to close the circuit — any failure re-opens
	// with doubled backoff.
	HalfOpenProbes int

	// OnTransition, when set, observes every state change (for timelines).
	OnTransition func(from, to BreakerState, at sim.Time)

	eng     *sim.Engine
	rng     *rand.Rand
	monitor *Monitor

	state      BreakerState
	openUntil  sim.Time
	openStreak int // consecutive opens without an intervening close
	probesLeft int
	probesOK   int

	opens, closes uint64
}

// NewBreaker builds a closed breaker for backend on eng, with jitter drawn
// from seed.
func NewBreaker(eng *sim.Engine, backend string, seed int64) *Breaker {
	b := &Breaker{
		Backend:        backend,
		OpenBase:       500 * sim.Millisecond,
		OpenMax:        8 * sim.Second,
		HalfOpenProbes: 4,
		eng:            eng,
		rng:            rand.New(rand.NewSource(seed)),
		monitor:        NewMonitor(backend),
	}
	// Serving ops are plentiful; trip on a short hard run so an outage is
	// cut off within a few ops rather than a whole window.
	b.monitor.TripConsecutive = 4
	return b
}

// Monitor exposes the embedded failure detector (for threshold tuning).
func (b *Breaker) Monitor() *Monitor { return b.monitor }

// State reports the breaker position, resolving an expired open interval to
// half-open first (the transition happens on observation — there is no
// timer event, so an idle backend parks at open until someone asks).
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.eng.Now() >= b.openUntil {
		b.transition(BreakerHalfOpen)
		b.probesLeft = b.halfOpenProbes()
		b.probesOK = 0
		b.monitor.Reset()
	}
	return b.state
}

// Allow reports whether a new dispatch may target this backend, consuming a
// probe slot in half-open state.
func (b *Breaker) Allow() bool {
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probesLeft > 0 {
			b.probesLeft--
			return true
		}
		return false
	default:
		return false
	}
}

// Permits is the non-consuming form of Allow: it reports whether a
// dispatch *could* target this backend right now without claiming a
// half-open probe slot. Selection logic (which probes every backend before
// picking one) must use Permits; the winner then claims its slot with
// Allow. Using Allow during selection would burn probe slots on backends
// that were never chosen.
func (b *Breaker) Permits() bool {
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return b.probesLeft > 0
	default:
		return false
	}
}

// Record feeds one op outcome from the guarded backend's swap path.
// Breaker implements swap.HealthSink, so it can be installed directly as a
// path's Health field.
func (b *Breaker) Record(succeeded bool) {
	switch b.State() {
	case BreakerClosed:
		b.monitor.Record(succeeded)
		if b.monitor.Unhealthy() {
			b.open()
		}
	case BreakerHalfOpen:
		if !succeeded {
			b.open()
			return
		}
		b.probesOK++
		if b.probesOK >= b.halfOpenProbes() {
			b.openStreak = 0
			b.closes++
			b.monitor.Reset()
			b.transition(BreakerClosed)
		}
	default:
		// Ops issued before the trip can still complete while open; their
		// outcomes are history, not evidence.
	}
}

// open condemns the backend: exponential backoff with ±25% deterministic
// jitter, doubled per consecutive open, capped at OpenMax.
func (b *Breaker) open() {
	base := b.OpenBase
	if base <= 0 {
		base = 500 * sim.Millisecond
	}
	max := b.OpenMax
	if max <= 0 {
		max = 8 * sim.Second
	}
	d := base << b.openStreak
	if d > max || d <= 0 {
		d = max
	}
	// Jitter in [0.75, 1.25): de-synchronizes half-open probes across
	// backends that tripped together.
	d = sim.Duration(float64(d) * (0.75 + 0.5*b.rng.Float64()))
	b.openStreak++
	b.opens++
	b.openUntil = b.eng.Now().Add(d)
	b.monitor.Reset()
	b.transition(BreakerOpen)
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.OnTransition != nil {
		b.OnTransition(from, to, b.eng.Now())
	}
}

// Opens reports how many times the circuit opened.
func (b *Breaker) Opens() uint64 { return b.opens }

// Closes reports how many times the circuit closed after recovery probing.
func (b *Breaker) Closes() uint64 { return b.closes }

func (b *Breaker) halfOpenProbes() int {
	if b.HalfOpenProbes <= 0 {
		return 4
	}
	return b.HalfOpenProbes
}
