package faults

import (
	"testing"

	"repro/internal/sim"
)

func TestMonitorSnapshotConsistent(t *testing.T) {
	m := NewMonitor("ssd")
	for i := 0; i < 10; i++ {
		m.Record(true)
	}
	m.Record(false)
	m.Record(false)
	s := m.Snapshot()
	if s.Backend != "ssd" {
		t.Fatalf("backend %q", s.Backend)
	}
	if s.WindowOK != 10 || s.WindowFail != 2 || s.ConsecFail != 2 {
		t.Fatalf("window %d/%d consec %d, want 10/2/2", s.WindowOK, s.WindowFail, s.ConsecFail)
	}
	if s.Successes != 10 || s.Failures != 2 {
		t.Fatalf("totals %d/%d", s.Successes, s.Failures)
	}
	if s.Unhealthy {
		t.Fatal("latched early")
	}
	if want := 2.0 / 12.0; s.ErrorRate != want {
		t.Fatalf("error rate %v, want %v", s.ErrorRate, want)
	}
	// Snapshot is a copy: further records do not mutate it.
	m.Record(false)
	if s.WindowFail != 2 {
		t.Fatal("snapshot aliased live state")
	}
}

func TestMonitorResetKeepsLifetimeTotals(t *testing.T) {
	m := NewMonitor("rdma")
	for i := 0; i < 6; i++ {
		m.Record(false)
	}
	if !m.Unhealthy() {
		t.Fatal("did not latch on consecutive failures")
	}
	m.Reset()
	s := m.Snapshot()
	if s.Unhealthy || s.WindowOK != 0 || s.WindowFail != 0 || s.ConsecFail != 0 {
		t.Fatalf("reset left window state: %+v", s)
	}
	if s.Failures != 6 {
		t.Fatalf("lifetime failures %d, want 6 after reset", s.Failures)
	}
}

// tripBreaker records enough consecutive failures to open the circuit.
func tripBreaker(t *testing.T, b *Breaker) {
	t.Helper()
	for i := 0; i < 8 && b.State() != BreakerOpen; i++ {
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open on consecutive failures")
	}
}

func TestBreakerOpensAndRefuses(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBreaker(eng, "ssd", 1)
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	tripBreaker(t, b)
	if b.Allow() {
		t.Fatal("open breaker allowed traffic")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens %d", b.Opens())
	}
}

// advance moves the engine clock by d (events drive sim time).
func advance(eng *sim.Engine, d sim.Duration) {
	eng.RunUntil(eng.Now().Add(d))
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBreaker(eng, "ssd", 1)
	var transitions []BreakerState
	b.OnTransition = func(_, to BreakerState, _ sim.Time) { transitions = append(transitions, to) }
	tripBreaker(t, b)

	// Before the deadline: still refusing.
	if b.Allow() {
		t.Fatal("allowed before backoff elapsed")
	}
	// Past the worst-case first backoff (base 500ms × 1.25 jitter).
	advance(eng, 700*sim.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after backoff, want half-open", b.State())
	}
	// Permits peeks without consuming a probe slot.
	for i := 0; i < 10; i++ {
		if !b.Permits() {
			t.Fatal("Permits consumed probe slots")
		}
	}
	// Exactly HalfOpenProbes probes are admitted.
	admitted := 0
	for i := 0; i < 10; i++ {
		if b.Allow() {
			admitted++
		}
	}
	if b.Permits() {
		t.Fatal("Permits true with no probe slots left")
	}
	if admitted != b.HalfOpenProbes {
		t.Fatalf("half-open admitted %d, want %d", admitted, b.HalfOpenProbes)
	}
	// All probes succeed → closed.
	for i := 0; i < b.HalfOpenProbes; i++ {
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probes, want closed", b.State())
	}
	if b.Closes() != 1 {
		t.Fatalf("closes %d", b.Closes())
	}
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenFailureReopensLonger(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBreaker(eng, "ssd", 1)
	tripBreaker(t, b)
	first := b.openUntil.Sub(eng.Now())

	advance(eng, 700*sim.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	b.Allow()
	b.Record(false) // probe fails → re-open
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	second := b.openUntil.Sub(eng.Now())
	// Doubled backoff: even with maximal jitter spread (×0.75 vs ×1.25),
	// 2×base×0.75 > 1×base×1.25.
	if second <= first {
		t.Fatalf("second open interval %v not longer than first %v", second, first)
	}
	if b.Opens() != 2 {
		t.Fatalf("opens %d", b.Opens())
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBreaker(eng, "ssd", 1)
	b.OpenBase = 100 * sim.Millisecond
	b.OpenMax = 400 * sim.Millisecond
	for round := 0; round < 8; round++ {
		tripBreaker(t, b)
		d := b.openUntil.Sub(eng.Now())
		if limit := sim.Duration(float64(400*sim.Millisecond) * 1.25); d > limit {
			t.Fatalf("round %d: backoff %v exceeds jittered cap %v", round, d, limit)
		}
		advance(eng, 600*sim.Millisecond)
		if b.State() != BreakerHalfOpen {
			t.Fatalf("round %d: state %v", round, b.State())
		}
		// Fail a probe to re-open at higher streak, except the last round.
		if round < 7 {
			b.Allow()
			b.Record(false)
			if b.State() != BreakerOpen {
				t.Fatalf("round %d: did not reopen", round)
			}
			advance(eng, 600*sim.Millisecond)
			b.State() // half-open
		}
	}
}

func TestBreakerDeterministicJitter(t *testing.T) {
	run := func() []sim.Duration {
		eng := sim.NewEngine()
		b := NewBreaker(eng, "ssd", 7)
		var out []sim.Duration
		for i := 0; i < 4; i++ {
			tripBreaker(t, b)
			out = append(out, b.openUntil.Sub(eng.Now()))
			advance(eng, 12*sim.Second)
			b.Allow()
			b.Record(false)
			advance(eng, 12*sim.Second)
			if b.State() != BreakerHalfOpen {
				t.Fatalf("iteration %d: state %v", i, b.State())
			}
			for j := 0; j < b.HalfOpenProbes; j++ {
				b.Allow()
				b.Record(true)
			}
			if b.State() != BreakerClosed {
				t.Fatalf("iteration %d: did not close", i)
			}
		}
		return out
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("jittered backoffs differ between identical runs: %v vs %v", a, c)
		}
	}
	// Jitter actually varies across draws.
	varies := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			varies = true
		}
	}
	if !varies {
		t.Fatalf("backoffs show no jitter: %v", a)
	}
}

func TestBreakerIgnoresLateOutcomesWhileOpen(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBreaker(eng, "ssd", 1)
	tripBreaker(t, b)
	// In-flight ops completing after the trip must not disturb the open
	// state or the backoff deadline.
	until := b.openUntil
	b.Record(true)
	b.Record(false)
	if b.State() != BreakerOpen || b.openUntil != until {
		t.Fatal("late outcomes disturbed the open state")
	}
}
