package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// fakeTarget records the fault transitions applied to it.
type fakeTarget struct {
	name   string
	events []string
}

func (f *fakeTarget) Name() string { return f.name }
func (f *fakeTarget) Fail()        { f.events = append(f.events, "fail") }
func (f *fakeTarget) Stall()       { f.events = append(f.events, "stall") }
func (f *fakeTarget) Degrade(lat, bw float64) {
	f.events = append(f.events, "degrade")
}
func (f *fakeTarget) Recover() { f.events = append(f.events, "recover") }

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Targets:     []string{"ssd", "rdma", "dram"},
		Horizon:     60 * sim.Second,
		Events:      32,
		CrashWeight: 1, FlapWeight: 3, DegradeWt: 2,
	}
	a := Generate(cfg, 42)
	b := Generate(cfg, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config+seed produced different schedules")
	}
	if len(a.Events) != 32 {
		t.Fatalf("generated %d events, want 32", len(a.Events))
	}
	c := Generate(cfg, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, ev := range a.Events {
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Fatalf("event at %v outside horizon", ev.At)
		}
		if ev.Kind == Degrade && (ev.LatencyFactor < 1 || ev.BandwidthFactor <= 0 || ev.BandwidthFactor > 1) {
			t.Fatalf("degrade factors out of range: %+v", ev)
		}
	}
}

func TestScheduleSortStable(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: 2 * sim.Second, Target: "b"},
		{At: 1 * sim.Second, Target: "z"},
		{At: 2 * sim.Second, Target: "a"},
	}}
	s.Sort()
	got := []string{s.Events[0].Target, s.Events[1].Target, s.Events[2].Target}
	want := []string{"z", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sort order %v, want %v", got, want)
	}
}

func TestInjectorFlapRecovers(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng)
	ft := &fakeTarget{name: "dev"}
	in.Register(ft)
	n := in.Apply(Schedule{Events: []Event{
		{At: sim.Second, Target: "dev", Kind: Flap, Duration: 2 * sim.Second},
		{At: sim.Second, Target: "ghost", Kind: Crash}, // unregistered: ignored
	}})
	if n != 1 {
		t.Fatalf("armed %d events, want 1 (ghost target skipped)", n)
	}
	eng.Run()
	if !reflect.DeepEqual(ft.events, []string{"stall", "recover"}) {
		t.Fatalf("flap transitions %v, want [stall recover]", ft.events)
	}
	if len(in.Injected) != 1 {
		t.Fatalf("Injected log has %d entries, want 1", len(in.Injected))
	}
}

func TestInjectorCrashWinsOverRecovery(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng)
	ft := &fakeTarget{name: "dev"}
	in.Register(ft)
	// Flap window ends at t=3s, but the device crashes at t=2s: the
	// recovery must be skipped and the later degrade must not apply.
	in.Apply(Schedule{Events: []Event{
		{At: sim.Second, Target: "dev", Kind: Flap, Duration: 2 * sim.Second},
		{At: 2 * sim.Second, Target: "dev", Kind: Crash},
		{At: 4 * sim.Second, Target: "dev", Kind: Degrade, Duration: sim.Second,
			LatencyFactor: 2, BandwidthFactor: 0.5},
	}})
	eng.Run()
	if !reflect.DeepEqual(ft.events, []string{"stall", "fail"}) {
		t.Fatalf("transitions %v, want [stall fail] (dead targets stay dead)", ft.events)
	}
}

func TestInjectorOffsetsRelativeToApply(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng)
	ft := &fakeTarget{name: "dev"}
	in.Register(ft)
	var firedAt sim.Time
	in.OnFault = func(Event) { firedAt = eng.Now() }
	// Warm up the clock, then apply: the event must land at now+offset.
	eng.After(10*sim.Second, func() {
		in.Apply(Schedule{Events: []Event{{At: 3 * sim.Second, Target: "dev", Kind: Crash}}})
	})
	eng.Run()
	if want := sim.Time(0).Add(13 * sim.Second); firedAt != want {
		t.Fatalf("fault fired at %v, want %v", firedAt, want)
	}
}

func TestMonitorTripsAndLatches(t *testing.T) {
	m := NewMonitor("be")
	trips := 0
	m.OnUnhealthy = func() { trips++ }
	for i := 0; i < 4; i++ {
		m.Record(true)
	}
	if m.Unhealthy() {
		t.Fatal("healthy monitor reported unhealthy")
	}
	for i := 0; i < 32; i++ {
		m.Record(false)
	}
	if !m.Unhealthy() {
		t.Fatalf("monitor did not trip (error rate %.2f)", m.ErrorRate())
	}
	if trips != 1 {
		t.Fatalf("OnUnhealthy fired %d times, want exactly 1 (latched)", trips)
	}
	// Further failures must not re-fire the latched callback.
	m.Record(false)
	if trips != 1 {
		t.Fatalf("latched callback re-fired (%d)", trips)
	}
	m.Reset()
	if m.Unhealthy() {
		t.Fatal("Reset did not clear unhealthy state")
	}
	for i := 0; i < 32; i++ {
		m.Record(false)
	}
	if trips != 2 {
		t.Fatalf("re-armed monitor fired %d trips, want 2", trips)
	}
}

func TestMonitorNeedsMinSamples(t *testing.T) {
	m := NewMonitor("be")
	// Fewer than MinSamples failures: too little evidence to demote.
	for i := 0; i < 4; i++ {
		m.Record(false)
	}
	if m.Unhealthy() {
		t.Fatal("monitor tripped below MinSamples")
	}
}

func TestMonitorRecoversOnSuccesses(t *testing.T) {
	m := NewMonitor("be")
	// Stay below both trip conditions: a short error burst, not an outage.
	for i := 0; i < 3; i++ {
		m.Record(false)
	}
	// A healthy stretch dilutes the window and breaks the consecutive-failure
	// streak before the monitor accumulates enough evidence.
	for i := 0; i < 64; i++ {
		m.Record(true)
	}
	if m.Unhealthy() {
		t.Fatal("monitor tripped despite recovery")
	}
	if m.ErrorRate() > 0.2 {
		t.Fatalf("error rate %.2f did not decay", m.ErrorRate())
	}
}
