// Package faults injects deterministic failures into the simulated
// far-memory substrate: permanent device death, transient unavailability
// windows (RDMA link flaps, NVMe controller resets), latency/bandwidth
// degradation (SSD wear, congested NICs), and remote-node crashes. Fault
// schedules are generated from a seed and driven entirely by the virtual
// clock, so every failure scenario replays byte-identically.
//
// The package deliberately depends only on internal/sim (plus the
// observability layer, which itself sits directly on sim): anything that can
// fail implements the small Target interface (internal/device.Device does),
// and anything that watches backend health feeds a Monitor (internal/swap
// paths do). That keeps the dependency graph acyclic — device, swap, and
// datacenter all sit above faults, never below it.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind classifies a fault event.
type Kind int

const (
	// Crash is permanent device death: every subsequent op fails fast
	// (controller abort / NIC completion-with-error). The device does not
	// come back; data held on it is lost.
	Crash Kind = iota
	// Flap is a transient unavailability window (RDMA link flap, NVMe
	// controller reset): ops submitted during the window are silently
	// dropped — only the initiator's timeout notices. The device recovers
	// after Duration with data intact.
	Flap
	// Degrade multiplies op latency and scales device bandwidth for
	// Duration (0 = until the end of the run): a worn SSD or congested
	// NIC that is slow but not dead.
	Degrade
)

// String names the kind for tables and logs.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Flap:
		return "flap"
	case Degrade:
		return "degrade"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault. At is an offset from the moment the
// schedule is applied (Injector.Apply), not an absolute time, so the same
// schedule can be replayed against any warm-up prefix.
type Event struct {
	At       sim.Duration // offset from Apply time
	Target   string       // device name (Injector.Register)
	Kind     Kind
	Duration sim.Duration // Flap/Degrade window; ignored for Crash
	// Degrade parameters: op latency is multiplied by LatencyFactor
	// (>= 1), device bandwidth by BandwidthFactor (0 < f <= 1).
	LatencyFactor   float64
	BandwidthFactor float64
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// Sort orders events by time, then target, for deterministic application.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].At != s.Events[j].At {
			return s.Events[i].At < s.Events[j].At
		}
		return s.Events[i].Target < s.Events[j].Target
	})
}

// GenConfig parameterises random schedule generation.
type GenConfig struct {
	Targets     []string     // candidate devices (round-robin weighted by rng)
	Horizon     sim.Duration // events land in [0, Horizon)
	Events      int          // how many events to generate
	CrashWeight float64      // relative weights of the three kinds;
	FlapWeight  float64      // all zero = Flap only
	DegradeWt   float64
	FlapMean    sim.Duration // mean flap window (exponential), default 10s
	DegradeMean sim.Duration // mean degrade window, default 30s
}

// Generate builds a deterministic random schedule: the same config and seed
// always produce the same events. Used by tests and by scripted chaos runs;
// experiments that need a precise scenario construct Events directly.
func Generate(cfg GenConfig, seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if cfg.FlapMean <= 0 {
		cfg.FlapMean = 10 * sim.Second
	}
	if cfg.DegradeMean <= 0 {
		cfg.DegradeMean = 30 * sim.Second
	}
	total := cfg.CrashWeight + cfg.FlapWeight + cfg.DegradeWt
	if total <= 0 {
		cfg.FlapWeight, total = 1, 1
	}
	var s Schedule
	for i := 0; i < cfg.Events && len(cfg.Targets) > 0 && cfg.Horizon > 0; i++ {
		ev := Event{
			At:     sim.Duration(rng.Int63n(int64(cfg.Horizon))),
			Target: cfg.Targets[rng.Intn(len(cfg.Targets))],
		}
		switch p := rng.Float64() * total; {
		case p < cfg.CrashWeight:
			ev.Kind = Crash
		case p < cfg.CrashWeight+cfg.FlapWeight:
			ev.Kind = Flap
			ev.Duration = expDuration(rng, cfg.FlapMean)
		default:
			ev.Kind = Degrade
			ev.Duration = expDuration(rng, cfg.DegradeMean)
			ev.LatencyFactor = 1 + rng.Float64()*9 // 1x..10x
			ev.BandwidthFactor = 0.1 + rng.Float64()*0.9
		}
		s.Events = append(s.Events, ev)
	}
	s.Sort()
	return s
}

func expDuration(rng *rand.Rand, mean sim.Duration) sim.Duration {
	d := sim.Duration(rng.ExpFloat64() * float64(mean))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}

// Target is anything the injector can break. internal/device.Device
// implements it; other layers can too.
type Target interface {
	Name() string
	// Fail kills the target permanently: ops fail fast from now on.
	Fail()
	// Stall makes the target silently drop ops (transient outage).
	Stall()
	// Degrade multiplies op latency by lat (>= 1) and scales bandwidth
	// by bw (0 < bw <= 1).
	Degrade(lat, bw float64)
	// Recover restores full health (ends a Stall or Degrade window).
	Recover()
}

// Injector arms fault events against registered targets on a virtual
// clock. Recovery events scheduled for a target that has since crashed are
// skipped — permanent death wins.
type Injector struct {
	eng     *sim.Engine
	targets map[string]Target
	crashed map[string]bool
	// Injected logs every event actually applied, in application order.
	Injected []Event
	// OnFault, when set, observes each applied event (telemetry hook).
	OnFault func(Event)

	// Observability handle, resolved once at construction (nil when off).
	rec *obs.Recorder
}

// NewInjector creates an injector bound to eng.
func NewInjector(eng *sim.Engine) *Injector {
	in := &Injector{
		eng:     eng,
		targets: make(map[string]Target),
		crashed: make(map[string]bool),
	}
	if obs.On {
		in.rec = obs.Rec(eng)
	}
	return in
}

// Register makes t eligible as a fault target under t.Name().
func (in *Injector) Register(t Target) { in.targets[t.Name()] = t }

// Apply schedules every event in s relative to the current virtual time.
// Events naming unregistered targets are ignored (returned count excludes
// them). Apply may be called multiple times; schedules compose.
func (in *Injector) Apply(s Schedule) int {
	s.Sort()
	armed := 0
	for _, ev := range s.Events {
		t, ok := in.targets[ev.Target]
		if !ok {
			continue
		}
		armed++
		ev := ev
		in.eng.After(ev.At, func() { in.fire(t, ev) })
	}
	return armed
}

func (in *Injector) fire(t Target, ev Event) {
	if in.crashed[ev.Target] {
		return // dead targets stay dead
	}
	switch ev.Kind {
	case Crash:
		in.crashed[ev.Target] = true
		t.Fail()
	case Flap:
		t.Stall()
		in.eng.After(ev.Duration, func() { in.recover(t, ev.Target) })
	case Degrade:
		lat, bw := ev.LatencyFactor, ev.BandwidthFactor
		if lat < 1 {
			lat = 1
		}
		if bw <= 0 || bw > 1 {
			bw = 1
		}
		t.Degrade(lat, bw)
		if ev.Duration > 0 {
			in.eng.After(ev.Duration, func() { in.recover(t, ev.Target) })
		}
	}
	in.Injected = append(in.Injected, ev)
	if in.rec != nil {
		detail := ev.Target
		if ev.Kind != Crash {
			detail = fmt.Sprintf("%s dur=%v", ev.Target, ev.Duration)
		}
		in.rec.Instant("faults", ev.Kind.String(), detail)
	}
	if in.OnFault != nil {
		in.OnFault(ev)
	}
}

func (in *Injector) recover(t Target, name string) {
	if in.crashed[name] {
		return
	}
	if in.rec != nil {
		in.rec.Instant("faults", "recover", name)
	}
	t.Recover()
}
