package mem

import (
	"testing"

	"repro/internal/invariant"
)

// Seeded-bug tests for the LRU invariants: each plants a corruption a real
// accounting regression could introduce and requires detection.

// A page evicted from the list but left flagged resident (leaked residency)
// must fail both the O(1) exclusivity check and the structural audit.
func TestSeededBugLeakedResidencyCaught(t *testing.T) {
	ps := NewPageSet(8)
	for i := int32(0); i < 4; i++ {
		ps.MakeResident(i, 0)
	}
	// The seeded bug: drop page 1 off its list without clearing Resident or
	// the resident counters.
	ps.remove(&ps.inactive, 1)
	ps.pages[1].list = onNone

	if err := ps.Audit(); err == nil {
		t.Fatal("audit missed a resident page on no LRU list")
	}

	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()
	ps.MakeResident(5, 0) // any LRU mutation re-evaluates the conservation law
	found := false
	for _, v := range violations {
		if v.Check == "mem.lru.exclusive" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exclusivity check missed the leak; violations: %+v", violations)
	}
}

// A page pushed onto both lists (double insertion) must fail the audit.
func TestSeededBugDoubleListedPageCaught(t *testing.T) {
	ps := NewPageSet(8)
	ps.MakeResident(0, 0)
	ps.MakeResident(1, 0)
	// The seeded bug: page 0 also inserted into the active list.
	ps.pushFront(&ps.active, 0)
	if err := ps.Audit(); err == nil {
		t.Fatal("audit missed a page on both LRU lists")
	}
}

// A drifted per-type resident counter must fail the counts check on the
// next mutation.
func TestSeededBugTypeCounterDriftCaught(t *testing.T) {
	ps := NewPageSet(8)
	ps.MakeResident(0, 0)
	// The seeded bug: a phantom resident file page.
	ps.residentByType[FileBacked]++
	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()
	ps.Touch(0, 1, false)
	found := false
	for _, v := range violations {
		if v.Check == "mem.lru.resident-counts" {
			found = true
		}
	}
	if !found {
		t.Fatalf("resident-counts check missed the drift; violations: %+v", violations)
	}
}
