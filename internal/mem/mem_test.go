package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPageSetLifecycle(t *testing.T) {
	ps := NewPageSet(10)
	if ps.Len() != 10 || ps.Resident() != 0 {
		t.Fatalf("fresh set: len=%d resident=%d", ps.Len(), ps.Resident())
	}
	ps.MakeResident(3, 0)
	if ps.Resident() != 1 || !ps.Page(3).Resident {
		t.Fatal("MakeResident failed")
	}
	if ps.InactiveLen() != 1 || ps.ActiveLen() != 0 {
		t.Fatal("new page should land on inactive list")
	}
	ps.Touch(3, 100, false)
	if ps.ActiveLen() != 1 || ps.InactiveLen() != 0 {
		t.Fatal("touch should promote to active")
	}
	if dirty := ps.Evict(3); dirty {
		t.Fatal("clean page reported dirty")
	}
	if ps.Resident() != 0 {
		t.Fatal("evict did not decrement resident")
	}
}

func TestDirtyTracking(t *testing.T) {
	ps := NewPageSet(4)
	ps.MakeResident(0, 0)
	ps.Touch(0, 1, true)
	if !ps.Page(0).Dirty {
		t.Fatal("write did not dirty page")
	}
	if !ps.Evict(0) {
		t.Fatal("dirty page reported clean at evict")
	}
	// Re-fault: dirty bit must have been cleared.
	ps.MakeResident(0, 0)
	if ps.Page(0).Dirty {
		t.Fatal("dirty bit survived eviction")
	}
}

func TestReclaimOrderIsLRU(t *testing.T) {
	ps := NewPageSet(8)
	for i := int32(0); i < 4; i++ {
		ps.MakeResident(i, 0)
	}
	// Touch 0 and 1 so they're active; 2 and 3 stay inactive with 2 older.
	ps.Touch(0, 10, false)
	ps.Touch(1, 11, false)
	got := ps.ReclaimCandidate()
	if got != 2 {
		t.Fatalf("reclaim candidate = %d, want 2 (coldest inactive)", got)
	}
	ps.Evict(2)
	if got := ps.ReclaimCandidate(); got != 3 {
		t.Fatalf("next candidate = %d, want 3", got)
	}
}

func TestReclaimRefillsFromActive(t *testing.T) {
	ps := NewPageSet(4)
	for i := int32(0); i < 4; i++ {
		ps.MakeResident(i, 0)
		ps.Touch(i, sim.Time(i), false) // all active
	}
	if ps.InactiveLen() != 0 {
		t.Fatal("setup: want empty inactive list")
	}
	got := ps.ReclaimCandidate()
	if got == -1 {
		t.Fatal("no candidate despite resident pages")
	}
	// balance() demotes from the active tail, so the first-touched page (0)
	// must be among the demoted; the returned candidate is the coldest.
	if got != 0 {
		t.Fatalf("candidate = %d, want 0 (oldest active)", got)
	}
}

func TestReclaimCandidateEmpty(t *testing.T) {
	ps := NewPageSet(2)
	if ps.ReclaimCandidate() != -1 {
		t.Fatal("empty set should have no candidate")
	}
}

func TestTypeCountsAndSetType(t *testing.T) {
	ps := NewPageSet(10)
	ps.SetType(0, 4, FileBacked)
	anon, file := ps.TypeCounts()
	if anon != 6 || file != 4 {
		t.Fatalf("anon=%d file=%d", anon, file)
	}
	ps.MakeResident(0, 0)
	if ps.ResidentByType(FileBacked) != 1 || ps.ResidentByType(Anonymous) != 0 {
		t.Fatal("ResidentByType wrong after fault")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetType on resident page should panic")
		}
	}()
	ps.SetType(0, 1, Anonymous)
}

func TestColdestResidentOrder(t *testing.T) {
	ps := NewPageSet(6)
	for i := int32(0); i < 6; i++ {
		ps.MakeResident(i, 0)
	}
	// Touch 5,4 making them active; 0..3 inactive (0 coldest).
	ps.Touch(5, 1, false)
	ps.Touch(4, 2, false)
	var order []int32
	ps.ColdestResident(func(id int32) bool {
		order = append(order, id)
		return true
	})
	if len(order) != 6 {
		t.Fatalf("visited %d pages, want 6", len(order))
	}
	if order[0] != 0 {
		t.Fatalf("coldest = %d, want 0", order[0])
	}
	last := order[len(order)-1]
	if last != 4 {
		t.Fatalf("hottest = %d, want 4 (most recently touched)", last)
	}
}

// Property: any interleaving of faults, touches, and evictions keeps the
// LRU bookkeeping consistent: list sizes sum to resident count, and every
// resident page is on exactly one list.
func TestLRUConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 32
		ps := NewPageSet(n)
		now := sim.Time(0)
		for _, op := range ops {
			id := int32(op % n)
			now++
			switch (op / n) % 3 {
			case 0:
				if !ps.Page(id).Resident {
					ps.MakeResident(id, 0)
				}
			case 1:
				if ps.Page(id).Resident {
					ps.Touch(id, now, op%2 == 0)
				}
			case 2:
				if ps.Page(id).Resident {
					ps.Evict(id)
				}
			}
			if ps.ActiveLen()+ps.InactiveLen() != ps.Resident() {
				return false
			}
		}
		// Walk both lists and verify counts.
		visited := 0
		ps.ColdestResident(func(int32) bool { visited++; return true })
		return visited == ps.Resident()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestNUMABindLocal(t *testing.T) {
	topo := NewTopology(2)
	// Fill node 0.
	if n := topo.Allocate(BindLocal, 0); n != 0 {
		t.Fatalf("alloc 1 on node %d", n)
	}
	if n := topo.Allocate(BindLocal, 0); n != 0 {
		t.Fatalf("alloc 2 on node %d", n)
	}
	// Node 0 full: spills to node 1.
	if n := topo.Allocate(BindLocal, 0); n != 1 {
		t.Fatalf("spill went to node %d, want 1", n)
	}
	topo.Release(0)
	if topo.Nodes[0].UsedPages != 1 {
		t.Fatal("release did not return page")
	}
}

func TestNUMAInterleave(t *testing.T) {
	topo := NewTopology(4)
	counts := map[int8]int{}
	for i := 0; i < 6; i++ {
		counts[topo.Allocate(Interleave, 0)]++
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("interleave counts=%v, want 3/3", counts)
	}
}

func TestNUMAPreferRemote(t *testing.T) {
	topo := NewTopology(2)
	if n := topo.Allocate(PreferRemote, 0); n != 1 {
		t.Fatalf("prefer-remote allocated on node %d, want 1", n)
	}
}

func TestNUMAExhaustion(t *testing.T) {
	topo := NewTopology(1)
	topo.Allocate(BindLocal, 0)
	topo.Allocate(BindLocal, 0)
	if n := topo.Allocate(BindLocal, 0); n != -1 {
		t.Fatalf("allocation on full topology returned %d", n)
	}
	if topo.TotalFree() != 0 {
		t.Fatal("TotalFree wrong")
	}
}

func TestNUMAAccessLatency(t *testing.T) {
	topo := NewTopology(10)
	topo.AddCXLNode(10)
	local := topo.AccessLatency(0, 0)
	remote := topo.AccessLatency(0, 1)
	cxl := topo.AccessLatency(0, 2)
	if !(local < remote && remote < cxl) {
		t.Fatalf("latency ordering violated: local=%v remote=%v cxl=%v", local, remote, cxl)
	}
}

// Property: allocations never exceed node capacities and Release restores
// free counts exactly.
func TestNUMAConservationProperty(t *testing.T) {
	f := func(policySeeds []uint8) bool {
		topo := NewTopology(16)
		var held []int8
		for _, s := range policySeeds {
			policy := NUMAPolicy(s % 3)
			if n := topo.Allocate(policy, int8(s%2)); n >= 0 {
				held = append(held, n)
			}
			for i := range topo.Nodes {
				if topo.Nodes[i].UsedPages > topo.Nodes[i].CapacityPages {
					return false
				}
			}
		}
		for _, n := range held {
			topo.Release(n)
		}
		return topo.TotalFree() == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(32))}); err != nil {
		t.Fatal(err)
	}
}

func TestCgroupRatio(t *testing.T) {
	ps := NewPageSet(100)
	cg := NewCgroupRatio(ps, 0.3)
	if cg.LimitPages != 30 {
		t.Fatalf("limit=%d, want 30", cg.LimitPages)
	}
	if fr := cg.FarRatio(ps); fr != 0.7 {
		t.Fatalf("far ratio=%v, want 0.7", fr)
	}
	for i := int32(0); i < 30; i++ {
		ps.MakeResident(i, 0)
	}
	if cg.OverLimit(ps) != 0 {
		t.Fatal("at-limit set should not be over")
	}
	if cg.NeedsReclaimBeforeFault(ps) != 1 {
		t.Fatal("fault at limit should need one reclaim")
	}
}

func TestCgroupClamping(t *testing.T) {
	ps := NewPageSet(100)
	lo := NewCgroupRatio(ps, -1)
	if lo.LimitPages != 5 {
		t.Fatalf("clamped low limit=%d, want 5", lo.LimitPages)
	}
	hi := NewCgroupRatio(ps, 2)
	if hi.LimitPages != 100 {
		t.Fatalf("clamped high limit=%d, want 100", hi.LimitPages)
	}
}

func TestNUMAPolicyStrings(t *testing.T) {
	if BindLocal.String() != "bind-local" || Interleave.String() != "interleave" ||
		PreferRemote.String() != "prefer-remote" || NUMAPolicy(9).String() != "unknown" {
		t.Fatal("policy strings wrong")
	}
	if Anonymous.String() != "anon" || FileBacked.String() != "file" {
		t.Fatal("page type strings wrong")
	}
}
