// Package mem models the guest's memory subsystem at page granularity:
// page tables, the kernel's active/inactive LRU lists, NUMA topology, and
// cgroup-style local-memory limits. It is the substrate the swap engine
// (package swap) reclaims from and faults into.
package mem

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/units"
)

// Registered invariants for the LRU machinery. Exclusivity is the kernel's
// core list law: every resident page sits on exactly one of active/inactive,
// so active.size + inactive.size always equals the resident count, and the
// per-type resident counts always sum to it. Audit() proves the structural
// version (walking the links); these O(1) checks guard every mutation.
var (
	ckLRUExclusive = invariant.Register("mem.lru.exclusive")
	ckLRUCounts    = invariant.Register("mem.lru.resident-counts")
)

// checkCounts asserts the O(1) conservation laws after an LRU mutation.
func (ps *PageSet) checkCounts() {
	ckLRUExclusive.Assert(ps.active.size+ps.inactive.size == ps.resident,
		"active %d + inactive %d != resident %d",
		ps.active.size, ps.inactive.size, ps.resident)
	ckLRUCounts.Assert(ps.resident >= 0 &&
		ps.residentByType[Anonymous]+ps.residentByType[FileBacked] == ps.resident,
		"resident %d, by type %d+%d",
		ps.resident, ps.residentByType[Anonymous], ps.residentByType[FileBacked])
}

// PageType distinguishes the two page classes the paper's switching strategy
// keys on (Fig 8): anonymous pages go through the swap path; file-backed
// pages are dropped or written back to their file and re-read on fault.
type PageType uint8

// Page classes.
const (
	Anonymous PageType = iota
	FileBacked
)

func (t PageType) String() string {
	if t == Anonymous {
		return "anon"
	}
	return "file"
}

// listID identifies which LRU list a page is on.
type listID uint8

const (
	onNone listID = iota
	onActive
	onInactive
)

const nilPage int32 = -1

// Page is one base (4 KiB) page of a process's address space.
type Page struct {
	Type       PageType
	Resident   bool
	Dirty      bool
	Huge       bool // part of a THP-backed extent
	Node       int8 // NUMA node holding the page while resident
	Accesses   uint32
	LastAccess sim.Time

	prev, next int32
	list       listID
}

// PageSet is a process's page table plus its LRU machinery. Pages are
// identified by dense indices [0, Len).
type PageSet struct {
	pages          []Page
	active         lru
	inactive       lru
	resident       int
	residentByType [2]int
}

// lru is an intrusive doubly-linked list over PageSet.pages.
type lru struct {
	head, tail int32
	size       int
}

// NewPageSet creates a page set of n pages, all of type Anonymous and
// non-resident. Callers mark file-backed ranges with SetType.
func NewPageSet(n int) *PageSet {
	if n <= 0 {
		panic("mem: page set must have at least one page")
	}
	ps := &PageSet{pages: make([]Page, n)}
	ps.active = lru{head: nilPage, tail: nilPage}
	ps.inactive = lru{head: nilPage, tail: nilPage}
	for i := range ps.pages {
		ps.pages[i].prev = nilPage
		ps.pages[i].next = nilPage
	}
	return ps
}

// Len reports the number of pages.
func (ps *PageSet) Len() int { return len(ps.pages) }

// Bytes reports the footprint in bytes.
func (ps *PageSet) Bytes() int64 { return int64(len(ps.pages)) * units.PageSize }

// Page returns a pointer to page id for inspection. The LRU must be mutated
// only through PageSet methods.
func (ps *PageSet) Page(id int32) *Page { return &ps.pages[id] }

// Resident reports how many pages are currently in local memory.
func (ps *PageSet) Resident() int { return ps.resident }

// ResidentByType reports resident page counts for the given type.
func (ps *PageSet) ResidentByType(t PageType) int { return ps.residentByType[t] }

// ActiveLen and InactiveLen report LRU list sizes.
func (ps *PageSet) ActiveLen() int   { return ps.active.size }
func (ps *PageSet) InactiveLen() int { return ps.inactive.size }

// SetType marks pages [from, to) as the given type. Only valid before the
// pages become resident.
func (ps *PageSet) SetType(from, to int32, t PageType) {
	for i := from; i < to; i++ {
		if ps.pages[i].Resident {
			panic("mem: SetType on resident page")
		}
		ps.pages[i].Type = t
	}
}

// TypeCounts reports the number of anonymous and file-backed pages, the
// ratio the paper's implicit switching strategy reads from the trace table.
func (ps *PageSet) TypeCounts() (anon, file int) {
	for i := range ps.pages {
		if ps.pages[i].Type == Anonymous {
			anon++
		} else {
			file++
		}
	}
	return
}

func (ps *PageSet) list(id listID) *lru {
	if id == onActive {
		return &ps.active
	}
	return &ps.inactive
}

func (ps *PageSet) pushFront(l *lru, id int32) {
	p := &ps.pages[id]
	p.prev = nilPage
	p.next = l.head
	if l.head != nilPage {
		ps.pages[l.head].prev = id
	}
	l.head = id
	if l.tail == nilPage {
		l.tail = id
	}
	l.size++
}

func (ps *PageSet) remove(l *lru, id int32) {
	p := &ps.pages[id]
	if p.prev != nilPage {
		ps.pages[p.prev].next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nilPage {
		ps.pages[p.next].prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.prev, p.next = nilPage, nilPage
	l.size--
}

// MakeResident brings page id into local memory on the given NUMA node and
// places it at the head of the inactive list (newly faulted pages must prove
// their heat before reaching the active list, as in Linux).
func (ps *PageSet) MakeResident(id int32, node int8) {
	p := &ps.pages[id]
	if p.Resident {
		panic(fmt.Sprintf("mem: page %d already resident", id))
	}
	p.Resident = true
	p.Node = node
	p.list = onInactive
	ps.pushFront(&ps.inactive, id)
	ps.resident++
	ps.residentByType[p.Type]++
	if invariant.On {
		ps.checkCounts()
	}
}

// Evict removes page id from local memory and from its LRU list, reporting
// whether it was dirty (and therefore needs writeback).
func (ps *PageSet) Evict(id int32) (dirty bool) {
	p := &ps.pages[id]
	if !p.Resident {
		panic(fmt.Sprintf("mem: evicting non-resident page %d", id))
	}
	if p.list != onNone {
		ps.remove(ps.list(p.list), id)
		p.list = onNone
	}
	p.Resident = false
	ps.resident--
	ps.residentByType[p.Type]--
	dirty = p.Dirty
	p.Dirty = false
	if invariant.On {
		ps.checkCounts()
	}
	return dirty
}

// Touch records an access to a resident page at the given time. Writes mark
// the page dirty. Pages on the inactive list are promoted to the active
// list; active pages move to the list head (LRU order).
func (ps *PageSet) Touch(id int32, now sim.Time, write bool) {
	p := &ps.pages[id]
	if !p.Resident {
		panic(fmt.Sprintf("mem: touching non-resident page %d", id))
	}
	p.Accesses++
	p.LastAccess = now
	if write {
		p.Dirty = true
	}
	switch p.list {
	case onInactive:
		ps.remove(&ps.inactive, id)
		p.list = onActive
		ps.pushFront(&ps.active, id)
	case onActive:
		ps.remove(&ps.active, id)
		ps.pushFront(&ps.active, id)
	}
	if invariant.On {
		ckLRUExclusive.Assert(p.list == onActive || p.list == onInactive,
			"resident page %d on no LRU list after touch", id)
		ps.checkCounts()
	}
}

// ReclaimCandidate pops the coldest page: the tail of the inactive list,
// refilling the inactive list from the active tail when it runs dry. It
// returns -1 if no resident page remains. The page stays resident — the
// caller evicts it once any writeback completes.
func (ps *PageSet) ReclaimCandidate() int32 {
	ps.balance()
	if ps.inactive.tail != nilPage {
		return ps.inactive.tail
	}
	if ps.active.tail != nilPage {
		return ps.active.tail
	}
	return nilPage
}

// balance keeps the inactive list at least ~1/4 of resident pages by
// demoting from the active tail, mirroring the kernel's shrink_active_list.
func (ps *PageSet) balance() {
	for ps.inactive.size*4 < ps.resident && ps.active.tail != nilPage {
		id := ps.active.tail
		ps.remove(&ps.active, id)
		ps.pages[id].list = onInactive
		ps.pushFront(&ps.inactive, id)
	}
}

// Audit walks the full LRU structure and verifies it against the page table:
// list links are mutually consistent, recorded sizes match the walks, every
// resident page sits on exactly the list its tag claims (and non-resident
// pages on none), and the resident counters match a recount. It is O(n) —
// meant for tests and the metamorphic suite, not the hot path.
func (ps *PageSet) Audit() error {
	walk := func(l *lru, id listID, name string) (map[int32]bool, error) {
		seen := make(map[int32]bool)
		prev := nilPage
		for cur := l.head; cur != nilPage; cur = ps.pages[cur].next {
			if seen[cur] {
				return nil, fmt.Errorf("mem audit: %s list cycles at page %d", name, cur)
			}
			seen[cur] = true
			p := &ps.pages[cur]
			if p.prev != prev {
				return nil, fmt.Errorf("mem audit: %s list back-link of page %d is %d, want %d",
					name, cur, p.prev, prev)
			}
			if p.list != id {
				return nil, fmt.Errorf("mem audit: page %d on %s list but tagged %d", cur, name, p.list)
			}
			if !p.Resident {
				return nil, fmt.Errorf("mem audit: non-resident page %d on %s list", cur, name)
			}
			prev = cur
		}
		if l.tail != prev {
			return nil, fmt.Errorf("mem audit: %s tail is %d, walk ended at %d", name, l.tail, prev)
		}
		if l.size != len(seen) {
			return nil, fmt.Errorf("mem audit: %s size %d, walk found %d", name, l.size, len(seen))
		}
		return seen, nil
	}
	act, err := walk(&ps.active, onActive, "active")
	if err != nil {
		return err
	}
	inact, err := walk(&ps.inactive, onInactive, "inactive")
	if err != nil {
		return err
	}
	var resident int
	var byType [2]int
	for i := range ps.pages {
		id := int32(i)
		p := &ps.pages[i]
		onAct, onInact := act[id], inact[id]
		if onAct && onInact {
			return fmt.Errorf("mem audit: page %d on both LRU lists", id)
		}
		if p.Resident {
			resident++
			byType[p.Type]++
			if !onAct && !onInact {
				return fmt.Errorf("mem audit: resident page %d on no LRU list", id)
			}
		} else if onAct || onInact {
			return fmt.Errorf("mem audit: non-resident page %d on an LRU list", id)
		}
	}
	if resident != ps.resident {
		return fmt.Errorf("mem audit: resident counter %d, recount %d", ps.resident, resident)
	}
	if byType != ps.residentByType {
		return fmt.Errorf("mem audit: residentByType %v, recount %v", ps.residentByType, byType)
	}
	return nil
}

// ColdestResident iterates reclaim order without mutating state: it calls
// fn on pages from coldest to hottest until fn returns false. Used by
// policies that size hot sets.
func (ps *PageSet) ColdestResident(fn func(id int32) bool) {
	for id := ps.inactive.tail; id != nilPage; id = ps.pages[id].prev {
		if !fn(id) {
			return
		}
	}
	for id := ps.active.tail; id != nilPage; id = ps.pages[id].prev {
		if !fn(id) {
			return
		}
	}
}
