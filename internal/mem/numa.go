package mem

import (
	"fmt"

	"repro/internal/sim"
)

// NUMAPolicy selects where local pages are placed relative to the CPU's
// socket. The paper binds CPU and memory to the same node for locality or
// spreads across nodes for load balance (Sec IV-B: "data distribution").
type NUMAPolicy int

// NUMA placement policies.
const (
	// BindLocal allocates strictly on the CPU's node and fails over to the
	// remote node only when the local node is exhausted.
	BindLocal NUMAPolicy = iota
	// Interleave round-robins pages across all nodes.
	Interleave
	// PreferRemote allocates on the other socket first (load-balance mode
	// for insensitive applications under same-socket memory shortage).
	PreferRemote
)

func (p NUMAPolicy) String() string {
	switch p {
	case BindLocal:
		return "bind-local"
	case Interleave:
		return "interleave"
	case PreferRemote:
		return "prefer-remote"
	default:
		return "unknown"
	}
}

// Node is one NUMA memory node.
type Node struct {
	ID            int8
	CapacityPages int
	UsedPages     int
	// CPUless marks a node with memory but no cores — how recent work (and
	// this paper's Sec IV-B) exposes CXL expanders to the OS.
	CPUless bool
}

// Free reports the node's free page count.
func (n *Node) Free() int { return n.CapacityPages - n.UsedPages }

// Topology is the host's NUMA layout plus access latencies.
type Topology struct {
	Nodes []Node

	// LocalLatency is the extra memory latency for a same-node access;
	// RemoteLatency for a cross-socket access; CXLLatency for a CPU-less
	// (CXL) node access.
	LocalLatency  sim.Duration
	RemoteLatency sim.Duration
	CXLLatency    sim.Duration

	rr int // interleave cursor
}

// NewTopology builds a two-socket topology with the given per-node capacity
// in pages, matching the paper's dual-socket Xeon testbed.
func NewTopology(pagesPerNode int) *Topology {
	return &Topology{
		Nodes: []Node{
			{ID: 0, CapacityPages: pagesPerNode},
			{ID: 1, CapacityPages: pagesPerNode},
		},
		LocalLatency:  80 * sim.Nanosecond,
		RemoteLatency: 140 * sim.Nanosecond,
		CXLLatency:    250 * sim.Nanosecond,
	}
}

// AddCXLNode appends a CPU-less memory node (a CXL expander exposed as NUMA).
func (t *Topology) AddCXLNode(pages int) {
	t.Nodes = append(t.Nodes, Node{ID: int8(len(t.Nodes)), CapacityPages: pages, CPUless: true})
}

// TotalFree reports free pages across all nodes.
func (t *Topology) TotalFree() int {
	free := 0
	for i := range t.Nodes {
		free += t.Nodes[i].Free()
	}
	return free
}

// Allocate picks a node for one page under the given policy, for a CPU on
// cpuNode. It returns the node ID, or -1 if all nodes are full.
func (t *Topology) Allocate(policy NUMAPolicy, cpuNode int8) int8 {
	pick := func(id int8) int8 {
		n := &t.Nodes[id]
		if n.Free() > 0 {
			n.UsedPages++
			return id
		}
		return -1
	}
	order := t.order(policy, cpuNode)
	for _, id := range order {
		if got := pick(id); got >= 0 {
			return got
		}
	}
	return -1
}

func (t *Topology) order(policy NUMAPolicy, cpuNode int8) []int8 {
	ids := make([]int8, 0, len(t.Nodes))
	switch policy {
	case Interleave:
		n := len(t.Nodes)
		start := t.rr % n
		t.rr++
		for i := 0; i < n; i++ {
			ids = append(ids, int8((start+i)%n))
		}
	case PreferRemote:
		for i := range t.Nodes {
			if int8(i) != cpuNode {
				ids = append(ids, int8(i))
			}
		}
		ids = append(ids, cpuNode)
	default: // BindLocal
		ids = append(ids, cpuNode)
		for i := range t.Nodes {
			if int8(i) != cpuNode {
				ids = append(ids, int8(i))
			}
		}
	}
	return ids
}

// Release returns one page to node id.
func (t *Topology) Release(id int8) {
	if id < 0 || int(id) >= len(t.Nodes) {
		panic(fmt.Sprintf("mem: release on invalid node %d", id))
	}
	n := &t.Nodes[id]
	if n.UsedPages == 0 {
		panic(fmt.Sprintf("mem: release on empty node %d", id))
	}
	n.UsedPages--
}

// AccessLatency reports the memory latency of an access from cpuNode to a
// page on memNode.
func (t *Topology) AccessLatency(cpuNode, memNode int8) sim.Duration {
	if int(memNode) < len(t.Nodes) && t.Nodes[memNode].CPUless {
		return t.CXLLatency
	}
	if cpuNode == memNode {
		return t.LocalLatency
	}
	return t.RemoteLatency
}
