package mem

import "repro/internal/units"

// Cgroup models the memory.high mechanism the paper uses to cap a task's
// local memory and force data offloading: when a page set's resident count
// exceeds the limit, reclaim must run until it fits again.
type Cgroup struct {
	// LimitPages is the resident-page ceiling (memory.high / 4 KiB).
	LimitPages int
}

// NewCgroupRatio builds a cgroup that keeps localRatio of the page set's
// footprint resident. localRatio is clamped to [0.05, 1]; the paper's "far
// memory ratio" knob spans 0–0.9 (so local ratio 0.1–1.0).
func NewCgroupRatio(ps *PageSet, localRatio float64) *Cgroup {
	if localRatio < 0.05 {
		localRatio = 0.05
	}
	if localRatio > 1 {
		localRatio = 1
	}
	limit := int(float64(ps.Len()) * localRatio)
	if limit < 1 {
		limit = 1
	}
	return &Cgroup{LimitPages: limit}
}

// LimitBytes reports memory.high in bytes.
func (c *Cgroup) LimitBytes() int64 { return int64(c.LimitPages) * units.PageSize }

// OverLimit reports how many pages must be reclaimed from ps to get back
// under the limit (0 if within the limit).
func (c *Cgroup) OverLimit(ps *PageSet) int {
	over := ps.Resident() - c.LimitPages
	if over < 0 {
		return 0
	}
	return over
}

// NeedsReclaimBeforeFault reports how many pages must be evicted before one
// more page can become resident.
func (c *Cgroup) NeedsReclaimBeforeFault(ps *PageSet) int {
	over := ps.Resident() + 1 - c.LimitPages
	if over < 0 {
		return 0
	}
	return over
}

// FarRatio reports the fraction of the page set that cannot be resident —
// the paper's "far memory ratio" for this task.
func (c *Cgroup) FarRatio(ps *PageSet) float64 {
	if ps.Len() == 0 {
		return 0
	}
	far := ps.Len() - c.LimitPages
	if far < 0 {
		return 0
	}
	return float64(far) / float64(ps.Len())
}
