package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestBucketTimelineEdges(t *testing.T) {
	b := NewBucketTimeline(sim.Millisecond)

	// A sample at exactly 0 lands in bucket 0; one at width-1ns still in
	// bucket 0; one at exactly width opens bucket 1.
	b.Add(0, 1)
	b.Add(sim.Time(sim.Millisecond)-1, 3)
	b.Add(sim.Time(sim.Millisecond), 10)

	if got := b.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := b.Count(0); got != 2 {
		t.Errorf("Count(0) = %d, want 2", got)
	}
	if got := b.BucketMean(0); got != 2 {
		t.Errorf("Mean(0) = %g, want 2", got)
	}
	if got := b.Sum(1); got != 10 {
		t.Errorf("Sum(1) = %g, want 10", got)
	}
	// Out-of-range accessors are zero, not panics.
	if b.Count(-1) != 0 || b.Count(99) != 0 || b.Sum(99) != 0 || b.BucketMean(99) != 0 {
		t.Errorf("out-of-range accessors should be 0")
	}
}

func TestBucketTimelineOutOfOrderAdds(t *testing.T) {
	ordered := NewBucketTimeline(sim.Millisecond)
	shuffled := NewBucketTimeline(sim.Millisecond)

	samples := []struct {
		at sim.Time
		v  float64
	}{
		{0, 1}, {sim.Time(3 * sim.Millisecond), 7}, {sim.Time(sim.Millisecond), 2},
		{sim.Time(2 * sim.Millisecond), 5}, {sim.Time(500 * sim.Microsecond), 3},
	}
	for _, s := range samples {
		ordered.Add(s.at, s.v)
	}
	for i := len(samples) - 1; i >= 0; i-- {
		shuffled.Add(samples[i].at, samples[i].v)
	}

	om, sm := ordered.Means(), shuffled.Means()
	if len(om) != len(sm) {
		t.Fatalf("lengths differ: %d vs %d", len(om), len(sm))
	}
	for i := range om {
		if om[i] != sm[i] {
			t.Errorf("bucket %d: ordered %g, shuffled %g", i, om[i], sm[i])
		}
	}
	if ordered.BucketMean(0) != 2 { // (1+3)/2
		t.Errorf("Mean(0) = %g, want 2", ordered.BucketMean(0))
	}
}

func TestBucketTimelineEmptyExport(t *testing.T) {
	b := NewBucketTimeline(sim.Second)
	if b.Len() != 0 {
		t.Errorf("empty Len = %d", b.Len())
	}
	if got := b.Means(); got != nil {
		t.Errorf("empty Means = %v, want nil", got)
	}
	if got := b.Spark(10); got != "" {
		t.Errorf("empty Spark = %q, want \"\"", got)
	}
}

func TestBucketTimelineCoarsening(t *testing.T) {
	b := NewBucketTimeline(sim.Millisecond)
	b.SetMaxBuckets(4)

	// Fill buckets 0..3, then force a sample into bucket 7 (index >= max):
	// the timeline must coarsen (doubling width) until it fits, preserving
	// every sample's sum and count.
	for i := 0; i < 4; i++ {
		b.Add(sim.Time(i)*sim.Time(sim.Millisecond), float64(i+1))
	}
	b.Add(sim.Time(7*sim.Millisecond), 100)

	if got := b.Width(); got != 2*sim.Millisecond {
		t.Fatalf("Width after coarsening = %v, want 2ms", got)
	}
	// Old buckets merged pairwise: {1,2} and {3,4}; the new sample lands in
	// bucket 7ms/2ms = 3.
	if got := b.Sum(0); got != 3 {
		t.Errorf("Sum(0) = %g, want 3", got)
	}
	if got := b.Sum(1); got != 7 {
		t.Errorf("Sum(1) = %g, want 7", got)
	}
	if got := b.Count(0); got != 2 {
		t.Errorf("Count(0) = %d, want 2", got)
	}
	if got := b.Sum(3); got != 100 {
		t.Errorf("Sum(3) = %g, want 100", got)
	}

	// Total mass is conserved across any number of coarsenings.
	b.Add(sim.Time(1000*sim.Millisecond), 1)
	var total float64
	var count uint64
	for i := 0; i < b.Len(); i++ {
		total += b.Sum(i)
		count += b.Count(i)
	}
	if total != 111 || count != 6 {
		t.Errorf("after deep coarsening: total %g count %d, want 111 and 6", total, count)
	}
	if b.Len() > 4 {
		t.Errorf("Len %d exceeds max buckets 4", b.Len())
	}
}

func TestBucketTimelineAggregates(t *testing.T) {
	b := NewBucketTimeline(sim.Second)

	// Empty timeline: every aggregate is zero.
	if b.Mean() != 0 || b.Integrate() != 0 || b.Peak() != 0 {
		t.Fatalf("empty aggregates: mean %g integrate %g peak %g, want all 0",
			b.Mean(), b.Integrate(), b.Peak())
	}

	// Bucket 0: samples 1,3 (mean 2); bucket 2: sample 8. Bucket 1 is empty
	// and must contribute nothing to the integral or the peak.
	b.Add(0, 1)
	b.Add(sim.Time(500*sim.Millisecond), 3)
	b.Add(sim.Time(2*sim.Second)+1, 8)

	if got := b.Mean(); got != 4 { // (1+3+8)/3
		t.Errorf("Mean = %g, want 4", got)
	}
	if got := b.Integrate(); math.Abs(got-10) > 1e-9 { // 2*1s + 8*1s
		t.Errorf("Integrate = %g, want 10", got)
	}
	if got := b.Peak(); got != 8 {
		t.Errorf("Peak = %g, want 8", got)
	}

	// Coarsening preserves the sample mean exactly and the integral up to
	// bucket-merge resolution: after pairs merge, bucket 0 holds {1,3,8}... so
	// only assert the mean, which is resolution-independent.
	b.SetMaxBuckets(2)
	b.Add(sim.Time(3*sim.Second), 8)
	if got := b.Mean(); got != 5 { // (1+3+8+8)/4
		t.Errorf("Mean after coarsening = %g, want 5", got)
	}
	if got := b.Peak(); got != 8 {
		t.Errorf("Peak after coarsening = %g, want 8", got)
	}
}

func TestBucketTimelinePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero width", func() { NewBucketTimeline(0) })
	mustPanic("negative sample", func() { NewBucketTimeline(sim.Second).Add(-1, 1) })
}

func TestMeterRateWindows(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)

	// Zero-duration guard: marks before any time elapses report rate 0.
	m.Mark(100)
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate with no elapsed time = %g, want 0", got)
	}

	// First window: 100 units over 1s.
	eng.After(sim.Second, func() {})
	eng.Run()
	if got := m.Rate(); math.Abs(got-100) > 1e-9 {
		t.Errorf("rate after 1s = %g, want 100", got)
	}

	// Second window: the same total over 4s total dilutes the rate; the
	// meter measures since its anchor, not per-interval.
	eng.After(3*sim.Second, func() {})
	eng.Run()
	if got := m.Rate(); math.Abs(got-25) > 1e-9 {
		t.Errorf("rate after 4s = %g, want 25", got)
	}

	// Reset opens a fresh window anchored now.
	m.Reset()
	if m.Total() != 0 || m.Rate() != 0 {
		t.Errorf("after Reset: total %g rate %g, want 0 0", m.Total(), m.Rate())
	}
	m.Mark(30)
	eng.After(2*sim.Second, func() {})
	eng.Run()
	if got := m.Rate(); math.Abs(got-15) > 1e-9 {
		t.Errorf("rate in fresh window = %g, want 15", got)
	}
}
