// Package metrics provides the measurement primitives used across the
// simulation: streaming summary statistics, fixed-bucket histograms, and
// rate meters driven by virtual time. These stand in for the perf/VTune/PMU
// instrumentation the paper uses on its physical testbed.
package metrics

import (
	"fmt"
	"math"
)

// Summary accumulates streaming count/mean/min/max/variance via Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count reports the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean reports the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min reports the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// Sum reports the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance reports the sample variance (n-1 denominator), or 0 for n < 2.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev reports the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Merge folds other into s, as if all of other's observations had been
// Added to s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// histSubBuckets is the number of linear sub-buckets per power-of-two value
// range. 32 sub-buckets bound the relative quantile error at 1/32 ≈ 3.1%,
// HdrHistogram's "two significant figures" regime, while keeping a histogram
// spanning nanoseconds-to-hours under ~2000 counters.
const histSubBuckets = 32

// Histogram is a log-bucketed (HDR-style) latency histogram: values are
// counted in power-of-two ranges split into histSubBuckets linear sub-buckets,
// so memory stays fixed regardless of sample count and any quantile is
// extractable with a bounded relative error (≤ 1/histSubBuckets). Histograms
// with identical bucketing (all of them — the layout is a package constant)
// merge exactly by adding counts, which is what lets the export layer combine
// per-run recorders into one distribution. Min, max, sum, and count are
// tracked exactly. The zero value is ready to use.
type Histogram struct {
	counts   []uint64 // lazily grown to the highest touched bucket
	n        uint64
	sum      float64
	min, max float64
}

// histIndex maps a value to its bucket index. Values below 1 (including
// negatives) share bucket 0; beyond that, index = octave*histSubBuckets +
// linear position within the octave, shifted by one for the underflow bucket.
func histIndex(x float64) int {
	if x < 1 || math.IsNaN(x) {
		return 0
	}
	frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
	sub := int((frac*2 - 1) * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return 1 + (exp-1)*histSubBuckets + sub
}

// histBucketValue reports the representative value for a bucket index: the
// midpoint of the bucket's value range (0 for the underflow bucket's lower
// half, since it spans [0,1)).
func histBucketValue(i int) float64 {
	if i <= 0 {
		return 0.5
	}
	i--
	exp := i / histSubBuckets
	sub := i % histSubBuckets
	lo := math.Ldexp(1+float64(sub)/histSubBuckets, exp)
	hi := math.Ldexp(1+float64(sub+1)/histSubBuckets, exp)
	return (lo + hi) / 2
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := histIndex(x)
	for len(h.counts) <= i {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
	h.n++
	h.sum += x
	if h.n == 1 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int { return int(h.n) }

// Sum reports the exact total of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min reports the exact smallest observation, or 0 with none.
func (h *Histogram) Min() float64 { return h.min }

// Max reports the exact largest observation, or 0 with none.
func (h *Histogram) Max() float64 { return h.max }

// Quantile reports the q-quantile (0 <= q <= 1) by nearest-rank over the
// bucket counts. The result is a bucket-representative value, clamped to the
// exact observed [min, max], so it carries at most 1/histSubBuckets relative
// error. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histBucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Mean reports the exact arithmetic mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Merge folds other into h, as if every observation Added to other had been
// Added to h. Exact: both histograms share the package-constant bucketing.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
}

// Buckets reports the sparse bucket contents as (index, count) pairs in
// ascending index order — the serialization surface for artifact export.
func (h *Histogram) Buckets() (idx []int, counts []uint64) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		idx = append(idx, i)
		counts = append(counts, c)
	}
	return idx, counts
}

// AddBucket reconstructs bucket contents from a serialized artifact: it adds
// count observations directly into bucket i, using the bucket representative
// value for sum/min/max bookkeeping. Combine with SetStats when the artifact
// carries exact stats.
func (h *Histogram) AddBucket(i int, count uint64) {
	if i < 0 || count == 0 {
		return
	}
	for len(h.counts) <= i {
		h.counts = append(h.counts, 0)
	}
	h.counts[i] += count
	v := histBucketValue(i)
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n += count
	h.sum += v * float64(count)
}

// SetStats overrides the exact aggregate statistics (after bucket
// reconstruction from an artifact that carries them).
func (h *Histogram) SetStats(count uint64, sum, min, max float64) {
	h.n = count
	h.sum = sum
	h.min, h.max = min, max
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}
