// Package metrics provides the measurement primitives used across the
// simulation: streaming summary statistics, fixed-bucket histograms, and
// rate meters driven by virtual time. These stand in for the perf/VTune/PMU
// instrumentation the paper uses on its physical testbed.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/min/max/variance via Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count reports the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean reports the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min reports the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// Sum reports the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance reports the sample variance (n-1 denominator), or 0 for n < 2.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev reports the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Merge folds other into s, as if all of other's observations had been
// Added to s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Histogram is a sampling reservoir with exact quantiles: it keeps every
// observation. Simulation runs are scaled down enough that exactness is
// affordable and removes estimation error from experiment output.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.samples = append(h.samples, x)
	h.sorted = false
}

// Count reports the number of observations.
func (h *Histogram) Count() int { return len(h.samples) }

// Quantile reports the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Mean reports the arithmetic mean of all observations.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range h.samples {
		sum += x
	}
	return sum / float64(len(h.samples))
}

// Reset discards all observations.
func (h *Histogram) Reset() { h.samples = h.samples[:0]; h.sorted = false }
