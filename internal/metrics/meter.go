package metrics

import "repro/internal/sim"

// Meter measures a rate (bytes/sec, ops/sec) over virtual time. Callers mark
// quantities as they occur; Rate divides the accumulated quantity by the
// elapsed virtual time since the meter's anchor — creation, or the most
// recent Reset. Resetting between experiment phases yields per-phase rates
// instead of a lifetime average.
type Meter struct {
	eng   *sim.Engine
	start sim.Time
	total float64
}

// NewMeter creates a meter anchored at the engine's current time.
func NewMeter(eng *sim.Engine) *Meter {
	return &Meter{eng: eng, start: eng.Now()}
}

// Mark adds quantity to the meter's running total.
func (m *Meter) Mark(quantity float64) { m.total += quantity }

// Total reports the accumulated quantity.
func (m *Meter) Total() float64 { return m.total }

// Rate reports total / elapsed-seconds, or 0 if no time has elapsed.
func (m *Meter) Rate() float64 {
	elapsed := m.eng.Now().Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return m.total / elapsed
}

// Reset re-anchors the meter at the current time with a zero total.
func (m *Meter) Reset() {
	m.start = m.eng.Now()
	m.total = 0
}

// Counter is a simple monotonically increasing event count with a name,
// mirroring kernel counters such as pgmajfault.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Value++ }

// Addn adds n to the counter.
func (c *Counter) Addn(n uint64) { c.Value += n }
