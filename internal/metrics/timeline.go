package metrics

import (
	"strings"

	"repro/internal/sim"
)

// Timeline samples a probe function at fixed virtual-time intervals — the
// simulation's equivalent of a monitoring agent scraping a gauge. Use it to
// watch fault rates, resident sizes, or bandwidth evolve over a run.
type Timeline struct {
	eng      *sim.Engine
	interval sim.Duration
	probe    func() float64
	samples  []float64
	stopped  bool
}

// NewTimeline starts sampling probe every interval until Stop is called or
// the engine drains.
func NewTimeline(eng *sim.Engine, interval sim.Duration, probe func() float64) *Timeline {
	if interval <= 0 {
		panic("metrics: timeline interval must be positive")
	}
	t := &Timeline{eng: eng, interval: interval, probe: probe}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		t.samples = append(t.samples, t.probe())
		t.eng.After(t.interval, tick)
	}
	eng.After(interval, tick)
	return t
}

// Stop ends sampling.
func (t *Timeline) Stop() { t.stopped = true }

// Samples returns the collected values.
func (t *Timeline) Samples() []float64 { return t.samples }

// Interval reports the sampling period.
func (t *Timeline) Interval() sim.Duration { return t.interval }

// sparkRunes are the eight sparkline levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders the samples as a unicode sparkline, downsampling (by
// bucket-mean) to at most width characters. Empty timelines render "".
func (t *Timeline) Spark(width int) string {
	return Sparkline(t.samples, width)
}

// Sparkline renders any series as a sparkline of at most width characters.
func Sparkline(samples []float64, width int) string {
	if len(samples) == 0 || width <= 0 {
		return ""
	}
	// Downsample by bucket mean.
	vals := samples
	if len(vals) > width {
		buckets := make([]float64, width)
		for i := range buckets {
			lo := i * len(vals) / width
			hi := (i + 1) * len(vals) / width
			if hi <= lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range vals[lo:hi] {
				sum += v
			}
			buckets[i] = sum / float64(hi-lo)
		}
		vals = buckets
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// DefaultMaxBuckets bounds a BucketTimeline's resolution: when a sample
// lands past the last representable bucket, the timeline coarsens (pairs of
// buckets merge, the bucket width doubles) until it fits. 512 buckets keep a
// full timeline around 4 KiB while still resolving run phases.
const DefaultMaxBuckets = 512

// BucketTimeline accumulates (time, value) samples into fixed-width
// virtual-time buckets. Unlike Timeline, which actively schedules probe
// events on an engine, a BucketTimeline is passive: call sites push samples
// whenever something interesting happens (a queue depth at submit, a link
// utilization at rebalance), in any time order — out-of-order adds land in
// the right bucket because indexing is by absolute time, not arrival.
//
// The bucket array grows on demand up to a maximum; beyond that the timeline
// coarsens itself by merging bucket pairs and doubling the width, so a run of
// any virtual length fits in bounded memory with deterministic contents.
type BucketTimeline struct {
	width      sim.Duration
	maxBuckets int
	sum        []float64
	cnt        []uint64
}

// NewBucketTimeline creates a timeline with the given initial bucket width.
func NewBucketTimeline(width sim.Duration) *BucketTimeline {
	if width <= 0 {
		panic("metrics: bucket timeline width must be positive")
	}
	return &BucketTimeline{width: width, maxBuckets: DefaultMaxBuckets}
}

// SetMaxBuckets adjusts the coarsening threshold (minimum 2). Samples already
// recorded keep their buckets until the next coarsening.
func (b *BucketTimeline) SetMaxBuckets(n int) {
	if n < 2 {
		n = 2
	}
	b.maxBuckets = n
}

// Add records value v at virtual time at. Negative times panic: the virtual
// clock starts at zero, so a negative sample is caller time arithmetic gone
// wrong.
func (b *BucketTimeline) Add(at sim.Time, v float64) {
	if at < 0 {
		panic("metrics: bucket timeline sample before time zero")
	}
	i := int(at / sim.Time(b.width))
	for i >= b.maxBuckets {
		b.coarsen()
		i = int(at / sim.Time(b.width))
	}
	for len(b.sum) <= i {
		b.sum = append(b.sum, 0)
		b.cnt = append(b.cnt, 0)
	}
	b.sum[i] += v
	b.cnt[i]++
}

// coarsen merges bucket pairs and doubles the width.
func (b *BucketTimeline) coarsen() {
	n := (len(b.sum) + 1) / 2
	for i := 0; i < n; i++ {
		s, c := b.sum[2*i], b.cnt[2*i]
		if 2*i+1 < len(b.sum) {
			s += b.sum[2*i+1]
			c += b.cnt[2*i+1]
		}
		b.sum[i], b.cnt[i] = s, c
	}
	b.sum = b.sum[:n]
	b.cnt = b.cnt[:n]
	b.width *= 2
}

// Width reports the current bucket width (grows by doubling under coarsening).
func (b *BucketTimeline) Width() sim.Duration { return b.width }

// Len reports how many buckets are populated-or-before: the index of the
// last touched bucket plus one. An empty timeline has length 0.
func (b *BucketTimeline) Len() int { return len(b.sum) }

// Count reports how many samples landed in bucket i.
func (b *BucketTimeline) Count(i int) uint64 {
	if i < 0 || i >= len(b.cnt) {
		return 0
	}
	return b.cnt[i]
}

// Sum reports the sample sum of bucket i (for rate-style timelines where
// each sample is an increment).
func (b *BucketTimeline) Sum(i int) float64 {
	if i < 0 || i >= len(b.sum) {
		return 0
	}
	return b.sum[i]
}

// BucketMean reports the sample mean of bucket i, or 0 for an empty bucket.
func (b *BucketTimeline) BucketMean(i int) float64 {
	if i < 0 || i >= len(b.sum) || b.cnt[i] == 0 {
		return 0
	}
	return b.sum[i] / float64(b.cnt[i])
}

// Means exports every bucket's mean (empty buckets as 0). Empty timelines
// export nil.
func (b *BucketTimeline) Means() []float64 {
	if len(b.sum) == 0 {
		return nil
	}
	out := make([]float64, len(b.sum))
	for i := range out {
		out[i] = b.BucketMean(i)
	}
	return out
}

// Mean reports the mean of all samples across all buckets, or 0 when empty —
// for a level-style series (utilization, queue depth) this is the run-average
// level. Aggregate accessors live here so the analysis tier never reimplements
// bucket arithmetic.
func (b *BucketTimeline) Mean() float64 {
	var sum float64
	var cnt uint64
	for i := range b.sum {
		sum += b.sum[i]
		cnt += b.cnt[i]
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Integrate reports the time integral of the bucket-mean level series in
// value-seconds: Σ BucketMean(i) × Width. For a utilization timeline this is
// the busy time; for a queue-depth timeline, the total waiting (depth ×
// seconds). Empty buckets contribute zero.
func (b *BucketTimeline) Integrate() float64 {
	var total float64
	w := b.width.Seconds()
	for i := range b.sum {
		if b.cnt[i] == 0 {
			continue
		}
		total += b.sum[i] / float64(b.cnt[i]) * w
	}
	return total
}

// Peak reports the largest bucket mean, or 0 when empty.
func (b *BucketTimeline) Peak() float64 {
	var peak float64
	for i := range b.sum {
		if b.cnt[i] == 0 {
			continue
		}
		if m := b.sum[i] / float64(b.cnt[i]); m > peak {
			peak = m
		}
	}
	return peak
}

// Spark renders the bucket means as a sparkline of at most width characters.
func (b *BucketTimeline) Spark(width int) string {
	return Sparkline(b.Means(), width)
}

// Delta converts a monotonically increasing counter series into per-sample
// increments (for turning cumulative counts into rates).
func Delta(samples []float64) []float64 {
	if len(samples) == 0 {
		return nil
	}
	out := make([]float64, len(samples))
	prev := 0.0
	for i, v := range samples {
		out[i] = v - prev
		prev = v
	}
	return out
}
