package metrics

import (
	"strings"

	"repro/internal/sim"
)

// Timeline samples a probe function at fixed virtual-time intervals — the
// simulation's equivalent of a monitoring agent scraping a gauge. Use it to
// watch fault rates, resident sizes, or bandwidth evolve over a run.
type Timeline struct {
	eng      *sim.Engine
	interval sim.Duration
	probe    func() float64
	samples  []float64
	stopped  bool
}

// NewTimeline starts sampling probe every interval until Stop is called or
// the engine drains.
func NewTimeline(eng *sim.Engine, interval sim.Duration, probe func() float64) *Timeline {
	if interval <= 0 {
		panic("metrics: timeline interval must be positive")
	}
	t := &Timeline{eng: eng, interval: interval, probe: probe}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		t.samples = append(t.samples, t.probe())
		t.eng.After(t.interval, tick)
	}
	eng.After(interval, tick)
	return t
}

// Stop ends sampling.
func (t *Timeline) Stop() { t.stopped = true }

// Samples returns the collected values.
func (t *Timeline) Samples() []float64 { return t.samples }

// Interval reports the sampling period.
func (t *Timeline) Interval() sim.Duration { return t.interval }

// sparkRunes are the eight sparkline levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders the samples as a unicode sparkline, downsampling (by
// bucket-mean) to at most width characters. Empty timelines render "".
func (t *Timeline) Spark(width int) string {
	return Sparkline(t.samples, width)
}

// Sparkline renders any series as a sparkline of at most width characters.
func Sparkline(samples []float64, width int) string {
	if len(samples) == 0 || width <= 0 {
		return ""
	}
	// Downsample by bucket mean.
	vals := samples
	if len(vals) > width {
		buckets := make([]float64, width)
		for i := range buckets {
			lo := i * len(vals) / width
			hi := (i + 1) * len(vals) / width
			if hi <= lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range vals[lo:hi] {
				sum += v
			}
			buckets[i] = sum / float64(hi-lo)
		}
		vals = buckets
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Delta converts a monotonically increasing counter series into per-sample
// increments (for turning cumulative counts into rates).
func Delta(samples []float64) []float64 {
	if len(samples) == 0 {
		return nil
	}
	out := make([]float64, len(samples))
	prev := 0.0
	for i, v := range samples {
		out[i] = v - prev
		prev = v
	}
	return out
}
