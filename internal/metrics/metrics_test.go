package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.Count() != 5 {
		t.Fatalf("count=%d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean=%v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Fatalf("variance=%v, want 2.5", s.Variance())
	}
	if math.Abs(s.Sum()-15) > 1e-9 {
		t.Fatalf("sum=%v", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

// Property: merging two summaries equals adding all observations to one.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, all Summary
		for _, x := range a {
			sa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			sb.Add(x)
			all.Add(x)
		}
		sa.Merge(&sb)
		if sa.Count() != all.Count() {
			return false
		}
		close := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-6*(1+math.Abs(x)+math.Abs(y))
		}
		return close(sa.Mean(), all.Mean()) && close(sa.Variance(), all.Variance()) &&
			sa.Min() == all.Min() && sa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// histRelErr is the log-bucketed quantile error bound: one sub-bucket width.
const histRelErr = 1.0 / histSubBuckets

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > histRelErr*c.want {
			t.Errorf("Quantile(%v)=%v, want %v ± %.1f%%", c.q, got, c.want, histRelErr*100)
		}
	}
	// Extremes are exact: min/max are tracked outside the buckets.
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Errorf("extreme quantiles (%v, %v) not exact", h.Quantile(0), h.Quantile(1))
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean=%v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 || h.Sum() != 5050 {
		t.Errorf("stats min=%v max=%v sum=%v", h.Min(), h.Max(), h.Sum())
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(5)
	_ = h.Quantile(0.5)
	h.Add(1) // a later add must be reflected by subsequent quantiles
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0)=%v after re-add, want 1", got)
	}
}

func TestHistogramFixedMemory(t *testing.T) {
	var h Histogram
	// A million samples spanning twelve decades must not grow the histogram
	// past the fixed bucket budget (≈ 64 octaves × histSubBuckets).
	for i := 0; i < 1_000_000; i++ {
		h.Add(math.Pow(10, float64(i%12)))
	}
	idx, counts := h.Buckets()
	if len(idx) != len(counts) || len(idx) == 0 {
		t.Fatalf("sparse buckets malformed: %d idx, %d counts", len(idx), len(counts))
	}
	if n := len(idx); n > 64*histSubBuckets {
		t.Errorf("populated buckets %d exceed fixed budget", n)
	}
	if h.Count() != 1_000_000 {
		t.Errorf("count=%d", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 500; i++ {
		a.Add(float64(i))
		all.Add(float64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Add(float64(i * 7))
		all.Add(float64(i * 7))
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged stats diverge: %+v vs %+v", a, all)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%v): merged %v, direct %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	// Merging into/from empty histograms is lossless.
	var empty Histogram
	empty.Merge(&a)
	if empty.Count() != a.Count() || empty.Min() != a.Min() {
		t.Error("merge into empty lost data")
	}
	before := a.Count()
	a.Merge(&Histogram{})
	if a.Count() != before {
		t.Error("merge of empty changed state")
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i) * 1.3)
	}
	idx, counts := h.Buckets()
	var back Histogram
	for i := range idx {
		back.AddBucket(idx[i], counts[i])
	}
	back.SetStats(uint64(h.Count()), h.Sum(), h.Min(), h.Max())
	if back.Count() != h.Count() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round-trip stats diverge")
	}
	for _, q := range []float64{0.1, 0.5, 0.95, 0.99} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("Quantile(%v): reconstructed %v, original %v", q, back.Quantile(q), h.Quantile(q))
		}
	}
	// AddBucket with degenerate arguments is a no-op.
	n := back.Count()
	back.AddBucket(-1, 5)
	back.AddBucket(3, 0)
	if back.Count() != n {
		t.Error("degenerate AddBucket changed state")
	}
}

// Property: any quantile of a log-bucketed histogram is within the relative
// error bound of the exact nearest-rank quantile.
func TestHistogramQuantileErrorBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		xs := make([]float64, 0, 400)
		for i := 0; i < 400; i++ {
			x := math.Exp(rng.Float64()*20) * 1e-3 // spans ~9 decades
			h.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			idx := int(math.Ceil(q*float64(len(xs)))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := xs[idx]
			got := h.Quantile(q)
			if exact >= 1 && math.Abs(got-exact) > histRelErr*exact+1e-12 {
				t.Fatalf("trial %d q=%v: got %v, exact %v (rel err %.3f)",
					trial, q, got, exact, math.Abs(got-exact)/exact)
			}
		}
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Add(3)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, qa, qb float64) bool {
		var h Histogram
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if h.Count() == 0 {
			return true
		}
		clamp := func(q float64) float64 { return math.Abs(math.Mod(q, 1)) }
		qa, qb = clamp(qa), clamp(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := h.Quantile(qa), h.Quantile(qb)
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestMeter(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	eng.At(sim.Time(sim.Second), func() { m.Mark(100) })
	eng.At(sim.Time(2*sim.Second), func() { m.Mark(100) })
	eng.Run()
	if m.Total() != 200 {
		t.Fatalf("total=%v", m.Total())
	}
	if r := m.Rate(); math.Abs(r-100) > 1e-9 {
		t.Fatalf("rate=%v, want 100/s", r)
	}
	m.Reset()
	if m.Total() != 0 || m.Rate() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "pgmajfault"}
	c.Inc()
	c.Addn(4)
	if c.Value != 5 {
		t.Fatalf("value=%d", c.Value)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" || !strings.Contains(got, "n=2") {
		t.Fatalf("String() = %q", got)
	}
}

func TestSummaryMergeEdgeCases(t *testing.T) {
	var a, b Summary
	b.Add(5)
	a.Merge(&b) // empty += nonempty
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var c Summary
	a.Merge(&c) // nonempty += empty
	if a.Count() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestTimelineSampling(t *testing.T) {
	eng := sim.NewEngine()
	v := 0.0
	tl := NewTimeline(eng, sim.Duration(10*sim.Microsecond), func() float64 { v++; return v })
	eng.RunUntil(sim.Time(100 * sim.Microsecond))
	tl.Stop()
	eng.Run()
	if n := len(tl.Samples()); n != 10 {
		t.Fatalf("samples=%d, want 10", n)
	}
	if tl.Interval() != sim.Duration(10*sim.Microsecond) {
		t.Fatal("interval wrong")
	}
	// Stop halts sampling even if the engine keeps running.
	eng2 := sim.NewEngine()
	tl2 := NewTimeline(eng2, 5, func() float64 { return 1 })
	eng2.RunUntil(20)
	tl2.Stop()
	eng2.At(100, func() {})
	eng2.Run()
	if len(tl2.Samples()) != 4 {
		t.Fatalf("post-stop samples: %d", len(tl2.Samples()))
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Fatal("degenerate sparklines should be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", s)
	}
	// Flat series renders the lowest level.
	if Sparkline([]float64{5, 5, 5}, 3) != "▁▁▁" {
		t.Fatal("flat sparkline wrong")
	}
	// Downsampling: 100 values into 10 chars.
	var many []float64
	for i := 0; i < 100; i++ {
		many = append(many, float64(i))
	}
	if got := Sparkline(many, 10); len([]rune(got)) != 10 {
		t.Fatalf("downsampled width %d", len([]rune(got)))
	}
}

func TestDelta(t *testing.T) {
	got := Delta([]float64{1, 3, 6, 10})
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta=%v", got)
		}
	}
	if Delta(nil) != nil {
		t.Fatal("nil delta")
	}
}
