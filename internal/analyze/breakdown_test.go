package analyze

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenBreakdown correlates the fixed obs golden scenario's trace into
// per-op stage breakdowns and pins them. Two layers of checking:
//
//  1. Structural invariants that must hold for ANY trace: every breakdown's
//     stages plus Unattributed sum exactly to the end-to-end duration, and
//     Unattributed is never negative (a negative value would mean a stage was
//     double-counted).
//  2. A golden file, because virtual time makes the exact nanosecond
//     attribution reproducible. Regenerate with -update after intentional
//     scenario or instrumentation changes.
func TestGoldenBreakdown(t *testing.T) {
	tr, err := ParseTraceFile(filepath.Join(obsTestdata, "scenario.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	bs := Correlate(tr)
	if len(bs) == 0 {
		t.Fatal("no correlated ops in golden trace")
	}
	retried := 0
	for i := range bs {
		b := &bs[i]
		if got := b.Attributed() + b.UnattributedNs; got != b.E2ENs {
			t.Errorf("op %d: stages sum to %d ns, e2e %d ns", b.OpID, got, b.E2ENs)
		}
		if b.UnattributedNs < 0 {
			t.Errorf("op %d: negative unattributed %d ns (stage double-counted)", b.OpID, b.UnattributedNs)
		}
		if b.UnattributedNs > 0 {
			retried++
		}
		if b.TransferNs == 0 {
			t.Errorf("op %d: no critical transfer matched", b.OpID)
		}
	}
	// The scenario injects exactly one timeout+retry; only that op carries
	// backoff/timeout time the stage chain cannot attribute. Every clean
	// single-attempt op decomposes exactly (Unattributed == 0).
	if retried != 1 {
		t.Errorf("ops with unattributed time = %d, want exactly 1 (the retried op)", retried)
	}

	got, err := json.MarshalIndent(bs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "scenario.breakdown.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("breakdown drifted from golden (run with -update if intentional)\ngot %d bytes, want %d", len(got), len(want))
	}
}

// TestBreakdownTotals cross-checks the aggregate against the per-op rows.
func TestBreakdownTotals(t *testing.T) {
	tr, err := ParseTraceFile(filepath.Join(obsTestdata, "scenario.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	bs := Correlate(tr)
	tot := Totals(bs)
	if tot.Ops != len(bs) {
		t.Fatalf("Ops = %d, want %d", tot.Ops, len(bs))
	}
	var e2e, attr int64
	for i := range bs {
		e2e += bs[i].E2ENs
		attr += bs[i].Attributed()
	}
	if tot.E2ENs != e2e {
		t.Fatalf("E2E total = %d, want %d", tot.E2ENs, e2e)
	}
	if got := tot.QueueNs + tot.ArbitrateNs + tot.TransferNs + tot.HostCopyNs; got != attr {
		t.Fatalf("attributed total = %d, want %d", got, attr)
	}
	if tot.E2ENs != attr+tot.UnattributedNs {
		t.Fatalf("totals do not close: e2e %d, attributed %d, unattributed %d",
			tot.E2ENs, attr, tot.UnattributedNs)
	}
}

// TestAttachStages exercises the stage-histogram family on the golden trace.
func TestAttachStages(t *testing.T) {
	tr, err := ParseTraceFile(filepath.Join(obsTestdata, "scenario.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	bs := Correlate(tr)
	m, err := ParseMetricsFile(filepath.Join(obsTestdata, "scenario.metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(m, "golden")
	s.AttachStages(bs)
	if s.Stages == nil || s.Stages.Ops != len(bs) {
		t.Fatalf("stages not attached: %+v", s.Stages)
	}
	found := false
	for i := range s.Hists {
		if s.Hists[i].Name == "stage/e2e" {
			found = true
			if s.Hists[i].Count != uint64(len(bs)) {
				t.Fatalf("stage/e2e count = %d, want %d", s.Hists[i].Count, len(bs))
			}
		}
	}
	if !found {
		t.Fatal("stage/e2e histogram missing after AttachStages")
	}
	for i := 1; i < len(s.Hists); i++ {
		if s.Hists[i-1].Name >= s.Hists[i].Name {
			t.Fatalf("hists unsorted after AttachStages: %q before %q",
				s.Hists[i-1].Name, s.Hists[i].Name)
		}
	}
}
