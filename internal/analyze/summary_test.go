package analyze

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestSummarizeCSVAndJSONIdentical(t *testing.T) {
	csvM, err := ParseMetricsFile(filepath.Join(obsTestdata, "scenario.metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	jsonM, err := ParseMetricsFile(filepath.Join(obsTestdata, "scenario.metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Summarize(csvM, "golden").Render()
	if err != nil {
		t.Fatal(err)
	}
	js, err := Summarize(jsonM, "golden").Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs, js) {
		t.Fatalf("summaries diverge between CSV and JSON sources:\n--- csv ---\n%s\n--- json ---\n%s", cs, js)
	}
}

func TestSummarizeContents(t *testing.T) {
	m, err := ParseMetricsFile(filepath.Join(obsTestdata, "scenario.metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(m, "golden")
	if s.Schema != SummarySchema || s.Source != MetricsSchemaWant || s.Label != "golden" {
		t.Fatalf("header fields: %+v", s)
	}
	byName := map[string]*HistStats{}
	for i := range s.Hists {
		byName[s.Hists[i].Name] = &s.Hists[i]
	}
	for _, want := range []string{"dev/ssd0/read", "dev/ssd0/issue", "pcie/alloc-wait"} {
		if byName[want] == nil {
			t.Fatalf("summary missing hist %q (have %d hists)", want, len(s.Hists))
		}
	}
	issue := byName["dev/ssd0/issue"]
	if issue.Count == 0 || issue.P99 < issue.P50 || issue.Max < issue.P99 {
		t.Fatalf("issue hist not ordered: %+v", issue)
	}
	for i := 1; i < len(s.Hists); i++ {
		if s.Hists[i-1].Name >= s.Hists[i].Name {
			t.Fatalf("hists not sorted: %q before %q", s.Hists[i-1].Name, s.Hists[i].Name)
		}
	}
	for _, u := range s.Utils {
		if u.Idle < 0 || u.Idle > 1 {
			t.Fatalf("idle fraction out of range: %+v", u)
		}
		if u.Peak < u.Mean {
			t.Fatalf("peak below mean: %+v", u)
		}
	}
}

func mkSummary(p99s map[string]float64) *Summary {
	s := &Summary{Schema: SummarySchema, Source: MetricsSchemaWant}
	for name, v := range p99s {
		s.Hists = append(s.Hists, HistStats{Name: name, Count: 100,
			Sum: v * 50, Min: v / 2, Max: v, Mean: v * 0.7, P50: v / 2, P95: v * 0.9, P99: v})
	}
	return s
}

func TestDiffIdenticalClean(t *testing.T) {
	old := mkSummary(map[string]float64{"a": 1000, "b": 2000})
	res, err := Diff(old, mkSummary(map[string]float64{"a": 1000, "b": 2000}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("identical summaries flagged: %+v", regs)
	}
	if len(res.Deltas) != 10 { // 2 hists × 5 stats
		t.Fatalf("deltas = %d, want 10", len(res.Deltas))
	}
	if len(res.OnlyOld)+len(res.OnlyNew) != 0 {
		t.Fatalf("coverage drift on identical inputs: %+v %+v", res.OnlyOld, res.OnlyNew)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := mkSummary(map[string]float64{"a": 1000})
	res, err := Diff(old, mkSummary(map[string]float64{"a": 1100}), DiffOptions{Rel: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	regs := res.Regressions()
	if len(regs) == 0 {
		t.Fatal("10% p99 regression not flagged at rel=0.05")
	}
	for _, r := range regs {
		if r.Ratio < 1.05 {
			t.Fatalf("flagged delta below threshold: %+v", r)
		}
	}
	// The same delta passes under a looser threshold.
	res, err = Diff(old, mkSummary(map[string]float64{"a": 1100}), DiffOptions{Rel: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("10%% delta flagged at rel=0.2: %+v", regs)
	}
}

func TestDiffImprovementNotFlagged(t *testing.T) {
	res, err := Diff(mkSummary(map[string]float64{"a": 1000}),
		mkSummary(map[string]float64{"a": 500}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old := mkSummary(map[string]float64{"a": 0})
	res, err := Diff(old, mkSummary(map[string]float64{"a": 100}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regs := res.Regressions()
	if len(regs) == 0 {
		t.Fatal("zero->nonzero not flagged")
	}
	if !math.IsInf(regs[0].Ratio, 1) {
		t.Fatalf("ratio = %g, want +Inf", regs[0].Ratio)
	}
	res, err = Diff(old, mkSummary(map[string]float64{"a": 0}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("zero->zero flagged: %+v", regs)
	}
}

func TestDiffCoverageDrift(t *testing.T) {
	res, err := Diff(mkSummary(map[string]float64{"a": 1, "gone": 2}),
		mkSummary(map[string]float64{"a": 1, "new": 3}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OnlyOld) != 1 || res.OnlyOld[0] != "gone" {
		t.Fatalf("OnlyOld = %v", res.OnlyOld)
	}
	if len(res.OnlyNew) != 1 || res.OnlyNew[0] != "new" {
		t.Fatalf("OnlyNew = %v", res.OnlyNew)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("coverage drift alone flagged: %+v", regs)
	}
}

func TestDiffSchemaMismatch(t *testing.T) {
	old := mkSummary(map[string]float64{"a": 1})
	new_ := mkSummary(map[string]float64{"a": 1})
	new_.Source = "xdm-metrics/3"
	if _, err := Diff(old, new_, DiffOptions{}); err == nil {
		t.Fatal("source schema mismatch not refused")
	}
}
