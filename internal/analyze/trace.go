package analyze

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Span is one parsed "X" trace event, with timestamps converted back to
// whole nanoseconds (the exporter renders microseconds at nanosecond
// precision, so the round trip is exact).
type Span struct {
	Run    int // trace pid
	Track  string
	Name   string
	TsNs   int64
	DurNs  int64
	OpID   uint64 // parsed from the "op=N" Detail field; 0 = uncorrelated
	Stripe int    // "s=I" stripe index, -1 when absent
}

// EndNs reports the span's end timestamp.
func (s *Span) EndNs() int64 { return s.TsNs + s.DurNs }

// Trace is a parsed Chrome trace-event artifact, reduced to the complete
// spans the stage correlator consumes.
type Trace struct {
	Spans []Span
	// RunLabels maps pid to the exported process name.
	RunLabels map[int]string
}

// ParseTrace parses a Chrome trace-event JSON document produced by
// obs.WriteTrace. Metadata events resolve (pid, tid) to track names; instant
// and counter events are skipped.
func ParseTrace(data []byte) (*Trace, error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Name   string `json:"name"`
				Detail string `json:"detail"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("analyze: trace JSON: %w", err)
	}
	tr := &Trace{RunLabels: map[int]string{}}
	type key struct{ pid, tid int }
	trackName := map[key]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			switch ev.Name {
			case "thread_name":
				trackName[key{ev.Pid, ev.Tid}] = ev.Args.Name
			case "process_name":
				tr.RunLabels[ev.Pid] = ev.Args.Name
			}
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		op, stripe := parseOpDetail(ev.Args.Detail)
		tr.Spans = append(tr.Spans, Span{
			Run:    ev.Pid,
			Track:  trackName[key{ev.Pid, ev.Tid}],
			Name:   ev.Name,
			TsNs:   usToNs(ev.Ts),
			DurNs:  usToNs(ev.Dur),
			OpID:   op,
			Stripe: stripe,
		})
	}
	return tr, nil
}

// ParseTraceFile reads and parses the trace at path.
func ParseTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := ParseTrace(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// usToNs converts an exported microsecond stamp back to nanoseconds.
func usToNs(us float64) int64 { return int64(math.Round(us * 1e3)) }

// parseOpDetail extracts the obs.DetailOp fields: "op=N" and optional "s=I".
func parseOpDetail(detail string) (op uint64, stripe int) {
	stripe = -1
	if !strings.HasPrefix(detail, "op=") {
		return 0, -1
	}
	rest := detail[len("op="):]
	numEnd := strings.IndexByte(rest, ' ')
	num := rest
	if numEnd >= 0 {
		num = rest[:numEnd]
		if s, ok := strings.CutPrefix(rest[numEnd+1:], "s="); ok {
			if v, err := strconv.Atoi(s); err == nil {
				stripe = v
			}
		}
	}
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, -1
	}
	return v, stripe
}

// StageBreakdown is the exact latency decomposition of one swap operation,
// assembled by correlating its "op=N" spans across the swap, device, and
// backend layers. All fields are nanoseconds. The four category fields plus
// Unattributed sum to E2E by construction.
//
// Category mapping:
//
//	Queue     — admission-channel wait (stage/queue) + device channel wait
//	Arbitrate — frontend overhead + backend issue (width management) +
//	            device base service latency ("arbitrate")
//	Transfer  — fabric streaming of the critical stripe
//	HostCopy  — hierarchical host-stage sojourn (stage/host-copy)
//
// For striped extents the device stages of the critical stripe — the one
// whose transfer finishes last, which is what the op's completion waits on —
// are charged; sibling stripes overlap it entirely. Anything the categories
// do not cover (retry backoff, timeout windows, fail-fast aborts) lands in
// Unattributed rather than silently inflating a stage.
type StageBreakdown struct {
	OpID  uint64 `json:"op"`
	Run   int    `json:"run"`
	Name  string `json:"name"` // swapin or swapout
	Track string `json:"track"`
	TsNs  int64  `json:"ts_ns"`
	E2ENs int64  `json:"e2e_ns"`

	QueueNs        int64 `json:"queue_ns"`
	ArbitrateNs    int64 `json:"arbitrate_ns"`
	TransferNs     int64 `json:"transfer_ns"`
	HostCopyNs     int64 `json:"host_copy_ns"`
	UnattributedNs int64 `json:"unattributed_ns"`
}

// Attributed reports the sum of the four named stages.
func (b *StageBreakdown) Attributed() int64 {
	return b.QueueNs + b.ArbitrateNs + b.TransferNs + b.HostCopyNs
}

// Correlate stitches per-op spans into stage breakdowns, one per swap
// operation that completed (has a swapin/swapout end-to-end span). Results
// are ordered by (run, op id).
func Correlate(tr *Trace) []StageBreakdown {
	type opKey struct {
		run int
		op  uint64
	}
	byOp := map[opKey][]*Span{}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if s.OpID != 0 {
			byOp[opKey{s.Run, s.OpID}] = append(byOp[opKey{s.Run, s.OpID}], s)
		}
	}
	var out []StageBreakdown
	for k, spans := range byOp {
		var e2e *Span
		for _, s := range spans {
			if s.Name == "swapin" || s.Name == "swapout" {
				e2e = s
				break
			}
		}
		if e2e == nil {
			continue // op never completed (failed through without a span)
		}
		b := StageBreakdown{OpID: k.op, Run: k.run, Name: e2e.Name,
			Track: e2e.Track, TsNs: e2e.TsNs, E2ENs: e2e.DurNs}

		// Per-op stages recorded exactly once: admission queue, frontend
		// overhead, and the hierarchical host sojourn. (Retries re-run the
		// backend, not these.)
		for _, s := range spans {
			switch s.Name {
			case "stage/queue":
				b.QueueNs += s.DurNs
			case "stage/frontend":
				b.ArbitrateNs += s.DurNs
			case "stage/host-copy":
				b.HostCopyNs += s.DurNs
			}
		}

		// The critical stripe: its transfer ends exactly when the backend
		// completes the extent (the op's completion waits on it). Retried
		// attempts reuse the op id, so take the latest transfer that does
		// not outlast the e2e span — later ones are abandoned-attempt
		// stragglers the initiator never saw.
		var critical *Span
		for _, s := range spans {
			if s.Name != "transfer" || s.EndNs() > e2e.EndNs() {
				continue
			}
			if critical == nil || s.EndNs() > critical.EndNs() ||
				(s.EndNs() == critical.EndNs() && s.TsNs > critical.TsNs) {
				critical = s
			}
		}
		// Chain backwards through the critical attempt's contiguous device
		// stages: arbitrate ends where the transfer starts, wait ends where
		// arbitrate starts, the backend's issue span ends where the device
		// op was submitted (wait start). Virtual-time abutment is exact, and
		// the µs-with-ns-precision export round-trips exactly, so equality
		// (not tolerance) is the correct join.
		if critical != nil {
			b.TransferNs = critical.DurNs
			arb := chainPrev(spans, "arbitrate", critical.Track, critical.Stripe, critical.TsNs)
			if arb != nil {
				b.ArbitrateNs += arb.DurNs
				wait := chainPrev(spans, "wait", critical.Track, critical.Stripe, arb.TsNs)
				if wait != nil {
					b.QueueNs += wait.DurNs
					if issue := chainPrev(spans, "issue", critical.Track, -1, wait.TsNs); issue != nil {
						b.ArbitrateNs += issue.DurNs
					}
				}
			}
		}
		b.UnattributedNs = b.E2ENs - b.Attributed()
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].OpID < out[j].OpID
	})
	return out
}

// chainPrev finds the span of the given name on track whose end abuts endNs
// (and, when stripe >= 0, whose stripe index matches). Used to walk one
// attempt's contiguous stage chain backwards.
func chainPrev(spans []*Span, name, track string, stripe int, endNs int64) *Span {
	for _, s := range spans {
		if s.Name == name && s.Track == track && s.EndNs() == endNs &&
			(stripe < 0 || s.Stripe == stripe) {
			return s
		}
	}
	return nil
}

// StageTotals aggregates breakdowns into per-category totals — the critical
// path summary of where swap time goes.
type StageTotals struct {
	Ops            int   `json:"ops"`
	E2ENs          int64 `json:"e2e_ns"`
	QueueNs        int64 `json:"queue_ns"`
	ArbitrateNs    int64 `json:"arbitrate_ns"`
	TransferNs     int64 `json:"transfer_ns"`
	HostCopyNs     int64 `json:"host_copy_ns"`
	UnattributedNs int64 `json:"unattributed_ns"`
}

// Totals sums a set of breakdowns.
func Totals(bs []StageBreakdown) StageTotals {
	var t StageTotals
	for i := range bs {
		b := &bs[i]
		t.Ops++
		t.E2ENs += b.E2ENs
		t.QueueNs += b.QueueNs
		t.ArbitrateNs += b.ArbitrateNs
		t.TransferNs += b.TransferNs
		t.HostCopyNs += b.HostCopyNs
		t.UnattributedNs += b.UnattributedNs
	}
	return t
}
