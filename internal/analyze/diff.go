package analyze

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DiffOptions controls regression gating.
type DiffOptions struct {
	// Rel is the relative degradation tolerated before a metric delta is
	// flagged as a regression: new > old*(1+Rel) regresses. Defaults to
	// 0.05 when zero or negative.
	Rel float64
}

// diffEpsilon absorbs float round-off in old*(1+rel): deltas within one
// part in 1e9 of the threshold never flag.
const diffEpsilon = 1e-9

// Delta is one compared metric between two summaries.
type Delta struct {
	Name      string // "<hist>/<stat>", e.g. "dev/ssd0/read/p99"
	Old       float64
	New       float64
	Ratio     float64 // New/Old; +Inf when Old == 0 and New > 0, 1 when both 0
	Regressed bool
}

// DiffResult is the comparison of two latency summaries.
type DiffResult struct {
	Deltas []Delta
	// OnlyOld / OnlyNew list histogram names present in one summary only.
	// Disappearing metrics do not gate; appearing ones do not either — the
	// gate compares like with like and reports coverage drift separately.
	OnlyOld []string
	OnlyNew []string
}

// Regressions returns the flagged deltas.
func (d *DiffResult) Regressions() []Delta {
	var out []Delta
	for _, dl := range d.Deltas {
		if dl.Regressed {
			out = append(out, dl)
		}
	}
	return out
}

// gatedStats are the per-histogram statistics compared by Diff. Counts are
// deliberately not gated: deterministic reruns match exactly anyway, and
// intentional workload changes refresh the baseline.
var gatedStats = []struct {
	name string
	get  func(*HistStats) float64
}{
	{"p50", func(h *HistStats) float64 { return h.P50 }},
	{"p95", func(h *HistStats) float64 { return h.P95 }},
	{"p99", func(h *HistStats) float64 { return h.P99 }},
	{"max", func(h *HistStats) float64 { return h.Max }},
	{"mean", func(h *HistStats) float64 { return h.Mean }},
}

// Diff compares two latency summaries metric by metric. Higher is worse for
// every gated statistic (they are all latencies). The two summaries must
// carry the same source schema; comparing artifacts exported by different
// metrics schema versions is refused.
func Diff(old, new *Summary, opts DiffOptions) (*DiffResult, error) {
	if old.Source != "" && new.Source != "" && old.Source != new.Source {
		return nil, fmt.Errorf("analyze: source schema mismatch: baseline %q vs candidate %q", old.Source, new.Source)
	}
	rel := opts.Rel
	if rel <= 0 {
		rel = 0.05
	}
	oldByName := map[string]*HistStats{}
	for i := range old.Hists {
		oldByName[old.Hists[i].Name] = &old.Hists[i]
	}
	newByName := map[string]*HistStats{}
	for i := range new.Hists {
		newByName[new.Hists[i].Name] = &new.Hists[i]
	}
	res := &DiffResult{}
	for name := range oldByName {
		if _, ok := newByName[name]; !ok {
			res.OnlyOld = append(res.OnlyOld, name)
		}
	}
	for name := range newByName {
		if _, ok := oldByName[name]; !ok {
			res.OnlyNew = append(res.OnlyNew, name)
		}
	}
	sort.Strings(res.OnlyOld)
	sort.Strings(res.OnlyNew)

	names := make([]string, 0, len(oldByName))
	for name := range oldByName {
		if _, ok := newByName[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		oh, nh := oldByName[name], newByName[name]
		for _, st := range gatedStats {
			ov, nv := st.get(oh), st.get(nh)
			d := Delta{Name: name + "/" + st.name, Old: ov, New: nv}
			switch {
			case ov == 0 && nv == 0:
				d.Ratio = 1
			case ov == 0:
				d.Ratio = math.Inf(1)
				d.Regressed = true
			default:
				d.Ratio = nv / ov
				d.Regressed = nv > ov*(1+rel)+diffEpsilon
			}
			res.Deltas = append(res.Deltas, d)
		}
	}
	return res, nil
}

// Render formats the diff as an aligned text table; when onlyChanged is set,
// deltas with identical old/new values are elided.
func (d *DiffResult) Render(onlyChanged bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	for _, dl := range d.Deltas {
		if onlyChanged && dl.Old == dl.New {
			continue
		}
		flag := ""
		if dl.Regressed {
			flag = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-44s %14.0f %14.0f %8.3f%s\n", dl.Name, dl.Old, dl.New, dl.Ratio, flag)
	}
	for _, name := range d.OnlyOld {
		fmt.Fprintf(&b, "%-44s only in baseline\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Fprintf(&b, "%-44s only in candidate\n", name)
	}
	return b.String()
}
