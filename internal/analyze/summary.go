package analyze

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/metrics"
)

// SummarySchema versions the latency-summary artifact — the compact,
// regression-gateable reduction of a run that xdmbench emits and CI
// baselines commit. Bump when fields change meaning.
const SummarySchema = "xdm-latency-summary/1"

// HistStats is the summary of one latency distribution.
type HistStats struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// UtilStats is the summary of one level-style timeline (utilization,
// queue depth): run-average level, peak bucket level, the idle fraction
// (buckets at level zero), and the time integral in value-seconds.
type UtilStats struct {
	Name     string  `json:"name"`
	Mean     float64 `json:"mean"`
	Peak     float64 `json:"peak"`
	Idle     float64 `json:"idle"`
	Integral float64 `json:"integral"`
}

// Summary is the latency-summary artifact: merged histograms, timeline
// aggregates, and (when a trace was available) the stage attribution totals.
type Summary struct {
	Schema string `json:"schema"`
	// Source records the schema of the artifact the summary was reduced
	// from, so diff can refuse cross-version comparisons.
	Source string       `json:"source_schema,omitempty"`
	Label  string       `json:"label,omitempty"`
	Hists  []HistStats  `json:"hists"`
	Utils  []UtilStats  `json:"utils"`
	Stages *StageTotals `json:"stages,omitempty"`
}

// Summarize reduces a parsed metrics artifact to a Summary: histograms of
// the same name across runs merge exactly (shared log-bucket layout);
// level-style timelines reduce via the BucketTimeline aggregate accessors.
func Summarize(m *Metrics, label string) *Summary {
	s := &Summary{Schema: SummarySchema, Source: m.Schema, Label: label}
	merged := m.mergedHists()
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := merged[name]
		s.Hists = append(s.Hists, HistStats{
			Name:  name,
			Count: uint64(h.Count()),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}

	// Timelines do not merge across runs (each run has its own virtual
	// clock); aggregate each and average the aggregates weighted equally.
	type utilAccum struct {
		mean, peak, idle, integral float64
		n                          int
	}
	utils := map[string]*utilAccum{}
	for _, r := range m.Runs {
		for name, t := range r.Timelines {
			a := utils[name]
			if a == nil {
				a = &utilAccum{}
				utils[name] = a
			}
			a.n++
			a.mean += t.TL.Mean()
			if p := t.TL.Peak(); p > a.peak {
				a.peak = p
			}
			a.integral += t.TL.Integrate()
			if t.Len > 0 {
				a.idle += 1 - float64(activeBuckets(t))/float64(t.Len)
			}
		}
	}
	utilNames := make([]string, 0, len(utils))
	for name := range utils {
		utilNames = append(utilNames, name)
	}
	sort.Strings(utilNames)
	for _, name := range utilNames {
		a := utils[name]
		s.Utils = append(s.Utils, UtilStats{
			Name:     name,
			Mean:     a.mean / float64(a.n),
			Peak:     a.peak,
			Idle:     a.idle / float64(a.n),
			Integral: a.integral,
		})
	}
	return s
}

// activeBuckets counts buckets with a non-zero level. Empty (never-sampled)
// buckets and sampled-at-zero buckets both count as idle.
func activeBuckets(t *Timeline) int {
	n := 0
	for i := 0; i < t.TL.Len(); i++ {
		if t.TL.Count(i) > 0 && t.TL.BucketMean(i) != 0 {
			n++
		}
	}
	return n
}

// AttachStages adds the stage attribution totals from correlated trace
// breakdowns to the summary, plus a per-stage latency histogram family
// (stage/e2e, stage/queue, ...) so quantiles of each stage are gateable too.
func (s *Summary) AttachStages(bs []StageBreakdown) {
	t := Totals(bs)
	s.Stages = &t
	stageHists := map[string]*metrics.Histogram{
		"stage/e2e":          {},
		"stage/queue":        {},
		"stage/arbitrate":    {},
		"stage/transfer":     {},
		"stage/host-copy":    {},
		"stage/unattributed": {},
	}
	for i := range bs {
		b := &bs[i]
		stageHists["stage/e2e"].Add(float64(b.E2ENs))
		stageHists["stage/queue"].Add(float64(b.QueueNs))
		stageHists["stage/arbitrate"].Add(float64(b.ArbitrateNs))
		stageHists["stage/transfer"].Add(float64(b.TransferNs))
		stageHists["stage/host-copy"].Add(float64(b.HostCopyNs))
		stageHists["stage/unattributed"].Add(float64(b.UnattributedNs))
	}
	names := make([]string, 0, len(stageHists))
	for name := range stageHists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := stageHists[name]
		if h.Count() == 0 {
			continue
		}
		s.Hists = append(s.Hists, HistStats{
			Name:  name,
			Count: uint64(h.Count()),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
}

// Render serializes the summary as indented JSON with a trailing newline —
// the committed-baseline form (stable key order via struct fields).
func (s *Summary) Render() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFile renders the summary to path.
func (s *Summary) WriteFile(path string) error {
	data, err := s.Render()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ParseSummary parses a latency-summary artifact and validates its schema.
func ParseSummary(data []byte) (*Summary, error) {
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("analyze: summary JSON: %w", err)
	}
	if s.Schema != SummarySchema {
		return nil, fmt.Errorf("analyze: summary schema %q, want %q", s.Schema, SummarySchema)
	}
	return &s, nil
}
