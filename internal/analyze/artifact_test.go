package analyze

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const obsTestdata = "../obs/testdata"

func TestParseMetricsCSVAndJSONAgree(t *testing.T) {
	csvM, err := ParseMetricsFile(filepath.Join(obsTestdata, "scenario.metrics.csv"))
	if err != nil {
		t.Fatalf("parse CSV: %v", err)
	}
	jsonM, err := ParseMetricsFile(filepath.Join(obsTestdata, "scenario.metrics.json"))
	if err != nil {
		t.Fatalf("parse JSON: %v", err)
	}
	if csvM.Schema != MetricsSchemaWant || jsonM.Schema != MetricsSchemaWant {
		t.Fatalf("schemas = %q, %q, want %q", csvM.Schema, jsonM.Schema, MetricsSchemaWant)
	}
	if len(csvM.Runs) != 1 || len(jsonM.Runs) != 1 {
		t.Fatalf("runs = %d, %d, want 1 each", len(csvM.Runs), len(jsonM.Runs))
	}
	cr, jr := csvM.Runs[0], jsonM.Runs[0]
	if cr.Label != "golden" || jr.Label != "golden" {
		t.Fatalf("labels = %q, %q", cr.Label, jr.Label)
	}
	if len(cr.Hists) == 0 || len(cr.Hists) != len(jr.Hists) {
		t.Fatalf("hist count: csv %d, json %d", len(cr.Hists), len(jr.Hists))
	}
	for name, ch := range cr.Hists {
		jh, ok := jr.Hists[name]
		if !ok {
			t.Fatalf("hist %q missing from JSON parse", name)
		}
		if ch.Count() != jh.Count() || ch.Sum() != jh.Sum() ||
			ch.Min() != jh.Min() || ch.Max() != jh.Max() {
			t.Errorf("hist %q stats differ: csv (%d,%g,%g,%g) json (%d,%g,%g,%g)",
				name, ch.Count(), ch.Sum(), ch.Min(), ch.Max(),
				jh.Count(), jh.Sum(), jh.Min(), jh.Max())
		}
		if ch.Quantile(0.99) != jh.Quantile(0.99) {
			t.Errorf("hist %q p99 differs: %g vs %g", name, ch.Quantile(0.99), jh.Quantile(0.99))
		}
	}
	if len(cr.Counters) != len(jr.Counters) {
		t.Fatalf("counter count: csv %d, json %d", len(cr.Counters), len(jr.Counters))
	}
	for name, v := range cr.Counters {
		if jr.Counters[name] != v {
			t.Errorf("counter %q: csv %g json %g", name, v, jr.Counters[name])
		}
	}
	if len(cr.Timelines) != len(jr.Timelines) {
		t.Fatalf("timeline count: csv %d, json %d", len(cr.Timelines), len(jr.Timelines))
	}
	for name, ct := range cr.Timelines {
		jt, ok := jr.Timelines[name]
		if !ok {
			t.Fatalf("timeline %q missing from JSON parse", name)
		}
		if ct.TL.Mean() != jt.TL.Mean() || ct.TL.Peak() != jt.TL.Peak() {
			t.Errorf("timeline %q aggregates differ: mean %g/%g peak %g/%g",
				name, ct.TL.Mean(), jt.TL.Mean(), ct.TL.Peak(), jt.TL.Peak())
		}
	}
}

// MetricsSchemaWant pins the metrics schema the parser was written against;
// kept here (not imported from obs) so the test also catches accidental
// drift between the exporter constant and the committed goldens.
const MetricsSchemaWant = "xdm-metrics/2"

func TestParseMetricsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"json garbage":   "{not json",
		"csv no header":  "0,counter,x,,1\n",
		"csv bad column": "run,type,name,key,value\n0,counter,x\n",
		"csv bad type":   "run,type,name,key,value\n0,mystery,x,,1\n",
	}
	for name, data := range cases {
		if _, err := ParseMetrics([]byte(data)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestSchemaOf(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"json", `{"schema":"xdm-metrics/2","runs":[]}`, "xdm-metrics/2"},
		{"summary", `{"schema":"xdm-latency-summary/1"}`, "xdm-latency-summary/1"},
		{"csv v2", "# schema: xdm-metrics/2\nrun,type,name,key,value\n", "xdm-metrics/2"},
		{"csv v1", "run,type,name,key,value\n", "xdm-metrics/1"},
		{"garbage", "hello world", ""},
		{"bad json", "{nope", ""},
	}
	for _, c := range cases {
		if got := SchemaOf([]byte(c.data)); got != c.want {
			t.Errorf("%s: SchemaOf = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestParseMetricsFileMissing(t *testing.T) {
	if _, err := ParseMetricsFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestParseTraceErrors(t *testing.T) {
	if _, err := ParseTrace([]byte("not json")); err == nil {
		t.Fatal("expected error for garbage trace")
	}
	if _, err := ParseTraceFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}

func TestParseOpDetail(t *testing.T) {
	cases := []struct {
		detail string
		op     uint64
		stripe int
	}{
		{"", 0, -1},
		{"flap", 0, -1},
		{"op=7", 7, -1},
		{"op=12 s=3", 12, 3},
		{"op=12 s=x", 12, -1},
		{"op=bad", 0, -1},
	}
	for _, c := range cases {
		op, stripe := parseOpDetail(c.detail)
		if op != c.op || stripe != c.stripe {
			t.Errorf("parseOpDetail(%q) = (%d,%d), want (%d,%d)", c.detail, op, stripe, c.op, c.stripe)
		}
	}
}

// writeTemp writes data to a temp file and returns its path.
func writeTemp(t *testing.T, name, data string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseSummaryRoundTrip(t *testing.T) {
	s := &Summary{Schema: SummarySchema, Source: "xdm-metrics/2", Label: "x",
		Hists: []HistStats{{Name: "a", Count: 1, Sum: 2, Min: 2, Max: 2, Mean: 2, P50: 2, P95: 2, P99: 2}}}
	data, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "x" || len(got.Hists) != 1 || got.Hists[0].P99 != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !strings.Contains(string(data), `"schema": "`+SummarySchema+`"`) {
		t.Fatalf("rendered summary missing schema: %s", data)
	}
	if _, err := ParseSummary([]byte(`{"schema":"xdm-latency-summary/99"}`)); err == nil {
		t.Fatal("expected schema error")
	}
	if _, err := ParseSummary([]byte(`{broken`)); err == nil {
		t.Fatal("expected JSON error")
	}
}
