// Package analyze is the post-run analysis tier over the obs export formats:
// it parses metrics artifacts (CSV or JSON) and Chrome trace-event files,
// reconstructs histograms and timelines, correlates per-op spans into exact
// stage breakdowns, reduces everything to a compact latency summary, and
// diffs two summaries for regression gating. cmd/xdmtrace is its CLI.
//
// The package deliberately reuses the measurement primitives in
// internal/metrics (Histogram bucket reconstruction, BucketTimeline
// aggregate accessors) instead of re-deriving quantile or bucket math — the
// artifact is a serialization of those types, not a foreign schema.
package analyze

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Run is one recorder's worth of parsed metrics.
type Run struct {
	Run       int
	Label     string
	Counters  map[string]float64
	Gauges    map[string]float64
	Hists     map[string]*metrics.Histogram
	Timelines map[string]*Timeline
}

// Timeline is a parsed bucketed series, reconstructed into a BucketTimeline
// so the aggregate accessors (Mean/Peak/Integrate) apply directly.
type Timeline struct {
	Name    string
	Mode    string // "mean" or "sum"
	WidthNs int64
	TL      *metrics.BucketTimeline
	// Filled tracks the populated bucket indices, for idle-fraction math.
	Filled int
	Len    int
}

// Metrics is a parsed metrics artifact.
type Metrics struct {
	Schema string
	Runs   []*Run
}

func newRun(id int) *Run {
	return &Run{
		Run:       id,
		Counters:  map[string]float64{},
		Gauges:    map[string]float64{},
		Hists:     map[string]*metrics.Histogram{},
		Timelines: map[string]*Timeline{},
	}
}

// ParseMetrics parses a metrics artifact from raw bytes, auto-detecting the
// format: JSON (WriteMetricsJSON) or CSV (WriteMetricsCSV).
func ParseMetrics(data []byte) (*Metrics, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if trimmed == "" {
		return nil, fmt.Errorf("analyze: empty metrics artifact")
	}
	if trimmed[0] == '{' {
		return parseMetricsJSON([]byte(trimmed))
	}
	return parseMetricsCSV(trimmed)
}

// ParseMetricsFile reads and parses the metrics artifact at path.
func ParseMetricsFile(path string) (*Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseMetrics(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// jsonHist mirrors the per-run hist object in WriteMetricsJSON.
type jsonHist struct {
	Name    string  `json:"name"`
	Count   uint64  `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Buckets []struct {
		I int    `json:"i"`
		C uint64 `json:"c"`
	} `json:"buckets"`
}

func (jh *jsonHist) reconstruct() *metrics.Histogram {
	h := &metrics.Histogram{}
	for _, b := range jh.Buckets {
		h.AddBucket(b.I, b.C)
	}
	h.SetStats(jh.Count, jh.Sum, jh.Min, jh.Max)
	return h
}

func parseMetricsJSON(data []byte) (*Metrics, error) {
	var doc struct {
		Schema string `json:"schema"`
		Runs   []struct {
			Run       int                `json:"run"`
			Label     string             `json:"label"`
			Counters  map[string]float64 `json:"counters"`
			Gauges    map[string]float64 `json:"gauges"`
			Hists     []jsonHist         `json:"hists"`
			Timelines []struct {
				Name    string `json:"name"`
				Mode    string `json:"mode"`
				WidthNs int64  `json:"width_ns"`
				Buckets []struct {
					I int     `json:"i"`
					V float64 `json:"v"`
				} `json:"buckets"`
			} `json:"timelines"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("analyze: metrics JSON: %w", err)
	}
	m := &Metrics{Schema: doc.Schema}
	for _, jr := range doc.Runs {
		r := newRun(jr.Run)
		r.Label = jr.Label
		for k, v := range jr.Counters {
			r.Counters[k] = v
		}
		for k, v := range jr.Gauges {
			r.Gauges[k] = v
		}
		for i := range jr.Hists {
			r.Hists[jr.Hists[i].Name] = jr.Hists[i].reconstruct()
		}
		for _, jt := range jr.Timelines {
			if jt.WidthNs <= 0 {
				return nil, fmt.Errorf("analyze: timeline %q with width %d", jt.Name, jt.WidthNs)
			}
			t := &Timeline{Name: jt.Name, Mode: jt.Mode, WidthNs: jt.WidthNs,
				TL: metrics.NewBucketTimeline(sim.Duration(jt.WidthNs))}
			// Coarsening on reconstruction would change the width; the export
			// already coarsened, so lift the cap well past the bucket count.
			t.TL.SetMaxBuckets(1 << 30)
			for _, b := range jt.Buckets {
				t.TL.Add(sim.Time(int64(b.I)*jt.WidthNs), b.V)
				t.Filled++
				if b.I+1 > t.Len {
					t.Len = b.I + 1
				}
			}
			r.Timelines[jt.Name] = t
		}
		m.Runs = append(m.Runs, r)
	}
	return m, nil
}

// histAccum gathers hist CSV rows until the run is complete.
type histAccum struct {
	h                  *metrics.Histogram
	count              uint64
	sum, minV, maxV    float64
	haveCount, haveAgg bool
}

func parseMetricsCSV(text string) (*Metrics, error) {
	m := &Metrics{}
	runs := map[int]*Run{}
	accums := map[int]map[string]*histAccum{}
	sawHeader := false
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# schema:") {
			m.Schema = strings.TrimSpace(strings.TrimPrefix(line, "# schema:"))
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if line == "run,type,name,key,value" {
			sawHeader = true
			continue
		}
		parts := strings.SplitN(line, ",", 5)
		if len(parts) != 5 {
			return nil, fmt.Errorf("analyze: metrics CSV line %d: %q", ln+1, line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("analyze: metrics CSV line %d: run %q", ln+1, parts[0])
		}
		r := runs[id]
		if r == nil {
			r = newRun(id)
			runs[id] = r
			accums[id] = map[string]*histAccum{}
			m.Runs = append(m.Runs, r)
		}
		typ, name, key, val := parts[1], parts[2], parts[3], parts[4]
		switch typ {
		case "label":
			r.Label = name
		case "recorder":
			// events/dropped bookkeeping rows; not needed for analysis.
		case "counter":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("analyze: metrics CSV line %d: %w", ln+1, err)
			}
			r.Counters[name] = v
		case "gauge":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("analyze: metrics CSV line %d: %w", ln+1, err)
			}
			r.Gauges[name] = v
		case "hist":
			a := accums[id][name]
			if a == nil {
				a = &histAccum{h: &metrics.Histogram{}}
				accums[id][name] = a
			}
			if err := a.row(key, val); err != nil {
				return nil, fmt.Errorf("analyze: metrics CSV line %d: %w", ln+1, err)
			}
		case "timeline":
			t := r.Timelines[name]
			if key == "width_ns" {
				w, err := strconv.ParseInt(val, 10, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("analyze: metrics CSV line %d: width %q", ln+1, val)
				}
				if t == nil {
					t = &Timeline{Name: name, Mode: "mean", WidthNs: w,
						TL: metrics.NewBucketTimeline(sim.Duration(w))}
					t.TL.SetMaxBuckets(1 << 30)
					r.Timelines[name] = t
				}
				continue
			}
			if t == nil {
				return nil, fmt.Errorf("analyze: metrics CSV line %d: timeline %q bucket before width", ln+1, name)
			}
			i, err := strconv.Atoi(key)
			if err != nil {
				return nil, fmt.Errorf("analyze: metrics CSV line %d: bucket %q", ln+1, key)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("analyze: metrics CSV line %d: %w", ln+1, err)
			}
			t.TL.Add(sim.Time(int64(i)*t.WidthNs), v)
			t.Filled++
			if i+1 > t.Len {
				t.Len = i + 1
			}
		default:
			return nil, fmt.Errorf("analyze: metrics CSV line %d: unknown type %q", ln+1, typ)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("analyze: not a metrics CSV (missing %q header)", "run,type,name,key,value")
	}
	for id, byName := range accums {
		for name, a := range byName {
			runs[id].Hists[name] = a.finish()
		}
	}
	// The CSV mode column is not serialized per-timeline (the sum/mean choice
	// is baked into the exported values), so Mode stays "mean"; consumers of
	// CSV-reconstructed timelines read levels, which is what analysis needs.
	return m, nil
}

func (a *histAccum) row(key, val string) error {
	switch {
	case key == "count":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		a.count = n
		a.haveCount = true
	case key == "sum" || key == "min" || key == "max":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return err
		}
		switch key {
		case "sum":
			a.sum = v
		case "min":
			a.minV = v
		case "max":
			a.maxV = v
		}
		a.haveAgg = true
	case strings.HasPrefix(key, "p"):
		// Quantile rows are derived values; reconstruction recomputes them.
	case strings.HasPrefix(key, "b"):
		i, err := strconv.Atoi(key[1:])
		if err != nil {
			return fmt.Errorf("bucket key %q", key)
		}
		c, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		a.h.AddBucket(i, c)
	default:
		return fmt.Errorf("unknown hist key %q", key)
	}
	return nil
}

func (a *histAccum) finish() *metrics.Histogram {
	if a.haveCount || a.haveAgg {
		a.h.SetStats(a.count, a.sum, a.minV, a.maxV)
	}
	return a.h
}

// mergedHists folds every run's histogram of the same name into one
// distribution per name (exact: log-bucketed histograms merge by adding
// counts), returning the merged map.
func (m *Metrics) mergedHists() map[string]*metrics.Histogram {
	out := map[string]*metrics.Histogram{}
	for _, r := range m.Runs {
		for name, h := range r.Hists {
			if agg, ok := out[name]; ok {
				agg.Merge(h)
			} else {
				cp := &metrics.Histogram{}
				cp.Merge(h)
				out[name] = cp
			}
		}
	}
	return out
}

// SchemaOf extracts the schema string of an artifact without fully parsing
// it: the JSON "schema" key, the CSV "# schema:" line, or the summary's
// schema field. Unknown shapes report "".
func SchemaOf(data []byte) string {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal([]byte(trimmed), &probe); err == nil {
			return probe.Schema
		}
		return ""
	}
	for _, line := range strings.Split(trimmed, "\n") {
		if strings.HasPrefix(line, "# schema:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "# schema:"))
		}
		if !strings.HasPrefix(line, "#") {
			break
		}
	}
	// Headerful CSV without a schema line predates versioning.
	if strings.HasPrefix(trimmed, "run,type,name,key,value") {
		return "xdm-metrics/1"
	}
	return ""
}
