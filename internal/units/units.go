// Package units defines byte-size constants and helpers shared by the memory,
// device, and fabric models.
package units

import "fmt"

// Byte sizes (binary prefixes, as the kernel uses for pages and swap).
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// PageSize is the base (small) page size, 4 KiB, matching the common OS
// configuration in the paper.
const PageSize int64 = 4 * KiB

// HugePageSize is the transparent-huge-page size, 2 MiB.
const HugePageSize int64 = 2 * MiB

// PagesPerHugePage is how many base pages one huge page spans (512).
const PagesPerHugePage = HugePageSize / PageSize

// BytesPerSec expresses a bandwidth. GBps/MBps construct it from the decimal
// units vendors quote (1 GB/s = 1e9 B/s), which is also how the paper quotes
// device bandwidths.
type BytesPerSec float64

// GBps converts decimal gigabytes per second to BytesPerSec.
func GBps(v float64) BytesPerSec { return BytesPerSec(v * 1e9) }

// MBps converts decimal megabytes per second to BytesPerSec.
func MBps(v float64) BytesPerSec { return BytesPerSec(v * 1e6) }

// GB reports the bandwidth in decimal GB/s for display.
func (b BytesPerSec) GB() float64 { return float64(b) / 1e9 }

func (b BytesPerSec) String() string { return fmt.Sprintf("%.2f GB/s", b.GB()) }

// HumanBytes renders a byte count with a binary suffix.
func HumanBytes(n int64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.1fTiB", float64(n)/float64(TiB))
	case n >= GiB:
		return fmt.Sprintf("%.1fGiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
