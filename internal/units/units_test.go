package units

import "testing"

func TestByteConstants(t *testing.T) {
	if KiB != 1024 || MiB != 1024*KiB || GiB != 1024*MiB || TiB != 1024*GiB {
		t.Fatal("binary prefixes wrong")
	}
	if PageSize != 4096 {
		t.Fatal("page size must be 4 KiB")
	}
	if HugePageSize != 2*MiB || PagesPerHugePage != 512 {
		t.Fatal("huge page constants wrong")
	}
}

func TestBandwidthConstructors(t *testing.T) {
	if GBps(1) != 1e9 {
		t.Fatalf("GBps(1) = %v", float64(GBps(1)))
	}
	if MBps(1) != 1e6 {
		t.Fatalf("MBps(1) = %v", float64(MBps(1)))
	}
	if GBps(3.8).GB() != 3.8 {
		t.Fatalf("GB() roundtrip = %v", GBps(3.8).GB())
	}
	if got := GBps(10).String(); got != "10.00 GB/s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{4 * KiB, "4.0KiB"},
		{3 * MiB, "3.0MiB"},
		{2 * GiB, "2.0GiB"},
		{5 * TiB, "5.0TiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
