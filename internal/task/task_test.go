package task

import (
	"testing"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/trace"
	"repro/internal/workload"
)

// rig bundles a single-node test environment.
type rig struct {
	eng  *sim.Engine
	host *device.Host
	ssd  *swap.DeviceBackend
	rdma *swap.DeviceBackend
}

func newRig() *rig {
	eng := sim.NewEngine()
	host := device.NewHost(eng, pcie.Gen4, 16)
	return &rig{
		eng:  eng,
		host: host,
		ssd:  swap.NewDeviceBackend(eng, host.Attach(device.SpecTestbedSSD("ssd0"))),
		rdma: swap.NewDeviceBackend(eng, host.Attach(device.SpecConnectX5("rdma0"))),
	}
}

func (r *rig) path(b *swap.DeviceBackend, depth int) *swap.Path {
	return swap.NewPath(r.eng, b, swap.NewChannel(r.eng, b.Name()+"-ch", depth))
}

func smallSpec() workload.Spec {
	return workload.Spec{
		Name: "tiny", Class: workload.Compute, MaxMemGiB: 0.01,
		FootprintPages: 512, AnonFraction: 0.9, Coverage: 1.0,
		SegmentLen: 512, SeqShare: 0.7, RunLen: 32,
		HotShare: 0.25, HotProb: 0.5, WriteFraction: 0.3,
		ComputePerAccess: 100 * sim.Nanosecond, MainAccesses: 4096, SwapFeature: 'S',
	}
}

func runTask(r *rig, cfg Config) Stats {
	var out Stats
	finished := false
	New(cfg).Start(func(s Stats) { out = s; finished = true })
	r.eng.Run()
	if !finished {
		panic("task did not finish")
	}
	return out
}

func TestTaskRunsToCompletionWithoutPressure(t *testing.T) {
	r := newRig()
	stats := runTask(r, Config{
		Eng: r.eng, Name: "t", Spec: smallSpec(), Seed: 1,
		LocalRatio: 1.0, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
	})
	if stats.Accesses == 0 {
		t.Fatal("no accesses")
	}
	// At full local ratio anonymous pages never swap: PagesIn must be 0,
	// but file pages still refault from storage once.
	if stats.PagesIn != 0 {
		t.Fatalf("PagesIn=%d at local ratio 1.0", stats.PagesIn)
	}
	if stats.MinorFaults == 0 {
		t.Fatal("no zero-fill faults despite fresh address space")
	}
	if stats.FileRefaults == 0 {
		t.Fatal("file pages never loaded")
	}
	if stats.Runtime <= 0 || stats.UserTime <= 0 || stats.SysTime <= 0 {
		t.Fatalf("times not accumulated: %+v", stats)
	}
}

func TestMemoryPressureCausesSwapTraffic(t *testing.T) {
	r := newRig()
	stats := runTask(r, Config{
		Eng: r.eng, Name: "t", Spec: smallSpec(), Seed: 1,
		LocalRatio: 0.4, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
	})
	if stats.MajorFaults == 0 || stats.PagesIn == 0 || stats.PagesOut == 0 {
		t.Fatalf("no swap activity under pressure: %+v", stats)
	}
	if stats.ReclaimedPages == 0 {
		t.Fatal("no reclaim under pressure")
	}
}

func TestLowerLocalRatioMeansMoreSysTime(t *testing.T) {
	measure := func(ratio float64) sim.Duration {
		r := newRig()
		return runTask(r, Config{
			Eng: r.eng, Name: "t", Spec: smallSpec(), Seed: 1,
			LocalRatio: ratio, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
		}).SysTime
	}
	high, low := measure(0.9), measure(0.3)
	if low <= high {
		t.Fatalf("sys time at ratio 0.3 (%v) not above ratio 0.9 (%v)", low, high)
	}
}

func TestGranularityPrefetchingHelpsSequentialWorkload(t *testing.T) {
	seqSpec := smallSpec()
	seqSpec.SeqShare = 0.95
	seqSpec.RunLen = 64
	measure := func(gran int) Stats {
		r := newRig()
		return runTask(r, Config{
			Eng: r.eng, Name: "t", Spec: seqSpec, Seed: 1,
			LocalRatio: 0.4, GranularityPages: gran,
			SwapPath: r.path(r.rdma, 8), FilePath: r.path(r.ssd, 4),
		})
	}
	g1, g16 := measure(1), measure(16)
	if g16.PrefetchHits == 0 {
		t.Fatal("no prefetch hits at granularity 16")
	}
	if g16.MajorFaults >= g1.MajorFaults {
		t.Fatalf("granularity 16 faults (%d) not below granularity 1 (%d)",
			g16.MajorFaults, g1.MajorFaults)
	}
	if g16.SysTime >= g1.SysTime {
		t.Fatalf("sequential workload: granularity 16 sys time (%v) not below 4K (%v)",
			g16.SysTime, g1.SysTime)
	}
}

func TestLargeGranularityHurtsRandomWorkload(t *testing.T) {
	randSpec := smallSpec()
	randSpec.SeqShare = 0.05
	randSpec.RunLen = 2
	randSpec.HotProb = 0 // uniform random
	measure := func(gran int) Stats {
		r := newRig()
		return runTask(r, Config{
			Eng: r.eng, Name: "t", Spec: randSpec, Seed: 1,
			LocalRatio: 0.4, GranularityPages: gran,
			SwapPath: r.path(r.ssd, 8), FilePath: r.path(r.ssd, 4),
		})
	}
	g1, g64 := measure(1), measure(64)
	// I/O amplification: fetching 64 pages to use one evicts useful pages
	// and wastes bandwidth; runtime must suffer.
	if g64.Runtime <= g1.Runtime {
		t.Fatalf("random workload: granularity 64 runtime (%v) not above 4K (%v)",
			g64.Runtime, g1.Runtime)
	}
	if g64.PagesIn <= g1.PagesIn {
		t.Fatalf("no amplification visible: pagesIn %d vs %d", g64.PagesIn, g1.PagesIn)
	}
}

func TestSysTimeExcludesCompute(t *testing.T) {
	spec := smallSpec()
	spec.ComputePerAccess = 10 * sim.Microsecond // compute-heavy
	r := newRig()
	stats := runTask(r, Config{
		Eng: r.eng, Name: "t", Spec: spec, Seed: 1,
		LocalRatio: 0.5, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
	})
	if stats.UserTime <= stats.SysTime {
		t.Fatalf("compute-heavy task: user %v should dominate sys %v", stats.UserTime, stats.SysTime)
	}
	if stats.Runtime < stats.UserTime {
		t.Fatalf("runtime %v below user time %v", stats.Runtime, stats.UserTime)
	}
}

func TestTraceObservation(t *testing.T) {
	spec := smallSpec()
	tbl := trace.NewTable(spec.FootprintPages)
	r := newRig()
	stats := runTask(r, Config{
		Eng: r.eng, Name: "t", Spec: spec, Seed: 1,
		LocalRatio: 0.6, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
		Trace: tbl,
	})
	if tbl.Accesses() != stats.Accesses {
		t.Fatalf("trace saw %d accesses, task did %d", tbl.Accesses(), stats.Accesses)
	}
	f := tbl.Features(461)
	if f.SeqRatio <= 0 || f.HotRatio <= 0 {
		t.Fatalf("degenerate features: %+v", f)
	}
}

func TestEpochHookFires(t *testing.T) {
	r := newRig()
	epochs := 0
	runTask(r, Config{
		Eng: r.eng, Name: "t", Spec: smallSpec(), Seed: 1,
		LocalRatio: 0.5, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
		EpochAccesses: 1000, OnEpoch: func(tk *Task) { epochs++ },
	})
	if epochs < 3 {
		t.Fatalf("epoch hook fired %d times, want >= 3", epochs)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	r := newRig()
	tk := New(Config{
		Eng: r.eng, Name: "t", Spec: smallSpec(), Seed: 1,
		LocalRatio: 0.5, SwapPath: r.path(r.rdma, 4),
	})
	tk.Start(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	tk.Start(nil)
}

func TestHierarchicalPathSlowerThanBypass(t *testing.T) {
	measure := func(hierarchical bool) sim.Duration {
		r := newRig()
		ch := swap.NewChannel(r.eng, "ch", 4)
		var p *swap.Path
		if hierarchical {
			p = swap.NewHierarchicalPath(r.eng, r.rdma, ch, swap.NewHostSwapStage(r.eng, swap.DefaultHostWorkers))
		} else {
			p = swap.NewPath(r.eng, r.rdma, ch)
		}
		return runTask(r, Config{
			Eng: r.eng, Name: "t", Spec: smallSpec(), Seed: 1,
			LocalRatio: 0.4, SwapPath: p, FilePath: r.path(r.ssd, 4),
		}).SysTime
	}
	bypass, hier := measure(false), measure(true)
	if hier <= bypass {
		t.Fatalf("hierarchical sys time (%v) not above bypass (%v)", hier, bypass)
	}
}

func TestStatsBytesSwapped(t *testing.T) {
	s := Stats{PagesIn: 2, PagesOut: 3}
	if s.BytesSwapped() != 5*4096 {
		t.Fatal("BytesSwapped wrong")
	}
}

func TestTaskAccessors(t *testing.T) {
	r := newRig()
	p := r.path(r.rdma, 4)
	tk := New(Config{
		Eng: r.eng, Name: "acc", Spec: smallSpec(), Seed: 1,
		LocalRatio: 0.5, GranularityPages: 4, SwapPath: p,
	})
	if tk.SwapPath() != p {
		t.Fatal("SwapPath accessor")
	}
	if tk.Granularity() != 4 {
		t.Fatal("Granularity accessor")
	}
	tk.SetGranularity(0)
	if tk.Granularity() != 1 {
		t.Fatal("SetGranularity clamp")
	}
	p2 := r.path(r.ssd, 4)
	tk.SetSwapPath(p2)
	if tk.SwapPath() != p2 {
		t.Fatal("SetSwapPath")
	}
	if tk.Stats().Accesses != 0 {
		t.Fatal("fresh task stats not zero")
	}
}
