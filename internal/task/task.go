// Package task executes a synthetic workload stream against the simulated
// memory subsystem: it walks the access trace, touches resident pages at
// NUMA latency, takes minor faults for first-touch allocations, takes major
// faults through a swap path for far-memory pages, runs cgroup-driven
// reclaim with asynchronous write-back, and accounts user time and kernel
// (sys) time separately — the paper evaluates swap performance by sys time.
package task

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Registered invariants for the fault/reclaim path. The cgroup law: after
// reclaim makes room and a fetch extent is installed, the resident count
// never exceeds the cgroup limit. The conservation law: every page flagged
// as having a current far copy owns exactly one live swap slot, so the
// flagged count and the allocator's live count always agree — pages are
// never duplicated or leaked between local memory and the swap device.
var (
	ckCgroupLimit = invariant.Register("task.cgroup.resident-within-limit")
	ckFarCopies   = invariant.Register("task.far-copies.match-live-slots")
)

// Kernel cost constants for the fault and reclaim paths.
const (
	// minorFaultCost is a zero-fill first-touch anonymous fault.
	minorFaultCost = 600 * sim.Nanosecond
	// reclaimPerPage is the CPU cost of unmapping + LRU bookkeeping per
	// reclaimed page.
	reclaimPerPage = 250 * sim.Nanosecond
	// maxOutstandingWritebacks bounds in-flight write-back extents per task,
	// modeling the kernel's dirty throttling.
	maxOutstandingWritebacks = 32

	// THP model (Sec IV-B): accesses to huge-backed pages skip most TLB
	// misses, saving tlbSaving per access; reclaiming a huge-backed page
	// first splits it, costing hugeSplitCost extra.
	tlbSaving     = 40 * sim.Nanosecond
	hugeSplitCost = 900 * sim.Nanosecond
	hugeExtentMin = 64 // pages fetched contiguously to be THP-backed
)

// Config assembles everything a task run needs.
type Config struct {
	Eng  *sim.Engine
	Name string

	// Spec and Seed define the workload; the stream is created internally.
	Spec workload.Spec
	Seed int64

	// LocalRatio is the cgroup's resident share of the footprint (1 - far
	// memory ratio). The paper sweeps this between 0.1 and 1.0.
	LocalRatio float64

	// SwapPath carries anonymous pages to/from far memory.
	SwapPath *swap.Path
	// FilePath carries file-backed pages to/from their backing store
	// (normally the node's SSD, regardless of the swap backend).
	FilePath *swap.Path

	// GranularityPages is the swap-in transfer unit in pages (1 = plain 4K,
	// 512 = THP-like 2M extents). Clamped to at least 1.
	GranularityPages int
	// AlignedReadahead selects the kernel's slot-cluster semantics: the
	// fetch window is aligned around the faulting page (half of it behind
	// the access cursor). When false, the window looks forward from the
	// fault, as xDM's custom far-memory read functions do.
	AlignedReadahead bool
	// AdaptiveWindow makes the reader fetch the full granularity only on
	// faults that continue a sequential run; isolated random faults fetch an
	// aligned cluster of RandomWindowPages instead. The kernel's swap
	// readahead lacks this check (it reads the whole cluster
	// unconditionally), which is part of what the paper's per-path
	// granularity configuration fixes.
	AdaptiveWindow bool
	// RandomWindowPages is the adaptive reader's cluster size for
	// non-sequential faults (default 1). High-latency media keep a small
	// cluster — spatial locality still amortizes the operation cost.
	RandomWindowPages int
	// UseTHP enables transparent-huge-page backing (khugepaged-style): anon
	// extents of at least 64 contiguous pages are huge-backed, trading TLB
	// savings on access against page-split cost at reclaim (Sec IV-B's
	// granularity trade-off).
	UseTHP bool
	// FileReadaheadPages is the file-refault readahead window (default 16).
	FileReadaheadPages int

	// Topo, NUMAPolicy and CPUNode control local page placement. Topo may
	// be nil, in which case an unconstrained single-node topology is built.
	Topo       *mem.Topology
	NUMAPolicy mem.NUMAPolicy
	CPUNode    int8

	// Sources, when non-nil, replaces the spec-derived access streams: one
	// source per thread (Threads is then ignored). Used for phased
	// workloads and custom traces.
	Sources []workload.AccessSource

	// Trace, when non-nil, observes every access (the page trace table).
	Trace *trace.Table

	// EpochAccesses, when > 0, invokes OnEpoch every that many main-phase
	// accesses — the hook xDM's console uses for online retuning.
	EpochAccesses int
	OnEpoch       func(t *Task)

	// RefetchPenalty is the extra per-page cost of re-materializing a page
	// whose far-memory copy was lost to a backend failure (DropFarCopies):
	// restoring from a replica, a checkpoint, or recomputation. Zero means
	// lost pages refault as plain zero-fill.
	RefetchPenalty sim.Duration
}

// Stats is the outcome of one task run.
type Stats struct {
	Runtime  sim.Duration
	UserTime sim.Duration
	SysTime  sim.Duration

	Accesses       uint64
	MinorFaults    uint64
	MajorFaults    uint64
	FileRefaults   uint64
	PrefetchHits   uint64
	ReclaimedPages uint64
	PagesIn        uint64
	PagesOut       uint64

	// THP accounting.
	HugeBackedPages uint64
	HugeSplits      uint64

	// Failure accounting.
	LostPages    uint64 // far copies dropped by DropFarCopies
	LostRefaults uint64 // lost pages re-materialized at RefetchPenalty
}

// BytesSwapped reports total swap traffic in bytes.
func (s Stats) BytesSwapped() float64 {
	return float64(s.PagesIn+s.PagesOut) * 4096
}

// worker is one execution thread of a task: its own access source and
// sequential-fault detector, sharing the task's address space.
type worker struct {
	stream    workload.AccessSource
	lastFault int32
}

// Task is one running workload instance, possibly multi-threaded
// (Spec.Threads): worker threads share the page set, cgroup, and swap path,
// and their faults overlap — which is what loads multiple backend channels
// concurrently.
type Task struct {
	cfg     Config
	eng     *sim.Engine
	workers []*worker
	running int
	ps      *mem.PageSet
	cg      *mem.Cgroup
	topo    *mem.Topology

	granularity int
	fileRA      int

	// slotValid marks anonymous pages whose far-memory copy is current.
	slotValid []bool
	// slots is the swap device's slot space. Kernel readahead reads *slot*
	// neighborhoods, which only coincide with address neighborhoods when
	// one thread evicts sequentially.
	slots *swap.SlotAllocator
	// prefetched marks resident pages brought in by readahead, not demand.
	prefetched []bool
	// lost marks pages whose far copy died with a backend; their next
	// fault pays RefetchPenalty on top of the zero-fill cost.
	lost []bool
	// farCopies counts pages with slotValid set, for the O(1) conservation
	// check against the slot allocator's live count.
	farCopies int

	wbTokens *sim.Resource

	sinceEpoch int
	start      sim.Time
	stats      Stats
	started    bool
	done       func(Stats)
	finished   bool

	// Observability handle, resolved once at construction (nil when off).
	rec         *obs.Recorder
	track       string
	obsResident *metrics.BucketTimeline
	obsFar      *metrics.BucketTimeline
}

// New builds a task from cfg. The page set's file-backed range is the first
// (1-AnonFraction) of the footprint, matching the workload generators.
func New(cfg Config) *Task {
	if cfg.Eng == nil {
		panic("task: nil engine")
	}
	if cfg.SwapPath == nil {
		panic("task: nil swap path")
	}
	if cfg.GranularityPages < 1 {
		cfg.GranularityPages = 1
	}
	if cfg.FileReadaheadPages < 1 {
		cfg.FileReadaheadPages = 16
	}
	if cfg.RandomWindowPages < 1 {
		cfg.RandomWindowPages = 1
	}
	if cfg.FilePath == nil {
		cfg.FilePath = cfg.SwapPath
	}
	n := cfg.Spec.FootprintPages
	ps := mem.NewPageSet(n)
	filePages := int32(float64(n) * (1 - cfg.Spec.AnonFraction))
	ps.SetType(0, filePages, mem.FileBacked)

	cg := mem.NewCgroupRatio(ps, cfg.LocalRatio)

	topo := cfg.Topo
	if topo == nil {
		topo = mem.NewTopology(n + 1) // unconstrained
	}

	threads := cfg.Spec.Threads
	if threads < 1 {
		threads = 1
	}
	t := &Task{
		cfg:         cfg,
		eng:         cfg.Eng,
		ps:          ps,
		cg:          cg,
		topo:        topo,
		granularity: cfg.GranularityPages,
		fileRA:      cfg.FileReadaheadPages,
		slotValid:   make([]bool, n),
		slots:       swap.NewSlotAllocator(n),
		prefetched:  make([]bool, n),
		lost:        make([]bool, n),
		wbTokens:    sim.NewResource(cfg.Eng, maxOutstandingWritebacks),
	}
	if obs.On {
		if r := obs.Rec(cfg.Eng); r != nil {
			t.rec = r
			name := cfg.Name
			if name == "" {
				name = "task"
			}
			t.track = "task/" + name
			t.obsResident = r.Timeline(t.track+"/resident", obs.DefaultTimelineWidth, obs.ModeMean)
			t.obsFar = r.Timeline(t.track+"/far-copies", obs.DefaultTimelineWidth, obs.ModeMean)
			r.OnSeal(func() {
				r.Counter(t.track + "/accesses").Add(float64(t.stats.Accesses))
				r.Counter(t.track + "/major-faults").Add(float64(t.stats.MajorFaults))
				r.Counter(t.track + "/minor-faults").Add(float64(t.stats.MinorFaults))
				r.Counter(t.track + "/pages-in").Add(float64(t.stats.PagesIn))
				r.Counter(t.track + "/pages-out").Add(float64(t.stats.PagesOut))
				r.Counter(t.track + "/reclaimed").Add(float64(t.stats.ReclaimedPages))
				r.Counter(t.track + "/lost-pages").Add(float64(t.stats.LostPages))
				r.Gauge(t.track + "/cgroup-limit-pages").Set(float64(t.cg.LimitPages))
			})
		}
	}
	if len(cfg.Sources) > 0 {
		for _, src := range cfg.Sources {
			t.workers = append(t.workers, &worker{stream: src, lastFault: -2})
		}
		return t
	}
	per := cfg.Spec.MainAccesses / threads
	if per < 1 {
		per = 1
	}
	for i := 0; i < threads; i++ {
		st := workload.NewStream(cfg.Spec, cfg.Seed+int64(i)*7919)
		st.SetMainAccesses(per)
		if i > 0 {
			// Thread 0 performs the allocation sweep for the shared space.
			st.SkipInit()
		}
		t.workers = append(t.workers, &worker{stream: st, lastFault: -2})
	}
	return t
}

// PageSet exposes the task's page table (read-only use expected).
func (t *Task) PageSet() *mem.PageSet { return t.ps }

// Cgroup exposes the task's memory limit.
func (t *Task) Cgroup() *mem.Cgroup { return t.cg }

// SwapPath exposes the task's current swap path.
func (t *Task) SwapPath() *swap.Path { return t.cfg.SwapPath }

// Granularity reports the current swap-in unit in pages.
func (t *Task) Granularity() int { return t.granularity }

// SetGranularity retunes the swap-in unit online.
func (t *Task) SetGranularity(pages int) {
	if pages < 1 {
		pages = 1
	}
	t.granularity = pages
}

// SetSwapPath switches the task to a different far-memory path. Pages whose
// far-memory copy lives on the old backend are re-fetched from the new one
// in this model; the backend switch machinery (internal/vm) accounts for the
// migration cost.
func (t *Task) SetSwapPath(p *swap.Path) { t.cfg.SwapPath = p }

// FarCopies reports the pages currently holding a live far-memory copy —
// the residency a pooled-fabric cell must cover with granted slabs.
func (t *Task) FarCopies() int { return t.farCopies }

// DropFarCopies invalidates every far-memory copy the task holds — the
// backend that stored them died. Swap slots are reclaimed exactly once
// (SlotAllocator.DropAll) and each lost page is marked so its next fault
// pays Config.RefetchPenalty on top of the zero-fill cost. It returns the
// number of far copies dropped. The failover controller calls this when
// live-switching away from a failed backend.
func (t *Task) DropFarCopies() int {
	n := 0
	for id := range t.slotValid {
		if t.slotValid[id] {
			t.slotValid[id] = false
			t.lost[id] = true
			n++
		}
	}
	t.slots.DropAll()
	t.farCopies = 0
	if invariant.On {
		ckFarCopies.Assert(t.slots.Live() == 0,
			"%d live slots after dropping all far copies", t.slots.Live())
	}
	t.stats.LostPages += uint64(n)
	if t.rec != nil {
		t.rec.Instant(t.track, "drop-far-copies", fmt.Sprintf("dropped=%d", n))
		t.obsFar.Add(t.eng.Now(), 0)
	}
	return n
}

// AuditConservation runs the O(n) structural audits over the task's memory
// state: the LRU lists (mem.PageSet.Audit), the slot allocator bijection
// (swap.SlotAllocator.Audit), and the cross-structure conservation laws —
// far-copy flags match live slots one-to-one, and no page is simultaneously
// resident and flagged lost. For tests and the metamorphic suite.
func (t *Task) AuditConservation() error {
	if err := t.ps.Audit(); err != nil {
		return err
	}
	if err := t.slots.Audit(); err != nil {
		return err
	}
	far := 0
	for id, valid := range t.slotValid {
		if !valid {
			continue
		}
		far++
		if t.lost[id] {
			return fmt.Errorf("task audit: page %d both holds a far copy and is marked lost", id)
		}
	}
	if far != t.farCopies {
		return fmt.Errorf("task audit: farCopies counter %d, recount %d", t.farCopies, far)
	}
	if far != t.slots.Live() {
		return fmt.Errorf("task audit: %d far copies but %d live slots", far, t.slots.Live())
	}
	return nil
}

// Stats reports the task's statistics so far.
func (t *Task) Stats() Stats { return t.stats }

// Start begins execution; done fires once with final stats when the stream
// is exhausted.
func (t *Task) Start(done func(Stats)) {
	if t.started {
		panic(fmt.Sprintf("task %s: started twice", t.cfg.Name))
	}
	t.started = true
	t.done = done
	t.start = t.eng.Now()
	t.running = len(t.workers)
	for _, w := range t.workers {
		w := w
		t.eng.Immediately(func() { t.run(w) })
	}
}

// run consumes one worker's accesses until its next fault (or the end of
// its stream), accumulating resident-access time arithmetically and
// scheduling a single event for the batch.
func (t *Task) run(w *worker) {
	var pending sim.Duration
	for {
		a, ok := w.stream.Next()
		if !ok {
			t.eng.After(pending, t.workerDone)
			return
		}
		t.observe(a)
		pending += t.cfg.Spec.ComputePerAccess
		t.stats.UserTime += t.cfg.Spec.ComputePerAccess
		t.stats.Accesses++

		if t.ps.Page(a.Page).Resident {
			lat := t.topo.AccessLatency(t.cfg.CPUNode, t.ps.Page(a.Page).Node)
			if t.ps.Page(a.Page).Huge && lat > tlbSaving {
				lat -= tlbSaving
			}
			pending += lat
			t.stats.UserTime += lat
			if t.prefetched[a.Page] {
				t.prefetched[a.Page] = false
				t.stats.PrefetchHits++
			}
			t.ps.Touch(a.Page, t.eng.Now(), a.Write)
			continue
		}
		// Fault: advance by the accumulated compute, then handle it.
		t.eng.After(pending, func() { t.fault(w, a) })
		return
	}
}

// workerDone retires one worker; the task finishes when all have.
func (t *Task) workerDone() {
	t.running--
	if t.running == 0 {
		t.finish()
	}
}

func (t *Task) observe(a workload.Access) {
	if t.cfg.Trace != nil {
		t.cfg.Trace.Record(a.Page, a.Write)
	}
	if t.cfg.EpochAccesses > 0 && t.cfg.OnEpoch != nil {
		t.sinceEpoch++
		if t.sinceEpoch >= t.cfg.EpochAccesses {
			t.sinceEpoch = 0
			t.cfg.OnEpoch(t)
		}
	}
}

// fault handles a page fault on page a.Page, then resumes the worker.
func (t *Task) fault(w *worker, a workload.Access) {
	page := t.ps.Page(a.Page)
	anon := page.Type == mem.Anonymous

	if page.Resident {
		// Another worker faulted this page in while we were advancing the
		// clock; just touch and continue.
		t.ps.Touch(a.Page, t.eng.Now(), a.Write)
		t.run(w)
		return
	}

	if anon && !t.slotValid[a.Page] {
		// Zero-fill minor fault: no far-memory read. A page whose far copy
		// died with its backend additionally pays the re-fetch penalty
		// (replica read / recomputation) the first time it is touched again.
		cost := minorFaultCost
		if t.lost[a.Page] {
			t.lost[a.Page] = false
			cost += t.cfg.RefetchPenalty
			t.stats.LostRefaults++
		}
		t.reclaimFor(1)
		t.makeResident(a.Page, false)
		if invariant.On {
			ckCgroupLimit.Assert(t.ps.Resident() <= t.cg.LimitPages,
				"%d resident over limit %d after minor fault", t.ps.Resident(), t.cg.LimitPages)
		}
		t.stats.MinorFaults++
		t.stats.SysTime += cost
		t.eng.After(cost, func() {
			// Another worker's reclaim may have evicted the page during the
			// fault window; it will simply refault on next access.
			if t.ps.Page(a.Page).Resident {
				t.ps.Touch(a.Page, t.eng.Now(), a.Write)
			}
			t.run(w)
		})
		return
	}

	// Major fault: assemble the fetch extent. An adaptive reader spends the
	// full window only on faults continuing a sequential pattern.
	seqFault := a.Page >= w.lastFault && a.Page <= w.lastFault+4
	var fetch []int32
	var path *swap.Path
	if anon {
		wantAnon := func(id int32) bool {
			p := t.ps.Page(id)
			return p.Type == mem.Anonymous && !p.Resident && t.slotValid[id]
		}
		if t.cfg.AdaptiveWindow {
			// xDM's reader works in address space: stream forward on
			// sequential faults, small aligned cluster on isolated ones.
			g, aligned := t.granularity, false
			if !seqFault {
				if g > t.cfg.RandomWindowPages {
					g = t.cfg.RandomWindowPages
				}
				aligned = true
			}
			fetch = t.planExtent(a.Page, g, aligned, wantAnon)
		} else {
			// Kernel swap readahead reads the slot cluster around the
			// faulting entry, whatever pages those slots hold.
			fetch = t.slots.Cluster(a.Page, t.granularity, wantAnon)
		}
		path = t.cfg.SwapPath
	} else {
		fetch = t.planExtent(a.Page, t.fileRA, true, func(id int32) bool {
			p := t.ps.Page(id)
			return p.Type == mem.FileBacked && !p.Resident
		})
		path = t.cfg.FilePath
	}

	sequential := a.Page == w.lastFault+1 || contiguous(fetch)
	w.lastFault = fetch[len(fetch)-1]

	t.reclaimFor(len(fetch))
	huge := t.cfg.UseTHP && anon && len(fetch) >= hugeExtentMin && contiguous(fetch)
	for _, id := range fetch {
		t.makeResident(id, id != a.Page)
		if huge {
			t.ps.Page(id).Huge = true
			t.stats.HugeBackedPages++
		}
	}
	if invariant.On {
		ckCgroupLimit.Assert(t.ps.Resident() <= t.cg.LimitPages ||
			t.ps.Resident() <= len(fetch),
			"%d resident over limit %d after installing %d-page extent",
			t.ps.Resident(), t.cg.LimitPages, len(fetch))
	}

	faultStart := t.eng.Now()
	path.SwapIn(swap.Extent{Pages: len(fetch), Sequential: sequential}, func(lat sim.Duration) {
		t.stats.MajorFaults++
		if anon {
			t.stats.PagesIn += uint64(len(fetch))
		} else {
			t.stats.FileRefaults++
		}
		t.stats.SysTime += t.eng.Now().Sub(faultStart)
		if t.ps.Page(a.Page).Resident {
			t.ps.Touch(a.Page, t.eng.Now(), a.Write)
		}
		t.run(w)
	})
}

// planExtent collects up to max pages eligible per want, always including
// the faulting page first. The window is either aligned around the fault
// (kernel slot-cluster readahead) or forward-looking (xDM).
func (t *Task) planExtent(page int32, max int, aligned bool, want func(int32) bool) []int32 {
	if max < 1 {
		max = 1
	}
	// Never fetch more than half the cgroup budget in one extent.
	if budget := t.cg.LimitPages / 2; max > budget && budget >= 1 {
		max = budget
	}
	base := page
	if aligned {
		base = page - page%int32(max)
	}
	end := base + int32(max)
	if end > int32(t.ps.Len()) {
		end = int32(t.ps.Len())
	}
	fetch := []int32{page}
	for id := base; id < end && len(fetch) < max; id++ {
		if id != page && want(id) {
			fetch = append(fetch, id)
		}
	}
	return fetch
}

func contiguous(ids []int32) bool {
	if len(ids) < 2 {
		return false
	}
	lo, hi := ids[0], ids[0]
	for _, id := range ids[1:] {
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	return int(hi-lo) == len(ids)-1
}

// makeResident allocates a NUMA node and installs the page.
func (t *Task) makeResident(id int32, viaPrefetch bool) {
	node := t.topo.Allocate(t.cfg.NUMAPolicy, t.cfg.CPUNode)
	if node < 0 {
		// Topology exhausted: reclaim one page and retry once.
		t.reclaimPages(1)
		node = t.topo.Allocate(t.cfg.NUMAPolicy, t.cfg.CPUNode)
		if node < 0 {
			panic("task: NUMA topology smaller than cgroup limit")
		}
	}
	t.ps.MakeResident(id, node)
	t.prefetched[id] = viaPrefetch
	if t.obsResident != nil {
		t.obsResident.Add(t.eng.Now(), float64(t.ps.Resident()))
	}
}

// reclaimFor evicts enough pages that incoming more pages fit the cgroup.
func (t *Task) reclaimFor(incoming int) {
	over := t.ps.Resident() + incoming - t.cg.LimitPages
	if over > 0 {
		t.reclaimPages(over)
	}
}

// reclaimPages evicts n coldest pages, submitting asynchronous write-back
// extents for dirty anonymous (swap) and dirty file (storage) pages.
func (t *Task) reclaimPages(n int) {
	var swapWB, fileWB []int32
	for i := 0; i < n; i++ {
		id := t.ps.ReclaimCandidate()
		if id < 0 {
			break
		}
		page := t.ps.Page(id)
		anon := page.Type == mem.Anonymous
		node := page.Node
		wasHuge := page.Huge
		page.Huge = false
		dirty := t.ps.Evict(id)
		t.topo.Release(node)
		t.prefetched[id] = false
		t.stats.ReclaimedPages++
		t.stats.SysTime += reclaimPerPage
		if wasHuge {
			t.stats.SysTime += hugeSplitCost
			t.stats.HugeSplits++
		}
		if anon {
			if dirty {
				if !t.slotValid[id] {
					t.slotValid[id] = true
					t.farCopies++
				}
				t.slots.Assign(id)
				swapWB = append(swapWB, id)
			}
			// Clean anonymous pages with a valid slot are dropped for free.
		} else if dirty {
			fileWB = append(fileWB, id)
		}
	}
	if invariant.On {
		ckFarCopies.Assert(t.farCopies == t.slots.Live(),
			"%d pages flagged with far copies but %d live slots", t.farCopies, t.slots.Live())
	}
	if t.obsFar != nil {
		now := t.eng.Now()
		t.obsFar.Add(now, float64(t.farCopies))
		t.obsResident.Add(now, float64(t.ps.Resident()))
	}
	t.writeback(t.cfg.SwapPath, swapWB)
	t.writeback(t.cfg.FilePath, fileWB)
}

// writeback submits dirty pages as contiguous extents, asynchronously,
// throttled by the write-back token pool.
func (t *Task) writeback(path *swap.Path, ids []int32) {
	if len(ids) == 0 {
		return
	}
	// ids arrive in reclaim (LRU) order; group ascending contiguous runs.
	runStart := 0
	for i := 1; i <= len(ids); i++ {
		if i < len(ids) && ids[i] == ids[i-1]+1 {
			continue
		}
		pages := i - runStart
		seq := pages > 1
		t.wbTokens.Acquire(1, func() {
			path.SwapOut(swap.Extent{Pages: pages, Sequential: seq}, func(sim.Duration) {
				t.wbTokens.Release(1)
			})
		})
		t.stats.PagesOut += uint64(pages)
		runStart = i
	}
}

func (t *Task) finish() {
	if t.finished {
		return
	}
	t.finished = true
	t.stats.Runtime = t.eng.Now().Sub(t.start)
	if t.rec != nil {
		t.rec.Span(t.track, "run", t.start, "")
	}
	if t.done != nil {
		t.done(t.stats)
	}
}
