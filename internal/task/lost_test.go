package task

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// lostSpec forces heavy swapping: a tight local budget over a uniform
// random footprint, so far copies accumulate quickly.
func lostSpec() workload.Spec {
	s := smallSpec()
	s.AnonFraction = 1
	s.SeqShare = 0
	s.HotShare = 1
	s.HotProb = 0
	s.MainAccesses = 8192
	return s
}

func TestDropFarCopiesMarksAndRepays(t *testing.T) {
	r := newRig()
	cfg := Config{
		Eng: r.eng, Name: "t", Spec: lostSpec(), Seed: 1,
		LocalRatio: 0.5, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
		RefetchPenalty: 150 * sim.Microsecond,
	}
	tk := New(cfg)
	var dropped int
	// Let the task build up far copies, then lose the backend mid-run.
	r.eng.After(5*sim.Millisecond, func() { dropped = tk.DropFarCopies() })
	finished := false
	var out Stats
	tk.Start(func(s Stats) { out = s; finished = true })
	r.eng.Run()
	if !finished {
		t.Fatal("task did not finish")
	}
	if dropped == 0 {
		t.Fatal("no far copies existed at drop time; scenario broken")
	}
	if out.LostPages != uint64(dropped) {
		t.Fatalf("LostPages=%d, DropFarCopies returned %d", out.LostPages, dropped)
	}
	if out.LostRefaults == 0 {
		t.Fatal("no lost page was ever re-faulted")
	}
	if out.LostRefaults > out.LostPages {
		t.Fatalf("LostRefaults=%d > LostPages=%d: a page repaid the penalty twice",
			out.LostRefaults, out.LostPages)
	}
}

func TestDropFarCopiesIdempotentWhenEmpty(t *testing.T) {
	r := newRig()
	cfg := Config{
		Eng: r.eng, Name: "t", Spec: lostSpec(), Seed: 1,
		LocalRatio: 1.0, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
	}
	tk := New(cfg)
	// Fully resident task: nothing to drop, and dropping twice is safe.
	if n := tk.DropFarCopies(); n != 0 {
		t.Fatalf("dropped %d copies from a fresh task", n)
	}
	if n := tk.DropFarCopies(); n != 0 {
		t.Fatalf("second drop reclaimed %d copies", n)
	}
}

func TestRefetchPenaltyChargedOnce(t *testing.T) {
	// The same scenario with and without a penalty: the penalized run must
	// be slower, by no more than LostRefaults x penalty (each lost page
	// pays at most once).
	run := func(penalty sim.Duration) Stats {
		r := newRig()
		cfg := Config{
			Eng: r.eng, Name: "t", Spec: lostSpec(), Seed: 1,
			LocalRatio: 0.5, SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
			RefetchPenalty: penalty,
		}
		tk := New(cfg)
		r.eng.After(5*sim.Millisecond, func() { tk.DropFarCopies() })
		var out Stats
		finished := false
		tk.Start(func(s Stats) { out = s; finished = true })
		r.eng.Run()
		if !finished {
			t.Fatal("task did not finish")
		}
		return out
	}
	penalty := 10 * sim.Millisecond // large enough to dominate noise
	free := run(0)
	paid := run(penalty)
	if paid.LostRefaults == 0 {
		t.Fatal("no refaults to compare")
	}
	if paid.Runtime <= free.Runtime {
		t.Fatalf("penalized run (%v) not slower than free run (%v)", paid.Runtime, free.Runtime)
	}
	maxExtra := sim.Duration(paid.LostRefaults+1) * penalty
	if extra := paid.Runtime - free.Runtime; extra > maxExtra {
		t.Fatalf("extra runtime %v exceeds LostRefaults x penalty %v", extra, maxExtra)
	}
}
