package task

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Property: for any workload shape, local ratio, and granularity, the task
// completes, never exceeds its memory budget by more than one in-flight
// extent, and its counters are internally consistent.
func TestTaskInvariantsProperty(t *testing.T) {
	f := func(seed int64, ratioSeed, granSeed, seqSeed, threadSeed uint8) bool {
		ratio := 0.2 + float64(ratioSeed%7)*0.1
		gran := 1 << (granSeed % 6) // 1..32
		spec := workload.Spec{
			Name: "prop", Class: workload.Compute, MaxMemGiB: 1,
			FootprintPages: 768, AnonFraction: 0.9, Coverage: 1.0,
			SegmentLen: 256, SeqShare: float64(seqSeed%10) / 10, RunLen: 24,
			HotShare: 0.2, HotProb: 0.6, WriteFraction: 0.3,
			ComputePerAccess: 100 * sim.Nanosecond, MainAccesses: 3000,
			Threads: int(threadSeed%4) + 1,
		}
		r := newRig()
		tk := New(Config{
			Eng: r.eng, Name: "prop", Spec: spec, Seed: seed,
			LocalRatio: ratio, GranularityPages: gran,
			SwapPath: r.path(r.rdma, 8), FilePath: r.path(r.ssd, 4),
		})
		finished := false
		var stats Stats
		tk.Start(func(s Stats) { finished = true; stats = s })

		// Check the residency budget as the simulation runs.
		limit := tk.Cgroup().LimitPages
		ok := true
		var watch func()
		watch = func() {
			if tk.PageSet().Resident() > limit+gran*spec.Threads {
				ok = false
				return
			}
			if !finished {
				r.eng.After(50*sim.Microsecond, watch)
			}
		}
		r.eng.Immediately(watch)
		r.eng.Run()

		if !finished || !ok {
			return false
		}
		// Counter consistency.
		if stats.Accesses == 0 || stats.Runtime <= 0 {
			return false
		}
		if stats.MajorFaults > 0 && stats.SysTime == 0 {
			return false
		}
		// Every page that came in was either demanded or prefetched; hits
		// can never exceed pages brought in plus file readahead.
		if stats.PrefetchHits > stats.PagesIn+uint64(stats.FileRefaults)*16 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: identical configurations produce bit-identical statistics.
func TestTaskDeterminism(t *testing.T) {
	run := func() Stats {
		r := newRig()
		return runTask(r, Config{
			Eng: r.eng, Name: "det", Spec: smallSpec(), Seed: 7,
			LocalRatio: 0.45, GranularityPages: 8,
			SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// Multi-threaded runs must partition the access budget, not multiply it.
func TestThreadsPartitionAccesses(t *testing.T) {
	spec := smallSpec()
	spec.Threads = 4
	r := newRig()
	stats := runTask(r, Config{
		Eng: r.eng, Name: "t4", Spec: spec, Seed: 1,
		LocalRatio: 0.6, SwapPath: r.path(r.rdma, 8), FilePath: r.path(r.ssd, 4),
	})
	// Total = init sweep (thread 0 only) + 4 × (MainAccesses/4).
	want := uint64(spec.MainAccesses)
	if stats.Accesses < want || stats.Accesses > want+uint64(spec.FootprintPages) {
		t.Fatalf("accesses %d outside [%d, %d]", stats.Accesses, want, want+uint64(spec.FootprintPages))
	}
}

// Multi-threaded execution overlaps faults: runtime is shorter than the
// single-threaded run of the same total work under memory pressure.
func TestThreadsOverlapFaults(t *testing.T) {
	measure := func(threads int) sim.Duration {
		spec := smallSpec()
		spec.Threads = threads
		spec.ComputePerAccess = 0
		r := newRig()
		return runTask(r, Config{
			Eng: r.eng, Name: "olap", Spec: spec, Seed: 1,
			LocalRatio: 0.4, SwapPath: r.path(r.rdma, 8), FilePath: r.path(r.ssd, 8),
		}).Runtime
	}
	one, four := measure(1), measure(4)
	if four >= one {
		t.Fatalf("4 threads (%v) not faster than 1 (%v) on a fault-bound run", four, one)
	}
}

// The slot log: a page re-swapped gets a fresh slot, and the kernel-style
// cluster never fetches stale entries.
func TestSlotClusterFreshness(t *testing.T) {
	spec := smallSpec()
	spec.WriteFraction = 0.9 // lots of dirty evictions → slot churn
	r := newRig()
	stats := runTask(r, Config{
		Eng: r.eng, Name: "slots", Spec: spec, Seed: 3,
		LocalRatio: 0.3, GranularityPages: 8, AlignedReadahead: true,
		SwapPath: r.path(r.rdma, 4), FilePath: r.path(r.ssd, 4),
	})
	if stats.PagesIn == 0 {
		t.Fatal("no swap traffic")
	}
	// With heavy churn the run still terminates and hits stay bounded.
	if stats.PrefetchHits > stats.PagesIn {
		t.Fatalf("hits %d exceed pages in %d", stats.PrefetchHits, stats.PagesIn)
	}
}

// THP: a THP-enabled sequential run backs pages huge and gains on access
// time; the split cost shows up in sys time when reclaim churns.
func TestTHPTradeoff(t *testing.T) {
	seqSpec := smallSpec()
	seqSpec.SeqShare = 0.95
	seqSpec.RunLen = 128
	seqSpec.SegmentLen = 512
	run := func(thp bool) Stats {
		r := newRig()
		return runTask(r, Config{
			Eng: r.eng, Name: "thp", Spec: seqSpec, Seed: 1,
			LocalRatio: 0.5, GranularityPages: 64, UseTHP: thp,
			SwapPath: r.path(r.rdma, 8), FilePath: r.path(r.ssd, 4),
		})
	}
	off, on := run(false), run(true)
	if on.HugeBackedPages == 0 {
		t.Fatal("THP run backed no huge pages")
	}
	if off.HugeBackedPages != 0 {
		t.Fatal("non-THP run backed huge pages")
	}
	if on.UserTime >= off.UserTime {
		t.Fatalf("THP user time %v not below non-THP %v (TLB saving missing)", on.UserTime, off.UserTime)
	}
	if on.HugeSplits == 0 {
		t.Fatal("reclaim under pressure should split huge pages")
	}
	if on.SysTime <= off.SysTime {
		t.Logf("note: THP sys %v vs non-THP %v (split cost hidden by fault savings here)", on.SysTime, off.SysTime)
	}
}
