package sim

import "testing"

// Microbenchmarks of the event kernel's hot paths. The numbers of record
// live in BENCH_sim.json (before/after the 4-ary value-heap rework); CI runs
// these with -benchtime=1x as a smoke test so they cannot rot.

// BenchmarkEngineSchedule is the steady-state schedule-fire cycle: events are
// scheduled in batches and drained, so the heap, slot table, and free lists
// reach a stable size. Target: 0 allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(Duration(i%100), fn)
		if i%512 == 511 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkEngineCancel schedules and immediately cancels, measuring the
// lazy-cancellation path (tombstones are dropped on the periodic drain).
func BenchmarkEngineCancel(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := eng.After(Duration(i%100), fn)
		h.Cancel(eng)
		if i%512 == 511 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkEngineChurn is the timer-wheel-ish workload: a fixed population
// of timers where every firing reschedules itself, the pattern device
// channels and retry timeouts produce. Measures fire+reschedule cost.
func BenchmarkEngineChurn(b *testing.B) {
	eng := NewEngine()
	const timers = 1024
	remaining := b.N
	fns := make([]func(), timers)
	for i := range fns {
		i := i
		fns[i] = func() {
			if remaining > 0 {
				remaining--
				eng.After(Duration(1+i%7), fns[i])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range fns {
		eng.After(Duration(i%7), fns[i])
	}
	eng.Run()
}

// BenchmarkStationSubmit is the queueing-station hot path behind every
// device channel: submit, wait for a server, serve, complete.
func BenchmarkStationSubmit(b *testing.B) {
	eng := NewEngine()
	st := NewStation(eng, 4)
	done := func(Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(Duration(10+i%90), done)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}
