package sim

import "testing"

// Microbenchmarks of the event kernel's hot paths. The numbers of record
// live in BENCH_sim.json (before/after the 4-ary value-heap rework); CI runs
// these with -benchtime=1x as a smoke test so they cannot rot.

// BenchmarkEngineSchedule is the steady-state schedule-fire cycle: events are
// scheduled in batches and drained, so the heap, slot table, and free lists
// reach a stable size. Target: 0 allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(Duration(i%100), fn)
		if i%512 == 511 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkEngineCancel schedules and immediately cancels, measuring the
// lazy-cancellation path (tombstones are dropped on the periodic drain).
func BenchmarkEngineCancel(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := eng.After(Duration(i%100), fn)
		h.Cancel(eng)
		if i%512 == 511 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkEngineCancelAllCancelled is the worst-case tombstone shape: a
// large heap where every event gets cancelled and nothing drains it. Without
// compaction the heap keeps absorbing tombstones and every later schedule
// sifts through the graveyard; with compaction the shape recovers in
// amortized O(1) per cancel while the schedule path stays zero-alloc.
func BenchmarkEngineCancelAllCancelled(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := eng.After(Duration(i%1000), fn)
		h.Cancel(eng)
	}
	eng.Run()
}

// BenchmarkShardsWindowed measures the sharded kernel end to end: four
// shards running local event chains with periodic keyed cross-shard sends,
// synchronized by lookahead windows. Driven with one worker so the number is
// pure kernel overhead (windows, barriers, merge), comparable across
// machines regardless of core count.
func BenchmarkShardsWindowed(b *testing.B) {
	b.ReportAllocs()
	s := NewShards(4, 100)
	counters := make([]uint64, 4)
	remaining := b.N
	for i := 0; i < 4; i++ {
		i := i
		var tick func()
		tick = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			if remaining%64 == 0 {
				dst := (i + 1) % 4
				counters[i]++
				s.Send(i, dst, 100, uint64(i+1)<<32|counters[i], func() {})
			}
			s.Engine(i).After(Duration(10+i), tick)
		}
		s.Engine(i).At(Time(i), tick)
	}
	b.ResetTimer()
	s.Run(1)
}

// BenchmarkEngineChurn is the timer-wheel-ish workload: a fixed population
// of timers where every firing reschedules itself, the pattern device
// channels and retry timeouts produce. Measures fire+reschedule cost.
func BenchmarkEngineChurn(b *testing.B) {
	eng := NewEngine()
	const timers = 1024
	remaining := b.N
	fns := make([]func(), timers)
	for i := range fns {
		i := i
		fns[i] = func() {
			if remaining > 0 {
				remaining--
				eng.After(Duration(1+i%7), fns[i])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range fns {
		eng.After(Duration(i%7), fns[i])
	}
	eng.Run()
}

// BenchmarkStationSubmit is the queueing-station hot path behind every
// device channel: submit, wait for a server, serve, complete.
func BenchmarkStationSubmit(b *testing.B) {
	eng := NewEngine()
	st := NewStation(eng, 4)
	done := func(Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(Duration(10+i%90), done)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}
