package sim

// Resource is a counted resource with a FIFO wait queue — the simulation
// analogue of a semaphore. Device channels, CPU cores, and swap-channel slots
// are all Resources. Acquisition is asynchronous: the callback fires (possibly
// immediately, possibly at a later virtual time) once the units are granted.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []waiter
	// maxQueue tracks the high-water mark of the wait queue for reporting.
	maxQueue int
}

type waiter struct {
	units int
	fn    func()
}

// NewResource creates a resource with the given number of units. Capacity
// must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity reports the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse reports how many units are currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting reports how many acquisitions are queued.
func (r *Resource) Waiting() int { return len(r.waiters) }

// MaxQueue reports the largest wait-queue length observed.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// Acquire requests units and invokes fn once they are granted. Requests are
// served strictly FIFO: a large request at the head blocks smaller ones
// behind it (no starvation). Requesting more units than the capacity panics.
func (r *Resource) Acquire(units int, fn func()) {
	if units <= 0 {
		panic("sim: acquire of non-positive units")
	}
	if units > r.capacity {
		panic("sim: acquire exceeds resource capacity")
	}
	if len(r.waiters) == 0 && r.inUse+units <= r.capacity {
		r.inUse += units
		// Run via the event queue so callers observe consistent ordering
		// whether or not the acquisition had to wait.
		r.eng.Immediately(fn)
		return
	}
	r.waiters = append(r.waiters, waiter{units: units, fn: fn})
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
}

// TryAcquire grabs units immediately if available, bypassing the queue, and
// reports whether it succeeded.
func (r *Resource) TryAcquire(units int) bool {
	if units <= 0 || units > r.capacity {
		return false
	}
	if len(r.waiters) == 0 && r.inUse+units <= r.capacity {
		r.inUse += units
		return true
	}
	return false
}

// Release returns units to the resource and admits as many queued waiters as
// now fit, in FIFO order.
func (r *Resource) Release(units int) {
	if units <= 0 {
		panic("sim: release of non-positive units")
	}
	if units > r.inUse {
		panic("sim: release exceeds units in use")
	}
	r.inUse -= units
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if r.inUse+head.units > r.capacity {
			break
		}
		r.inUse += head.units
		r.waiters = r.waiters[1:]
		r.eng.Immediately(head.fn)
	}
}

// Resize changes the capacity. Growing admits queued waiters; shrinking below
// the units in use is allowed (the overage drains as holders release).
func (r *Resource) Resize(capacity int) {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	r.capacity = capacity
	// Admit whoever now fits.
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if head.units > r.capacity || r.inUse+head.units > r.capacity {
			break
		}
		r.inUse += head.units
		r.waiters = r.waiters[1:]
		r.eng.Immediately(head.fn)
	}
}
