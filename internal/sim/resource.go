package sim

import "repro/internal/invariant"

// Registered invariants for counted resources: occupancy (units in use and
// queued waiters) can never go negative, and a grant must never push usage
// past capacity (Resize may shrink capacity below the units already held;
// that overage is legal and drains, so the bound is only asserted on the
// grant paths, not after Resize).
var (
	ckResOccupancy = invariant.Register("sim.resource.occupancy-nonnegative")
	ckResBound     = invariant.Register("sim.resource.grant-within-capacity")
)

// Resource is a counted resource with a FIFO wait queue — the simulation
// analogue of a semaphore. Device channels, CPU cores, and swap-channel slots
// are all Resources. Acquisition is asynchronous: the callback fires (possibly
// immediately, possibly at a later virtual time) once the units are granted.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	// waiters[head:] is the FIFO queue. Dequeuing advances head instead of
	// re-slicing, so the backing array is reused rather than walked forward
	// (which would reallocate steadily under churn).
	waiters []waiter
	head    int
	// maxQueue tracks the high-water mark of the wait queue for reporting.
	maxQueue int
}

type waiter struct {
	units int
	fn    func()
}

// NewResource creates a resource with the given number of units. Capacity
// must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity reports the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse reports how many units are currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting reports how many acquisitions are queued.
func (r *Resource) Waiting() int { return len(r.waiters) - r.head }

// MaxQueue reports the largest wait-queue length observed.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// popWaiter dequeues the head waiter, compacting the backing array once it
// is fully drained (or mostly dead space) so it can be reused.
func (r *Resource) popWaiter() waiter {
	w := r.waiters[r.head]
	r.waiters[r.head] = waiter{} // drop the fn reference
	r.head++
	if r.head == len(r.waiters) {
		r.waiters = r.waiters[:0]
		r.head = 0
	} else if r.head > 32 && r.head*2 >= len(r.waiters) {
		n := copy(r.waiters, r.waiters[r.head:])
		for i := n; i < len(r.waiters); i++ {
			r.waiters[i] = waiter{}
		}
		r.waiters = r.waiters[:n]
		r.head = 0
	}
	return w
}

// Acquire requests units and invokes fn once they are granted. Requests are
// served strictly FIFO: a large request at the head blocks smaller ones
// behind it (no starvation). Requesting more units than the capacity panics.
func (r *Resource) Acquire(units int, fn func()) {
	if units <= 0 {
		panic("sim: acquire of non-positive units")
	}
	if units > r.capacity {
		panic("sim: acquire exceeds resource capacity")
	}
	if r.Waiting() == 0 && r.inUse+units <= r.capacity {
		r.inUse += units
		if invariant.On {
			ckResBound.Assert(r.inUse <= r.capacity,
				"in use %d exceeds capacity %d", r.inUse, r.capacity)
		}
		// Run via the event queue so callers observe consistent ordering
		// whether or not the acquisition had to wait.
		r.eng.Immediately(fn)
		return
	}
	r.waiters = append(r.waiters, waiter{units: units, fn: fn})
	if r.Waiting() > r.maxQueue {
		r.maxQueue = r.Waiting()
	}
}

// TryAcquire grabs units immediately if available, bypassing the queue, and
// reports whether it succeeded.
func (r *Resource) TryAcquire(units int) bool {
	if units <= 0 || units > r.capacity {
		return false
	}
	if r.Waiting() == 0 && r.inUse+units <= r.capacity {
		r.inUse += units
		return true
	}
	return false
}

// Release returns units to the resource and admits as many queued waiters as
// now fit, in FIFO order.
func (r *Resource) Release(units int) {
	if units <= 0 {
		panic("sim: release of non-positive units")
	}
	if units > r.inUse {
		panic("sim: release exceeds units in use")
	}
	r.inUse -= units
	if invariant.On {
		ckResOccupancy.Assert(r.inUse >= 0 && r.Waiting() >= 0,
			"in use %d, waiting %d", r.inUse, r.Waiting())
	}
	for r.Waiting() > 0 {
		head := r.waiters[r.head]
		if r.inUse+head.units > r.capacity {
			break
		}
		r.inUse += head.units
		r.popWaiter()
		if invariant.On {
			ckResBound.Assert(r.inUse <= r.capacity,
				"in use %d exceeds capacity %d after admitting waiter", r.inUse, r.capacity)
		}
		r.eng.Immediately(head.fn)
	}
}

// Resize changes the capacity. Growing admits queued waiters; shrinking below
// the units in use is allowed (the overage drains as holders release).
func (r *Resource) Resize(capacity int) {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	r.capacity = capacity
	// Admit whoever now fits.
	for r.Waiting() > 0 {
		head := r.waiters[r.head]
		if head.units > r.capacity || r.inUse+head.units > r.capacity {
			break
		}
		r.inUse += head.units
		r.popWaiter()
		r.eng.Immediately(head.fn)
	}
}
