package sim

// Station models a multi-server queueing station: up to Servers requests are
// in service simultaneously and the rest wait FIFO. It is the building block
// for device channels (an SSD with 4 I/O channels is a Station with 4
// servers) and for CPU run queues.
type Station struct {
	res *Resource
	eng *Engine

	// Served counts completed requests; BusyTime accumulates server-seconds
	// of service, from which utilization can be derived.
	Served   uint64
	BusyTime Duration
}

// NewStation creates a station with the given number of parallel servers.
func NewStation(eng *Engine, servers int) *Station {
	return &Station{res: NewResource(eng, servers), eng: eng}
}

// Servers reports the current number of parallel servers.
func (s *Station) Servers() int { return s.res.Capacity() }

// SetServers changes the parallelism; in-flight requests are unaffected.
func (s *Station) SetServers(n int) { s.res.Resize(n) }

// QueueLength reports the number of waiting (not yet in service) requests.
func (s *Station) QueueLength() int { return s.res.Waiting() }

// InService reports the number of requests currently being served.
func (s *Station) InService() int { return s.res.InUse() }

// Submit enqueues a request needing the given service time. done, if non-nil,
// fires at completion with the time the request spent waiting plus in service
// (its sojourn time).
func (s *Station) Submit(service Duration, done func(sojourn Duration)) {
	if service < 0 {
		panic("sim: negative service time")
	}
	arrival := s.eng.Now()
	s.res.Acquire(1, func() {
		s.eng.After(service, func() {
			s.res.Release(1)
			s.Served++
			s.BusyTime += service
			if done != nil {
				done(s.eng.Now().Sub(arrival))
			}
		})
	})
}

// Utilization reports mean server utilization over the interval [0, now].
func (s *Station) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 || s.res.Capacity() == 0 {
		return 0
	}
	return float64(s.BusyTime) / (float64(now) * float64(s.res.Capacity()))
}
