package sim

// Station models a multi-server queueing station: up to Servers requests are
// in service simultaneously and the rest wait FIFO. It is the building block
// for device channels (an SSD with 4 I/O channels is a Station with 4
// servers) and for CPU run queues.
type Station struct {
	res *Resource
	eng *Engine

	// free recycles submit requests (and the two closures each one owns),
	// so a steady-state submit-serve-complete cycle does not allocate. It
	// is bounded at maxFreeReqs: a burst that briefly had thousands of
	// requests in flight must not pin them all for the station's lifetime.
	free []*submitReq

	// obs, when set, receives submit/completion telemetry. The disabled
	// cost is one nil check per submit and per completion.
	obs StationObserver

	// Served counts completed requests; BusyTime accumulates server-seconds
	// of service, from which utilization can be derived.
	Served   uint64
	BusyTime Duration
}

// StationObserver receives queueing telemetry from a Station. Implementations
// must not re-enter the station synchronously.
type StationObserver interface {
	// StationSubmit fires when a request arrives, with the number of
	// requests already waiting (not in service) ahead of it.
	StationSubmit(at Time, queued int)
	// StationDone fires when a request completes, with its service time and
	// total sojourn (wait + service).
	StationDone(at Time, service, sojourn Duration)
}

// SetObserver installs an observer (nil removes it). In-flight requests
// report completions to the observer installed at completion time.
func (s *Station) SetObserver(o StationObserver) { s.obs = o }

// maxFreeReqs bounds the Station free list. A station's steady-state
// working set is servers + a modest queue; 256 recycled requests cover that
// with a wide margin while letting burst overshoot be reclaimed.
const maxFreeReqs = 256

// submitReq is one in-flight request. acquire and finish are built once per
// request object and bound to it, so recycling the request recycles the
// closures too.
type submitReq struct {
	s       *Station
	service Duration
	arrival Time
	done    func(sojourn Duration)
	acquire func()
	finish  func()
}

// NewStation creates a station with the given number of parallel servers.
func NewStation(eng *Engine, servers int) *Station {
	return &Station{res: NewResource(eng, servers), eng: eng}
}

// Servers reports the current number of parallel servers.
func (s *Station) Servers() int { return s.res.Capacity() }

// SetServers changes the parallelism; in-flight requests are unaffected.
func (s *Station) SetServers(n int) { s.res.Resize(n) }

// QueueLength reports the number of waiting (not yet in service) requests.
func (s *Station) QueueLength() int { return s.res.Waiting() }

// InService reports the number of requests currently being served.
func (s *Station) InService() int { return s.res.InUse() }

// newReq pops a recycled request or builds a fresh one with its closures.
func (s *Station) newReq() *submitReq {
	if n := len(s.free); n > 0 {
		r := s.free[n-1]
		s.free = s.free[:n-1]
		return r
	}
	r := &submitReq{s: s}
	r.acquire = func() { r.s.eng.After(r.service, r.finish) }
	r.finish = func() {
		st := r.s
		st.res.Release(1)
		st.Served++
		st.BusyTime += r.service
		done := r.done
		sojourn := st.eng.Now().Sub(r.arrival)
		if st.obs != nil {
			st.obs.StationDone(st.eng.Now(), r.service, sojourn)
		}
		// Recycle before invoking done: the callback may Submit again and
		// reuse this very request. Beyond the free-list bound the request
		// is dropped for the GC instead — steady-state cycles stay well
		// under the bound, so the zero-alloc path is unaffected.
		r.done = nil
		if len(st.free) < maxFreeReqs {
			st.free = append(st.free, r)
		}
		if done != nil {
			done(sojourn)
		}
	}
	return r
}

// Submit enqueues a request needing the given service time. done, if non-nil,
// fires at completion with the time the request spent waiting plus in service
// (its sojourn time).
func (s *Station) Submit(service Duration, done func(sojourn Duration)) {
	if service < 0 {
		panic("sim: negative service time")
	}
	r := s.newReq()
	r.service, r.arrival, r.done = service, s.eng.Now(), done
	if s.obs != nil {
		s.obs.StationSubmit(r.arrival, s.res.Waiting())
	}
	s.res.Acquire(1, r.acquire)
}

// Utilization reports mean server utilization over the interval [0, now].
func (s *Station) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 || s.res.Capacity() == 0 {
		return 0
	}
	return float64(s.BusyTime) / (float64(now) * float64(s.res.Capacity()))
}
