package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A minimal simulation: two events and a resource hand-off.
func Example() {
	eng := sim.NewEngine()

	eng.After(10*sim.Microsecond, func() {
		fmt.Println("first event at", eng.Now())
	})

	workers := sim.NewResource(eng, 1)
	workers.Acquire(1, func() {
		eng.After(5*sim.Microsecond, func() {
			workers.Release(1)
		})
	})
	workers.Acquire(1, func() {
		fmt.Println("second holder admitted at", eng.Now())
	})

	eng.Run()
	// Output:
	// second holder admitted at 5.00µs
	// first event at 10.00µs
}

// Stations model device channels: two servers, four jobs.
func ExampleStation() {
	eng := sim.NewEngine()
	st := sim.NewStation(eng, 2)
	for i := 0; i < 4; i++ {
		i := i
		st.Submit(10*sim.Microsecond, func(sojourn sim.Duration) {
			fmt.Printf("job %d done after %v\n", i, sojourn)
		})
	}
	eng.Run()
	// Output:
	// job 0 done after 10.00µs
	// job 1 done after 10.00µs
	// job 2 done after 20.00µs
	// job 3 done after 20.00µs
}
