package sim

import (
	"container/heap"
	"fmt"
)

// An event is a callback scheduled at a point in virtual time. Events at the
// same instant fire in scheduling order (seq breaks ties), which keeps runs
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// index within the heap, or -1 once cancelled/popped.
	index int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation driver: a virtual clock plus a
// priority queue of pending events. An Engine is not safe for concurrent use;
// each simulation run owns exactly one Engine and executes single-threaded,
// which is what makes runs reproducible.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// processed counts events executed, exposed for tests and runaway guards.
	processed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Handle identifies a scheduled event so it can be cancelled before firing.
type Handle struct {
	ev *event
}

// Cancel removes the event from the engine if it has not fired yet and
// reports whether it was still pending.
func (h Handle) Cancel(e *Engine) bool {
	if h.ev == nil || h.ev.index < 0 {
		return false
	}
	heap.Remove(&e.events, h.ev.index)
	return true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a bug in the caller's time arithmetic.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Immediately schedules fn at the current instant, after any events already
// queued for this instant.
func (e *Engine) Immediately(fn func()) Handle {
	return e.At(e.now, fn)
}

// Step executes the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 || e.stopped {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if the queue drained earlier).
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event returns. Pending events
// stay queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }
