package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/invariant"
)

// Registered invariants for the event kernel. The virtual clock may only
// move forward (a fired event's timestamp is never before the current time),
// and the live-event count can never go negative — either failing means the
// heap, the tombstone bookkeeping, or a caller's time arithmetic is corrupt.
var (
	ckClockMonotonic = invariant.Register("sim.clock.monotonic")
	ckLiveEvents     = invariant.Register("sim.events.live-nonnegative")
)

// An event is a callback scheduled at a point in virtual time. Events at the
// same instant fire in scheduling order (seq breaks ties), which keeps runs
// deterministic. Events are stored by value in an inlined 4-ary min-heap:
// no per-event allocation and no container/heap interface boxing on the
// schedule/fire hot path.
type event struct {
	at   Time
	seq  uint64
	slot int32
	fn   func()
}

// eventSlot carries the cancellation state of one pending event. Slots are
// recycled through a free list; gen stamps invalidate Handles from earlier
// tenancies of the same slot, so cancel-after-fire is a cheap no-op.
type eventSlot struct {
	gen       uint64
	cancelled bool
}

// Engine is a discrete-event simulation driver: a virtual clock plus a
// priority queue of pending events. An Engine is not safe for concurrent use;
// each simulation run owns exactly one Engine and executes single-threaded,
// which is what makes runs reproducible. (Independent runs parallelize at a
// higher level — see internal/experiments — with one Engine per goroutine.)
type Engine struct {
	now  Time
	heap []event // 4-ary min-heap ordered by (at, seq); may hold tombstones
	seq  uint64
	// slots/freeSlots implement generation-stamped lazy cancellation:
	// Cancel only flips a bit, and the tombstone is dropped when it
	// surfaces at the heap top. No O(log n) heap.Remove, no index
	// maintenance on every sift.
	slots     []eventSlot
	freeSlots []int32
	// genBase is the generation fresh slots start from. It advances past
	// every generation ever issued when the slot table is released after a
	// burst (see maybeTrim), so a Handle into the old table can never
	// match a slot of the new one.
	genBase uint64
	live    int // pending events not yet cancelled
	stopped bool
	// processed counts events executed, exposed for tests and runaway guards.
	processed uint64
	// stepHook, when set, observes every fired event (see SetStepHook).
	stepHook func(Time)
}

// newEngineHook lets an observability layer learn about every engine the
// program creates without sim importing it (that would be an import cycle:
// obs needs sim.Time). Stored through an atomic pointer because engines are
// created concurrently from experiment worker goroutines.
var newEngineHook atomic.Pointer[func(*Engine)]

// SetNewEngineHook installs fn to be called with every engine returned by
// NewEngine, and returns a func that restores the previous hook. Passing nil
// clears the hook. Install hooks at setup time, before simulations start.
func SetNewEngineHook(fn func(*Engine)) (restore func()) {
	var p *func(*Engine)
	if fn != nil {
		p = &fn
	}
	prev := newEngineHook.Swap(p)
	return func() { newEngineHook.Store(prev) }
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	e := &Engine{}
	if fn := newEngineHook.Load(); fn != nil {
		(*fn)(e)
	}
	return e
}

// NewUnobservedEngine returns an engine that bypasses the new-engine hook.
// Offline staging runs (baseline calibration) use it so that the set of
// observed engines — and therefore any exported trace — does not depend on
// calibration-cache warmth or worker interleaving.
func NewUnobservedEngine() *Engine {
	return &Engine{}
}

// SetStepHook installs fn to be called with the clock time of every event
// this engine fires, just before the event's callback runs. A nil fn removes
// the hook. The disabled cost is one nil check per event.
func (e *Engine) SetStepHook(fn func(Time)) { e.stepHook = fn }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Handle identifies a scheduled event so it can be cancelled before firing.
// The zero Handle is valid and never matches a live event.
type Handle struct {
	slot int32
	gen  uint64
}

// Cancel removes the event from the engine if it has not fired yet and
// reports whether it was still pending. Double-cancel and cancel-after-fire
// are explicit no-ops: the generation stamp no longer matches (or the
// cancelled bit is already set), so Cancel returns false without touching
// the heap.
//
// Cancellation is lazy — only a bit flips here — but when tombstones come to
// dominate the heap (more dead than live entries) the heap is compacted in
// one O(n) pass, so a cancel-heavy phase cannot leave the schedule path
// sifting through a graveyard. The compaction cost is amortized: it removes
// more than half the heap, so each cancelled event pays O(1) extra.
func (h Handle) Cancel(e *Engine) bool {
	if h.gen == 0 || int(h.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.slot]
	if s.gen != h.gen || s.cancelled {
		return false
	}
	s.cancelled = true
	e.live--
	if n := len(e.heap); n >= compactMinHeap && n-e.live > n/2 {
		e.compact()
	}
	return true
}

// compactMinHeap is the heap size below which tombstone compaction is not
// worth the rebuild; tiny heaps drain tombstones through peekLive anyway.
const compactMinHeap = 64

// compact drops every tombstone from the heap in one pass and restores the
// heap order of the survivors. Pop order is fully determined by (at, seq),
// so compaction is invisible to the simulation: only memory and sift depth
// change.
func (e *Engine) compact() {
	h := e.heap
	k := 0
	for _, ev := range h {
		if e.slots[ev.slot].cancelled {
			e.freeSlot(ev.slot)
			continue
		}
		h[k] = ev
		k++
	}
	for i := k; i < len(h); i++ {
		h[i] = event{} // drop fn references of removed tombstones
	}
	e.heap = h[:k]
	for i := (k - 2) >> 2; i >= 0; i-- {
		e.siftDown(i, e.heap[i])
	}
}

// allocSlot returns a slot index for a new event, recycling freed slots.
func (e *Engine) allocSlot() int32 {
	if n := len(e.freeSlots); n > 0 {
		slot := e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		e.slots[slot].cancelled = false
		return slot
	}
	if e.genBase == 0 {
		e.genBase = 1
	}
	e.slots = append(e.slots, eventSlot{gen: e.genBase})
	return int32(len(e.slots) - 1)
}

// freeSlot retires a slot once its event left the heap (fired or dropped as
// a tombstone). Bumping gen invalidates every outstanding Handle to it.
func (e *Engine) freeSlot(slot int32) {
	e.slots[slot].gen++
	e.freeSlots = append(e.freeSlots, slot)
}

// deliverySeqBase is the sequence band for cross-shard deliveries (see
// atKeyed). Local events use the engine's monotone counter, which can never
// reach 2^63, so the two bands cannot collide.
const deliverySeqBase = uint64(1) << 63

// atKeyed schedules a cross-shard delivery at absolute time t, ordered at
// that instant by key instead of by scheduling order: delivery sequence
// numbers live in a band above every local sequence number, so same-instant
// ordering on any engine is "local events first, then deliveries in key
// order" — a rule that does not depend on *when* the delivery was merged in,
// which is what makes sharded runs byte-identical across shard and worker
// counts (see Shards). Keys must be unique per (engine, instant) and stay
// below 2^63.
func (e *Engine) atKeyed(t Time, key uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: delivering event at %v before now %v", t, e.now))
	}
	slot := e.allocSlot()
	e.push(event{at: t, seq: deliverySeqBase | key, slot: slot, fn: fn})
	e.live++
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a bug in the caller's time arithmetic.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	slot := e.allocSlot()
	e.seq++
	e.push(event{at: t, seq: e.seq, slot: slot, fn: fn})
	e.live++
	return Handle{slot: slot, gen: e.slots[slot].gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Immediately schedules fn at the current instant, after any events already
// queued for this instant.
func (e *Engine) Immediately(fn func()) Handle {
	return e.At(e.now, fn)
}

// push inserts ev into the 4-ary heap (hole-based sift-up).
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < ev.at || (h[p].at == ev.at && h[p].seq < ev.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// pop removes and returns the heap minimum (hole-based sift-down).
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop the fn reference
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
	return top
}

// siftDown places v into the heap starting from the hole at index i.
func (e *Engine) siftDown(i int, v event) {
	h := e.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
				m = j
			}
		}
		if v.at < h[m].at || (v.at == h[m].at && v.seq < h[m].seq) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = v
}

// peekLive drops cancelled tombstones off the heap top and reports the next
// live event, if any.
func (e *Engine) peekLive() (event, bool) {
	for len(e.heap) > 0 {
		top := e.heap[0]
		if !e.slots[top.slot].cancelled {
			return top, true
		}
		e.pop()
		e.freeSlot(top.slot)
	}
	return event{}, false
}

// Step executes the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	ev, ok := e.peekLive()
	if !ok {
		return false
	}
	e.pop()
	e.freeSlot(ev.slot)
	e.live--
	if invariant.On {
		ckClockMonotonic.Assert(ev.at >= e.now,
			"event at %v fires with clock already at %v", ev.at, e.now)
		ckLiveEvents.Assert(e.live >= 0, "live event count %d", e.live)
	}
	e.now = ev.at
	e.processed++
	if e.stepHook != nil {
		e.stepHook(e.now)
	}
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
	e.maybeTrim()
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if the queue drained earlier).
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		ev, ok := e.peekLive()
		if !ok || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	e.maybeTrim()
}

// trimSlotThreshold is the slot-table size beyond which a fully drained
// engine releases its heap and slot storage. Steady-state workloads (a few
// hundred concurrent events) never cross it, so the zero-alloc schedule path
// is untouched; a burst that pinned tens of thousands of slots is given back
// to the allocator once the burst drains instead of being held for the life
// of the engine.
const trimSlotThreshold = 4096

// maybeTrim releases the heap, slot table, and free lists after a full drain
// if a past burst left them oversized. Only safe when nothing is pending:
// every slot is then free, and advancing genBase past every generation ever
// issued keeps stale Handles into the old table from matching the new one.
func (e *Engine) maybeTrim() {
	if e.live != 0 || len(e.heap) != 0 || len(e.slots) <= trimSlotThreshold {
		return
	}
	for i := range e.slots {
		if g := e.slots[i].gen; g >= e.genBase {
			e.genBase = g + 1
		}
	}
	e.slots, e.freeSlots, e.heap = nil, nil, nil
}

// nextLiveEvent reports the next pending event without executing it.
func (e *Engine) nextLiveEvent() (at Time, ok bool) {
	ev, ok := e.peekLive()
	return ev.at, ok
}

// runWindow executes pending events with timestamps strictly below limit —
// one shard's share of a conservative lookahead window (see Shards). The
// clock is left at the last fired event; it is not advanced to the window
// edge, so the next window start is still derived from real event times.
func (e *Engine) runWindow(limit Time) int {
	n := 0
	for !e.stopped {
		ev, ok := e.peekLive()
		if !ok || ev.at >= limit {
			break
		}
		e.Step()
		n++
	}
	return n
}

// Stop halts Run/RunUntil after the current event returns. Pending events
// stay queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Pending reports how many uncancelled events are queued.
func (e *Engine) Pending() int { return e.live }
