package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceImmediateGrant(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 2)
	granted := 0
	r.Acquire(1, func() { granted++ })
	r.Acquire(1, func() { granted++ })
	eng.Run()
	if granted != 2 {
		t.Fatalf("granted=%d, want 2", granted)
	}
	if r.InUse() != 2 {
		t.Fatalf("inUse=%d, want 2", r.InUse())
	}
}

func TestResourceQueueing(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	var order []int
	r.Acquire(1, func() {
		order = append(order, 1)
		eng.After(10, func() { r.Release(1) })
	})
	r.Acquire(1, func() {
		order = append(order, 2)
		r.Release(1)
	})
	r.Acquire(1, func() { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestResourceLargeRequestBlocksSmall(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 4)
	var order []string
	r.Acquire(3, func() {
		order = append(order, "big1")
		eng.After(10, func() { r.Release(3) })
	})
	// big2 needs 3 units: only 1 free, so it queues. small needs 1 and could
	// fit, but FIFO means it must wait behind big2.
	r.Acquire(3, func() {
		order = append(order, "big2")
		r.Release(3)
	})
	r.Acquire(1, func() { order = append(order, "small") })
	eng.Run()
	want := []string{"big1", "big2", "small"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) on full resource succeeded")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) after release failed")
	}
}

func TestResourceResizeAdmitsWaiters(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	got := 0
	r.Acquire(1, func() { got++ })
	r.Acquire(1, func() { got++ })
	r.Acquire(1, func() { got++ })
	eng.Run()
	if got != 1 {
		t.Fatalf("got=%d before resize, want 1", got)
	}
	r.Resize(3)
	eng.Run()
	if got != 3 {
		t.Fatalf("got=%d after resize, want 3", got)
	}
}

func TestResourcePanics(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { NewResource(eng, 0) })
	mustPanic("acquire 0", func() { r.Acquire(0, func() {}) })
	mustPanic("acquire > capacity", func() { r.Acquire(2, func() {}) })
	mustPanic("release without acquire", func() { r.Release(1) })
}

// Property: a random schedule of acquires and releases never exceeds
// capacity and eventually grants every request.
func TestResourceConservationProperty(t *testing.T) {
	f := func(unitSeeds []uint8, capSeed uint8) bool {
		capacity := int(capSeed%8) + 1
		eng := NewEngine()
		r := NewResource(eng, capacity)
		granted := 0
		holdOK := true
		for _, us := range unitSeeds {
			units := int(us)%capacity + 1
			hold := Duration(us%17) + 1
			r.Acquire(units, func() {
				granted++
				if r.InUse() > r.Capacity() {
					holdOK = false
				}
				eng.After(hold, func() { r.Release(units) })
			})
		}
		eng.Run()
		return holdOK && granted == len(unitSeeds) && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestStationParallelism(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, 2)
	var done []Duration
	for i := 0; i < 4; i++ {
		st.Submit(10, func(sojourn Duration) { done = append(done, sojourn) })
	}
	eng.Run()
	// Two run at [0,10], two wait and run at [10,20]: sojourns 10,10,20,20.
	if len(done) != 4 {
		t.Fatalf("completed %d, want 4", len(done))
	}
	if done[0] != 10 || done[1] != 10 || done[2] != 20 || done[3] != 20 {
		t.Fatalf("sojourns=%v", done)
	}
	if st.Served != 4 {
		t.Fatalf("Served=%d", st.Served)
	}
	if st.BusyTime != 40 {
		t.Fatalf("BusyTime=%v", st.BusyTime)
	}
}

func TestStationResubmitFromDone(t *testing.T) {
	// A done callback that immediately resubmits reuses the just-recycled
	// request object; the closed-loop chain must keep correct accounting.
	eng := NewEngine()
	st := NewStation(eng, 1)
	remaining := 10
	var sojourns []Duration
	var next func(Duration)
	next = func(s Duration) {
		sojourns = append(sojourns, s)
		if remaining > 0 {
			remaining--
			st.Submit(7, next)
		}
	}
	remaining--
	st.Submit(7, next)
	eng.Run()
	if len(sojourns) != 10 {
		t.Fatalf("completed %d, want 10", len(sojourns))
	}
	for i, s := range sojourns {
		if s != 7 {
			t.Fatalf("sojourn[%d]=%v, want 7 (closed loop never queues)", i, s)
		}
	}
	if st.Served != 10 || st.BusyTime != 70 {
		t.Fatalf("Served=%d BusyTime=%v, want 10/70", st.Served, st.BusyTime)
	}
}

func TestStationUtilization(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, 1)
	st.Submit(50, nil)
	eng.RunUntil(100)
	if u := st.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization=%v, want ~0.5", u)
	}
}

func TestStationSetServers(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		st.Submit(10, func(Duration) { finish = append(finish, eng.Now()) })
	}
	st.SetServers(3)
	eng.Run()
	// With 3 servers all finish at t=10.
	for _, f := range finish {
		if f != 10 {
			t.Fatalf("finish times %v, want all 10", finish)
		}
	}
}
