package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Shards is the parallel-in-time kernel: one simulation partitioned into
// isolated domains (shards), each owning a private Engine, synchronized by
// conservative lookahead windows.
//
// The contract a model must honor:
//
//   - Every piece of mutable simulation state belongs to exactly one shard,
//     and is touched only by events scheduled on that shard's Engine.
//   - Cross-shard interaction goes through Send, never through a direct
//     method call or shared variable, and every cross-shard delivery is at
//     least the group's lookahead in the future. Physical models provide
//     that bound naturally: a PCIe hop, an RDMA round-trip, or a
//     dispatcher→machine placement RPC all have latency floors.
//
// Under that contract execution proceeds in windows: the coordinator finds
// the globally earliest pending event at time T, and every shard processes
// its local events with timestamps in [T, T+lookahead) — in parallel when
// driven by multiple workers. Cross-shard messages produced during the
// window are exchanged at the barrier. Because a message sent at time t
// carries a delay >= lookahead and t >= T, its delivery time is >= T +
// lookahead — strictly beyond the window — so no shard can ever receive an
// event in its past. No rollback, no speculation.
//
// Determinism is bit-exact and worker-count independent: each shard's window
// execution is a serial run over private state, and deliveries are ordered
// by a rule with no wall-clock input. Every delivery is scheduled in a
// sequence band above all local events, so at any instant an engine fires
// its local events first and then the deliveries in ascending key order —
// regardless of which barrier merged them in, how many shards exist, or how
// many workers ran the windows. When senders assign keys from stable model
// identity (an actor id plus a per-actor counter — never a shard index),
// the whole simulation is invariant across shard *counts* too, the property
// the datacenter arena's tests pin down.
//
// A lookahead of zero (some cross-domain link with no latency floor) cannot
// form a window; the group then degrades to a serial merge that steps the
// globally earliest event one at a time and flushes cross-shard sends after
// every step — slower, but identical ordering semantics: no deadlock, no
// reordering.
type Shards struct {
	lookahead Duration
	engines   []*Engine

	// outbox[src] buffers cross-shard messages produced by shard src during
	// the current window. Each slice is written only by the goroutine
	// executing that shard, so windows need no locks; the coordinator owns
	// all slices between windows.
	outbox  [][]xmsg
	sendSeq []uint64
	merged  []xmsg // barrier merge scratch

	windows  uint64
	messages uint64
	busy     []int64 // per-shard wall nanos inside windows
	wall     int64   // wall nanos inside Run/RunUntil

	// snapshot of Stats at the last package-totals accounting, so repeated
	// Run/RunUntil calls on one group fold only their delta.
	acctEvents, acctWindows uint64
	acctBusy, acctWall      int64
}

// xmsg is one buffered cross-shard event.
type xmsg struct {
	at  Time
	key uint64
	src int32
	seq uint64 // per-source send sequence, final tie-break
	dst int32
	fn  func()
}

// NewShards builds a group of n engines synchronized with the given
// lookahead. Each engine is created through NewEngine, so observability
// hooks see every shard. A lookahead of zero selects the serial-merge
// fallback (see the type comment); a negative lookahead panics.
func NewShards(n int, lookahead Duration) *Shards {
	if n <= 0 {
		panic("sim: Shards needs at least one shard")
	}
	if lookahead < 0 {
		panic(fmt.Sprintf("sim: negative lookahead %v", lookahead))
	}
	s := &Shards{
		lookahead: lookahead,
		engines:   make([]*Engine, n),
		outbox:    make([][]xmsg, n),
		sendSeq:   make([]uint64, n),
		busy:      make([]int64, n),
	}
	for i := range s.engines {
		s.engines[i] = NewEngine()
	}
	return s
}

// N reports the number of shards.
func (s *Shards) N() int { return len(s.engines) }

// Engine returns shard i's engine, on which domain-local events are
// scheduled directly (At/After/Immediately as usual).
func (s *Shards) Engine(i int) *Engine { return s.engines[i] }

// Lookahead reports the group's conservative lookahead window.
func (s *Shards) Lookahead() Duration { return s.lookahead }

// Send schedules fn on shard dst at shard src's current time plus d. It
// must be called from shard src — from an event executing on src's engine,
// or before the run starts. For src != dst, d must be at least the group's
// lookahead (the conservative-synchronization precondition; violating it
// panics, because it would let a shard observe an event in its past). The
// key is the delivery's position among same-instant events on dst: local
// events fire first, then deliveries in ascending key order — regardless of
// worker count or shard layout (src == dst takes the same keyed path, so a
// one-shard run orders identically to an eight-shard run). Keys must come
// from stable model identity (an actor id and per-actor counter), never
// from shard indices, must stay below 2^63, and must be unique per
// (destination, instant).
func (s *Shards) Send(src, dst int, d Duration, key uint64, fn func()) {
	if src < 0 || src >= len(s.engines) || dst < 0 || dst >= len(s.engines) {
		panic(fmt.Sprintf("sim: Send between invalid shards %d -> %d of %d", src, dst, len(s.engines)))
	}
	if d < 0 {
		panic(fmt.Sprintf("sim: negative cross-shard delay %v", d))
	}
	if src == dst {
		e := s.engines[src]
		e.atKeyed(e.Now().Add(d), key, fn)
		return
	}
	if s.lookahead > 0 && d < s.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %v below lookahead %v", d, s.lookahead))
	}
	s.sendSeq[src]++
	s.outbox[src] = append(s.outbox[src], xmsg{
		at:  s.engines[src].Now().Add(d),
		key: key,
		src: int32(src),
		seq: s.sendSeq[src],
		dst: int32(dst),
		fn:  fn,
	})
}

// Run executes the whole group until every shard drains, driving windows
// with the given number of worker goroutines (values below 2, or a
// single-shard group, run serially; output is byte-identical either way).
func (s *Shards) Run(workers int) { s.RunUntil(MaxTime, workers) }

// RunUntil executes the group's events with timestamps <= t, then advances
// every shard's clock to exactly t (even if the queues drained earlier).
func (s *Shards) RunUntil(t Time, workers int) {
	start := time.Now()
	defer func() {
		s.wall += int64(time.Since(start))
		s.accountTotals()
	}()

	if s.lookahead <= 0 {
		s.runSerialMerge(t)
	} else {
		s.runWindows(t, workers)
	}
	if t < MaxTime {
		for _, e := range s.engines {
			e.RunUntil(t) // queues are drained past t; this advances clocks
		}
	}
}

// runWindows is the conservative windowed driver.
func (s *Shards) runWindows(until Time, workers int) {
	if workers > len(s.engines) {
		workers = len(s.engines)
	}
	var pool *windowPool
	if workers > 1 {
		pool = s.startPool(workers)
		defer pool.stop()
	}
	for {
		s.deliver()
		t, ok := s.earliest()
		if !ok || t > until {
			return
		}
		limit := t.Add(s.lookahead)
		if limit < t { // overflow: unbounded window
			limit = MaxTime
		}
		if until < MaxTime && limit > until {
			limit = until + 1 // RunUntil semantics: events at exactly until run
		}
		s.windows++
		if pool != nil {
			pool.runWindow(limit)
		} else {
			for i, e := range s.engines {
				ws := time.Now()
				e.runWindow(limit)
				s.busy[i] += int64(time.Since(ws))
			}
		}
	}
}

// earliest reports the earliest pending event time across all shards.
func (s *Shards) earliest() (Time, bool) {
	var t Time
	any := false
	for _, e := range s.engines {
		if nt, ok := e.nextLiveEvent(); ok && (!any || nt < t) {
			t, any = nt, true
		}
	}
	return t, any
}

// deliver merges every buffered cross-shard message into its destination
// engine. The ordering of same-instant deliveries is carried by the key
// (see Engine.atKeyed), not by insertion order, so the merge itself only
// needs to be conflict-checked, not carefully sequenced; messages are still
// sorted canonically so the duplicate-key contract check is one adjacency
// scan. All delivery times are at or beyond every destination clock (the
// conservative invariant), so atKeyed never sees the past.
func (s *Shards) deliver() {
	m := s.merged[:0]
	for src := range s.outbox {
		m = append(m, s.outbox[src]...)
		if len(s.outbox[src]) > 0 {
			ob := s.outbox[src]
			for i := range ob {
				ob[i] = xmsg{} // drop fn references
			}
			s.outbox[src] = ob[:0]
		}
	}
	if len(m) == 0 {
		return
	}
	sortMsgs(m)
	for i := range m {
		if i > 0 && m[i].dst == m[i-1].dst && m[i].at == m[i-1].at && m[i].key == m[i-1].key {
			panic(fmt.Sprintf("sim: duplicate cross-shard key %d for shard %d at %v (keys must be unique per destination and instant)",
				m[i].key, m[i].dst, m[i].at))
		}
		s.engines[m[i].dst].atKeyed(m[i].at, m[i].key, m[i].fn)
		m[i] = xmsg{}
	}
	s.messages += uint64(len(m))
	s.merged = m[:0]
}

// sortMsgs orders messages by (dst, at, key, src, seq).
func sortMsgs(m []xmsg) {
	sort.Slice(m, func(i, j int) bool {
		a, b := &m[i], &m[j]
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.at != b.at {
			return a.at < b.at
		}
		if a.key != b.key {
			return a.key < b.key
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}

// runSerialMerge is the zero-lookahead fallback: a single logical event
// loop that steps the globally earliest event (ties to the lowest shard)
// and flushes cross-shard sends after every step. Delivery ordering is the
// same keyed rule the windowed driver uses, so the fallback changes only
// the schedule of the driver loop, never the order events fire. Serial by
// construction — correctness is preserved, parallelism is not.
func (s *Shards) runSerialMerge(until Time) {
	for {
		s.deliver()
		best := -1
		var et Time
		for i, e := range s.engines {
			if nt, ok := e.nextLiveEvent(); ok && (best < 0 || nt < et) {
				best, et = i, nt
			}
		}
		if best < 0 || et > until {
			return
		}
		ws := time.Now()
		s.engines[best].Step()
		s.busy[best] += int64(time.Since(ws))
	}
}

// --- parallel window pool ---

// windowPool is a persistent worker pool reused across windows, so a run
// with tens of thousands of barriers does not spawn goroutines per window.
type windowPool struct {
	s       *Shards
	workers int
	limit   Time
	next    atomic.Int64
	start   chan struct{}
	wg      sync.WaitGroup
}

func (s *Shards) startPool(workers int) *windowPool {
	p := &windowPool{s: s, workers: workers, start: make(chan struct{})}
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

func (p *windowPool) work() {
	for range p.start {
		n := len(p.s.engines)
		for {
			i := int(p.next.Add(1)) - 1
			if i >= n {
				break
			}
			ws := time.Now()
			p.s.engines[i].runWindow(p.limit)
			p.s.busy[i] += int64(time.Since(ws))
		}
		p.wg.Done()
	}
}

// runWindow executes one window across the pool and blocks until every
// shard reaches the window edge.
func (p *windowPool) runWindow(limit Time) {
	p.limit = limit
	p.next.Store(0)
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.start <- struct{}{}
	}
	p.wg.Wait()
}

func (p *windowPool) stop() { close(p.start) }

// --- throughput accounting ---

// ShardStats summarizes one group's execution for throughput reporting.
// Events and Windows are deterministic simulation quantities; BusyNanos and
// WallNanos are wall-clock measurements (reporting only — nothing feeds
// them back into the simulation).
type ShardStats struct {
	Shards   int
	Events   uint64 // events fired across all sub-engines
	Windows  uint64 // lookahead windows executed
	Messages uint64 // cross-shard messages delivered
	Busy     time.Duration
	Wall     time.Duration
}

// Stats reports the group's cumulative execution statistics.
func (s *Shards) Stats() ShardStats {
	st := ShardStats{Shards: len(s.engines), Windows: s.windows, Messages: s.messages, Wall: time.Duration(s.wall)}
	for _, e := range s.engines {
		st.Events += e.Processed()
	}
	for _, b := range s.busy {
		st.Busy += time.Duration(b)
	}
	return st
}

// Package-level totals across every Shards run, for CLI summaries
// ("aggregate events/sec", "effective shard parallelism"). Atomic because
// experiment grids run cells — each with its own group — concurrently.
var shardTotals struct {
	events, windows atomic.Uint64
	busy, wall      atomic.Int64
}

// accountTotals folds the delta since this group's last accounting into the
// package totals (Run/RunUntil may be called repeatedly on one group).
func (s *Shards) accountTotals() {
	st := s.Stats()
	shardTotals.events.Add(st.Events - s.acctEvents)
	shardTotals.windows.Add(st.Windows - s.acctWindows)
	shardTotals.busy.Add(int64(st.Busy) - s.acctBusy)
	shardTotals.wall.Add(int64(st.Wall) - s.acctWall)
	s.acctEvents, s.acctWindows = st.Events, st.Windows
	s.acctBusy, s.acctWall = int64(st.Busy), int64(st.Wall)
}

// ShardRunTotals reports the cumulative ShardStats aggregated across every
// Shards run since the last reset. Wall over busy gives effective shard
// parallelism; events over wall gives aggregate events/sec.
func ShardRunTotals() ShardStats {
	return ShardStats{
		Events:  shardTotals.events.Load(),
		Windows: shardTotals.windows.Load(),
		Busy:    time.Duration(shardTotals.busy.Load()),
		Wall:    time.Duration(shardTotals.wall.Load()),
	}
}

// ResetShardRunTotals zeroes the package-level shard totals.
func ResetShardRunTotals() {
	shardTotals.events.Store(0)
	shardTotals.windows.Store(0)
	shardTotals.busy.Store(0)
	shardTotals.wall.Store(0)
}
