// Package sim provides the discrete-event simulation kernel on which every
// other subsystem of this repository runs.
//
// The kernel is deliberately small: a virtual clock, an event heap, and a few
// reusable synchronization primitives (Resource, Queue, Timer). All far-memory
// devices, swap paths, VMs, and cluster schedulers are expressed as callbacks
// scheduled on an Engine. Nothing in the package reads the wall clock, so
// simulations are fully deterministic given their inputs.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on the simulation's virtual clock, in nanoseconds since the
// start of the run. It is a distinct type so that virtual time cannot be
// accidentally mixed with wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// MaxTime is the largest representable point in virtual time.
const MaxTime Time = math.MaxInt64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// DurationOf converts a floating-point number of seconds into a Duration,
// saturating rather than overflowing for very large values.
func DurationOf(seconds float64) Duration {
	ns := seconds * float64(Second)
	if ns >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	if ns <= math.MinInt64 {
		return Duration(math.MinInt64)
	}
	return Duration(ns)
}

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }
