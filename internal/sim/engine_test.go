package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(30, func() { got = append(got, 3) })
	eng.At(10, func() { got = append(got, 1) })
	eng.At(20, func() { got = append(got, 2) })
	eng.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if eng.Now() != 30 {
		t.Fatalf("clock = %v, want 30", eng.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5, func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var trace []Time
	eng.At(10, func() {
		trace = append(trace, eng.Now())
		eng.After(5, func() { trace = append(trace, eng.Now()) })
	})
	eng.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("nested scheduling trace = %v", trace)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(5, func() {})
	})
	eng.Run()
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	h := eng.At(10, func() { fired = true })
	if !h.Cancel(eng) {
		t.Fatal("first cancel should succeed")
	}
	if h.Cancel(eng) {
		t.Fatal("second cancel should fail")
	}
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	eng := NewEngine()
	var got []int
	var handles []Handle
	for i := 0; i < 20; i++ {
		i := i
		handles = append(handles, eng.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel the odd ones.
	for i := 1; i < 20; i += 2 {
		if !handles[i].Cancel(eng) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10: %v", len(got), got)
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	eng := NewEngine()
	fired := false
	h := eng.At(10, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if h.Cancel(eng) {
		t.Fatal("cancel-after-fire must be a no-op returning false")
	}
	// The fired event's slot is recycled by the next event; the stale handle
	// must not be able to cancel the new tenant.
	fired2 := false
	eng.At(20, func() { fired2 = true })
	if h.Cancel(eng) {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	eng.Run()
	if !fired2 {
		t.Fatal("recycled-slot event did not fire")
	}
}

func TestEngineDoubleCancel(t *testing.T) {
	eng := NewEngine()
	h := eng.At(10, func() { t.Error("cancelled event fired") })
	if !h.Cancel(eng) {
		t.Fatal("first cancel should succeed")
	}
	for i := 0; i < 3; i++ {
		if h.Cancel(eng) {
			t.Fatal("double-cancel must be a no-op returning false")
		}
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0", eng.Pending())
	}
	eng.Run()
	if h.Cancel(eng) {
		t.Fatal("cancel after the tombstone drained should still be a no-op")
	}
}

func TestEngineCancelThenRun(t *testing.T) {
	// Cancel interleaved with Run: events cancelled from inside a running
	// event (including at the same instant) must not fire, and the clock
	// must not advance to a cancelled event's timestamp.
	eng := NewEngine()
	var got []int
	var hLater, hSame Handle
	hLater = eng.At(30, func() { got = append(got, 30) })
	eng.At(10, func() {
		got = append(got, 10)
		hSame = eng.At(10, func() { got = append(got, 11) })
		if !hSame.Cancel(eng) {
			t.Error("same-instant cancel from inside an event failed")
		}
		if !hLater.Cancel(eng) {
			t.Error("cancel of a later event from inside an event failed")
		}
	})
	eng.At(20, func() { got = append(got, 20) })
	eng.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("cancel-then-run trace = %v, want [10 20]", got)
	}
	if eng.Now() != 20 {
		t.Fatalf("clock advanced to %v; cancelled tail event must not move it past 20", eng.Now())
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", eng.Pending())
	}
}

func TestEngineZeroHandleCancel(t *testing.T) {
	eng := NewEngine()
	var h Handle
	eng.At(5, func() {})
	if h.Cancel(eng) {
		t.Fatal("zero Handle must never cancel anything")
	}
	eng.Run()
	if eng.Processed() != 1 {
		t.Fatalf("processed = %d, want 1", eng.Processed())
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	eng.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %v", fired)
	}
	if eng.Now() != 20 {
		t.Fatalf("clock after RunUntil = %v, want 20", eng.Now())
	}
	eng.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining events did not fire: %v", fired)
	}
}

func TestEngineRunUntilAdvancesEmptyClock(t *testing.T) {
	eng := NewEngine()
	eng.RunUntil(100)
	if eng.Now() != 100 {
		t.Fatalf("clock = %v, want 100", eng.Now())
	}
}

func TestEngineStopResume(t *testing.T) {
	eng := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		eng.At(Time(i), func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
	eng.Resume()
	eng.Run()
	if count != 5 {
		t.Fatalf("Resume did not continue: count=%d", count)
	}
}

// Property: however events are scheduled, they fire in nondecreasing time
// order and the processed count matches.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []uint32) bool {
		eng := NewEngine()
		var fired []Time
		for _, raw := range times {
			at := Time(raw % 1_000_000)
			eng.At(at, func() { fired = append(fired, eng.Now()) })
		}
		eng.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return eng.Processed() == uint64(len(times))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved schedule/cancel keeps the heap consistent — exactly
// the uncancelled events fire, in order.
func TestEngineCancelProperty(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		eng := NewEngine()
		fired := map[int]bool{}
		var handles []Handle
		for i, raw := range times {
			i := i
			handles = append(handles, eng.At(Time(raw), func() { fired[i] = true }))
		}
		cancelled := map[int]bool{}
		for i := range handles {
			if i < len(cancelMask) && cancelMask[i] {
				if handles[i].Cancel(eng) {
					cancelled[i] = true
				}
			}
		}
		eng.Run()
		for i := range times {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.50µs"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	if DurationOf(1.5) != 1500*Millisecond {
		t.Fatalf("DurationOf(1.5) = %v", DurationOf(1.5))
	}
	if DurationOf(1e30) <= 0 {
		t.Fatal("DurationOf should saturate, not overflow")
	}
	if DurationOf(-1e30) >= 0 {
		t.Fatal("DurationOf should saturate negative")
	}
}
