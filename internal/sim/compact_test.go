package sim

import (
	"testing"
)

// Tests for the two memory-behavior fixes layered onto the kernel: tombstone
// compaction when dead events dominate the heap, and releasing burst-sized
// slot/heap storage once an engine fully drains.

func TestEngineCompactOnCancelHeavyHeap(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	const n = 10_000
	handles := make([]Handle, 0, n)
	for i := 0; i < n; i++ {
		handles = append(handles, eng.After(Duration(i), fn))
	}
	for _, h := range handles {
		if !h.Cancel(eng) {
			t.Fatal("cancel of a pending event returned false")
		}
	}
	// All events are dead; compaction must have fired well before the last
	// cancel, without waiting for a Run to drain tombstones off the top.
	if len(eng.heap) > n/2 {
		t.Fatalf("heap holds %d entries after cancelling all %d (compaction never fired)", len(eng.heap), n)
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d after cancelling everything", eng.Pending())
	}
	eng.Run()
	if eng.Now() != 0 {
		t.Fatalf("clock moved to %v firing cancelled events", eng.Now())
	}
}

func TestEngineCompactPreservesOrderAndCancels(t *testing.T) {
	// Interleave survivors with a cancelled majority, forcing at least one
	// compaction, then check the survivors fire in exactly timestamp/seq
	// order and the cancelled ones never fire.
	eng := NewEngine()
	const n = 4096
	var fired []int
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		i := i
		// Reverse times so cancels hit the middle of the heap, not the top.
		handles[i] = eng.At(Time(n-i), func() { fired = append(fired, i) })
	}
	for i := 0; i < n; i++ {
		if i%8 != 0 {
			handles[i].Cancel(eng)
		}
	}
	eng.Run()
	if want := n / 8; len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	for j := 1; j < len(fired); j++ {
		// Later-scheduled events have earlier times here, so firing order is
		// descending index.
		if fired[j] >= fired[j-1] {
			t.Fatalf("events fired out of order: %d then %d", fired[j-1], fired[j])
		}
	}
}

func TestEngineCompactThenCancelRemainder(t *testing.T) {
	// A Handle taken before compaction must still cancel correctly after the
	// heap has been rebuilt around it.
	eng := NewEngine()
	fn := func() {}
	const n = 1024
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		handles[i] = eng.After(Duration(i), fn)
	}
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			handles[i].Cancel(eng)
		}
	}
	for i := 0; i < n; i += 4 {
		if !handles[i].Cancel(eng) {
			t.Fatalf("post-compaction cancel of survivor %d returned false", i)
		}
	}
	eng.Run()
	if got := eng.Processed(); got != 0 {
		t.Fatalf("processed %d events, want 0", got)
	}
}

func TestEngineTrimReleasesBurstStorage(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	const burst = 3 * trimSlotThreshold
	for i := 0; i < burst; i++ {
		eng.After(Duration(i), fn)
	}
	if len(eng.slots) < burst {
		t.Fatalf("slot table %d, want >= %d", len(eng.slots), burst)
	}
	eng.Run()
	if eng.slots != nil || eng.freeSlots != nil || eng.heap != nil {
		t.Fatalf("burst storage not released after drain: slots=%d free=%d heap=%d",
			len(eng.slots), len(eng.freeSlots), len(eng.heap))
	}
	// The engine must keep working after the trim.
	ran := false
	eng.After(1, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("engine dead after trim")
	}
}

func TestEngineTrimInvalidatesStaleHandles(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	const burst = 2 * trimSlotThreshold
	handles := make([]Handle, burst)
	for i := 0; i < burst; i++ {
		handles[i] = eng.After(Duration(i), fn)
	}
	eng.Run() // fires everything, then trims
	// Schedule fresh events that reuse the low slot indices; stale handles
	// from before the trim must not cancel them.
	fresh := 0
	for i := 0; i < 64; i++ {
		eng.After(Duration(i), func() { fresh++ })
	}
	for _, h := range handles {
		if h.Cancel(eng) {
			t.Fatal("stale pre-trim handle cancelled a post-trim event")
		}
	}
	eng.Run()
	if fresh != 64 {
		t.Fatalf("fired %d fresh events, want 64", fresh)
	}
}

func TestEngineSmallSteadyStateNotTrimmed(t *testing.T) {
	// Steady-state populations far below the threshold keep their storage,
	// preserving the zero-alloc schedule path.
	eng := NewEngine()
	fn := func() {}
	for round := 0; round < 10; round++ {
		for i := 0; i < 256; i++ {
			eng.After(Duration(i), fn)
		}
		eng.Run()
	}
	if eng.slots == nil {
		t.Fatal("steady-state slot table was trimmed away")
	}
	if len(eng.slots) > trimSlotThreshold {
		t.Fatalf("steady-state slot table grew to %d", len(eng.slots))
	}
}

func TestStationFreeListBounded(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, 4)
	// A burst far above the bound: submit 10k requests at once.
	const burst = 10_000
	for i := 0; i < burst; i++ {
		st.Submit(Duration(1+i%7), nil)
	}
	eng.Run()
	if st.Served != burst {
		t.Fatalf("served %d, want %d", st.Served, burst)
	}
	if len(st.free) > maxFreeReqs {
		t.Fatalf("free list holds %d requests after burst, bound is %d", len(st.free), maxFreeReqs)
	}
	// Steady state keeps recycling.
	st.Submit(5, nil)
	eng.Run()
	if st.Served != burst+1 {
		t.Fatal("station dead after burst")
	}
}
