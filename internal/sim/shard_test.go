package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// traceRec is one observed event execution, for comparing runs.
type traceRec struct {
	shard int
	at    Time
	tag   string
}

// runPingPong builds and runs a deterministic multi-shard model: each shard
// runs a local event chain, and every third event sends a cross-shard
// message (with delay >= lookahead, or the given delay under zero lookahead)
// to the next shard. Keys come from stable (shard, counter) identity, never
// from wall-clock or goroutine order. Traces are per-shard: each shard's
// slice is touched only by events running on that shard, so the model is
// race-free under parallel windows, and the per-shard sequences are exactly
// what determinism promises to hold invariant.
func runPingPong(shards, workers, steps int, lookahead, msgDelay Duration) [][]traceRec {
	s := NewShards(shards, lookahead)
	traces := make([][]traceRec, shards)
	counters := make([]uint64, shards)
	for i := 0; i < shards; i++ {
		i := i
		var tick func()
		step := 0
		tick = func() {
			e := s.Engine(i)
			traces[i] = append(traces[i], traceRec{i, e.Now(), fmt.Sprintf("tick%d.%d", i, step)})
			step++
			if step >= steps {
				return
			}
			if step%3 == 0 {
				dst := (i + 1) % shards
				counters[i]++
				key := uint64(i+1)<<32 | counters[i]
				from, at := i, step
				s.Send(i, dst, msgDelay, key, func() {
					traces[dst] = append(traces[dst], traceRec{dst, s.Engine(dst).Now(),
						fmt.Sprintf("msg%d->%d@%d", from, dst, at)})
				})
			}
			e.After(Duration(10+i), tick)
		}
		s.Engine(i).At(Time(i), tick)
	}
	s.Run(workers)
	return traces
}

func TestShardsWorkerCountInvariant(t *testing.T) {
	const shards, steps = 4, 30
	la := Duration(50)
	ref := runPingPong(shards, 1, steps, la, la)
	for _, workers := range []int{2, 4, 8} {
		got := runPingPong(shards, workers, steps, la, la)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged from serial reference", workers)
		}
	}
}

func TestShardsZeroLookaheadSerialMerge(t *testing.T) {
	// lookahead 0 must fall back to a serial merge: no deadlock, and the
	// per-shard trajectories must match a positive-lookahead run whose
	// message delays are identical. We use delay 50 for messages in both
	// runs; only the lookahead differs (50 vs 0), so windows vs serial merge
	// is the only changed variable.
	const shards, steps = 3, 30
	windowed := runPingPong(shards, 4, steps, 50, 50)
	serial := runPingPong(shards, 4, steps, 0, 50)
	if !reflect.DeepEqual(windowed, serial) {
		t.Fatalf("zero-lookahead serial merge diverged from windowed run")
	}
}

func TestShardsZeroLookaheadSameInstantKeyOrder(t *testing.T) {
	// Two shards send zero-delay messages to shard 2 at the same instant.
	// Delivery must follow key order, not send order or shard order.
	s := NewShards(3, 0)
	var got []string
	s.Engine(0).At(5, func() {
		s.Send(0, 2, 0, 20, func() { got = append(got, "key20") })
	})
	s.Engine(1).At(5, func() {
		s.Send(1, 2, 0, 10, func() { got = append(got, "key10") })
	})
	s.Run(1)
	want := []string{"key10", "key20"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("same-instant delivery order = %v, want %v", got, want)
	}
}

func TestShardsCrossShardDeliveryTime(t *testing.T) {
	s := NewShards(2, Duration(100))
	var at Time
	s.Engine(0).At(7, func() {
		s.Send(0, 1, 150, 1, func() { at = s.Engine(1).Now() })
	})
	s.Run(2)
	if at != 157 {
		t.Fatalf("cross-shard delivery at %v, want 157", at)
	}
}

func TestShardsSendValidation(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		fn()
	}
	s := NewShards(2, Duration(100))
	mustPanic("below lookahead", "below lookahead", func() { s.Send(0, 1, 50, 1, func() {}) })
	mustPanic("negative delay", "negative", func() { s.Send(0, 1, -1, 1, func() {}) })
	mustPanic("bad src", "invalid shards", func() { s.Send(-1, 1, 200, 1, func() {}) })
	mustPanic("bad dst", "invalid shards", func() { s.Send(0, 2, 200, 1, func() {}) })
	mustPanic("zero shards", "at least one", func() { NewShards(0, 0) })
	mustPanic("negative lookahead", "negative lookahead", func() { NewShards(1, -1) })
}

func TestShardsLocalSendIsPlainSchedule(t *testing.T) {
	// src == dst takes the plain After path: no lookahead floor applies.
	s := NewShards(2, Duration(100))
	fired := false
	s.Engine(0).At(3, func() {
		s.Send(0, 0, 1, 0, func() { fired = true })
	})
	s.Run(1)
	if !fired {
		t.Fatal("local send did not fire")
	}
}

func TestShardsRunUntilAdvancesAllClocks(t *testing.T) {
	s := NewShards(3, Duration(10))
	s.Engine(0).At(5, func() {})
	s.RunUntil(1000, 2)
	for i := 0; i < s.N(); i++ {
		if now := s.Engine(i).Now(); now != 1000 {
			t.Fatalf("shard %d clock at %v, want 1000", i, now)
		}
	}
}

func TestShardsRunUntilIncludesBoundary(t *testing.T) {
	s := NewShards(2, Duration(10))
	fired := 0
	s.Engine(0).At(100, func() { fired++ })
	s.Engine(1).At(101, func() { fired++ })
	s.RunUntil(100, 1)
	if fired != 1 {
		t.Fatalf("events fired = %d, want 1 (boundary inclusive, beyond excluded)", fired)
	}
	s.Run(1)
	if fired != 2 {
		t.Fatalf("resumed run fired = %d, want 2", fired)
	}
}

func TestShardsChainedSendsAcrossWindows(t *testing.T) {
	// A relay: 0 -> 1 -> 2 -> 0, each hop at exactly the lookahead. Verifies
	// messages generated *by delivered messages* keep flowing across many
	// windows.
	const hops = 30
	s := NewShards(3, Duration(100))
	var times []Time
	var relay func(hop int)
	relay = func(hop int) {
		if hop >= hops {
			return
		}
		src := hop % 3
		dst := (hop + 1) % 3
		s.Send(src, dst, 100, uint64(hop), func() {
			times = append(times, s.Engine(dst).Now())
			relay(hop + 1)
		})
	}
	s.Engine(0).At(0, func() { relay(0) })
	s.Run(3)
	if len(times) != hops {
		t.Fatalf("relay delivered %d hops, want %d", len(times), hops)
	}
	for i, at := range times {
		if want := Time(100 * (i + 1)); at != want {
			t.Fatalf("hop %d at %v, want %v", i, at, want)
		}
	}
}

func TestShardsStats(t *testing.T) {
	ResetShardRunTotals()
	s := NewShards(2, Duration(100))
	for i := 0; i < 10; i++ {
		i := i
		s.Engine(i%2).At(Time(i*10), func() {})
	}
	s.Engine(0).At(0, func() {
		s.Send(0, 1, 100, 1, func() {})
	})
	s.Run(2)
	st := s.Stats()
	if st.Shards != 2 {
		t.Fatalf("Shards = %d", st.Shards)
	}
	if st.Events != 12 { // 10 + trigger + delivered message
		t.Fatalf("Events = %d, want 12", st.Events)
	}
	if st.Messages != 1 {
		t.Fatalf("Messages = %d, want 1", st.Messages)
	}
	if st.Windows == 0 {
		t.Fatal("Windows = 0, want > 0")
	}
	tot := ShardRunTotals()
	if tot.Events != st.Events {
		t.Fatalf("package totals events = %d, want %d", tot.Events, st.Events)
	}
	// Repeated accounting must fold deltas, not double-count.
	s.Engine(0).At(s.Engine(0).Now()+1, func() {})
	s.Run(2)
	if tot2 := ShardRunTotals(); tot2.Events != st.Events+1 {
		t.Fatalf("package totals after second run = %d, want %d", tot2.Events, st.Events+1)
	}
	ResetShardRunTotals()
	if tot3 := ShardRunTotals(); tot3.Events != 0 {
		t.Fatalf("totals after reset = %d, want 0", tot3.Events)
	}
}

func TestShardsShardCountInvariantWithStableKeys(t *testing.T) {
	// The same logical model — N actors exchanging keyed messages — must
	// produce identical per-actor trajectories whether actors share one
	// shard or get one shard each, because message keys come from actor
	// identity, not shard identity. This is the property the datacenter
	// arena relies on to make -shards output-invariant.
	const actors, rounds = 6, 8
	la := Duration(100)

	type rec struct {
		at  Time
		tag string
	}
	run := func(shards int) [][]rec {
		s := NewShards(shards, la)
		traces := make([][]rec, actors)
		var ctr = make([]uint64, actors)
		shardOf := func(a int) int { return a % shards }
		var start func(a, round int)
		start = func(a, round int) {
			if round >= rounds {
				return
			}
			src := shardOf(a)
			e := s.Engine(src)
			e.After(Duration(7+a), func() {
				traces[a] = append(traces[a], rec{e.Now(), fmt.Sprintf("work%d", round)})
				peer := (a + 1) % actors
				ctr[a]++
				key := uint64(a+1)<<32 | ctr[a]
				d := la
				if shardOf(a) == shardOf(peer) {
					// same-shard messages may be faster; keep the delay
					// identical across layouts so trajectories match.
					d = la
				}
				s.Send(shardOf(a), shardOf(peer), d, key, func() {
					traces[peer] = append(traces[peer], rec{s.Engine(shardOf(peer)).Now(),
						fmt.Sprintf("from%d.r%d", a, round)})
				})
				start(a, round+1)
			})
		}
		for a := 0; a < actors; a++ {
			start(a, 0)
		}
		s.Run(1)
		return traces
	}
	ref := run(1)
	for _, shards := range []int{2, 3, 6} {
		if got := run(shards); !reflect.DeepEqual(ref, got) {
			t.Fatalf("shard count %d diverged from single-shard reference", shards)
		}
	}
}

func TestShardsRandomizedWorkerInvariance(t *testing.T) {
	// Fuzz: random event DAGs with random (lookahead-respecting) cross-shard
	// sends; per-shard traces must be identical for 1 vs 8 workers.
	for trial := 0; trial < 20; trial++ {
		seed := int64(trial)
		run := func(workers int) [][]traceRec {
			const shards = 4
			la := Duration(20 + seed)
			s := NewShards(shards, la)
			traces := make([][]traceRec, shards)
			var ctr = make([]uint64, shards)
			// One rng per shard: a shard's events run serially, so its rng
			// sequence depends only on that shard's (deterministic)
			// execution order — never on cross-shard wall-clock interleaving.
			rngs := make([]*rand.Rand, shards)
			for sh := range rngs {
				rngs[sh] = rand.New(rand.NewSource(seed*int64(shards) + int64(sh)))
			}
			var spawn func(shard, depth int)
			spawn = func(shard, depth int) {
				e := s.Engine(shard)
				rng := rngs[shard]
				e.After(Duration(rng.Intn(30)), func() {
					traces[shard] = append(traces[shard], traceRec{shard, e.Now(), fmt.Sprintf("d%d", depth)})
					if depth < 4 {
						if rng.Intn(2) == 0 {
							dst := rng.Intn(shards)
							if dst != shard {
								ctr[shard]++
								key := uint64(shard+1)<<32 | ctr[shard]
								s.Send(shard, dst, la+Duration(rng.Intn(40)), key, func() {
									traces[dst] = append(traces[dst], traceRec{dst, s.Engine(dst).Now(), "x"})
								})
							}
						}
						spawn(shard, depth+1)
					}
				})
			}
			for sh := 0; sh < shards; sh++ {
				spawn(sh, 0)
			}
			s.Run(workers)
			return traces
		}
		// A shard's rng replays the same sequence only if callback execution
		// order within that shard is identical — which is exactly the
		// determinism property under test. A divergence shows up as a trace
		// mismatch (or a panic from an out-of-range send).
		if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: workers 1 vs 8 diverged", trial)
		}
	}
}
