package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestSpecsCoverTableV(t *testing.T) {
	specs := Specs()
	if len(specs) != 17 {
		t.Fatalf("got %d workloads, Table V has 17", len(specs))
	}
	classes := map[Class]int{}
	features := map[byte]int{}
	for _, s := range specs {
		classes[s.Class]++
		features[s.SwapFeature]++
		if s.FootprintPages <= 0 || s.MainAccesses <= 0 {
			t.Errorf("%s: empty footprint or accesses", s.Name)
		}
		if s.AnonFraction < 0 || s.AnonFraction > 1 {
			t.Errorf("%s: bad anon fraction", s.Name)
		}
		if s.MaxMemGiB <= 0 {
			t.Errorf("%s: missing max mem", s.Name)
		}
	}
	if classes[Compute] != 5 || classes[Graph] != 6 || classes[AI] != 6 {
		t.Fatalf("class sizes %v, want 5/6/6 per Table V", classes)
	}
	// Table VI labels 8 workloads S and 9 F.
	if features['S'] != 8 || features['F'] != 9 {
		t.Fatalf("swap features %v, want 8 S / 9 F", features)
	}
}

func TestByName(t *testing.T) {
	if ByName("chat-int").MaxMemGiB != 14 {
		t.Fatal("chat-int lookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	ByName("nope")
}

func TestStreamDeterminism(t *testing.T) {
	spec := ByName("lg-bfs")
	a, b := NewStream(spec, 42), NewStream(spec, 42)
	for i := 0; i < 10000; i++ {
		xa, oka := a.Next()
		xb, okb := b.Next()
		if xa != xb || oka != okb {
			t.Fatalf("streams diverge at access %d: %v/%v vs %v/%v", i, xa, oka, xb, okb)
		}
		if !oka {
			break
		}
	}
}

func TestStreamLength(t *testing.T) {
	spec := ByName("tf-infer")
	s := NewStream(spec, 1)
	count := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		count++
	}
	if count != s.TotalAccesses() {
		t.Fatalf("emitted %d accesses, want %d", count, s.TotalAccesses())
	}
}

func TestInitSweepCoversMappedPages(t *testing.T) {
	spec := ByName("stream")
	s := NewStream(spec, 7)
	fileBoundary := int32(float64(spec.FootprintPages) * (1 - spec.AnonFraction))
	seen := map[int32]bool{}
	for i := 0; i < s.MappedPages(); i++ {
		a, ok := s.Next()
		if !ok {
			t.Fatal("stream ended during init sweep")
		}
		if got, want := a.Write, a.Page >= fileBoundary; got != want {
			t.Fatalf("init access to page %d: write=%v, want %v (file boundary %d)",
				a.Page, got, want, fileBoundary)
		}
		seen[a.Page] = true
	}
	if len(seen) != s.MappedPages() {
		t.Fatalf("init sweep touched %d distinct pages, want %d", len(seen), s.MappedPages())
	}
}

// Verify generated trace statistics land near the spec's knobs, so the
// configuration console sees the features each workload was designed to show.
func TestTraceStatisticsMatchSpec(t *testing.T) {
	for _, name := range []string{"stream", "clip", "chat-int", "gg-bfs"} {
		spec := ByName(name)
		s := NewStream(spec, 99)
		tbl := trace.NewTable(spec.FootprintPages)
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			tbl.Record(a.Page, a.Write)
		}
		f := tbl.Features(int(spec.AnonFraction * float64(spec.FootprintPages)))

		// Sequential share: generated SeqRatio should track SeqShare within
		// a generous tolerance (runs make more than SeqShare of accesses
		// sequential; init sweep is fully sequential).
		if spec.SeqShare > 0.8 && f.SeqRatio < 0.7 {
			t.Errorf("%s: seq ratio %.2f too low for SeqShare %.2f", name, f.SeqRatio, spec.SeqShare)
		}
		if spec.SeqShare < 0.5 && f.SeqRatio > 0.8 {
			t.Errorf("%s: seq ratio %.2f too high for SeqShare %.2f", name, f.SeqRatio, spec.SeqShare)
		}
		// Fragment ratio tracks 1/SegmentLen.
		wantFrag := 1.0 / float64(spec.SegmentLen)
		if f.FragmentRatio > wantFrag*3+0.01 || f.FragmentRatio < wantFrag/3-0.01 {
			t.Errorf("%s: fragment ratio %.4f, want ~%.4f", name, f.FragmentRatio, wantFrag)
		}
		// Coverage: touched pages should be close to Coverage×footprint.
		cov := float64(f.TouchedPages) / float64(spec.FootprintPages)
		if cov < spec.Coverage*0.85 || cov > spec.Coverage*1.1+0.01 {
			t.Errorf("%s: coverage %.2f, want ~%.2f", name, cov, spec.Coverage)
		}
	}
}

// Fragmented workloads must show higher fragment ratios than contiguous ones
// (the Fig 10 contrast).
func TestFragmentationContrast(t *testing.T) {
	measure := func(name string) float64 {
		spec := ByName(name)
		s := NewStream(spec, 5)
		tbl := trace.NewTable(spec.FootprintPages)
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			tbl.Record(a.Page, a.Write)
		}
		return tbl.Features(0).FragmentRatio
	}
	clip, chat := measure("clip"), measure("chat-int")
	if clip <= chat*5 {
		t.Fatalf("clip fragment ratio %.4f not clearly above chat-int %.4f", clip, chat)
	}
}

// Property: every generated access stays within the footprint, for every
// workload and any seed.
func TestAccessBoundsProperty(t *testing.T) {
	specs := Specs()
	f := func(seed int64, pick uint8) bool {
		spec := specs[int(pick)%len(specs)]
		s := NewStream(spec, seed)
		for i := 0; i < 5000; i++ {
			a, ok := s.Next()
			if !ok {
				return true
			}
			if a.Page < 0 || int(a.Page) >= spec.FootprintPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidate(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("built-in spec invalid: %v", err)
		}
	}
	bad := ByName("bert")
	bad.AnonFraction = 1.5
	if bad.Validate() == nil {
		t.Error("anon fraction 1.5 accepted")
	}
	bad = ByName("bert")
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name accepted")
	}
	bad = ByName("bert")
	bad.MainAccesses = 0
	if bad.Validate() == nil {
		t.Error("zero accesses accepted")
	}
}

func TestSpecsJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSpecs(&buf, Specs()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Specs()
	if len(got) != len(want) {
		t.Fatalf("round trip lost specs: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("spec %s changed in round trip:\n%+v\n%+v", want[i].Name, got[i], want[i])
		}
	}
}

func TestLoadSpecsRejectsGarbage(t *testing.T) {
	if _, err := LoadSpecs(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadSpecs(strings.NewReader(`[{"Name":"x","FootprintPages":-1}]`)); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := LoadSpecs(strings.NewReader(`[{"Nope":1}]`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestLoadSpecsDefaultsCoverage(t *testing.T) {
	specs, err := LoadSpecs(strings.NewReader(
		`[{"Name":"u","FootprintPages":100,"MainAccesses":100,"AnonFraction":1,"SegmentLen":10,"RunLen":4}]`))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Coverage != 1 {
		t.Fatalf("coverage not defaulted: %v", specs[0].Coverage)
	}
}

func TestStreamAccessors(t *testing.T) {
	spec := ByName("bert")
	s := NewStream(spec, 1)
	if s.Spec().Name != "bert" {
		t.Fatal("Spec accessor")
	}
	s.SetMainAccesses(10)
	count := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		count++
	}
	if count != s.MappedPages()+10 {
		t.Fatalf("SetMainAccesses: emitted %d", count)
	}
}

func TestValidateRemainingBranches(t *testing.T) {
	base := ByName("bert")
	cases := []func(*Spec){
		func(s *Spec) { s.Coverage = 0 },
		func(s *Spec) { s.SeqShare = -1 },
		func(s *Spec) { s.HotShare = 2 },
		func(s *Spec) { s.HotProb = -0.1 },
		func(s *Spec) { s.WriteFraction = 1.5 },
		func(s *Spec) { s.SegmentLen = -1 },
		func(s *Spec) { s.RunLen = -2 },
		func(s *Spec) { s.ComputePerAccess = -1 },
		func(s *Spec) { s.Threads = -1 },
		func(s *Spec) { s.FootprintPages = 0 },
	}
	for i, mutate := range cases {
		s := base
		mutate(&s)
		if s.Validate() == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}
