package workload

import (
	"bytes"
	"testing"
)

// FuzzLoadSpecs: arbitrary bytes never panic the loader; accepted specs
// always validate and survive a round trip.
func FuzzLoadSpecs(f *testing.F) {
	var seed bytes.Buffer
	if err := SaveSpecs(&seed, Specs()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"Name":"x","FootprintPages":1,"MainAccesses":1}]`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		specs, err := LoadSpecs(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("loader accepted invalid spec: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := SaveSpecs(&buf, specs); err != nil {
			t.Fatalf("accepted specs cannot be saved: %v", err)
		}
		again, err := LoadSpecs(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(specs) {
			t.Fatal("round trip changed spec count")
		}
	})
}

// FuzzStream: any (sane) spec knobs produce a bounded, terminating stream.
func FuzzStream(f *testing.F) {
	f.Add(int64(1), uint16(512), uint8(128), uint8(90), uint8(50))
	f.Add(int64(9), uint16(64), uint8(1), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, pagesSeed uint16, segSeed, seqSeed, hotSeed uint8) {
		spec := Spec{
			Name: "fuzz", Class: Compute,
			FootprintPages: int(pagesSeed%2048) + 16,
			AnonFraction:   float64(hotSeed%100) / 100,
			Coverage:       0.5 + float64(seqSeed%50)/100,
			SegmentLen:     int(segSeed) + 1,
			SeqShare:       float64(seqSeed%100) / 100,
			RunLen:         int(segSeed%32) + 1,
			HotShare:       float64(hotSeed%90)/100 + 0.05,
			HotProb:        float64(seqSeed%90) / 100,
			WriteFraction:  0.3,
			MainAccesses:   2000,
		}
		if err := spec.Validate(); err != nil {
			t.Skip()
		}
		s := NewStream(spec, seed)
		n := 0
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Page < 0 || int(a.Page) >= spec.FootprintPages {
				t.Fatalf("access %d out of range", a.Page)
			}
			n++
			if n > spec.MainAccesses+spec.FootprintPages+1 {
				t.Fatal("stream did not terminate")
			}
		}
	})
}
