package workload

import (
	"math/rand"
)

// Access is one memory reference: a physical page index and a load/store bit.
type Access struct {
	Page  int32
	Write bool
}

// Stream generates a workload's page-access sequence deterministically from
// a seed. The sequence has two phases:
//
//  1. an init sweep touching every mapped page once in address order
//     (allocation writes for anonymous pages, file reads for page cache),
//     and
//  2. the main phase mixing sequential runs, hot-set hits, and uniform
//     accesses per the Spec's knobs.
type Stream struct {
	spec Spec
	rng  *rand.Rand

	// mapping is logical→physical page translation. The workload's touched
	// address space is a set of contiguous physical segments with gaps
	// between them; segment length controls the fragment ratio.
	mapping []int32

	// hotStart/hotLen delimit the contiguous hot region of logical pages
	// (hotLen == 0 means no hot concentration).
	hotStart, hotLen int32

	phase   int // 0 = init sweep, 1 = main
	initPos int
	emitted int
	runLeft int
	cursor  int // logical position of the current sequential run

	// runStartProb is derived from SeqShare so that the *fraction* of
	// sequential accesses (not of run starts) matches the spec.
	runStartProb float64
}

// NewStream builds the stream for spec with the given seed.
func NewStream(spec Spec, seed int64) *Stream {
	s := &Stream{spec: spec, rng: rand.New(rand.NewSource(seed))}
	s.buildMapping()
	s.buildHotSet()
	// A run of mean length R contributes R-1 sequential accesses out of R;
	// a non-run access contributes one non-sequential access. Starting runs
	// with probability p at each decision point yields sequential fraction
	// S = p(R-1) / (pR + 1 - p); solving for p:
	S := spec.SeqShare
	R := float64(spec.RunLen)
	if S > 0 && R > 1 && S < 1 {
		p := S / ((R - 1) * (1 - S))
		if p > 1 {
			p = 1
		}
		s.runStartProb = p
	} else if S >= 1 {
		s.runStartProb = 1
	}
	return s
}

// buildMapping lays out touched segments across the physical footprint.
func (s *Stream) buildMapping() {
	footprint := s.spec.FootprintPages
	target := int(float64(footprint) * s.spec.Coverage)
	if target < 1 {
		target = 1
	}
	segLen := s.spec.SegmentLen
	if segLen < 1 {
		segLen = 1
	}
	// Gap sized so segments spread over the whole footprint.
	gapPer := 0.0
	if s.spec.Coverage < 1 {
		gapPer = float64(segLen) * (1 - s.spec.Coverage) / s.spec.Coverage
	}
	s.mapping = make([]int32, 0, target)
	pos := 0
	for len(s.mapping) < target && pos < footprint {
		// Jitter segment length ±25% for irregularity.
		l := segLen
		if segLen > 3 {
			l = segLen - segLen/4 + s.rng.Intn(segLen/2+1)
		}
		for i := 0; i < l && len(s.mapping) < target && pos < footprint; i++ {
			s.mapping = append(s.mapping, int32(pos))
			pos++
		}
		gap := int(gapPer)
		if gapPer > 0 && s.rng.Float64() < gapPer-float64(gap) {
			gap++
		}
		pos += gap
	}
}

// buildHotSet designates a contiguous hot region of the logical space (hot
// structures in real programs — frontier arrays, model weights, cluster
// centroids — are contiguous allocations). The region is placed after the
// file-backed prefix so hot traffic exercises the anonymous swap path.
func (s *Stream) buildHotSet() {
	if s.spec.HotShare >= 1 || s.spec.HotShare <= 0 || s.spec.HotProb <= 0 {
		return
	}
	n := int(float64(len(s.mapping)) * s.spec.HotShare)
	if n < 1 {
		n = 1
	}
	start := int(float64(len(s.mapping)) * (1 - s.spec.AnonFraction))
	if start+n > len(s.mapping) {
		start = len(s.mapping) - n
	}
	if start < 0 {
		start = 0
	}
	s.hotStart, s.hotLen = int32(start), int32(n)
}

// hotLogical draws a uniform logical index from the hot region.
func (s *Stream) hotLogical() int32 {
	return s.hotStart + int32(s.rng.Intn(int(s.hotLen)))
}

// SkipInit suppresses the init sweep: worker threads of a multi-threaded
// task share the address space that thread 0 allocates.
func (s *Stream) SkipInit() { s.phase = 1 }

// SetMainAccesses overrides the main-phase length (used to divide a spec's
// access budget across threads).
func (s *Stream) SetMainAccesses(n int) { s.spec.MainAccesses = n }

// Spec reports the stream's workload spec.
func (s *Stream) Spec() Spec { return s.spec }

// MappedPages reports the number of distinct pages the stream can touch.
func (s *Stream) MappedPages() int { return len(s.mapping) }

// TotalAccesses reports the total sequence length (init + main).
func (s *Stream) TotalAccesses() int { return len(s.mapping) + s.spec.MainAccesses }

// Next produces the next access, reporting false when the stream ends.
func (s *Stream) Next() (Access, bool) {
	if s.phase == 0 {
		if s.initPos < len(s.mapping) {
			page := s.mapping[s.initPos]
			s.initPos++
			// Anonymous pages are allocated (written); file-backed pages —
			// the first (1-AnonFraction) of the footprint, matching the task
			// layer's SetType — are read into the page cache.
			fileBoundary := int32(float64(s.spec.FootprintPages) * (1 - s.spec.AnonFraction))
			return Access{Page: page, Write: page >= fileBoundary}, true
		}
		s.phase = 1
	}
	if s.emitted >= s.spec.MainAccesses {
		return Access{}, false
	}
	s.emitted++
	write := s.rng.Float64() < s.spec.WriteFraction

	if s.runLeft > 0 {
		s.runLeft--
		s.cursor++
		if s.cursor >= len(s.mapping) {
			s.cursor = 0
		}
		return Access{Page: s.mapping[s.cursor], Write: write}, true
	}
	if s.rng.Float64() < s.runStartProb {
		// Start a new sequential run of geometric length around RunLen.
		// Runs start inside the hot region with HotProb, like random
		// accesses: hot structures are scanned as well as poked.
		runLen := 1
		if s.spec.RunLen > 1 {
			runLen = 1 + s.rng.Intn(2*s.spec.RunLen)
		}
		s.runLeft = runLen - 1
		if s.hotLen > 0 && s.rng.Float64() < s.spec.HotProb {
			s.cursor = int(s.hotLogical())
		} else {
			s.cursor = s.rng.Intn(len(s.mapping))
		}
		return Access{Page: s.mapping[s.cursor], Write: write}, true
	}
	// Random access: hot region with HotProb, else uniform over the
	// anonymous region. Pointer-chasing and hash probes land in working
	// structures (heap); file-backed input is only crossed by sequential
	// scans, matching how analytics and inference consume their inputs.
	var logical int32
	if s.hotLen > 0 && s.rng.Float64() < s.spec.HotProb {
		logical = s.hotLogical()
	} else {
		anonStart := int32(float64(len(s.mapping)) * (1 - s.spec.AnonFraction))
		span := int32(len(s.mapping)) - anonStart
		if span < 1 {
			anonStart, span = 0, int32(len(s.mapping))
		}
		logical = anonStart + int32(s.rng.Intn(int(span)))
	}
	s.cursor = int(logical)
	return Access{Page: s.mapping[logical], Write: write}, true
}
