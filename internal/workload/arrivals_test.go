package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

// drainMean draws n gaps from p starting at t0 and reports the empirical
// arrival rate over the drawn span.
func drainMean(t *testing.T, p ArrivalProcess, t0 sim.Time, n int, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := t0
	for i := 0; i < n; i++ {
		g := p.Gap(now, rng)
		if g < 1 {
			t.Fatalf("gap %v < 1ns at %v", g, now)
		}
		now = now.Add(g)
	}
	span := now.Sub(t0).Seconds()
	return float64(n) / span
}

func TestPoissonMatchesRate(t *testing.T) {
	p := Poisson{RPS: 500}
	got := drainMean(t, p, 0, 20000, 1)
	if math.Abs(got-500)/500 > 0.05 {
		t.Fatalf("empirical rate %.1f, want ≈500", got)
	}
}

func TestDiurnalSwingsAroundBase(t *testing.T) {
	d := Diurnal{BaseRPS: 400, Amplitude: 0.5, Period: 10 * sim.Second}
	// Peak quarter vs trough quarter of the cycle.
	peak := d.Rate(sim.Time(2500 * sim.Millisecond))   // sin ≈ 1
	trough := d.Rate(sim.Time(7500 * sim.Millisecond)) // sin ≈ -1
	if math.Abs(peak-600) > 1 || math.Abs(trough-200) > 1 {
		t.Fatalf("peak %.1f trough %.1f, want ≈600/≈200", peak, trough)
	}
	if got := drainMean(t, d, 0, 20000, 2); math.Abs(got-400)/400 > 0.10 {
		t.Fatalf("empirical mean rate %.1f, want ≈400", got)
	}
}

func TestFlashCrowdWindow(t *testing.T) {
	f := FlashCrowd{BaseRPS: 100, Mult: 8, At: 5 * sim.Second, For: 2 * sim.Second}
	if r := f.Rate(sim.Time(1 * sim.Second)); r != 100 {
		t.Fatalf("pre-burst rate %v", r)
	}
	if r := f.Rate(sim.Time(6 * sim.Second)); r != 800 {
		t.Fatalf("in-burst rate %v", r)
	}
	if r := f.Rate(sim.Time(8 * sim.Second)); r != 100 {
		t.Fatalf("post-burst rate %v", r)
	}
	// Boundary semantics: [At, At+For).
	if r := f.Rate(sim.Time(5 * sim.Second)); r != 800 {
		t.Fatalf("burst start rate %v", r)
	}
	if r := f.Rate(sim.Time(7 * sim.Second)); r != 100 {
		t.Fatalf("burst end rate %v", r)
	}
}

func TestTraceReplayLoopsAndScales(t *testing.T) {
	tr, err := ParseArrival("trace:2018:600", 7)
	if err != nil {
		t.Fatal(err)
	}
	rep := tr.(TraceReplay)
	if len(rep.Series) != 120 {
		t.Fatalf("series length %d", len(rep.Series))
	}
	for i, u := range rep.Series {
		if u <= 0 || u > 1 {
			t.Fatalf("series[%d]=%v outside (0,1]", i, u)
		}
	}
	// Rates loop: t and t + len*step see the same point.
	loop := sim.Time(120 * sim.Second)
	if a, b := rep.Rate(3*sim.Time(sim.Second)), rep.Rate(loop+3*sim.Time(sim.Second)); a != b {
		t.Fatalf("rate does not loop: %v vs %v", a, b)
	}
	if r := rep.Rate(0); r <= 0 || r > 600 {
		t.Fatalf("rate %v outside (0, peak]", r)
	}
}

func TestArrivalDeterministicReplay(t *testing.T) {
	for _, spec := range []string{"poisson:800", "diurnal:800:0.5:60", "flash:400:8:5:2", "trace:2017:300"} {
		p1, err := ParseArrival(spec, 9)
		if err != nil {
			t.Fatal(err)
		}
		p2, _ := ParseArrival(spec, 9)
		r1 := rand.New(rand.NewSource(42))
		r2 := rand.New(rand.NewSource(42))
		now1, now2 := sim.Time(0), sim.Time(0)
		for i := 0; i < 1000; i++ {
			g1, g2 := p1.Gap(now1, r1), p2.Gap(now2, r2)
			if g1 != g2 {
				t.Fatalf("%s: gap %d differs: %v vs %v", spec, i, g1, g2)
			}
			now1, now2 = now1.Add(g1), now2.Add(g2)
		}
	}
}

func TestParseArrivalErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"", "unknown kind"},
		{"bogus:100", "unknown kind"},
		{"poisson", "want poisson:RPS"},
		{"poisson:abc", "not a number"},
		{"poisson:-5", "positive finite"},
		{"poisson:0", "positive finite"},
		{"poisson:+Inf", "positive finite"},
		{"diurnal:100:0.5", "want diurnal"},
		{"diurnal:100:1.5:60", "amplitude"},
		{"diurnal:100:0.5:0", "period"},
		{"flash:100:8:5", "want flash"},
		{"flash:100:0.5:5:2", "multiplier"},
		{"flash:100:8:-1:2", "burst start"},
		{"flash:-100:8:5:2", "positive finite"},
		{"trace:1999:100", "unknown trace"},
		{"trace:2018", "want trace"},
	}
	for _, c := range cases {
		if _, err := ParseArrival(c.spec, 1); err == nil {
			t.Errorf("%q: no error", c.spec)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestParseArrivalValid(t *testing.T) {
	for _, spec := range []string{"poisson:800", "diurnal:800:0:60", "flash:400:1:0:2", "trace:2018:600"} {
		p, err := ParseArrival(spec, 1)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%q: empty name", spec)
		}
	}
}
