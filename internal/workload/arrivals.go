package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/clustertrace"
	"repro/internal/sim"
)

// An ArrivalProcess drives an open-loop client: it emits the virtual-time
// gap until the next request, independent of how the server is keeping up.
// Implementations are deterministic functions of (now, rng draw), so a
// seeded run replays the exact same arrival train.
//
// Processes are rate-modulated Poisson: at time t the instantaneous rate is
// Rate(t) requests/second and the gap is an exponential draw at that rate.
// For the stationary process this is exact; for the time-varying ones it is
// the standard piecewise approximation (the rate is re-read at every
// arrival, so modulation faster than the interarrival gap is smoothed).
type ArrivalProcess interface {
	// Name labels the process in reports ("poisson(800/s)").
	Name() string
	// Rate reports the offered load in requests/second at virtual time t.
	Rate(t sim.Time) float64
	// Gap draws the interarrival gap following an arrival at time t.
	Gap(t sim.Time, rng *rand.Rand) sim.Duration
}

// expGap draws an exponential gap for rate r req/s, clamped to ≥ 1ns so the
// event loop always advances.
func expGap(r float64, rng *rand.Rand) sim.Duration {
	if r <= 0 {
		// A silent period: re-probe the rate in 100ms of virtual time.
		return 100 * sim.Millisecond
	}
	g := sim.Duration(rng.ExpFloat64() / r * float64(sim.Second))
	if g < 1 {
		g = 1
	}
	return g
}

// Poisson is a stationary open-loop arrival process at RPS requests/second.
type Poisson struct {
	RPS float64
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%g/s)", p.RPS) }

// Rate implements ArrivalProcess.
func (p Poisson) Rate(sim.Time) float64 { return p.RPS }

// Gap implements ArrivalProcess.
func (p Poisson) Gap(t sim.Time, rng *rand.Rand) sim.Duration {
	return expGap(p.RPS, rng)
}

// Diurnal is a sinusoidally modulated Poisson process: a day-cycle of
// period Period around BaseRPS, swinging by Amplitude (0..1) of the base.
type Diurnal struct {
	BaseRPS   float64
	Amplitude float64 // fraction of BaseRPS, in [0, 1]
	Period    sim.Duration
}

// Name implements ArrivalProcess.
func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%g/s ±%d%% over %v)", d.BaseRPS, int(d.Amplitude*100), d.Period)
}

// Rate implements ArrivalProcess.
func (d Diurnal) Rate(t sim.Time) float64 {
	phase := 2 * math.Pi * float64(t) / float64(d.Period)
	return d.BaseRPS * (1 + d.Amplitude*math.Sin(phase))
}

// Gap implements ArrivalProcess.
func (d Diurnal) Gap(t sim.Time, rng *rand.Rand) sim.Duration {
	return expGap(d.Rate(t), rng)
}

// FlashCrowd is a stationary Poisson baseline that multiplies by Mult
// during the burst window [At, At+For) — the "everyone refreshes at once"
// scenario load shedding exists for.
type FlashCrowd struct {
	BaseRPS float64
	Mult    float64
	At      sim.Duration
	For     sim.Duration
}

// Name implements ArrivalProcess.
func (f FlashCrowd) Name() string {
	return fmt.Sprintf("flash(%g/s ×%g @%v for %v)", f.BaseRPS, f.Mult, f.At, f.For)
}

// Rate implements ArrivalProcess.
func (f FlashCrowd) Rate(t sim.Time) float64 {
	if t >= sim.Time(f.At) && t < sim.Time(f.At+f.For) {
		return f.BaseRPS * f.Mult
	}
	return f.BaseRPS
}

// Gap implements ArrivalProcess.
func (f FlashCrowd) Gap(t sim.Time, rng *rand.Rand) sim.Duration {
	return expGap(f.Rate(t), rng)
}

// TraceReplay modulates a Poisson process by a clustertrace utilization
// series: the instantaneous rate is PeakRPS × u(t), replaying the shape of
// a production day (Alibaba 2017/2018 statistics) against the server.
type TraceReplay struct {
	TraceName string
	PeakRPS   float64
	Step      sim.Duration // virtual time per series point
	Series    []float64    // utilizations in (0, 1]
}

// NewTraceReplay samples a clustertrace diurnal series and wraps it as an
// arrival process: points samples spaced step apart, looped when the
// simulation outruns the series.
func NewTraceReplay(p clustertrace.Profile, points int, step sim.Duration, peakRPS float64, seed int64) TraceReplay {
	return TraceReplay{
		TraceName: p.Name,
		PeakRPS:   peakRPS,
		Step:      step,
		Series:    clustertrace.Series(p, points, seed),
	}
}

// Name implements ArrivalProcess.
func (tr TraceReplay) Name() string {
	return fmt.Sprintf("trace(%s peak %g/s)", tr.TraceName, tr.PeakRPS)
}

// Rate implements ArrivalProcess.
func (tr TraceReplay) Rate(t sim.Time) float64 {
	if len(tr.Series) == 0 || tr.Step <= 0 {
		return 0
	}
	i := int(t/sim.Time(tr.Step)) % len(tr.Series)
	return tr.PeakRPS * tr.Series[i]
}

// Gap implements ArrivalProcess.
func (tr TraceReplay) Gap(t sim.Time, rng *rand.Rand) sim.Duration {
	return expGap(tr.Rate(t), rng)
}

// ParseArrival builds an arrival process from a CLI spec string:
//
//	poisson:RPS                  stationary, e.g. poisson:800
//	diurnal:RPS:AMP:PERIOD_S     sinusoid, e.g. diurnal:800:0.5:60
//	flash:RPS:MULT:AT_S:FOR_S    burst, e.g. flash:400:8:5:2
//	trace:2017|2018:PEAK_RPS     Alibaba replay, e.g. trace:2018:600
//
// Rates are requests/second and times are seconds of virtual time. seed
// feeds the trace-replay series sampler (the other processes take their
// randomness from the caller's rng at run time).
func ParseArrival(spec string, seed int64) (ArrivalProcess, error) {
	parts := strings.Split(spec, ":")
	bad := func(format string, args ...any) (ArrivalProcess, error) {
		return nil, fmt.Errorf("arrival spec %q: %s", spec, fmt.Sprintf(format, args...))
	}
	num := func(s, what string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("arrival spec %q: %s %q is not a number", spec, what, s)
		}
		return v, nil
	}
	rate := func(s string) (float64, error) {
		v, err := num(s, "rate")
		if err != nil {
			return 0, err
		}
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, fmt.Errorf("arrival spec %q: rate must be a positive finite requests/second (got %s)", spec, s)
		}
		return v, nil
	}
	switch parts[0] {
	case "poisson":
		if len(parts) != 2 {
			return bad("want poisson:RPS")
		}
		r, err := rate(parts[1])
		if err != nil {
			return nil, err
		}
		return Poisson{RPS: r}, nil
	case "diurnal":
		if len(parts) != 4 {
			return bad("want diurnal:RPS:AMP:PERIOD_S")
		}
		r, err := rate(parts[1])
		if err != nil {
			return nil, err
		}
		amp, err := num(parts[2], "amplitude")
		if err != nil {
			return nil, err
		}
		if amp < 0 || amp > 1 {
			return bad("amplitude must be in [0, 1] (got %g)", amp)
		}
		period, err := num(parts[3], "period")
		if err != nil {
			return nil, err
		}
		if period <= 0 {
			return bad("period must be positive seconds (got %g)", period)
		}
		return Diurnal{BaseRPS: r, Amplitude: amp, Period: sim.DurationOf(period)}, nil
	case "flash":
		if len(parts) != 5 {
			return bad("want flash:RPS:MULT:AT_S:FOR_S")
		}
		r, err := rate(parts[1])
		if err != nil {
			return nil, err
		}
		mult, err := num(parts[2], "multiplier")
		if err != nil {
			return nil, err
		}
		if mult < 1 {
			return bad("multiplier must be ≥ 1 (got %g)", mult)
		}
		at, err := num(parts[3], "burst start")
		if err != nil {
			return nil, err
		}
		dur, err := num(parts[4], "burst duration")
		if err != nil {
			return nil, err
		}
		if at < 0 || dur <= 0 {
			return bad("burst start must be ≥ 0 and duration > 0 (got %g, %g)", at, dur)
		}
		return FlashCrowd{BaseRPS: r, Mult: mult, At: sim.DurationOf(at), For: sim.DurationOf(dur)}, nil
	case "trace":
		if len(parts) != 3 {
			return bad("want trace:2017|2018:PEAK_RPS")
		}
		var p clustertrace.Profile
		switch parts[1] {
		case "2017":
			p = clustertrace.Alibaba2017()
		case "2018":
			p = clustertrace.Alibaba2018()
		default:
			return bad("unknown trace %q (want 2017 or 2018)", parts[1])
		}
		r, err := rate(parts[2])
		if err != nil {
			return nil, err
		}
		// One simulated "day" of 120 points spaced 1s apart, looped.
		return NewTraceReplay(p, 120, sim.Second, r, seed), nil
	default:
		return bad("unknown kind %q (want poisson, diurnal, flash, or trace)", parts[0])
	}
}
