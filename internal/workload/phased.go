package workload

import "fmt"

// AccessSource produces a page-access sequence. *Stream implements it; so
// does PhasedStream, which chains phases with different behaviour over the
// same address space — the "workload behaviors often change during runtime"
// scenario motivating xDM's dynamic switching.
type AccessSource interface {
	Next() (Access, bool)
}

// PhasedStream runs several specs back to back over one footprint. Only the
// first phase performs the allocation sweep; later phases re-access the
// same pages under their own pattern.
type PhasedStream struct {
	phases []*Stream
	cur    int
}

// NewPhasedStream builds a phased source. All specs must share the same
// FootprintPages and AnonFraction (they describe phases of one process, not
// different processes).
func NewPhasedStream(specs []Spec, seed int64) *PhasedStream {
	if len(specs) == 0 {
		panic("workload: phased stream needs at least one phase")
	}
	p := &PhasedStream{}
	for i, s := range specs {
		if s.FootprintPages != specs[0].FootprintPages {
			panic(fmt.Sprintf("workload: phase %d footprint %d != %d", i,
				s.FootprintPages, specs[0].FootprintPages))
		}
		if s.AnonFraction != specs[0].AnonFraction {
			panic(fmt.Sprintf("workload: phase %d anon fraction %v != %v", i,
				s.AnonFraction, specs[0].AnonFraction))
		}
		st := NewStream(s, seed+int64(i)*104729)
		if i > 0 {
			st.SkipInit()
		}
		p.phases = append(p.phases, st)
	}
	return p
}

// Next implements AccessSource.
func (p *PhasedStream) Next() (Access, bool) {
	for p.cur < len(p.phases) {
		if a, ok := p.phases[p.cur].Next(); ok {
			return a, true
		}
		p.cur++
	}
	return Access{}, false
}

// Phase reports the current phase index (== len(phases) when exhausted).
func (p *PhasedStream) Phase() int { return p.cur }

var _ AccessSource = (*Stream)(nil)
var _ AccessSource = (*PhasedStream)(nil)

// SkipInit suppresses the allocation sweep of the first phase (worker
// threads of a multi-threaded task share thread 0's allocations).
func (p *PhasedStream) SkipInit() { p.phases[0].SkipInit() }
