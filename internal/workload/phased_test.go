package workload

import "testing"

func phaseSpecs() []Spec {
	a := Spec{
		Name: "scan", Class: Compute, FootprintPages: 512, AnonFraction: 1.0,
		Coverage: 1.0, SegmentLen: 512, SeqShare: 0.9, RunLen: 64,
		HotShare: 1, HotProb: 0, WriteFraction: 0.3, MainAccesses: 1000, Threads: 1,
	}
	b := a
	b.Name = "probe"
	b.SeqShare, b.RunLen = 0.1, 4
	b.HotShare, b.HotProb = 0.2, 0.8
	b.MainAccesses = 800
	return []Spec{a, b}
}

func TestPhasedStreamChains(t *testing.T) {
	specs := phaseSpecs()
	p := NewPhasedStream(specs, 1)
	count := 0
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		if a.Page < 0 || int(a.Page) >= specs[0].FootprintPages {
			t.Fatalf("access out of range: %d", a.Page)
		}
		count++
	}
	// Phase 0 init sweep + both main phases; phase 1 skips init.
	want := specs[0].MainAccesses + specs[1].MainAccesses
	if count < want || count > want+specs[0].FootprintPages {
		t.Fatalf("emitted %d accesses, want ~%d", count, want)
	}
	if p.Phase() != 2 {
		t.Fatalf("final phase %d, want 2", p.Phase())
	}
}

func TestPhasedStreamSkipInit(t *testing.T) {
	specs := phaseSpecs()
	p := NewPhasedStream(specs, 1)
	p.SkipInit()
	count := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		count++
	}
	if count != specs[0].MainAccesses+specs[1].MainAccesses {
		t.Fatalf("skip-init emitted %d", count)
	}
}

func TestPhasedStreamValidation(t *testing.T) {
	mustPanic := func(name string, specs []Spec) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewPhasedStream(specs, 1)
	}
	mustPanic("empty", nil)
	a, b := phaseSpecs()[0], phaseSpecs()[1]
	b.FootprintPages = 1024
	mustPanic("footprint mismatch", []Spec{a, b})
	b = phaseSpecs()[1]
	b.AnonFraction = 0.5
	mustPanic("anon mismatch", []Spec{a, b})
}
