package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Validate checks a spec's fields for consistency, returning a descriptive
// error for the first violation. Zero-valued optional fields (Threads) are
// permitted.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: spec needs a name")
	case s.FootprintPages <= 0:
		return fmt.Errorf("workload %s: footprint must be positive", s.Name)
	case s.MainAccesses <= 0:
		return fmt.Errorf("workload %s: main accesses must be positive", s.Name)
	case s.AnonFraction < 0 || s.AnonFraction > 1:
		return fmt.Errorf("workload %s: anon fraction %v outside [0,1]", s.Name, s.AnonFraction)
	case s.Coverage <= 0 || s.Coverage > 1:
		return fmt.Errorf("workload %s: coverage %v outside (0,1]", s.Name, s.Coverage)
	case s.SeqShare < 0 || s.SeqShare > 1:
		return fmt.Errorf("workload %s: seq share %v outside [0,1]", s.Name, s.SeqShare)
	case s.HotShare < 0 || s.HotShare > 1:
		return fmt.Errorf("workload %s: hot share %v outside [0,1]", s.Name, s.HotShare)
	case s.HotProb < 0 || s.HotProb > 1:
		return fmt.Errorf("workload %s: hot prob %v outside [0,1]", s.Name, s.HotProb)
	case s.WriteFraction < 0 || s.WriteFraction > 1:
		return fmt.Errorf("workload %s: write fraction %v outside [0,1]", s.Name, s.WriteFraction)
	case s.SegmentLen < 0:
		return fmt.Errorf("workload %s: negative segment length", s.Name)
	case s.RunLen < 0:
		return fmt.Errorf("workload %s: negative run length", s.Name)
	case s.ComputePerAccess < 0:
		return fmt.Errorf("workload %s: negative compute per access", s.Name)
	case s.Threads < 0:
		return fmt.Errorf("workload %s: negative thread count", s.Name)
	}
	return nil
}

// LoadSpecs decodes a JSON array of workload specs and validates each, so
// downstream users can run their own workload shapes through the system.
// Durations (ComputePerAccess) are nanoseconds.
func LoadSpecs(r io.Reader) ([]Spec, error) {
	var specs []Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("workload: decoding specs: %w", err)
	}
	for i := range specs {
		if specs[i].Coverage == 0 {
			specs[i].Coverage = 1
		}
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// SaveSpecs encodes specs as indented JSON.
func SaveSpecs(w io.Writer, specs []Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(specs)
}
