package workload

import (
	"strings"
	"testing"
)

// TestLoadSpecsMalformedInputErrors pins the fuzz-found classes of bad input
// as deterministic regressions: every one must return an error — never
// panic, never silently accept.
func TestLoadSpecsMalformedInputErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"truncated object", `[{`},
		{"not json", `));DROP TABLE specs`},
		{"wrong top-level type", `{"Name":"x"}`},
		{"unknown field", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"Bogus":1}]`},
		{"number into string", `[{"Name":42,"FootprintPages":1,"MainAccesses":1}]`},
		{"string into int", `[{"Name":"x","FootprintPages":"many","MainAccesses":1}]`},
		{"footprint overflow", `[{"Name":"x","FootprintPages":1e300,"MainAccesses":1}]`},
		{"missing name", `[{"FootprintPages":1,"MainAccesses":1}]`},
		{"zero footprint", `[{"Name":"x","FootprintPages":0,"MainAccesses":1}]`},
		{"negative footprint", `[{"Name":"x","FootprintPages":-4,"MainAccesses":1}]`},
		{"zero accesses", `[{"Name":"x","FootprintPages":1,"MainAccesses":0}]`},
		{"anon fraction above one", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"AnonFraction":1.5}]`},
		{"negative anon fraction", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"AnonFraction":-0.1}]`},
		{"coverage above one", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"Coverage":2}]`},
		{"negative seq share", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"SeqShare":-1}]`},
		{"hot prob above one", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"HotProb":7}]`},
		{"write fraction above one", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"WriteFraction":2}]`},
		{"negative segment length", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"SegmentLen":-1}]`},
		{"negative run length", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"RunLen":-1}]`},
		{"negative compute", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"ComputePerAccess":-5}]`},
		{"negative threads", `[{"Name":"x","FootprintPages":1,"MainAccesses":1,"Threads":-2}]`},
		{"valid then invalid", `[{"Name":"ok","FootprintPages":8,"MainAccesses":8},{"Name":"bad","FootprintPages":-1,"MainAccesses":1}]`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadSpecs panicked on %q: %v", tc.input, r)
				}
			}()
			specs, err := LoadSpecs(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("LoadSpecs accepted malformed input, returned %d specs", len(specs))
			}
		})
	}
}

// TestFindDoesNotPanic: unknown names report !ok; only the compile-time
// constant ByName helper is allowed to panic.
func TestFindDoesNotPanic(t *testing.T) {
	if _, ok := Find("no-such-workload"); ok {
		t.Fatal("Find invented a workload")
	}
	if s, ok := Find("lg-bfs"); !ok || s.Name != "lg-bfs" {
		t.Fatalf("Find(lg-bfs) = %+v, %v", s, ok)
	}
}
