// Package workload synthesizes page-access streams for the 17 applications
// in the paper's Table V. The real binaries (Ligra, GridGraph, Spark,
// TensorFlow, Bert, Clip, ChatGLM, ...) cannot run against a simulated memory
// subsystem, so each is replaced by a generator whose *trace statistics* —
// anonymous/file-backed ratio, sequential share, fragment ratio, hot-set
// size, load/store mix, compute intensity — match the behaviour class the
// paper reports for it. Those statistics are exactly the features xDM's
// configuration console consumes, so the substitution preserves the decision
// problem.
package workload

import "repro/internal/sim"

// PagesPerGiB is the footprint scale: simulated page sets are 1/256 the
// byte size of the paper's workloads (1 GiB → 1024 simulated pages). All
// policies operate on ratios, so the scale cancels out of every reported
// metric except absolute bytes.
const PagesPerGiB = 1024

// Class groups workloads as Table V does.
type Class string

// Workload classes.
const (
	Compute Class = "compute" // standard benchmarks (Stream, Linpack, ...)
	Graph   Class = "graph"   // graph processing (Ligra, GridGraph, Spark)
	AI      Class = "ai"      // model inference (TensorFlow, Bert, Clip, ChatGLM)
)

// Spec parameterizes one synthetic workload.
type Spec struct {
	Name        string
	Class       Class
	Description string

	// MaxMemGiB is Table V's "Max Mem." column; FootprintPages is its scaled
	// page count.
	MaxMemGiB      float64
	FootprintPages int

	// AnonFraction is the share of the footprint that is anonymous memory
	// (the rest is file-backed page cache).
	AnonFraction float64

	// Coverage is the fraction of the footprint the main phase touches.
	Coverage float64

	// SegmentLen is the mean contiguous-segment length in pages; the data
	// fragment ratio (Fig 10) is approximately 1/SegmentLen.
	SegmentLen int

	// SeqShare is the probability an access continues a sequential run;
	// RunLen is the mean run length in pages (Fig 11's max-sequential-size
	// signal grows with both).
	SeqShare float64
	RunLen   int

	// HotShare is the fraction of touched pages forming the hot set;
	// HotProb is the probability a random access hits the hot set. Together
	// they set the hot-data segment ratio (Fig 9a) and the knee of the
	// far-memory-ratio curve (Fig 12/15).
	HotShare float64
	HotProb  float64

	// WriteFraction is the store share of accesses (the page load/store
	// ratio signal).
	WriteFraction float64

	// ComputePerAccess is the CPU work between memory accesses: the
	// compute-intensity dial separating swap-sensitive from swap-friendly
	// behaviour.
	ComputePerAccess sim.Duration

	// MainAccesses is the main-phase access count (divided across threads).
	MainAccesses int

	// Threads is the application's parallelism: concurrent access streams
	// sharing the address space. Parallel frameworks (Ligra, GridGraph,
	// TensorFlow, ChatGLM) issue many overlapping faults, which is what
	// loads multiple far-memory channels at once. 0 means 1.
	Threads int

	// SwapFeature is the paper's Table VI label: 'S' (swap-sensitive,
	// average speedup <= 1.5x) or 'F' (swap-friendly, >= 1.5x). Used only to
	// validate that the reproduction lands in the right class.
	SwapFeature byte
}

func gib(v float64) int { return int(v * PagesPerGiB) }

// Specs returns all 17 Table V workloads in the paper's order.
func Specs() []Spec {
	return []Spec{
		{
			Name: "stream", Class: Compute, Description: "Stream memory bandwidth",
			MaxMemGiB: 4, FootprintPages: gib(4), AnonFraction: 0.97, Coverage: 1.0,
			SegmentLen: 4096, SeqShare: 0.97, RunLen: 256, HotShare: 1, HotProb: 0,
			WriteFraction: 0.45, ComputePerAccess: 40 * sim.Nanosecond,
			MainAccesses: 6 * gib(4), Threads: 2, SwapFeature: 'S',
		},
		{
			Name: "lpk", Class: Compute, Description: "Linpack floating-point computing",
			MaxMemGiB: 4, FootprintPages: gib(4), AnonFraction: 0.95, Coverage: 0.9,
			SegmentLen: 512, SeqShare: 0.5, RunLen: 48, HotShare: 0.15, HotProb: 0.95,
			WriteFraction: 0.3, ComputePerAccess: 3000 * sim.Nanosecond,
			MainAccesses: 6 * gib(4), Threads: 4, SwapFeature: 'S',
		},
		{
			Name: "kmeans", Class: Compute, Description: "K-means clustering on sklearn",
			MaxMemGiB: 4, FootprintPages: gib(4), AnonFraction: 0.85, Coverage: 0.95,
			SegmentLen: 256, SeqShare: 0.55, RunLen: 32, HotShare: 0.1, HotProb: 0.85,
			WriteFraction: 0.25, ComputePerAccess: 250 * sim.Nanosecond,
			MainAccesses: 6 * gib(4), Threads: 4, SwapFeature: 'S',
		},
		{
			Name: "sort", Class: Compute, Description: "Quicksort on C++ std",
			MaxMemGiB: 8, FootprintPages: gib(8), AnonFraction: 0.97, Coverage: 1.0,
			SegmentLen: 2048, SeqShare: 0.45, RunLen: 24, HotShare: 1, HotProb: 0,
			WriteFraction: 0.5, ComputePerAccess: 120 * sim.Nanosecond,
			MainAccesses: 5 * gib(8), Threads: 1, SwapFeature: 'S',
		},
		{
			Name: "sp-pg", Class: Compute, Description: "PageRank on Spark",
			MaxMemGiB: 10, FootprintPages: gib(10), AnonFraction: 0.6, Coverage: 0.9,
			SegmentLen: 128, SeqShare: 0.5, RunLen: 24, HotShare: 0.15, HotProb: 0.7,
			WriteFraction: 0.3, ComputePerAccess: 150 * sim.Nanosecond,
			MainAccesses: 4 * gib(10), Threads: 8, SwapFeature: 'S',
		},
		{
			Name: "gg-pre", Class: Graph, Description: "Graph preprocess on GridGraph",
			MaxMemGiB: 16, FootprintPages: gib(16), AnonFraction: 0.7, Coverage: 1.0,
			SegmentLen: 1024, SeqShare: 0.88, RunLen: 128, HotShare: 0.3, HotProb: 0.6,
			WriteFraction: 0.4, ComputePerAccess: 60 * sim.Nanosecond,
			MainAccesses: 4 * gib(16), Threads: 6, SwapFeature: 'F',
		},
		{
			Name: "gg-bfs", Class: Graph, Description: "Breadth-first search on GridGraph",
			MaxMemGiB: 16, FootprintPages: gib(16), AnonFraction: 0.35, Coverage: 0.85,
			SegmentLen: 64, SeqShare: 0.35, RunLen: 12, HotShare: 0.2, HotProb: 0.65,
			WriteFraction: 0.15, ComputePerAccess: 90 * sim.Nanosecond,
			MainAccesses: 4 * gib(16), Threads: 8, SwapFeature: 'S',
		},
		{
			Name: "lg-bfs", Class: Graph, Description: "Breadth-first search on Ligra",
			MaxMemGiB: 16, FootprintPages: gib(16), AnonFraction: 0.92, Coverage: 0.85,
			SegmentLen: 96, SeqShare: 0.45, RunLen: 16, HotShare: 0.2, HotProb: 0.65,
			WriteFraction: 0.15, ComputePerAccess: 80 * sim.Nanosecond,
			MainAccesses: 4 * gib(16), Threads: 6, SwapFeature: 'F',
		},
		{
			Name: "lg-bc", Class: Graph, Description: "Betweenness centrality on Ligra",
			MaxMemGiB: 16, FootprintPages: gib(16), AnonFraction: 0.92, Coverage: 0.9,
			SegmentLen: 128, SeqShare: 0.5, RunLen: 20, HotShare: 0.2, HotProb: 0.65,
			WriteFraction: 0.25, ComputePerAccess: 90 * sim.Nanosecond,
			MainAccesses: 4 * gib(16), Threads: 6, SwapFeature: 'F',
		},
		{
			Name: "lg-comp", Class: Graph, Description: "Connected components on Ligra",
			MaxMemGiB: 16, FootprintPages: gib(16), AnonFraction: 0.93, Coverage: 0.95,
			SegmentLen: 160, SeqShare: 0.55, RunLen: 24, HotShare: 0.25, HotProb: 0.65,
			WriteFraction: 0.3, ComputePerAccess: 80 * sim.Nanosecond,
			MainAccesses: 4 * gib(16), Threads: 6, SwapFeature: 'F',
		},
		{
			Name: "lg-mis", Class: Graph, Description: "Multiple importance sampling on Ligra",
			MaxMemGiB: 16, FootprintPages: gib(16), AnonFraction: 0.92, Coverage: 0.85,
			SegmentLen: 128, SeqShare: 0.5, RunLen: 20, HotShare: 0.2, HotProb: 0.65,
			WriteFraction: 0.2, ComputePerAccess: 85 * sim.Nanosecond,
			MainAccesses: 4 * gib(16), Threads: 6, SwapFeature: 'F',
		},
		{
			Name: "tf-infer", Class: AI, Description: "ResNet inference on TensorFlow",
			MaxMemGiB: 1, FootprintPages: gib(1), AnonFraction: 0.97, Coverage: 1.0,
			SegmentLen: 256, SeqShare: 0.8, RunLen: 96, HotShare: 0.4, HotProb: 0.85,
			WriteFraction: 0.2, ComputePerAccess: 200 * sim.Nanosecond,
			MainAccesses: 16 * gib(1), Threads: 8, SwapFeature: 'F',
		},
		{
			Name: "tf-incep", Class: AI, Description: "ResNet Inception on TensorFlow",
			MaxMemGiB: 1, FootprintPages: gib(1), AnonFraction: 0.97, Coverage: 1.0,
			SegmentLen: 224, SeqShare: 0.78, RunLen: 80, HotShare: 0.4, HotProb: 0.85,
			WriteFraction: 0.22, ComputePerAccess: 210 * sim.Nanosecond,
			MainAccesses: 16 * gib(1), Threads: 8, SwapFeature: 'F',
		},
		{
			Name: "tf-tc", Class: AI, Description: "CNN inference on text classification",
			MaxMemGiB: 10, FootprintPages: gib(10), AnonFraction: 0.8, Coverage: 1.0,
			SegmentLen: 512, SeqShare: 0.8, RunLen: 80, HotShare: 0.3, HotProb: 0.85,
			WriteFraction: 0.2, ComputePerAccess: 250 * sim.Nanosecond,
			MainAccesses: 4 * gib(10), Threads: 6, SwapFeature: 'F',
		},
		{
			Name: "bert", Class: AI, Description: "Inference on Bert",
			MaxMemGiB: 1.5, FootprintPages: gib(1.5), AnonFraction: 0.88, Coverage: 1.0,
			SegmentLen: 64, SeqShare: 0.55, RunLen: 24, HotShare: 0.35, HotProb: 0.85,
			WriteFraction: 0.15, ComputePerAccess: 300 * sim.Nanosecond,
			MainAccesses: 12 * gib(1.5), Threads: 2, SwapFeature: 'S',
		},
		{
			Name: "clip", Class: AI, Description: "Inference on Clip",
			MaxMemGiB: 1.7, FootprintPages: gib(1.7), AnonFraction: 0.85, Coverage: 0.95,
			SegmentLen: 24, SeqShare: 0.45, RunLen: 10, HotShare: 0.35, HotProb: 0.85,
			WriteFraction: 0.15, ComputePerAccess: 280 * sim.Nanosecond,
			MainAccesses: 12 * gib(1.7), Threads: 2, SwapFeature: 'S',
		},
		{
			Name: "chat-int", Class: AI, Description: "Inference on ChatGLM (int4)",
			MaxMemGiB: 14, FootprintPages: gib(14), AnonFraction: 0.99, Coverage: 1.0,
			SegmentLen: 4096, SeqShare: 0.92, RunLen: 384, HotShare: 0.25, HotProb: 0.5,
			WriteFraction: 0.1, ComputePerAccess: 100 * sim.Nanosecond,
			MainAccesses: 4 * gib(14), Threads: 8, SwapFeature: 'F',
		},
	}
}

// Find returns the spec with the given name. The boolean reports whether
// it exists — the right call for user-supplied names (CLI flags, JSON).
func Find(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ByName returns the spec with the given name, panicking on unknown names.
// Only for compile-time constant names; user input goes through Find.
func ByName(name string) Spec {
	s, ok := Find(name)
	if !ok {
		panic("workload: unknown workload " + name)
	}
	return s
}
