// Package vm models the virtualization layer xDM is built on: physical
// machines hosting KVM-style VMs, SR-IOV-like virtual far-memory backends
// pre-initialized per VM (warm start), the switchable swapper that retargets
// a VM's swap path in seconds, and the boot/reboot/switch cost model behind
// Fig 18.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
)

// Registered invariant for host resource accounting: cores and pages handed
// to VMs stay within [0, capacity] across every create/destroy — a VM can
// neither overdraw the host nor return resources it never held.
var ckHostResources = invariant.Register("vm.host.resource-accounting")

// Lifecycle cost model (Fig 18). The paper reports xDM's VM reboot is ~2.6×
// faster than the host reboot traditional systems need, and that all warm
// backend switches complete in under 5 s.
const (
	// HostBootCost is a physical server boot (power cycle + OS + services).
	HostBootCost = 100 * sim.Second
	// HostBootSysShare is the kernel-level share of a host boot.
	HostBootSysShare = 0.6

	// VMBootCost is a cold VM creation (image + guest boot).
	VMBootCost = 52 * sim.Second
	// VMRebootCost is a warm VM reboot (guest kernel only).
	VMRebootCost = 38 * sim.Second
	// VMRebootSysShare is the kernel-level share of a VM reboot.
	VMRebootSysShare = 0.58

	// ColdModuleSwitch is a backend switch without a pre-assembled module:
	// the guest kernel module must be rebuilt and inserted.
	ColdModuleSwitch = 34 * sim.Second
)

// startupCost is the warm-start time of a pre-assembled backend module.
// DRAM is the slowest: the host must allocate and pin the donated memory.
func startupCost(k device.Kind) sim.Duration {
	switch k {
	case device.RemoteDRAM:
		return sim.Duration(4.2 * float64(sim.Second))
	case device.RDMA, device.DPU:
		return sim.Duration(1.8 * float64(sim.Second))
	case device.CXL, device.PooledCXL:
		return sim.Duration(1.0 * float64(sim.Second))
	default: // SSD / HDD swap files on prepared partitions
		return sim.Duration(1.2 * float64(sim.Second))
	}
}

// shutdownCost is the teardown time of an active backend module.
func shutdownCost(k device.Kind) sim.Duration {
	switch k {
	case device.RemoteDRAM:
		return sim.Duration(0.8 * float64(sim.Second))
	case device.RDMA, device.DPU:
		return sim.Duration(0.6 * float64(sim.Second))
	default:
		return sim.Duration(0.4 * float64(sim.Second))
	}
}

// SwitchCost reports the warm backend-switch time from kind a to kind b
// (shutdown of a + startup of b). Fig 18(b) requires every pair < 5 s.
func SwitchCost(a, b device.Kind) sim.Duration {
	return shutdownCost(a) + startupCost(b)
}

// Machine is a physical host: a PCIe fabric with attached far-memory
// devices, the host OS swap stage (for hierarchical baselines), one shared
// swap channel (for shared-swap baselines), and a fleet of VMs.
type Machine struct {
	Eng  *sim.Engine
	Host *device.Host

	CPUCores    int
	MemoryPages int

	usedCores int
	usedPages int

	devices   map[string]*device.Device
	backends  map[string]*swap.DeviceBackend
	hostStage *swap.HostSwapStage
	shared    *swap.Channel

	vms    []*VM
	nextID int
}

// NewMachine builds a host on the given PCIe generation/lanes with the
// paper's testbed shape (two 10-core CPUs).
func NewMachine(eng *sim.Engine, gen pcie.Generation, lanes, cores, memoryPages int) *Machine {
	return &Machine{
		Eng:         eng,
		Host:        device.NewHost(eng, gen, lanes),
		CPUCores:    cores,
		MemoryPages: memoryPages,
		devices:     make(map[string]*device.Device),
		backends:    make(map[string]*swap.DeviceBackend),
		hostStage:   swap.NewHostSwapStage(eng, swap.DefaultHostWorkers),
		shared:      swap.NewChannel(eng, "host-shared", 4),
	}
}

// AttachDevice adds a far-memory device to the machine's fabric and
// registers it as a swappable backend.
func (m *Machine) AttachDevice(spec device.Spec) *device.Device {
	if _, dup := m.devices[spec.Name]; dup {
		panic(fmt.Sprintf("vm: duplicate device %q", spec.Name))
	}
	d := m.Host.Attach(spec)
	m.devices[spec.Name] = d
	m.backends[spec.Name] = swap.NewDeviceBackend(m.Eng, d)
	return d
}

// AdoptBackend registers an externally constructed device — one living on a
// shared fabric the machine does not own, such as a switch-attached pooled
// CXL port (internal/fabric) — as a swappable backend. The machine gains
// the backend without re-homing the device's links.
func (m *Machine) AdoptBackend(d *device.Device) *swap.DeviceBackend {
	name := d.Name()
	if _, dup := m.devices[name]; dup {
		panic(fmt.Sprintf("vm: duplicate device %q", name))
	}
	m.devices[name] = d
	b := swap.NewDeviceBackend(m.Eng, d)
	m.backends[name] = b
	return b
}

// Device returns an attached device by name.
func (m *Machine) Device(name string) *device.Device { return m.devices[name] }

// Backend returns a registered swap backend by name.
func (m *Machine) Backend(name string) *swap.DeviceBackend { return m.backends[name] }

// BackendNames lists registered backends in sorted order. The order is
// deterministic on purpose: callers feed it into backend selection, and map
// iteration order would leak run-to-run nondeterminism into results.
func (m *Machine) BackendNames() []string {
	names := make([]string, 0, len(m.backends))
	for n := range m.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HostStage exposes the shared host swap stage (hierarchical baselines).
func (m *Machine) HostStage() *swap.HostSwapStage { return m.hostStage }

// SharedChannel exposes the host's single shared swap channel.
func (m *Machine) SharedChannel() *swap.Channel { return m.shared }

// SharedPath builds a traditional path: shared channel + hierarchical host
// hop + the named backend. This is the baseline (Linux swap / Fastswap in a
// VM) configuration.
func (m *Machine) SharedPath(backend string) *swap.Path {
	b, ok := m.backends[backend]
	if !ok {
		panic(fmt.Sprintf("vm: unknown backend %q", backend))
	}
	return swap.NewHierarchicalPath(m.Eng, b, m.shared, m.hostStage)
}

// FreeCores and FreePages report unallocated host resources.
func (m *Machine) FreeCores() int { return m.CPUCores - m.usedCores }
func (m *Machine) FreePages() int { return m.MemoryPages - m.usedPages }

// VMs lists the machine's VMs.
func (m *Machine) VMs() []*VM { return m.vms }

// VMState tracks a VM's lifecycle.
type VMState int

// VM lifecycle states.
const (
	Booting VMState = iota
	Free            // booted, no task
	Online          // running at least one task
	Switching
)

func (s VMState) String() string {
	switch s {
	case Booting:
		return "booting"
	case Free:
		return "free"
	case Online:
		return "online"
	case Switching:
		return "switching"
	default:
		return "unknown"
	}
}

// VM is a guest with its own isolated swap channel and a set of
// pre-initialized (warm) virtual backends, one of which is active.
type VM struct {
	Name    string
	machine *Machine

	Cores int
	Pages int

	channel *swap.Channel
	// warm maps backend name → pre-built bypass path (SR-IOV virtual
	// function + pre-assembled swap module).
	warm   map[string]*swap.Path
	active string
	state  VMState

	// ActiveTasks counts tasks currently dispatched to this VM.
	ActiveTasks int

	// Switches and SwitchTime accumulate backend-switch overhead.
	Switches   uint64
	SwitchTime sim.Duration

	// Observability handle, resolved once at creation (nil when off).
	rec   *obs.Recorder
	track string
}

// CreateVM allocates host resources and boots a VM with the named warm
// backends (the first is active). done fires when the boot completes.
// It returns nil if the host lacks resources.
func (m *Machine) CreateVM(name string, cores, pages int, warmBackends []string, done func(*VM)) *VM {
	if cores > m.FreeCores() || pages > m.FreePages() {
		return nil
	}
	if len(warmBackends) == 0 {
		panic("vm: VM needs at least one backend")
	}
	m.usedCores += cores
	m.usedPages += pages
	if invariant.On {
		ckHostResources.Assert(m.usedCores <= m.CPUCores && m.usedPages <= m.MemoryPages,
			"allocated %d/%d cores, %d/%d pages", m.usedCores, m.CPUCores, m.usedPages, m.MemoryPages)
	}
	m.nextID++
	v := &VM{
		Name:    name,
		machine: m,
		Cores:   cores,
		Pages:   pages,
		channel: swap.NewChannel(m.Eng, name+"-ch", 4),
		warm:    make(map[string]*swap.Path),
		state:   Booting,
	}
	if obs.On {
		if r := obs.Rec(m.Eng); r != nil {
			v.rec = r
			v.track = "vm/" + name
			r.OnSeal(func() {
				r.Counter(v.track + "/switches").Add(float64(v.Switches))
				r.Gauge(v.track + "/switch-time-ns").Set(float64(v.SwitchTime))
			})
		}
	}
	boot := VMBootCost
	for _, b := range warmBackends {
		be, ok := m.backends[b]
		if !ok {
			panic(fmt.Sprintf("vm: unknown backend %q", b))
		}
		// Warm initialization happens during boot (overlapped), costing
		// only the longest backend startup beyond the base boot time.
		if s := startupCost(be.Kind()); boot < VMBootCost+s/2 {
			boot = VMBootCost + s/2
		}
		v.warm[b] = swap.NewPath(m.Eng, be, v.channel)
	}
	v.active = warmBackends[0]
	m.vms = append(m.vms, v)
	bootStart := m.Eng.Now()
	m.Eng.After(boot, func() {
		v.state = Free
		if v.rec != nil {
			v.rec.Span(v.track, "boot", bootStart, "")
		}
		if done != nil {
			done(v)
		}
	})
	return v
}

// Destroy releases the VM's host resources.
func (m *Machine) Destroy(v *VM) {
	for i, x := range m.vms {
		if x == v {
			m.vms = append(m.vms[:i], m.vms[i+1:]...)
			break
		}
	}
	m.usedCores -= v.Cores
	m.usedPages -= v.Pages
	if invariant.On {
		ckHostResources.Assert(m.usedCores >= 0 && m.usedPages >= 0,
			"freed below zero: %d cores, %d pages", m.usedCores, m.usedPages)
	}
}

// State reports the VM's lifecycle state.
func (v *VM) State() VMState { return v.state }

// ActiveBackend reports the active backend's name.
func (v *VM) ActiveBackend() string { return v.active }

// HasWarmBackend reports whether the named backend is pre-initialized.
func (v *VM) HasWarmBackend(name string) bool {
	_, ok := v.warm[name]
	return ok
}

// Activate points the VM's swapper at a warm backend without a runtime
// switch — a provisioning-time choice, made before the guest runs, so it is
// free. Retargeting a running VM must go through SwitchBackend and pay the
// warm-switch cost.
func (v *VM) Activate(name string) error {
	if _, ok := v.warm[name]; !ok {
		return fmt.Errorf("vm: backend %q is not warm", name)
	}
	v.active = name
	return nil
}

// Path returns the VM's bypass swap path for its active backend.
func (v *VM) Path() *swap.Path { return v.warm[v.active] }

// PathFor returns the VM's path for any warm backend (nil if absent).
func (v *VM) PathFor(name string) *swap.Path { return v.warm[name] }

// Channel exposes the VM's isolated swap channel.
func (v *VM) Channel() *swap.Channel { return v.channel }

// SwitchBackend retargets the VM's swapper to the named backend. Warm
// backends switch in SwitchCost (< 5 s); a cold backend pays the module
// assembly cost and becomes warm. done fires when the switch completes.
// Naming a backend the machine does not have returns an error (the request
// may come from spec- or policy-driven input, e.g. a failover controller
// racing a topology change) and done never fires.
func (v *VM) SwitchBackend(name string, done func()) error {
	if name == v.active {
		if done != nil {
			v.machine.Eng.Immediately(done)
		}
		return nil
	}
	be, ok := v.machine.backends[name]
	if !ok {
		return fmt.Errorf("vm: unknown backend %q", name)
	}
	oldKind := v.machine.backends[v.active].Kind()
	var cost sim.Duration
	if _, warm := v.warm[name]; warm {
		cost = SwitchCost(oldKind, be.Kind())
	} else {
		cost = ColdModuleSwitch + SwitchCost(oldKind, be.Kind())
		v.warm[name] = swap.NewPath(v.machine.Eng, be, v.channel)
	}
	prev := v.state
	v.state = Switching
	v.Switches++
	v.SwitchTime += cost
	switchStart := v.machine.Eng.Now()
	v.machine.Eng.After(cost, func() {
		v.active = name
		if v.state == Switching {
			v.state = prev
		}
		if v.rec != nil {
			v.rec.Span(v.track, "switch", switchStart, name)
		}
		if done != nil {
			done()
		}
	})
	return nil
}

// Reboot restarts the guest (e.g. to apply an offline parameter), costing
// VMRebootCost — the cheap alternative to the host reboot traditional
// systems need (Fig 18a).
func (v *VM) Reboot(done func()) {
	prev := v.state
	v.state = Booting
	rebootStart := v.machine.Eng.Now()
	v.machine.Eng.After(VMRebootCost, func() {
		v.state = prev
		if v.rec != nil {
			v.rec.Span(v.track, "reboot", rebootStart, "")
		}
		if done != nil {
			done()
		}
	})
}

// Accept reports whether the VM can host a task needing the given
// resources.
func (v *VM) Accept(cores, pages int) bool {
	return v.state != Booting && cores <= v.Cores && pages <= v.Pages
}

// BeginTask records a task dispatched to this VM, moving it Online.
func (v *VM) BeginTask() {
	v.ActiveTasks++
	if v.state == Free {
		v.state = Online
	}
}

// EndTask records a task completion; the VM returns to Free when idle.
func (v *VM) EndTask() {
	if v.ActiveTasks > 0 {
		v.ActiveTasks--
	}
	if v.ActiveTasks == 0 && v.state == Online {
		v.state = Free
	}
}
