package vm

import (
	"testing"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func newMachine(eng *sim.Engine) *Machine {
	m := NewMachine(eng, pcie.Gen4, 16, 20, 1<<20)
	m.AttachDevice(device.SpecTestbedSSD("ssd0"))
	m.AttachDevice(device.SpecConnectX5("rdma0"))
	m.AttachDevice(device.SpecRemoteDRAM("dram0"))
	return m
}

func TestCreateVMAllocatesResources(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	var booted *VM
	v := m.CreateVM("vm1", 4, 1<<18, []string{"ssd0", "rdma0"}, func(v *VM) { booted = v })
	if v == nil {
		t.Fatal("CreateVM failed despite free resources")
	}
	if v.State() != Booting {
		t.Fatalf("state=%v before boot completes", v.State())
	}
	eng.Run()
	if booted != v || v.State() != Free {
		t.Fatalf("boot callback/state wrong: %v %v", booted, v.State())
	}
	if m.FreeCores() != 16 || m.FreePages() != (1<<20)-(1<<18) {
		t.Fatalf("resources not allocated: cores=%d pages=%d", m.FreeCores(), m.FreePages())
	}
	if eng.Now() < sim.Time(VMBootCost) {
		t.Fatalf("boot finished too fast: %v", eng.Now())
	}
}

func TestCreateVMRefusesOvercommit(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	if v := m.CreateVM("vm1", 100, 1, []string{"ssd0"}, nil); v != nil {
		t.Fatal("overcommitted cores accepted")
	}
	if v := m.CreateVM("vm1", 1, 1<<30, []string{"ssd0"}, nil); v != nil {
		t.Fatal("overcommitted memory accepted")
	}
}

func TestWarmSwitchUnder5Seconds(t *testing.T) {
	// Fig 18(b): every warm backend switch completes in < 5 s.
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 2, 1024, []string{"ssd0", "rdma0", "dram0"}, nil)
	eng.Run()
	kinds := []string{"ssd0", "rdma0", "dram0"}
	for _, from := range kinds {
		for _, to := range kinds {
			if from == to {
				continue
			}
			v.SwitchBackend(from, nil)
			eng.Run()
			start := eng.Now()
			switched := false
			v.SwitchBackend(to, func() { switched = true })
			eng.Run()
			took := eng.Now().Sub(start)
			if !switched {
				t.Fatalf("switch %s->%s never completed", from, to)
			}
			if took >= 5*sim.Second {
				t.Fatalf("switch %s->%s took %v, want < 5s", from, to, took)
			}
			if v.ActiveBackend() != to {
				t.Fatalf("active=%s after switch to %s", v.ActiveBackend(), to)
			}
		}
	}
}

func TestDRAMStartupIsSlowest(t *testing.T) {
	// Fig 18(b): the DRAM backend's startup dominates switching cost.
	toDRAM := SwitchCost(device.SSD, device.RemoteDRAM)
	toRDMA := SwitchCost(device.SSD, device.RDMA)
	toSSD := SwitchCost(device.RDMA, device.SSD)
	if !(toDRAM > toRDMA && toDRAM > toSSD) {
		t.Fatalf("DRAM switch %v not slowest (rdma %v ssd %v)", toDRAM, toRDMA, toSSD)
	}
}

func TestColdSwitchCostsMore(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 2, 1024, []string{"ssd0"}, nil) // rdma0 not warm
	eng.Run()
	start := eng.Now()
	v.SwitchBackend("rdma0", nil)
	eng.Run()
	took := eng.Now().Sub(start)
	if took < ColdModuleSwitch {
		t.Fatalf("cold switch took %v, want >= %v", took, ColdModuleSwitch)
	}
	if !v.HasWarmBackend("rdma0") {
		t.Fatal("cold switch should leave the backend warm")
	}
	// Second switch back and forth is warm.
	v.SwitchBackend("ssd0", nil)
	eng.Run()
	start = eng.Now()
	v.SwitchBackend("rdma0", nil)
	eng.Run()
	if eng.Now().Sub(start) >= 5*sim.Second {
		t.Fatal("re-switch to warmed backend not fast")
	}
}

func TestSwitchToActiveIsFree(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 2, 1024, []string{"ssd0"}, nil)
	eng.Run()
	start := eng.Now()
	done := false
	v.SwitchBackend("ssd0", func() { done = true })
	eng.Run()
	if !done || eng.Now() != start {
		t.Fatal("no-op switch should complete instantly")
	}
	if v.Switches != 0 {
		t.Fatal("no-op switch counted")
	}
}

func TestVMRebootBeatsHostBoot(t *testing.T) {
	// Fig 18(a): VM reboot is ~2.6× faster than a host boot.
	ratio := float64(HostBootCost) / float64(VMRebootCost)
	if ratio < 2.3 || ratio > 3.0 {
		t.Fatalf("host/VM boot ratio %.2f, want ~2.6", ratio)
	}
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 2, 1024, []string{"ssd0"}, nil)
	eng.Run()
	start := eng.Now()
	v.Reboot(nil)
	eng.Run()
	if eng.Now().Sub(start) != VMRebootCost {
		t.Fatal("reboot cost wrong")
	}
}

func TestDestroyReleasesResources(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 4, 4096, []string{"ssd0"}, nil)
	eng.Run()
	m.Destroy(v)
	if m.FreeCores() != 20 || m.FreePages() != 1<<20 {
		t.Fatal("destroy did not release resources")
	}
	if len(m.VMs()) != 0 {
		t.Fatal("VM still listed")
	}
}

func TestSharedPathIsHierarchical(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	p := m.SharedPath("ssd0")
	if !p.Hierarchical() {
		t.Fatal("shared baseline path must be hierarchical")
	}
	if p.Channel() != m.SharedChannel() {
		t.Fatal("shared path must use the host's shared channel")
	}
}

func TestVMPathIsBypassAndIsolated(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v1 := m.CreateVM("vm1", 2, 1024, []string{"rdma0"}, nil)
	v2 := m.CreateVM("vm2", 2, 1024, []string{"rdma0"}, nil)
	eng.Run()
	if v1.Path().Hierarchical() {
		t.Fatal("VM path must bypass the host")
	}
	if v1.Path().Channel() == v2.Path().Channel() {
		t.Fatal("VMs must have isolated channels")
	}
}

func TestAcceptChecksResources(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 2, 1024, []string{"ssd0"}, nil)
	if v.Accept(1, 512) {
		t.Fatal("booting VM accepted a task")
	}
	eng.Run()
	if !v.Accept(2, 1024) {
		t.Fatal("fitting task rejected")
	}
	if v.Accept(3, 1024) || v.Accept(2, 2048) {
		t.Fatal("oversized task accepted")
	}
}

func TestBackendNamesAndAccessors(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	if len(m.BackendNames()) != 3 {
		t.Fatal("backend names incomplete")
	}
	if m.Device("ssd0") == nil || m.Backend("rdma0") == nil {
		t.Fatal("accessors nil")
	}
	if m.HostStage() == nil {
		t.Fatal("host stage nil")
	}
}

func TestVMStateStrings(t *testing.T) {
	states := map[VMState]string{Booting: "booting", Free: "free", Online: "online",
		Switching: "switching", VMState(9): "unknown"}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("state %d = %q, want %q", s, s.String(), want)
		}
	}
}

func TestVMTaskLifecycleAndPaths(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm1", 2, 1024, []string{"ssd0", "rdma0"}, nil)
	eng.Run()
	if v.PathFor("rdma0") == nil || v.PathFor("nope") != nil {
		t.Fatal("PathFor wrong")
	}
	if v.Channel() == nil || v.Channel() != v.Path().Channel() {
		t.Fatal("channel accessor inconsistent")
	}
	v.BeginTask()
	if v.State() != Online || v.ActiveTasks != 1 {
		t.Fatal("BeginTask")
	}
	v.BeginTask()
	v.EndTask()
	if v.State() != Online {
		t.Fatal("VM idled with a task still active")
	}
	v.EndTask()
	if v.State() != Free || v.ActiveTasks != 0 {
		t.Fatal("EndTask")
	}
	v.EndTask() // no underflow
	if v.ActiveTasks != 0 {
		t.Fatal("EndTask underflow")
	}
}

func TestSharedPathUnknownBackendPanics(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown backend did not panic")
		}
	}()
	m.SharedPath("nope")
}

func TestActivateIsFreeProvisioningChoice(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm", 2, 1024, []string{"rdma0", "ssd0"}, nil)
	eng.Run()
	if v.ActiveBackend() != "rdma0" {
		t.Fatalf("default active %q, want first warm backend", v.ActiveBackend())
	}
	before := eng.Now()
	if err := v.Activate("ssd0"); err != nil {
		t.Fatal(err)
	}
	if v.ActiveBackend() != "ssd0" {
		t.Fatalf("active %q after Activate", v.ActiveBackend())
	}
	eng.Run()
	if eng.Now() != before || v.Switches != 0 {
		t.Fatal("Activate cost time or counted as a switch")
	}
	// Only warm backends are eligible; cold ones need SwitchBackend.
	if err := v.Activate("dram0"); err == nil {
		t.Fatal("Activate accepted a cold backend")
	}
	if err := v.Activate("nope"); err == nil {
		t.Fatal("Activate accepted an unknown backend")
	}
}

func TestSwitchBackendUnknownReturnsError(t *testing.T) {
	eng := sim.NewEngine()
	m := newMachine(eng)
	v := m.CreateVM("vm", 2, 1024, []string{"rdma0"}, nil)
	eng.Run()
	fired := false
	if err := v.SwitchBackend("missing", func() { fired = true }); err == nil {
		t.Fatal("switch to unknown backend did not error")
	}
	eng.Run()
	if fired {
		t.Fatal("done fired for a failed switch")
	}
	if v.Switches != 0 {
		t.Fatalf("failed switch counted: %d", v.Switches)
	}
}
