package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/workload"
)

func init() {
	register("dynamic", Dynamic)
}

// dynamicPhases builds a long-running, phase-changing application over a
// half-file/half-anonymous footprint:
//
//	phase A (ingest): sequential scan across the whole space — file I/O
//	  dominates, so the expensive RDMA path buys almost nothing over SSD;
//	phase B (serve): latency-critical random probes of anonymous
//	  structures — RDMA territory;
//	phase A again (re-ingest).
//
// Each phase is long enough that a sub-5s warm backend switch amortizes —
// the paper's "long-running, data-intensive tasks".
func dynamicPhases(o Options) []workload.Spec {
	footprint := 16384 / o.Scale
	if footprint < 2048 {
		footprint = 2048
	}
	scan := workload.Spec{
		Name: "phase-ingest", Class: workload.Compute,
		FootprintPages: footprint, AnonFraction: 0.5, Coverage: 1.0,
		SegmentLen: footprint, SeqShare: 0.92, RunLen: 256,
		HotShare: 1, HotProb: 0, WriteFraction: 0.3,
		ComputePerAccess: 2 * sim.Microsecond,
		MainAccesses:     footprint * 120, Threads: 4,
	}
	probe := scan
	probe.Name = "phase-serve"
	probe.SeqShare, probe.RunLen = 0.1, 4
	probe.HotShare, probe.HotProb = 0.15, 0.6
	probe.SegmentLen = 64
	probe.MainAccesses = footprint * 360 // the serve phase dominates the day
	return []workload.Spec{scan, probe, scan}
}

// Dynamic demonstrates the paper's headline capability: dynamic, implicit
// backend switching on a phase-changing workload. A static system is pinned
// to one backend: static-SSD is slow in the serve phase, static-RDMA wastes
// the expensive path during ingest. The dynamic swapper tracks the phases,
// matching the best runtime at a fraction of static-RDMA's far-memory cost
// (the MEI framing: effectiveness per device cost).
func Dynamic(o Options) []Table {
	phases := dynamicPhases(o)

	runStatic := func(backend string) (sim.Duration, float64) {
		eng := sim.NewEngine()
		env := testbed(eng)
		cfg := prepareStaticPhased(env, phases, backend, o.Seed)
		rt := runTask(eng, cfg).Runtime
		cost := core.NormalizedCost(env.Machine.Backend(backend).CostPerGB()) * rt.Seconds()
		return rt, cost
	}

	runDynamic := func() (sim.Duration, float64, []baseline.SwitchRecord, string) {
		eng := sim.NewEngine()
		env := testbed(eng)
		v := env.Machine.CreateVM("dyn", 4, phases[0].FootprintPages*2,
			[]string{"ssd", "rdma", "dram"}, nil)
		eng.Run() // boot with the warm backends ready
		run := baseline.PrepareXDMDynamic(env, v, phases, 0.5, o.Seed)
		taskStart := eng.Now()
		tk := task.New(run.Config)
		tl := metrics.NewTimeline(eng, 50*sim.Millisecond, func() float64 {
			return float64(tk.Stats().MajorFaults)
		})
		var stats task.Stats
		finished := false
		tk.Start(func(st task.Stats) { stats = st; finished = true; tl.Stop() })
		eng.Run()
		if !finished {
			panic("dynamic: task did not finish")
		}
		faultSpark := metrics.Sparkline(metrics.Delta(tl.Samples()), 60)

		// Far-memory cost: integrate normalized backend cost over the
		// segments between switches.
		cost := 0.0
		segStart := taskStart
		current := run.Config.SwapPath.Backend().Name()
		// Reconstruct: the initial backend is the first switch's From (or
		// the final path's backend if no switches happened).
		if len(run.Switches) > 0 {
			current = run.Switches[0].From
		}
		end := taskStart.Add(sim.Duration(stats.Runtime))
		for _, sw := range run.Switches {
			at := sw.At
			if at > end {
				at = end // a switch can complete after the task finishes
			}
			cost += core.NormalizedCost(env.Machine.Backend(current).CostPerGB()) *
				at.Sub(segStart).Seconds()
			segStart = at
			current = sw.To
		}
		if end > segStart {
			cost += core.NormalizedCost(env.Machine.Backend(current).CostPerGB()) *
				end.Sub(segStart).Seconds()
		}
		return stats.Runtime, cost, run.Switches, faultSpark
	}

	// Three independent system runs fan out as one grid: static-ssd,
	// static-rdma, and the dynamic switcher.
	type dynCell struct {
		rt       sim.Duration
		cost     float64
		switches []baseline.SwitchRecord
		spark    string
	}
	cells := runGrid(o, 3, func(i int) dynCell {
		switch i {
		case 0:
			rt, cost := runStatic("ssd")
			return dynCell{rt: rt, cost: cost}
		case 1:
			rt, cost := runStatic("rdma")
			return dynCell{rt: rt, cost: cost}
		default:
			rt, cost, switches, spark := runDynamic()
			return dynCell{rt: rt, cost: cost, switches: switches, spark: spark}
		}
	})
	ssdRT, ssdCost := cells[0].rt, cells[0].cost
	rdmaRT, rdmaCost := cells[1].rt, cells[1].cost
	dynRT, dynCost, switches, faultSpark := cells[2].rt, cells[2].cost, cells[2].switches, cells[2].spark

	bestRT := ssdRT
	if rdmaRT < bestRT {
		bestRT = rdmaRT
	}
	t := Table{
		ID:    "dynamic",
		Title: "Dynamic implicit backend switching on a phase-changing workload",
		Columns: []string{"system", "runtime", "vs best static", "FM cost (norm·s)",
			"effectiveness", "switches"},
	}
	eff := func(rt sim.Duration, cost float64) string {
		// Effectiveness = runtime-improvement over the worst / cost (MEI).
		worst := ssdRT
		if rdmaRT > worst {
			worst = rdmaRT
		}
		return f2(float64(worst) / float64(rt) / cost)
	}
	t.AddRow("static-ssd", ms(ssdRT), ratio(float64(ssdRT)/float64(bestRT)),
		f2(ssdCost), eff(ssdRT, ssdCost), "0")
	t.AddRow("static-rdma", ms(rdmaRT), ratio(float64(rdmaRT)/float64(bestRT)),
		f2(rdmaCost), eff(rdmaRT, rdmaCost), "0")
	t.AddRow("xdm-dynamic", ms(dynRT), ratio(float64(dynRT)/float64(bestRT)),
		f2(dynCost), eff(dynRT, dynCost), fmt.Sprint(len(switches)))
	for _, sw := range switches {
		t.Notes = append(t.Notes,
			fmt.Sprintf("switched %s -> %s at t=%v", sw.From, sw.To, sw.At))
	}
	if faultSpark != "" {
		t.Notes = append(t.Notes, "fault rate over time (dynamic run): "+faultSpark)
	}
	t.Notes = append(t.Notes,
		"dynamic switching tracks the best backend per phase: near-static-RDMA runtime at near-static-SSD cost (highest memory effectiveness improvement)")
	return []Table{t}
}

// prepareStaticPhased is the static strawman: the same phased workload,
// same tuning machinery, but pinned to one backend forever.
func prepareStaticPhased(env baseline.Env, phases []workload.Spec, backend string, seed int64) task.Config {
	setup := baseline.PrepareXDM(env, env.Machine.Backend(backend), phases[0], 0.5, 1.4, seed)
	cfg := setup.Config
	threads := phases[0].Threads
	var sources []workload.AccessSource
	for ti := 0; ti < threads; ti++ {
		per := make([]workload.Spec, len(phases))
		for pi, p := range phases {
			p.MainAccesses /= threads
			per[pi] = p
		}
		ps := workload.NewPhasedStream(per, seed+int64(ti)*7919)
		if ti > 0 {
			ps.SkipInit()
		}
		sources = append(sources, ps)
	}
	cfg.Sources = sources
	return cfg
}
