package experiments

import (
	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register("cxl", CXLModes)
}

// CXLModes explores Section IV-B's discussion of new cache-coherent memory:
// "the PCIe-based CXL memory can act as a local NUMA node with large memory
// space and no CPU, or one of the far memory backends". For each workload,
// half the footprint lives in socket DRAM and the other half overflows to
// CXL under three regimes:
//
//   - rdma-swap:   no CXL; the overflow swaps to RDMA far memory (baseline)
//   - cxl-numa:    CXL exposed as a CPU-less NUMA node; overflow pages are
//     *mapped*, not swapped — every access pays the CXL load
//     latency but there are no faults
//   - cxl-backend: CXL attached as a swap backend; overflow pages swap at
//     the tuned granularity
func CXLModes(o Options) []Table {
	t := Table{
		ID:      "cxl",
		Title:   "CXL as CPU-less NUMA node vs as far-memory backend (Sec IV-B)",
		Columns: []string{"workload", "rdma-swap", "cxl-numa", "cxl-backend", "best"},
	}
	names := []string{"bert", "chat-int", "kmeans", "stream"}
	modes := []string{"rdma-swap", "cxl-numa", "cxl-backend"}
	grid := runGrid2(o, len(names), len(modes), func(i, j int) sim.Duration {
		spec := o.scaled(workload.ByName(names[i]))
		dramPages := spec.FootprintPages / 2

		measure := func(mode string) sim.Duration {
			eng := sim.NewEngine()
			m := vm.NewMachine(eng, pcie.Gen4, 16, 20, 64*workload.PagesPerGiB)
			m.AttachDevice(device.SpecTestbedSSD("ssd"))
			m.AttachDevice(device.SpecConnectX5("rdma"))
			m.AttachDevice(device.SpecCXL("cxl"))
			env := baseline.Env{Machine: m, FileBackend: "ssd"}

			switch mode {
			case "cxl-numa":
				// Everything mapped; the second "node" is the CXL expander.
				setup := baseline.PrepareXDM(env, m.Backend("rdma"), spec, 1.0, 1.4, o.Seed)
				cfg := setup.Config
				topo := mem.NewTopology(dramPages)
				topo.Nodes = topo.Nodes[:1] // single socket
				topo.AddCXLNode(spec.FootprintPages)
				cfg.Topo = topo
				cfg.NUMAPolicy = mem.BindLocal // fill DRAM first, spill to CXL
				return runTask(eng, cfg).Runtime
			case "cxl-backend":
				setup := baseline.PrepareXDM(env, m.Backend("cxl"), spec, 0.5, 1.4, o.Seed)
				return runTask(eng, setup.Config).Runtime
			default: // rdma-swap
				setup := baseline.PrepareXDM(env, m.Backend("rdma"), spec, 0.5, 1.4, o.Seed)
				return runTask(eng, setup.Config).Runtime
			}
		}

		return measure(modes[j])
	})
	for i, name := range names {
		rdma, numa, backend := grid[i][0], grid[i][1], grid[i][2]
		best := "cxl-numa"
		if backend < numa && backend < rdma {
			best = "cxl-backend"
		} else if rdma < numa && rdma < backend {
			best = "rdma-swap"
		}
		t.AddRow(name, ms(rdma), ms(numa), ms(backend), best)
	}
	t.Notes = append(t.Notes,
		"CXL-as-NUMA removes fault overhead entirely (every access pays the load latency instead); CXL-as-backend keeps DRAM-speed hits and batches the misses — which wins depends on the access pattern")
	return []Table{t}
}
