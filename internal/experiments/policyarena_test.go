package experiments

import (
	"bytes"
	"testing"

	"repro/internal/datacenter"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPolicyArenaShape requires the head-to-head table to actually separate
// the competing policies: on the shared replay at least three policies must
// be pairwise distinguishable on the balance axes (MBE, peak stranding, p99
// placement delay), and every policy must serve the same offered load. It
// runs a scale tier up from the golden (which pins exact values at scale 8)
// to prove the separation is a property of the replay, not of one scale,
// while keeping the five-way race affordable.
func TestPolicyArenaShape(t *testing.T) {
	o := TestOptions()
	o.Scale = 16
	o.Workers = 4
	rows := PolicyArenaData(o)
	if len(rows) != len(PolicyArenaPolicies()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(PolicyArenaPolicies()))
	}
	type axes struct {
		mbe, stranded float64
		p99           int64
	}
	distinct := map[axes]bool{}
	offered := rows[0].Result.Offered
	for _, r := range rows {
		res := r.Result
		if res.Offered != offered {
			t.Errorf("%s offered %d, want %d (the replay is shared)", r.Policy, res.Offered, offered)
		}
		if res.Completed == 0 {
			t.Errorf("%s completed nothing", r.Policy)
		}
		if res.Completed+res.Refused > res.Offered {
			t.Errorf("%s conservation broken: completed %d + refused %d > offered %d",
				r.Policy, res.Completed, res.Refused, res.Offered)
		}
		distinct[axes{res.MBE, res.StrandedFrac, int64(res.DelayP99)}] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("only %d distinct (mbe, stranded, p99) outcomes across %d policies — the replay does not separate them",
			len(distinct), len(rows))
	}
}

// TestPolicyArenaOneShotRefusesUnderOverload pins the extender plumbing with
// a deliberately drowned two-node fleet: under the same flood the one-shot
// policy must refuse work it cannot place immediately while plain worst-fit
// queues everything — proof the no-retry extender reaches the arena's fill
// loop rather than dying in the spec parser. (At golden options the full
// replay shows the same split: one-shot refuses 328, worst-fit 0.)
func TestPolicyArenaOneShotRefusesUnderOverload(t *testing.T) {
	o := TestOptions()
	o.Scale = 32
	run := func(spec string) datacenter.ArenaResult {
		cfg := arenaConfig(o, 2, 0, true)
		apps, foot := policyArenaTemplates(o)
		cfg.Templates = apps
		cfg.PagesPerNode = 6 * foot
		cfg.Policy = place.Builtin(spec)
		cfg.Arrivals = workload.Poisson{RPS: 4000}
		cfg.Duration = sim.Second / 4
		cfg.Drain = sim.Second / 16
		cfg.MaxQueue = 8
		return datacenter.NewArena(cfg).Run()
	}
	oneShot := run("one-shot")
	if oneShot.Refused == 0 {
		t.Error("one-shot refused nothing under a drowned fleet; the no-retry extender is not reaching the arena")
	}
	worstFit := run("worst-fit")
	if oneShot.Refused <= worstFit.Refused {
		t.Errorf("one-shot refused %d, worst-fit %d — refuse-instead-of-queue should refuse strictly more",
			oneShot.Refused, worstFit.Refused)
	}
}

// TestPolicyArenaShardWorkersDeterministic extends the sharded-kernel gate to
// the policy grid: every policy's run must be byte-identical whether its
// arena executes serially or sharded eight ways, with grid workers crossed
// in to prove policy fan-out composes with both parallelism axes. Scale 32
// shrinks every request and the offered rate with it, keeping four full
// renders of the five-policy grid affordable; determinism is scale-blind.
func TestPolicyArenaShardWorkersDeterministic(t *testing.T) {
	serial := TestOptions()
	serial.Scale = 32
	serial.ShardWorkers = 1
	ref := renderExperiment(t, "policyarena", serial)
	for _, tc := range []struct{ shardWorkers, workers int }{
		{2, 1}, {8, 1}, {8, 4},
	} {
		o := serial
		o.ShardWorkers = tc.shardWorkers
		o.Workers = tc.workers
		got := renderExperiment(t, "policyarena", o)
		if !bytes.Equal(ref, got) {
			t.Fatalf("ShardWorkers=%d Workers=%d output differs from serial:\n--- serial\n%s\n--- sharded\n%s",
				tc.shardWorkers, tc.workers, ref, got)
		}
	}
}

// TestPolicyArenaSweepNames locks the capacity-sweep surface xdmbench
// -capacity appends: one sweep per built-in policy, ramped like the xdm
// arena.
func TestPolicyArenaSweepNames(t *testing.T) {
	sweeps := PolicyArenaSweeps(TestOptions())
	if len(sweeps) != len(PolicyArenaPolicies()) {
		t.Fatalf("got %d sweeps, want %d", len(sweeps), len(PolicyArenaPolicies()))
	}
	for i, s := range sweeps {
		want := "policy-" + PolicyArenaPolicies()[i]
		if s.Name != want {
			t.Errorf("sweep %d named %q, want %q", i, s.Name, want)
		}
		if s.RunRung == nil {
			t.Errorf("sweep %q has no rung runner", s.Name)
		}
		if s.Cap.StartRPS <= 0 || s.Cap.MaxRPS < s.Cap.StartRPS {
			t.Errorf("sweep %q has a degenerate ramp: %+v", s.Name, s.Cap)
		}
	}
}
