// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated substrate. Each experiment is a
// function returning rendered Tables; the registry maps the paper's artifact
// ids (fig2b, tab6, ...) to runners so cmd/xdmsim and the benchmark harness
// can invoke them uniformly.
//
// Absolute numbers differ from the paper's physical testbed by construction;
// the reproduction target is the result *shape*: orderings, approximate
// ratios, and crossover locations.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/pcie"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"

	"repro/internal/baseline"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Options control experiment fidelity.
type Options struct {
	// Scale divides workload footprints and access counts: 1 is full
	// fidelity (benchmark harness), larger values run faster (tests).
	Scale int
	// Seed feeds every stochastic component.
	Seed int64
	// Workers bounds how many independent engine runs execute concurrently
	// (grid cells; see parallel.go). 0 or 1 is serial. Output is
	// byte-identical for any worker count: parallelism is across runs,
	// never inside one.
	Workers int
	// ShardWorkers shards the datacenter arena's event kernel by node
	// domain and runs that many shard workers *inside* one simulation
	// (see sim.Shards). 0 or 1 is a single serial shard. Output is
	// byte-identical for any value: cross-shard events merge at
	// deterministic lookahead barriers in canonical order.
	ShardWorkers int
	// Policy overrides the placement policy by spec (see place.ParsePolicy;
	// "" keeps each experiment's default: alg1 on the dispatcher, worst-fit
	// on the arena). CLIs validate the spec before it reaches here;
	// placementPolicy panics on a malformed spec.
	Policy string
	// Fabric overrides the CXL switch topology for the fabric experiments
	// (see fabric.ParseSpec; "" keeps fabric.DefaultSpec). CLIs validate the
	// spec before it reaches here; fabricSpec panics on a malformed spec.
	Fabric string
}

// fabricSpec parses Options.Fabric ("" = fabric.DefaultSpec).
func (o Options) fabricSpec() fabric.Spec {
	if o.Fabric == "" {
		return fabric.DefaultSpec()
	}
	s, err := fabric.ParseSpec(o.Fabric)
	if err != nil {
		panic("experiments: invalid fabric spec: " + err.Error())
	}
	return s
}

// placementPolicy parses Options.Policy ("" = nil, keep defaults).
func (o Options) placementPolicy() *place.Policy {
	if o.Policy == "" {
		return nil
	}
	p, err := place.ParsePolicy(o.Policy)
	if err != nil {
		panic("experiments: invalid placement policy: " + err.Error())
	}
	return p
}

// DefaultOptions is full fidelity, serial.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1, Workers: 1} }

// TestOptions is the fast configuration for unit tests.
func TestOptions() Options { return Options{Scale: 8, Seed: 1, Workers: 1} }

func (o Options) normalize() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.ShardWorkers < 1 {
		o.ShardWorkers = 1
	}
	return o
}

// scaled shrinks a workload spec by the scale factor, keeping every ratio
// intact.
func (o Options) scaled(s workload.Spec) workload.Spec {
	if o.Scale <= 1 {
		return s
	}
	s.FootprintPages /= o.Scale
	if s.FootprintPages < 64 {
		s.FootprintPages = 64
	}
	s.MainAccesses /= o.Scale
	if s.MainAccesses < 256 {
		s.MainAccesses = 256
	}
	if s.SegmentLen > s.FootprintPages {
		s.SegmentLen = s.FootprintPages
	}
	return s
}

// Runner produces one experiment's tables.
type Runner func(Options) []Table

// registry maps experiment ids to runners, filled by init functions in the
// per-experiment files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id (ok=false if unknown).
func Run(id string, o Options) (tables []Table, ok bool) {
	r, ok := registry[id]
	if !ok {
		return nil, false
	}
	return r(o.normalize()), true
}

// RunAll executes every registered experiment in id order.
func RunAll(o Options) []Table {
	var out []Table
	for _, id := range IDs() {
		ts, _ := Run(id, o)
		out = append(out, ts...)
	}
	return out
}

// --- shared run helpers ---

// testbed builds the paper's single-node testbed: two 10-core CPUs, SSD,
// RDMA, DRAM and disk backends on a PCIe 3.0 x16 host (Table IV era).
func testbed(eng *sim.Engine) baseline.Env {
	m := vm.NewMachine(eng, pcie.Gen3, 16, 20, 64*workload.PagesPerGiB)
	m.AttachDevice(device.SpecTestbedSSD("ssd"))
	m.AttachDevice(device.SpecConnectX5("rdma"))
	m.AttachDevice(device.SpecRemoteDRAM("dram"))
	m.AttachDevice(device.SpecDiskArray("disk"))
	return baseline.Env{Machine: m, FileBackend: "ssd"}
}

// runTask executes cfg to completion and returns its stats.
func runTask(eng *sim.Engine, cfg task.Config) task.Stats {
	var out task.Stats
	done := false
	task.New(cfg).Start(func(s task.Stats) { out = s; done = true })
	eng.Run()
	if !done {
		panic("experiments: task did not finish")
	}
	return out
}

// ratio formats a speedup/ratio cell.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// f2 formats a 2-decimal cell.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// us formats a duration cell in microseconds.
func us(d sim.Duration) string { return fmt.Sprintf("%.2fµs", d.Microseconds()) }

// ms formats a duration cell in milliseconds.
func ms(d sim.Duration) string { return fmt.Sprintf("%.2fms", d.Milliseconds()) }

// RenderMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n_%s_\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (one file section per table when
// concatenated; the first cell of the header row carries the table id).
func (t *Table) RenderCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	header := append([]string{"#" + t.ID}, t.Columns...)
	_ = cw.Write(header)
	for _, row := range t.Rows {
		_ = cw.Write(append([]string{""}, row...))
	}
	cw.Flush()
}
