package experiments

import (
	"math"
	"strings"
	"testing"
)

// Fig17's rendered table: one row per co-located pair, latencies in µs for
// all three isolation schemes, and the speedup cell consistent with the
// rendered shared and vm-isolated latencies (the spot-checked value).
func TestFig17Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig 17 co-location grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig17(o)
	if len(tbs) != 1 {
		t.Fatalf("Fig17 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"pair", "shared swap", "isolated swap", "vm-isolated swap", "shared/vm speedup"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	if len(tb.Rows) != len(fig17Pairs) {
		t.Fatalf("%d rows, want %d pairs", len(tb.Rows), len(fig17Pairs))
	}
	us := func(s string) float64 { return parseRatio(t, strings.TrimSuffix(s, "µs")) }
	for i, row := range tb.Rows {
		if want := fig17Pairs[i][0] + "+" + fig17Pairs[i][1]; row[0] != want {
			t.Fatalf("row %d is %q, want %q", i, row[0], want)
		}
		shared, iso, vmIso := us(row[1]), us(row[2]), us(row[3])
		for _, v := range []float64{shared, iso, vmIso} {
			if v <= 0 {
				t.Errorf("%s: non-positive latency in %v", row[0], row)
			}
		}
		// Spot check: the speedup column is shared/vm-isolated, re-derivable
		// from the rendered cells up to their 2-decimal rounding.
		sp := parseRatio(t, row[4])
		if recomputed := shared / vmIso; math.Abs(recomputed-sp) > 0.05 {
			t.Errorf("%s: speedup %.2f inconsistent with %.2fµs/%.2fµs", row[0], sp, shared, vmIso)
		}
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "mean vm-isolated speedup") {
			found = true
		}
	}
	if !found {
		t.Error("mean speedup note missing")
	}
}
