package experiments

import (
	"testing"

	"repro/internal/workload"
)

// Fig14's rendered table: one column per compared system in Table IV order,
// one row per workload, everything normalized so the tmo column is exactly
// 1.00 (the spot-checked anchor value).
func TestFig14Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Fig 14 grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig14(o)
	if len(tbs) != 1 {
		t.Fatalf("Fig14 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "linux-swap", "tmo", "fastswap", "xmempod",
		"xdm-ssd", "xdm-rdma", "xdm-hetero"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("columns %v, want %v", tb.Columns, wantCols)
	}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	if want := len(workload.Specs()); len(tb.Rows) != want {
		t.Fatalf("%d rows, want %d (one per workload)", len(tb.Rows), want)
	}
	for _, row := range tb.Rows {
		if v := cell(t, tb, row[0], "tmo"); v != "1.00" {
			t.Errorf("%s: tmo normalization anchor = %q, want 1.00", row[0], v)
		}
		for i, c := range row[1:] {
			if v := parseRatio(t, c); v <= 0 {
				t.Errorf("%s/%s: throughput ratio %q not positive", row[0], wantCols[i+1], c)
			}
		}
	}
}

// Table7's rendered table: three backend sets with parseable bandwidth and
// utilization cells; the single-backend row must not saturate PCIe (the
// table's whole point), and its spare fabric shows as lower root-complex
// utilization than the 4x sets.
func TestTable7Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Table VII bulk transfers")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Table7(o)
	if len(tbs) != 1 {
		t.Fatalf("Table7 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"backend set", "device R/W GB/s (max)", "slot util", "root-complex util", "PCIe full?"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	wantRows := []string{"4x RDMA (xDM-RDMA)", "4x SSD (xDM-SSD)", "1x RDMA (single-backend)"}
	if len(tb.Rows) != len(wantRows) {
		t.Fatalf("%d rows, want %d", len(tb.Rows), len(wantRows))
	}
	for i, name := range wantRows {
		row := tb.Rows[i]
		if row[0] != name {
			t.Fatalf("row %d is %q, want %q", i, row[0], name)
		}
		if bw := parseRatio(t, row[1]); bw <= 0 || bw > 64 {
			t.Errorf("%s: device bandwidth %q implausible", name, row[1])
		}
		for _, u := range []string{row[2], row[3]} {
			if v := parseRatio(t, u); v < 0 || v > 100.5 {
				t.Errorf("%s: utilization %q outside [0,100]%%", name, u)
			}
		}
		if row[4] != "full" && row[4] != "no" {
			t.Errorf("%s: PCIe full? = %q", name, row[4])
		}
	}
	// Spot check: one ConnectX-5 cannot fill a Gen3 x16 root complex.
	if got := cell(t, tb, "1x RDMA (single-backend)", "PCIe full?"); got != "no" {
		t.Errorf("single backend reported as saturating PCIe (%q)", got)
	}
	single := parseRatio(t, cell(t, tb, "1x RDMA (single-backend)", "root-complex util"))
	quad := parseRatio(t, cell(t, tb, "4x RDMA (xDM-RDMA)", "root-complex util"))
	if single >= quad {
		t.Errorf("single-backend root util %.1f%% not below 4x RDMA %.1f%%", single, quad)
	}
}
