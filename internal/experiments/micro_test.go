package experiments

import (
	"testing"

	"repro/internal/device"
	"repro/internal/pcie"
)

// Fig3 is fully static (no simulation): exact header, one row per PCIe
// generation, and the Gen4 x16 cell matching the fabric model directly (the
// spot-checked value).
func TestFig3Render(t *testing.T) {
	tbs := Fig3(Options{})
	if len(tbs) != 1 {
		t.Fatalf("Fig3 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"generation", "year", "GT/s/lane", "x16 GB/s", "x16 duplex GB/s"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	gens := []pcie.Generation{pcie.Gen1, pcie.Gen2, pcie.Gen3, pcie.Gen4, pcie.Gen5, pcie.Gen6}
	if len(tb.Rows) != len(gens) {
		t.Fatalf("%d rows, want %d generations", len(tb.Rows), len(gens))
	}
	for i, g := range gens {
		if tb.Rows[i][0] != g.String() {
			t.Fatalf("row %d is %q, want %q", i, tb.Rows[i][0], g.String())
		}
	}
	if got, want := cell(t, tb, pcie.Gen4.String(), "x16 GB/s"), f2(pcie.Gen4.SlotBandwidth(16).GB()); got != want {
		t.Errorf("Gen4 x16 bandwidth cell %q, want %q", got, want)
	}
	// The duplex column is exactly double the simplex slot bandwidth.
	for _, g := range gens {
		slot := parseRatio(t, cell(t, tb, g.String(), "x16 GB/s"))
		duplex := parseRatio(t, cell(t, tb, g.String(), "x16 duplex GB/s"))
		if duplex < 1.99*slot || duplex > 2.01*slot {
			t.Errorf("%s: duplex %.2f not double of %.2f", g.String(), duplex, slot)
		}
	}
}

// Header and row-shape assertions for the simulated micro figures (their
// values are covered by TestFig1bShape, TestFig2bOrdering,
// TestFig4MultiPathWins, and TestFig5aCrossover).
func TestMicroHeaders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four micro benchmarks")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	cases := []struct {
		id   string
		cols []string
		rows int
	}{
		{"fig1b", []string{"device", "kind", "spec GB/s", "measured GB/s", "PCIe 4.0 x16 share"},
			len(device.Catalog())},
		{"fig2b", []string{"backend", "pages", "total", "mean/page", "max/page"}, 4},
		{"fig4", []string{"configuration", "mean swap-in latency", "normalized", "speedup"}, 2},
		{"fig5a", []string{"unit size", "contiguous (frag .001)", "moderate (frag .03)", "fragmented (frag .2)"}, 6},
	}
	for _, tc := range cases {
		tbs, ok := Run(tc.id, o)
		if !ok || len(tbs) != 1 {
			t.Fatalf("%s: expected exactly one table", tc.id)
		}
		tb := tbs[0]
		if len(tb.Columns) != len(tc.cols) {
			t.Fatalf("%s: columns %v, want %v", tc.id, tb.Columns, tc.cols)
		}
		for i, c := range tc.cols {
			if tb.Columns[i] != c {
				t.Errorf("%s: column %d = %q, want %q", tc.id, i, tb.Columns[i], c)
			}
		}
		if len(tb.Rows) != tc.rows {
			t.Errorf("%s: %d rows, want %d", tc.id, len(tb.Rows), tc.rows)
		}
		for ri, row := range tb.Rows {
			if len(row) != len(tc.cols) {
				t.Errorf("%s: row %d has %d cells, want %d", tc.id, ri, len(row), len(tc.cols))
			}
		}
	}
}
