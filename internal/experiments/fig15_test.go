package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// Fig15's rendered output: one table per SLO level, each with the same
// header and one row per highlighted workload; offload ratios are
// percentages in [0,100], the measured slowdown parses as a positive
// factor, and the within-SLO verdict is consistent with the rendered
// slowdown (the spot-checked value).
func TestFig15Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Fig 15 grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig15(o)
	if len(tbs) != len(fig15SLOs) {
		t.Fatalf("Fig15 produced %d tables, want one per SLO (%d)", len(tbs), len(fig15SLOs))
	}
	wantCols := []string{"workload", "baseline offload", "xDM offload",
		"xDM measured slowdown", "within SLO"}
	for ti, tb := range tbs {
		slo := fig15SLOs[ti]
		if want := fmt.Sprintf("SLO %.1f", slo); !strings.Contains(tb.Title, want) {
			t.Fatalf("table %d title %q does not name %s", ti, tb.Title, want)
		}
		for i, c := range wantCols {
			if tb.Columns[i] != c {
				t.Fatalf("table %d column %d = %q, want %q", ti, i, tb.Columns[i], c)
			}
		}
		if len(tb.Rows) != len(fig15Workloads) {
			t.Fatalf("table %d has %d rows, want %d", ti, len(tb.Rows), len(fig15Workloads))
		}
		for i, row := range tb.Rows {
			if row[0] != fig15Workloads[i] {
				t.Fatalf("table %d row %d is %q, want %q", ti, i, row[0], fig15Workloads[i])
			}
			for _, c := range []string{row[1], row[2]} {
				if v := parseRatio(t, c); v < 0 || v > 100 {
					t.Errorf("SLO %.1f %s: offload %q outside [0,100]%%", slo, row[0], c)
				}
			}
			slowdown := parseRatio(t, row[3])
			if slowdown <= 0 {
				t.Errorf("SLO %.1f %s: slowdown %q not positive", slo, row[0], row[3])
			}
			// The verdict is derived from the slowdown with a 5% grace band;
			// stay clear of the boundary so rounding cannot flip it.
			switch {
			case slowdown <= slo*1.04 && row[4] != "yes":
				t.Errorf("SLO %.1f %s: slowdown %.2f within SLO but verdict %q", slo, row[0], slowdown, row[4])
			case slowdown > slo*1.06 && row[4] != "NO":
				t.Errorf("SLO %.1f %s: slowdown %.2f over SLO but verdict %q", slo, row[0], slowdown, row[4])
			}
		}
	}
}

// Fig16's rendered table: one column per SLO, one row per friendly-share
// mix, all throughput ratios positive.
func TestFig16Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig 16 throughput grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig16(o)
	if len(tbs) != 1 {
		t.Fatalf("Fig16 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	if tb.Columns[0] != "friendly share" || len(tb.Columns) != 1+len(fig15SLOs) {
		t.Fatalf("columns %v, want friendly share + one per SLO", tb.Columns)
	}
	if len(tb.Rows) != len(fig16Mixes) {
		t.Fatalf("%d rows, want %d mixes", len(tb.Rows), len(fig16Mixes))
	}
	for _, row := range tb.Rows {
		for i, c := range row[1:] {
			if v := parseRatio(t, c); v <= 0 {
				t.Errorf("mix %s %s: normalized throughput %q not positive", row[0], tb.Columns[i+1], c)
			}
		}
	}
}
