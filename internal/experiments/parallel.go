package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The parallel experiment harness. Every experiment is a grid of fully
// independent simulation runs — each cell constructs its own sim.Engine and
// owns all its mutable state — so cells can execute on a worker pool while
// the assembled output stays byte-identical for any worker count:
// parallelism across runs, never inside one.

// DefaultWorkers is the worker count the CLIs use unless told otherwise.
func DefaultWorkers() int { return runtime.NumCPU() }

// gridCellNanos accumulates wall-clock spent inside grid cells, across all
// experiments since the last reset. Dividing it by elapsed wall time gives
// the realized parallel speedup the CLIs report.
var gridCellNanos atomic.Int64

// GridCellTime reports cumulative wall-clock spent inside grid cells since
// the last ResetGridCellTime — the serial-equivalent cost of the work done.
func GridCellTime() time.Duration { return time.Duration(gridCellNanos.Load()) }

// ResetGridCellTime zeroes the grid cell-time accumulator.
func ResetGridCellTime() { gridCellNanos.Store(0) }

// gridPanic carries a cell panic (plus its origin) back to the caller.
type gridPanic struct {
	cell int
	val  any
}

// runGrid evaluates fn(i) for every i in [0, n) and returns the results in
// index order. With o.Workers > 1 cells run concurrently on a fixed worker
// pool; results are assembled by index, so downstream rendering is
// independent of scheduling order. A panic inside a cell is re-raised on the
// caller with the cell index attached.
func runGrid[T any](o Options, n int, fn func(i int) T) []T {
	out := make([]T, n)
	timed := func(i int) {
		start := time.Now()
		out[i] = fn(i)
		gridCellNanos.Add(int64(time.Since(start)))
	}
	workers := o.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			timed(i)
		}
		return out
	}
	var next atomic.Int64
	var caught atomic.Pointer[gridPanic]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || caught.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							caught.CompareAndSwap(nil, &gridPanic{cell: i, val: r})
						}
					}()
					timed(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := caught.Load(); p != nil {
		panic(fmt.Sprintf("experiments: grid cell %d panicked: %v", p.cell, p.val))
	}
	return out
}

// runGrid2 is runGrid over a 2-D grid, returned as rows[i][j] for i in
// [0, rows), j in [0, cols). Cells are scheduled row-major.
func runGrid2[T any](o Options, rows, cols int, fn func(i, j int) T) [][]T {
	flat := runGrid(o, rows*cols, func(k int) T { return fn(k/cols, k%cols) })
	out := make([][]T, rows)
	for i := range out {
		out[i] = flat[i*cols : (i+1)*cols]
	}
	return out
}
