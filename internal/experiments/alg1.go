package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("alg1", Algorithm1)
}

// Algorithm1 exercises the paper's end-to-end workflow (Algorithm 1) under
// an arrival stream: page feature extraction → MEI backend selection →
// parameter optimization → VM placement with warm-start preference →
// execution. Compared with and without a pre-booted warm pool.
func Algorithm1(o Options) []Table {
	templates := []cluster.App{
		{Spec: o.scaled(workload.ByName("lg-bfs")), SLO: 1.5, Cores: 1},
		{Spec: o.scaled(workload.ByName("bert")), SLO: 1.5, Cores: 1},
		{Spec: o.scaled(workload.ByName("gg-bfs")), SLO: 1.5, Cores: 1},
		{Spec: o.scaled(workload.ByName("tf-infer")), SLO: 1.5, Cores: 1},
	}
	arrivals := 32 / o.Scale
	if arrivals < 8 {
		arrivals = 8
	}

	run := func(warm bool) cluster.ArrivalSimResult {
		eng := sim.NewEngine()
		env := testbed(eng)
		if warm {
			cluster.WarmFleet(env, 4, 16*workload.PagesPerGiB)
		}
		return cluster.RunArrivalSim(env, cluster.ArrivalSimConfig{
			Templates:        templates,
			Arrivals:         arrivals,
			MeanInterarrival: 1 * sim.Millisecond,
			Seed:             o.Seed,
			Policy:           o.placementPolicy(),
		})
	}

	t := Table{
		ID:    "alg1",
		Title: "Algorithm 1 under an arrival stream: warm pool vs cold fleet",
		Columns: []string{"fleet", "completed", "online-vm", "free-vm", "switched", "created",
			"rejected", "mean placement delay", "backend switches"},
	}
	labels := []string{"warm pool", "cold"}
	results := runGrid(o, len(labels), func(i int) cluster.ArrivalSimResult {
		return run(i == 0)
	})
	for i, label := range labels {
		r := results[i]
		t.AddRow(label, fmt.Sprint(r.Completed),
			fmt.Sprint(r.Placed[cluster.ViaOnlineVM]), fmt.Sprint(r.Placed[cluster.ViaFreeVM]),
			fmt.Sprint(r.Placed[cluster.ViaSwitch]), fmt.Sprint(r.Placed[cluster.ViaCreate]),
			fmt.Sprint(r.Rejected), r.MeanPlacementDelay.String(), fmt.Sprint(r.Switches))
	}
	t.Notes = append(t.Notes,
		"the warm pool absorbs arrivals via online/free VMs and sub-5s switches; a cold fleet pays VM boots on the critical path")
	return []Table{t}
}
