package experiments

import (
	"repro/internal/baseline"
	"repro/internal/datacenter"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/workload"
)

func init() {
	register("internode", InterNode)
}

// InterNode closes the loop on the scalability story: instead of the MBE
// arithmetic, a memory-pressured node actually runs its workloads while
// borrowing an idle peer's DRAM over the cluster network, and the table
// compares that against squeezing onto the node-local SSD. This is the
// inter-node far memory of the paper's related-work substrate
// (Infiniswap/Fastswap-style remote DRAM) inside the multi-backend system.
func InterNode(o Options) []Table {
	t := Table{
		ID:    "internode",
		Title: "Inter-node far memory: borrow a peer's DRAM vs local-SSD squeeze",
		Columns: []string{"workload", "local-SSD runtime", "remote-DRAM runtime", "speedup",
			"borrower util", "donor util (after lend)"},
	}
	names := []string{"lg-bfs", "bert", "kmeans"}
	type internodeRow struct {
		ssdRT, rdmaRT sim.Duration
		bu, du        float64
	}
	rows := runGrid(o, len(names), func(i int) internodeRow {
		spec := o.scaled(workload.ByName(names[i]))

		run := func(remote bool) (sim.Duration, float64, float64) {
			eng := sim.NewEngine()
			c := datacenter.New(eng, datacenter.Config{
				Nodes: 2, CoresPerNode: 20,
				PagesPerNode: spec.FootprintPages * 2,
			})
			borrower, donor := c.Node(0), c.Node(1)
			// The borrower is memory-pressured: most of its DRAM is held by
			// resident tenants, leaving half this workload's footprint.
			if err := borrower.Reserve(spec.FootprintPages*2 - spec.FootprintPages/2); err != nil {
				panic(err)
			}
			env := baseline.Env{Machine: borrower.Machine, FileBackend: "ssd"}

			var setup baseline.XDMSetup
			if remote {
				rm, err := c.Lend(donor, borrower, spec.FootprintPages)
				if err != nil {
					panic(err)
				}
				setup = baseline.PrepareXDM(env, rm, spec, 0.5, 1.4, o.Seed)
			} else {
				setup = baseline.PrepareXDM(env, borrower.Machine.Backend("ssd"), spec, 0.5, 1.4, o.Seed)
			}
			var stats task.Stats
			task.New(setup.Config).Start(func(s task.Stats) { stats = s })
			eng.Run()
			return stats.Runtime, borrower.MemUtilization(), donor.MemUtilization()
		}

		ssdRT, _, _ := run(false)
		rdmaRT, bu, du := run(true)
		return internodeRow{ssdRT: ssdRT, rdmaRT: rdmaRT, bu: bu, du: du}
	})
	for i, name := range names {
		r := rows[i]
		t.AddRow(name, ms(r.ssdRT), ms(r.rdmaRT), ratio(float64(r.ssdRT)/float64(r.rdmaRT)),
			pct(r.bu), pct(r.du))
	}
	t.Notes = append(t.Notes,
		"borrowing idle remote DRAM turns a hot node's SSD-bound swap into rack-speed far memory — the task-level mechanism behind Fig 19's balancing; see fig19-sim for the cluster-scale effect")
	return []Table{t}
}
