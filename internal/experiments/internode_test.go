package experiments

import (
	"strings"
	"testing"
)

func TestInterNodeExperiment(t *testing.T) {
	ts, ok := Run("internode", TestOptions())
	if !ok {
		t.Fatal("missing")
	}
	if len(ts[0].Rows) != 3 {
		t.Fatal("want 3 workloads")
	}
	for _, row := range ts[0].Rows {
		sp := parseRatio(t, row[3])
		if sp <= 1.0 {
			t.Errorf("%s: remote DRAM (%v) should beat the SSD squeeze", row[0], row[3])
		}
		if !strings.HasSuffix(row[4], "%") || !strings.HasSuffix(row[5], "%") {
			t.Errorf("%s: utilization cells malformed: %v %v", row[0], row[4], row[5])
		}
	}
}
