package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/workload"
)

func init() {
	register("tab1", Table1and2)
	register("tab5", Table5)
}

// Table1and2 renders the paper's positioning tables: which systems support
// which backends and paths (Table I) and which tuning knobs (Table II),
// with each capability cross-referenced to the module implementing it here.
func Table1and2(Options) []Table {
	t1 := Table{
		ID:      "tab1",
		Title:   "Single-path vs multi-path far memory systems (Table I)",
		Columns: []string{"system", "to block device", "to RDMA", "hybrid", "multi-path", "implemented by"},
	}
	t1.AddRow("linux-zswap/swap", "y", "-", "-", "-", "baseline.LinuxSwap (hierarchical, shared)")
	t1.AddRow("fastswap", "-", "y", "-", "-", "baseline.Fastswap")
	t1.AddRow("tmo", "y", "-", "y", "-", "baseline.TMO")
	t1.AddRow("xmempod", "y", "y", "y", "-", "baseline.XMemPod (dram+rdma aggregate)")
	t1.AddRow("pond", "y", "-", "-", "-", "(CXL-as-NUMA analogue: experiments.CXLModes)")
	t1.AddRow("xdm (this repo)", "y", "y", "y", "y", "swap.AggregateBackend + vm switchable paths")

	t2 := Table{
		ID:      "tab2",
		Title:   "Far-memory configuration knobs (Table II)",
		Columns: []string{"system", "data ratio on FM", "ratio on NUMA", "granularity", "I/O width"},
	}
	t2.AddRow("linux-zswap/swap", "y", "-", "-", "-")
	t2.AddRow("fastswap", "y", "-", "-", "-")
	t2.AddRow("tmo", "y", "-", "-", "-")
	t2.AddRow("xmempod", "y", "-", "-", "-")
	t2.AddRow("pond", "y", "y", "-", "-")
	t2.AddRow("xdm (this repo)", "y", "y", "y", "y")
	t2.Notes = append(t2.Notes,
		"xDM's four knobs map to task.Config.LocalRatio, mem.NUMAPolicy, task.SetGranularity, and Backend.SetWidth, all driven by core.Decide")
	return []Table{t1, t2}
}

// Table5 renders the evaluated workload inventory (Table V) with the
// offline-profiled trace features each generator produces.
func Table5(o Options) []Table {
	t := Table{
		ID:    "tab5",
		Title: "Evaluated workloads (Table V) and their profiled trace features",
		Columns: []string{"abbr", "class", "description", "max mem", "threads",
			"anon", "seq", "hot", "frag"},
	}
	for _, spec := range workload.Specs() {
		s := o.scaled(spec)
		f := baseline.Profile(s, o.Seed)
		t.AddRow(s.Name, string(s.Class), s.Description,
			fmt.Sprintf("%.3gG", s.MaxMemGiB), fmt.Sprint(s.Threads),
			f2(f.AnonRatio), f2(f.SeqRatio), f2(f.HotRatio),
			fmt.Sprintf("%.4f", f.FragmentRatio))
	}
	t.Notes = append(t.Notes,
		"footprints are scaled 1:256 from Table V's byte sizes (workload.PagesPerGiB); every policy input is a ratio, so the scale cancels")
	return []Table{t}
}
