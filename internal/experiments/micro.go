package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/units"
)

func init() {
	register("fig1b", Fig1b)
	register("fig2b", Fig2b)
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("fig5a", Fig5a)
}

// Fig1b reproduces Fig 1(b): bandwidth of commercial far-memory
// technologies, measured by streaming a bulk transfer through each device
// model and comparing against the fabric budget.
func Fig1b(o Options) []Table {
	t := Table{
		ID:      "fig1b",
		Title:   "Bandwidth comparison of far memory technologies (Fig 1b)",
		Columns: []string{"device", "kind", "spec GB/s", "measured GB/s", "PCIe 4.0 x16 share"},
	}
	budget := pcie.Gen4.DuplexBandwidth(16).GB()
	const totalBytes = 8 << 30
	catalog := device.Catalog()
	measured := runGrid(o, len(catalog), func(i int) float64 {
		eng := sim.NewEngine()
		h := device.NewHost(eng, pcie.Gen5, 16) // roomy fabric: measure the device
		d := h.Attach(catalog[i])
		const chunk = 8 * units.MiB
		for off := int64(0); off < totalBytes/int64(o.Scale); off += chunk {
			d.Submit(device.Op{Size: chunk, Sequential: true}, nil)
		}
		eng.Run()
		return d.TotalBytes() / eng.Now().Seconds() / 1e9
	})
	for i, spec := range catalog {
		t.AddRow(spec.Name, spec.Kind.String(), f2(spec.Bandwidth.GB()), f2(measured[i]),
			pct(measured[i]/budget))
	}
	t.Notes = append(t.Notes,
		"no single device saturates the 64 GB/s PCIe 4.0 x16 fabric — the multi-backend motivation")
	return []Table{t}
}

// Fig2b reproduces Fig 2(b): access latency of different far-memory
// backends transferring 64 MB at 4 KB page granularity.
func Fig2b(o Options) []Table {
	t := Table{
		ID:      "fig2b",
		Title:   "64MB @ 4KB-page access latency per far-memory backend (Fig 2b)",
		Columns: []string{"backend", "pages", "total", "mean/page", "max/page"},
	}
	specs := []device.Spec{
		device.SpecRemoteDRAM("dram"),
		device.SpecConnectX5("rdma"),
		device.SpecTestbedSSD("ssd"),
		device.SpecHDD("hdd"),
	}
	pages := int(64 * units.MiB / units.PageSize / int64(o.Scale))
	for _, row := range runGrid(o, len(specs), func(i int) []string {
		spec := specs[i]
		eng := sim.NewEngine()
		h := device.NewHost(eng, pcie.Gen4, 16)
		be := swap.NewDeviceBackend(eng, h.Attach(spec))
		path := swap.NewPath(eng, be, swap.NewChannel(eng, spec.Name, 4))
		// Closed loop, as the paper measures: one page access at a time.
		remaining := pages
		var next func(sim.Duration)
		next = func(sim.Duration) {
			if remaining == 0 {
				return
			}
			remaining--
			path.SwapIn(swap.Extent{Pages: 1, Sequential: true}, next)
		}
		next(0)
		eng.Run()
		return []string{spec.Name, fmt.Sprint(pages), ms(sim.Duration(eng.Now())),
			us(sim.Duration(float64(sim.Microsecond) * path.InLatency.Mean())),
			us(sim.Duration(float64(sim.Microsecond) * path.InLatency.Max()))}
	}) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "latency spans orders of magnitude across backends (dram < rdma < ssd < hdd)")
	return []Table{t}
}

// Fig3 reproduces Fig 3: the PCIe bandwidth trend, doubling roughly every
// three years.
func Fig3(Options) []Table {
	t := Table{
		ID:      "fig3",
		Title:   "I/O bandwidth trend across PCIe generations (Fig 3)",
		Columns: []string{"generation", "year", "GT/s/lane", "x16 GB/s", "x16 duplex GB/s"},
	}
	for _, g := range []pcie.Generation{pcie.Gen1, pcie.Gen2, pcie.Gen3, pcie.Gen4, pcie.Gen5, pcie.Gen6} {
		t.AddRow(g.String(), fmt.Sprint(g.Year()), f2(g.GTps()),
			f2(g.SlotBandwidth(16).GB()), f2(g.DuplexBandwidth(16).GB()))
	}
	return []Table{t}
}

// Fig4 reproduces Fig 4: normalized data transfer latency of the single
// shared hierarchical far-memory path versus multiple direct-connected
// isolated paths, under co-location.
func Fig4(o Options) []Table {
	t := Table{
		ID:      "fig4",
		Title:   "Single shared hierarchical path vs multiple isolated bypass paths (Fig 4)",
		Columns: []string{"configuration", "mean swap-in latency", "normalized", "speedup"},
	}
	pages := 4096 / o.Scale
	const tenants = 4
	measure := func(multi bool) sim.Duration {
		eng := sim.NewEngine()
		env := testbed(eng)
		paths := make([]*swap.Path, tenants)
		for i := range paths {
			if multi {
				// Each tenant gets a direct-connected device of its own and
				// an isolated channel (Fig 4b).
				dev := env.Machine.AttachDevice(device.SpecConnectX5(fmt.Sprintf("rdma-iso%d", i)))
				_ = dev
				paths[i] = swap.NewPath(eng, env.Machine.Backend(fmt.Sprintf("rdma-iso%d", i)),
					swap.NewChannel(eng, fmt.Sprintf("iso%d", i), 4))
			} else {
				// All tenants share the single hierarchical path (Fig 4a).
				paths[i] = env.Machine.SharedPath("rdma")
			}
		}
		// Closed loop per tenant: one in-flight page op each, like a
		// faulting task.
		for i := range paths {
			p := paths[i]
			remaining := pages
			var next func(sim.Duration)
			next = func(sim.Duration) {
				if remaining == 0 {
					return
				}
				remaining--
				p.SwapIn(swap.Extent{Pages: 1, Sequential: remaining%4 != 0}, next)
			}
			next(0)
		}
		eng.Run()
		var sum float64
		var n uint64
		for _, p := range paths {
			sum += p.InLatency.Mean() * float64(p.InLatency.Count())
			n += p.InLatency.Count()
		}
		return sim.Duration(float64(sim.Microsecond) * sum / float64(n))
	}
	both := runGrid(o, 2, func(i int) sim.Duration { return measure(i == 1) })
	shared, multi := both[0], both[1]
	t.AddRow("single shared hierarchical path", us(shared), f2(1.0), ratio(1.0))
	t.AddRow("multiple isolated bypass paths", us(multi),
		f2(float64(multi)/float64(shared)), ratio(float64(shared)/float64(multi)))
	t.Notes = append(t.Notes, "isolated host-bypass paths remove the host hop and the shared-channel contention")
	return []Table{t}
}

// Fig5a reproduces Fig 5(a): end-to-end latency of loading a fixed dataset
// from RDMA at different data-unit sizes, for address spaces of different
// fragment ratios.
func Fig5a(o Options) []Table {
	t := Table{
		ID:      "fig5a",
		Title:   "Load latency vs data granularity on RDMA (Fig 5a)",
		Columns: []string{"unit size", "contiguous (frag .001)", "moderate (frag .03)", "fragmented (frag .2)"},
	}
	totalPages := 8192 / o.Scale
	fragments := []float64{0.001, 0.03, 0.2}
	units_ := []int{1, 4, 16, 64, 256, 1024}

	results := runGrid2(o, len(units_), len(fragments), func(i, j int) sim.Duration {
		unit, frag := units_[i], fragments[j]
		eng := sim.NewEngine()
		env := testbed(eng)
		p := swap.NewPath(eng, env.Machine.Backend("rdma"), swap.NewChannel(eng, "ch", 4))
		// A fragmented dataset yields partially useful units: the
		// useful fraction of each unit shrinks with unit size, so more
		// units (and bytes) move to load the same data.
		segLen := 1 / frag
		usefulPerUnit := float64(unit)
		if float64(unit) > segLen {
			usefulPerUnit = segLen
		}
		unitsNeeded := int(float64(totalPages)/usefulPerUnit + 0.5)
		for k := 0; k < unitsNeeded; k++ {
			p.SwapIn(swap.Extent{Pages: unit, Sequential: frag < 0.01}, nil)
		}
		eng.Run()
		return sim.Duration(eng.Now())
	})
	for i, unit := range units_ {
		r := results[i]
		t.AddRow(units.HumanBytes(int64(unit)*units.PageSize), ms(r[0]), ms(r[1]), ms(r[2]))
	}
	t.Notes = append(t.Notes,
		"larger units amortize per-op latency for contiguous data but amplify I/O for fragmented data — the optimal granularity depends on the fragment ratio")
	return []Table{t}
}
