package experiments

import "testing"

// The paper's headline capability: the dynamic swapper must track phase
// changes with warm switches, beating the mismatched static choice.
func TestDynamicSwitchingCapability(t *testing.T) {
	ts, ok := Run("dynamic", Options{Scale: 8, Seed: 1})
	if !ok {
		t.Fatal("missing")
	}
	rows := ts[0].Rows
	var ssd, rdma, dyn []string
	for _, r := range rows {
		switch r[0] {
		case "static-ssd":
			ssd = r
		case "static-rdma":
			rdma = r
		case "xdm-dynamic":
			dyn = r
		}
	}
	ssdRT := parseRatio(t, ssd[1][:len(ssd[1])-2])
	dynRT := parseRatio(t, dyn[1][:len(dyn[1])-2])
	rdmaRT := parseRatio(t, rdma[1][:len(rdma[1])-2])

	if dyn[5] == "0" {
		t.Fatal("no dynamic switches happened on a phase-changing workload")
	}
	if dynRT >= ssdRT {
		t.Fatalf("dynamic (%vms) should beat the mismatched static-ssd (%vms)", dynRT, ssdRT)
	}
	best := rdmaRT
	if ssdRT < best {
		best = ssdRT
	}
	if dynRT > 2.5*best {
		t.Fatalf("dynamic (%vms) too far from best static (%vms)", dynRT, best)
	}
	// Effectiveness: dynamic must beat the mismatched static.
	if parseRatio(t, dyn[4]) <= parseRatio(t, ssd[4]) {
		t.Fatalf("dynamic effectiveness %s not above static-ssd %s", dyn[4], ssd[4])
	}
}
