package experiments

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// Table6's rendered table: exact header, one row per workload in spec order,
// and internal consistency between the per-backend speedup cells, the
// average, and the derived S/F classification.
func TestTable6Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Table VI grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Table6(o)
	if len(tbs) != 1 {
		t.Fatalf("Table6 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "paper S/F", "Sp. DRAM", "Sp. SSD", "Sp. RDMA",
		"average", "classified"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("columns %v, want %v", tb.Columns, wantCols)
	}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	specs := workload.Specs()
	if len(tb.Rows) != len(specs) {
		t.Fatalf("%d rows, want one per workload (%d)", len(tb.Rows), len(specs))
	}
	for i, spec := range specs {
		row := tb.Rows[i]
		if row[0] != spec.Name {
			t.Fatalf("row %d is %q, want %q (spec order)", i, row[0], spec.Name)
		}
		if row[1] != string(spec.SwapFeature) {
			t.Errorf("%s: paper S/F = %q, want %q", spec.Name, row[1], string(spec.SwapFeature))
		}
		// Spot-check: the average cell is the mean of the three rendered
		// speedups, and the classification is derived from it.
		dram := parseRatio(t, row[2])
		ssd := parseRatio(t, row[3])
		rdma := parseRatio(t, row[4])
		avg := parseRatio(t, row[5])
		if mean := (dram + ssd + rdma) / 3; math.Abs(mean-avg) > 0.02 {
			t.Errorf("%s: average %.2f inconsistent with cells (%.2f %.2f %.2f)",
				spec.Name, avg, dram, ssd, rdma)
		}
		wantClass := "S"
		if avg >= 1.51 {
			wantClass = "F"
		} else if avg >= 1.49 {
			continue // too close to the threshold to pin through rounding
		}
		if row[6] != wantClass {
			t.Errorf("%s: classified %q with average %.2f, want %q", spec.Name, row[6], avg, wantClass)
		}
	}
	if len(tb.Notes) == 0 {
		t.Error("Table VI note about baselines missing")
	}
}
