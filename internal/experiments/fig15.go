package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("fig15", Fig15)
	register("fig16", Fig16)
}

// fig15SLOs are the permissible-slowdown levels swept (Fig 15/16).
var fig15SLOs = []float64{1.2, 1.4, 1.6, 1.8}

// fig15Workloads is the subset shown (the paper highlights the
// swap-friendly beneficiaries plus contrasting sensitive ones).
var fig15Workloads = []string{"clip", "gg-pre", "tf-tc", "bert", "sort", "tf-incep", "kmeans", "chat-int"}

// baselineOffload measures the offloading ratio the Fastswap baseline
// sustains at the same SLO on the same backend: the untuned hierarchical
// stack degrades faster under pressure, so the sustainable offload is
// smaller — exactly the Fig 15 gap.
func baselineOffload(spec workload.Spec, slo float64, seed int64) float64 {
	return baseline.CalibratedBaselineRatio(baseline.Fastswap, device.SpecConnectX5("rdma"),
		spec, slo, seed)
}

// Fig15 reproduces Fig 15: the memory offloading ratio (1 - local ratio)
// each system sustains under SLO constraints, and the measured slowdown of
// xDM's choice.
func Fig15(o Options) []Table {
	rows := runGrid2(o, len(fig15SLOs), len(fig15Workloads), func(i, j int) []string {
		slo := fig15SLOs[i]
		name := fig15Workloads[j]
		spec := o.scaled(workload.ByName(name))

		// Reference runtime: fully resident.
		engR := sim.NewEngine()
		envR := testbed(engR)
		ref := runTask(engR, baseline.PrepareXDM(envR, envR.Machine.Backend("rdma"), spec, 1.0, slo, o.Seed).Config)

		// xDM: console sizes local memory against the SLO.
		engX := sim.NewEngine()
		envX := testbed(engX)
		setup := baseline.PrepareXDM(envX, envX.Machine.Backend("rdma"), spec, -1, slo, o.Seed)
		stats := runTask(engX, setup.Config)
		slowdown := float64(stats.Runtime) / float64(ref.Runtime)

		base := baselineOffload(spec, slo, o.Seed)
		within := "yes"
		if slowdown > slo*1.05 {
			within = "NO"
		}
		return []string{name, pct(1 - base), pct(1 - setup.Config.LocalRatio),
			fmt.Sprintf("%.2fx", slowdown), within}
	})
	var tables []Table
	for i, slo := range fig15SLOs {
		t := Table{
			ID:    "fig15",
			Title: fmt.Sprintf("Memory offloading ratio under SLO %.1f (Fig 15)", slo),
			Columns: []string{"workload", "baseline offload", "xDM offload",
				"xDM measured slowdown", "within SLO"},
		}
		for _, row := range rows[i] {
			t.AddRow(row...)
		}
		t.Notes = append(t.Notes,
			"offload ratio = share of the footprint living in far memory; higher is better memory efficiency")
		tables = append(tables, t)
	}
	return tables
}

// fig16Mixes are the swap-friendly program proportions swept in Fig 16.
var fig16Mixes = []float64{0, 0.25, 0.5, 0.75, 1.0}

// fig16Friendly and fig16Sensitive are the two job archetypes mixed,
// equal-sized so admission effects are attributable to offloadability
// alone. The friendly archetype is an inference-style service (small hot
// set, compute between accesses: degrades slowly when offloaded); the
// sensitive archetype is a scan (every page needed: degrades immediately).
func fig16Friendly(o Options) workload.Spec {
	return o.scaled(workload.Spec{
		Name: "svc-friendly", Class: workload.AI, MaxMemGiB: 2,
		FootprintPages: 2048, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 512, SeqShare: 0.5, RunLen: 32,
		HotShare: 0.15, HotProb: 0.92, WriteFraction: 0.2,
		ComputePerAccess: 400 * sim.Nanosecond, MainAccesses: 10240,
		Threads: 4, SwapFeature: 'F',
	})
}

func fig16Sensitive(o Options) workload.Spec {
	return o.scaled(workload.Spec{
		Name: "scan-sensitive", Class: workload.Compute, MaxMemGiB: 2,
		FootprintPages: 2048, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 2048, SeqShare: 0.75, RunLen: 64,
		HotShare: 1, HotProb: 0, WriteFraction: 0.4,
		ComputePerAccess: 120 * sim.Nanosecond, MainAccesses: 10240,
		Threads: 2, SwapFeature: 'S',
	})
}

// Fig16Data runs the task-throughput grid and returns rows of
// [friendlyShare][sloIndex] = normalized throughput vs the no-far-memory
// baseline.
func Fig16Data(o Options, jobsN int) (norm [][]float64, slos []float64) {
	slos = fig15SLOs
	mkJobs := func(friendlyShare, slo float64) []cluster.App {
		jobs := make([]cluster.App, jobsN)
		for i := range jobs {
			spec := fig16Sensitive(o)
			if float64(i%4)/4.0 < friendlyShare {
				spec = fig16Friendly(o)
			}
			jobs[i] = cluster.App{Spec: spec, SLO: slo, Seed: int64(i), Cores: 1}
		}
		return jobs
	}
	serverPages := int(2.5 * float64(fig16Friendly(o).FootprintPages))
	serverCores := 16

	norm = runGrid2(o, len(fig16Mixes), len(slos), func(i, j int) float64 {
		share, slo := fig16Mixes[i], slos[j]

		// Baseline: no far memory.
		engB := sim.NewEngine()
		envB := clusterTestbed(engB)
		base := cluster.RunThroughput(envB, mkJobs(share, slo), cluster.FullMemory, serverPages, serverCores)

		engX := sim.NewEngine()
		envX := clusterTestbed(engX)
		far := cluster.RunThroughput(envX, mkJobs(share, slo), cluster.FarMemorySLO, serverPages, serverCores)
		if base.Throughput > 0 {
			return far.Throughput / base.Throughput
		}
		return 0
	})
	return norm, slos
}

// clusterTestbed is the multi-backend machine used for throughput runs.
func clusterTestbed(eng *sim.Engine) baseline.Env {
	env := testbed(eng)
	env.Machine.AttachDevice(device.SpecConnectX5("rdma2"))
	env.Machine.AttachDevice(device.SpecRemoteDRAM("dram2"))
	env.Machine.AttachDevice(device.SpecTestbedSSD("ssd2"))
	return env
}

// Fig16 reproduces Fig 16: overall task throughput versus the proportion of
// swap-friendly programs, for several SLOs, normalized to the
// no-far-memory baseline.
func Fig16(o Options) []Table {
	jobs := 24 / o.Scale
	if jobs < 8 {
		jobs = 8
	}
	norm, slos := Fig16Data(o, jobs)
	cols := []string{"friendly share"}
	for _, s := range slos {
		cols = append(cols, fmt.Sprintf("SLO %.1f", s))
	}
	t := Table{
		ID:      "fig16",
		Title:   "Task throughput vs swap-friendly proportion, normalized to no-far-memory (Fig 16)",
		Columns: cols,
	}
	for i, share := range fig16Mixes {
		row := []string{pct(share)}
		for _, v := range norm[i] {
			row = append(row, ratio(v))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"larger SLOs and more swap-friendly programs raise throughput: far memory admits more concurrent jobs per server")
	return []Table{t}
}
