package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/workload"
)

func init() {
	register("ablation", Ablations)
}

// ablationSpec is the workload used by most ablations: anonymous-heavy,
// mixed sequential/random, enough pressure to exercise every mechanism.
func ablationSpec(o Options) workload.Spec {
	return o.scaled(workload.ByName("lg-bc"))
}

// AblationBypass compares the full xDM configuration against the same
// configuration forced through the hierarchical host path. Returns the
// sys-time ratio (hierarchical / bypass).
func AblationBypass(o Options) float64 {
	run := func(hierarchical bool) sim.Duration {
		eng := sim.NewEngine()
		env := testbed(eng)
		setup := baseline.PrepareXDM(env, env.Machine.Backend("rdma"), ablationSpec(o), 0.5, 1.4, o.Seed)
		cfg := setup.Config
		if hierarchical {
			cfg.SwapPath = swap.NewHierarchicalPath(eng, env.Machine.Backend("rdma"),
				cfg.SwapPath.Channel(), env.Machine.HostStage())
		}
		return runTask(eng, cfg).SysTime
	}
	return float64(run(true)) / float64(run(false))
}

// AblationIsolation compares per-VM channels against a shared channel for
// two co-located xDM tasks. Returns the mean swap-in latency ratio
// (shared / isolated).
func AblationIsolation(o Options) float64 {
	run := func(shared bool) float64 {
		eng := sim.NewEngine()
		env := testbed(eng)
		sharedCh := swap.NewChannel(eng, "shared", 4)
		var paths []*swap.Path
		for i := 0; i < 2; i++ {
			setup := baseline.PrepareXDM(env, env.Machine.Backend("rdma"), ablationSpec(o), 0.5, 1.4, o.Seed+int64(i))
			cfg := setup.Config
			if shared {
				cfg.SwapPath = swap.NewPath(eng, env.Machine.Backend("rdma"), sharedCh)
			}
			paths = append(paths, cfg.SwapPath)
			task.New(cfg).Start(nil)
		}
		eng.Run()
		var sum float64
		var n uint64
		for _, p := range paths {
			sum += p.InLatency.Mean() * float64(p.InLatency.Count())
			n += p.InLatency.Count()
		}
		return sum / float64(n)
	}
	return run(true) / run(false)
}

// AblationMEI compares the console's MEI backend choice against the
// anti-choice (lowest MEI) for a workload pair, returning the runtime ratio
// (anti / MEI).
func AblationMEI(o Options) float64 {
	spec := ablationSpec(o)
	eng := sim.NewEngine()
	env := testbed(eng)
	opts := []core.BackendOption{
		baseline.OptionFor(env.Machine.Backend("ssd")),
		baseline.OptionFor(env.Machine.Backend("rdma")),
		baseline.OptionFor(env.Machine.Backend("dram")),
	}
	f := baseline.Profile(spec, o.Seed)
	priority, _ := core.SelectBackend(opts, f, spec.ComputePerAccess, 0.5)
	best, worst := priority[0], priority[len(priority)-1]

	measure := func(backend string) sim.Duration {
		eng := sim.NewEngine()
		env := testbed(eng)
		setup := baseline.PrepareXDM(env, env.Machine.Backend(backend), spec, 0.5, 1.4, o.Seed)
		return runTask(eng, setup.Config).Runtime
	}
	return float64(measure(worst)) / float64(measure(best))
}

// AblationKnob runs xDM with one console knob disabled and returns the
// sys-time ratio (disabled / full). Knobs: "granularity", "width",
// "adaptive".
func AblationKnob(o Options, knob string) float64 {
	run := func(disable string) sim.Duration {
		eng := sim.NewEngine()
		env := testbed(eng)
		setup := baseline.PrepareXDM(env, env.Machine.Backend("rdma"), ablationSpec(o), 0.5, 1.4, o.Seed)
		cfg := setup.Config
		switch disable {
		case "granularity":
			cfg.GranularityPages = 1
			cfg.OnEpoch = nil
		case "width":
			env.Machine.Backend("rdma").SetWidth(1)
			cfg.OnEpoch = nil
		case "adaptive":
			cfg.AdaptiveWindow = false
			cfg.AlignedReadahead = true
		}
		return runTask(eng, cfg).SysTime
	}
	return float64(run(knob)) / float64(run(""))
}

// AblationWarmStart compares Algorithm 1 placement latency with a
// pre-booted warm VM pool against an empty fleet (cold creates). Returns
// both times: warm placement is effectively instant, cold pays a VM boot.
func AblationWarmStart(o Options) (warm, cold sim.Duration) {
	measure := func(warm bool) sim.Duration {
		eng := sim.NewEngine()
		env := testbed(eng)
		if warm {
			for _, name := range env.Machine.BackendNames() {
				env.Machine.CreateVM("vm-"+name, 4, 8*workload.PagesPerGiB, []string{name}, nil)
			}
			eng.Run()
		}
		start := eng.Now()
		d := cluster.NewDispatcher(env)
		readyAt := sim.Time(-1)
		d.Dispatch(cluster.App{Spec: ablationSpec(o), SLO: 1.4, Seed: o.Seed, Cores: 1},
			func(cluster.Placement) { readyAt = eng.Now() })
		eng.Run()
		if readyAt < 0 {
			panic("ablation: dispatch never became ready")
		}
		return readyAt.Sub(start)
	}
	return measure(true), measure(false)
}

// Ablations renders the design-choice ablation study (DESIGN.md §4).
func Ablations(o Options) []Table {
	t := Table{
		ID:      "ablation",
		Title:   "Design-choice ablations: cost of removing each xDM mechanism",
		Columns: []string{"mechanism removed", "metric", "degradation"},
	}
	// Each row is an independent measurement (each builds its own engines),
	// so the study fans out over the worker pool as one grid.
	jobs := []struct {
		mech, metric string
		run          func() string
	}{
		{"host bypass (use hierarchical path)", "sys time",
			func() string { return ratio(AblationBypass(o)) }},
		{"channel isolation (share one channel)", "swap-in latency",
			func() string { return ratio(AblationIsolation(o)) }},
		{"MEI backend selection (use worst backend)", "runtime",
			func() string { return ratio(AblationMEI(o)) }},
		{"granularity tuning (fixed 4K)", "sys time",
			func() string { return ratio(AblationKnob(o, "granularity")) }},
		{"width tuning (single channel)", "sys time",
			func() string { return ratio(AblationKnob(o, "width")) }},
		{"adaptive fetch window (kernel-style cluster)", "sys time",
			func() string { return ratio(AblationKnob(o, "adaptive")) }},
		{"warm-start VM pool (cold creates)", "time-to-placement",
			func() string {
				warm, cold := AblationWarmStart(o)
				return fmt.Sprintf("%v -> %v", warm, cold)
			}},
	}
	for i, cell := range runGrid(o, len(jobs), func(i int) string { return jobs[i].run() }) {
		t.AddRow(jobs[i].mech, jobs[i].metric, cell)
	}
	t.Notes = append(t.Notes, "each row removes exactly one mechanism from the full system; >1.00x = the mechanism helps")
	return []Table{t}
}
