package experiments

import (
	"os"
	"testing"
)

func TestAblations(t *testing.T) {
	ts, ok := Run("ablation", TestOptions())
	if !ok {
		t.Fatal("missing")
	}
	ts[0].Render(os.Stdout)
	// Every removed mechanism should cost something (ratio >= ~1).
	for _, row := range ts[0].Rows[:len(ts[0].Rows)-1] {
		v := parseRatio(t, row[2])
		if v < 0.9 {
			t.Errorf("%s: removing it helps (%.2fx)?", row[0], v)
		}
	}
	warm, cold := AblationWarmStart(TestOptions())
	if cold <= warm {
		t.Errorf("cold placement (%v) not slower than warm (%v)", cold, warm)
	}
}
