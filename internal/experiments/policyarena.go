package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/clustertrace"
	"repro/internal/datacenter"
	"repro/internal/place"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() { register("policyarena", PolicyArena) }

// Placement-policy arena experiment: the same day-long Alibaba-2017 diurnal
// arrival replay served by the sharded xdm arena under each built-in
// placement policy, head to head. The offered load peaks near the fleet's
// calibrated knee, so the policies separate on exactly the axes the
// paper's balance story cares about: memory-balance effectiveness (MBE over
// peak node utilizations), peak memory stranding (free pages marooned on
// core-exhausted nodes), tail placement delay, and the finish line. Every
// number is byte-identical for any -workers and -shards value: policies are
// pure functions of model identity, and rows fan out across grid workers
// exactly like any other experiment grid.

// PolicyArenaPolicies are the competing placement policies, in table order.
func PolicyArenaPolicies() []string {
	return []string{"alg1", "best-fit", "worst-fit", "oversub:1.25", "one-shot"}
}

// policyArenaTemplates extends the serving request pool with the shapes that
// make placement policy matter: a wide request (2 cores, light memory) that
// strands memory when cores run out, and a fat request (1 core, 3x footprint)
// that only fits on a node with real page headroom. The
// returned footprint is the base serving footprint; nodes get 6x of it so
// neither resource dominates by construction.
func policyArenaTemplates(o Options) (apps []cluster.App, foot int) {
	base, foot := servingTemplates(o)
	wide := base[len(base)-1]
	wide.Spec.Name = "req-wide"
	wide.Cores = 2
	fat := base[0]
	fat.Spec.Name = "req-fat"
	fat.Spec.FootprintPages = 3 * foot
	return append(base, wide, fat), foot
}

// policyArenaArrivals is the shared day-compressed diurnal replay: a 96-point
// Alibaba-2017 utilization series (15-minute buckets over 24h) squeezed into
// the simulated horizon, cresting near the xdm arena's calibrated knee so the
// fleet visits both slack and contention on every run.
func policyArenaArrivals(o Options, nodes int, horizon sim.Duration) workload.ArrivalProcess {
	f := float64(nodes) / 10 * 8 / float64(o.Scale)
	return workload.NewTraceReplay(clustertrace.Alibaba2017(), 96, horizon/96, 24000*f, o.Seed)
}

// policyArenaHorizon compresses the 24h replay into half a simulated second:
// long enough for the diurnal crest to visit the knee under every policy,
// short enough that the five-way race stays affordable in the golden corpus.
const policyArenaHorizon = sim.Second / 2

// PolicyArenaRow is one policy's outcome on the shared replay.
type PolicyArenaRow struct {
	Policy string
	Result datacenter.ArenaResult
}

// PolicyArenaData runs the replay under every policy; rows fan out across
// grid workers and each run additionally shards by Options.ShardWorkers.
func PolicyArenaData(o Options) []PolicyArenaRow {
	o = o.normalize()
	nodes := arenaCapacityFleet(o)
	specs := PolicyArenaPolicies()
	return runGrid(o, len(specs), func(i int) PolicyArenaRow {
		cfg := arenaConfig(o, nodes, 0, true)
		apps, foot := policyArenaTemplates(o)
		cfg.Templates = apps
		cfg.PagesPerNode = 6 * foot
		cfg.Policy = place.Builtin(specs[i])
		cfg.Arrivals = policyArenaArrivals(o, nodes, policyArenaHorizon)
		cfg.Duration = policyArenaHorizon
		cfg.Drain = policyArenaHorizon / 4
		cfg.MaxQueue = 4 * nodes
		return PolicyArenaRow{Policy: specs[i], Result: datacenter.NewArena(cfg).Run()}
	})
}

// PolicyArena renders the policy comparison. Only simulation quantities
// appear: the table must stay byte-identical across worker and shard counts.
func PolicyArena(o Options) []Table {
	o = o.normalize()
	rows := PolicyArenaData(o)
	nodes := arenaCapacityFleet(o)
	t := Table{
		ID: "policyarena",
		Title: fmt.Sprintf("placement policies on the xdm arena: %d nodes, day-compressed alibaba-2017 replay",
			nodes),
		Columns: []string{"policy", "offered", "refused", "completed", "mbe",
			"stranded", "p99 delay", "last done"},
	}
	for _, r := range rows {
		res := r.Result
		t.AddRow(r.Policy, fmt.Sprintf("%d", res.Offered), fmt.Sprintf("%d", res.Refused),
			fmt.Sprintf("%d", res.Completed), f2(res.MBE), pct(res.StrandedFrac),
			ms(res.DelayP99), ms(res.LastDone))
	}
	t.Notes = append(t.Notes,
		"stranded = peak fraction of fleet memory free on core-exhausted nodes at a placement failure",
		"identical output for any -workers/-shards value: policy choice is a pure function of model identity")
	return []Table{t}
}

// PolicyArenaSweeps exposes one capacity sweep per placement policy on the
// xdm arena, so xdmbench -capacity ranks policies by sustainable request
// rate next to the static-vs-xdm arena sweeps.
func PolicyArenaSweeps(o Options) []serve.NamedSweep {
	o = o.normalize()
	nodes := arenaCapacityFleet(o)
	specs := PolicyArenaPolicies()
	out := make([]serve.NamedSweep, len(specs))
	for i, spec := range specs {
		spec := spec
		out[i] = serve.NamedSweep{
			Name: "policy-" + spec,
			RunRung: func(rps float64, window, drain sim.Duration) serve.Result {
				cfg := arenaConfig(o, nodes, 0, true)
				cfg.Policy = place.Builtin(spec)
				cfg.Arrivals = workload.Poisson{RPS: rps}
				cfg.Duration = window
				cfg.Drain = drain
				cfg.MaxQueue = 4 * nodes
				return arenaServeResult(datacenter.NewArena(cfg).Run(), window)
			},
			Cap: arenaRamp(o, nodes, 8000, 8000, 48000),
		}
	}
	return out
}
