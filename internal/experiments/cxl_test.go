package experiments

import (
	"os"
	"testing"
)

func TestCXLModes(t *testing.T) {
	ts, ok := Run("cxl", TestOptions())
	if !ok {
		t.Fatal("missing")
	}
	ts[0].Render(os.Stdout)
	if len(ts[0].Rows) != 4 {
		t.Fatal("want 4 workloads")
	}
}
