package experiments

import (
	"bytes"
	"testing"
)

// renderExperiment runs one registered experiment end to end and returns the
// rendered tables as bytes.
func renderExperiment(t *testing.T, id string, o Options) []byte {
	t.Helper()
	tables, ok := Run(id, o)
	if !ok {
		t.Fatalf("Run(%q): unknown experiment", id)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Fatalf("Run(%q) rendered nothing", id)
	}
	return buf.Bytes()
}

// TestExperimentsDeterministic reruns fast experiments with the same seed
// and requires byte-identical output — the regression gate for the repo's
// reproducibility claim. Seeded differently, the output must change, so a
// trivially-constant experiment cannot pass by accident.
func TestExperimentsDeterministic(t *testing.T) {
	// faults is here as the flakiness-audit pin: its injection plan is keyed
	// by a map (faults.go byKey) and must stay lookup-only, never iterated
	// into output.
	for _, id := range []string{"fig3", "tab7", "faults"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := TestOptions()
			a := renderExperiment(t, id, o)
			b := renderExperiment(t, id, o)
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different output:\n--- first\n%s\n--- second\n%s", a, b)
			}
		})
	}
}

// TestParallelWorkersDeterministic is the tentpole regression gate for the
// parallel harness: the same experiment rendered with Workers=1 and
// Workers=8 must be byte-identical. Parallelism fans out across independent
// grid cells and results are assembled in cell order, so worker count must
// never leak into output. Exercised under -race by CI.
func TestParallelWorkersDeterministic(t *testing.T) {
	// fig16 regressed once via map-ordered Machine.BackendNames — keep it in
	// this list. serving is the open-loop sweep: its breaker backoff and
	// arrival trains are seeded per-cell and must not share global state.
	// arena exercises the second parallelism axis too: grid workers outside,
	// a serial shard group inside each cell.
	// policyarena fans five policy cells across the same workers; policy
	// choice must be a pure function of model identity. It runs a scale
	// tier up: worker-count invariance is scale-blind, and the five-way
	// replay is the most expensive cell in the corpus.
	// cxlpool fans the ratio × mode grid over the fabric cells; the pool
	// ledger and in-fabric extender must be pure functions of the cell
	// configuration.
	scaleUp := map[string]int{"policyarena": 16}
	for _, id := range []string{"fig5a", "fig16", "fig17", "ablation", "serving", "arena", "policyarena", "cxlpool"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := TestOptions()
			serial.Workers = 1
			if s := scaleUp[id]; s != 0 {
				serial.Scale = s
			}
			parallel := serial
			parallel.Workers = 8
			a := renderExperiment(t, id, serial)
			b := renderExperiment(t, id, parallel)
			if !bytes.Equal(a, b) {
				t.Fatalf("Workers=1 vs Workers=8 output differs:\n--- serial\n%s\n--- parallel\n%s", a, b)
			}
		})
	}
}

// TestPolicyRefactorEquivalence is the extraction regression gate: the
// pluggable placement policies that replaced the hand-rolled loops must
// reproduce them bit for bit. Options.Policy="" leaves every dispatcher on
// its pre-refactor default path (alg1 on the rack dispatcher, worst-fit on
// the arena); naming that default explicitly must not move a single byte,
// serial or parallel. Each case crosses the axes — the default policy
// rendered serially against the explicit spec rendered with eight workers —
// so one comparison catches a drift in either the extraction or the worker
// fan-out (worker invariance alone is separately pinned by
// TestParallelWorkersDeterministic). Scale 16 keeps the serving sweep
// affordable; the equivalence must hold at every scale, so any scale proves
// the extraction.
func TestPolicyRefactorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment renders; skipped in -short mode")
	}
	cases := []struct {
		id     string
		policy string
	}{
		{"alg1", "alg1"},       // Algorithm 1's placement loops
		{"serving", "alg1"},    // the open-loop dispatcher shares them
		{"arena", "worst-fit"}, // the arena's spreading placement
	}
	for _, c := range cases {
		c := c
		t.Run(c.id+"/"+c.policy, func(t *testing.T) {
			t.Parallel()
			def := TestOptions()
			def.Scale = 16
			def.Workers = 1
			named := def
			named.Policy = c.policy
			named.Workers = 8
			a := renderExperiment(t, c.id, def)
			b := renderExperiment(t, c.id, named)
			if !bytes.Equal(a, b) {
				t.Fatalf("default policy (Workers=1) vs explicit %q (Workers=8) differs:\n--- default\n%s\n--- explicit\n%s",
					c.policy, a, b)
			}
		})
	}
}

func TestExperimentSeedChangesOutput(t *testing.T) {
	// fig17 is seed-sensitive (sampled workload trace); tab7 is analytic and
	// intentionally seed-independent, so it can't serve here.
	o := TestOptions()
	a := renderExperiment(t, "fig17", o)
	o.Seed += 17
	b := renderExperiment(t, "fig17", o)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical fig17 output; seed is not plumbed through")
	}
}
