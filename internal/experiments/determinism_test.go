package experiments

import (
	"bytes"
	"testing"
)

// renderExperiment runs one registered experiment end to end and returns the
// rendered tables as bytes.
func renderExperiment(t *testing.T, id string, o Options) []byte {
	t.Helper()
	tables, ok := Run(id, o)
	if !ok {
		t.Fatalf("Run(%q): unknown experiment", id)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Fatalf("Run(%q) rendered nothing", id)
	}
	return buf.Bytes()
}

// TestExperimentsDeterministic reruns fast experiments with the same seed
// and requires byte-identical output — the regression gate for the repo's
// reproducibility claim. Seeded differently, the output must change, so a
// trivially-constant experiment cannot pass by accident.
func TestExperimentsDeterministic(t *testing.T) {
	// faults is here as the flakiness-audit pin: its injection plan is keyed
	// by a map (faults.go byKey) and must stay lookup-only, never iterated
	// into output.
	for _, id := range []string{"fig3", "tab7", "faults"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := TestOptions()
			a := renderExperiment(t, id, o)
			b := renderExperiment(t, id, o)
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different output:\n--- first\n%s\n--- second\n%s", a, b)
			}
		})
	}
}

// TestParallelWorkersDeterministic is the tentpole regression gate for the
// parallel harness: the same experiment rendered with Workers=1 and
// Workers=8 must be byte-identical. Parallelism fans out across independent
// grid cells and results are assembled in cell order, so worker count must
// never leak into output. Exercised under -race by CI.
func TestParallelWorkersDeterministic(t *testing.T) {
	// fig16 regressed once via map-ordered Machine.BackendNames — keep it in
	// this list. serving is the open-loop sweep: its breaker backoff and
	// arrival trains are seeded per-cell and must not share global state.
	// arena exercises the second parallelism axis too: grid workers outside,
	// a serial shard group inside each cell.
	for _, id := range []string{"fig5a", "fig16", "fig17", "ablation", "serving", "arena"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := TestOptions()
			serial.Workers = 1
			parallel := serial
			parallel.Workers = 8
			a := renderExperiment(t, id, serial)
			b := renderExperiment(t, id, parallel)
			if !bytes.Equal(a, b) {
				t.Fatalf("Workers=1 vs Workers=8 output differs:\n--- serial\n%s\n--- parallel\n%s", a, b)
			}
		})
	}
}

func TestExperimentSeedChangesOutput(t *testing.T) {
	// fig17 is seed-sensitive (sampled workload trace); tab7 is analytic and
	// intentionally seed-independent, so it can't serve here.
	o := TestOptions()
	a := renderExperiment(t, "fig17", o)
	o.Seed += 17
	b := renderExperiment(t, "fig17", o)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical fig17 output; seed is not plumbed through")
	}
}
