package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestArenaShardWorkersDeterministic is the sharded-kernel regression gate
// at the experiment layer: the arena experiment rendered serially
// (ShardWorkers=1) and sharded eight ways must be byte-identical — domain
// partitioning and barrier scheduling must never leak into results. The
// grid worker knob is crossed in to prove the two parallelism axes compose.
func TestArenaShardWorkersDeterministic(t *testing.T) {
	serial := TestOptions()
	serial.ShardWorkers = 1
	ref := renderExperiment(t, "arena", serial)
	for _, tc := range []struct{ shardWorkers, workers int }{
		{2, 1}, {8, 1}, {8, 4},
	} {
		o := serial
		o.ShardWorkers = tc.shardWorkers
		o.Workers = tc.workers
		got := renderExperiment(t, "arena", o)
		if !bytes.Equal(ref, got) {
			t.Fatalf("ShardWorkers=%d Workers=%d output differs from serial:\n--- serial\n%s\n--- sharded\n%s",
				tc.shardWorkers, tc.workers, ref, got)
		}
	}
}

// TestArenaExperimentShape sanity-checks the rendered comparison: both
// fleets complete all tasks and xdm reports the better makespan.
func TestArenaExperimentShape(t *testing.T) {
	rows := ArenaData(TestOptions())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var static, xdm ArenaRow
	for _, r := range rows {
		if r.Config == "xdm" {
			xdm = r
		} else {
			static = r
		}
		if r.Result.Completed != r.Tasks {
			t.Fatalf("%s completed %d of %d tasks", r.Config, r.Result.Completed, r.Tasks)
		}
		if r.Result.Events == 0 {
			t.Fatalf("%s counted no events", r.Config)
		}
	}
	if xdm.Result.Makespan >= static.Result.Makespan {
		t.Fatalf("xdm makespan %v not better than static %v",
			xdm.Result.Makespan, static.Result.Makespan)
	}
}

// TestArenaSweepRungDeterministicAcrossShards runs one open-loop capacity
// rung of the arena sweep at ShardWorkers 1 and 8 and requires identical
// serving results — the capacity path shares the determinism guarantee.
func TestArenaSweepRungDeterministicAcrossShards(t *testing.T) {
	run := func(shardWorkers int) serve.Result {
		o := TestOptions()
		o.ShardWorkers = shardWorkers
		sweeps := ArenaSweeps(o)
		for _, s := range sweeps {
			if s.Name == "arena-xdm" {
				return s.RunRung(s.Cap.StartRPS, s.Cap.Window, s.Cap.Window/4)
			}
		}
		t.Fatal("arena-xdm sweep not found")
		return serve.Result{}
	}
	a, b := run(1), run(8)
	if a != b {
		t.Fatalf("rung diverged across shard counts:\nserial  %+v\nsharded %+v", a, b)
	}
	if a.Offered == 0 || a.Completed == 0 {
		t.Fatalf("rung served nothing: %+v", a)
	}
}

// TestArenaSweepsTrip ramps both arena configurations to overload at test
// scale, proving the rung runner integrates with capacity discovery and the
// xdm fleet sustains strictly more load.
func TestArenaSweepsTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung arena sweep; skipped in -short mode")
	}
	o := TestOptions()
	results := serve.SweepGrid(ArenaSweeps(o), o.Workers)
	knees := map[string]float64{}
	for _, r := range results {
		if !r.Tripped {
			t.Errorf("%s ramp exhausted without overload (max sustainable %.0f)", r.Name, r.MaxSustainableRPS)
		}
		knees[r.Name] = r.MaxSustainableRPS
	}
	if knees["arena-xdm"] <= knees["arena-static"] {
		t.Fatalf("arena-xdm knee %.0f not above arena-static %.0f",
			knees["arena-xdm"], knees["arena-static"])
	}
	out := serve.RenderCapacity(results)
	for _, want := range []string{"## capacity: arena-static", "## capacity: arena-xdm", "OVERLOAD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("capacity report missing %q:\n%s", want, out)
		}
	}
}
