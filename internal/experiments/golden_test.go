package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden corpus instead of comparing against it:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite golden experiment corpus")

// goldenOptions is the canonical corpus configuration. Scale 8 keeps the
// full sweep affordable in CI; Workers > 1 is safe because output is proven
// byte-identical for any worker count (TestParallelWorkersDeterministic).
func goldenOptions() Options {
	o := TestOptions()
	o.Workers = 4
	return o
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".golden")
}

// diffLines renders a readable line-level diff of the first divergences so a
// golden failure points straight at the drifted cell.
func diffLines(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  golden: %s\n  got:    %s\n", i+1, w, g)
		shown++
		if shown >= 8 {
			fmt.Fprintf(&b, "... (further differences suppressed)\n")
			break
		}
	}
	return b.String()
}

// TestGoldenCorpus locks the rendered output of every registered experiment
// grid to a checked-in golden file. Any behavioural drift — a model constant
// change, an accounting fix, a new nondeterminism leak — fails here with a
// line diff. After an intentional change, regenerate with -update and review
// the corpus diff like any other code change.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short mode")
	}
	o := goldenOptions()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			got := renderExperiment(t, id, o)
			path := goldenPath(id)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file for %q (run: go test ./internal/experiments -run Golden -update): %v", id, err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("output drifted from golden corpus %s:\n%s", path, diffLines(want, got))
			}
		})
	}
}

// TestGoldenCorpusComplete fails when an experiment is registered without a
// golden file, or a stale golden file survives an experiment's removal —
// the corpus must cover exactly the registry.
func TestGoldenCorpusComplete(t *testing.T) {
	if *update {
		t.Skip("corpus being rewritten")
	}
	want := make(map[string]bool)
	for _, id := range IDs() {
		want[id+".golden"] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("stale golden file %s has no registered experiment", e.Name())
		}
		seen[e.Name()] = true
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("registered experiment lacks golden file %s", name)
		}
	}
}
