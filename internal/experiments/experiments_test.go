package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1b", "fig2b", "fig3", "fig4", "fig5a", "fig5b", "fig8",
		"fig10", "fig11", "fig12", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "tab6", "tab7"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, ok := Run("nope", TestOptions()); ok {
		t.Error("unknown id should not run")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "n")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a  bb", "1  2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 8}
	s := o.scaled(workload.ByName("lg-bfs"))
	if s.FootprintPages != workload.ByName("lg-bfs").FootprintPages/8 {
		t.Fatal("footprint not scaled")
	}
	if s.SegmentLen > s.FootprintPages {
		t.Fatal("segment length not clamped")
	}
	tiny := Options{Scale: 10000}.scaled(workload.ByName("tf-infer"))
	if tiny.FootprintPages < 64 || tiny.MainAccesses < 256 {
		t.Fatal("scaling floors not applied")
	}
}

// --- shape assertions on the cheap (scaled) experiment runs ---

func cell(t *testing.T, tb Table, row, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q missing in %s", col, tb.ID)
	}
	for _, r := range tb.Rows {
		if r[0] == row {
			return r[ci]
		}
	}
	t.Fatalf("row %q missing in %s", row, tb.ID)
	return ""
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscanf(s, &v); err != nil {
		t.Fatalf("cannot parse ratio %q: %v", s, err)
	}
	return v
}

func fmtSscanf(s string, v *float64) (int, error) {
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	n, err := sscan(s, v)
	return n, err
}

func TestFig1bShape(t *testing.T) {
	tb, _ := Run("fig1b", TestOptions())
	// Every device's measured bandwidth is within 10% of spec and below the
	// 64 GB/s fabric budget (the paper's motivating gap).
	for _, row := range tb[0].Rows {
		spec := parseRatio(t, row[2])
		meas := parseRatio(t, row[3])
		if meas < 0.85*spec || meas > 1.05*spec {
			t.Errorf("%s: measured %.1f vs spec %.1f", row[0], meas, spec)
		}
		if meas > 46.5 {
			t.Errorf("%s: exceeds Fig 1b's single-device ceiling", row[0])
		}
	}
}

func TestFig2bOrdering(t *testing.T) {
	tb, _ := Run("fig2b", TestOptions())
	var prev float64
	for i, row := range tb[0].Rows {
		v := parseRatio(t, strings.TrimSuffix(row[3], "µs"))
		if i > 0 && v <= prev {
			t.Fatalf("latency ordering violated at %s: %v <= %v", row[0], v, prev)
		}
		prev = v
	}
}

func TestFig4MultiPathWins(t *testing.T) {
	tb, _ := Run("fig4", TestOptions())
	sp := parseRatio(t, tb[0].Rows[1][3])
	if sp < 1.3 || sp > 4 {
		t.Fatalf("multi-path speedup %.2f outside plausible band", sp)
	}
}

func TestFig5aCrossover(t *testing.T) {
	tb, _ := Run("fig5a", TestOptions())
	rows := tb[0].Rows
	first, last := rows[0], rows[len(rows)-1]
	pms := func(s string) float64 { return parseRatio(t, strings.TrimSuffix(s, "ms")) }
	// Contiguous data: large units strictly faster than 4K.
	if pms(last[1]) >= pms(first[1]) {
		t.Fatal("large units should win for contiguous data")
	}
	// Fragmented data: large units strictly slower.
	if pms(last[3]) <= pms(first[3]) {
		t.Fatal("large units should lose for fragmented data")
	}
}

func TestTable6Shape(t *testing.T) {
	cells := Table6Data(TestOptions())
	if len(cells) != 17*3 {
		t.Fatalf("got %d cells, want 51", len(cells))
	}
	wins, losses := 0, 0
	maxSp := 0.0
	for _, c := range cells {
		sp := c.Speedup()
		if sp <= 0.2 || sp > 8 {
			t.Errorf("%s/%s speedup %.2f implausible", c.Workload, c.Backend, sp)
		}
		if sp >= 1 {
			wins++
		} else {
			losses++
		}
		if sp > maxSp {
			maxSp = sp
		}
	}
	// The paper: xDM wins in the vast majority of cells, with a few
	// suboptimal cases; max speedup is a small-integer factor.
	if wins < 40 {
		t.Errorf("xDM wins only %d/51 cells", wins)
	}
	if maxSp < 1.8 {
		t.Errorf("max speedup %.2f too small for Table VI's headline", maxSp)
	}
}

func TestFig16Monotonicity(t *testing.T) {
	norm, _ := Fig16Data(TestOptions(), 8)
	// All-friendly at the loosest SLOs must beat all-sensitive.
	lastRow := norm[len(norm)-1]
	firstRow := norm[0]
	if lastRow[len(lastRow)-1] <= firstRow[len(firstRow)-1]*0.9 {
		t.Fatalf("friendly share does not raise throughput: %v vs %v", lastRow, firstRow)
	}
}

func TestFig18Claims(t *testing.T) {
	tbs, _ := Run("fig18", TestOptions())
	sp := parseRatio(t, tbs[0].Rows[1][4])
	if sp < 2.3 || sp > 3.0 {
		t.Fatalf("VM reboot speedup %.2f, paper ~2.6", sp)
	}
	for _, row := range tbs[1].Rows {
		for _, cl := range row[1:] {
			if cl == "-" {
				continue
			}
			if v := parseRatio(t, strings.TrimSuffix(cl, "s")); v >= 5 {
				t.Fatalf("switch %s took %vs, paper: all < 5s", row[0], v)
			}
		}
	}
}

func TestFig19PaperPoints(t *testing.T) {
	tb, _ := Run("fig19", TestOptions())
	lo31 := parseRatio(t, cell(t, tb[0], "0.31", "2017-like (48.95% mean)"))
	hi80 := parseRatio(t, cell(t, tb[0], "0.80", "2018-like (87.05% mean)"))
	if lo31 < 8 || lo31 > 20 {
		t.Fatalf("2017@0.31 = %.1f%%, paper 13.8%%", lo31)
	}
	if hi80 < 13 || hi80 > 28 {
		t.Fatalf("2018@0.80 = %.1f%%, paper 19.7%%", hi80)
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables := RunAll(Options{Scale: 16, Seed: 1})
	if len(tables) < 18 {
		t.Fatalf("RunAll produced %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("table %s has no rows", tb.ID)
		}
	}
}

// sscan parses a float from a string.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func TestRenderMarkdownAndCSV(t *testing.T) {
	tb := Table{ID: "x", Title: "T", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")

	var md bytes.Buffer
	tb.RenderMarkdown(&md)
	for _, want := range []string{"### x: T", "| a | b |", "| --- | --- |", "| 1 | 2 |", "_n_"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}

	var cs bytes.Buffer
	tb.RenderCSV(&cs)
	if !strings.Contains(cs.String(), "#x,a,b") || !strings.Contains(cs.String(), ",1,2") {
		t.Errorf("csv malformed:\n%s", cs.String())
	}
}
