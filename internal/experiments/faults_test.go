package experiments

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

func TestFaultRecoveryShape(t *testing.T) {
	rows := FaultRecoveryData(TestOptions())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 scenarios x 2 systems)", len(rows))
	}
	byKey := map[string]FaultRecoveryRow{}
	for _, r := range rows {
		byKey[r.Scenario.String()+"/"+r.System] = r
		if r.PreRate <= 0 {
			t.Fatalf("%s/%s has no pre-fault throughput", r.Scenario, r.System)
		}
	}

	flapStatic, flapXDM := byKey["flap/static"], byKey["flap/xdm-failover"]
	crashStatic, crashXDM := byKey["crash/static"], byKey["crash/xdm-failover"]

	// Both systems lose the same device.
	if flapStatic.Backend != flapXDM.Backend {
		t.Fatalf("systems faulted different backends: %q vs %q",
			flapStatic.Backend, flapXDM.Backend)
	}

	// The headline claim: failure-aware switching recovers at least 2x
	// faster than riding out the outage on a static backend.
	if flapXDM.MTTR <= 0 {
		t.Fatalf("xdm-failover never recovered from the flap (MTTR=%v)", flapXDM.MTTR)
	}
	if flapStatic.MTTR <= 0 {
		t.Fatal("static baseline should recover once the flap ends")
	}
	if flapStatic.MTTR < 2*flapXDM.MTTR {
		t.Fatalf("flap MTTR static=%v vs xdm=%v: want >= 2x faster recovery",
			flapStatic.MTTR, flapXDM.MTTR)
	}

	// Permanent death: static never comes back, failover does.
	if crashStatic.MTTR >= 0 {
		t.Fatalf("static baseline recovered from a crash (MTTR=%v)?", crashStatic.MTTR)
	}
	if crashXDM.MTTR <= 0 {
		t.Fatalf("xdm-failover never recovered from the crash (MTTR=%v)", crashXDM.MTTR)
	}
	if crashXDM.Switches != 1 {
		t.Fatalf("crash scenario switched %d times, want 1", crashXDM.Switches)
	}
	if crashXDM.LostPages == 0 {
		t.Fatal("failover lost no far copies; data-loss accounting broken")
	}

	// Availability dominance: the failover system keeps serving.
	if flapXDM.Avail <= flapStatic.Avail {
		t.Fatalf("flap availability xdm=%.2f <= static=%.2f", flapXDM.Avail, flapStatic.Avail)
	}
	if crashXDM.Avail <= crashStatic.Avail {
		t.Fatalf("crash availability xdm=%.2f <= static=%.2f", crashXDM.Avail, crashStatic.Avail)
	}
	if flapStatic.Switches != 0 || crashStatic.Switches != 0 {
		t.Fatal("static baseline recorded switches")
	}
}

func TestFaultRecoveryDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		for _, tb := range FaultRecovery(TestOptions()) {
			tb.Render(&buf)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different fault tables:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestFaultScheduleDeterministicAcrossInjectors(t *testing.T) {
	// The generator is deterministic (see faults.TestGenerateDeterministic);
	// here: applying the same schedule twice injects the same events in the
	// same order.
	cfg := faults.GenConfig{
		Targets: []string{"ssd", "rdma", "dram"},
		Horizon: faultHorizon, Events: 16,
		CrashWeight: 1, FlapWeight: 2, DegradeWt: 1,
	}
	s := faults.Generate(cfg, TestOptions().Seed)
	runOnce := func() []faults.Event {
		eng := sim.NewEngine()
		env := testbed(eng)
		in := faults.NewInjector(eng)
		for _, name := range []string{"ssd", "rdma", "dram"} {
			in.Register(env.Machine.Device(name))
		}
		in.Apply(s)
		eng.Run()
		return in.Injected
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("no events injected")
	}
	if len(a) != len(b) {
		t.Fatalf("replays injected %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
