package experiments

import (
	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register("tab7", Table7)
	register("fig14", Fig14)
}

// fig14Ratio is the shared memory pressure for throughput runs.
const fig14Ratio = 0.5

// rdma8G is the Table IV xDM-RDMA member card: 4 × 8 GB/s = 32 GB/s.
func rdma8G(name string) device.Spec {
	s := device.SpecConnectX5(name)
	s.Bandwidth = 0.8 * s.Bandwidth
	s.ChannelBandwidth = 0.8 * s.ChannelBandwidth
	return s
}

// fig14System describes one compared system configuration (Table IV).
type fig14System struct {
	name    string
	sys     baseline.System
	devices []device.Spec
	// aggregate wires all devices into one xDM scale-out backend.
	aggregate bool
}

func fig14Systems() []fig14System {
	return []fig14System{
		{name: "linux-swap", sys: baseline.LinuxSwap,
			devices: []device.Spec{device.SpecDiskArray("disk")}},
		{name: "tmo", sys: baseline.TMO,
			devices: []device.Spec{device.SpecNVMeSSD("nvme")}},
		{name: "fastswap", sys: baseline.Fastswap,
			devices: []device.Spec{device.SpecConnectX5("rdma")}},
		{name: "xmempod", sys: baseline.XMemPod,
			devices: []device.Spec{device.SpecRemoteDRAM("dram"), device.SpecConnectX5("rdma")}},
		{name: "xdm-ssd", sys: baseline.XDM, aggregate: true,
			devices: []device.Spec{device.SpecNVMeSSD("nvme0"), device.SpecNVMeSSD("nvme1"),
				device.SpecNVMeSSD("nvme2"), device.SpecNVMeSSD("nvme3")}},
		{name: "xdm-rdma", sys: baseline.XDM, aggregate: true,
			devices: []device.Spec{rdma8G("rdma0"), rdma8G("rdma1"), rdma8G("rdma2"), rdma8G("rdma3")}},
		{name: "xdm-hetero", sys: baseline.XDM, aggregate: true,
			devices: []device.Spec{device.SpecNVMeSSD("nvme0"), device.SpecNVMeSSD("nvme1"),
				rdma8G("rdma0"), rdma8G("rdma1")}},
	}
}

// fig14Run executes one workload under one system and reports swap data
// throughput in bytes/sec.
func fig14Run(o Options, fs fig14System, spec workload.Spec) float64 {
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen4, 16, 20, 64*workload.PagesPerGiB)
	// Node storage for file-backed pages is always present.
	m.AttachDevice(device.SpecTestbedSSD("node-ssd"))
	for _, d := range fs.devices {
		m.AttachDevice(d)
	}
	env := baseline.Env{Machine: m, FileBackend: "node-ssd"}

	var cfg task.Config
	if fs.sys == baseline.XDM {
		members := make([]*swap.DeviceBackend, 0, len(fs.devices))
		for _, d := range fs.devices {
			members = append(members, m.Backend(d.Name))
		}
		agg := swap.NewAggregateBackend(eng, fs.name, members...)
		cfg = baseline.PrepareXDM(env, agg, spec, fig14Ratio, 1.4, o.Seed).Config
	} else if fs.sys == baseline.XMemPod {
		agg := swap.NewAggregateBackend(eng, "dram+rdma",
			m.Backend(fs.devices[0].Name), m.Backend(fs.devices[1].Name))
		cfg = baseline.Prepare(fs.sys, env, agg, spec, fig14Ratio, o.Seed)
	} else {
		cfg = baseline.Prepare(fs.sys, env, m.Backend(fs.devices[0].Name), spec, fig14Ratio, o.Seed)
	}
	stats := runTask(eng, cfg)
	if stats.Runtime <= 0 {
		return 0
	}
	// Useful swap throughput: demand fetches, consumed prefetches, and
	// write-backs. Counting raw transferred bytes would reward systems for
	// wasted (never-consumed) readahead traffic.
	useful := float64(stats.MajorFaults+stats.PrefetchHits+stats.PagesOut) * 4096
	return useful / stats.Runtime.Seconds()
}

// Fig14 reproduces Fig 14: swap data throughput per workload across the
// compared systems, normalized to TMO on a single SSD.
func Fig14(o Options) []Table {
	systems := fig14Systems()
	cols := []string{"workload"}
	for _, fs := range systems {
		cols = append(cols, fs.name)
	}
	t := Table{
		ID:      "fig14",
		Title:   "Swap data throughput normalized to TMO (Fig 14)",
		Columns: cols,
	}
	specs := workload.Specs()
	raw := runGrid2(o, len(specs), len(systems), func(i, j int) float64 {
		return fig14Run(o, systems[j], o.scaled(specs[i]))
	})
	for i, spec := range specs {
		row := []string{o.scaled(spec).Name}
		var tmo float64
		for j, fs := range systems {
			if fs.name == "tmo" {
				tmo = raw[i][j]
			}
		}
		for _, v := range raw[i] {
			if tmo > 0 {
				row = append(row, f2(v/tmo))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"xDM variants aggregate multiple backends (Table IV: 32 GB/s lineups); values are data-swapped-per-second relative to TMO on one NVMe SSD")
	return []Table{t}
}

// Table7 reproduces Table VII: per-backend read/write bandwidth and PCIe
// saturation when xDM drives multiple backends at once.
func Table7(o Options) []Table {
	t := Table{
		ID:      "tab7",
		Title:   "PCIe bandwidth of xDM on different backends (Table VII)",
		Columns: []string{"backend set", "device R/W GB/s (max)", "slot util", "root-complex util", "PCIe full?"},
	}
	run := func(name string, specs []device.Spec) []string {
		eng := sim.NewEngine()
		// Table VII's testbed: PCIe 3.0 host; slots sized per device.
		host := device.NewHost(eng, pcie.Gen3, 16)
		var devs []*device.Device
		for _, s := range specs {
			devs = append(devs, host.Attach(s))
		}
		perDev := int64(2<<30) / int64(o.Scale)
		const chunk = 4 * 1024 * 1024
		for _, d := range devs {
			for off := int64(0); off < perDev; off += chunk {
				d.Submit(device.Op{Size: chunk, Sequential: true, Write: off%2 == 0}, nil)
			}
		}
		eng.Run()
		secs := eng.Now().Seconds()
		maxDev, maxSlot := 0.0, 0.0
		for _, d := range devs {
			bw := d.TotalBytes() / secs / 1e9
			if bw > maxDev {
				maxDev = bw
			}
			if u := d.SlotLink().Utilization(eng.Now()); u > maxSlot {
				maxSlot = u
			}
		}
		rootUtil := host.Root.Utilization(eng.Now())
		full := "no"
		if maxSlot > 0.85 || rootUtil > 0.85 {
			full = "full"
		}
		return []string{name, f2(maxDev), pct(maxSlot), pct(rootUtil), full}
	}
	sets := []struct {
		name  string
		specs []device.Spec
	}{
		{"4x RDMA (xDM-RDMA)", []device.Spec{rdma8G("r0"), rdma8G("r1"), rdma8G("r2"), rdma8G("r3")}},
		{"4x SSD (xDM-SSD)", []device.Spec{device.SpecNVMeSSD("s0"), device.SpecNVMeSSD("s1"),
			device.SpecNVMeSSD("s2"), device.SpecNVMeSSD("s3")}},
		{"1x RDMA (single-backend)", []device.Spec{device.SpecConnectX5("r0")}},
	}
	for _, row := range runGrid(o, len(sets), func(i int) []string {
		return run(sets[i].name, sets[i].specs)
	}) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"multiple backends reach each device's bandwidth ceiling and saturate their PCIe slots; a single backend leaves the fabric mostly idle")
	return []Table{t}
}
