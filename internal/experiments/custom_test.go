package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestCustomPipeline(t *testing.T) {
	specs := []workload.Spec{
		{
			Name: "user-app", Class: workload.Compute,
			FootprintPages: 2048, AnonFraction: 0.9, Coverage: 1.0,
			SegmentLen: 128, SeqShare: 0.5, RunLen: 16,
			HotShare: 0.2, HotProb: 0.7, WriteFraction: 0.3,
			ComputePerAccess: 200 * sim.Nanosecond, MainAccesses: 8000, Threads: 2,
		},
	}
	ts := Custom(specs, TestOptions())
	if len(ts) != 1 || len(ts[0].Rows) != 1 {
		t.Fatalf("custom produced %d tables", len(ts))
	}
	row := ts[0].Rows[0]
	if row[0] != "user-app" {
		t.Fatalf("row %v", row)
	}
	if sp := parseRatio(t, row[9]); sp < 0.5 || sp > 6 {
		t.Fatalf("implausible speedup %v", row[9])
	}
	// The chosen backend must be one of the catalog's.
	switch row[4] {
	case "ssd", "rdma", "dram":
	default:
		t.Fatalf("unknown backend %q", row[4])
	}
}
