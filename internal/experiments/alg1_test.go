package experiments

import "testing"

func TestAlgorithm1Experiment(t *testing.T) {
	ts, ok := Run("alg1", TestOptions())
	if !ok {
		t.Fatal("missing")
	}
	rows := ts[0].Rows
	if len(rows) != 2 {
		t.Fatal("want warm and cold rows")
	}
	warmDelay := rows[0][7]
	coldDelay := rows[1][7]
	if warmDelay == coldDelay {
		t.Fatalf("warm (%s) and cold (%s) placement delays should differ", warmDelay, coldDelay)
	}
	if rows[0][6] != "0" {
		t.Fatalf("warm pool rejected %s apps", rows[0][6])
	}
}
