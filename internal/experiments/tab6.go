package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("tab6", Table6)
}

// table6Ratio is the "appropriate local memory ratio" all Table VI runs use
// (both systems see identical memory pressure).
const table6Ratio = 0.5

// table6Backends are the three backends the paper compares on.
var table6Backends = []string{"dram", "ssd", "rdma"}

// Table6Cell is one workload×backend comparison.
type Table6Cell struct {
	Workload string
	Backend  string
	Baseline baseline.System
	BaseSys  sim.Duration
	XDMSys   sim.Duration
}

// Speedup reports the kernel-time (sys) speedup of xDM over the baseline.
func (c Table6Cell) Speedup() float64 {
	if c.XDMSys == 0 {
		return 0
	}
	return float64(c.BaseSys) / float64(c.XDMSys)
}

// Table6Data runs the full Table VI grid — every workload on every backend,
// baseline and xDM, each an independent engine run farmed out to the worker
// pool — and returns raw cells in stable (workload, backend) order, letting
// tests and the benchmark harness assert on the numbers directly.
func Table6Data(o Options) []Table6Cell {
	specs := workload.Specs()
	return runGrid(o, len(specs)*len(table6Backends), func(i int) Table6Cell {
		s := o.scaled(specs[i/len(table6Backends)])
		backend := table6Backends[i%len(table6Backends)]
		sys := baseline.SystemsForBackend(backend)

		// Baseline run.
		engB := sim.NewEngine()
		envB := testbed(engB)
		cfgB := baseline.Prepare(sys, envB, envB.Machine.Backend(backend), s, table6Ratio, o.Seed)
		statsB := runTask(engB, cfgB)

		// xDM run on the same backend.
		engX := sim.NewEngine()
		envX := testbed(engX)
		setup := baseline.PrepareXDM(envX, envX.Machine.Backend(backend), s, table6Ratio, 1.4, o.Seed)
		statsX := runTask(engX, setup.Config)

		return Table6Cell{
			Workload: s.Name, Backend: backend, Baseline: sys,
			BaseSys: statsB.SysTime, XDMSys: statsX.SysTime,
		}
	})
}

// Table6 reproduces Table VI: the swap performance (sys-time) speedup of
// xDM over Linux swap (SSD backend) and Fastswap (RDMA/DRAM backends), per
// workload, plus the derived swap-feature classification.
func Table6(o Options) []Table {
	cells := Table6Data(o)
	byWorkload := map[string]map[string]Table6Cell{}
	for _, c := range cells {
		if byWorkload[c.Workload] == nil {
			byWorkload[c.Workload] = map[string]Table6Cell{}
		}
		byWorkload[c.Workload][c.Backend] = c
	}

	t := Table{
		ID:    "tab6",
		Title: "Swap performance speedup of xDM vs baselines on the same backend (Table VI)",
		Columns: []string{"workload", "paper S/F", "Sp. DRAM", "Sp. SSD", "Sp. RDMA",
			"average", "classified"},
	}
	for _, spec := range workload.Specs() {
		row := byWorkload[spec.Name]
		avg := (row["dram"].Speedup() + row["ssd"].Speedup() + row["rdma"].Speedup()) / 3
		class := "S"
		if avg >= 1.5 {
			class = "F"
		}
		t.AddRow(spec.Name, string(spec.SwapFeature),
			ratio(row["dram"].Speedup()), ratio(row["ssd"].Speedup()), ratio(row["rdma"].Speedup()),
			ratio(avg), class)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("baselines: %s on SSD; %s on RDMA/DRAM; identical local memory ratio %.1f for both systems",
			baseline.LinuxSwap, baseline.Fastswap, table6Ratio),
		"speedup measured on kernel-level sys time, as the paper does")
	return []Table{t}
}
