package experiments

import (
	"fmt"

	"repro/internal/datacenter"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() { register("arena", Arena) }

// Datacenter-arena experiment: the paper's fleet-level claim replayed at
// fleet scale inside one simulation. Thousands of nodes are partitioned
// across the parallel-in-time kernel's shards (sim.Shards); the dispatcher
// places the same closed-loop task set onto a static single-backend fleet
// and an xdm multi-backend fleet, and the xdm fleet finishes first. Every
// number in the table is byte-identical for any Options.ShardWorkers value
// — sharding changes wall-clock, never results.
const (
	arenaSLO          = 50 * sim.Millisecond
	arenaCoresPerNode = 4
	arenaLocalRatio   = 0.5
)

// arenaFleetSize scales the closed-loop fleet: 5000 nodes at full fidelity,
// shrinking quadratically with scale (the per-task work already shrinks
// linearly via scaled specs) down to a floor that still exercises multi-node
// placement on every shard count the tests use.
func arenaFleetSize(o Options) int {
	n := 5000 / (o.Scale * o.Scale)
	if n < 80 {
		n = 80
	}
	return n
}

// arenaCapacityFleet is the smaller open-loop fleet for capacity ramps: a
// ramp runs many independent simulations (one per rung), so it gets a
// cube-scaled fleet to keep sweeps tractable.
func arenaCapacityFleet(o Options) int {
	n := 5000 / (o.Scale * o.Scale * o.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// arenaConfig assembles one arena run from the shared serving templates.
// Shards and ShardWorkers both follow Options.ShardWorkers: one knob
// selects the domain partitioning and the workers driving it.
func arenaConfig(o Options, nodes, tasks int, xdm bool) datacenter.ArenaConfig {
	apps, foot := servingTemplates(o)
	return datacenter.ArenaConfig{
		Nodes:        nodes,
		Shards:       o.ShardWorkers,
		ShardWorkers: o.ShardWorkers,
		CoresPerNode: arenaCoresPerNode,
		PagesPerNode: 4 * foot,
		XDM:          xdm,
		Templates:    apps,
		LocalRatio:   arenaLocalRatio,
		Tasks:        tasks,
		SLO:          arenaSLO,
		Seed:         o.Seed,
		Policy:       o.placementPolicy(),
	}
}

// ArenaRow is one closed-loop arena cell.
type ArenaRow struct {
	Config       string
	Nodes, Tasks int
	Result       datacenter.ArenaResult
}

// ArenaData runs the closed-loop static-vs-xdm comparison. The two fleets
// fan out across grid workers; each fleet additionally shards internally by
// Options.ShardWorkers.
func ArenaData(o Options) []ArenaRow {
	o = o.normalize()
	// Three waves of work per task slot (4 slots per node): the dispatcher
	// queue stays busy, so placement delay and memory balance reflect a
	// loaded fleet rather than an idle one.
	nodes := arenaFleetSize(o)
	tasks := 12 * nodes
	configs := []struct {
		name string
		xdm  bool
	}{
		{"static-ssd", false},
		{"xdm", true},
	}
	return runGrid(o, len(configs), func(i int) ArenaRow {
		cfg := arenaConfig(o, nodes, tasks, configs[i].xdm)
		return ArenaRow{
			Config: configs[i].name,
			Nodes:  nodes,
			Tasks:  tasks,
			Result: datacenter.NewArena(cfg).Run(),
		}
	})
}

// Arena renders the closed-loop fleet comparison. Wall-clock shard stats are
// deliberately absent: the table must be byte-identical across shard and
// worker counts, so it carries only simulation quantities (the deterministic
// event count stands in as the run's size).
func Arena(o Options) []Table {
	o = o.normalize()
	rows := ArenaData(o)
	t := Table{
		ID: "arena",
		Title: fmt.Sprintf("sharded datacenter arena: %d nodes, %d closed-loop tasks, static vs xdm",
			rows[0].Nodes, rows[0].Tasks),
		Columns: []string{"config", "completed", "makespan", "p50 delay", "p99 delay", "mbe", "events"},
	}
	makespans := map[string]sim.Duration{}
	for _, r := range rows {
		res := r.Result
		makespans[r.Config] = res.Makespan
		t.AddRow(r.Config, fmt.Sprintf("%d", res.Completed), ms(res.Makespan),
			ms(res.DelayP50), ms(res.DelayP99), f2(res.MBE), fmt.Sprintf("%d", res.Events))
	}
	if s, x := makespans["static-ssd"], makespans["xdm"]; s > 0 && x > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("xdm finishes the fleet's work %s faster than static single-backend", ratio(s.Seconds()/x.Seconds())))
	}
	t.Notes = append(t.Notes,
		"identical output for any -shards value: cross-shard events merge at deterministic lookahead barriers")
	return []Table{t}
}

// arenaServeResult maps an open-loop arena outcome onto the serving result
// shape the capacity ramp judges. The arena has one refusal reason (queue
// full) and no post-admission shedding, so the overload signal reduces to
// the SLO-violation fraction over completions plus the front-door shed rate.
func arenaServeResult(r datacenter.ArenaResult, window sim.Duration) serve.Result {
	out := serve.Result{
		Offered:          r.Offered,
		RefusedQueueFull: r.Refused,
		Admitted:         r.Offered - r.Refused,
		Completed:        r.Completed,
		CompletedInSLO:   r.InSLO,
		InFlight:         r.InFlight,
		DelayP50:         r.DelayP50,
		DelayP95:         r.DelayP95,
		DelayP99:         r.DelayP99,
		DelaySamples:     r.Completed,
		MaxQueue:         r.MaxQueue,
	}
	if r.Completed > 0 {
		out.SLOViolationFrac = float64(r.Completed-r.InSLO) / float64(r.Completed)
	}
	if r.Offered > 0 {
		out.ShedRate = float64(r.Refused) / float64(r.Offered)
	}
	if window > 0 {
		out.GoodputRPS = float64(r.InSLO) / window.Seconds()
	}
	return out
}

// ArenaSweeps is the arena capacity-sweep grid: open-loop Poisson arrivals
// against the sharded fleet, rammed through the same serve.SweepFunc ramp
// the single-machine fleets use. Exposed so xdmbench -capacity discovers
// arena capacity alongside the serving fleets.
func ArenaSweeps(o Options) []serve.NamedSweep {
	o = o.normalize()
	nodes := arenaCapacityFleet(o)
	configs := []struct {
		name string
		xdm  bool
		ramp serve.CapacityConfig
	}{
		// Calibrated knees at the reference point (10 nodes, scale 8):
		// static saturates near 3.4k req/s, xdm near 26k req/s — the swap
		// backend, not CPU, is the binding resource, exactly as on the
		// single-machine fleets.
		{"arena-static", false, arenaRamp(o, nodes, 1000, 1000, 6000)},
		{"arena-xdm", true, arenaRamp(o, nodes, 8000, 8000, 48000)},
	}
	out := make([]serve.NamedSweep, len(configs))
	for i, c := range configs {
		c := c
		out[i] = serve.NamedSweep{
			Name: c.name,
			RunRung: func(rps float64, window, drain sim.Duration) serve.Result {
				cfg := arenaConfig(o, nodes, 0, c.xdm)
				cfg.Arrivals = workload.Poisson{RPS: rps}
				cfg.Duration = window
				cfg.Drain = drain
				cfg.MaxQueue = 4 * nodes
				return arenaServeResult(datacenter.NewArena(cfg).Run(), window)
			},
			Cap: c.ramp,
		}
	}
	return out
}

// arenaRamp builds a capacity ramp whose rungs track both knobs that move
// the knee: fleet size (linearly — more nodes serve more) and scale
// (inversely — larger scale shrinks each request, so sustainable rates
// grow). Rates are quoted at the calibration point of 10 nodes, scale 8.
func arenaRamp(o Options, nodes int, start, step, max float64) serve.CapacityConfig {
	f := float64(nodes) / 10 * 8 / float64(o.Scale)
	return serve.CapacityConfig{
		StartRPS: start * f,
		StepRPS:  step * f,
		MaxRPS:   max * f,
		// Half the serving fleets' window: a rung offers thousands of
		// requests either way, and fleet-level queueing collapse shows up
		// well inside 500ms.
		Window: sim.Second / 2,
	}
}
