package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// TestFabricWorkersShardsDeterministic is the fabric acceptance gate: the
// cxlpool grid rendered at every {Workers 1, 8} × {ShardWorkers 1, 4}
// combination must be byte-identical. Fabric cells run on one engine each,
// so neither parallelism axis can reach them — grid workers fan out across
// cells, and the shard axis has no sharded kernel to attach to. Crossing
// the axes (rather than varying one at a time) catches an interaction leak
// a single-axis test would miss.
func TestFabricWorkersShardsDeterministic(t *testing.T) {
	base := TestOptions()
	var want []byte
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 4} {
			o := base
			o.Workers, o.ShardWorkers = workers, shards
			got := renderExperiment(t, "cxlpool", o)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("Workers=%d ShardWorkers=%d output differs from Workers=1 ShardWorkers=1:\n%s",
					workers, shards, diffLines(want, got))
			}
		}
	}
}

// TestFabricFailoverWorkersDeterministic pins the fabric-failover grid the
// same way: its four cells (fault kind × mode) each own an engine and a
// timeline, so worker fan-out must not move a byte. It is the expensive
// fabric render (a 30s+ simulated observation horizon per cell), hence
// guarded like the other full renders.
func TestFabricFailoverWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full observation horizons; skipped in -short mode")
	}
	serial := TestOptions()
	serial.Workers = 1
	parallel := serial
	parallel.Workers = 8
	a := renderExperiment(t, "fabricfail", serial)
	b := renderExperiment(t, "fabricfail", parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("Workers=1 vs Workers=8 fabricfail output differs:\n%s", diffLines(a, b))
	}
}

// TestCXLPoolSeedChangesOutput proves cxlpool is seed-sensitive: the task
// mix and access patterns are seeded, so a different seed must move the
// table — a constant-output experiment cannot pass the determinism gates by
// accident.
func TestCXLPoolSeedChangesOutput(t *testing.T) {
	o := TestOptions()
	a := renderExperiment(t, "cxlpool", o)
	o.Seed += 23
	b := renderExperiment(t, "cxlpool", o)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical cxlpool output; seed is not plumbed through")
	}
}

// TestCXLPoolZeroRatioModesIdentical pins the pool=0 anchor row-by-row: at
// ratio 0 the pooled cell has a zero-slab ledger and the static cell an
// ungrown partition — identical capacity, identical devices — so the two
// rendered rows must agree in every measured column. This is the
// experiment-level view of the metamorphic pool=0 ≡ static law.
func TestCXLPoolZeroRatioModesIdentical(t *testing.T) {
	rows := CXLPoolData(TestOptions())
	var static, pooled *CXLPoolRow
	for i := range rows {
		if rows[i].Ratio != 0 {
			continue
		}
		if rows[i].Mode == "static" {
			static = &rows[i]
		} else {
			pooled = &rows[i]
		}
	}
	if static == nil || pooled == nil {
		t.Fatal("ratio-0 rows missing from cxlpool grid")
	}
	if fmt.Sprintf("%+v", static.Result) != fmt.Sprintf("%+v", pooled.Result) {
		t.Fatalf("ratio-0 static and pooled cells diverge:\nstatic: %+v\npooled: %+v",
			static.Result, pooled.Result)
	}
}
