package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() { register("serving", Serving) }

// Open-loop serving experiment: automated capacity discovery (static
// single-backend vs xdm multi-backend) plus the flash-crowd shedding
// comparison. The serving fleet is deliberately memory-overcommitted — each
// VM holds one request footprint of DRAM but admits two concurrent requests
// — so the swap backend's speed, not CPU, sets the sustainable request
// rate. That is the serving-mode restatement of the paper's thesis: a
// multi-backend fleet sustains strictly more load than any static
// single-backend one.
const (
	servingSLO        = 100 * sim.Millisecond
	servingFleetVMs   = 4
	servingFleetCores = 2
)

// servingRamp scales a full-fidelity offered-rate ramp down to the option's
// scale: requests shrink by o.Scale, so sustainable rates grow by roughly
// the same factor.
func servingRamp(o Options, start, step, max float64) serve.CapacityConfig {
	s := float64(o.Scale)
	return serve.CapacityConfig{
		StartRPS: start * s,
		StepRPS:  step * s,
		MaxRPS:   max * s,
		Window:   sim.Second,
	}
}

// servingTemplates scales the standard request pool and reports the largest
// scaled footprint, which sizes the fleet's per-VM memory (2:1 overcommit
// at the default two tasks per VM).
func servingTemplates(o Options) (apps []cluster.App, maxFoot int) {
	apps = serve.RequestTemplates()
	for i := range apps {
		apps[i].Spec = o.scaled(apps[i].Spec)
		if apps[i].Spec.FootprintPages > maxFoot {
			maxFoot = apps[i].Spec.FootprintPages
		}
	}
	return apps, maxFoot
}

// servingFleet builds a fresh prewarmed serving machine whose backends are
// chosen by name prefix (ssd/rdma/dram).
func servingFleet(backends []string, pages int) baseline.Env {
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen4, 40, 16, 1<<20)
	for _, name := range backends {
		switch {
		case strings.HasPrefix(name, "rdma"):
			m.AttachDevice(device.SpecConnectX5(name))
		case strings.HasPrefix(name, "dram"):
			m.AttachDevice(device.SpecRemoteDRAM(name))
		default:
			m.AttachDevice(device.SpecTestbedSSD(name))
		}
	}
	env := baseline.Env{Machine: m, FileBackend: backends[0]}
	serve.PrewarmFleet(env, servingFleetVMs, servingFleetCores, pages)
	return env
}

// servingConfig is one capacity-sweep configuration.
type servingConfig struct {
	name     string
	backends []string
	ramp     serve.CapacityConfig
}

func servingConfigs(o Options) []servingConfig {
	return []servingConfig{
		// Full-fidelity knees: static-ssd ~12 req/s, xdm ~725 req/s.
		{"static-ssd", []string{"ssd0"}, servingRamp(o, 4, 4, 48)},
		{"xdm", []string{"ssd0", "rdma0", "dram0"}, servingRamp(o, 100, 100, 1200)},
	}
}

// ServingSweeps is the standard capacity-sweep grid, exposed so the
// xdmbench -capacity harness and the serving experiment discover capacity
// on the exact same configurations.
func ServingSweeps(o Options) []serve.NamedSweep {
	o = o.normalize()
	cfgs := servingConfigs(o)
	out := make([]serve.NamedSweep, len(cfgs))
	for i, c := range cfgs {
		c := c
		apps, foot := servingTemplates(o)
		out[i] = serve.NamedSweep{
			Name:  c.name,
			Build: func() baseline.Env { return servingFleet(c.backends, foot) },
			Serve: serve.Config{
				Templates: apps,
				SLO:       servingSLO,
				Shedding:  true,
				Breakers:  true,
				Seed:      o.Seed,
				Policy:    o.placementPolicy(),
			},
			Cap: c.ramp,
		}
	}
	return out
}

// ServingCapacityData sweeps each configuration's capacity. Configurations
// fan out across workers; the ramp inside one sweep is inherently
// sequential (each rung decides whether the next runs).
func ServingCapacityData(o Options) []serve.CapacityResult {
	o = o.normalize()
	sweeps := ServingSweeps(o)
	return runGrid(o, len(sweeps), func(i int) serve.CapacityResult {
		s := sweeps[i]
		return serve.Sweep(s.Name, s.Build, s.Serve, s.Cap)
	})
}

// ServingOnce runs one open-loop serving simulation with the given arrival
// process against the standard overcommitted xdm fleet (every robustness
// feature on) and renders the result — the engine behind `xdmsim -serve`.
func ServingOnce(o Options, arr workload.ArrivalProcess, slo, duration sim.Duration) []Table {
	o = o.normalize()
	apps, foot := servingTemplates(o)
	env := servingFleet([]string{"ssd0", "rdma0", "dram0"}, foot)
	res := serve.Run(env, serve.Config{
		Templates: apps,
		Arrivals:  arr,
		Duration:  duration,
		Drain:     duration / 4,
		SLO:       slo,
		Shedding:  true,
		Breakers:  true,
		Retier:    true,
		Seed:      o.Seed,
		Policy:    o.placementPolicy(),
	})
	t := Table{
		ID:      "serve",
		Title:   fmt.Sprintf("open-loop serving: %s over %v, SLO %v", arr.Name(), duration, slo),
		Columns: []string{"metric", "value"},
	}
	refused := res.RefusedQueueFull + res.RefusedDeadline + res.RefusedThrottle
	add := func(name, val string) { t.AddRow(name, val) }
	add("offered", fmt.Sprintf("%d", res.Offered))
	add("admitted", fmt.Sprintf("%d", res.Admitted))
	add("refused (queue/deadline/throttle)", fmt.Sprintf("%d (%d/%d/%d)",
		refused, res.RefusedQueueFull, res.RefusedDeadline, res.RefusedThrottle))
	add("degraded", fmt.Sprintf("%d", res.Degraded))
	add("shed after admit", fmt.Sprintf("%d", res.Shed))
	add("completed", fmt.Sprintf("%d", res.Completed))
	add("completed in SLO", fmt.Sprintf("%d", res.CompletedInSLO))
	add("in flight at end", fmt.Sprintf("%d", res.InFlight))
	add("placement delay p50/p95/p99", fmt.Sprintf("%s / %s / %s",
		ms(res.DelayP50), ms(res.DelayP95), ms(res.DelayP99)))
	add("SLO violation fraction", pct(res.SLOViolationFrac))
	add("goodput", fmt.Sprintf("%.1f req/s", res.GoodputRPS))
	add("shed rate", pct(res.ShedRate))
	add("breaker opens/closes", fmt.Sprintf("%d/%d", res.BreakerOpens, res.BreakerCloses))
	add("retier events", fmt.Sprintf("%d", res.Retiers))
	add("max queue depth", fmt.Sprintf("%d", res.MaxQueue))
	return []Table{t}
}

// ServingFlashRow is one flash-crowd cell: the same overload served with
// and without the shedder.
type ServingFlashRow struct {
	System string // "shed" | "no-shed"
	Result serve.Result
}

// ServingFlashData serves an 8x flash crowd on the overcommitted static-ssd
// fleet twice: with the adaptive shedder, and with shedding and deadline
// admission disabled (every request queues until placed).
func ServingFlashData(o Options) []ServingFlashRow {
	o = o.normalize()
	systems := []string{"no-shed", "shed"}
	return runGrid(o, len(systems), func(i int) ServingFlashRow {
		apps, foot := servingTemplates(o)
		cfg := serve.Config{
			Templates: apps,
			Arrivals: workload.FlashCrowd{
				BaseRPS: 25 * float64(o.Scale), Mult: 8,
				At: sim.Second, For: 2 * sim.Second,
			},
			Duration: 4 * sim.Second,
			Drain:    sim.Second,
			SLO:      servingSLO,
			Seed:     o.Seed,
			Policy:   o.placementPolicy(),
		}
		if systems[i] == "shed" {
			cfg.Shedding = true
		} else {
			cfg.AdmitDeadline = sim.Hour // disabled: admit everything that fits the queue
		}
		env := servingFleet([]string{"ssd0"}, foot)
		return ServingFlashRow{System: systems[i], Result: serve.Run(env, cfg)}
	})
}

// Serving renders the open-loop serving experiment: the capacity table and
// the flash-crowd shedding comparison.
func Serving(o Options) []Table {
	sweeps := ServingCapacityData(o)

	cap := Table{
		ID:    "serving",
		Title: "open-loop capacity discovery: max sustainable req/s per configuration",
		Columns: []string{"config", "offered", "admitted", "goodput",
			"shed", "viol", "p99", "verdict"},
	}
	knees := map[string]float64{}
	for _, r := range sweeps {
		knees[r.Name] = r.MaxSustainableRPS
		for _, p := range r.Points {
			verdict := "ok"
			if !p.Sustainable {
				verdict = "OVERLOAD"
			}
			cap.AddRow(r.Name, fmt.Sprintf("%.0f", p.OfferedRPS),
				fmt.Sprintf("%d", p.Result.Admitted), f2(p.Result.GoodputRPS),
				pct(p.Result.ShedRate), pct(p.Result.SLOViolationFrac),
				ms(p.Result.DelayP99), verdict)
		}
		if r.Tripped {
			cap.Notes = append(cap.Notes,
				fmt.Sprintf("%s max sustainable: %.0f req/s", r.Name, r.MaxSustainableRPS))
		} else {
			cap.Notes = append(cap.Notes,
				fmt.Sprintf("%s max sustainable: >= %.0f req/s (ramp exhausted)", r.Name, r.MaxSustainableRPS))
		}
	}
	if s, x := knees["static-ssd"], knees["xdm"]; s > 0 && x > 0 {
		cap.Notes = append(cap.Notes,
			fmt.Sprintf("xdm sustains %s the static single-backend rate", ratio(x/s)))
	}

	flash := Table{
		ID:    "serving-flash",
		Title: "8x flash crowd on the overcommitted ssd fleet: shedding vs none",
		Columns: []string{"system", "offered", "admitted", "completed",
			"shed", "goodput", "p99 delay", "viol"},
	}
	for _, row := range ServingFlashData(o) {
		r := row.Result
		flash.AddRow(row.System, fmt.Sprintf("%d", r.Offered),
			fmt.Sprintf("%d", r.Admitted), fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Shed), f2(r.GoodputRPS),
			ms(r.DelayP99), pct(r.SLOViolationFrac))
	}
	flash.Notes = append(flash.Notes, fmt.Sprintf(
		"SLO: admitted-work placement delay p99 <= %s; the shedder defends it, the unshedded queue does not",
		ms(servingSLO)))

	return []Table{cap, flash}
}
