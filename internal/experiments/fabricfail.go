package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func init() { register("fabricfail", FabricFailover) }

// Fabric-failover experiment: the switch is the blast radius. Every host's
// far path crosses the one CXL switch, so a switch fault takes down all
// pooled ports at once — the multi-host analogue of the single-backend
// faults experiment. Pooled cells arm health monitors and demote to each
// host's local SSD (paying the switch cost and re-materializing lost far
// copies); static cells have the same retry discipline but nowhere to go,
// limping until the flap ends or forever after a crash. Both fault kinds ×
// both modes form the availability grid; the probe mix and measurement
// machinery (windowed rate, dip, availability share, time-to-90% MTTR)
// mirror the faults experiment so the numbers are comparable.

// fabricFailTemplates is the probe mix: per pair of hosts, one thin probe
// whose far share fits the private partition and one fat probe that must
// borrow from the pool (pooled mode) or the ratio-grown partition (static
// mode). Both are sized to outlive the observation horizon.
func fabricFailTemplates(o Options) (apps []cluster.App, foot int) {
	thin := faultSpec(o)
	foot = thin.FootprintPages
	thin.Name = "fabric-probe"
	fat := thin
	fat.Name = "fabric-probe-fat"
	fat.FootprintPages = 2 * foot
	return []cluster.App{
		{Spec: thin, Cores: thin.Threads},
		{Spec: fat, Cores: fat.Threads},
	}, foot
}

// fabricFailCell runs one (kind, pooled) cell: probes reach steady state,
// the switch faults at faultInjectAt, and the aggregate access rate is
// observed through the same windows as the faults experiment.
func fabricFailCell(o Options, kind faults.Kind, pooled bool) FaultRecoveryRow {
	o = o.normalize()
	spec := cxlPoolSpec(o)
	eng := sim.NewEngine()
	apps, foot := fabricFailTemplates(o)
	mode := "static"
	if pooled {
		mode = "pooled"
	}
	cfg := fabric.Config{
		Eng:  eng,
		Name: fmt.Sprintf("fabricfail-%s-%s", kind, mode),
		Spec: spec,

		CoresPerHost:     4,
		DRAMPagesPerHost: 2 * foot,
		// A thin probe's far share exactly fills the private partition; a fat
		// probe's doubles it, spilling to the pool (pooled) or fitting the
		// ratio-grown partition (static) at the default pool:host ratio 1.
		FarPagesPerHost: foot / 2,
		Pooled:          pooled,

		Templates:      apps,
		Tasks:          spec.Hosts,
		LocalRatio:     faultLocalRatio,
		Policy:         o.placementPolicy(),
		Seed:           o.Seed,
		RefetchPenalty: baseline.DefaultRefetchPenalty,
	}
	cell := fabric.NewCell(cfg)

	inj := faults.NewInjector(eng)
	inj.Register(cell.Switch())
	ev := faults.Event{At: faultInjectAt, Target: cell.Switch().Name(), Kind: kind}
	if kind == faults.Flap {
		ev.Duration = faultFlapFor
	}
	inj.Apply(faults.Schedule{Events: []faults.Event{ev}})

	start := eng.Now()
	tl := metrics.NewTimeline(eng, faultSampleEvery, func() float64 {
		return float64(cell.Accesses())
	})
	eng.RunUntil(start.Add(faultHorizon))
	tl.Stop()

	row := measureRecovery(tl.Samples())
	row.Scenario = kind
	row.System = mode
	row.Backend = cell.Switch().Name()
	row.Switches = cell.Demotions()
	row.LostPages = cell.Result().LostPages
	return row
}

// FabricFailoverData runs the {flap, crash} × {static, pooled} grid. Cells
// are independent (the fault target is always the cell's own switch), so
// all four fan out across workers; each owns its engine and output is
// byte-identical for any -workers/-shards value.
func FabricFailoverData(o Options) []FaultRecoveryRow {
	kinds := []faults.Kind{faults.Flap, faults.Crash}
	return runGrid(o, 2*len(kinds), func(i int) FaultRecoveryRow {
		return fabricFailCell(o, kinds[i/2], i%2 == 1)
	})
}

// FabricFailover renders the fabric-failover availability grid.
func FabricFailover(o Options) []Table {
	o = o.normalize()
	spec := cxlPoolSpec(o)
	rows := FabricFailoverData(o)
	t := Table{
		ID: "fabricfail",
		Title: fmt.Sprintf("switch failure: availability and recovery, pooled demotion vs static (%d hosts, %d hops)",
			spec.Hosts, spec.Hops),
		Columns: []string{"fault", "mode", "pre acc/s", "dip", "avail", "restore", "MTTR",
			"demotions", "lost pages"},
	}
	byKey := map[string]FaultRecoveryRow{}
	for _, r := range rows {
		byKey[r.Scenario.String()+"/"+r.System] = r
		t.AddRow(r.Scenario.String(), r.System,
			fmt.Sprintf("%.0f", r.PreRate), pct(r.Dip), pct(r.Avail),
			fmtMTTR(r.TTA), fmtMTTR(r.MTTR), fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.LostPages))
	}
	for _, kind := range []string{"flap", "crash"} {
		s, p := byKey[kind+"/static"], byKey[kind+"/pooled"]
		switch {
		case p.TTA > 0 && s.TTA > 0:
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: pooled service restored (≥%d%%) in %s vs static %s (%.1fx faster)",
				kind, int(faultAvailFrac*100), fmtMTTR(p.TTA), fmtMTTR(s.TTA),
				s.TTA.Seconds()/p.TTA.Seconds()))
		case p.TTA > 0 && s.TTA < 0:
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: pooled service restored (≥%d%%) in %s; static never in the window",
				kind, int(faultAvailFrac*100), fmtMTTR(p.TTA)))
		}
	}
	t.Notes = append(t.Notes,
		"restore = time back to the availability threshold; a pooled demotion lands on SSD, so MTTR to 90% of the CXL pre-rate can stay ∞ while service is restored",
		"static cells share the retry discipline but have no demotion path: they wait out a flap and never recover from a crash")
	for _, r := range rows {
		t.Notes = append(t.Notes, fmt.Sprintf("%s/%s acc/s %s", r.Scenario, r.System, r.Spark))
	}
	return []Table{t}
}
