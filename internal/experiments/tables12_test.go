package experiments

import "testing"

func TestTable1and2(t *testing.T) {
	ts, ok := Run("tab1", TestOptions())
	if !ok || len(ts) != 2 {
		t.Fatal("tab1 should render two tables")
	}
	// xDM is the only multi-path row in Table I and the only row with all
	// four knobs in Table II.
	for _, tb := range ts {
		multiCount := 0
		for _, row := range tb.Rows {
			all := true
			for _, c := range row[1:5] {
				if c != "y" {
					all = false
				}
			}
			if all {
				multiCount++
				if row[0] != "xdm (this repo)" {
					t.Errorf("%s: %s claims full capability", tb.ID, row[0])
				}
			}
		}
		if multiCount != 1 {
			t.Errorf("%s: %d full-capability rows, want 1", tb.ID, multiCount)
		}
	}
}

func TestTable5(t *testing.T) {
	ts, ok := Run("tab5", TestOptions())
	if !ok {
		t.Fatal("missing")
	}
	if len(ts[0].Rows) != 17 {
		t.Fatalf("Table V has 17 workloads, rendered %d", len(ts[0].Rows))
	}
}
