package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/workload"
)

func init() { register("faults", FaultRecovery) }

// Fault-recovery scenario timing. The task reaches steady state, the active
// backend fails at faultInjectAt, and throughput is observed for
// faultObserveFor afterwards. All offsets are from task start.
const (
	faultSampleEvery = 100 * sim.Millisecond
	faultInjectAt    = 6 * sim.Second
	faultFlapFor     = 15 * sim.Second // transient-outage window
	faultObserveFor  = faultFlapFor + 10*sim.Second
	faultHorizon     = faultInjectAt + faultObserveFor + 5*sim.Second

	// faultRecoveryWin is the trailing sample count (1 s) of the windowed
	// throughput used for dip/availability/MTTR, smoothing sampling noise.
	faultRecoveryWin = 10

	// faultLocalRatio keeps half the probe's footprint local, so roughly
	// every other access exercises the far-memory path.
	faultLocalRatio = 0.5
)

// Availability / recovery thresholds: a sample counts as available when the
// windowed rate is at least half the pre-fault rate; recovery is reaching
// 90% of it (the paper-style time-to-90% MTTR).
const (
	faultAvailFrac   = 0.5
	faultRecoverFrac = 0.9
)

// FaultRecoveryRow is one (system, scenario) measurement.
type FaultRecoveryRow struct {
	System   string // "xdm-failover" | "static"
	Scenario faults.Kind
	Backend  string // the faulted backend

	PreRate float64 // steady-state accesses/s before the fault
	Dip     float64 // lowest windowed rate after the fault, as a share of PreRate
	Avail   float64 // share of the observe window at >= faultAvailFrac * PreRate
	// MTTR is the time from fault injection until the windowed rate is back
	// to faultRecoverFrac * PreRate; -1 means it never recovered in the
	// observe window.
	MTTR sim.Duration
	// TTA is the time from fault injection until the windowed rate is back
	// to faultAvailFrac * PreRate — "service restored" for recoveries that
	// land on a slower medium (a fabric demotion to SSD can be available
	// without ever reaching faultRecoverFrac). -1 means never in window.
	TTA sim.Duration

	Switches  int
	LostPages uint64
	Spark     string
}

// faultSpec is the steady probe workload: uniform random accesses with a
// fixed compute cost per access, sized so the task outlives the observation
// horizon — availability is measured on a task that never finishes early.
func faultSpec(o Options) workload.Spec {
	foot := 8192 / o.Scale
	if foot < 1024 {
		foot = 1024
	}
	const threads = 2
	compute := 200 * sim.Microsecond
	perWorker := int(faultHorizon / compute)
	return workload.Spec{
		Name:             "fault-probe",
		Class:            workload.Compute,
		Description:      "steady uniform probe for availability measurement",
		FootprintPages:   foot,
		AnonFraction:     1,
		Coverage:         1,
		SegmentLen:       512,
		SeqShare:         0.2,
		RunLen:           4,
		HotShare:         1,
		HotProb:          0,
		WriteFraction:    0.3,
		ComputePerAccess: compute,
		MainAccesses:     threads * perWorker * 13 / 10,
		Threads:          threads,
		SwapFeature:      'F',
	}
}

// runFaultScenario runs the probe once under one fault kind. With failover
// true it uses the failure-aware controller (warm VM backends, health
// monitors, live switch); otherwise a static xDM run pinned to the given
// backend, with the same retry policies so dead-backend ops fail through
// instead of hanging. Returns the measured row; for failover runs the
// chosen initial backend is in row.Backend so the static run can be pinned
// to the same device.
func runFaultScenario(o Options, kind faults.Kind, failover bool, pinned string) FaultRecoveryRow {
	o = o.normalize()
	eng := sim.NewEngine()
	env := testbed(eng)
	spec := faultSpec(o)

	var cfg task.Config
	var run *baseline.FailoverRun
	target := pinned
	if failover {
		v := env.Machine.CreateVM("fault-probe-vm", spec.Threads, 2*spec.FootprintPages,
			[]string{"rdma", "ssd", "dram"}, nil)
		if v == nil {
			panic("experiments: faults VM creation failed")
		}
		eng.Run() // boot the VM so its warm backends are ready
		run = baseline.PrepareXDMFailover(env, v, spec, faultLocalRatio, o.Seed)
		cfg = run.Config
		target = run.Initial
	} else {
		be := env.Machine.Backend(target)
		if be == nil {
			panic("experiments: faults unknown backend " + target)
		}
		setup := baseline.PrepareXDM(env, be, spec, faultLocalRatio, 1.4, o.Seed)
		cfg = setup.Config
		// Same per-op timeout/retry discipline as the failover system, so
		// the static baseline fails through rather than hanging forever —
		// but no health monitor and nowhere to switch.
		cfg.SwapPath.Retry = swap.DefaultRetryPolicy(be.Kind())
		if cfg.FilePath != nil {
			cfg.FilePath.Retry = swap.DefaultRetryPolicy(cfg.FilePath.Backend().Kind())
		}
	}

	tk := task.New(cfg)
	if run != nil {
		run.Bind(tk)
	}

	inj := faults.NewInjector(eng)
	dev := env.Machine.Device(target)
	if dev == nil {
		panic("experiments: faults backend has no device: " + target)
	}
	inj.Register(dev)
	ev := faults.Event{At: faultInjectAt, Target: target, Kind: kind}
	if kind == faults.Flap {
		ev.Duration = faultFlapFor
	}
	inj.Apply(faults.Schedule{Events: []faults.Event{ev}})

	start := eng.Now()
	tl := metrics.NewTimeline(eng, faultSampleEvery, func() float64 {
		return float64(tk.Stats().Accesses)
	})
	tk.Start(func(task.Stats) {})
	eng.RunUntil(start.Add(faultHorizon))
	tl.Stop()

	row := measureRecovery(tl.Samples())
	row.Scenario = kind
	row.Backend = target
	if failover {
		row.System = "xdm-failover"
		row.Switches = len(run.Switches)
	} else {
		row.System = "static"
	}
	row.LostPages = tk.Stats().LostPages
	return row
}

// measureRecovery turns a cumulative access-count timeline (sampled every
// faultSampleEvery from task start) into the recovery measurements:
// steady-state PreRate, windowed Dip, availability share, and time-to-90%
// MTTR, plus the sparkline. Shared by the single-backend faults experiment
// and the fabric-failover grid so their numbers are directly comparable.
func measureRecovery(samples []float64) FaultRecoveryRow {
	var row FaultRecoveryRow
	deltas := metrics.Delta(samples)
	interval := faultSampleEvery.Seconds()
	// timeOf(i) is the sample instant: the first sample fires one interval
	// after task start.
	timeOf := func(i int) sim.Duration { return sim.Duration(i+1) * faultSampleEvery }
	windowed := func(i int) float64 {
		lo := i - faultRecoveryWin + 1
		if lo < 0 {
			lo = 0
		}
		sum := 0.0
		for j := lo; j <= i; j++ {
			sum += deltas[j]
		}
		return sum / float64(i-lo+1) / interval
	}

	// Steady-state rate over the 3 s before the fault.
	preSum, preN := 0.0, 0
	for i := range deltas {
		at := timeOf(i)
		if at > faultInjectAt-3*sim.Second && at <= faultInjectAt {
			preSum += deltas[i] / interval
			preN++
		}
	}
	if preN > 0 {
		row.PreRate = preSum / float64(preN)
	}
	if row.PreRate <= 0 {
		row.Dip, row.MTTR, row.TTA = 1, -1, -1
		row.Spark = metrics.Sparkline(deltas, 40)
		return row
	}

	row.Dip = 1.0
	row.MTTR = -1
	row.TTA = -1
	dipped := false
	availN, obsN := 0, 0
	for i := range deltas {
		at := timeOf(i)
		if at <= faultInjectAt || at > faultInjectAt+faultObserveFor {
			continue
		}
		obsN++
		w := windowed(i)
		frac := w / row.PreRate
		if frac >= faultAvailFrac {
			availN++
		}
		if frac < row.Dip {
			row.Dip = frac
			dipped = true
		}
		// Recovery: first return to faultRecoverFrac after the rate has
		// actually dipped below it; TTA is the same clock against the
		// availability threshold.
		if dipped && row.Dip < faultRecoverFrac && row.MTTR < 0 && frac >= faultRecoverFrac {
			row.MTTR = at - faultInjectAt
		}
		if dipped && row.Dip < faultAvailFrac && row.TTA < 0 && frac >= faultAvailFrac {
			row.TTA = at - faultInjectAt
		}
	}
	if obsN > 0 {
		row.Avail = float64(availN) / float64(obsN)
	}
	row.Spark = metrics.Sparkline(deltas, 40)
	return row
}

// FaultRecoveryData runs both fault scenarios (transient flap, permanent
// crash) against the failure-aware system and the static single-backend
// baseline. The failover run goes first so the static baseline can be
// pinned to the same backend the controller chose — both systems lose the
// same device.
func FaultRecoveryData(o Options) []FaultRecoveryRow {
	kinds := []faults.Kind{faults.Flap, faults.Crash}
	// The static run of a scenario depends on the failover run's backend
	// choice, so each scenario is one grid cell (internally sequential);
	// scenarios fan out across workers.
	pairs := runGrid(o, len(kinds), func(i int) [2]FaultRecoveryRow {
		xdm := runFaultScenario(o, kinds[i], true, "")
		static := runFaultScenario(o, kinds[i], false, xdm.Backend)
		return [2]FaultRecoveryRow{static, xdm}
	})
	var rows []FaultRecoveryRow
	for _, p := range pairs {
		rows = append(rows, p[0], p[1])
	}
	return rows
}

// fmtMTTR renders a recovery time, with ∞ for "not within the window".
func fmtMTTR(d sim.Duration) string {
	if d < 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// FaultRecovery renders the fault-injection experiment: availability,
// throughput dip, and MTTR of failure-aware xDM vs a static single-backend
// baseline when the active backend flaps or dies.
func FaultRecovery(o Options) []Table {
	rows := FaultRecoveryData(o)
	t := Table{
		ID:    "faults",
		Title: "backend failure: availability, throughput dip, MTTR (xDM failover vs static)",
		Columns: []string{"fault", "system", "backend", "pre acc/s", "dip",
			"avail", "MTTR", "switches", "lost pages"},
	}
	byKey := map[string]FaultRecoveryRow{}
	for _, r := range rows {
		byKey[r.Scenario.String()+"/"+r.System] = r
		t.AddRow(r.Scenario.String(), r.System, r.Backend,
			fmt.Sprintf("%.0f", r.PreRate), pct(r.Dip), pct(r.Avail),
			fmtMTTR(r.MTTR), fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.LostPages))
	}
	if s, x := byKey["flap/static"], byKey["flap/xdm-failover"]; s.MTTR > 0 && x.MTTR > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"flap recovery: xdm-failover back to %d%% in %s vs static %s (%.1fx faster)",
			int(faultRecoverFrac*100), fmtMTTR(x.MTTR), fmtMTTR(s.MTTR),
			s.MTTR.Seconds()/x.MTTR.Seconds()))
	}
	for _, r := range rows {
		t.Notes = append(t.Notes, fmt.Sprintf("%s/%s acc/s %s", r.Scenario, r.System, r.Spark))
	}
	return []Table{t}
}
