package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Custom runs user-supplied workload specs (see workload.LoadSpecs) through
// the full pipeline: offline profiling, console decision, and a
// baseline-vs-xDM comparison on the console's chosen backend. This is the
// downstream entry point for evaluating your own workload shapes
// (`xdmsim -custom specs.json`).
func Custom(specs []workload.Spec, o Options) []Table {
	t := Table{
		ID:    "custom",
		Title: "Custom workloads through the xDM pipeline",
		Columns: []string{"workload", "anon", "seq", "hot", "backend", "gran", "width",
			"baseline sys", "xDM sys", "speedup"},
	}
	for _, row := range runGrid(o, len(specs), func(i int) []string {
		spec := o.scaled(specs[i])
		f := baseline.Profile(spec, o.Seed)

		// MEI backend selection over the standard testbed catalog.
		engP := sim.NewEngine()
		envP := testbed(engP)
		var opts []core.BackendOption
		for _, name := range []string{"ssd", "rdma", "dram"} {
			opts = append(opts, baseline.OptionFor(envP.Machine.Backend(name)))
		}
		priority, _ := core.SelectBackend(opts, f, spec.ComputePerAccess, 0.5)
		best := "rdma"
		if len(priority) > 0 {
			best = priority[0]
		}

		// Baseline on the chosen backend.
		engB := sim.NewEngine()
		envB := testbed(engB)
		sys := baseline.SystemsForBackend(envB.Machine.Backend(best).Kind().String())
		cfgB := baseline.Prepare(sys, envB, envB.Machine.Backend(best), spec, 0.5, o.Seed)
		statsB := runTask(engB, cfgB)

		// xDM on the same backend.
		engX := sim.NewEngine()
		envX := testbed(engX)
		setup := baseline.PrepareXDM(envX, envX.Machine.Backend(best), spec, 0.5, 1.4, o.Seed)
		statsX := runTask(engX, setup.Config)

		return []string{spec.Name, f2(f.AnonRatio), f2(f.SeqRatio), f2(f.HotRatio), best,
			fmt.Sprint(setup.Decision.GranularityPages), fmt.Sprint(setup.Decision.Width),
			ms(statsB.SysTime), ms(statsX.SysTime),
			ratio(float64(statsB.SysTime) / float64(statsX.SysTime))}
	}) {
		t.AddRow(row...)
	}
	return []Table{t}
}
