package experiments

import (
	"testing"

	"repro/internal/workload"
)

// Fig5b's rendered table: runtimes per I/O width normalized so the w=1
// column is exactly 1.00 (the spot-checked anchor value).
func TestFig5bRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig 5b width grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig5b(o)
	if len(tbs) != 1 {
		t.Fatalf("Fig5b produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "w=1", "w=2", "w=4", "w=8", "w=16"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	wantRows := []string{"lg-bfs", "sp-pg", "bert", "clip"}
	if len(tb.Rows) != len(wantRows) {
		t.Fatalf("%d rows, want %d", len(tb.Rows), len(wantRows))
	}
	for i, name := range wantRows {
		if tb.Rows[i][0] != name {
			t.Fatalf("row %d is %q, want %q", i, tb.Rows[i][0], name)
		}
		if v := cell(t, tb, name, "w=1"); v != "1.00" {
			t.Errorf("%s: w=1 normalization anchor = %q, want 1.00", name, v)
		}
		for _, c := range tb.Rows[i][1:] {
			if v := parseRatio(t, c); v <= 0 {
				t.Errorf("%s: normalized runtime %q not positive", name, c)
			}
		}
	}
}

// Fig8's rendered table: backend preference rows with the anon ratio taken
// straight from the workload spec (the spot-checked value) and an MEI pick
// naming one of the two candidate backends.
func TestFig8Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig 8 backend comparison")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig8(o)
	if len(tbs) != 1 {
		t.Fatalf("Fig8 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "anon ratio", "runtime SSD", "runtime RDMA", "rdma gain", "MEI pick"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	wantRows := []string{"lg-bc", "sort", "gg-bfs", "lpk"}
	if len(tb.Rows) != len(wantRows) {
		t.Fatalf("%d rows, want %d", len(tb.Rows), len(wantRows))
	}
	for i, name := range wantRows {
		if tb.Rows[i][0] != name {
			t.Fatalf("row %d is %q, want %q", i, tb.Rows[i][0], name)
		}
		if got, want := cell(t, tb, name, "anon ratio"), f2(workload.ByName(name).AnonFraction); got != want {
			t.Errorf("%s: anon ratio %q, want %q (from the spec)", name, got, want)
		}
		if pick := cell(t, tb, name, "MEI pick"); pick != "ssd" && pick != "rdma" {
			t.Errorf("%s: MEI pick %q not a candidate backend", name, pick)
		}
	}
}

// Fig10's rendered table: one row per workload with the fragment ratio in
// (0,1] and the mean segment length equal to its reciprocal (the
// spot-checked relationship).
func TestFig10Render(t *testing.T) {
	tbs := Fig10(TestOptions())
	if len(tbs) != 1 {
		t.Fatalf("Fig10 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "touched pages", "fragment ratio", "mean segment (pages)"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	if want := len(workload.Specs()); len(tb.Rows) != want {
		t.Fatalf("%d rows, want %d", len(tb.Rows), want)
	}
	for _, row := range tb.Rows {
		if pages := parseRatio(t, row[1]); pages < 1 {
			t.Errorf("%s: touched pages %q implausible", row[0], row[1])
		}
		frag := parseRatio(t, row[2])
		if frag <= 0 || frag > 1 {
			t.Errorf("%s: fragment ratio %q outside (0,1]", row[0], row[2])
			continue
		}
		// The ratio cell is rendered at 4 decimals, so its reciprocal is only
		// known within the quantization band [1/(frag+q), 1/(frag-q)].
		seg := parseRatio(t, row[3])
		const q = 0.00005
		lo, hi := 1/(frag+q), 1/(frag-q)
		if seg < lo-0.02 || seg > hi+0.02 {
			t.Errorf("%s: mean segment %.2f not the reciprocal of fragment ratio %.4f (band [%.2f, %.2f])",
				row[0], seg, frag, lo, hi)
		}
	}
}

// Fig11's rendered table: sequentiality signals per workload, with shares
// in [0,1] and a positive width decision.
func TestFig11Render(t *testing.T) {
	tbs := Fig11(TestOptions())
	if len(tbs) != 1 {
		t.Fatalf("Fig11 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "seq share", "max seq run (pages)", "hot ratio", "width pick"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	if want := len(workload.Specs()); len(tb.Rows) != want {
		t.Fatalf("%d rows, want %d", len(tb.Rows), want)
	}
	for _, row := range tb.Rows {
		for _, share := range []string{row[1], row[3]} {
			if v := parseRatio(t, share); v < 0 || v > 1 {
				t.Errorf("%s: share %q outside [0,1]", row[0], share)
			}
		}
		if v := parseRatio(t, row[4]); v < 1 {
			t.Errorf("%s: width pick %q not positive", row[0], row[4])
		}
	}
}

// Fig12's rendered table: NUMA placement runtimes normalized so bind-local
// is exactly 1.00 (the spot-checked anchor value).
func TestFig12Render(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig 12 NUMA grid")
	}
	o := Options{Scale: 16, Seed: 1, Workers: 4}
	tbs := Fig12(o)
	if len(tbs) != 1 {
		t.Fatalf("Fig12 produced %d tables, want 1", len(tbs))
	}
	tb := tbs[0]
	wantCols := []string{"workload", "bind-local", "interleave", "prefer-remote", "sensitivity"}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tb.Columns[i], c)
		}
	}
	wantRows := []string{"stream", "lpk", "kmeans", "bert"}
	if len(tb.Rows) != len(wantRows) {
		t.Fatalf("%d rows, want %d", len(tb.Rows), len(wantRows))
	}
	for i, name := range wantRows {
		if tb.Rows[i][0] != name {
			t.Fatalf("row %d is %q, want %q", i, tb.Rows[i][0], name)
		}
		if v := cell(t, tb, name, "bind-local"); v != "1.00" {
			t.Errorf("%s: bind-local anchor = %q, want 1.00", name, v)
		}
		for _, c := range []string{cell(t, tb, name, "interleave"), cell(t, tb, name, "prefer-remote")} {
			if v := parseRatio(t, c); v <= 0 {
				t.Errorf("%s: normalized runtime %q not positive", name, c)
			}
		}
	}
}
