package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/clustertrace"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

func init() {
	register("fig17", Fig17)
	register("fig18", Fig18)
	register("fig19", Fig19)
}

// fig17Pairs co-locates each primary workload with a noisy neighbour.
var fig17Pairs = [][2]string{
	{"lg-bfs", "kmeans"},
	{"bert", "sort"},
	{"tf-infer", "sp-pg"},
	{"chat-int", "lg-bc"},
}

// fig17Run measures the mean per-swap-op latency of the primary workload
// under three isolation schemes.
func fig17Run(o Options, primary, neighbour string, scheme string) float64 {
	eng := sim.NewEngine()
	env := testbed(eng)
	specP := o.scaled(workload.ByName(primary))
	specN := o.scaled(workload.ByName(neighbour))

	mkPath := func(name string) *swap.Path {
		switch scheme {
		case "shared":
			// Traditional shared-LRU swap: one channel, hierarchical.
			return env.Machine.SharedPath("rdma")
		case "isolated":
			// Canvas: per-application channel, host-native.
			return swap.NewPath(eng, env.Machine.Backend("rdma"),
				swap.NewChannel(eng, "iso-"+name, 4))
		default: // vm-isolated (xDM)
			return swap.NewPath(eng, env.Machine.Backend("rdma"),
				swap.NewChannel(eng, "vm-"+name, 4))
		}
	}
	// All three schemes run the same untuned task configuration so the
	// comparison isolates the channel/path structure, as Fig 17 does.
	mkCfg := func(spec workload.Spec, name string, seed int64) task.Config {
		cfg := baseline.Prepare(baseline.Fastswap, env, env.Machine.Backend("rdma"), spec, 0.5, seed)
		cfg.SwapPath = mkPath(name)
		return cfg
	}

	cfgP := mkCfg(specP, "p", o.Seed)
	cfgN := mkCfg(specN, "n", o.Seed+1)
	done := 0
	task.New(cfgP).Start(func(task.Stats) { done++ })
	task.New(cfgN).Start(func(task.Stats) { done++ })
	eng.Run()
	if done != 2 {
		panic("fig17: tasks did not finish")
	}
	return cfgP.SwapPath.InLatency.Mean()
}

// Fig17 reproduces Fig 17: per-swap-operation latency of co-located
// workloads under shared, isolated (Canvas), and vm-isolated (xDM) swap.
func Fig17(o Options) []Table {
	t := Table{
		ID:      "fig17",
		Title:   "Per-swap-op latency under swap isolation schemes (Fig 17)",
		Columns: []string{"pair", "shared swap", "isolated swap", "vm-isolated swap", "shared/vm speedup"},
	}
	fig17Schemes := []string{"shared", "isolated", "vm-isolated"}
	lat := runGrid2(o, len(fig17Pairs), len(fig17Schemes), func(i, j int) float64 {
		return fig17Run(o, fig17Pairs[i][0], fig17Pairs[i][1], fig17Schemes[j])
	})
	var speedups []float64
	for i, pair := range fig17Pairs {
		shared, iso, vmIso := lat[i][0], lat[i][1], lat[i][2]
		sp := shared / vmIso
		speedups = append(speedups, sp)
		t.AddRow(pair[0]+"+"+pair[1],
			fmt.Sprintf("%.2fµs", shared), fmt.Sprintf("%.2fµs", iso),
			fmt.Sprintf("%.2fµs", vmIso), ratio(sp))
	}
	mean := 0.0
	for _, s := range speedups {
		mean += s
	}
	mean /= float64(len(speedups))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean vm-isolated speedup over shared swap: %.2fx (paper: ~1.7x)", mean),
		"vm-isolated tracks isolated swap closely: VM channels recover Canvas-style isolation")
	return []Table{t}
}

// Fig18 reproduces Fig 18: (a) OS boot overhead of backend switching via
// host reboot vs xDM's VM reboot, and (b) the warm switching matrix.
func Fig18(o Options) []Table {
	a := Table{
		ID:      "fig18a",
		Title:   "Backend switching via reboot: traditional host boot vs xDM VM reboot (Fig 18a)",
		Columns: []string{"method", "sys-level", "user-level", "total", "speedup"},
	}
	hostSys := sim.Duration(float64(vm.HostBootCost) * vm.HostBootSysShare)
	hostUsr := vm.HostBootCost - hostSys
	vmSys := sim.Duration(float64(vm.VMRebootCost) * vm.VMRebootSysShare)
	vmUsr := vm.VMRebootCost - vmSys
	a.AddRow("host reboot (related works)", fmt.Sprintf("%.1fs", hostSys.Seconds()),
		fmt.Sprintf("%.1fs", hostUsr.Seconds()), fmt.Sprintf("%.1fs", vm.HostBootCost.Seconds()), ratio(1))
	a.AddRow("VM reboot (xDM)", fmt.Sprintf("%.1fs", vmSys.Seconds()),
		fmt.Sprintf("%.1fs", vmUsr.Seconds()), fmt.Sprintf("%.1fs", vm.VMRebootCost.Seconds()),
		ratio(float64(vm.HostBootCost)/float64(vm.VMRebootCost)))

	b := Table{
		ID:      "fig18b",
		Title:   "Warm backend switching overhead matrix, measured on a live VM (Fig 18b)",
		Columns: []string{"from\\to", "ssd", "rdma", "dram"},
	}
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, device.SpecTestbedSSD("x").SlotGen, 16, 20, 1<<20)
	m.AttachDevice(device.SpecTestbedSSD("ssd"))
	m.AttachDevice(device.SpecConnectX5("rdma"))
	m.AttachDevice(device.SpecRemoteDRAM("dram"))
	v := m.CreateVM("vm", 2, 1024, []string{"ssd", "rdma", "dram"}, nil)
	eng.Run()
	kinds := []string{"ssd", "rdma", "dram"}
	maxSwitch := sim.Duration(0)
	for _, from := range kinds {
		row := []string{from}
		for _, to := range kinds {
			if from == to {
				row = append(row, "-")
				continue
			}
			v.SwitchBackend(from, nil)
			eng.Run()
			start := eng.Now()
			v.SwitchBackend(to, nil)
			eng.Run()
			took := eng.Now().Sub(start)
			if took > maxSwitch {
				maxSwitch = took
			}
			row = append(row, fmt.Sprintf("%.1fs", took.Seconds()))
		}
		b.AddRow(row...)
	}
	b.Notes = append(b.Notes,
		fmt.Sprintf("slowest warm switch %.1fs (< 5s, as the paper reports); DRAM startup dominates", maxSwitch.Seconds()))
	return []Table{a, b}
}

// fig19Thresholds is the α=β sweep for the MBE contours.
var fig19Thresholds = []float64{0.2, 0.31, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// Fig19 reproduces Fig 19: memory balance effectiveness improvement over
// the Alibaba-2017-like (low pressure) and 2018-like (high pressure)
// cluster traces, across utilization thresholds.
func Fig19(o Options) []Table {
	t := Table{
		ID:      "fig19",
		Title:   "MBE improvement on cluster traces (Fig 19), α=β sweep",
		Columns: []string{"α=β", "2017-like (48.95% mean)", "2018-like (87.05% mean)"},
	}
	n := 4000 / o.Scale
	lo := clustertrace.Snapshot(clustertrace.Alibaba2017(), n, o.Seed)
	hi := clustertrace.Snapshot(clustertrace.Alibaba2018(), n, o.Seed)
	mbe := runGrid(o, len(fig19Thresholds), func(i int) [2]float64 {
		a := fig19Thresholds[i]
		return [2]float64{cluster.MBEImprovement(lo, a, a), cluster.MBEImprovement(hi, a, a)}
	})
	bestLo, bestHi := 0.0, 0.0
	var atLo, atHi float64
	for i, a := range fig19Thresholds {
		vLo, vHi := mbe[i][0], mbe[i][1]
		if vLo > bestLo {
			bestLo, atLo = vLo, a
		}
		if vHi > bestHi {
			bestHi, atHi = vHi, a
		}
		t.AddRow(fmt.Sprintf("%.2f", a), pct(vLo), pct(vHi))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peaks: %.1f%% at α=β=%.2f (low pressure; paper 13.8%% at 0.31) and %.1f%% at α=β=%.2f (high pressure; paper 19.7%% at 0.80)",
			100*bestLo, atLo, 100*bestHi, atHi))

	// Beyond the closed-form metric: execute the balancing over a simulated
	// cluster network (per-machine NICs + shared switch) and report the
	// operational cost of realizing the improvement.
	st := Table{
		ID:    "fig19-sim",
		Title: "Executed memory balancing over the cluster network (Fig 19 extension)",
		Columns: []string{"trace", "α=β", "MBE improvement", "pages moved", "rebalance time",
			"aggregate BW", "sources->donors"},
	}
	cfgs := []struct {
		p clustertrace.Profile
		a float64
	}{{clustertrace.Alibaba2017(), 0.31}, {clustertrace.Alibaba2018(), 0.80}}
	for _, row := range runGrid(o, len(cfgs), func(i int) []string {
		c := cfgs[i]
		res := cluster.RunBalanceSim(cluster.BalanceSimConfig{
			Machines: n, PagesPerMachine: 16 * 1024 * 1024 / o.Scale,
			Profile: c.p, Alpha: c.a, Beta: c.a, Seed: o.Seed,
		})
		return []string{c.p.Name, fmt.Sprintf("%.2f", c.a), pct(res.Improvement),
			fmt.Sprintf("%d", res.PagesMoved),
			fmt.Sprintf("%.1fs", res.RebalanceTime.Seconds()),
			fmt.Sprintf("%.1f GB/s", res.AggregateGBps),
			fmt.Sprintf("%d->%d", res.SourceMachines, res.DonorMachines)}
	}) {
		st.AddRow(row...)
	}
	st.Notes = append(st.Notes,
		"balancing shares memory pressure without adding server nodes; the switch fabric bounds how fast the cluster converges")
	return []Table{t, st}
}
