package experiments

import (
	"strings"
	"testing"
	"time"
)

// runGrid must return results in cell-index order regardless of worker count,
// and must produce identical output for serial and parallel scheduling.
func TestRunGridOrdering(t *testing.T) {
	const n = 100
	fn := func(i int) int { return i * i }
	serial := runGrid(Options{Workers: 1}, n, fn)
	parallel := runGrid(Options{Workers: 8}, n, fn)
	for i := 0; i < n; i++ {
		if serial[i] != i*i {
			t.Fatalf("serial cell %d = %d, want %d", i, serial[i], i*i)
		}
		if parallel[i] != serial[i] {
			t.Fatalf("parallel cell %d = %d diverges from serial %d", i, parallel[i], serial[i])
		}
	}
}

// More workers than cells must not deadlock or skip cells.
func TestRunGridWorkerClamp(t *testing.T) {
	out := runGrid(Options{Workers: 16}, 3, func(i int) int { return i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("cell %d = %d, want %d", i, v, i+1)
		}
	}
}

// A panic inside a parallel cell is re-raised on the caller with the cell
// index attached; the pool drains instead of hanging.
func TestRunGridPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cell panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "grid cell 7 panicked") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic %v does not identify the failing cell", r)
		}
	}()
	runGrid(Options{Workers: 4}, 16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

// In the serial path the original panic value propagates unwrapped.
func TestRunGridSerialPanicUnwrapped(t *testing.T) {
	defer func() {
		if r := recover(); r != "raw" {
			t.Fatalf("serial panic = %v, want raw value", r)
		}
	}()
	runGrid(Options{Workers: 1}, 2, func(i int) int {
		if i == 1 {
			panic("raw")
		}
		return 0
	})
}

// runGrid2 returns a rows×cols matrix with row-major cell identity.
func TestRunGrid2Shape(t *testing.T) {
	out := runGrid2(Options{Workers: 3}, 4, 5, func(i, j int) [2]int { return [2]int{i, j} })
	if len(out) != 4 {
		t.Fatalf("got %d rows, want 4", len(out))
	}
	for i, row := range out {
		if len(row) != 5 {
			t.Fatalf("row %d has %d cols, want 5", i, len(row))
		}
		for j, v := range row {
			if v != [2]int{i, j} {
				t.Fatalf("cell (%d,%d) = %v", i, j, v)
			}
		}
	}
}

// GridCellTime accumulates the serial-equivalent cost of every cell and
// resets to zero on ResetGridCellTime.
func TestGridCellTimeAccumulates(t *testing.T) {
	ResetGridCellTime()
	const n, sleep = 4, 2 * time.Millisecond
	runGrid(Options{Workers: 2}, n, func(i int) int {
		time.Sleep(sleep)
		return i
	})
	if got := GridCellTime(); got < n*sleep {
		t.Fatalf("GridCellTime %v, want at least %v", got, n*sleep)
	}
	ResetGridCellTime()
	if got := GridCellTime(); got != 0 {
		t.Fatalf("GridCellTime %v after reset, want 0", got)
	}
}
