package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
)

func init() { register("cxlpool", CXLPool) }

// CXL pooling experiment: the pool-stranding-vs-xdm story on the switched
// fabric. The same closed-loop task mix runs on a multi-host cell twice per
// pool:host capacity ratio — once with the extra far capacity carved into
// fixed per-host partitions (static, the single-host-CXL shape scaled out),
// once as a shared DCD pool granted where the in-fabric allocator strands
// the least (pooled). Both cells hold the same total far capacity at every
// ratio; the table shows pooling converting stranded private capacity into
// placed work. At ratio 0 the two cells are byte-identical by construction
// (the metamorphic suite locks this).

// cxlPoolRatios is the pool:host capacity ratio axis.
func cxlPoolRatios() []float64 { return []float64{0, 0.5, 1, 2} }

// cxlPoolTemplates is the task mix that makes pooling matter: the serving
// pool's lookup/scan requests plus a far-hungry variant whose swapped share
// (4 × foot at LocalRatio 0.5) is double one host's private partition, so
// it can only run where pooled (or over-provisioned static) capacity backs
// it.
func cxlPoolTemplates(o Options) (apps []cluster.App, foot int) {
	base, foot := servingTemplates(o)
	fat := base[0]
	fat.Spec.Name = "req-farfat"
	fat.Spec.FootprintPages = 8 * foot
	return append(base, fat), foot
}

// cxlPoolSpec resolves the topology and keeps the slab:footprint ratio
// constant across fidelity scales so the grant pattern (and the table
// shape) survives -scale: a fat task's spill is two default slabs at any
// scale.
func cxlPoolSpec(o Options) fabric.Spec {
	spec := o.fabricSpec()
	spec.Slab /= o.Scale
	if spec.Slab < fabric.MinSlab {
		spec.Slab = fabric.MinSlab
	}
	return spec
}

// cxlPoolCell configures one grid cell at the given ratio.
func cxlPoolCell(o Options, spec fabric.Spec, ratio float64, pooled bool) fabric.Result {
	o = o.normalize()
	spec.Pool = ratio
	eng := sim.NewEngine()
	apps, foot := cxlPoolTemplates(o)
	name := fmt.Sprintf("cxlpool-%g-static", ratio)
	if pooled {
		name = fmt.Sprintf("cxlpool-%g-pooled", ratio)
	}
	cfg := fabric.Config{
		Eng:  eng,
		Name: name,
		Spec: spec,

		CoresPerHost:     4,
		DRAMPagesPerHost: 6 * foot,
		// Half a fat task's swapped share: a fat request always spills past
		// its host's private partition, so only pooled (or ratio-grown
		// static) capacity can take it.
		FarPagesPerHost: 2 * foot,
		Pooled:          pooled,

		Templates:  apps,
		Tasks:      8 * spec.Hosts,
		LocalRatio: 0.5,
		Policy:     o.placementPolicy(),
		Seed:       o.Seed,
	}
	return fabric.NewCell(cfg).Run()
}

// CXLPoolRow is one (ratio, mode) outcome.
type CXLPoolRow struct {
	Ratio  float64
	Mode   string // "static" | "pooled"
	Result fabric.Result
}

// CXLPoolData runs the ratio × {static, pooled} grid; cells fan out across
// workers and each owns its engine, so output is byte-identical for any
// -workers/-shards value.
func CXLPoolData(o Options) []CXLPoolRow {
	o = o.normalize()
	spec := cxlPoolSpec(o)
	ratios := cxlPoolRatios()
	rows := runGrid(o, 2*len(ratios), func(i int) CXLPoolRow {
		ratio, pooled := ratios[i/2], i%2 == 1
		mode := "static"
		if pooled {
			mode = "pooled"
		}
		return CXLPoolRow{Ratio: ratio, Mode: mode, Result: cxlPoolCell(o, spec, ratio, pooled)}
	})
	return rows
}

// CXLPool renders the pool-stranding comparison.
func CXLPool(o Options) []Table {
	o = o.normalize()
	spec := cxlPoolSpec(o)
	rows := CXLPoolData(o)
	t := Table{
		ID: "cxlpool",
		Title: fmt.Sprintf("CXL pooling vs static partitions: %d hosts, %d switch hops, slab %d pages",
			spec.Hosts, spec.Hops, spec.Slab),
		Columns: []string{"pool:host", "mode", "placed", "refused", "stranded",
			"makespan", "goodput", "slab grants", "epochs", "coh cost"},
	}
	for _, r := range rows {
		res := r.Result
		goodput := 0.0
		if res.Makespan > 0 {
			goodput = float64(res.Completed) / res.Makespan.Milliseconds()
		}
		t.AddRow(fmt.Sprintf("%g", r.Ratio), r.Mode,
			fmt.Sprintf("%d", res.Placed), fmt.Sprintf("%d", res.Refused),
			pct(res.StrandedFrac), ms(res.Makespan), f2(goodput),
			fmt.Sprintf("%d", res.PoolGrants), fmt.Sprintf("%d", res.WriterEpochs),
			us(res.CoherenceCost))
	}
	t.Notes = append(t.Notes,
		"both modes hold the same total far capacity per ratio; pooled carves the extra into a shared DCD pool, static into fixed per-host partitions",
		"stranded = peak free far fraction at a far-driven placement failure (100% = request refused while the whole fabric sat free); goodput = completed tasks per ms",
		"low-ratio static makespans reflect refused work, not speed — compare goodput",
		"identical output for any -workers/-shards value: each cell owns one engine")
	return []Table{t}
}
