package experiments

import (
	"testing"

	"repro/internal/invariant"
)

// TestAllExperimentsCleanUnderInvariants runs every registered experiment
// grid with the runtime checking layer enabled, at Workers=1 and Workers=8,
// and requires zero violations. Violations are collected (not panicked) so
// one failure reports every broken law instead of dying on the first.
//
// Not t.Parallel: it toggles the package-global invariant gate, so it must
// not overlap tests that assume checks are off. Go runs it to completion
// before any paused t.Parallel tests resume.
func TestAllExperimentsCleanUnderInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short mode")
	}
	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) {
		violations = append(violations, v)
	})
	defer restore()
	invariant.Reset()
	invariant.Enable()
	defer invariant.Disable()

	// Fidelity is irrelevant here; invariants must hold at any scale. The
	// five-way policyarena replay runs a further tier up to keep the
	// double sweep affordable.
	scaleFor := map[string]int{"policyarena": 32}
	for _, workers := range []int{1, 8} {
		for _, id := range IDs() {
			o := TestOptions()
			o.Scale = 16
			o.Workers = workers
			if s := scaleFor[id]; s != 0 {
				o.Scale = s
			}
			before := len(violations)
			renderExperiment(t, id, o)
			if n := len(violations) - before; n > 0 {
				t.Errorf("experiment %q (Workers=%d): %d invariant violations, first: %v",
					id, workers, n, violations[before])
			}
		}
	}
	if invariant.Checks() == 0 {
		t.Fatal("invariant layer evaluated zero checks across the full sweep; gate is not wired")
	}
	t.Logf("evaluated %d invariant checks, %d violations", invariant.Checks(), invariant.Violations())
}
