package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("fig5b", Fig5b)
	register("fig8", Fig8)
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("fig12", Fig12)
}

// Fig5b reproduces Fig 5(b): end-to-end latency as the allocated I/O width
// grows, for graph (lg-bfs, sp-pg) and AI inference (bert, clip) workloads
// on the SSD path. Sequential-heavy tasks gain; random-heavy tasks lose to
// per-channel overhead.
func Fig5b(o Options) []Table {
	t := Table{
		ID:      "fig5b",
		Title:   "Runtime vs I/O width on SSD far memory (Fig 5b), normalized to width 1",
		Columns: []string{"workload", "w=1", "w=2", "w=4", "w=8", "w=16"},
	}
	widths := []int{1, 2, 4, 8, 16}
	names := []string{"lg-bfs", "sp-pg", "bert", "clip"}
	runtimes := runGrid2(o, len(names), len(widths), func(i, j int) sim.Duration {
		spec := o.scaled(workload.ByName(names[i]))
		eng := sim.NewEngine()
		env := testbed(eng)
		be := env.Machine.Backend("ssd")
		setup := baseline.PrepareXDM(env, be, spec, 0.5, 1.4, o.Seed)
		// Pin the width under test; disable online width retuning by
		// fixing granularity-only epochs.
		cfg := setup.Config
		cfg.OnEpoch = nil
		cfg.EpochAccesses = 0
		be.SetWidth(widths[j])
		return runTask(eng, cfg).Runtime
	})
	for i, name := range names {
		base := runtimes[i][0] // width 1
		row := []string{name}
		for _, rt := range runtimes[i] {
			row = append(row, f2(float64(rt)/float64(base)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"tasks with long sequential runs benefit from added I/O width; random-dominated tasks pay per-channel overhead")
	return []Table{t}
}

// Fig8 reproduces Fig 8: workloads with more file-backed pages prefer SSD
// backends, anonymous-heavy workloads prefer RDMA. Reported: measured
// runtime on each backend plus the console's MEI preference.
func Fig8(o Options) []Table {
	t := Table{
		ID:      "fig8",
		Title:   "Backend preference by anonymous/file-backed ratio (Fig 8)",
		Columns: []string{"workload", "anon ratio", "runtime SSD", "runtime RDMA", "rdma gain", "MEI pick"},
	}
	fig8Names := []string{"lg-bc", "sort", "gg-bfs", "lpk"}
	for _, row := range runGrid(o, len(fig8Names), func(i int) []string {
		name := fig8Names[i]
		spec := o.scaled(workload.ByName(name))
		var runtimes []sim.Duration
		for _, backend := range []string{"ssd", "rdma"} {
			eng := sim.NewEngine()
			env := testbed(eng)
			// Fixed memory pressure (half the footprint local) so backend
			// sensitivity is visible for every workload.
			setup := baseline.PrepareXDM(env, env.Machine.Backend(backend), spec, 0.5, 1.4, o.Seed)
			runtimes = append(runtimes, runTask(eng, setup.Config).Runtime)
		}
		// Offline-prepared FM path preference (staging-run MEI).
		priority, _ := baseline.CalibratedBackendPriority(map[string]device.Spec{
			"ssd":  device.SpecTestbedSSD("ssd"),
			"rdma": device.SpecConnectX5("rdma"),
		}, spec, o.Seed)
		return []string{name, f2(spec.AnonFraction), ms(runtimes[0]), ms(runtimes[1]),
			ratio(float64(runtimes[0]) / float64(runtimes[1])), priority[0]}
	}) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"large RDMA gains justify the pricier backend for anonymous-heavy tasks; file-heavy tasks stay on SSD")
	return []Table{t}
}

// Fig10 reproduces Fig 10: the data-segment fragment-ratio landscape per
// workload, from the offline page traces.
func Fig10(o Options) []Table {
	t := Table{
		ID:      "fig10",
		Title:   "Data segments and fragment ratios per workload (Fig 10)",
		Columns: []string{"workload", "touched pages", "fragment ratio", "mean segment (pages)"},
	}
	for _, spec := range workload.Specs() {
		s := o.scaled(spec)
		f := baseline.Profile(s, o.Seed)
		segLen := 0.0
		if f.FragmentRatio > 0 {
			segLen = 1 / f.FragmentRatio
		}
		t.AddRow(s.Name, fmt.Sprint(f.TouchedPages), fmt.Sprintf("%.4f", f.FragmentRatio), f2(segLen))
	}
	return []Table{t}
}

// Fig11 reproduces Fig 11: sequential vs random page behaviour — the
// max-sequential-run and sequential-access share signals driving the I/O
// width decision.
func Fig11(o Options) []Table {
	t := Table{
		ID:      "fig11",
		Title:   "Sequential and random accessed page behaviours (Fig 11)",
		Columns: []string{"workload", "seq share", "max seq run (pages)", "hot ratio", "width pick"},
	}
	for _, spec := range workload.Specs() {
		s := o.scaled(spec)
		f := baseline.Profile(s, o.Seed)
		eng := sim.NewEngine()
		env := testbed(eng)
		_, w := core.TuneTransferBudget(baseline.OptionFor(env.Machine.Backend("ssd")), f,
			s.FootprintPages/2)
		t.AddRow(s.Name, f2(f.SeqRatio), fmt.Sprint(f.MaxSeqRunPages), f2(f.HotRatio), fmt.Sprint(w))
	}
	return []Table{t}
}

// Fig12 reproduces Fig 12: sensitivity to NUMA data distribution. Tasks run
// with local memory split across two sockets under bind-local,
// prefer-remote, and interleave placements.
func Fig12(o Options) []Table {
	t := Table{
		ID:      "fig12",
		Title:   "Impact of NUMA data distribution (Fig 12), runtime normalized to bind-local",
		Columns: []string{"workload", "bind-local", "interleave", "prefer-remote", "sensitivity"},
	}
	fig12Names := []string{"stream", "lpk", "kmeans", "bert"}
	fig12Policies := []mem.NUMAPolicy{mem.BindLocal, mem.Interleave, mem.PreferRemote}
	runtimes := runGrid2(o, len(fig12Names), len(fig12Policies), func(i, j int) sim.Duration {
		spec := o.scaled(workload.ByName(fig12Names[i]))
		eng := sim.NewEngine()
		env := testbed(eng)
		// Fully resident (this figure isolates local-memory placement,
		// not swap); each socket holds ~60% of the footprint, so
		// placement decisions are visible.
		setup := baseline.PrepareXDM(env, env.Machine.Backend("rdma"), spec, 1.0, 1.4, o.Seed)
		cfg := setup.Config
		// Each socket can hold the whole footprint: bind-local is pure
		// same-socket, prefer-remote is pure cross-socket.
		cfg.Topo = mem.NewTopology(spec.FootprintPages + 1)
		cfg.NUMAPolicy = fig12Policies[j]
		return runTask(eng, cfg).Runtime
	})
	for i, name := range fig12Names {
		base := float64(runtimes[i][0])
		t.AddRow(name, f2(1.0), f2(float64(runtimes[i][1])/base), f2(float64(runtimes[i][2])/base),
			pct(float64(runtimes[i][2])/base-1))
	}
	t.Notes = append(t.Notes,
		"memory-intensive tasks degrade on remote placement; compute-bound tasks barely notice — NUMA nodes are usable spill room for insensitive apps")
	return []Table{t}
}
