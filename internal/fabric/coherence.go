package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultBackInvalidation is the per-remote-sharer cost of a writer-epoch
// change on a shared fabric region: the switch's back-invalidation snoop
// plus the sharer's cacheline flush/refetch for the region's hot lines.
// CXL 3.0 back-invalidate is a sub-µs snoop per line; a region epoch
// touches a handful of lines, putting the per-sharer charge in single-digit
// microseconds.
const DefaultBackInvalidation = 4 * sim.Microsecond

// Coherence models hardware-coherent shared regions on the switch (CXL 3.0
// shared FAM). The cost model is epoch-based: while one host writes, other
// sharers hold read copies for free; the first write by a *different* host
// opens a new writer epoch, and the switch back-invalidates every other
// sharer's copies — charged as DefaultBackInvalidation × (sharers − 1).
// Reads never open epochs. Every counter is a pure function of the charge
// history, so shared-region costs stay byte-identical across replays.
type Coherence struct {
	perSharer sim.Duration
	regions   []*region
}

type region struct {
	sharers int
	writer  int // current writer epoch's host, or -1 before the first write
	epochs  uint64
	cost    sim.Duration
}

// NewCoherence builds a tracker charging perSharer (0 selects
// DefaultBackInvalidation) per remote sharer per writer epoch.
func NewCoherence(perSharer sim.Duration) *Coherence {
	if perSharer <= 0 {
		perSharer = DefaultBackInvalidation
	}
	return &Coherence{perSharer: perSharer}
}

// Region registers a shared region with the given sharer count and returns
// its id.
func (c *Coherence) Region(sharers int) int {
	if sharers < 1 {
		panic(fmt.Sprintf("fabric: shared region with %d sharers", sharers))
	}
	c.regions = append(c.regions, &region{sharers: sharers, writer: -1})
	return len(c.regions) - 1
}

// Charge records an access to region id by host and returns the coherence
// cost the access pays: zero for reads and same-writer writes, one
// back-invalidation round (perSharer × remote sharers) when the write moves
// the region to a new writer epoch.
func (c *Coherence) Charge(id, host int, write bool) sim.Duration {
	r := c.regions[id]
	if !write || r.writer == host {
		return 0
	}
	r.writer = host
	r.epochs++
	cost := c.perSharer * sim.Duration(r.sharers-1)
	r.cost += cost
	return cost
}

// Epochs reports region id's writer-epoch count.
func (c *Coherence) Epochs(id int) uint64 { return c.regions[id].epochs }

// Cost reports region id's accumulated back-invalidation cost.
func (c *Coherence) Cost(id int) sim.Duration { return c.regions[id].cost }

// TotalEpochs sums writer epochs across all regions.
func (c *Coherence) TotalEpochs() uint64 {
	var n uint64
	for _, r := range c.regions {
		n += r.epochs
	}
	return n
}

// TotalCost sums back-invalidation cost across all regions.
func (c *Coherence) TotalCost() sim.Duration {
	var d sim.Duration
	for _, r := range c.regions {
		d += r.cost
	}
	return d
}
