package fabric

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/units"
	"repro/internal/vm"
)

// crossbarBandwidth is one switch hop's crossbar capacity: a shared segment
// every host's pooled traffic crosses, wide enough that a single host never
// bottlenecks on it but narrow enough that all ports flooding at once
// contend — the CXL-DMSim switched-path shape.
const crossbarBandwidth = 64 // GB/s

// Switch is the CXL switch data path: per-host uplinks, shared crossbar
// hop links, and the pooled device's media link, all on one pcie fluid-flow
// fabric so bandwidth arbitration between hosts falls out of the existing
// max-min machinery. Per-hop latency rides in the pooled device spec
// (device.SpecPooledCXL). The switch is a faults.Target: crashing it takes
// down every attached pooled port at once — the blast radius that makes
// fabric failover interesting.
type Switch struct {
	eng  *sim.Engine
	name string
	fb   *pcie.Fabric
	hops []*pcie.Link
	hopN int

	ports []*device.Device

	down bool

	// Observability handle, resolved once at construction (nil when off).
	rec *obs.Recorder
}

// NewSwitch builds a switch with the given hop count on a fresh fabric.
// Host ports attach via AttachPort.
func NewSwitch(eng *sim.Engine, name string, hops int) *Switch {
	s := &Switch{eng: eng, name: name, fb: pcie.NewFabric(eng), hopN: hops}
	if obs.On {
		s.rec = obs.Rec(eng)
	}
	for i := 0; i < hops; i++ {
		s.hops = append(s.hops, s.fb.NewLink(fmt.Sprintf("%s/hop%d", name, i), units.GBps(crossbarBandwidth)))
	}
	return s
}

// Name reports the switch's name (the faults.Target identity).
func (s *Switch) Name() string { return s.name }

// Hops reports the switch-hop count on the pooled path.
func (s *Switch) Hops() int { return s.hopN }

// Fabric exposes the switch's shared pcie fabric.
func (s *Switch) Fabric() *pcie.Fabric { return s.fb }

// AttachPort gives machine m a pooled-memory port through this switch: a
// PooledCXL device whose every transfer crosses the shared hop links, and a
// backend registration on m so tasks can swap against it. The port device
// lives on the switch's fabric, not the machine's — cross-host contention
// for the crossbar is the point.
func (s *Switch) AttachPort(m *vm.Machine, name string) (*device.Device, *swap.DeviceBackend) {
	spec := device.SpecPooledCXL(name, s.hopN)
	d := device.New(s.eng, s.fb, spec, s.hops...)
	be := m.AdoptBackend(d)
	s.ports = append(s.ports, d)
	return d, be
}

// Ports lists the attached pooled port devices in attach order.
func (s *Switch) Ports() []*device.Device { return s.ports }

// --- fault state (the faults.Target interface) ---

// Fail crashes the switch permanently: every attached pooled port dies with
// it, and data resident in pool slabs is lost.
func (s *Switch) Fail() {
	s.down = true
	for _, d := range s.ports {
		d.Fail()
	}
	if s.rec != nil {
		s.rec.Instant("fabric/"+s.name, "fail", "")
	}
}

// Stall starts a transient switch outage (link flap / hot reset): pooled
// ops are silently dropped until Recover.
func (s *Switch) Stall() {
	if s.down {
		return
	}
	for _, d := range s.ports {
		d.Stall()
	}
	if s.rec != nil {
		s.rec.Instant("fabric/"+s.name, "stall", "")
	}
}

// Degrade multiplies pooled op latency by lat and scales port bandwidth by
// bw on every attached port (congested or misbehaving crossbar).
func (s *Switch) Degrade(lat, bw float64) {
	if s.down {
		return
	}
	for _, d := range s.ports {
		d.Degrade(lat, bw)
	}
	if s.rec != nil {
		s.rec.Instant("fabric/"+s.name, "degrade", fmt.Sprintf("lat=%g bw=%g", lat, bw))
	}
}

// Recover ends a Stall or Degrade window. A Failed switch stays down.
func (s *Switch) Recover() {
	if s.down {
		return
	}
	for _, d := range s.ports {
		d.Recover()
	}
	if s.rec != nil {
		s.rec.Instant("fabric/"+s.name, "recover", "")
	}
}

// Down reports whether the switch has failed permanently.
func (s *Switch) Down() bool { return s.down }
