package fabric

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Registered invariant for the cell's lease ledger: the pool slabs the
// cell's task leases attribute to each host must always equal what the pool
// ledger says that host holds — the cross-layer residency conservation law.
var ckCellLeases = invariant.Register("fabric.cell.lease-conservation")

// Config describes a multi-host cell sharing one switch.
type Config struct {
	Eng  *sim.Engine
	Name string
	Spec Spec

	CoresPerHost int
	// DRAMPagesPerHost is each host's resident-memory budget.
	DRAMPagesPerHost int
	// FarPagesPerHost sizes far capacity. Pooled cells give each host this
	// much private switch capacity plus a shared DCD pool of
	// Spec.Pool × Hosts × FarPagesPerHost pages; static cells split the
	// same total into fixed per-host partitions of (1+Spec.Pool) × this.
	FarPagesPerHost int
	// Pooled selects DCD pooling; false is the static-partition baseline.
	Pooled bool

	// Templates are cycled to generate the closed-loop task list.
	Templates []cluster.App
	Tasks     int
	// LocalRatio is each task's resident share (the far share swaps).
	LocalRatio float64

	// Policy overrides the host-side placement policy (nil = worst-fit).
	// Pooled cells with Spec.Placer == PlacerFabric additionally append the
	// in-fabric PoolExtender.
	Policy *place.Policy

	Seed int64
	// RefetchPenalty is the per-page re-materialization cost after a
	// failover demotion drops far copies.
	RefetchPenalty sim.Duration
}

// Result is one cell run's outcome.
type Result struct {
	Placed    int
	Refused   int
	Completed int
	// Makespan is when the last placed task finished.
	Makespan sim.Duration
	// StrandedFrac is the peak fraction of total far capacity that was free
	// but unreachable for the request at a placement failure.
	StrandedFrac float64
	// PoolGrants / PoolReclaims count slabs moved through the DCD ledger.
	PoolGrants   uint64
	PoolReclaims uint64
	// WriterEpochs and CoherenceCost summarize back-invalidation traffic on
	// the pool's shared ledger region.
	WriterEpochs  uint64
	CoherenceCost sim.Duration
	// Demotions counts fabric-failover backend switches; LostPages the far
	// copies dropped with them.
	Demotions int
	LostPages uint64
}

// host is one machine's view in the cell.
type host struct {
	m    *vm.Machine
	port *swap.DeviceBackend
	ssd  *swap.DeviceBackend

	freeCores int
	freePages int
	// farFree is the host's free private far capacity (its fixed partition
	// of the switch memory).
	farFree int
	load    int
	// leasedSlabs mirrors the pool's per-host residency for the
	// conservation invariant.
	leasedSlabs int
}

// lease is one placed task's capacity hold.
type lease struct {
	host     int
	cores    int
	pages    int
	farPages int // private far pages held (0 when pooled)
	slabs    int // pool slabs held (0 when private)
}

// runningTask is one placed task and its failover state.
type runningTask struct {
	t       *task.Task
	lease   lease
	demoted bool
}

// Cell is N hosts around one switch: a closed-loop FIFO dispatcher placing
// tasks by the host-side policy (optionally delegating pooled capacity to
// the in-fabric allocator), with per-task leases on cores, DRAM, and far
// capacity. Everything runs on one engine, so output is a pure function of
// the configuration — worker and shard counts cannot reach it.
type Cell struct {
	cfg    Config
	eng    *sim.Engine
	sw     *Switch
	pool   *Pool
	coh    *Coherence
	meta   int // the pool ledger's shared coherence region
	policy *place.Policy
	hosts  []*host

	queue   []int // pending task indices
	running []*runningTask

	totalFar  int
	placed    int
	refused   int
	completed int
	lastDone  sim.Time
	stranded  float64
	demotions int
	lost      uint64

	rec *obs.Recorder
}

// NewCell builds the cell; tasks start when Run (or the engine) runs.
func NewCell(cfg Config) *Cell {
	if cfg.Name == "" {
		cfg.Name = "cell"
	}
	if cfg.Spec.Hosts < 1 || cfg.Spec.Slab < 1 {
		panic(fmt.Sprintf("fabric: cell %q with unconfigured spec %+v", cfg.Name, cfg.Spec))
	}
	if len(cfg.Templates) == 0 || cfg.Tasks < 1 {
		panic(fmt.Sprintf("fabric: cell %q without tasks", cfg.Name))
	}
	c := &Cell{cfg: cfg, eng: cfg.Eng}
	c.sw = NewSwitch(cfg.Eng, cfg.Name+"/sw", cfg.Spec.Hops)

	poolPages := 0
	privateFar := cfg.FarPagesPerHost
	if cfg.Pooled {
		poolPages = int(cfg.Spec.Pool * float64(cfg.Spec.Hosts*cfg.FarPagesPerHost))
	} else {
		privateFar += int(cfg.Spec.Pool * float64(cfg.FarPagesPerHost))
	}
	c.pool = NewPool(cfg.Eng, cfg.Name+"/pool", cfg.Spec.Hosts, poolPages/cfg.Spec.Slab, cfg.Spec.Slab)
	c.coh = NewCoherence(0)
	c.meta = c.coh.Region(cfg.Spec.Hosts)
	c.totalFar = cfg.Spec.Hosts*privateFar + c.pool.Capacity()*cfg.Spec.Slab

	for h := 0; h < cfg.Spec.Hosts; h++ {
		m := vm.NewMachine(cfg.Eng, pcie.Gen5, 16, cfg.CoresPerHost, cfg.DRAMPagesPerHost)
		name := fmt.Sprintf("%s/h%02d", cfg.Name, h)
		m.AttachDevice(device.SpecTestbedSSD(name + ".ssd"))
		_, port := c.sw.AttachPort(m, name+".far")
		c.hosts = append(c.hosts, &host{
			m: m, port: port, ssd: m.Backend(name + ".ssd"),
			freeCores: cfg.CoresPerHost, freePages: cfg.DRAMPagesPerHost, farFree: privateFar,
		})
	}

	c.policy = cfg.Policy
	if c.policy == nil {
		c.policy = place.Builtin("worst-fit")
	}
	// Far demand is a hard constraint in both modes; the predicate lives
	// here rather than in the standard chain so far-less frontends never
	// pay for it.
	c.policy.Predicates = append(c.policy.Predicates, place.FarCapacityPredicate())
	if cfg.Pooled && cfg.Spec.Placer == PlacerFabric {
		c.policy.Extenders = append(c.policy.Extenders, PoolExtender(c.pool))
	}

	for i := 0; i < cfg.Tasks; i++ {
		c.queue = append(c.queue, i)
	}
	if obs.On {
		c.rec = obs.Rec(cfg.Eng)
	}
	c.eng.Immediately(c.fill)
	return c
}

// Switch exposes the cell's switch for fault injection.
func (c *Cell) Switch() *Switch { return c.sw }

// Pool exposes the cell's DCD ledger.
func (c *Cell) Pool() *Pool { return c.pool }

// template returns task i's workload template.
func (c *Cell) template(i int) cluster.App { return c.cfg.Templates[i%len(c.cfg.Templates)] }

// demand reports task i's resource needs: cores, resident pages, and the
// far residency its swapped share can reach.
func (c *Cell) demand(i int) (cores, resident, far int) {
	app := c.template(i)
	cores = app.Cores
	if cores < 1 {
		cores = 1
	}
	foot := app.Spec.FootprintPages
	ratio := c.cfg.LocalRatio
	if ratio < 0.05 {
		ratio = 0.05
	}
	if ratio > 1 {
		ratio = 1
	}
	resident = int(float64(foot) * ratio)
	if resident < 1 {
		resident = 1
	}
	far = foot - resident
	return cores, resident, far
}

// candidates projects the host ledgers into the policy's view.
func (c *Cell) candidates() []place.Candidate {
	out := make([]place.Candidate, len(c.hosts))
	poolFree := c.pool.FreePages()
	for h, hs := range c.hosts {
		out[h] = place.Candidate{
			ID:         h,
			FreeCores:  hs.freeCores,
			FreePages:  hs.freePages,
			TotalCores: c.cfg.CoresPerHost,
			TotalPages: c.cfg.DRAMPagesPerHost,
			FarFree:    hs.farFree,
			PoolFree:   poolFree,
			Load:       hs.load,
			Tier:       1,
			Healthy:    !hs.port.Device().Down(),
			Accepts:    true,
		}
	}
	return out
}

// fill places queued tasks head-of-line: the first task that does not fit
// blocks the queue until a completion frees capacity (or is refused when it
// could never fit). Stranding is captured at every placement failure.
func (c *Cell) fill() {
	for len(c.queue) > 0 {
		i := c.queue[0]
		cores, resident, far := c.demand(i)
		r := place.Request{Cores: cores, Pages: resident, FarPages: far}
		cands := c.candidates()
		h := c.policy.Place(r, cands)
		if h < 0 {
			c.captureStranding(r, cands)
			if len(c.running) == 0 {
				// Nothing will ever free capacity: refuse and move on.
				c.refused++
				c.queue = c.queue[1:]
				continue
			}
			return // head-of-line blocks until a completion retries
		}
		c.queue = c.queue[1:]
		c.place(i, h, cores, resident, far)
	}
}

// captureStranding records the far capacity that was free yet unreachable
// at a far-driven placement failure. The failure is far-driven when some
// host could take the request were far capacity reachable — then every
// free far page is by definition stranded for that request: were any
// private partition or the pool able to serve it, the policy would have
// placed. The metric is the free fraction of total far capacity, peaked
// over all such failures (a refusal with the whole fabric free scores
// 100%: maximal fragmentation). Failures the fabric cannot help (core or
// DRAM shortage on every host) don't count — idle far is not stranded far.
func (c *Cell) captureStranding(r place.Request, cands []place.Candidate) {
	if c.totalFar == 0 || r.FarPages <= 0 {
		return
	}
	farDriven := false
	for h, hs := range c.hosts {
		if cands[h].Healthy && hs.freeCores >= r.Cores && hs.freePages >= r.Pages {
			farDriven = true
			break
		}
	}
	if !farDriven {
		return
	}
	stranded := c.pool.FreePages()
	for _, hs := range c.hosts {
		stranded += hs.farFree
	}
	if frac := float64(stranded) / float64(c.totalFar); frac > c.stranded {
		c.stranded = frac
	}
}

// place charges task i's lease on host h and starts it. Pool grants are a
// write to the switch's shared DCD ledger region: a writer-epoch change
// back-invalidates the other hosts' cached ledger lines, and the grant's
// coherence cost delays the task start.
func (c *Cell) place(i, h, cores, resident, far int) {
	hs := c.hosts[h]
	hs.freeCores -= cores
	hs.freePages -= resident
	hs.load++
	l := lease{host: h, cores: cores, pages: resident}
	var delay sim.Duration
	if far > 0 {
		if far <= hs.farFree {
			hs.farFree -= far
			l.farPages = far
		} else {
			slabs := (far + c.cfg.Spec.Slab - 1) / c.cfg.Spec.Slab
			if got := c.pool.Grant(h, slabs); got != slabs {
				panic(fmt.Sprintf("fabric: cell %q granted %d/%d slabs after feasible placement", c.cfg.Name, got, slabs))
			}
			l.slabs = slabs
			hs.leasedSlabs += slabs
			c.checkLeases(h)
			delay = c.coh.Charge(c.meta, h, true)
		}
	}
	c.placed++
	app := c.template(i)
	spec := app.Spec
	spec.Name = fmt.Sprintf("%s/t%03d", c.cfg.Name, i)
	rt := &runningTask{lease: l}
	c.running = append(c.running, rt)
	start := func() { c.start(i, rt, spec) }
	if delay > 0 {
		c.eng.After(delay, start)
	} else {
		start()
	}
}

// start builds and runs task i on its leased host, armed for failover when
// the cell is pooled: the swap path runs under the port medium's retry
// policy and a health monitor that demotes to the host's SSD when the
// switch path dies.
func (c *Cell) start(i int, rt *runningTask, spec workload.Spec) {
	hs := c.hosts[rt.lease.host]
	ch := swap.NewChannel(c.eng, spec.Name+"-ch", 4)
	path := swap.NewPath(c.eng, hs.port, ch)
	path.Retry = swap.DefaultRetryPolicy(hs.port.Kind())
	cfg := task.Config{
		Eng:              c.eng,
		Name:             spec.Name,
		Spec:             spec,
		Seed:             c.cfg.Seed + int64(i),
		LocalRatio:       c.cfg.LocalRatio,
		SwapPath:         path,
		GranularityPages: 32,
		AdaptiveWindow:   true,
		RefetchPenalty:   c.cfg.RefetchPenalty,
	}
	rt.t = task.New(cfg)
	if c.cfg.Pooled {
		m := faults.NewMonitor(hs.port.Device().Name())
		m.OnUnhealthy = func() { c.demote(rt) }
		path.Health = m
	}
	rt.t.Start(func(task.Stats) { c.finish(rt) })
}

// demote live-switches a pooled task off the dead fabric path onto its
// host's SSD: far copies in pool slabs (or the private partition) are lost,
// the lease's far capacity returns to the ledger, and the task repays each
// lost page at RefetchPenalty — the PR-1 failover shape, with the switch as
// the blast radius.
func (c *Cell) demote(rt *runningTask) {
	if rt.demoted || rt.t == nil {
		return
	}
	rt.demoted = true
	hs := c.hosts[rt.lease.host]
	cost := vm.SwitchCost(hs.port.Kind(), hs.ssd.Kind())
	start := c.eng.Now()
	c.eng.After(cost, func() {
		rt.t.DropFarCopies() // counted once via Stats().LostPages at finish
		c.releaseFar(rt)
		ch := swap.NewChannel(c.eng, rt.t.SwapPath().Channel().Name()+"-demoted", 4)
		path := swap.NewPath(c.eng, hs.ssd, ch)
		path.Retry = swap.DefaultRetryPolicy(hs.ssd.Kind())
		rt.t.SetSwapPath(path)
		c.demotions++
		if c.rec != nil {
			c.rec.Span("fabric/"+c.cfg.Name, "demote", start, hs.ssd.Device().Name())
		}
	})
}

// releaseFar returns a lease's far capacity. Pool reclaims write the shared
// ledger region like grants do.
func (c *Cell) releaseFar(rt *runningTask) {
	hs := c.hosts[rt.lease.host]
	if rt.lease.farPages > 0 {
		hs.farFree += rt.lease.farPages
		rt.lease.farPages = 0
	}
	if rt.lease.slabs > 0 {
		if got := c.pool.Reclaim(rt.lease.host, rt.lease.slabs); got != rt.lease.slabs {
			panic(fmt.Sprintf("fabric: cell %q reclaimed %d/%d slabs", c.cfg.Name, got, rt.lease.slabs))
		}
		hs.leasedSlabs -= rt.lease.slabs
		rt.lease.slabs = 0
		c.checkLeases(rt.lease.host)
		c.coh.Charge(c.meta, rt.lease.host, true)
	}
}

// finish releases task rt's lease and refills the queue.
func (c *Cell) finish(rt *runningTask) {
	hs := c.hosts[rt.lease.host]
	hs.freeCores += rt.lease.cores
	hs.freePages += rt.lease.pages
	hs.load--
	c.releaseFar(rt)
	for i, r := range c.running {
		if r == rt {
			c.running = append(c.running[:i], c.running[i+1:]...)
			break
		}
	}
	c.completed++
	c.lastDone = c.eng.Now()
	c.lost += rt.t.Stats().LostPages
	c.fill()
}

// checkLeases asserts the cross-layer residency conservation law for host h.
func (c *Cell) checkLeases(h int) {
	if !invariant.On {
		return
	}
	ckCellLeases.Assert(c.hosts[h].leasedSlabs == c.pool.Granted(h),
		"cell %q host %d leases %d slabs, pool ledger says %d",
		c.cfg.Name, h, c.hosts[h].leasedSlabs, c.pool.Granted(h))
}

// Accesses sums accesses across running tasks — the probe signal for the
// fabric-failover availability measurement.
func (c *Cell) Accesses() uint64 {
	var n uint64
	for _, rt := range c.running {
		if rt.t != nil {
			n += rt.t.Stats().Accesses
		}
	}
	return n
}

// Demotions reports fabric-failover switches so far.
func (c *Cell) Demotions() int { return c.demotions }

// Run drives the engine until the cell drains and returns the result.
func (c *Cell) Run() Result {
	c.eng.Run()
	return c.Result()
}

// Result snapshots the cell's outcome counters. Lost pages include tasks
// still in flight, so a snapshot mid-horizon (the failover experiments cut
// the run at a fixed observation window) sees demotion losses.
func (c *Cell) Result() Result {
	lost := c.lost
	for _, rt := range c.running {
		if rt.t != nil {
			lost += rt.t.Stats().LostPages
		}
	}
	return Result{
		Placed:        c.placed,
		Refused:       c.refused,
		Completed:     c.completed,
		Makespan:      sim.Duration(c.lastDone),
		StrandedFrac:  c.stranded,
		PoolGrants:    c.pool.Grants,
		PoolReclaims:  c.pool.Reclaims,
		WriterEpochs:  c.coh.TotalEpochs(),
		CoherenceCost: c.coh.TotalCost(),
		Demotions:     c.demotions,
		LostPages:     lost,
	}
}
