package fabric

import (
	"fmt"
	"sort"

	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Registered invariants for the pool ledger — the CXL DCD contract. A slab
// is granted to at most one host at a time (no double-grant), the granted
// total never exceeds capacity, and the per-host residency counters always
// equal a recount of the ownership table (conservation).
var (
	ckPoolDoubleGrant = invariant.Register("fabric.pool.no-double-grant")
	ckPoolCapacity    = invariant.Register("fabric.pool.grants-within-capacity")
	ckPoolResidency   = invariant.Register("fabric.pool.host-residency")
)

// poolFree marks an unowned slab in the ownership table.
const poolFree = -1

// Pool is the switch's DCD slab ledger: a fixed array of slabs, each owned
// by at most one host port. Grants hand out the lowest-indexed free slabs
// and reclaims free the lowest-indexed owned ones, so every ledger state is
// a pure function of the operation history — concurrent requesters arriving
// at one instant go through GrantBatch, which orders them canonically.
type Pool struct {
	name      string
	slabPages int
	// owner[s] is the host holding slab s, or poolFree.
	owner []int
	// perHost[h] counts slabs granted to host h (the O(1) conservation
	// counter the residency invariant checks against recounts).
	perHost []int
	free    int

	// Grants and Reclaims count ledger operations (slabs moved, not calls).
	Grants   uint64
	Reclaims uint64

	// Observability handle, resolved once at construction (nil when off).
	rec        *obs.Recorder
	track      string
	obsGranted *metrics.BucketTimeline
}

// NewPool builds a ledger of slabs×slabPages pooled pages shared by hosts
// ports. A zero-slab pool is valid: every grant request returns 0 (pooling
// off).
func NewPool(eng *sim.Engine, name string, hosts, slabs, slabPages int) *Pool {
	if hosts < 1 {
		panic(fmt.Sprintf("fabric: pool %q with %d hosts", name, hosts))
	}
	if slabs < 0 || slabPages < 1 {
		panic(fmt.Sprintf("fabric: pool %q with %d slabs of %d pages", name, slabs, slabPages))
	}
	p := &Pool{
		name:      name,
		slabPages: slabPages,
		owner:     make([]int, slabs),
		perHost:   make([]int, hosts),
		free:      slabs,
	}
	for i := range p.owner {
		p.owner[i] = poolFree
	}
	if obs.On {
		if r := obs.Rec(eng); r != nil {
			p.rec = r
			p.track = "fabric/" + name
			p.obsGranted = r.Timeline(p.track+"/granted-slabs", obs.DefaultTimelineWidth, obs.ModeMean)
			r.OnSeal(func() {
				r.Counter(p.track + "/grants").Add(float64(p.Grants))
				r.Counter(p.track + "/reclaims").Add(float64(p.Reclaims))
				r.Gauge(p.track + "/granted-slabs").Set(float64(len(p.owner) - p.free))
			})
		}
	}
	return p
}

// Name reports the ledger's name.
func (p *Pool) Name() string { return p.name }

// Capacity reports the total slab count.
func (p *Pool) Capacity() int { return len(p.owner) }

// SlabPages reports the grant granularity in pages.
func (p *Pool) SlabPages() int { return p.slabPages }

// FreeSlabs reports unowned slabs.
func (p *Pool) FreeSlabs() int { return p.free }

// FreePages reports unowned pooled capacity in pages.
func (p *Pool) FreePages() int { return p.free * p.slabPages }

// Granted reports the slabs currently owned by host h.
func (p *Pool) Granted(h int) int { return p.perHost[h] }

// Owner reports which host owns slab s (or -1 when free) — the ledger view
// the conformance harness compares across replays.
func (p *Pool) Owner(s int) int { return p.owner[s] }

// Grant hands the n lowest-indexed free slabs to host h and returns how
// many it actually granted (short when the pool runs dry). Grant order is a
// pure function of ledger state, so any replay of the same operation
// history lands every slab identically.
func (p *Pool) Grant(h, n int) int {
	p.checkHost(h)
	if n <= 0 {
		return 0
	}
	granted := 0
	for s := 0; s < len(p.owner) && granted < n; s++ {
		if p.owner[s] != poolFree {
			continue
		}
		p.grantSlab(s, h)
		granted++
	}
	p.perHost[h] += granted
	p.free -= granted
	p.Grants += uint64(granted)
	p.checkLedger(h)
	if p.obsGranted != nil {
		p.obsGranted.Add(p.rec.Now(), float64(len(p.owner)-p.free))
	}
	return granted
}

// Reclaim returns up to n of host h's slabs (lowest index first) to the
// free set, reporting how many it actually reclaimed.
func (p *Pool) Reclaim(h, n int) int {
	p.checkHost(h)
	if n <= 0 {
		return 0
	}
	reclaimed := 0
	for s := 0; s < len(p.owner) && reclaimed < n; s++ {
		if p.owner[s] != h {
			continue
		}
		p.owner[s] = poolFree
		reclaimed++
	}
	p.perHost[h] -= reclaimed
	p.free += reclaimed
	p.Reclaims += uint64(reclaimed)
	p.checkLedger(h)
	if p.obsGranted != nil {
		p.obsGranted.Add(p.rec.Now(), float64(len(p.owner)-p.free))
	}
	return reclaimed
}

// ReclaimAll returns every slab host h holds — the failover path when a
// host's pooled residency dies with the switch.
func (p *Pool) ReclaimAll(h int) int {
	p.checkHost(h)
	return p.Reclaim(h, p.perHost[h])
}

// GrantRequest is one host's ask in a same-instant grant batch. Seq is the
// requester's deterministic arrival key (e.g. a task sequence number); the
// batch is served in (Seq, Host, Slabs) order, so permuting the request
// slice can never change which slabs any request receives.
type GrantRequest struct {
	Host  int
	Seq   uint64
	Slabs int
}

// GrantBatch serves a set of grant requests that arrive at the same
// simulated instant. Returns the granted slab count per request, in the
// input slice's order. Requests are processed in canonical (Seq, Host,
// Slabs) order — the barrier that makes concurrent grant arrival
// permutation-invariant.
func (p *Pool) GrantBatch(reqs []GrantRequest) []int {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Seq != rb.Seq {
			return ra.Seq < rb.Seq
		}
		if ra.Host != rb.Host {
			return ra.Host < rb.Host
		}
		return ra.Slabs < rb.Slabs
	})
	out := make([]int, len(reqs))
	for _, i := range order {
		out[i] = p.Grant(reqs[i].Host, reqs[i].Slabs)
	}
	return out
}

// Audit recounts the ownership table against the O(1) counters — the
// structural check behind the residency invariant, callable from tests and
// the conformance harness at any quiescent point.
func (p *Pool) Audit() error {
	free := 0
	perHost := make([]int, len(p.perHost))
	for s, h := range p.owner {
		switch {
		case h == poolFree:
			free++
		case h >= 0 && h < len(p.perHost):
			perHost[h]++
		default:
			return fmt.Errorf("pool %q audit: slab %d owned by unknown host %d", p.name, s, h)
		}
	}
	if free != p.free {
		return fmt.Errorf("pool %q audit: free counter %d, recount %d", p.name, p.free, free)
	}
	for h := range perHost {
		if perHost[h] != p.perHost[h] {
			return fmt.Errorf("pool %q audit: host %d residency counter %d, recount %d",
				p.name, h, p.perHost[h], perHost[h])
		}
	}
	if granted := len(p.owner) - free; granted < 0 || free > len(p.owner) {
		return fmt.Errorf("pool %q audit: %d granted of %d slabs", p.name, granted, len(p.owner))
	}
	return nil
}

// grantSlab is the single ownership-write path for grants: every slab
// handed out goes through here, so the no-double-grant invariant guards the
// actual mutation, not a copy of the scan condition above it.
func (p *Pool) grantSlab(s, h int) {
	if invariant.On {
		ckPoolDoubleGrant.Assert(p.owner[s] == poolFree,
			"pool %q slab %d granted to host %d while owned by host %d", p.name, s, h, p.owner[s])
	}
	p.owner[s] = h
}

func (p *Pool) checkHost(h int) {
	if h < 0 || h >= len(p.perHost) {
		panic(fmt.Sprintf("fabric: pool %q host %d out of range [0, %d)", p.name, h, len(p.perHost)))
	}
}

// checkLedger runs the cheap ledger invariants after a mutation on host h.
func (p *Pool) checkLedger(h int) {
	if !invariant.On {
		return
	}
	granted := len(p.owner) - p.free
	ckPoolCapacity.Assert(p.free >= 0 && granted >= 0 && granted <= len(p.owner),
		"pool %q granted %d of %d slabs (free %d)", p.name, granted, len(p.owner), p.free)
	sum := 0
	for _, n := range p.perHost {
		sum += n
	}
	ckPoolResidency.Assert(p.perHost[h] >= 0 && sum == granted,
		"pool %q residency sum %d vs granted %d (host %d holds %d)",
		p.name, sum, granted, h, p.perHost[h])
}
