package fabric

import (
	"repro/internal/place"
)

// PoolExtender is the MIND-style in-fabric allocator, packaged as a place
// extender so the host-side policy pipeline can delegate the pooled-capacity
// decision to the switch. The host policy filters and scores as usual; the
// extender intervenes only when the policy's choice would borrow from the
// shared pool, re-targeting among the feasible candidates to put far
// residency where it strands the least pooled capacity:
//
//  1. a candidate whose private far capacity covers the request beats any
//     that would borrow from the pool, best-fit on the private leftover
//     (smallest leftover wins — big private holes stay open);
//  2. among candidates that must borrow, the fewest granted slabs wins;
//  3. ties break on the lowest candidate ID, like every other stage.
//
// A choice that fits privately is never overridden, so an empty pool makes
// the extender a strict no-op — the pool=0 ≡ static anchor the metamorphic
// suite locks. Pure and permutation-invariant: the choice depends only on
// (request, feasible set, ledger granularity), so -workers/-shards can
// never move it.
func PoolExtender(p *Pool) place.Extender {
	slabPages := p.SlabPages()
	return place.Extender{Name: "fabric-pool", Extend: func(r place.Request, feasible []place.Candidate, chosen int) int {
		if r.FarPages <= 0 || chosen < 0 {
			return chosen
		}
		for _, c := range feasible {
			if c.ID == chosen && r.FarPages <= c.FarFree {
				return chosen // fits privately where the host policy put it
			}
		}
		best := -1
		var bestSlabs, bestLeft int
		for _, c := range feasible {
			spill := r.FarPages - c.FarFree
			slabs, left := 0, 0
			if spill > 0 {
				if r.FarPages > c.PoolFree {
					continue // cannot serve this candidate's spill from the pool
				}
				slabs = (r.FarPages + slabPages - 1) / slabPages
			} else {
				left = -spill // private leftover; smaller is a tighter fit
			}
			better := best < 0 ||
				slabs < bestSlabs ||
				(slabs == bestSlabs && left < bestLeft) ||
				(slabs == bestSlabs && left == bestLeft && c.ID < best)
			if better {
				best, bestSlabs, bestLeft = c.ID, slabs, left
			}
		}
		if best >= 0 {
			return best
		}
		return chosen
	}}
}
