// Package conformance is the contract-test harness for the fabric's DCD
// pool ledger — the pooled-memory analogue of the placement-policy harness
// in internal/place/conformance. A ledger trusted with multi-host grants
// must conserve slabs (every grant matched by ownership, every reclaim by a
// release, counters always equal to a recount), serve same-instant grant
// batches permutation-invariantly (shuffling arrival order never changes
// which slabs any request receives), and break ties deterministically
// (replaying an operation history lands every slab identically). Run
// exercises all three against a pool factory, so ledger variants and
// refactors inherit the full contract:
//
//	func TestMyPool(t *testing.T) {
//		conformance.Run(t, func() *fabric.Pool {
//			return fabric.NewPool(sim.NewEngine(), "p", 4, 16, 256)
//		})
//	}
package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

// Run asserts the pool-ledger contract on pools built by mk. The factory is
// called once per check so each starts from a virgin ledger.
func Run(t *testing.T, mk func() *fabric.Pool) {
	t.Helper()
	t.Run("conservation", func(t *testing.T) { checkConservation(t, mk()) })
	t.Run("batch-permutation-invariant", func(t *testing.T) { checkBatchPermutation(t, mk) })
	t.Run("deterministic-replay", func(t *testing.T) { checkDeterministicReplay(t, mk) })
	t.Run("lowest-index-grants", func(t *testing.T) { checkLowestIndex(t, mk()) })
}

// ledgerState snapshots the full ownership table plus per-host counters.
func ledgerState(p *fabric.Pool) []int {
	out := make([]int, 0, p.Capacity())
	for s := 0; s < p.Capacity(); s++ {
		out = append(out, p.Owner(s))
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hosts infers the pool's host count by probing Granted until it panics.
func hosts(p *fabric.Pool) int {
	n := 0
	for {
		ok := func() (ok bool) {
			defer func() { recover() }()
			p.Granted(n)
			return true
		}()
		if !ok {
			return n
		}
		n++
	}
}

// checkConservation drives a random grant/reclaim history and audits the
// ledger after every operation: counters must always match a recount, the
// granted total must never exceed capacity, and draining every host must
// return the pool to fully free with Grants == Reclaims.
func checkConservation(t *testing.T, p *fabric.Pool) {
	nh := hosts(p)
	if nh == 0 || p.Capacity() == 0 {
		t.Skip("degenerate pool")
	}
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 500; op++ {
		h := rng.Intn(nh)
		n := rng.Intn(p.Capacity()/2 + 1)
		if rng.Intn(2) == 0 {
			got := p.Grant(h, n)
			if got > n {
				t.Fatalf("op %d: granted %d > requested %d", op, got, n)
			}
		} else {
			got := p.Reclaim(h, n)
			if got > p.Capacity() {
				t.Fatalf("op %d: reclaimed %d > capacity", op, got)
			}
		}
		if err := p.Audit(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		granted := 0
		for h := 0; h < nh; h++ {
			granted += p.Granted(h)
		}
		if granted+p.FreeSlabs() != p.Capacity() {
			t.Fatalf("op %d: %d granted + %d free != %d capacity", op, granted, p.FreeSlabs(), p.Capacity())
		}
	}
	for h := 0; h < nh; h++ {
		p.ReclaimAll(h)
	}
	if p.FreeSlabs() != p.Capacity() {
		t.Fatalf("drained pool holds %d of %d slabs", p.Capacity()-p.FreeSlabs(), p.Capacity())
	}
	if p.Grants != p.Reclaims {
		t.Fatalf("drained pool moved %d slabs out but %d back", p.Grants, p.Reclaims)
	}
	if err := p.Audit(); err != nil {
		t.Fatalf("drained pool: %v", err)
	}
}

// checkBatchPermutation serves the same same-instant request set in many
// shuffled arrival orders against fresh pools: every request must receive
// the same grant count and the final ownership tables must be identical —
// the barrier property that keeps concurrent grant arrival off the
// nondeterminism surface.
func checkBatchPermutation(t *testing.T, mk func() *fabric.Pool) {
	probe := mk()
	nh := hosts(probe)
	if nh < 2 || probe.Capacity() < 2 {
		t.Skip("degenerate pool")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		reqs := make([]fabric.GrantRequest, 2+rng.Intn(6))
		for i := range reqs {
			reqs[i] = fabric.GrantRequest{
				Host:  rng.Intn(nh),
				Seq:   uint64(rng.Intn(4)), // collisions on purpose: Host must break them
				Slabs: 1 + rng.Intn(3),
			}
		}
		type key struct{ host, seq, slabs int }
		var wantGrants map[key]int
		var wantLedger []int
		for perm := 0; perm < 6; perm++ {
			shuffled := append([]fabric.GrantRequest(nil), reqs...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			p := mk()
			out := p.GrantBatch(shuffled)
			grants := map[key]int{}
			for i, r := range shuffled {
				grants[key{r.Host, int(r.Seq), r.Slabs}] += out[i]
			}
			ledger := ledgerState(p)
			if wantLedger == nil {
				wantGrants, wantLedger = grants, ledger
				continue
			}
			if !equalInts(ledger, wantLedger) {
				t.Fatalf("trial %d perm %d: shuffled batch changed the ownership table\nwant %v\ngot  %v",
					trial, perm, wantLedger, ledger)
			}
			for k, n := range grants {
				if wantGrants[k] != n {
					t.Fatalf("trial %d perm %d: request %+v granted %d, want %d", trial, perm, k, n, wantGrants[k])
				}
			}
		}
	}
}

// checkDeterministicReplay replays one recorded operation history against
// two fresh pools and requires identical ledgers after every step.
func checkDeterministicReplay(t *testing.T, mk func() *fabric.Pool) {
	a, b := mk(), mk()
	nh := hosts(a)
	if nh == 0 || a.Capacity() == 0 {
		t.Skip("degenerate pool")
	}
	rng := rand.New(rand.NewSource(13))
	for op := 0; op < 200; op++ {
		h := rng.Intn(nh)
		n := rng.Intn(3) + 1
		if rng.Intn(3) == 0 {
			if ra, rb := a.Reclaim(h, n), b.Reclaim(h, n); ra != rb {
				t.Fatalf("op %d: replay reclaimed %d vs %d", op, ra, rb)
			}
		} else {
			if ga, gb := a.Grant(h, n), b.Grant(h, n); ga != gb {
				t.Fatalf("op %d: replay granted %d vs %d", op, ga, gb)
			}
		}
		if !equalInts(ledgerState(a), ledgerState(b)) {
			t.Fatalf("op %d: replayed ledgers diverged\n a %v\n b %v", op, ledgerState(a), ledgerState(b))
		}
	}
}

// checkLowestIndex pins the tie-break rule itself: grants take the lowest
// free indices, reclaims free the lowest owned ones. The rule is what makes
// the ledger a pure function of history — any "first fit found" drift shows
// up here as a hole in the prefix.
func checkLowestIndex(t *testing.T, p *fabric.Pool) {
	nh := hosts(p)
	if nh == 0 || p.Capacity() < 4 {
		t.Skip("degenerate pool")
	}
	if got := p.Grant(0, 3); got != 3 {
		t.Fatalf("granted %d of 3 from a free pool", got)
	}
	for s := 0; s < 3; s++ {
		if p.Owner(s) != 0 {
			t.Fatalf("slab %d owner %d, want 0 (lowest-index grant)", s, p.Owner(s))
		}
	}
	p.Reclaim(0, 2) // frees slabs 0 and 1, host 0 keeps slab 2
	if p.Owner(0) != -1 || p.Owner(1) != -1 || p.Owner(2) != 0 {
		t.Fatalf("reclaim freed wrong slabs: owners %v", ledgerState(p)[:3])
	}
	if got := p.Grant(nh-1, 1); got != 1 || p.Owner(0) != nh-1 {
		t.Fatalf("regrant skipped the lowest free slab: owners %v", ledgerState(p)[:3])
	}
}
