package conformance

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Every pool shape the cell constructor can produce inherits the ledger
// contract: small and large slab counts, single- and many-host, and the
// one-slab edge where every batch contends for the same slab.
func TestPoolConformance(t *testing.T) {
	shapes := []struct {
		name             string
		hosts, slabs, pp int
	}{
		{"small", 4, 16, 256},
		{"single-host", 1, 8, 64},
		{"many-hosts", 16, 64, 2048},
		{"one-slab", 4, 1, 512},
	}
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			Run(t, func() *fabric.Pool {
				return fabric.NewPool(sim.NewEngine(), s.name, s.hosts, s.slabs, s.pp)
			})
		})
	}
}

// A zero-slab pool (pooling off) must satisfy the contract vacuously: every
// grant returns 0 and the audit stays clean.
func TestZeroSlabPool(t *testing.T) {
	p := fabric.NewPool(sim.NewEngine(), "off", 4, 0, 256)
	if got := p.Grant(0, 5); got != 0 {
		t.Fatalf("zero-slab pool granted %d", got)
	}
	if err := p.Audit(); err != nil {
		t.Fatal(err)
	}
}
