package fabric

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/sim"
)

// Seeded-bug tests for the pool ledger: each plants a corruption a real
// allocator regression could introduce and requires the registered
// invariants (or the structural audit) to catch it.

// A grant scan that loses the free-slab check — handing a slab to a second
// host while another still owns it — must trip the no-double-grant
// invariant at the ownership write.
func TestSeededBugDoubleGrantCaught(t *testing.T) {
	p := NewPool(sim.NewEngine(), "bug", 2, 4, 128)
	if got := p.Grant(0, 2); got != 2 {
		t.Fatalf("setup grant: %d of 2", got)
	}

	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()

	// The seeded bug: a broken scan targets slab 0, which host 0 already
	// owns. grantSlab is the single ownership-write path, so the planted
	// write hits the same assertion a real regression would.
	p.grantSlab(0, 1)

	found := false
	for _, v := range violations {
		if v.Check == "fabric.pool.no-double-grant" {
			found = true
		}
	}
	if !found {
		t.Fatalf("double grant not caught; violations: %+v", violations)
	}
}

// A drifted per-host residency counter (phantom grant) must fail both the
// structural audit and the residency invariant on the next ledger mutation.
func TestSeededBugResidencyDriftCaught(t *testing.T) {
	p := NewPool(sim.NewEngine(), "bug", 2, 4, 128)
	p.Grant(0, 1)
	// The seeded bug: host 1 credited with a slab it never received.
	p.perHost[1]++

	if err := p.Audit(); err == nil {
		t.Fatal("audit missed a drifted residency counter")
	}

	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()
	p.Grant(0, 1) // any mutation re-evaluates the conservation law
	found := false
	for _, v := range violations {
		if v.Check == "fabric.pool.host-residency" {
			found = true
		}
	}
	if !found {
		t.Fatalf("residency drift not caught; violations: %+v", violations)
	}
}

// A leaked free counter (slab freed twice) must trip the capacity invariant
// once it pushes granted out of range, and fail the audit immediately.
func TestSeededBugFreeCounterLeakCaught(t *testing.T) {
	p := NewPool(sim.NewEngine(), "bug", 2, 2, 128)
	p.Grant(0, 2)
	// The seeded bug: a double release bumps free without returning a slab.
	p.free += 3

	if err := p.Audit(); err == nil {
		t.Fatal("audit missed a leaked free counter")
	}

	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) { violations = append(violations, v) })
	defer restore()
	invariant.Enable()
	defer invariant.Disable()
	p.Reclaim(0, 1)
	found := false
	for _, v := range violations {
		if v.Check == "fabric.pool.grants-within-capacity" {
			found = true
		}
	}
	if !found {
		t.Fatalf("free-counter leak not caught; violations: %+v", violations)
	}
}
