package fabric

import (
	"strings"
	"testing"
)

func TestParseSpecValid(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"hosts=4", Spec{Hosts: 4, Pool: 1, Slab: 2048, Hops: 1, Placer: PlacerFabric}},
		{"hosts=1,pool=0", Spec{Hosts: 1, Pool: 0, Slab: 2048, Hops: 1, Placer: PlacerFabric}},
		{"hosts=8,pool=2,hops=2", Spec{Hosts: 8, Pool: 2, Slab: 2048, Hops: 2, Placer: PlacerFabric}},
		{"hosts=2,pool=0.5,placer=host", Spec{Hosts: 2, Pool: 0.5, Slab: 2048, Hops: 1, Placer: PlacerHost}},
		{"slab=16,hosts=64,hops=0", Spec{Hosts: 64, Pool: 1, Slab: 16, Hops: 0, Placer: PlacerFabric}},
		{"hosts=3,pool=16,slab=1048576,hops=8", Spec{Hosts: 3, Pool: 16, Slab: 1 << 20, Hops: 8, Placer: PlacerFabric}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in, wantErr string
	}{
		{"", "empty"},
		{"pool=1", "hosts is required"},
		{"hosts", "not key=value"},
		{"hosts=0", "must be in [1, 64]"},
		{"hosts=65", "must be in [1, 64]"},
		{"hosts=four", "not an integer"},
		{"hosts=4,hosts=8", "duplicate field"},
		{"hosts=4,pool=-1", "pool ratio must be in"},
		{"hosts=4,pool=17", "pool ratio must be in"},
		{"hosts=4,pool=NaN", "pool ratio"},
		{"hosts=4,pool=x", "not a number"},
		{"hosts=4,slab=8", "must be in [16, 1048576]"},
		{"hosts=4,slab=2097152", "must be in [16, 1048576]"},
		{"hosts=4,hops=9", "must be in [0, 8]"},
		{"hosts=4,hops=-1", "must be in [0, 8]"},
		{"hosts=4,placer=switch", "placer must be"},
		{"hosts=4,rack=2", "unknown field"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): no error, want %q", c.in, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseSpec(%q) error %q, want substring %q", c.in, err, c.wantErr)
		}
	}
}

func TestSpecStringFixpoint(t *testing.T) {
	for _, in := range []string{"hosts=4", "hosts=8,pool=0.25,slab=64,hops=3,placer=host", "hosts=1,pool=0"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q does not re-parse: %v", canon, err)
		}
		if s2 != s || s2.String() != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", in, canon, s2.String())
		}
	}
}

func TestDefaultSpecIsCanonical(t *testing.T) {
	d := DefaultSpec()
	s, err := ParseSpec(d.String())
	if err != nil || s != d {
		t.Fatalf("DefaultSpec round trip: %+v -> %q -> (%+v, %v)", d, d.String(), s, err)
	}
	if !strings.Contains(Usage(), "hosts=N") {
		t.Fatalf("usage %q lost the grammar", Usage())
	}
}

// FuzzFabricTopology locks the parser: no input panics, and every accepted
// spec canonicalizes to a fixpoint (parse → String → parse is identity).
func FuzzFabricTopology(f *testing.F) {
	for _, s := range []string{
		"hosts=4", "hosts=8,pool=2,hops=2", "hosts=2,pool=0.5,placer=host",
		"hosts=64,slab=16", "hosts=1,pool=0,hops=0", "hosts=3,pool=16,slab=1048576,hops=8",
		"", "nope", "hosts", "hosts=0", "hosts=4,pool=NaN", "hosts=4,hosts=4",
		"hosts=4,placer=switch", "hosts=4,rack=2", "hosts=4,pool=1e-3",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("accepted spec %q canonicalizes to %q, which does not re-parse: %v", spec, canon, err)
		}
		if s2 != s {
			t.Fatalf("canonical re-parse drifted: %q -> %+v vs %+v", spec, s2, s)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", spec, canon, s2.String())
		}
		if s.Hosts < 1 || s.Hosts > MaxHosts || s.Pool < 0 || s.Pool > MaxPool ||
			s.Slab < MinSlab || s.Slab > MaxSlab || s.Hops < 0 || s.Hops > MaxHops {
			t.Fatalf("accepted spec %q violates the documented ranges: %+v", spec, s)
		}
	})
}
