package fabric

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/workload"
)

// --- coherence ---

func TestCoherenceEpochSemantics(t *testing.T) {
	c := NewCoherence(0)
	id := c.Region(4)

	if d := c.Charge(id, 0, false); d != 0 {
		t.Fatalf("read charged %v", d)
	}
	want := DefaultBackInvalidation * 3
	if d := c.Charge(id, 0, true); d != want {
		t.Fatalf("first write charged %v, want %v", d, want)
	}
	if d := c.Charge(id, 0, true); d != 0 {
		t.Fatalf("same-writer write charged %v", d)
	}
	if d := c.Charge(id, 2, true); d != want {
		t.Fatalf("writer change charged %v, want %v", d, want)
	}
	if c.Epochs(id) != 2 || c.Cost(id) != 2*want {
		t.Fatalf("epochs %d cost %v, want 2 and %v", c.Epochs(id), c.Cost(id), 2*want)
	}
	if c.TotalEpochs() != 2 || c.TotalCost() != 2*want {
		t.Fatalf("totals %d/%v", c.TotalEpochs(), c.TotalCost())
	}
}

func TestCoherenceSingleSharerIsFree(t *testing.T) {
	c := NewCoherence(sim.Microsecond)
	id := c.Region(1)
	if d := c.Charge(id, 0, true); d != 0 {
		t.Fatalf("lone sharer charged %v", d)
	}
	if c.Epochs(id) != 1 {
		t.Fatalf("epoch not recorded: %d", c.Epochs(id))
	}
}

// --- cell helpers ---

// probeSpec is a small task that swaps enough to exercise the far path.
func probeSpec(pages int) workload.Spec {
	return workload.Spec{
		Name:             "probe",
		Class:            workload.Compute,
		FootprintPages:   pages,
		AnonFraction:     1,
		Coverage:         1,
		SegmentLen:       64,
		SeqShare:         0.5,
		RunLen:           4,
		HotShare:         1,
		HotProb:          0,
		WriteFraction:    0.3,
		ComputePerAccess: 2 * sim.Microsecond,
		MainAccesses:     2048,
		Threads:          1,
		SwapFeature:      'F',
	}
}

func testCellConfig(eng *sim.Engine, name string, pooled bool) Config {
	spec := DefaultSpec()
	spec.Hosts = 2
	spec.Slab = 64
	apps := []cluster.App{
		{Spec: probeSpec(256), Cores: 1},
		{Spec: func() workload.Spec { s := probeSpec(512); s.Name = "probe-fat"; return s }(), Cores: 1},
	}
	return Config{
		Eng:              eng,
		Name:             name,
		Spec:             spec,
		CoresPerHost:     2,
		DRAMPagesPerHost: 512,
		FarPagesPerHost:  128, // a fat probe's far share (256) must borrow
		Pooled:           pooled,
		Templates:        apps,
		Tasks:            4,
		LocalRatio:       0.5,
		Seed:             1,
	}
}

// --- cell ---

func TestCellPooledRunsToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	cell := NewCell(testCellConfig(eng, "cell", true))
	res := cell.Run()
	if res.Placed != 4 || res.Completed != 4 || res.Refused != 0 {
		t.Fatalf("placed %d completed %d refused %d, want 4/4/0", res.Placed, res.Completed, res.Refused)
	}
	if res.PoolGrants == 0 || res.PoolGrants != res.PoolReclaims {
		t.Fatalf("grants %d reclaims %d: fat probes must borrow and return", res.PoolGrants, res.PoolReclaims)
	}
	if res.WriterEpochs == 0 || res.CoherenceCost == 0 {
		t.Fatalf("pool grants opened no writer epochs (%d, %v)", res.WriterEpochs, res.CoherenceCost)
	}
	if err := cell.Pool().Audit(); err != nil {
		t.Fatal(err)
	}
	if cell.Pool().FreeSlabs() != cell.Pool().Capacity() {
		t.Fatalf("drained cell left %d slabs granted", cell.Pool().Capacity()-cell.Pool().FreeSlabs())
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
}

func TestCellStaticRefusesWhatCannotFit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCellConfig(eng, "cell", false)
	cfg.Spec.Pool = 0 // no ratio growth: fat probes (far 256 > 128) can never fit
	res := NewCell(cfg).Run()
	if res.Refused != 2 || res.Completed != 2 {
		t.Fatalf("refused %d completed %d, want 2 refused fat probes", res.Refused, res.Completed)
	}
	if res.PoolGrants != 0 {
		t.Fatalf("static cell granted %d slabs", res.PoolGrants)
	}
	if res.StrandedFrac <= 0 {
		t.Fatal("refusals with free far capacity must record stranding")
	}
}

func TestCellPoolZeroModesByteIdentical(t *testing.T) {
	run := func(pooled bool) Result {
		eng := sim.NewEngine()
		cfg := testCellConfig(eng, "cell", pooled)
		cfg.Spec.Pool = 0
		return NewCell(cfg).Run()
	}
	a, b := run(false), run(true)
	if a != b {
		t.Fatalf("pool=0 static and pooled cells diverge:\nstatic %+v\npooled %+v", a, b)
	}
}

func TestCellSwitchCrashDemotesPooledTasks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCellConfig(eng, "cell", true)
	for i := range cfg.Templates {
		cfg.Templates[i].Spec.MainAccesses = 1 << 20 // outlive the crash
	}
	cfg.RefetchPenalty = 100 * sim.Microsecond
	cell := NewCell(cfg)

	inj := faults.NewInjector(eng)
	inj.Register(cell.Switch())
	inj.Apply(faults.Schedule{Events: []faults.Event{
		{At: 5 * sim.Millisecond, Target: cell.Switch().Name(), Kind: faults.Crash},
	}})
	eng.RunUntil(eng.Now().Add(2 * sim.Second))

	if !cell.Switch().Down() {
		t.Fatal("switch not down after crash")
	}
	if cell.Demotions() == 0 {
		t.Fatal("no task demoted off the dead switch")
	}
	res := cell.Result()
	if res.LostPages == 0 {
		t.Fatal("demotion dropped no far copies")
	}
	if err := cell.Pool().Audit(); err != nil {
		t.Fatal(err)
	}
	if cell.Pool().FreeSlabs() != cell.Pool().Capacity() {
		t.Fatal("demoted tasks left slabs granted")
	}
	if cell.Accesses() == 0 {
		t.Fatal("demoted tasks stopped making progress on SSD")
	}
}

func TestCellStaticCrashNoDemotionPath(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCellConfig(eng, "cell", false)
	for i := range cfg.Templates {
		cfg.Templates[i].Spec.MainAccesses = 1 << 20
	}
	cell := NewCell(cfg)
	inj := faults.NewInjector(eng)
	inj.Register(cell.Switch())
	inj.Apply(faults.Schedule{Events: []faults.Event{
		{At: 5 * sim.Millisecond, Target: cell.Switch().Name(), Kind: faults.Crash},
	}})
	eng.RunUntil(eng.Now().Add(2 * sim.Second))
	if cell.Demotions() != 0 {
		t.Fatalf("static cell demoted %d tasks; it has no monitors", cell.Demotions())
	}
}

func TestCellConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"unconfigured-spec": func(c *Config) { c.Spec = Spec{} },
		"no-tasks":          func(c *Config) { c.Tasks = 0 },
		"no-templates":      func(c *Config) { c.Templates = nil },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := testCellConfig(sim.NewEngine(), "bad", true)
			mutate(&cfg)
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config did not panic")
				}
			}()
			NewCell(cfg)
		})
	}
}

// --- switch fault states ---

func TestSwitchFaultFanout(t *testing.T) {
	eng := sim.NewEngine()
	cell := NewCell(testCellConfig(eng, "cell", true))
	sw := cell.Switch()
	if sw.Hops() != DefaultSpec().Hops || len(sw.Ports()) != 2 {
		t.Fatalf("hops %d ports %d", sw.Hops(), len(sw.Ports()))
	}
	sw.Stall()
	for _, d := range sw.Ports() {
		if !d.Stalled() {
			t.Fatal("stall did not reach a port")
		}
	}
	sw.Recover()
	for _, d := range sw.Ports() {
		if d.Stalled() {
			t.Fatal("recover did not reach a port")
		}
	}
	sw.Degrade(2, 0.5)
	sw.Recover()
	sw.Fail()
	if !sw.Down() {
		t.Fatal("switch not down after Fail")
	}
	sw.Recover() // failed switches stay down
	sw.Stall()   // and further fault states are no-ops
	sw.Degrade(2, 0.5)
	for _, d := range sw.Ports() {
		if !d.Down() {
			t.Fatal("port recovered after permanent switch failure")
		}
	}
	if !strings.Contains(sw.Name(), "cell/sw") {
		t.Fatalf("switch name %q", sw.Name())
	}
	if sw.Fabric() == nil {
		t.Fatal("switch fabric not exposed")
	}
}

// --- in-fabric placer ---

func extCandidates() []place.Candidate {
	return []place.Candidate{
		{ID: 0, FreeCores: 4, FreePages: 64, FarFree: 100, PoolFree: 512},
		{ID: 1, FreeCores: 4, FreePages: 64, FarFree: 300, PoolFree: 512},
		{ID: 2, FreeCores: 4, FreePages: 64, FarFree: 260, PoolFree: 512},
	}
}

func TestPoolExtenderRespectsPrivateFit(t *testing.T) {
	p := NewPool(sim.NewEngine(), "p", 3, 4, 128)
	ext := PoolExtender(p)
	// Chosen host 1 fits the request privately: never overridden, even
	// though host 2 would be a tighter fit.
	if got := ext.Extend(place.Request{FarPages: 250}, extCandidates(), 1); got != 1 {
		t.Fatalf("extender moved a privately-fitting choice to %d", got)
	}
}

func TestPoolExtenderPrefersPrivateOverPool(t *testing.T) {
	p := NewPool(sim.NewEngine(), "p", 3, 4, 128)
	ext := PoolExtender(p)
	// Chosen host 0 must borrow (100 < 250); hosts 1 and 2 fit privately.
	// Best-fit private leftover: host 2 (260-250=10) beats host 1 (50).
	if got := ext.Extend(place.Request{FarPages: 250}, extCandidates(), 0); got != 2 {
		t.Fatalf("extender chose %d, want tightest private fit 2", got)
	}
}

func TestPoolExtenderFewestSlabsThenLowestID(t *testing.T) {
	p := NewPool(sim.NewEngine(), "p", 3, 8, 128)
	ext := PoolExtender(p)
	cands := []place.Candidate{
		{ID: 0, FarFree: 0, PoolFree: 1024},
		{ID: 1, FarFree: 0, PoolFree: 1024},
	}
	// Every candidate borrows the same slab count: lowest ID wins.
	if got := ext.Extend(place.Request{FarPages: 200}, cands, 1); got != 0 {
		t.Fatalf("slab tie broke to %d, want lowest ID 0", got)
	}
	// A candidate whose PoolFree view cannot cover the spill is skipped.
	cands[0].PoolFree = 100
	if got := ext.Extend(place.Request{FarPages: 200}, cands, 1); got != 1 {
		t.Fatalf("extender chose starved candidate %d", got)
	}
}

func TestPoolExtenderNoFarDemandNoOp(t *testing.T) {
	p := NewPool(sim.NewEngine(), "p", 3, 4, 128)
	ext := PoolExtender(p)
	if got := ext.Extend(place.Request{FarPages: 0}, extCandidates(), 2); got != 2 {
		t.Fatalf("no-far request re-targeted to %d", got)
	}
	if got := ext.Extend(place.Request{FarPages: 10}, extCandidates(), -1); got != -1 {
		t.Fatal("extender invented a placement for a refused request")
	}
}

// --- pool (the conformance harness exercises the contract cross-package;
// these pin the in-package surface and the constructor guards) ---

func TestPoolGrantBatchCanonicalOrder(t *testing.T) {
	p := NewPool(sim.NewEngine(), "p", 3, 4, 128)
	if p.Name() != "p" || p.SlabPages() != 128 {
		t.Fatalf("identity: %q/%d", p.Name(), p.SlabPages())
	}
	// Three same-instant requests for 4 slabs total capacity: canonical
	// (Seq, Host, Slabs) order serves seq 1 first, then host 0 before host
	// 2, leaving the last request short.
	out := p.GrantBatch([]GrantRequest{
		{Host: 2, Seq: 2, Slabs: 2},
		{Host: 1, Seq: 1, Slabs: 2},
		{Host: 0, Seq: 2, Slabs: 2},
	})
	if out[1] != 2 || out[2] != 2 || out[0] != 0 {
		t.Fatalf("batch grants %v, want [0 2 2]", out)
	}
	if p.Granted(1) != 2 || p.Granted(0) != 2 || p.Granted(2) != 0 {
		t.Fatalf("residency %d/%d/%d", p.Granted(0), p.Granted(1), p.Granted(2))
	}
	if p.Owner(0) != 1 || p.Owner(1) != 1 || p.Owner(2) != 0 || p.Owner(3) != 0 {
		t.Fatal("canonical order did not decide slab ownership")
	}
	if n := p.ReclaimAll(1); n != 2 || p.FreeSlabs() != 2 {
		t.Fatalf("ReclaimAll returned %d, free %d", n, p.FreeSlabs())
	}
	if err := p.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolConstructorGuards(t *testing.T) {
	for name, build := range map[string]func(){
		"zero-hosts":     func() { NewPool(sim.NewEngine(), "p", 0, 4, 128) },
		"negative-slabs": func() { NewPool(sim.NewEngine(), "p", 2, -1, 128) },
		"zero-slab-size": func() { NewPool(sim.NewEngine(), "p", 2, 4, 0) },
		"bad-host":       func() { NewPool(sim.NewEngine(), "p", 2, 4, 128).Grant(7, 1) },
		"bad-region":     func() { NewCoherence(0).Region(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			build()
		})
	}
}
