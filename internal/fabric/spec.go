// Package fabric models the next fabric generation past the per-host device
// zoo: a CXL 2.0/3.0 switch with multi-host pooled memory. A Pool is a
// DCD-style slab ledger (dynamic capacity grant/reclaim across host ports),
// a Switch is the shared data path (per-hop latency, per-link bandwidth
// arbitration layered on the pcie fluid-flow arbiter), Coherence charges
// back-invalidation for shared-region writer changes, and a Cell composes N
// hosts around one switch so pool-stranding and fabric-failover scenarios
// can run against the same placement pipeline the rest of the simulator
// uses. Structure is grounded in CXL-DMSim's switched-path latency model and
// MIND's in-network allocation (PAPERS.md); see DESIGN.md §11.
package fabric

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The -fabric topology grammar. A spec is a comma-separated field list:
//
//	FABRIC := FIELD ( "," FIELD )*
//	FIELD  := "hosts=" N      host ports on the switch, in [1, 64] (required)
//	        | "pool=" R       pool:host far-capacity ratio, in [0, 16]
//	        | "slab=" P       DCD grant granularity in pages, in [16, 1048576]
//	        | "hops=" H       switch hops on the pooled path, in [0, 8]
//	        | "placer=" WHERE "fabric" (in-switch allocator) or "host"
//
// Defaults: pool=1, slab=2048, hops=1, placer=fabric. Examples:
// "hosts=4", "hosts=8,pool=2,hops=2", "hosts=2,pool=0.5,placer=host".
//
// ParseSpec validates strictly (unknown or duplicate fields, malformed or
// out-of-range numbers are errors) and the CLIs turn any error into a usage
// failure (exit 2). String renders every field in canonical order and
// re-parses to an identical spec (FuzzFabricTopology locks the fixpoint).

// Spec limits and defaults.
const (
	MaxHosts = 64
	MaxPool  = 16.0
	MinSlab  = 16
	MaxSlab  = 1 << 20
	MaxHops  = 8

	DefaultPool = 1.0
	DefaultSlab = 2048
	DefaultHops = 1
)

// Placer names where the pool-allocation decision lives.
const (
	PlacerFabric = "fabric" // MIND-style in-switch allocator (extender)
	PlacerHost   = "host"   // host-side policy only; pool grants follow it
)

// Spec is a parsed -fabric topology.
type Spec struct {
	// Hosts is the number of host ports sharing the switch.
	Hosts int
	// Pool is the pooled (DCD) far capacity as a ratio of the summed
	// per-host private far capacity: 0 disables pooling entirely.
	Pool float64
	// Slab is the DCD grant granularity in pages.
	Slab int
	// Hops is the number of switch hops between a host port and the pooled
	// memory device (0 = direct-attached, the single-host CXL shape).
	Hops int
	// Placer selects who decides where pooled capacity goes: the in-fabric
	// allocator (PlacerFabric) or the host-side placement policy (PlacerHost).
	Placer string
}

// DefaultSpec is the topology the experiments use when no -fabric flag is
// given: four hosts around one switch, pool sized 1:1 with private capacity.
func DefaultSpec() Spec {
	return Spec{Hosts: 4, Pool: DefaultPool, Slab: DefaultSlab, Hops: DefaultHops, Placer: PlacerFabric}
}

// ParseSpec compiles a -fabric topology spec.
func ParseSpec(spec string) (Spec, error) {
	if spec == "" {
		return Spec{}, fmt.Errorf("fabric spec is empty")
	}
	s := Spec{Hosts: -1, Pool: DefaultPool, Slab: DefaultSlab, Hops: DefaultHops, Placer: PlacerFabric}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fabric spec %q: field %q is not key=value", spec, field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("fabric spec %q: duplicate field %q", spec, key)
		}
		seen[key] = true
		switch key {
		case "hosts":
			n, err := parseInt(spec, key, val, 1, MaxHosts)
			if err != nil {
				return Spec{}, err
			}
			s.Hosts = n
		case "pool":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(r) || math.IsInf(r, 0) {
				return Spec{}, fmt.Errorf("fabric spec %q: pool ratio %q is not a number", spec, val)
			}
			if r < 0 || r > MaxPool {
				return Spec{}, fmt.Errorf("fabric spec %q: pool ratio must be in [0, %g] (got %g)", spec, MaxPool, r)
			}
			s.Pool = r
		case "slab":
			n, err := parseInt(spec, key, val, MinSlab, MaxSlab)
			if err != nil {
				return Spec{}, err
			}
			s.Slab = n
		case "hops":
			n, err := parseInt(spec, key, val, 0, MaxHops)
			if err != nil {
				return Spec{}, err
			}
			s.Hops = n
		case "placer":
			if val != PlacerFabric && val != PlacerHost {
				return Spec{}, fmt.Errorf("fabric spec %q: placer must be %s|%s (got %q)", spec, PlacerFabric, PlacerHost, val)
			}
			s.Placer = val
		default:
			return Spec{}, fmt.Errorf("fabric spec %q: unknown field %q (want hosts|pool|slab|hops|placer)", spec, key)
		}
	}
	if s.Hosts < 0 {
		return Spec{}, fmt.Errorf("fabric spec %q: hosts is required", spec)
	}
	return s, nil
}

func parseInt(spec, key, val string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("fabric spec %q: %s %q is not an integer", spec, key, val)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("fabric spec %q: %s must be in [%d, %d] (got %d)", spec, key, lo, hi, n)
	}
	return n, nil
}

// String renders the canonical spec: every field, fixed order. ParseSpec of
// the result yields an identical Spec.
func (s Spec) String() string {
	return fmt.Sprintf("hosts=%d,pool=%g,slab=%d,hops=%d,placer=%s",
		s.Hosts, s.Pool, s.Slab, s.Hops, s.Placer)
}

// Usage is the one-line grammar summary the CLIs print on a malformed spec.
func Usage() string {
	return "hosts=N[,pool=R][,slab=P][,hops=H][,placer=fabric|host]"
}
