// Package clustertrace generates synthetic cluster memory-utilization
// traces matched to the published statistics of the Alibaba 2017 and 2018
// production traces the paper uses for its scalability study (Fig 19):
// 48.95% mean memory utilization for 2017 (low pressure) and 87.05% for
// 2018 (high pressure). The real traces are multi-GB downloads; the MBE
// metric depends only on the utilization distribution, which the generator
// controls, so the substitution preserves the experiment.
package clustertrace

import (
	"math"
	"math/rand"
)

// Profile describes a trace's utilization distribution as a two-component
// Gaussian mixture: production clusters are rarely unimodal — the 2018
// trace in particular pairs a saturated majority with a cold minority,
// which is exactly the headroom memory balancing exploits.
type Profile struct {
	Name string

	// Frac1 is the weight of the first component; Mean1/Sd1 and Mean2/Sd2
	// parameterize the two components.
	Frac1      float64
	Mean1, Sd1 float64
	Mean2, Sd2 float64
}

// Mean reports the mixture mean.
func (p Profile) Mean() float64 {
	return p.Frac1*p.Mean1 + (1-p.Frac1)*p.Mean2
}

// Alibaba2017 matches the 2017 trace: low pressure (48.95% mean), a warm
// majority plus a cold minority — production clusters keep a pool of
// lightly-loaded machines.
func Alibaba2017() Profile {
	return Profile{
		Name:  "alibaba-2017",
		Frac1: 0.35, Mean1: 0.12, Sd1: 0.06,
		Mean2: 0.688, Sd2: 0.12,
	}
}

// Alibaba2018 matches the 2018 trace: high pressure (87.05% mean), a
// saturated majority plus a cold minority tail.
func Alibaba2018() Profile {
	return Profile{
		Name:  "alibaba-2018",
		Frac1: 0.15, Mean1: 0.17, Sd1: 0.08,
		Mean2: 0.994, Sd2: 0.02,
	}
}

// Snapshot draws per-machine memory utilizations for n machines. Values are
// clamped to [0.02, 0.995]; the empirical mean is re-centered onto the
// profile mean so small n still matches the published statistic.
func Snapshot(p Profile, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		var u float64
		if rng.Float64() < p.Frac1 {
			u = p.Mean1 + p.Sd1*rng.NormFloat64()
		} else {
			u = p.Mean2 + p.Sd2*rng.NormFloat64()
		}
		out[i] = u
		sum += u
	}
	shift := p.Mean() - sum/float64(n)
	for i := range out {
		out[i] = clamp(out[i]+shift, 0.02, 0.995)
	}
	return out
}

// Series generates a diurnal utilization time series for one machine:
// sinusoidal day cycle plus noise around the profile mean.
func Series(p Profile, points int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	phase := rng.Float64() * 2 * math.Pi
	amp := 0.1 + 0.1*rng.Float64()
	out := make([]float64, points)
	for i := range out {
		t := float64(i) / float64(points) * 2 * math.Pi
		u := p.Mean() + amp*math.Sin(t+phase) + 0.05*rng.NormFloat64()
		out[i] = clamp(u, 0.02, 0.995)
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mean reports the arithmetic mean of a utilization set.
func Mean(us []float64) float64 {
	if len(us) == 0 {
		return 0
	}
	s := 0.0
	for _, u := range us {
		s += u
	}
	return s / float64(len(us))
}
