package clustertrace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfileMeans(t *testing.T) {
	if m := Alibaba2017().Mean(); math.Abs(m-0.4895) > 0.005 {
		t.Fatalf("2017 profile mean %.4f, want 0.4895", m)
	}
	if m := Alibaba2018().Mean(); math.Abs(m-0.8705) > 0.005 {
		t.Fatalf("2018 profile mean %.4f, want 0.8705", m)
	}
}

func TestSnapshotRecentered(t *testing.T) {
	for _, p := range []Profile{Alibaba2017(), Alibaba2018()} {
		us := Snapshot(p, 3000, 11)
		if len(us) != 3000 {
			t.Fatalf("%s: wrong length", p.Name)
		}
		if m := Mean(us); math.Abs(m-p.Mean()) > 0.02 {
			t.Fatalf("%s: snapshot mean %.4f vs profile %.4f", p.Name, m, p.Mean())
		}
		for _, u := range us {
			if u < 0.02 || u > 0.995 {
				t.Fatalf("%s: utilization %v out of clamp range", p.Name, u)
			}
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a := Snapshot(Alibaba2018(), 500, 42)
	b := Snapshot(Alibaba2018(), 500, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("snapshots with same seed differ")
		}
	}
	c := Snapshot(Alibaba2018(), 500, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical snapshots")
	}
}

func Test2018IsBimodalHot(t *testing.T) {
	us := Snapshot(Alibaba2018(), 5000, 7)
	hot, cold := 0, 0
	for _, u := range us {
		if u > 0.9 {
			hot++
		}
		if u < 0.4 {
			cold++
		}
	}
	if hot < 3000 {
		t.Fatalf("2018 trace should have a saturated majority, got %d/5000 > 0.9", hot)
	}
	if cold < 300 {
		t.Fatalf("2018 trace should keep a cold minority, got %d/5000 < 0.4", cold)
	}
}

func TestSeries(t *testing.T) {
	s := Series(Alibaba2017(), 288, 5)
	if len(s) != 288 {
		t.Fatal("series length")
	}
	for _, u := range s {
		if u < 0.02 || u > 0.995 {
			t.Fatalf("series value %v out of range", u)
		}
	}
	// Diurnal cycle: the series must actually vary.
	lo, hi := s[0], s[0]
	for _, u := range s {
		lo, hi = math.Min(lo, u), math.Max(hi, u)
	}
	if hi-lo < 0.05 {
		t.Fatal("series shows no diurnal variation")
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if m := Mean([]float64{0.2, 0.4}); math.Abs(m-0.3) > 1e-12 {
		t.Fatalf("mean = %v, want 0.3", m)
	}
}

// Property: snapshots of any profile stay in range and match the profile
// mean for any seed and size.
func TestSnapshotProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		n := int(nSeed)*10 + 100
		us := Snapshot(Alibaba2017(), n, seed)
		if len(us) != n {
			return false
		}
		for _, u := range us {
			if u < 0.02 || u > 0.995 {
				return false
			}
		}
		return math.Abs(Mean(us)-0.4895) < 0.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(91))}); err != nil {
		t.Fatal(err)
	}
}
