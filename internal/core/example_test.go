package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The console end to end: fuse trace features, rank backends by MEI, and
// tune the transfer parameters for the winner.
func ExampleDecide() {
	// An anonymous-heavy, fairly sequential application (a Ligra-style
	// graph workload after offline profiling).
	features := trace.Features{
		FootprintPages: 16384,
		TouchedPages:   15000,
		AnonRatio:      0.92,
		LoadRatio:      0.8,
		SeqRatio:       0.55,
		MaxSeqRunPages: 40,
		FragmentRatio:  0.02,
		HotRatio:       0.2,
	}
	options := []core.BackendOption{
		core.OptionFromSpec(device.SpecTestbedSSD("ssd")),
		core.OptionFromSpec(device.SpecConnectX5("rdma")),
	}

	d := core.Decide(options, features, 100*sim.Nanosecond, 1.4)
	fmt.Println("backend:", d.Backend)
	fmt.Println("granularity (pages):", d.GranularityPages)
	fmt.Println("width:", d.Width)
	// Output:
	// backend: rdma
	// granularity (pages): 8
	// width: 2
}
