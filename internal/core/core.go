// Package core implements xDM's intelligence: the implicit far-memory
// switching strategy (MEI-ordered backend selection, Sec IV-A2) and the
// smart configuration console (characteristic fusion → multi-dimensional
// parameter adjustment, Sec IV-B).
//
// The inputs are page-trace features (package trace) and a catalog of
// available backend options; the outputs are a Decision: which backend to
// swap to, at what data granularity, with what I/O width, local-memory
// ratio, and NUMA policy. The mechanisms that *apply* decisions live in
// internal/vm (switchable swapper) and internal/cluster (Algorithm 1).
package core

import (
	"math"
	"sort"

	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// BackendOption describes one candidate far-memory backend to the decision
// logic. Build one per attachable device with OptionFromSpec.
type BackendOption struct {
	Name             string
	Kind             device.Kind
	Bandwidth        units.BytesPerSec
	ChannelBandwidth units.BytesPerSec
	OpLatency        sim.Duration
	RandomPenalty    sim.Duration
	CostPerGB        float64
	MaxWidth         int
	Available        bool
}

// OptionFromSpec derives a BackendOption from a device spec.
func OptionFromSpec(s device.Spec) BackendOption {
	return BackendOption{
		Name:             s.Name,
		Kind:             s.Kind,
		Bandwidth:        s.Bandwidth,
		ChannelBandwidth: s.ChannelBandwidth,
		OpLatency:        s.ReadLatency,
		RandomPenalty:    s.RandomPenalty,
		CostPerGB:        s.CostPerGB,
		MaxWidth:         16,
		Available:        true,
	}
}

// Decision is the console's full output for one application.
type Decision struct {
	// Backend is the selected option's name; Priority is the full
	// MEI-ordered preference list (highest first).
	Backend  string
	Priority []string
	// MEI records each option's memory effectiveness improvement score.
	MEI map[string]float64

	// GranularityPages is the tuned swap transfer unit (1..512 pages,
	// i.e. 4 KiB .. 2 MiB average page size via THP).
	GranularityPages int
	// Width is the tuned I/O width (channels / event queues).
	Width int
	// LocalRatio is the minimum local-memory share predicted to keep the
	// slowdown within the SLO.
	LocalRatio float64
	// NUMA is the local placement policy.
	NUMA mem.NUMAPolicy
	// UseTHP reports whether transparent huge pages are enabled
	// (granularity >= 512 pages of aggregation benefit).
	UseTHP bool
}

// Granularity candidates: power-of-two page counts from 4 KiB to 2 MiB.
var granularityCandidates = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Width candidates for the I/O width knob.
var widthCandidates = []int{1, 2, 4, 8, 16}

// perChannelOverhead mirrors the swap layer's channel management cost.
func perChannelOverhead(k device.Kind) sim.Duration {
	switch k {
	case device.SSD, device.HDD:
		return 2500 * sim.Nanosecond
	case device.RDMA, device.DPU:
		return 180 * sim.Nanosecond
	default:
		return 60 * sim.Nanosecond
	}
}

// usefulPages predicts how many of a g-page extent the task will consume
// before eviction: 1 demanded page plus prefetched pages useful in
// proportion to the sequential share, discounted by fragmentation (an
// extent spanning a segment boundary prefetches unmapped/cold data).
func usefulPages(f trace.Features, g int) float64 {
	if g <= 1 {
		return 1
	}
	segLen := math.MaxFloat64
	if f.FragmentRatio > 0 {
		segLen = 1 / f.FragmentRatio
	}
	contiguity := 1.0
	if segLen < math.MaxFloat64 {
		contiguity = segLen / (segLen + float64(g)/2)
	}
	u := f.SeqRatio * contiguity
	return 1 + float64(g-1)*u
}

// refaultRisk is the modeled probability that a page displaced by a wasted
// prefetch is demanded again and must be re-fetched. It internalizes the
// I/O-amplification externality into the granularity choice.
const refaultRisk = 0.35

// PredictPageCost estimates the amortized swap-in cost per *useful* page on
// opt with granularity g and width w, including the displacement cost of
// wasted prefetches. This is the console's cost model; the experiments
// validate it against simulated outcomes.
func PredictPageCost(opt BackendOption, f trace.Features, g, w int) sim.Duration {
	if g < 1 {
		g = 1
	}
	if w < 1 {
		w = 1
	}
	bw := float64(opt.Bandwidth)
	if opt.ChannelBandwidth > 0 {
		cbw := float64(opt.ChannelBandwidth) * float64(w)
		if cbw < bw {
			bw = cbw
		}
	}
	transfer := sim.DurationOf(float64(int64(g)*units.PageSize) / bw)
	op := opt.OpLatency + sim.Duration(w-1)*perChannelOverhead(opt.Kind)
	// Random-access penalty applies to the share of ops that do not continue
	// a sequential run.
	op += sim.Duration(float64(opt.RandomPenalty) * (1 - f.SeqRatio))
	useful := usefulPages(f, g)

	// Each wasted prefetched page displaces a resident page that may refault
	// at single-page demand cost.
	wasted := float64(g) - useful
	singleBW := float64(opt.Bandwidth)
	if opt.ChannelBandwidth > 0 && float64(opt.ChannelBandwidth) < singleBW {
		singleBW = float64(opt.ChannelBandwidth)
	}
	demand4K := float64(opt.OpLatency) + float64(sim.DurationOf(float64(units.PageSize)/singleBW))
	amplification := wasted * refaultRisk * demand4K

	return sim.Duration((float64(op+transfer) + amplification) / useful)
}

// TuneTransfer picks the (granularity, width) pair minimizing predicted
// amortized cost for opt under features f, with no local-memory budget
// constraint. Prefer TuneTransferBudget when the budget is known.
func TuneTransfer(opt BackendOption, f trace.Features) (g, w int) {
	return TuneTransferBudget(opt, f, math.MaxInt32)
}

// TuneTransferBudget is TuneTransfer constrained by the task's local-memory
// budget in pages: an extent must stay a small fraction of local memory or
// every prefetch evicts data about to be used (thrashing). The cap is
// budget/16, so at most ~6% of local memory turns over per fault.
func TuneTransferBudget(opt BackendOption, f trace.Features, budgetPages int) (g, w int) {
	maxG := budgetPages / 16
	if maxG < 1 {
		maxG = 1
	}
	best := sim.Duration(math.MaxInt64)
	g, w = 1, 1
	maxW := opt.MaxWidth
	if maxW < 1 {
		maxW = 1
	}
	for _, gc := range granularityCandidates {
		if gc > maxG {
			break
		}
		for _, wc := range widthCandidates {
			if wc > maxW {
				continue
			}
			c := PredictPageCost(opt, f, gc, wc)
			if c < best {
				best, g, w = c, gc, wc
			}
		}
	}
	return g, w
}

// NormalizedCost maps $/GB-class hardware cost onto the MEI denominator.
// Provisioned far-memory cost grows far slower than raw $/GB (RDMA far
// memory borrows idle DRAM already paid for), so a log scale anchored at
// SSD cost = 1 is used; the floor keeps disk-class media from being scored
// as nearly free (their operational cost is not).
func NormalizedCost(costPerGB float64) float64 {
	const ssdCost = 0.10
	c := 1 + math.Log10(costPerGB/ssdCost)
	if c < 0.8 {
		c = 0.8
	}
	return c
}

// fileServiceCost is the per-miss cost of file refaults, which always go to
// node-local storage regardless of the swap backend. Random file misses pay
// the device operation, readahead amplification, and queueing behind
// concurrent threads, which is why this is several times a bare SSD
// operation.
const fileServiceCost = 250 * sim.Microsecond

// PredictRuntimeShare estimates the relative per-access time of running f
// with far ratio farRatio on backend opt (tuned), combining compute, the
// anonymous swap share, and the backend-independent file share. Used to
// compare backends, so constant factors cancel.
// localAccessCost is the DRAM latency added per resident access.
const localAccessCost = 80 * sim.Nanosecond

func PredictRuntimeShare(opt BackendOption, f trace.Features, computePerAccess sim.Duration, farRatio float64) float64 {
	g, w := TuneTransfer(opt, f)
	pageCost := PredictPageCost(opt, f, g, w)
	// Miss probability per access: the share of accesses falling outside
	// what local memory holds (hotHitShare already accounts for the local
	// size). Sequential sweeps are harder on the LRU than random traffic —
	// a cyclic sweep refaults everything beyond local memory — so the
	// sequential share carries a thrash boost.
	coldShare := 1 - hotHitShare(f, 1-farRatio)
	missRate := coldShare * (1 + 0.5*f.SeqRatio)
	if missRate > 1 {
		missRate = 1
	}
	// Split misses by where the traffic actually lands (measured), not by
	// the page-type ratio: a serving phase can be 100% anonymous over a
	// half-file address space.
	fileShare := f.FileTrafficRatio
	anonMiss := missRate * (1 - fileShare)
	fileMiss := missRate * fileShare
	return float64(computePerAccess) + float64(localAccessCost) +
		anonMiss*float64(pageCost) +
		fileMiss*float64(fileServiceCost)
}

// hotHitShare estimates the share of accesses served by a local share of
// localRatio given the measured hot ratio: if local memory covers the hot
// set, 80% of accesses (the hot coverage) hit it; extra local memory
// absorbs the uniform remainder proportionally.
func hotHitShare(f trace.Features, localRatio float64) float64 {
	if f.HotRatio <= 0 {
		return localRatio
	}
	if localRatio >= 1 {
		return 1
	}
	if localRatio <= f.HotRatio {
		return 0.8 * localRatio / f.HotRatio
	}
	coldSpan := 1 - f.HotRatio
	if coldSpan <= 0 {
		return 1
	}
	return 0.8 + 0.2*(localRatio-f.HotRatio)/coldSpan
}

// SelectBackend computes MEI for every available option and returns the
// MEI-ordered priority list. MEI(b) = (runtime improvement over the slowest
// available option) / normalized device cost — the paper's "memory
// effectiveness improvement" metric.
func SelectBackend(opts []BackendOption, f trace.Features, computePerAccess sim.Duration, farRatio float64) (priority []string, mei map[string]float64) {
	mei = make(map[string]float64)
	worst := 0.0
	shares := make(map[string]float64)
	for _, o := range opts {
		if !o.Available {
			continue
		}
		s := PredictRuntimeShare(o, f, computePerAccess, farRatio)
		shares[o.Name] = s
		if s > worst {
			worst = s
		}
	}
	for name, s := range shares {
		var opt BackendOption
		for _, o := range opts {
			if o.Name == name {
				opt = o
				break
			}
		}
		improvement := worst / s
		mei[name] = improvement / NormalizedCost(opt.CostPerGB)
	}
	priority = make([]string, 0, len(mei))
	for name := range mei {
		priority = append(priority, name)
	}
	sort.Slice(priority, func(i, j int) bool {
		if mei[priority[i]] != mei[priority[j]] {
			return mei[priority[i]] > mei[priority[j]]
		}
		return priority[i] < priority[j]
	})
	return priority, mei
}

// FailoverTarget extends MEI-based selection into failure-aware switching:
// given the MEI priority order, the backend being demoted, and a health
// predicate, it returns the best-ranked healthy alternative. The demoted
// backend is excluded even if healthy reports it alive — demotion is the
// caller's decision and this function must not argue with it. ok is false
// when no healthy alternative exists (the caller keeps limping on the
// current backend rather than switching to nothing).
func FailoverTarget(priority []string, demoted string, healthy func(name string) bool) (name string, ok bool) {
	for _, cand := range priority {
		if cand == demoted {
			continue
		}
		if healthy == nil || healthy(cand) {
			return cand, true
		}
	}
	return "", false
}

// sloMargin discounts the SLO budget the console plans against: the
// analytic model omits queueing, reclaim CPU, and co-location contention,
// so only this fraction of the slack is spent at planning time.
const sloMargin = 0.6

// MinLocalRatio estimates the smallest local-memory share keeping predicted
// runtime within slo × the no-swap runtime (slo >= 1). It returns a value
// in [0.1, 1]. Only sloMargin of the SLO slack is planned away, leaving
// headroom for effects outside the model.
func MinLocalRatio(opt BackendOption, f trace.Features, computePerAccess sim.Duration, slo float64) float64 {
	if slo < 1 {
		slo = 1
	}
	budget := 1 + (slo-1)*sloMargin
	base := PredictRuntimeShare(opt, f, computePerAccess, 0)
	for local := 0.1; local < 1.0; local += 0.05 {
		r := PredictRuntimeShare(opt, f, computePerAccess, 1-local)
		if r <= base*budget {
			return local
		}
	}
	return 1
}

// ChooseNUMA picks the placement policy: memory-latency-sensitive tasks
// (low compute per access, high sequential locality) are bound to the local
// socket; insensitive tasks can spread for load balance (Fig 12).
func ChooseNUMA(f trace.Features, computePerAccess sim.Duration) mem.NUMAPolicy {
	if computePerAccess >= 200*sim.Nanosecond {
		// Compute-bound: a remote hop is noise; allow balancing.
		return mem.Interleave
	}
	return mem.BindLocal
}

// Decide runs the full console pipeline: backend selection, transfer
// tuning on the winner, local-ratio sizing against the SLO, and NUMA
// policy.
func Decide(opts []BackendOption, f trace.Features, computePerAccess sim.Duration, slo float64) Decision {
	priority, mei := SelectBackend(opts, f, computePerAccess, 0.5)
	d := Decision{Priority: priority, MEI: mei, NUMA: ChooseNUMA(f, computePerAccess)}
	if len(priority) == 0 {
		d.GranularityPages, d.Width, d.LocalRatio = 1, 1, 1
		return d
	}
	d.Backend = priority[0]
	var chosen BackendOption
	for _, o := range opts {
		if o.Name == d.Backend {
			chosen = o
			break
		}
	}
	d.GranularityPages, d.Width = TuneTransfer(chosen, f)
	d.UseTHP = d.GranularityPages >= 64
	d.LocalRatio = MinLocalRatio(chosen, f, computePerAccess, slo)
	return d
}
