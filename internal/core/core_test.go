package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/trace"
)

func options() []BackendOption {
	return []BackendOption{
		OptionFromSpec(device.SpecTestbedSSD("ssd")),
		OptionFromSpec(device.SpecConnectX5("rdma")),
		OptionFromSpec(device.SpecRemoteDRAM("dram")),
	}
}

func seqFeatures() trace.Features {
	return trace.Features{
		FootprintPages: 16384, TouchedPages: 16384, AnonRatio: 0.95,
		LoadRatio: 0.8, SeqRatio: 0.9, MaxSeqRunPages: 300,
		FragmentRatio: 0.001, HotRatio: 0.3,
	}
}

func randFeatures() trace.Features {
	return trace.Features{
		FootprintPages: 16384, TouchedPages: 14000, AnonRatio: 0.5,
		LoadRatio: 0.85, SeqRatio: 0.2, MaxSeqRunPages: 8,
		FragmentRatio: 0.2, HotRatio: 0.15,
	}
}

func TestTuneTransferSequentialPicksLargeGrain(t *testing.T) {
	rdma := OptionFromSpec(device.SpecConnectX5("rdma"))
	g, w := TuneTransfer(rdma, seqFeatures())
	if g < 16 {
		t.Fatalf("sequential workload got granularity %d, want >= 16", g)
	}
	if w < 2 {
		t.Fatalf("sequential workload got width %d, want >= 2", w)
	}
}

func TestTuneTransferRandomPicksSmallGrain(t *testing.T) {
	ssd := OptionFromSpec(device.SpecTestbedSSD("ssd"))
	g, _ := TuneTransfer(ssd, randFeatures())
	if g > 8 {
		t.Fatalf("random workload got granularity %d, want <= 8", g)
	}
}

func TestPredictPageCostMonotoneInBackendSpeed(t *testing.T) {
	f := seqFeatures()
	ssd := PredictPageCost(OptionFromSpec(device.SpecTestbedSSD("ssd")), f, 1, 1)
	rdma := PredictPageCost(OptionFromSpec(device.SpecConnectX5("rdma")), f, 1, 1)
	dram := PredictPageCost(OptionFromSpec(device.SpecRemoteDRAM("dram")), f, 1, 1)
	if !(dram < rdma && rdma < ssd) {
		t.Fatalf("cost ordering violated: dram=%v rdma=%v ssd=%v", dram, rdma, ssd)
	}
}

// Fig 8's core claim: anonymous-heavy workloads prefer RDMA; file-heavy
// workloads prefer SSD.
func TestBackendPreferenceByAnonRatio(t *testing.T) {
	opts := []BackendOption{
		OptionFromSpec(device.SpecTestbedSSD("ssd")),
		OptionFromSpec(device.SpecConnectX5("rdma")),
	}
	anonHeavy := seqFeatures()
	anonHeavy.AnonRatio = 0.95
	anonHeavy.FileTrafficRatio = 0.05
	anonHeavy.SeqRatio = 0.5
	anonHeavy.FragmentRatio = 0.01
	pri, mei := SelectBackend(opts, anonHeavy, 80*sim.Nanosecond, 0.5)
	if pri[0] != "rdma" {
		t.Fatalf("anon-heavy priority %v (MEI %v), want rdma first", pri, mei)
	}

	fileHeavy := anonHeavy
	fileHeavy.AnonRatio = 0.3
	fileHeavy.FileTrafficRatio = 0.7
	pri, mei = SelectBackend(opts, fileHeavy, 80*sim.Nanosecond, 0.5)
	if pri[0] != "ssd" {
		t.Fatalf("file-heavy priority %v (MEI %v), want ssd first", pri, mei)
	}
}

func TestUnavailableBackendExcluded(t *testing.T) {
	opts := options()
	for i := range opts {
		if opts[i].Name == "rdma" {
			opts[i].Available = false
		}
	}
	pri, mei := SelectBackend(opts, seqFeatures(), 80*sim.Nanosecond, 0.5)
	if _, ok := mei["rdma"]; ok {
		t.Fatal("unavailable backend received an MEI score")
	}
	for _, name := range pri {
		if name == "rdma" {
			t.Fatal("unavailable backend in priority list")
		}
	}
}

func TestMinLocalRatioSLO(t *testing.T) {
	rdma := OptionFromSpec(device.SpecConnectX5("rdma"))
	f := seqFeatures()
	tight := MinLocalRatio(rdma, f, 100*sim.Nanosecond, 1.05)
	loose := MinLocalRatio(rdma, f, 100*sim.Nanosecond, 1.8)
	if loose > tight {
		t.Fatalf("looser SLO requires more memory: tight=%v loose=%v", tight, loose)
	}
	if tight <= 0 || tight > 1 || loose < 0.1 {
		t.Fatalf("ratios out of range: tight=%v loose=%v", tight, loose)
	}
}

func TestChooseNUMA(t *testing.T) {
	if ChooseNUMA(seqFeatures(), 50*sim.Nanosecond) != 0 { // BindLocal
		t.Fatal("memory-bound task should bind local")
	}
	if ChooseNUMA(seqFeatures(), 500*sim.Nanosecond) == 0 {
		t.Fatal("compute-bound task should allow interleave")
	}
}

func TestDecideFullPipeline(t *testing.T) {
	d := Decide(options(), seqFeatures(), 100*sim.Nanosecond, 1.3)
	if d.Backend == "" || len(d.Priority) != 3 {
		t.Fatalf("decision incomplete: %+v", d)
	}
	if d.GranularityPages < 1 || d.Width < 1 {
		t.Fatalf("untuned transfer: %+v", d)
	}
	if d.LocalRatio < 0.1 || d.LocalRatio > 1 {
		t.Fatalf("local ratio out of range: %v", d.LocalRatio)
	}
	if d.MEI[d.Backend] < d.MEI[d.Priority[len(d.Priority)-1]] {
		t.Fatal("selected backend does not have top MEI")
	}
}

func TestDecideNoBackends(t *testing.T) {
	d := Decide(nil, seqFeatures(), 100*sim.Nanosecond, 1.3)
	if d.Backend != "" || d.GranularityPages != 1 || d.LocalRatio != 1 {
		t.Fatalf("empty-catalog decision wrong: %+v", d)
	}
}

func TestUsefulPagesBounds(t *testing.T) {
	f := seqFeatures()
	if usefulPages(f, 1) != 1 {
		t.Fatal("g=1 must be exactly 1 useful page")
	}
	u := usefulPages(f, 64)
	if u <= 1 || u > 64 {
		t.Fatalf("useful pages %v out of (1, 64]", u)
	}
	frag := randFeatures()
	if usefulPages(frag, 64) >= u {
		t.Fatal("fragmented stream should predict fewer useful pages")
	}
}

// Property: MEI ordering is deterministic and complete for any feature
// vector, and every score is positive.
func TestSelectBackendProperty(t *testing.T) {
	f := func(seqSeed, anonSeed, fragSeed, hotSeed uint8) bool {
		ft := trace.Features{
			FootprintPages: 8192,
			TouchedPages:   8192,
			AnonRatio:      float64(anonSeed) / 255,
			SeqRatio:       float64(seqSeed) / 255,
			FragmentRatio:  float64(fragSeed) / 255,
			HotRatio:       float64(hotSeed) / 255 * 0.9,
			LoadRatio:      0.8,
		}
		pri, mei := SelectBackend(options(), ft, 100*sim.Nanosecond, 0.5)
		if len(pri) != 3 {
			return false
		}
		for i := 1; i < len(pri); i++ {
			if mei[pri[i-1]] < mei[pri[i]] {
				return false
			}
		}
		for _, v := range mei {
			if v <= 0 {
				return false
			}
		}
		// Determinism.
		pri2, _ := SelectBackend(options(), ft, 100*sim.Nanosecond, 0.5)
		for i := range pri {
			if pri[i] != pri2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Fatal(err)
	}
}

// Property: predicted cost per useful page never increases when the backend
// gets strictly faster at the same tuning point.
func TestPredictCostProperty(t *testing.T) {
	f := func(gSeed, wSeed uint8) bool {
		g := granularityCandidates[int(gSeed)%len(granularityCandidates)]
		w := widthCandidates[int(wSeed)%len(widthCandidates)]
		ft := seqFeatures()
		slow := OptionFromSpec(device.SpecTestbedSSD("ssd"))
		fast := slow
		fast.OpLatency /= 2
		fast.Bandwidth *= 2
		fast.ChannelBandwidth *= 2
		return PredictPageCost(fast, ft, g, w) <= PredictPageCost(slow, ft, g, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(72))}); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverTarget(t *testing.T) {
	priority := []string{"dram", "rdma", "ssd", "disk"}
	alive := map[string]bool{"rdma": true, "ssd": true}
	healthy := func(n string) bool { return alive[n] }

	if got, ok := FailoverTarget(priority, "dram", healthy); !ok || got != "rdma" {
		t.Fatalf("FailoverTarget = %q,%v, want rdma", got, ok)
	}
	// The demoted backend is excluded even if the health probe likes it.
	if got, ok := FailoverTarget(priority, "rdma", func(string) bool { return true }); !ok || got != "dram" {
		t.Fatalf("FailoverTarget = %q,%v, want dram", got, ok)
	}
	if got, ok := FailoverTarget(priority, "rdma", healthy); !ok || got != "ssd" {
		t.Fatalf("FailoverTarget = %q,%v, want ssd", got, ok)
	}
	// Nothing healthy: no target.
	if _, ok := FailoverTarget(priority, "rdma", func(string) bool { return false }); ok {
		t.Fatal("FailoverTarget found a target with nothing healthy")
	}
	// Nil healthy accepts the first non-demoted entry.
	if got, ok := FailoverTarget(priority, "dram", nil); !ok || got != "rdma" {
		t.Fatalf("FailoverTarget = %q,%v with nil healthy, want rdma", got, ok)
	}
}
