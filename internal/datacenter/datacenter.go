// Package datacenter models the multi-node deployment the paper targets:
// server nodes connected by a cluster network, where memory-pressured nodes
// borrow idle DRAM from underutilized peers as inter-node far memory
// (RDMA-reached remote DRAM, the Fastswap/Infiniswap/XMemPod substrate) in
// addition to their node-local backends.
//
// The network is the same fluid-flow model as the PCIe fabric: each node
// has a NIC link, and all traffic crosses a shared switch, so remote-memory
// bandwidth contends exactly where it does in a real rack.
package datacenter

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/units"
	"repro/internal/vm"
)

// Node is one server: a machine (with its local far-memory devices), a NIC
// on the cluster network, and donated-memory accounting.
type Node struct {
	Name    string
	Machine *vm.Machine
	nic     *pcie.Link

	// DonatedPages is memory this node has lent to peers; BorrowedPages is
	// memory this node uses on peers.
	DonatedPages  int
	BorrowedPages int

	// crashed marks a dead node: it can neither lend nor serve leases, and
	// remote-memory ops against it are silently lost (the borrower's path
	// timeout notices, not the network).
	crashed bool
}

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return !n.crashed }

// MemUtilization reports the node's local memory utilization including
// donations (donated memory is pinned and unusable locally).
func (n *Node) MemUtilization() float64 {
	used := n.Machine.MemoryPages - n.Machine.FreePages() + n.DonatedPages
	return float64(used) / float64(n.Machine.MemoryPages)
}

// FreeForDonation reports pages the node can still lend.
func (n *Node) FreeForDonation() int {
	return n.Machine.FreePages() - n.DonatedPages
}

// Cluster is a set of nodes on one switch.
type Cluster struct {
	Eng    *sim.Engine
	fabric *pcie.Fabric
	sw     *pcie.Link
	nodes  []*Node
	leases []*RemoteMemory

	// Leases records active remote-memory leases for reporting.
	Leases int
}

// Config sizes a cluster.
type Config struct {
	Nodes        int
	CoresPerNode int
	PagesPerNode int
	// NICBandwidth per node (default 10 GB/s) and switch capacity
	// (default 40 GB/s).
	NICBandwidth    units.BytesPerSec
	SwitchBandwidth units.BytesPerSec
}

// New builds a cluster; each node gets a local SSD (file storage and
// SSD-backend swap).
func New(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("datacenter: need at least one node")
	}
	if cfg.NICBandwidth == 0 {
		cfg.NICBandwidth = units.GBps(10)
	}
	if cfg.SwitchBandwidth == 0 {
		cfg.SwitchBandwidth = units.GBps(40)
	}
	c := &Cluster{
		Eng:    eng,
		fabric: pcie.NewFabric(eng),
	}
	c.sw = c.fabric.NewLink("switch", cfg.SwitchBandwidth)
	for i := 0; i < cfg.Nodes; i++ {
		m := vm.NewMachine(eng, pcie.Gen4, 16, cfg.CoresPerNode, cfg.PagesPerNode)
		m.AttachDevice(device.SpecTestbedSSD("ssd"))
		n := &Node{
			Name:    fmt.Sprintf("node%d", i),
			Machine: m,
			nic:     c.fabric.NewLink(fmt.Sprintf("node%d/nic", i), cfg.NICBandwidth),
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Nodes lists the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// CrashNode kills node i: in-flight and future remote-memory ops against
// its donated DRAM are silently lost (borrowers recover via their path
// timeouts and re-fetch accounting), it stops being a lend candidate, and
// its borrowed leases stay pinned until returned by the failover logic.
// It returns the number of active leases whose donor just died.
func (c *Cluster) CrashNode(i int) int {
	n := c.nodes[i]
	if n.crashed {
		return 0
	}
	n.crashed = true
	affected := 0
	for _, l := range c.leases {
		if l.donor == n && l.pages > 0 {
			affected++
		}
	}
	return affected
}

// RecoverNode brings node i back (a reboot or repaired partition). Leases
// that were active when it crashed resume serving — borrowers that failed
// over in the meantime simply no longer use them.
func (c *Cluster) RecoverNode(i int) { c.nodes[i].crashed = false }

// DeadNodes lists the indices of crashed nodes, for excluding them from
// MBE balancing (BalanceSimConfig.Dead).
func (c *Cluster) DeadNodes() []int {
	var dead []int
	for i, n := range c.nodes {
		if n.crashed {
			dead = append(dead, i)
		}
	}
	return dead
}

// Utilizations snapshots every node's memory utilization.
func (c *Cluster) Utilizations() []float64 {
	out := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.MemUtilization()
	}
	return out
}

// RemoteMemory is a swap backend reaching a donor node's DRAM across the
// cluster network: borrower NIC → switch → donor NIC, plus the donor's
// memory service latency. It implements swap.Backend.
type RemoteMemory struct {
	cluster  *Cluster
	borrower *Node
	donor    *Node
	pages    int
	width    int
	inflight *sim.Resource
	name     string

	// DroppedOps counts ops lost to a crashed donor.
	DroppedOps uint64
}

// Donor exposes the lease's donor node (health checks).
func (r *RemoteMemory) Donor() *Node { return r.donor }

// remoteLatency is the one-sided RDMA read/write latency across the rack
// (NIC + switch hops), before payload streaming.
const remoteLatency = 3 * sim.Microsecond

// Lend pins pages of donor's DRAM for borrower and returns the remote
// memory backend reaching it. It fails if the donor lacks free memory.
func (c *Cluster) Lend(donor, borrower *Node, pages int) (*RemoteMemory, error) {
	if donor == borrower {
		return nil, fmt.Errorf("datacenter: node %s cannot lend to itself", donor.Name)
	}
	if donor.crashed {
		return nil, fmt.Errorf("datacenter: donor %s is down", donor.Name)
	}
	if borrower.crashed {
		return nil, fmt.Errorf("datacenter: borrower %s is down", borrower.Name)
	}
	if donor.FreeForDonation() < pages {
		return nil, fmt.Errorf("datacenter: %s has only %d pages to lend, %d requested",
			donor.Name, donor.FreeForDonation(), pages)
	}
	donor.DonatedPages += pages
	borrower.BorrowedPages += pages
	c.Leases++
	r := &RemoteMemory{
		cluster:  c,
		borrower: borrower,
		donor:    donor,
		pages:    pages,
		width:    4,
		inflight: sim.NewResource(c.Eng, 4),
		name:     fmt.Sprintf("remote-dram(%s->%s)", borrower.Name, donor.Name),
	}
	c.leases = append(c.leases, r)
	return r, nil
}

// Return releases the lease.
func (r *RemoteMemory) Return() {
	if r.pages == 0 {
		return
	}
	r.donor.DonatedPages -= r.pages
	r.borrower.BorrowedPages -= r.pages
	r.cluster.Leases--
	r.pages = 0
}

// Pages reports the leased capacity.
func (r *RemoteMemory) Pages() int { return r.pages }

// Name implements swap.Backend.
func (r *RemoteMemory) Name() string { return r.name }

// Kind implements swap.Backend.
func (r *RemoteMemory) Kind() device.Kind { return device.RemoteDRAM }

// CostPerGB implements swap.Backend: borrowed DRAM was already paid for;
// the marginal cost is the RDMA fabric share.
func (r *RemoteMemory) CostPerGB() float64 { return 1.0 }

// Bandwidth implements swap.Backend: bounded by the borrower's NIC.
func (r *RemoteMemory) Bandwidth() units.BytesPerSec { return r.borrower.nic.Capacity() }

// Width implements swap.Backend.
func (r *RemoteMemory) Width() int { return r.width }

// SetWidth implements swap.Backend.
func (r *RemoteMemory) SetWidth(w int) {
	if w < 1 {
		w = 1
	}
	r.width = w
	r.inflight.Resize(w)
}

// OpLatency reports the per-operation base latency, consumed by the
// configuration console when tuning this backend.
func (r *RemoteMemory) OpLatency() sim.Duration { return remoteLatency }

// Submit implements swap.Backend: the extent streams across borrower NIC,
// switch, and donor NIC at fair share. Ops against a crashed donor are
// silently lost — one-sided RDMA gets no NAK from a dead host, so only the
// borrower's path timeout (swap.RetryPolicy) notices.
func (r *RemoteMemory) Submit(ex swap.Extent, done func(lat sim.Duration)) {
	if ex.Pages <= 0 {
		panic("datacenter: extent with no pages")
	}
	if r.donor.crashed {
		r.DroppedOps++
		return
	}
	start := r.cluster.Eng.Now()
	r.inflight.Acquire(1, func() {
		if r.donor.crashed {
			r.inflight.Release(1)
			r.DroppedOps++
			return
		}
		r.cluster.Eng.After(remoteLatency, func() {
			path := []*pcie.Link{r.borrower.nic, r.cluster.sw, r.donor.nic}
			r.cluster.fabric.Transfer(ex.Bytes(), path, func(at sim.Time) {
				r.inflight.Release(1)
				if done != nil {
					done(at.Sub(start))
				}
			})
		})
	})
}

// Reserve consumes local memory on a node (a resident application), for
// building utilization scenarios. It returns an error if the node lacks
// the memory.
func (n *Node) Reserve(pages int) error {
	if n.Machine.FreePages()-n.DonatedPages < pages {
		return fmt.Errorf("datacenter: %s cannot reserve %d pages", n.Name, pages)
	}
	// Model residency as a VM-less allocation: create a placeholder VM
	// holding the pages.
	if v := n.Machine.CreateVM("resident", 0, pages, []string{"ssd"}, nil); v == nil {
		return fmt.Errorf("datacenter: %s reservation failed", n.Name)
	}
	return nil
}

var _ swap.Backend = (*RemoteMemory)(nil)
