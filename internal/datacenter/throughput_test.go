package datacenter

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/sim"
)

// TestArenaThroughputFloor is the CI throughput gate for the sharded kernel:
// a pinned 5000-node single-cell run must sustain at least the events/sec
// floor given by XDM_ARENA_EPS_FLOOR. Wall-clock gates are hostile to laptops
// and loaded machines, so the test is opt-in via the environment variable
// (CI sets a floor far under healthy hardware's rate; see .github/workflows).
func TestArenaThroughputFloor(t *testing.T) {
	floorStr := os.Getenv("XDM_ARENA_EPS_FLOOR")
	if floorStr == "" {
		t.Skip("set XDM_ARENA_EPS_FLOOR (events/sec) to enable the throughput gate")
	}
	floor, err := strconv.ParseFloat(floorStr, 64)
	if err != nil || floor <= 0 {
		t.Fatalf("XDM_ARENA_EPS_FLOOR=%q is not a positive number", floorStr)
	}

	cfg := ArenaConfig{
		Nodes:        5000,
		Shards:       8,
		ShardWorkers: 8,
		CoresPerNode: 4,
		PagesPerNode: 1024,
		XDM:          true,
		Templates:    arenaTestTemplates(),
		LocalRatio:   0.5,
		Tasks:        5000,
		SLO:          50 * sim.Millisecond,
		Seed:         1,
	}
	res := NewArena(cfg).Run()
	if res.Completed != cfg.Tasks {
		t.Fatalf("cell incomplete: %d of %d tasks", res.Completed, cfg.Tasks)
	}
	st := res.Stats
	if st.Wall <= 0 {
		t.Fatalf("no wall time recorded: %+v", st)
	}
	eps := float64(st.Events) / st.Wall.Seconds()
	t.Logf("5000-node cell: %d events in %v = %.0f events/sec (%.2fx effective shard parallelism)",
		st.Events, st.Wall, eps, st.Busy.Seconds()/st.Wall.Seconds())
	if eps < floor {
		t.Fatalf("throughput %.0f events/sec under the %.0f floor", eps, floor)
	}
}
