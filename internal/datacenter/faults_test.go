package datacenter

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/swap"
)

func TestCrashNodeBlocksLending(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 3)
	if n := c.CrashNode(1); n != 0 {
		t.Fatalf("crash with no leases affected %d, want 0", n)
	}
	if _, err := c.Lend(c.Node(1), c.Node(0), 128); err == nil {
		t.Fatal("dead donor accepted a lend")
	}
	if _, err := c.Lend(c.Node(0), c.Node(1), 128); err == nil {
		t.Fatal("dead borrower accepted a lend")
	}
	if got := c.DeadNodes(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("DeadNodes=%v, want [1]", got)
	}
	c.RecoverNode(1)
	if got := c.DeadNodes(); got != nil {
		t.Fatalf("DeadNodes=%v after recovery, want none", got)
	}
	if _, err := c.Lend(c.Node(1), c.Node(0), 128); err != nil {
		t.Fatalf("recovered node cannot lend: %v", err)
	}
}

func TestCrashNodeCountsAffectedLeases(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 3)
	if _, err := c.Lend(c.Node(0), c.Node(1), 256); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lend(c.Node(0), c.Node(2), 256); err != nil {
		t.Fatal(err)
	}
	returned, err := c.Lend(c.Node(1), c.Node(2), 256)
	if err != nil {
		t.Fatal(err)
	}
	returned.Return() // no longer active, must not count
	if n := c.CrashNode(0); n != 2 {
		t.Fatalf("crash affected %d leases, want 2", n)
	}
	if n := c.CrashNode(0); n != 0 {
		t.Fatalf("double crash affected %d leases, want 0", n)
	}
}

func TestRemoteMemoryDropsOpsOnDeadDonor(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	donor, borrower := c.Node(0), c.Node(1)
	rm, err := c.Lend(donor, borrower, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Donor() != donor {
		t.Fatal("Donor accessor wrong")
	}

	// Healthy op completes.
	ok := false
	rm.Submit(swap.Extent{Pages: 1}, func(sim.Duration) { ok = true })
	eng.Run()
	if !ok {
		t.Fatal("healthy remote op did not complete")
	}

	// Dead donor: one-sided RDMA gets no NAK — the op just vanishes.
	c.CrashNode(0)
	fired := false
	rm.Submit(swap.Extent{Pages: 1}, func(sim.Duration) { fired = true })
	eng.Run()
	if fired {
		t.Fatal("op against dead donor completed")
	}
	if rm.DroppedOps != 1 {
		t.Fatalf("DroppedOps=%d, want 1", rm.DroppedOps)
	}
}

func TestPathTimeoutNoticesDeadDonor(t *testing.T) {
	// The borrower's swap path, armed with the remote-DRAM retry policy, is
	// what detects the silent loss: the op fails through instead of hanging.
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	rm, err := c.Lend(c.Node(0), c.Node(1), 1024)
	if err != nil {
		t.Fatal(err)
	}
	p := swap.NewPath(eng, rm, swap.NewChannel(eng, "remote", 4))
	p.Retry = swap.DefaultRetryPolicy(rm.Kind())

	c.CrashNode(0)
	fired := false
	p.SwapIn(swap.Extent{Pages: 1}, func(sim.Duration) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("swap-in against dead donor hung despite retry policy")
	}
	if p.FailedOps.Value != 1 || p.Timeouts.Value == 0 {
		t.Fatalf("failed=%d timeouts=%d, want 1 failed op via timeouts",
			p.FailedOps.Value, p.Timeouts.Value)
	}
	if rm.DroppedOps == 0 {
		t.Fatal("remote memory recorded no dropped ops")
	}
}

func TestCrashedDonorLeaseResumesAfterRecovery(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	rm, err := c.Lend(c.Node(0), c.Node(1), 1024)
	if err != nil {
		t.Fatal(err)
	}
	c.CrashNode(0)
	c.RecoverNode(0)
	ok := false
	rm.Submit(swap.Extent{Pages: 1}, func(sim.Duration) { ok = true })
	eng.Run()
	if !ok {
		t.Fatal("lease did not resume serving after donor recovery")
	}
}
