package datacenter

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/workload"
)

func newCluster(eng *sim.Engine, nodes int) *Cluster {
	return New(eng, Config{Nodes: nodes, CoresPerNode: 20, PagesPerNode: 16384})
}

func TestLendAccounting(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	donor, borrower := c.Node(0), c.Node(1)

	rm, err := c.Lend(donor, borrower, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if donor.DonatedPages != 4096 || borrower.BorrowedPages != 4096 || c.Leases != 1 {
		t.Fatalf("accounting wrong: donated=%d borrowed=%d leases=%d",
			donor.DonatedPages, borrower.BorrowedPages, c.Leases)
	}
	if u := donor.MemUtilization(); math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("donor utilization %v, want 0.25 (pinned donation)", u)
	}
	rm.Return()
	if donor.DonatedPages != 0 || borrower.BorrowedPages != 0 || c.Leases != 0 {
		t.Fatal("return did not release the lease")
	}
	rm.Return() // idempotent
	if c.Leases != 0 {
		t.Fatal("double return corrupted accounting")
	}
}

func TestLendRefusals(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	if _, err := c.Lend(c.Node(0), c.Node(0), 10); err == nil {
		t.Fatal("self-lend accepted")
	}
	if _, err := c.Lend(c.Node(0), c.Node(1), 1<<30); err == nil {
		t.Fatal("over-lend accepted")
	}
	// Partial donation then over-ask.
	if _, err := c.Lend(c.Node(0), c.Node(1), 16000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lend(c.Node(0), c.Node(1), 1000); err == nil {
		t.Fatal("lend beyond free-for-donation accepted")
	}
}

func TestReserve(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 1)
	n := c.Node(0)
	if err := n.Reserve(8192); err != nil {
		t.Fatal(err)
	}
	if u := n.MemUtilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
	if err := n.Reserve(16384); err == nil {
		t.Fatal("over-reserve accepted")
	}
}

func TestRemoteMemoryTransfer(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	rm, err := c.Lend(c.Node(0), c.Node(1), 4096)
	if err != nil {
		t.Fatal(err)
	}
	var lat sim.Duration
	rm.Submit(swap.Extent{Pages: 1, Sequential: true}, func(l sim.Duration) { lat = l })
	eng.Run()
	// 3µs RTT + 4KiB over 10GB/s NIC ≈ 3.4µs.
	if got := lat.Microseconds(); math.Abs(got-3.41) > 0.1 {
		t.Fatalf("remote page latency %.2fµs, want ~3.4µs", got)
	}
	if rm.Kind().String() != "dram" || rm.Width() != 4 {
		t.Fatal("backend metadata wrong")
	}
	rm.SetWidth(0)
	if rm.Width() != 1 {
		t.Fatal("width clamp")
	}
}

func TestRemoteMemoryNetworkContention(t *testing.T) {
	// Two borrowers sharing one donor NIC: aggregate bounded by that NIC.
	eng := sim.NewEngine()
	c := newCluster(eng, 3)
	rm1, _ := c.Lend(c.Node(0), c.Node(1), 2048)
	rm2, _ := c.Lend(c.Node(0), c.Node(2), 2048)
	const pages = 2048
	done := 0
	rm1.Submit(swap.Extent{Pages: pages, Sequential: true}, func(sim.Duration) { done++ })
	rm2.Submit(swap.Extent{Pages: pages, Sequential: true}, func(sim.Duration) { done++ })
	eng.Run()
	if done != 2 {
		t.Fatal("transfers incomplete")
	}
	bytes := float64(2*pages) * 4096
	rate := bytes / eng.Now().Seconds()
	if rate > 10.1e9 {
		t.Fatalf("aggregate %.2f GB/s exceeds the donor's 10 GB/s NIC", rate/1e9)
	}
	if rate < 9e9 {
		t.Fatalf("donor NIC underutilized: %.2f GB/s", rate/1e9)
	}
}

// End to end: a memory-pressured node runs a real workload swapping to a
// peer's DRAM, and performs comparably to node-local remote-DRAM far memory.
func TestTaskOnRemoteMemory(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(eng, 2)
	borrower, donor := c.Node(0), c.Node(1)

	spec := workload.Spec{
		Name: "borrowed", Class: workload.Compute, MaxMemGiB: 1,
		FootprintPages: 2048, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 512, SeqShare: 0.5, RunLen: 32,
		HotShare: 0.2, HotProb: 0.7, WriteFraction: 0.3,
		ComputePerAccess: 150 * sim.Nanosecond, MainAccesses: 8192, Threads: 2,
	}
	rm, err := c.Lend(donor, borrower, spec.FootprintPages)
	if err != nil {
		t.Fatal(err)
	}
	env := baseline.Env{Machine: borrower.Machine, FileBackend: "ssd"}
	setup := baseline.PrepareXDM(env, rm, spec, 0.5, 1.4, 1)
	var stats task.Stats
	task.New(setup.Config).Start(func(s task.Stats) { stats = s })
	eng.Run()
	if stats.PagesIn == 0 || stats.MajorFaults == 0 {
		t.Fatalf("no remote swap traffic: %+v", stats)
	}
	if stats.Runtime <= 0 {
		t.Fatal("task did not run")
	}
}
